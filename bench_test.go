package netdimm

// The benchmark harness: one testing.B benchmark per table and figure of
// the paper's evaluation. Each benchmark runs a (scaled) version of the
// experiment and reports the figure's key quantities via b.ReportMetric,
// so `go test -bench=. -benchmem` regenerates the paper's rows/series.
// Full-resolution runs are available through cmd/netdimm-sim.

import (
	"fmt"
	"testing"
	"time"
)

// BenchmarkTable1 exercises constructing the paper's Table 1 system
// configuration (and renders it once for the log).
func BenchmarkTable1(b *testing.B) {
	var tbl string
	for i := 0; i < b.N; i++ {
		tbl = DefaultConfig().Table()
	}
	if len(tbl) == 0 {
		b.Fatal("empty table")
	}
}

// BenchmarkFig4 regenerates Fig. 4 and reports the 2000B dNIC latency and
// PCIe share.
func BenchmarkFig4(b *testing.B) {
	var rows []Fig4Result
	for i := 0; i < b.N; i++ {
		rows = RunFig4([]int{10, 60, 200, 500, 1000, 2000}, 100*time.Nanosecond, 1)
	}
	last := rows[len(rows)-1]
	b.ReportMetric(float64(last.DNIC.Nanoseconds()), "dNIC-2000B-ns")
	b.ReportMetric(last.PCIeShare*100, "pcie-share-%")
}

// BenchmarkFig5 regenerates a three-point Fig. 5 sweep and reports the
// max-pressure bandwidth fraction.
func BenchmarkFig5(b *testing.B) {
	var rows []Fig5Result
	for i := 0; i < b.N; i++ {
		rows = RunFig5([]time.Duration{time.Second, 500 * time.Nanosecond, 5 * time.Nanosecond}, 1)
	}
	base := rows[0].BandwidthGbps
	worst := rows[len(rows)-1].BandwidthGbps
	b.ReportMetric(base, "idle-gbps")
	b.ReportMetric(worst/base*100, "pressured-%")
}

// BenchmarkFig7 regenerates the DMA locality trace and reports the burst
// span.
func BenchmarkFig7(b *testing.B) {
	var pts []Fig7Result
	for i := 0; i < b.N; i++ {
		pts = RunFig7()
	}
	if len(pts) == 0 {
		b.Fatal("empty Fig7 trace")
	}
	// The span of the first burst, derived from the data rather than a
	// hard-coded point index (the trace length depends on model detail).
	first, last := time.Duration(-1), time.Duration(0)
	for _, p := range pts {
		if p.Burst != 0 {
			continue
		}
		if first < 0 {
			first = p.RelTime
		}
		last = p.RelTime
	}
	if first < 0 {
		b.Fatal("Fig7 trace has no burst-0 points")
	}
	b.ReportMetric(float64((last - first).Nanoseconds()), "burst-span-ns")
	b.ReportMetric(float64(len(pts)), "requests")
}

// BenchmarkFig11 regenerates the central latency experiment and reports
// NetDIMM's average reduction against both baselines.
func BenchmarkFig11(b *testing.B) {
	var rows []Fig11Result
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = RunFig11([]int{64, 256, 1024, 1514}, 100*time.Nanosecond, 1)
		if err != nil {
			b.Fatal(err)
		}
	}
	var vsD, vsI float64
	for _, r := range rows {
		vsD += r.ReductionVsDNIC
		vsI += r.ReductionVsINIC
	}
	b.ReportMetric(vsD/float64(len(rows))*100, "red-vs-dNIC-%")
	b.ReportMetric(vsI/float64(len(rows))*100, "red-vs-iNIC-%")
}

// BenchmarkFig12a regenerates a scaled cluster replay and reports the
// average per-packet reduction at 25ns and 200ns switch latency. The Seq
// and Par variants pin the worker count so `go test -bench Fig12a` shows
// the fan-out speedup on multi-core hosts.
func BenchmarkFig12a(b *testing.B)    { benchmarkFig12a(b, 1) }
func BenchmarkFig12aPar(b *testing.B) { benchmarkFig12a(b, 0) }

func benchmarkFig12a(b *testing.B, parallelism int) {
	var rows []Fig12aResult
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = RunFig12a(200, 3, parallelism)
		if err != nil {
			b.Fatal(err)
		}
	}
	agg := map[time.Duration][]float64{}
	for _, r := range rows {
		agg[r.SwitchLatency] = append(agg[r.SwitchLatency], 1-r.NormVsDNIC)
	}
	for _, sl := range []time.Duration{25 * time.Nanosecond, 200 * time.Nanosecond} {
		var sum float64
		for _, v := range agg[sl] {
			sum += v
		}
		b.ReportMetric(sum/float64(len(agg[sl]))*100, fmt.Sprintf("red-%dns-%%", sl.Nanoseconds()))
	}
}

// BenchmarkFig12b regenerates the interference study and reports the DPI
// worst-case and L3F best-case deltas vs iNIC.
func BenchmarkFig12b(b *testing.B) {
	var rows []Fig12bResult
	for i := 0; i < b.N; i++ {
		rows = RunFig12b(1)
	}
	var dpiWorst, l3fBest float64
	for _, r := range rows {
		if r.Function == DeepInspect && r.Norm-1 > dpiWorst {
			dpiWorst = r.Norm - 1
		}
		if r.Function == L3Forwarding && 1-r.Norm > l3fBest {
			l3fBest = 1 - r.Norm
		}
	}
	b.ReportMetric(dpiWorst*100, "DPI-worst-%")
	b.ReportMetric(l3fBest*100, "L3F-best-%")
}

// BenchmarkHeadline regenerates the abstract's summary numbers.
func BenchmarkHeadline(b *testing.B) {
	var h HeadlineResult
	for i := 0; i < b.N; i++ {
		var err error
		h, err = RunHeadline(100, 1)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(h.AvgReductionVsDNIC*100, "vs-dNIC-%")
	b.ReportMetric(h.AvgReductionVsINIC*100, "vs-iNIC-%")
}

// BenchmarkOneWayPacket measures the simulator's own throughput on the
// core single-packet path (not a paper figure; a harness health metric).
func BenchmarkOneWayPacket(b *testing.B) {
	tx, err := NewNetDIMM(1)
	if err != nil {
		b.Fatal(err)
	}
	rx, err := NewNetDIMM(2)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := OneWayLatency(tx, rx, 1514, 100*time.Nanosecond); err != nil {
			b.Fatal(err)
		}
	}
}
