package netdimm

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"testing"
)

// failWriter fails after accepting n bytes, exercising WriteTrace's error
// propagation.
type failWriter struct{ n int }

func (w *failWriter) Write(p []byte) (int, error) {
	if len(p) > w.n {
		n := w.n
		w.n = 0
		return n, errors.New("disk full")
	}
	w.n -= len(p)
	return len(p), nil
}

// A nil Observation — what every Run*Observed entry point returns when
// cfg.Obs is zero — must be fully inert: queries report nothing and
// WriteTrace still writes a valid, empty trace document.
func TestNilObservationNoOps(t *testing.T) {
	var ob *Observation
	if ob.Enabled() {
		t.Error("nil observation reports Enabled")
	}
	if ob.HasMetrics() {
		t.Error("nil observation reports HasMetrics")
	}
	if got := ob.MetricsTable(); got != "" {
		t.Errorf("nil MetricsTable = %q, want empty", got)
	}
	if got := ob.MetricsCSV(); got != "" {
		t.Errorf("nil MetricsCSV = %q, want empty", got)
	}
	var buf bytes.Buffer
	if err := ob.WriteTrace(&buf); err != nil {
		t.Fatalf("nil WriteTrace: %v", err)
	}
	var doc struct {
		DisplayTimeUnit string            `json:"displayTimeUnit"`
		TraceEvents     []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("nil trace is not valid JSON: %v\n%s", err, buf.String())
	}
	if doc.DisplayTimeUnit != "ns" || len(doc.TraceEvents) != 0 {
		t.Fatalf("nil trace content: %s", buf.String())
	}
}

// A disabled run returns a nil observation rather than an empty one.
func TestDisabledRunReturnsNilObservation(t *testing.T) {
	cfg := DefaultConfig()
	_, ob, err := RunMixedChannelObserved(cfg, 20, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ob != nil {
		t.Fatalf("zero cfg.Obs produced a non-nil observation: %+v", ob)
	}
}

func TestWriteTraceFailingWriter(t *testing.T) {
	var nilOb *Observation
	if err := nilOb.WriteTrace(&failWriter{}); err == nil {
		t.Error("nil observation: failing writer error swallowed")
	}
	cfg := DefaultConfig()
	cfg.Obs.Trace = true
	_, ob, err := RunMixedChannelObserved(cfg, 20, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !ob.Enabled() {
		t.Fatal("traced run returned a disabled observation")
	}
	if err := ob.WriteTrace(&failWriter{n: 16}); err == nil {
		t.Error("enabled observation: failing writer error swallowed")
	}
	var buf bytes.Buffer
	if err := ob.WriteTrace(&buf); err != nil {
		t.Fatalf("healthy writer: %v", err)
	}
	if !strings.Contains(buf.String(), "traceEvents") {
		t.Fatalf("trace content: %s", buf.String())
	}
}

// Two identical observed runs must render byte-identical metrics CSVs —
// the per-cell determinism contract the campaign harness extends to whole
// directories.
func TestMetricsCSVByteIdenticalAcrossRuns(t *testing.T) {
	run := func() string {
		cfg := DefaultConfig()
		cfg.Obs.Metrics = true
		_, _, ob, err := RunFaultSweepObserved(cfg, []float64{0, 0.01}, 60, 3, 1)
		if err != nil {
			t.Fatal(err)
		}
		if !ob.HasMetrics() {
			t.Fatal("metrics run collected nothing")
		}
		return ob.MetricsCSV()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("metrics CSV differs across identical runs:\n--- a ---\n%s\n--- b ---\n%s", a, b)
	}
	if a == "" {
		t.Fatal("empty metrics CSV")
	}
}
