package netdimm

import (
	"strings"
	"testing"
	"time"
)

func TestMachineNames(t *testing.T) {
	if NewDNIC(false).Name() != "dNIC" || NewDNIC(true).Name() != "dNIC.zcpy" {
		t.Fatal("dNIC names wrong")
	}
	if NewINIC(false).Name() != "iNIC" {
		t.Fatal("iNIC name wrong")
	}
	nd, err := NewNetDIMM(1)
	if err != nil {
		t.Fatal(err)
	}
	if nd.Name() != "NetDIMM" {
		t.Fatal("NetDIMM name wrong")
	}
}

func TestOneWayLatencyAPI(t *testing.T) {
	tx, _ := NewNetDIMM(1)
	rx, _ := NewNetDIMM(2)
	lat, err := OneWayLatency(tx, rx, 256, 100*time.Nanosecond)
	if err != nil {
		t.Fatal(err)
	}
	if lat.Total <= 0 || lat.Total > 10*time.Microsecond {
		t.Fatalf("Total = %v", lat.Total)
	}
	sum := lat.TxCopy + lat.RxCopy + lat.TxDMA + lat.RxDMA + lat.Wire +
		lat.IOReg + lat.TxFlush + lat.RxInvalidate
	if diff := sum - lat.Total; diff > 8 || diff < -8 {
		t.Fatalf("components %v do not sum to total %v", sum, lat.Total)
	}
	if lat.TxFlush == 0 || lat.RxInvalidate == 0 {
		t.Fatal("NetDIMM coherency components missing")
	}
	if !strings.Contains(lat.String(), "total=") {
		t.Fatal("String missing total")
	}
}

func TestOneWayLatencyErrors(t *testing.T) {
	tx := NewDNIC(false)
	if _, err := OneWayLatency(tx, tx, 0, time.Microsecond); err == nil {
		t.Error("zero size accepted")
	}
	if _, err := OneWayLatency(nil, tx, 64, time.Microsecond); err == nil {
		t.Error("nil machine accepted")
	}
}

func TestOneWayOrderingViaAPI(t *testing.T) {
	ndTX, _ := NewNetDIMM(1)
	ndRX, _ := NewNetDIMM(2)
	nd, _ := OneWayLatency(ndTX, ndRX, 1024, 100*time.Nanosecond)
	in, _ := OneWayLatency(NewINIC(false), NewINIC(false), 1024, 100*time.Nanosecond)
	dn, _ := OneWayLatency(NewDNIC(false), NewDNIC(false), 1024, 100*time.Nanosecond)
	if !(nd.Total < in.Total && in.Total < dn.Total) {
		t.Fatalf("ordering: ND %v iNIC %v dNIC %v", nd.Total, in.Total, dn.Total)
	}
}

func TestConfigTable(t *testing.T) {
	tbl := DefaultConfig().Table()
	for _, want := range []string{"8, 3.4GHz", "DDR4-2400", "40GbE", "x8 PCIe Gen4"} {
		if !strings.Contains(tbl, want) {
			t.Errorf("Table missing %q:\n%s", want, tbl)
		}
	}
}

func TestRunFig4Defaults(t *testing.T) {
	rows := RunFig4(nil, 100*time.Nanosecond, 0)
	if len(rows) != 8 {
		t.Fatalf("rows = %d, want the 8 paper sizes", len(rows))
	}
	for _, r := range rows {
		if !(r.INICZcpy < r.INIC && r.INIC < r.DNIC) {
			t.Errorf("size %d ordering violated", r.Size)
		}
	}
}

func TestRunFig11Defaults(t *testing.T) {
	rows, err := RunFig11([]int{64, 1024}, 100*time.Nanosecond, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.ReductionVsDNIC < 0.35 || r.ReductionVsDNIC > 0.65 {
			t.Errorf("size %d: reduction %.2f", r.Size, r.ReductionVsDNIC)
		}
	}
}

func TestRunFig7(t *testing.T) {
	pts := RunFig7()
	if len(pts) != 144 {
		t.Fatalf("points = %d", len(pts))
	}
	if pts[0].RelCacheline != 0 || pts[0].RelTime != 0 {
		t.Fatal("first point should be the origin")
	}
}

func TestGenerateTrace(t *testing.T) {
	evs := GenerateTrace(Webserver, 200, 9)
	if len(evs) != 200 {
		t.Fatalf("events = %d", len(evs))
	}
	small := 0
	for _, e := range evs {
		if e.Size < 300 {
			small++
		}
		if e.Locality == "" {
			t.Fatal("missing locality")
		}
	}
	if small < 150 {
		t.Fatalf("webserver trace small fraction = %d/200", small)
	}
	// Determinism across calls.
	evs2 := GenerateTrace(Webserver, 200, 9)
	if evs[100] != evs2[100] {
		t.Fatal("trace not deterministic")
	}
}

func TestClusterMapping(t *testing.T) {
	for _, c := range AllClusters {
		if c.internal().String() != string(c) {
			t.Errorf("cluster %s maps to %s", c, c.internal())
		}
	}
}
