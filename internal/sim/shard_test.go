package sim

import (
	"fmt"
	"reflect"
	"testing"
)

// fired is one observed event execution: enough to compare two runs of the
// same model for byte-identical behaviour.
type fired struct {
	when Time
	tag  string
}

// buildFanIn constructs the canonical sharded topology on g: `producers`
// sources fan in to one sink. With more than one shard the sink lives on
// shard 0 and producer p on shard 1+p%(shards-1); with one shard everything
// shares shard 0 and the channels are self-loops — exactly the degenerate
// layout the determinism contract compares against. Each producer emits
// `per` events spaced by its own stride, each crossing its channel with a
// delay >= the group lookahead; the sink records every delivery. Several
// (producer, event) pairs are arranged to collide on the same instant so
// the (when, channel, seq) tie-break is actually exercised.
func buildFanIn(g *ShardGroup, producers, per int, log *[]fired) {
	lk := g.Lookahead()
	shardOf := func(p int) int {
		if g.Shards() == 1 {
			return 0
		}
		return 1 + p%(g.Shards()-1)
	}
	for p := 0; p < producers; p++ {
		p := p
		ch := g.NewChannel(shardOf(p), 0)
		eng := g.Engine(shardOf(p))
		stride := Time(p%3) * lk / 2 // strides 0, lk/2, lk force collisions
		var emit func(i int)
		emit = func(i int) {
			if i >= per {
				return
			}
			// Cross-shard hop: land lookahead + stride*i after "now",
			// deliberately letting different producers hit equal instants.
			ch.Send(lk+stride, func() {
				*log = append(*log, fired{when: g.Engine(0).Now(), tag: fmt.Sprintf("p%d/e%d", p, i)})
			})
			eng.Schedule(lk, func() { emit(i + 1) })
		}
		eng.Schedule(Time(p+1), func() { emit(0) })
	}
}

func runFanIn(t *testing.T, shards, producers, per int) []fired {
	t.Helper()
	g := NewShardGroup(shards, 100*Nanosecond)
	var log []fired
	buildFanIn(g, producers, per, &log)
	if err := g.Run(); err != nil {
		t.Fatalf("shards=%d: %v", shards, err)
	}
	return log
}

// TestShardGroupDeterminism is the core contract: the same model run at
// shards=1, 2, 4 and 5 produces the identical delivery sequence.
func TestShardGroupDeterminism(t *testing.T) {
	want := runFanIn(t, 1, 6, 40)
	if len(want) != 6*40 {
		t.Fatalf("reference run delivered %d events, want %d", len(want), 6*40)
	}
	for _, shards := range []int{2, 4, 5} {
		got := runFanIn(t, shards, 6, 40)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("shards=%d delivery sequence diverged from shards=1", shards)
		}
	}
}

// TestShardGroupCounters checks the partition-independent aggregates:
// Fired, Now and a drained Pending.
func TestShardGroupCounters(t *testing.T) {
	g1 := NewShardGroup(1, 10*Nanosecond)
	g4 := NewShardGroup(4, 10*Nanosecond)
	var l1, l4 []fired
	buildFanIn(g1, 4, 10, &l1)
	buildFanIn(g4, 4, 10, &l4)
	if err := g1.Run(); err != nil {
		t.Fatal(err)
	}
	if err := g4.Run(); err != nil {
		t.Fatal(err)
	}
	if g1.Fired() != g4.Fired() {
		t.Errorf("Fired diverged: shards=1 %d, shards=4 %d", g1.Fired(), g4.Fired())
	}
	if g1.Now() != g4.Now() {
		t.Errorf("Now diverged: shards=1 %v, shards=4 %v", g1.Now(), g4.Now())
	}
	if g1.Pending() != 0 || g4.Pending() != 0 {
		t.Errorf("drained groups report pending %d and %d", g1.Pending(), g4.Pending())
	}
	if g1.Err() != nil || g4.Err() != nil {
		t.Errorf("clean runs report errors %v and %v", g1.Err(), g4.Err())
	}
}

// TestShardGroupLookaheadViolation: a cross-shard send below the lookahead
// would let one shard affect a window another shard is already executing;
// it must panic rather than silently corrupt causality.
func TestShardGroupLookaheadViolation(t *testing.T) {
	g := NewShardGroup(2, 100*Nanosecond)
	ch := g.NewChannel(0, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("send below lookahead did not panic")
		}
	}()
	ch.Send(99*Nanosecond, func() {})
}

func TestShardGroupNilEventPanics(t *testing.T) {
	g := NewShardGroup(2, Nanosecond)
	ch := g.NewChannel(0, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("nil cross-shard event did not panic")
		}
	}()
	ch.Send(Nanosecond, nil)
}

func TestShardGroupConstructorPanics(t *testing.T) {
	for _, tc := range []struct {
		name      string
		shards    int
		lookahead Time
	}{
		{"zero shards", 0, Nanosecond},
		{"zero lookahead", 2, 0},
		{"negative lookahead", 2, -Nanosecond},
	} {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("NewShardGroup(%d, %v) did not panic", tc.shards, tc.lookahead)
				}
			}()
			NewShardGroup(tc.shards, tc.lookahead)
		})
	}
}

func TestShardGroupChannelBoundsPanic(t *testing.T) {
	g := NewShardGroup(2, Nanosecond)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range channel endpoint did not panic")
		}
	}()
	g.NewChannel(0, 2)
}

// TestShardGroupWatchdogBudget: the group-wide event budget trips
// deterministically at a window barrier, and the diagnostic is surfaced
// both from Run and Err at every shard count.
func TestShardGroupWatchdogBudget(t *testing.T) {
	for _, shards := range []int{1, 3} {
		g := NewShardGroup(shards, Nanosecond)
		// A self-sustaining ping-pong between the first and last shards;
		// each hop sends on the channel owned by the shard it runs on.
		fwd := g.NewChannel(0, shards-1)
		back := g.NewChannel(shards-1, 0)
		var ping, pong func()
		ping = func() { fwd.Send(Nanosecond, pong) }
		pong = func() { back.Send(Nanosecond, ping) }
		g.Engine(0).Schedule(Nanosecond, ping)
		g.SetWatchdog(Watchdog{MaxEvents: 100})
		err := g.Run()
		if err == nil {
			t.Fatalf("shards=%d: unbounded model did not trip the group budget", shards)
		}
		if g.Err() == nil {
			t.Fatalf("shards=%d: Err lost the watchdog diagnostic", shards)
		}
		var wde *WatchdogError
		if we, ok := err.(*WatchdogError); ok {
			wde = we
		} else {
			t.Fatalf("shards=%d: Run returned %T, want *WatchdogError", shards, err)
		}
		if wde.Fired < 100 {
			t.Errorf("shards=%d: tripped after only %d events with budget 100", shards, wde.Fired)
		}
	}
}

// TestShardGroupMaxTimeEvent: an event at the last representable instant
// still fires (the window end saturates instead of overflowing past it).
func TestShardGroupMaxTimeEvent(t *testing.T) {
	g := NewShardGroup(2, Nanosecond)
	ran := false
	g.Engine(1).At(MaxTime, func() { ran = true })
	if err := g.Run(); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("event at MaxTime never fired")
	}
	if g.Now() != MaxTime {
		t.Fatalf("Now = %v, want MaxTime", g.Now())
	}
}

func TestSatAdd(t *testing.T) {
	for _, tc := range []struct {
		a, b, want Time
	}{
		{0, 0, 0},
		{1, 2, 3},
		{MaxTime, 1, MaxTime},
		{MaxTime - 1, 1, MaxTime},
		{MaxTime, MaxTime, MaxTime},
	} {
		if got := satAdd(tc.a, tc.b); got != tc.want {
			t.Errorf("satAdd(%d, %d) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
	}
}
