package sim

import (
	"fmt"
	"time"
)

// Watchdog bounds a Run/RunUntil call so a pathological model — an
// unbounded retry loop under 100% injected loss, a callback that
// reschedules itself at the current instant — fails loudly with a
// diagnostic error instead of spinning forever. The zero value disables
// every check; MaxEvents and MaxNoProgress are deterministic (they count
// fired events), MaxWall is a real-time safety net for interactive use.
type Watchdog struct {
	// MaxEvents aborts the run after this many events have fired since the
	// watchdog was armed. 0 disables the check.
	MaxEvents uint64
	// MaxNoProgress aborts the run when this many consecutive events fire
	// without the simulated clock advancing (a zero-delay livelock).
	// 0 disables the check.
	MaxNoProgress uint64
	// MaxWall aborts the run when this much real time has elapsed since
	// the watchdog was armed. Checked every 1024 events to stay off the
	// hot path. 0 disables the check.
	MaxWall time.Duration
}

// WatchdogError is the diagnostic a tripped watchdog records: which bound
// tripped and where the simulation stood.
type WatchdogError struct {
	Reason  string
	Now     Time   // simulated clock at the abort
	Fired   uint64 // events fired since the watchdog was armed
	Pending int    // events still scheduled
}

// Error implements error.
func (e *WatchdogError) Error() string {
	return fmt.Sprintf("sim: watchdog: %s (t=%v, %d events fired, %d pending)",
		e.Reason, e.Now, e.Fired, e.Pending)
}

// SetWatchdog arms (or, with a zero Watchdog, disarms) the watchdog. The
// event and wall budgets count from this call; any previous watchdog error
// is cleared.
func (e *Engine) SetWatchdog(w Watchdog) {
	e.wd = w
	e.wdOn = w != Watchdog{}
	e.wdBaseFired = e.fired
	e.wdSameTime = 0
	e.wdLastNow = e.now
	e.wdErr = nil
	if w.MaxWall > 0 {
		e.wdStart = time.Now()
	}
}

// Err returns the diagnostic of a tripped watchdog, or nil. It is reset by
// the next SetWatchdog call.
func (e *Engine) Err() error {
	if e.wdErr == nil {
		return nil // avoid a non-nil interface holding a nil *WatchdogError
	}
	return e.wdErr
}

// wdCheck enforces the armed bounds before the next event fires. It
// reports false — after recording the diagnostic and stopping the engine —
// when a bound tripped.
func (e *Engine) wdCheck() bool {
	fired := e.fired - e.wdBaseFired
	fail := func(reason string) bool {
		e.wdErr = &WatchdogError{Reason: reason, Now: e.now, Fired: fired, Pending: e.live}
		e.stopped = true
		return false
	}
	if e.wd.MaxEvents > 0 && fired >= e.wd.MaxEvents {
		return fail(fmt.Sprintf("event budget of %d exhausted", e.wd.MaxEvents))
	}
	if e.wd.MaxNoProgress > 0 {
		if e.now == e.wdLastNow {
			e.wdSameTime++
			if e.wdSameTime >= e.wd.MaxNoProgress {
				return fail(fmt.Sprintf("no progress: %d consecutive events at the same instant", e.wdSameTime))
			}
		} else {
			e.wdLastNow = e.now
			e.wdSameTime = 0
		}
	}
	if e.wd.MaxWall > 0 && fired&1023 == 0 {
		if elapsed := time.Since(e.wdStart); elapsed > e.wd.MaxWall {
			return fail(fmt.Sprintf("wall-clock budget %v exceeded (%v elapsed)", e.wd.MaxWall, elapsed.Round(time.Millisecond)))
		}
	}
	return true
}
