package sim

import (
	"errors"
	"strings"
	"testing"
	"time"
)

func TestWatchdogDisabledByDefault(t *testing.T) {
	e := NewEngine()
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < 10000 {
			e.Schedule(Nanosecond, tick)
		}
	}
	e.Schedule(0, tick)
	e.Run()
	if n != 10000 {
		t.Fatalf("ran %d events, want 10000", n)
	}
	if err := e.Err(); err != nil {
		t.Fatalf("Err() = %v without a watchdog", err)
	}
}

func TestWatchdogEventBudget(t *testing.T) {
	e := NewEngine()
	e.SetWatchdog(Watchdog{MaxEvents: 500})
	// An unbounded self-rescheduling loop: the model livelock the watchdog
	// exists for.
	var spin func()
	spin = func() { e.Schedule(Nanosecond, spin) }
	e.Schedule(0, spin)
	e.Run()

	err := e.Err()
	if err == nil {
		t.Fatal("Err() = nil, want event-budget diagnostic")
	}
	var wde *WatchdogError
	if !errors.As(err, &wde) {
		t.Fatalf("Err() = %T, want *WatchdogError", err)
	}
	if wde.Fired != 500 {
		t.Errorf("Fired = %d, want 500", wde.Fired)
	}
	if !strings.Contains(err.Error(), "event budget of 500 exhausted") {
		t.Errorf("diagnostic %q missing the budget reason", err)
	}
	if !strings.Contains(err.Error(), "pending") {
		t.Errorf("diagnostic %q missing the pending count", err)
	}
}

func TestWatchdogNoProgress(t *testing.T) {
	e := NewEngine()
	e.SetWatchdog(Watchdog{MaxNoProgress: 100})
	var spin func()
	spin = func() { e.Schedule(0, spin) } // zero-delay: the clock never moves
	e.Schedule(0, spin)
	e.Run()
	err := e.Err()
	if err == nil || !strings.Contains(err.Error(), "no progress") {
		t.Fatalf("Err() = %v, want no-progress diagnostic", err)
	}
}

func TestWatchdogNoProgressAllowsAdvancingClock(t *testing.T) {
	e := NewEngine()
	e.SetWatchdog(Watchdog{MaxNoProgress: 3})
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < 50 {
			e.Schedule(Nanosecond, tick) // always advances: never trips
		}
	}
	e.Schedule(Nanosecond, tick)
	e.Run()
	if err := e.Err(); err != nil {
		t.Fatalf("advancing clock tripped the no-progress check: %v", err)
	}
	if n != 50 {
		t.Fatalf("ran %d events, want 50", n)
	}
}

func TestWatchdogWallClock(t *testing.T) {
	e := NewEngine()
	e.SetWatchdog(Watchdog{MaxWall: time.Microsecond})
	var spin func()
	spin = func() { e.Schedule(Nanosecond, spin) }
	e.Schedule(0, spin)
	deadline := time.Now().Add(30 * time.Second)
	for e.Err() == nil && time.Now().Before(deadline) {
		e.RunUntil(e.Now() + Millisecond)
	}
	err := e.Err()
	if err == nil || !strings.Contains(err.Error(), "wall-clock budget") {
		t.Fatalf("Err() = %v, want wall-clock diagnostic", err)
	}
}

func TestSetWatchdogRearms(t *testing.T) {
	e := NewEngine()
	e.SetWatchdog(Watchdog{MaxEvents: 10})
	var spin func()
	spin = func() { e.Schedule(Nanosecond, spin) }
	e.Schedule(0, spin)
	e.Run()
	if e.Err() == nil {
		t.Fatal("first budget did not trip")
	}
	// Re-arming clears the error and restarts the budget from the current
	// fired count; the backlog event left by the abort keeps spinning.
	e.SetWatchdog(Watchdog{MaxEvents: 1000})
	if e.Err() != nil {
		t.Fatal("SetWatchdog did not clear the error")
	}
	e.RunUntil(e.Now() + 500*Nanosecond)
	if e.Err() != nil {
		t.Fatalf("budget tripped early: %v", e.Err())
	}
	// Disarming entirely lets the run proceed under RunUntil alone.
	e.SetWatchdog(Watchdog{})
	e.RunUntil(e.Now() + 100*Nanosecond)
	if e.Err() != nil {
		t.Fatalf("disarmed watchdog reported %v", e.Err())
	}
}
