package sim

import "math"

// Rand is a small, fast, deterministic pseudo-random generator
// (splitmix64-seeded xorshift*), used instead of math/rand so the simulator
// controls its reproducibility guarantees directly and streams can be forked
// cheaply per component.
type Rand struct {
	state uint64
}

// NewRand returns a generator seeded deterministically from seed.
func NewRand(seed uint64) *Rand {
	r := &Rand{state: splitmix64(seed + 0x9e3779b97f4a7c15)}
	if r.state == 0 {
		r.state = 0x2545f4914f6cdd1d
	}
	return r
}

func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Fork returns an independent stream derived from this one; the parent's
// sequence is unaffected except for consuming one value.
func (r *Rand) Fork() *Rand { return NewRand(r.Uint64()) }

// Uint64 returns the next 64 pseudo-random bits.
func (r *Rand) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545f4914f6cdd1d
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63n returns a uniform value in [0, n). It panics if n <= 0.
func (r *Rand) Int63n(n int64) int64 {
	if n <= 0 {
		panic("sim: Int63n with non-positive n")
	}
	return int64(r.Uint64() % uint64(n))
}

// Float64 returns a uniform value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Range returns a uniform int in [lo, hi] inclusive. It panics if hi < lo.
func (r *Rand) Range(lo, hi int) int {
	if hi < lo {
		panic("sim: Range with hi < lo")
	}
	return lo + r.Intn(hi-lo+1)
}

// Exp returns an exponentially distributed duration with the given mean.
// A non-positive mean returns 0.
func (r *Rand) Exp(mean Time) Time {
	if mean <= 0 {
		return 0
	}
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return Time(-math.Log(u) * float64(mean))
}
