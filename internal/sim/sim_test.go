package sim

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestTimeUnits(t *testing.T) {
	if Microsecond != 1_000_000*Picosecond {
		t.Fatalf("Microsecond = %d ps", int64(Microsecond))
	}
	if got := (1500 * Nanosecond).Microseconds(); got != 1.5 {
		t.Fatalf("Microseconds() = %v, want 1.5", got)
	}
	if got := FromNanos(0.8335); got != 833*Picosecond+Picosecond/2+Picosecond/2 {
		// 0.8335ns rounds to 834ps (half away from zero via math.Round).
		if got != 834 {
			t.Fatalf("FromNanos(0.8335) = %d, want 834", int64(got))
		}
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		in   Time
		want string
	}{
		{0, "0ps"},
		{500, "500ps"},
		{1500, "1.500ns"},
		{2 * Microsecond, "2.000us"},
		{3 * Millisecond, "0.003000s"},
		// Negative times render through the positive path with a leading
		// sign, not as raw picoseconds.
		{-1, "-1ps"},
		{-500, "-500ps"},
		{-1500, "-1.500ns"},
		{-1234567, "-1.235us"},
		{-2 * Microsecond, "-2.000us"},
		{-3 * Millisecond, "-0.003000s"},
		{-1500 * Millisecond, "-1.500000s"},
		{math.MinInt64 + 1, "-9223372.036855s"},
		// MinInt64 cannot be negated; it falls back to raw picoseconds.
		{math.MinInt64, "-9223372036854775808ps"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("%d.String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.Schedule(30, func() { order = append(order, 3) })
	e.Schedule(10, func() { order = append(order, 1) })
	e.Schedule(20, func() { order = append(order, 2) })
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if e.Now() != 30 {
		t.Fatalf("Now = %v, want 30ps", e.Now())
	}
}

func TestEngineSameTimeFIFO(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 100; i++ {
		i := i
		e.Schedule(42, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events fired out of schedule order: %v", order)
		}
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine()
	var hits []Time
	e.Schedule(10, func() {
		hits = append(hits, e.Now())
		e.Schedule(5, func() { hits = append(hits, e.Now()) })
	})
	e.Run()
	if len(hits) != 2 || hits[0] != 10 || hits[1] != 15 {
		t.Fatalf("hits = %v", hits)
	}
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	id := e.Schedule(10, func() { fired = true })
	if !e.Cancel(id) {
		t.Fatal("Cancel returned false for pending event")
	}
	if e.Cancel(id) {
		t.Fatal("second Cancel returned true")
	}
	e.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending = %d after run", e.Pending())
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	var fired []Time
	for _, d := range []Time{5, 15, 25} {
		d := d
		e.Schedule(d, func() { fired = append(fired, d) })
	}
	e.RunUntil(15)
	if len(fired) != 2 {
		t.Fatalf("fired = %v, want two events", fired)
	}
	if e.Now() != 15 {
		t.Fatalf("Now = %v, want 15", e.Now())
	}
	e.RunUntil(100)
	if len(fired) != 3 {
		t.Fatalf("fired = %v, want three events", fired)
	}
	if e.Now() != 100 {
		t.Fatalf("Now = %v, want clock pinned to deadline 100", e.Now())
	}
}

func TestEngineStop(t *testing.T) {
	e := NewEngine()
	count := 0
	e.Schedule(1, func() { count++; e.Stop() })
	e.Schedule(2, func() { count++ })
	e.Run()
	if count != 1 {
		t.Fatalf("count = %d, want 1 (Stop should halt the loop)", count)
	}
	e.Run() // resumes
	if count != 2 {
		t.Fatalf("count = %d after resume, want 2", count)
	}
}

func TestSchedulePastPanics(t *testing.T) {
	e := NewEngine()
	e.Schedule(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(5, func() {})
	})
	e.Run()
}

func TestScheduleNilPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("nil event function did not panic")
		}
	}()
	NewEngine().Schedule(1, nil)
}

// Property: for any set of delays, events fire in non-decreasing time order
// and the engine's clock matches each event's scheduled instant.
func TestEngineMonotonicProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		e := NewEngine()
		var last Time = -1
		ok := true
		for _, d := range delays {
			when := Time(d)
			e.At(when, func() {
				if e.Now() < last {
					ok = false
				}
				if e.Now() != when {
					ok = false
				}
				last = e.Now()
			})
		}
		e.Run()
		return ok && e.Fired() == uint64(len(delays))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(7), NewRand(7)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same-seed streams diverged")
		}
	}
	c := NewRand(8)
	same := true
	a2 := NewRand(7)
	for i := 0; i < 10; i++ {
		if a2.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestRandRanges(t *testing.T) {
	r := NewRand(1)
	for i := 0; i < 10000; i++ {
		if v := r.Intn(7); v < 0 || v >= 7 {
			t.Fatalf("Intn out of range: %d", v)
		}
		if v := r.Range(3, 5); v < 3 || v > 5 {
			t.Fatalf("Range out of range: %d", v)
		}
		if v := r.Float64(); v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestRandExpMean(t *testing.T) {
	r := NewRand(42)
	const n = 200000
	mean := 100 * Nanosecond
	var sum Time
	for i := 0; i < n; i++ {
		v := r.Exp(mean)
		if v < 0 {
			t.Fatalf("Exp returned negative %v", v)
		}
		sum += v
	}
	got := float64(sum) / n
	if got < 0.95*float64(mean) || got > 1.05*float64(mean) {
		t.Fatalf("Exp mean = %.0fps, want ~%dps", got, int64(mean))
	}
	if r.Exp(0) != 0 || r.Exp(-5) != 0 {
		t.Fatal("Exp with non-positive mean should be 0")
	}
}

func TestRandFork(t *testing.T) {
	r := NewRand(3)
	f1 := r.Fork()
	f2 := r.Fork()
	if f1.Uint64() == f2.Uint64() {
		t.Fatal("forked streams should differ")
	}
}

func BenchmarkEngineScheduleRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := NewEngine()
		for j := 0; j < 1000; j++ {
			e.Schedule(Time(j%97), func() {})
		}
		e.Run()
	}
}

func TestRunUntilEmptyQueue(t *testing.T) {
	e := NewEngine()
	e.RunUntil(500)
	if e.Now() != 500 {
		t.Fatalf("Now = %v, want pinned to deadline", e.Now())
	}
}

func TestCancelAfterFire(t *testing.T) {
	e := NewEngine()
	id := e.Schedule(1, func() {})
	e.Run()
	if e.Cancel(id) {
		t.Fatal("cancelling a fired event should return false")
	}
}

func TestCancelFromInsideEvent(t *testing.T) {
	e := NewEngine()
	var fired bool
	var victim EventID
	e.Schedule(1, func() {
		if !e.Cancel(victim) {
			t.Error("in-event cancel failed")
		}
	})
	victim = e.Schedule(2, func() { fired = true })
	e.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestPendingCount(t *testing.T) {
	e := NewEngine()
	a := e.Schedule(5, func() {})
	e.Schedule(6, func() {})
	if e.Pending() != 2 {
		t.Fatalf("Pending = %d", e.Pending())
	}
	e.Cancel(a)
	if e.Pending() != 1 {
		t.Fatalf("Pending after cancel = %d", e.Pending())
	}
	e.Run()
	if e.Pending() != 0 {
		t.Fatalf("Pending after run = %d", e.Pending())
	}
}

func TestFromDuration(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want Time
	}{
		{0, 0},
		{time.Nanosecond, Nanosecond},
		{100 * time.Nanosecond, 100 * Nanosecond},
		{time.Microsecond, Microsecond},
		{time.Second, Second},
		{-5 * time.Nanosecond, -5 * Nanosecond},
		// Durations too large for the picosecond domain saturate instead
		// of overflowing into the past.
		{time.Duration(math.MaxInt64), MaxTime},
		{time.Duration(math.MinInt64), -MaxTime},
		{200 * 24 * time.Hour, MaxTime},
	}
	for _, c := range cases {
		if got := FromDuration(c.d); got != c.want {
			t.Errorf("FromDuration(%v) = %v, want %v", c.d, got, c.want)
		}
	}
}

// FromDuration must agree with the naive conversion everywhere the naive
// conversion is exact — the paper's experiments live in this range.
func TestFromDurationMatchesNaive(t *testing.T) {
	for _, d := range []time.Duration{
		time.Nanosecond, 25 * time.Nanosecond, 3 * time.Microsecond,
		7 * time.Millisecond, 42 * time.Second, time.Hour,
	} {
		if got, want := FromDuration(d), Time(d.Nanoseconds())*Nanosecond; got != want {
			t.Errorf("FromDuration(%v) = %v, naive = %v", d, got, want)
		}
	}
}
