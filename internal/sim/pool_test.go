package sim

import "testing"

// Edge cases of the slot-arena/free-list event storage: generation-checked
// IDs must keep stale handles away from reused slots, lazy cancellation
// must not disturb RunUntil, and Pending must track the live count exactly.

func nop() {}

func TestRunUntilAllCancelled(t *testing.T) {
	e := NewEngine()
	var ids []EventID
	for _, d := range []Time{10, 20, 30} {
		ids = append(ids, e.Schedule(d, func() { t.Error("cancelled event fired") }))
	}
	for _, id := range ids {
		if !e.Cancel(id) {
			t.Fatal("cancel failed")
		}
	}
	e.RunUntil(25)
	if e.Now() != 25 {
		t.Fatalf("Now = %v, want pinned to deadline 25", e.Now())
	}
	if e.Fired() != 0 {
		t.Fatalf("Fired = %d, want 0", e.Fired())
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending = %d, want 0", e.Pending())
	}
	// The dead heap entries past the deadline are reaped on the next pass.
	e.RunUntil(100)
	if e.Now() != 100 || e.Fired() != 0 {
		t.Fatalf("Now = %v Fired = %d after second pass", e.Now(), e.Fired())
	}
}

func TestRunAllCancelledDoesNotAdvanceClock(t *testing.T) {
	e := NewEngine()
	id := e.Schedule(50, nop)
	e.Cancel(id)
	e.Run()
	if e.Now() != 0 {
		t.Fatalf("Now = %v; reaping dead events must not advance the clock", e.Now())
	}
}

// A slot reused after a cancel must not be cancellable through the stale ID
// (the "resurrection" hazard of pooled event structs).
func TestPoolReuseAfterCancel(t *testing.T) {
	e := NewEngine()
	stale := e.Schedule(10, func() { t.Error("cancelled event fired") })
	if !e.Cancel(stale) {
		t.Fatal("cancel failed")
	}
	e.Run() // reaps the dead entry, releasing its slot

	fired := 0
	for i := 0; i < 4; i++ { // at least one of these reuses the slot
		e.Schedule(5, func() { fired++ })
	}
	if e.Cancel(stale) {
		t.Fatal("stale ID cancelled a reused slot's event")
	}
	e.Run()
	if fired != 4 {
		t.Fatalf("fired = %d, want 4", fired)
	}
}

// Same hazard via the fired path: an ID whose event already ran must not
// touch the slot's next occupant.
func TestPoolReuseAfterFire(t *testing.T) {
	e := NewEngine()
	stale := e.Schedule(1, nop)
	e.Run()

	fired := false
	e.Schedule(1, func() { fired = true }) // reuses the released slot
	if e.Cancel(stale) {
		t.Fatal("stale ID of a fired event cancelled its slot's new occupant")
	}
	e.Run()
	if !fired {
		t.Fatal("reused slot's event did not fire")
	}
}

// Cancelling the in-flight event from inside its own callback is a no-op:
// by then it has fired and its slot may already host a newcomer.
func TestCancelSelfInsideCallback(t *testing.T) {
	e := NewEngine()
	var id EventID
	rescheduled := false
	id = e.Schedule(1, func() {
		next := e.Schedule(1, func() { rescheduled = true }) // may land in the same slot
		if e.Cancel(id) {
			t.Error("self-cancel of the firing event returned true")
		}
		_ = next
	})
	e.Run()
	if !rescheduled {
		t.Fatal("nested event lost")
	}
}

func TestPendingAccuracyUnderChurn(t *testing.T) {
	e := NewEngine()
	var ids []EventID
	for i := 0; i < 100; i++ {
		ids = append(ids, e.Schedule(Time(i+1), nop))
	}
	if e.Pending() != 100 {
		t.Fatalf("Pending = %d, want 100", e.Pending())
	}
	for i := 0; i < 100; i += 2 {
		e.Cancel(ids[i])
	}
	if e.Pending() != 50 {
		t.Fatalf("Pending after cancels = %d, want 50", e.Pending())
	}
	e.RunUntil(50) // fires the odd-delay half up to 49... (events 1..50, odd ones live)
	if got := e.Pending(); got != 25 {
		t.Fatalf("Pending mid-run = %d, want 25", got)
	}
	e.Run()
	if e.Pending() != 0 || e.Fired() != 50 {
		t.Fatalf("Pending = %d Fired = %d after drain", e.Pending(), e.Fired())
	}
}

func TestCancelGarbageID(t *testing.T) {
	e := NewEngine()
	e.Schedule(1, nop)
	for _, id := range []EventID{0, 1, EventID(1) << 32, EventID(1<<63) | 7} {
		if id == makeID(0, 0) {
			continue // the one real ID
		}
		if e.Cancel(id) {
			t.Fatalf("garbage ID %#x cancelled something", uint64(id))
		}
	}
}

// The hot path must not allocate once the arena is warm: scheduling and
// firing an event reuses a pooled slot, and no map or per-event heap
// pointer is involved.
func TestEngineScheduleAllocs(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 64; i++ { // warm the arena and heap capacity
		e.Schedule(Time(i), nop)
	}
	e.Run()
	avg := testing.AllocsPerRun(1000, func() {
		e.Schedule(10, nop)
		e.Run()
	})
	if avg != 0 {
		t.Fatalf("allocs per schedule+fire = %v, want 0", avg)
	}
}

func TestEngineCancelAllocs(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 64; i++ {
		e.Schedule(Time(i), nop)
	}
	e.Run()
	avg := testing.AllocsPerRun(1000, func() {
		id := e.Schedule(10, nop)
		e.Cancel(id)
		e.Run()
	})
	if avg != 0 {
		t.Fatalf("allocs per schedule+cancel = %v, want 0", avg)
	}
}

// BenchmarkEngineSchedule measures the schedule→fire round trip on a warm
// arena. Run with -benchmem: the target is 0 allocs/op.
func BenchmarkEngineSchedule(b *testing.B) {
	e := NewEngine()
	for i := 0; i < 1024; i++ {
		e.Schedule(Time(i%97), nop)
	}
	e.Run()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Schedule(Time(i%97), nop)
		e.Run()
	}
}

// BenchmarkEngineScheduleDepth measures scheduling against a 1k-deep queue,
// the typical operating point of the memory-controller models.
func BenchmarkEngineScheduleDepth(b *testing.B) {
	e := NewEngine()
	for i := 0; i < 1024; i++ {
		e.Schedule(MaxTime/2+Time(i), nop) // backlog that never fires
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := e.Schedule(Time(i%97), nop)
		e.Cancel(id)
		e.RunUntil(e.Now()) // reap nothing; keep clock still
	}
}

// BenchmarkEngineCancel measures the schedule→cancel→reap cycle. Run with
// -benchmem: the target is 0 allocs/op.
func BenchmarkEngineCancel(b *testing.B) {
	e := NewEngine()
	for i := 0; i < 1024; i++ {
		e.Schedule(Time(i%97), nop)
	}
	e.Run()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := e.Schedule(10, nop)
		e.Cancel(id)
		e.Run()
	}
}
