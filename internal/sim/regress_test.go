package sim

import (
	"math"
	"testing"
)

// TestPendingExactAcrossReapPaths is the regression guard for the shared
// liveRoot reaper: cancelled slots are reaped either by step (while
// running) or by peekWhen (while probing for the next timestamp), and
// Pending must stay exact no matter how the two paths interleave. Before
// the dedup, drift between the two copies of the loop could double-release
// a slot or leak one.
func TestPendingExactAcrossReapPaths(t *testing.T) {
	e := NewEngine()
	r := NewRand(42)
	live := make(map[EventID]struct{})
	want := 0
	for round := 0; round < 2000; round++ {
		switch r.Intn(5) {
		case 0, 1: // schedule
			id := e.Schedule(Time(1+r.Intn(50)), nop)
			live[id] = struct{}{}
			want++
		case 2: // cancel a random live event, then force a peek-side reap
			for id := range live {
				if !e.Cancel(id) {
					t.Fatalf("round %d: live event %#x refused cancellation", round, uint64(id))
				}
				delete(live, id)
				want--
				break
			}
			// RunUntil on an instant before every pending event reaps
			// dead roots via peekWhen without firing anything.
			e.RunUntil(e.Now())
		case 3: // fire everything due soon via the step-side reap
			horizon := e.Now() + Time(r.Intn(20))
			fired := e.Fired()
			e.RunUntil(horizon)
			want -= int(e.Fired() - fired)
			// Drop fired events from the tracking set: their slots now
			// carry a bumped generation or a nil fn.
			for id := range live {
				slot := int64(id>>32) - 1
				ev := &e.events[slot]
				if ev.gen != uint32(id) || ev.fn == nil {
					delete(live, id)
				}
			}
		case 4: // pure peek churn
			e.RunUntil(e.Now())
		}
		if e.Pending() != want {
			t.Fatalf("round %d: Pending = %d, want %d", round, e.Pending(), want)
		}
		if e.Pending() != len(live) {
			t.Fatalf("round %d: Pending = %d but %d events tracked live", round, e.Pending(), len(live))
		}
	}
	e.Run()
	if e.Pending() != 0 {
		t.Fatalf("Pending = %d after drain", e.Pending())
	}
}

// TestCancelThenReapInterleavings pins the exact scenario from the issue:
// cancel an event, reap it through one path, and check the other path
// cannot release it again (which would corrupt the free list and Pending).
func TestCancelThenReapInterleavings(t *testing.T) {
	t.Run("peek then step", func(t *testing.T) {
		e := NewEngine()
		id := e.Schedule(5, nop)
		e.Schedule(10, nop)
		e.Cancel(id)
		if got := e.Pending(); got != 1 {
			t.Fatalf("Pending after cancel = %d, want 1", got)
		}
		e.RunUntil(1) // peekWhen reaps the dead root
		if got := e.Pending(); got != 1 {
			t.Fatalf("Pending after peek-reap = %d, want 1", got)
		}
		e.Run() // step must not find the reaped slot again
		if e.Pending() != 0 || e.Fired() != 1 {
			t.Fatalf("Pending = %d Fired = %d, want 0 and 1", e.Pending(), e.Fired())
		}
		if len(e.free) != 2 {
			t.Fatalf("free list holds %d slots, want 2", len(e.free))
		}
	})
	t.Run("step reaps directly", func(t *testing.T) {
		e := NewEngine()
		id := e.Schedule(5, nop)
		e.Schedule(10, nop)
		e.Cancel(id)
		e.Run() // step's liveRoot reaps the dead slot on the way to the live one
		if e.Pending() != 0 || e.Fired() != 1 {
			t.Fatalf("Pending = %d Fired = %d, want 0 and 1", e.Pending(), e.Fired())
		}
		if len(e.free) != 2 {
			t.Fatalf("free list holds %d slots, want 2", len(e.free))
		}
	})
}

// TestGenWraparoundStaleID white-boxes the EventID generation counter: a
// slot whose gen wraps the full uint32 range must still reject the stale
// ID minted for a prior occupancy, even when the wrap lands the counter
// back on the exact value the stale ID carries only while the slot is
// empty or re-armed with a bumped generation.
func TestGenWraparoundStaleID(t *testing.T) {
	e := NewEngine()
	id := e.Schedule(1, nop) // occupies slot 0 at gen 0
	e.Run()                  // fires; release bumps slot 0 to gen 1
	if e.Cancel(id) {
		t.Fatal("stale ID cancelled after one release")
	}
	// Drive the slot's generation to the wrap boundary and step across it.
	e.events[0].gen = math.MaxUint32
	wrapID := e.Schedule(1, nop) // slot 0, gen MaxUint32
	e.Run()                      // release wraps gen to 0
	if got := e.events[0].gen; got != 0 {
		t.Fatalf("gen after wrap = %d, want 0", got)
	}
	if e.Cancel(wrapID) {
		t.Fatal("stale gen=MaxUint32 ID cancelled the wrapped slot")
	}
	// The next occupant mints gen 0 — numerically equal to a hypothetical
	// ID from 2^32 occupancies ago; the fresh ID must work, the stale
	// wrap-boundary one must not.
	freshID := e.Schedule(1, nop)
	if e.Cancel(wrapID) {
		t.Fatal("wrap-boundary stale ID cancelled the new occupant")
	}
	if !e.Cancel(freshID) {
		t.Fatal("fresh post-wrap ID refused to cancel its own event")
	}
}

// TestGenWraparoundProperty drives one slot through many randomly seeded
// generations: at every occupancy, every previously minted ID must be
// inert and only the current ID may cancel.
func TestGenWraparoundProperty(t *testing.T) {
	e := NewEngine()
	r := NewRand(7)
	var stale []EventID
	for round := 0; round < 300; round++ {
		// Plant the slot at a random generation (including near-wrap
		// values) before occupying it, as 2^gen occupancies would.
		e.events = e.events[:0]
		e.events = append(e.events, event{gen: uint32(r.Uint64())})
		e.free = append(e.free[:0], 0)
		stale = stale[:0]
		cur := e.Schedule(1, nop)
		for hop := 0; hop < 4; hop++ {
			stale = append(stale, cur)
			e.Run() // fire and release: gen advances (possibly wrapping)
			for _, s := range stale {
				if e.Cancel(s) {
					t.Fatalf("round %d hop %d: stale ID %#x cancelled an empty slot", round, hop, uint64(s))
				}
			}
			cur = e.Schedule(1, nop)
			for _, s := range stale {
				if e.Cancel(s) {
					t.Fatalf("round %d hop %d: stale ID %#x cancelled the new occupant", round, hop, uint64(s))
				}
			}
			if e.Pending() != 1 {
				t.Fatalf("round %d hop %d: Pending = %d, want 1", round, hop, e.Pending())
			}
		}
		if !e.Cancel(cur) {
			t.Fatalf("round %d: current ID refused to cancel", round)
		}
		e.Run() // reap the cancelled slot so the next round starts clean
	}
}
