package sim

// Probe observes kernel activity: one callback per schedule, fire, and
// cancel. It is the engine half of the observability plane — internal/obs
// supplies implementations that count events and feed trace export, but the
// kernel only sees this interface, so the dependency points outward.
//
// Probes must be passive: a callback must not schedule, cancel, or run
// events, and must not read the wall clock. The engine invokes callbacks
// synchronously on its own goroutine, in deterministic event order, so a
// well-behaved probe observes the identical sequence on every run with the
// same seed.
type Probe interface {
	// OnSchedule fires after an event is enqueued for instant when.
	OnSchedule(when Time)
	// OnFire fires immediately before the event's function runs, with the
	// clock already advanced to the event's timestamp.
	OnFire(when Time)
	// OnCancel fires after a live event is successfully cancelled.
	OnCancel(when Time)
}

// SetProbe attaches (or, with nil, detaches) a probe. Like the watchdog,
// the hot path pays a single predictable branch when no probe is attached,
// preserving the kernel's 0 allocs/op scheduling path.
//
// Callers holding a concrete probe type must take care not to pass a typed
// nil (a nil *T in a Probe interface is non-nil and would be invoked);
// check the concrete pointer before calling.
func (e *Engine) SetProbe(p Probe) {
	e.probe = p
	e.probeOn = p != nil
}
