// Package sim provides the discrete-event simulation kernel that every
// architectural model in this repository runs on.
//
// The kernel is deliberately small: a picosecond-resolution clock, a binary
// heap of pending events, and deterministic tie-breaking (events scheduled
// for the same instant fire in the order they were scheduled). Determinism
// matters because the experiments in internal/experiments assert quantitative
// relationships between runs; two simulations built from the same seed must
// produce identical event interleavings.
package sim

import (
	"container/heap"
	"fmt"
	"math"
)

// Time is a simulated instant or duration in integer picoseconds.
//
// Picoseconds keep DDR timing exact: a DDR4-2400 clock period is 833ps,
// which a nanosecond clock could not represent without rounding drift.
type Time int64

// Convenient duration units.
const (
	Picosecond  Time = 1
	Nanosecond  Time = 1000
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// MaxTime is the largest representable instant; used as "never".
const MaxTime Time = math.MaxInt64

// Nanoseconds returns t as a float64 nanosecond count.
func (t Time) Nanoseconds() float64 { return float64(t) / float64(Nanosecond) }

// Microseconds returns t as a float64 microsecond count.
func (t Time) Microseconds() float64 { return float64(t) / float64(Microsecond) }

// Seconds returns t as a float64 second count.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// String renders the time with an adaptive unit, e.g. "1.234us".
func (t Time) String() string {
	switch {
	case t < 0:
		return fmt.Sprintf("%dps", int64(t))
	case t < Nanosecond:
		return fmt.Sprintf("%dps", int64(t))
	case t < Microsecond:
		return fmt.Sprintf("%.3fns", t.Nanoseconds())
	case t < Millisecond:
		return fmt.Sprintf("%.3fus", t.Microseconds())
	default:
		return fmt.Sprintf("%.6fs", t.Seconds())
	}
}

// FromNanos converts a float64 nanosecond count to a Time, rounding to the
// nearest picosecond.
func FromNanos(ns float64) Time { return Time(math.Round(ns * float64(Nanosecond))) }

// Event is a scheduled callback. The zero Event is invalid.
type event struct {
	when Time
	seq  uint64 // tie-breaker: schedule order
	fn   func()
	id   EventID
	dead bool // cancelled
}

// EventID identifies a scheduled event so it can be cancelled.
type EventID uint64

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].when != q[j].when {
		return q[i].when < q[j].when
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// Engine is a single-threaded discrete-event simulator.
//
// Engines are not safe for concurrent use; all model components attached to
// an Engine must schedule and run on the same goroutine.
type Engine struct {
	now     Time
	queue   eventQueue
	nextSeq uint64
	nextID  EventID
	live    map[EventID]*event
	fired   uint64
	stopped bool
}

// NewEngine returns an empty engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{live: make(map[EventID]*event)}
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Fired reports how many events have executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending reports how many events are scheduled and not cancelled.
func (e *Engine) Pending() int { return len(e.live) }

// Schedule runs fn after delay. A negative delay is an error in the caller;
// it panics because it would corrupt causality.
func (e *Engine) Schedule(delay Time, fn func()) EventID {
	return e.At(e.now+delay, fn)
}

// At runs fn at the absolute instant when. Scheduling in the past panics.
func (e *Engine) At(when Time, fn func()) EventID {
	if when < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", when, e.now))
	}
	if fn == nil {
		panic("sim: nil event function")
	}
	e.nextID++
	ev := &event{when: when, seq: e.nextSeq, fn: fn, id: e.nextID}
	e.nextSeq++
	heap.Push(&e.queue, ev)
	e.live[ev.id] = ev
	return ev.id
}

// Cancel removes a pending event. Cancelling an event that already fired or
// was already cancelled is a no-op returning false.
func (e *Engine) Cancel(id EventID) bool {
	ev, ok := e.live[id]
	if !ok {
		return false
	}
	ev.dead = true
	delete(e.live, id)
	return true
}

// Stop makes the current Run/RunUntil call return after the in-flight event
// completes. Pending events remain queued.
func (e *Engine) Stop() { e.stopped = true }

// step executes the earliest event. It reports false if none remain.
func (e *Engine) step() bool {
	for len(e.queue) > 0 {
		ev := heap.Pop(&e.queue).(*event)
		if ev.dead {
			continue
		}
		delete(e.live, ev.id)
		e.now = ev.when
		e.fired++
		ev.fn()
		return true
	}
	return false
}

// Run executes events until the queue drains or Stop is called.
func (e *Engine) Run() {
	e.stopped = false
	for !e.stopped && e.step() {
	}
}

// RunUntil executes events with timestamps <= deadline, advancing the clock
// to exactly deadline when it returns (even if the queue drained earlier or
// the next event lies beyond the deadline).
func (e *Engine) RunUntil(deadline Time) {
	e.stopped = false
	for !e.stopped {
		ev := e.peek()
		if ev == nil || ev.when > deadline {
			break
		}
		e.step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}

func (e *Engine) peek() *event {
	for len(e.queue) > 0 {
		if e.queue[0].dead {
			heap.Pop(&e.queue)
			continue
		}
		return e.queue[0]
	}
	return nil
}
