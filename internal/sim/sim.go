// Package sim provides the discrete-event simulation kernel that every
// architectural model in this repository runs on.
//
// The kernel is deliberately small: a picosecond-resolution clock, a binary
// heap of pending events, and deterministic tie-breaking (events scheduled
// for the same instant fire in the order they were scheduled). Determinism
// matters because the experiments in internal/experiments assert quantitative
// relationships between runs; two simulations built from the same seed must
// produce identical event interleavings.
//
// Event storage is an intrusive slot arena with a free list: event structs
// live in one slice, the heap orders int32 slot indices, and EventIDs carry
// a per-slot generation so a stale ID can never cancel the slot's next
// occupant. Scheduling an event therefore costs no per-event heap pointer
// and no map insert/delete on the hot path.
package sim

import (
	"fmt"
	"math"
	"time"
)

// Time is a simulated instant or duration in integer picoseconds.
//
// Picoseconds keep DDR timing exact: a DDR4-2400 clock period is 833ps,
// which a nanosecond clock could not represent without rounding drift.
type Time int64

// Convenient duration units.
const (
	Picosecond  Time = 1
	Nanosecond  Time = 1000
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// MaxTime is the largest representable instant; used as "never".
const MaxTime Time = math.MaxInt64

// Nanoseconds returns t as a float64 nanosecond count.
func (t Time) Nanoseconds() float64 { return float64(t) / float64(Nanosecond) }

// Microseconds returns t as a float64 microsecond count.
func (t Time) Microseconds() float64 { return float64(t) / float64(Microsecond) }

// Seconds returns t as a float64 second count.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// String renders the time with an adaptive unit, e.g. "1.234us". A negative
// time renders with the same adaptive unit and a leading sign.
func (t Time) String() string {
	switch {
	case t == math.MinInt64:
		// -t would overflow; the only value that cannot reuse the
		// positive path renders in raw picoseconds.
		return fmt.Sprintf("%dps", int64(t))
	case t < 0:
		return "-" + (-t).String()
	case t < Nanosecond:
		return fmt.Sprintf("%dps", int64(t))
	case t < Microsecond:
		return fmt.Sprintf("%.3fns", t.Nanoseconds())
	case t < Millisecond:
		return fmt.Sprintf("%.3fus", t.Microseconds())
	default:
		return fmt.Sprintf("%.6fs", t.Seconds())
	}
}

// FromNanos converts a float64 nanosecond count to a Time, rounding to the
// nearest picosecond.
func FromNanos(ns float64) Time { return Time(math.Round(ns * float64(Nanosecond))) }

// FromDuration converts a time.Duration to a Time exactly: a Duration is an
// integer nanosecond count and Time is integer picoseconds, so the
// conversion is a multiplication by 1000, not a truncation. Durations whose
// picosecond count does not fit in int64 (beyond roughly ±106 days)
// saturate to ±MaxTime instead of overflowing.
func FromDuration(d time.Duration) Time {
	const maxNs = int64(MaxTime) / int64(Nanosecond)
	ns := d.Nanoseconds()
	if ns > maxNs {
		return MaxTime
	}
	if ns < -maxNs {
		return -MaxTime
	}
	return Time(ns) * Nanosecond
}

// event is one arena slot. A slot is live while it sits in the heap with
// dead == false; cancellation is lazy (dead is set, the heap entry stays
// until popped). gen advances every time the slot is released, invalidating
// all previously minted EventIDs for it.
type event struct {
	when Time
	seq  uint64 // tie-breaker: schedule order
	fn   func()
	gen  uint32
	dead bool // cancelled, heap entry not yet reaped
}

// EventID identifies a scheduled event so it can be cancelled. The zero
// EventID is never issued. Internally it packs (slot+1, generation).
type EventID uint64

func makeID(slot int32, gen uint32) EventID {
	return EventID(uint64(slot)+1)<<32 | EventID(gen)
}

// Engine is a single-threaded discrete-event simulator.
//
// Engines are not safe for concurrent use; all model components attached to
// an Engine must schedule and run on the same goroutine. (Independent
// engines on independent goroutines are fine — that is how the parallel
// experiment runner fans out.)
type Engine struct {
	now       Time
	events    []event // slot arena; grows, never shrinks
	free      []int32 // released slots available for reuse
	heap      []int32 // binary heap of live+dead slots by (when, seq)
	nextSeq   uint64
	live      int // scheduled and not cancelled
	fired     uint64
	lastFired Time // timestamp of the most recent fired event
	stopped   bool

	// Watchdog state (see watchdog.go). wdOn keeps the hot path to a
	// single branch when no watchdog is armed.
	wd          Watchdog
	wdOn        bool
	wdErr       *WatchdogError
	wdBaseFired uint64
	wdSameTime  uint64
	wdLastNow   Time
	wdStart     time.Time

	// Probe state (see probe.go). probeOn keeps the hot path to a single
	// branch when no probe is attached, exactly like wdOn.
	probe   Probe
	probeOn bool
}

// NewEngine returns an empty engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Fired reports how many events have executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// LastFired returns the timestamp of the most recent fired event (zero if
// none fired yet). Unlike Now, it is not advanced by RunUntil's
// clock-to-deadline jump, which makes it the makespan measure a windowed
// (sharded) run shares with a plain Run.
func (e *Engine) LastFired() Time { return e.lastFired }

// Pending reports how many events are scheduled and not cancelled.
func (e *Engine) Pending() int { return e.live }

// Schedule runs fn after delay. A negative delay is an error in the caller;
// it panics because it would corrupt causality.
func (e *Engine) Schedule(delay Time, fn func()) EventID {
	return e.At(e.now+delay, fn)
}

// At runs fn at the absolute instant when. Scheduling in the past panics.
func (e *Engine) At(when Time, fn func()) EventID {
	if when < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", when, e.now))
	}
	if fn == nil {
		panic("sim: nil event function")
	}
	var slot int32
	if n := len(e.free); n > 0 {
		slot = e.free[n-1]
		e.free = e.free[:n-1]
	} else {
		e.events = append(e.events, event{})
		slot = int32(len(e.events) - 1)
	}
	ev := &e.events[slot]
	ev.when = when
	ev.seq = e.nextSeq
	ev.fn = fn
	ev.dead = false
	e.nextSeq++
	e.live++
	e.heap = append(e.heap, slot)
	e.up(len(e.heap) - 1)
	if e.probeOn {
		e.probe.OnSchedule(when)
	}
	return makeID(slot, ev.gen)
}

// Cancel removes a pending event. Cancelling an event that already fired or
// was already cancelled is a no-op returning false. The heap entry is
// reaped lazily when it reaches the root.
func (e *Engine) Cancel(id EventID) bool {
	slot := int64(id>>32) - 1
	if slot < 0 || slot >= int64(len(e.events)) {
		return false
	}
	ev := &e.events[slot]
	if ev.gen != uint32(id) || ev.dead || ev.fn == nil {
		return false
	}
	ev.dead = true
	ev.fn = nil
	e.live--
	if e.probeOn {
		e.probe.OnCancel(e.now)
	}
	return true
}

// Stop makes the current Run/RunUntil call return after the in-flight event
// completes. Pending events remain queued.
func (e *Engine) Stop() { e.stopped = true }

// release returns a popped slot to the free list, bumping its generation so
// outstanding EventIDs for the old occupant can never touch the new one.
func (e *Engine) release(slot int32) {
	ev := &e.events[slot]
	ev.fn = nil
	ev.dead = false
	ev.gen++
	e.free = append(e.free, slot)
}

// step executes the earliest event. It reports false if none remain.
func (e *Engine) step() bool {
	if len(e.heap) == 0 {
		return false
	}
	slot := e.heap[0]
	ev := &e.events[slot]
	if ev.dead {
		var ok bool
		if slot, ok = e.reapRoot(); !ok {
			return false
		}
		ev = &e.events[slot]
	}
	e.popRoot()
	fn := ev.fn
	e.now = ev.when
	e.fired++
	e.live--
	// Release before firing: fn may schedule into the freed slot, and
	// the generation bump keeps the old ID from reaching the newcomer.
	e.release(slot)
	if e.probeOn {
		e.probe.OnFire(e.now)
	}
	fn()
	return true
}

// Run executes events until the queue drains, Stop is called, or an armed
// watchdog trips (see SetWatchdog; the diagnostic is then available from
// Err).
//
// lastFired is reconciled once per run, not per event: inside the loop the
// clock only moves when an event fires, so if anything fired, e.now is the
// last fired instant when the loop exits. Keeping the bookkeeping out of
// step keeps the hot path to the same stores as before lastFired existed.
func (e *Engine) Run() {
	e.stopped = false
	fired := e.fired
	for !e.stopped {
		if e.wdOn && !e.wdCheck() {
			break
		}
		if !e.step() {
			break
		}
	}
	if e.fired != fired {
		e.lastFired = e.now
	}
}

// RunUntil executes events with timestamps <= deadline, advancing the clock
// to exactly deadline when it returns (even if the queue drained earlier or
// the next event lies beyond the deadline). An armed watchdog aborts the
// run early, leaving the clock where the abort happened.
func (e *Engine) RunUntil(deadline Time) {
	e.stopped = false
	fired := e.fired
	for !e.stopped {
		if e.wdOn && !e.wdCheck() {
			// Abort without the deadline clamp, but reconcile lastFired
			// first: the clock still sits on the last fired event.
			if e.fired != fired {
				e.lastFired = e.now
			}
			return
		}
		when, ok := e.peekWhen()
		if !ok || when > deadline {
			break
		}
		e.step()
	}
	if e.fired != fired {
		e.lastFired = e.now
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// reapRoot pops dead entries off the heap root — the root is known dead on
// entry — releasing each slot, until a live event surfaces (its slot is
// returned) or the heap drains. It is the one copy of the dead-slot reap
// loop, shared by step and peekWhen so the reap-and-release bookkeeping
// (and therefore Pending's exactness) cannot drift between the two paths;
// each caller keeps only the loop-free root-is-live check inline, which is
// what lets the Go compiler inline the hot path.
func (e *Engine) reapRoot() (int32, bool) {
	for {
		e.release(e.heap[0])
		e.popRoot()
		if len(e.heap) == 0 {
			return 0, false
		}
		if slot := e.heap[0]; !e.events[slot].dead {
			return slot, true
		}
	}
}

// peekWhen reports the timestamp of the earliest live event, reaping dead
// heap entries encountered at the root.
func (e *Engine) peekWhen() (Time, bool) {
	if len(e.heap) == 0 {
		return 0, false
	}
	slot := e.heap[0]
	ev := &e.events[slot]
	if ev.dead {
		var ok bool
		if slot, ok = e.reapRoot(); !ok {
			return 0, false
		}
		ev = &e.events[slot]
	}
	return ev.when, true
}

// less orders heap positions i, j by (when, seq).
func (e *Engine) less(i, j int) bool {
	a, b := &e.events[e.heap[i]], &e.events[e.heap[j]]
	if a.when != b.when {
		return a.when < b.when
	}
	return a.seq < b.seq
}

// up restores the heap invariant after appending at position i.
func (e *Engine) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !e.less(i, parent) {
			break
		}
		e.heap[i], e.heap[parent] = e.heap[parent], e.heap[i]
		i = parent
	}
}

// popRoot removes the heap root and restores the invariant.
func (e *Engine) popRoot() {
	n := len(e.heap) - 1
	e.heap[0] = e.heap[n]
	e.heap = e.heap[:n]
	if n > 0 {
		e.down(0)
	}
}

// down sifts position i toward the leaves.
func (e *Engine) down(i int) {
	n := len(e.heap)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		least := left
		if right := left + 1; right < n && e.less(right, left) {
			least = right
		}
		if !e.less(least, i) {
			return
		}
		e.heap[i], e.heap[least] = e.heap[least], e.heap[i]
		i = least
	}
}
