package sim

import "testing"

// countingProbe tallies callbacks and remembers the last fire instant.
type countingProbe struct {
	scheduled, fired, cancelled int
	lastFire                    Time
}

func (p *countingProbe) OnSchedule(Time)  { p.scheduled++ }
func (p *countingProbe) OnFire(when Time) { p.fired++; p.lastFire = when }
func (p *countingProbe) OnCancel(Time)    { p.cancelled++ }

func TestProbeCounts(t *testing.T) {
	e := NewEngine()
	p := &countingProbe{}
	e.SetProbe(p)

	var ran int
	id := e.Schedule(5*Nanosecond, func() { ran++ })
	e.Schedule(2*Nanosecond, func() { ran++ })
	e.Schedule(9*Nanosecond, func() { ran++ })
	if !e.Cancel(id) {
		t.Fatal("cancel of live event failed")
	}
	// Cancelling twice must not re-count.
	if e.Cancel(id) {
		t.Fatal("double cancel succeeded")
	}
	e.Run()

	if ran != 2 {
		t.Fatalf("ran %d events, want 2", ran)
	}
	if p.scheduled != 3 || p.fired != 2 || p.cancelled != 1 {
		t.Fatalf("probe saw schedule=%d fire=%d cancel=%d, want 3/2/1",
			p.scheduled, p.fired, p.cancelled)
	}
	if p.lastFire != 9*Nanosecond {
		t.Fatalf("last fire at %v, want 9ns", p.lastFire)
	}
}

// Detaching the probe must stop callbacks without disturbing execution.
func TestProbeDetach(t *testing.T) {
	e := NewEngine()
	p := &countingProbe{}
	e.SetProbe(p)
	e.Schedule(Nanosecond, func() {})
	e.SetProbe(nil)
	e.Schedule(2*Nanosecond, func() {})
	e.Run()
	if p.scheduled != 1 || p.fired != 0 {
		t.Fatalf("detached probe saw schedule=%d fire=%d, want 1/0", p.scheduled, p.fired)
	}
}

// The probe must observe the deterministic event order: same-instant events
// fire in schedule order, so two runs record identical sequences.
type orderProbe struct{ fires []Time }

func (p *orderProbe) OnSchedule(Time)  {}
func (p *orderProbe) OnFire(when Time) { p.fires = append(p.fires, when) }
func (p *orderProbe) OnCancel(Time)    {}

func TestProbeObservesDeterministicOrder(t *testing.T) {
	run := func() []Time {
		e := NewEngine()
		p := &orderProbe{}
		e.SetProbe(p)
		for i := 0; i < 50; i++ {
			when := Time(i%7) * Nanosecond
			e.At(when, func() {})
		}
		e.Run()
		return p.fires
	}
	a, b := run(), run()
	if len(a) != 50 {
		t.Fatalf("observed %d fires, want 50", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("fire %d differs across runs: %v vs %v", i, a[i], b[i])
		}
		if i > 0 && a[i] < a[i-1] {
			t.Fatalf("fire order regressed at %d: %v after %v", i, a[i], a[i-1])
		}
	}
}

// With a probe compiled in but detached, scheduling must stay allocation
// free — the same guarantee TestEngineScheduleAllocs pins for the bare
// engine.
func TestProbeDisabledAllocs(t *testing.T) {
	e := NewEngine()
	fn := func() {}
	for i := 0; i < 64; i++ {
		e.Schedule(Time(i)*Nanosecond, fn)
	}
	e.Run()
	allocs := testing.AllocsPerRun(1000, func() {
		for i := 0; i < 64; i++ {
			e.Schedule(Time(i)*Nanosecond, fn)
		}
		e.Run()
	})
	if allocs != 0 {
		t.Fatalf("engine with detached probe allocates %v per run, want 0", allocs)
	}
}
