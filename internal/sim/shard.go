package sim

import (
	"fmt"
	"sort"
	"sync"
)

// This file is the conservative parallel layer over the single-threaded
// Engine: a ShardGroup partitions one simulation's components across N
// engine shards, each advanced on its own goroutine, synchronized with
// bounded lookahead windows (the classic conservative-DES scheme, in its
// simple barrier-per-window form rather than null messages — every shard
// runs the same window [T, T+lookahead), where T is the globally earliest
// pending instant, and cross-shard events are exchanged at the barrier).
//
// The safety argument: cross-shard interaction is only allowed through
// Channels whose delay is at least the group lookahead, so any event sent
// while executing window [T, T+L) carries a timestamp >= T+L — it cannot
// affect the window being executed, and shards may run it lock-free in
// parallel. Undelivered events wait in a per-shard inbox until the window
// containing their timestamp opens.
//
// Determinism contract: shards=1 and shards=N produce byte-identical
// results. Three properties carry it, independent of the partition:
//   - inbox injection order is the total order (when, channel id, send
//     seq) — the fixed tie-break — so same-instant cross-shard events
//     enter every destination engine in the same relative order;
//   - window boundaries depend only on the globally earliest pending
//     instant and the lookahead, both partition-independent, so the
//     schedule-order (seq) relationship between injected events and
//     locally scheduled events is reproduced exactly;
//   - components on one shard interact only through Channels, so events
//     of unrelated components may interleave differently in global seq
//     order without any observable effect.
// Builders must create channels in a fixed order (channel ids are minted
// in creation order) and assign components to shards as pure functions of
// component index, never of execution order.

// xevent is one timestamped cross-shard event waiting in a shard inbox.
type xevent struct {
	when Time
	ch   int32  // sending channel id: first tie-break after when
	seq  uint64 // per-channel send sequence: second tie-break
	fn   func()
}

// Channel is a one-way conservative link from a source shard to a
// destination shard. Sends are buffered on the sending shard and delivered
// at the next window barrier; each send must respect the group lookahead.
// A Channel may only be used from callbacks running on its source shard's
// engine (or before Run starts).
type Channel struct {
	g        *ShardGroup
	id       int32
	src, dst int
	seq      uint64
	buf      []xevent
}

// Send schedules fn on the destination shard's engine after delay,
// measured from the source shard's current instant. delay below the group
// lookahead would break conservative safety and panics.
func (c *Channel) Send(delay Time, fn func()) {
	g := c.g
	if delay < g.lookahead {
		panic(fmt.Sprintf("sim: cross-shard send with delay %v below the conservative lookahead %v", delay, g.lookahead))
	}
	if fn == nil {
		panic("sim: nil cross-shard event function")
	}
	when := satAdd(g.engines[c.src].now, delay)
	c.buf = append(c.buf, xevent{when: when, ch: c.id, seq: c.seq, fn: fn})
	c.seq++
}

// ShardGroup runs N Engines in lockstep lookahead windows. Build model
// components on the per-shard engines (Engine(i)), connect shards with
// NewChannel, then call Run once.
type ShardGroup struct {
	lookahead Time
	engines   []*Engine
	channels  []*Channel
	inbox     [][]xevent // per destination shard, sorted by (when, ch, seq)
	wd        Watchdog
	wdErr     *WatchdogError
}

// NewShardGroup returns a group of `shards` empty engines synchronized
// with the given conservative lookahead (the minimum cross-shard link
// latency of the model being built). The lookahead must be positive: it
// is the window width, and a zero window cannot advance.
func NewShardGroup(shards int, lookahead Time) *ShardGroup {
	if shards < 1 {
		panic(fmt.Sprintf("sim: shard group needs at least one shard, got %d", shards))
	}
	if lookahead <= 0 {
		panic(fmt.Sprintf("sim: shard group needs a positive lookahead, got %v", lookahead))
	}
	engines := make([]*Engine, shards)
	for i := range engines {
		engines[i] = NewEngine()
	}
	return &ShardGroup{
		lookahead: lookahead,
		engines:   engines,
		inbox:     make([][]xevent, shards),
	}
}

// Shards returns the number of engine shards.
func (g *ShardGroup) Shards() int { return len(g.engines) }

// Lookahead returns the group's conservative window width.
func (g *ShardGroup) Lookahead() Time { return g.lookahead }

// Engine returns shard i's engine, for building that shard's components.
func (g *ShardGroup) Engine(i int) *Engine { return g.engines[i] }

// NewChannel creates a conservative one-way link from shard src to shard
// dst. src == dst is allowed (and is how a shards=1 group exercises the
// identical delivery path as a sharded one). Channel ids — the delivery
// tie-break — are minted in creation order, so builders must create
// channels in a partition-independent order.
func (g *ShardGroup) NewChannel(src, dst int) *Channel {
	if src < 0 || src >= len(g.engines) || dst < 0 || dst >= len(g.engines) {
		panic(fmt.Sprintf("sim: channel %d->%d outside the %d-shard group", src, dst, len(g.engines)))
	}
	c := &Channel{g: g, id: int32(len(g.channels)), src: src, dst: dst}
	g.channels = append(g.channels, c)
	return c
}

// SetWatchdog arms every shard with w and additionally enforces w.MaxEvents
// as a group-wide budget, checked at each window barrier (the per-shard
// copy still bounds a runaway shard inside one window, and carries the
// no-progress and wall-clock checks unchanged).
func (g *ShardGroup) SetWatchdog(w Watchdog) {
	g.wd = w
	g.wdErr = nil
	for _, e := range g.engines {
		e.SetWatchdog(w)
	}
}

// Fired reports the total events executed across all shards.
func (g *ShardGroup) Fired() uint64 {
	var n uint64
	for _, e := range g.engines {
		n += e.Fired()
	}
	return n
}

// Pending reports live events plus cross-shard events not yet delivered.
func (g *ShardGroup) Pending() int {
	n := 0
	for _, e := range g.engines {
		n += e.Pending()
	}
	for _, in := range g.inbox {
		n += len(in)
	}
	for _, c := range g.channels {
		n += len(c.buf)
	}
	return n
}

// Now returns the instant of the latest fired event across all shards —
// the group analogue of Engine.Now after a plain Run. It is partition-
// independent: the same model fires the same final event at any shard
// count.
func (g *ShardGroup) Now() Time {
	var t Time
	for _, e := range g.engines {
		if lf := e.LastFired(); lf > t {
			t = lf
		}
	}
	return t
}

// Err returns the diagnostic of a tripped watchdog (group budget or any
// shard's own), or nil.
func (g *ShardGroup) Err() error {
	for _, e := range g.engines {
		if err := e.Err(); err != nil {
			return err
		}
	}
	if g.wdErr == nil {
		return nil
	}
	return g.wdErr
}

// Run executes the group to completion: windows advance until every shard
// drains and no cross-shard event is in flight, or a watchdog trips (the
// tripped diagnostic is returned and also available from Err). Run may
// only be called once per group.
func (g *ShardGroup) Run() error {
	n := len(g.engines)
	g.wdErr = nil

	// Persistent per-shard workers; a single-shard group runs inline.
	var work []chan Time
	var wg sync.WaitGroup
	if n > 1 {
		work = make([]chan Time, n)
		for i := range work {
			work[i] = make(chan Time, 1)
			go func(e *Engine, ch <-chan Time) {
				for deadline := range ch {
					e.RunUntil(deadline)
					wg.Done()
				}
			}(g.engines[i], work[i])
		}
		defer func() {
			for _, ch := range work {
				close(ch)
			}
		}()
	}

	for {
		// Barrier: find the globally earliest pending instant. Engines are
		// idle here, so peeking (which reaps dead roots) is safe.
		T := MaxTime
		any := false
		for i, e := range g.engines {
			if w, ok := e.peekWhen(); ok && (!any || w < T) {
				T, any = w, true
			}
			if in := g.inbox[i]; len(in) > 0 && (!any || in[0].when < T) {
				T, any = in[0].when, true
			}
		}
		if !any {
			return nil
		}

		// Group event budget, checked deterministically at the barrier.
		if g.wd.MaxEvents > 0 && g.Fired() >= g.wd.MaxEvents {
			g.wdErr = &WatchdogError{
				Reason:  fmt.Sprintf("group event budget of %d exhausted", g.wd.MaxEvents),
				Now:     T,
				Fired:   g.Fired(),
				Pending: g.Pending(),
			}
			return g.wdErr
		}

		// Open the window [T, E) and deliver every buffered event inside it.
		// A saturated E widens the window to include MaxTime itself, so an
		// event at the last representable instant still fires.
		E := satAdd(T, g.lookahead)
		deadline := E - 1
		if E == MaxTime {
			deadline = MaxTime
		}
		for i := range g.engines {
			g.inject(i, deadline)
		}

		// Execute the window on every shard that has work in it. A window
		// with one busy shard — the common case when the lookahead is small
		// against the event spacing — runs inline: the goroutine handoff
		// would buy no parallelism and its cost would dominate the window.
		busy := -1
		nbusy := 0
		for i, e := range g.engines {
			if w, ok := e.peekWhen(); ok && w <= deadline {
				busy = i
				nbusy++
			}
		}
		switch {
		case nbusy == 0:
			// All deliverable work was beyond the deadline; nothing fires.
		case nbusy == 1 || n == 1:
			g.engines[busy].RunUntil(deadline)
		default:
			for i, e := range g.engines {
				if w, ok := e.peekWhen(); ok && w <= deadline {
					wg.Add(1)
					work[i] <- deadline
				}
			}
			wg.Wait()
		}
		for _, e := range g.engines {
			if err := e.Err(); err != nil {
				return err
			}
		}

		// Barrier: collect the window's cross-shard sends and order each
		// inbox by the fixed (when, channel, seq) tie-break.
		touched := false
		for _, c := range g.channels {
			if len(c.buf) == 0 {
				continue
			}
			g.inbox[c.dst] = append(g.inbox[c.dst], c.buf...)
			c.buf = c.buf[:0]
			touched = true
		}
		if touched {
			for i := range g.inbox {
				sortInbox(g.inbox[i])
			}
		}
	}
}

// inject schedules every inbox event with when <= deadline onto the
// shard's engine, in inbox (tie-break) order, and drops them from the
// inbox.
func (g *ShardGroup) inject(shard int, deadline Time) {
	in := g.inbox[shard]
	k := 0
	for k < len(in) && in[k].when <= deadline {
		k++
	}
	if k == 0 {
		return
	}
	e := g.engines[shard]
	for i := range in[:k] {
		e.At(in[i].when, in[i].fn)
	}
	rest := copy(in, in[k:])
	for i := rest; i < len(in); i++ {
		in[i] = xevent{} // release the delivered fns
	}
	g.inbox[shard] = in[:rest]
}

// sortInbox orders events by the deterministic delivery key.
func sortInbox(in []xevent) {
	sort.Slice(in, func(i, j int) bool {
		a, b := &in[i], &in[j]
		if a.when != b.when {
			return a.when < b.when
		}
		if a.ch != b.ch {
			return a.ch < b.ch
		}
		return a.seq < b.seq
	})
}

// satAdd adds non-negative b to a, saturating at MaxTime.
func satAdd(a, b Time) Time {
	if s := a + b; s >= a {
		return s
	}
	return MaxTime
}
