package cpu

import (
	"testing"
	"testing/quick"

	"netdimm/internal/sim"
)

func TestCycle(t *testing.T) {
	p := TableOne()
	// 3.4GHz -> ~294ps.
	if c := p.Cycle(); c < 290 || c > 298 {
		t.Fatalf("Cycle = %v", c)
	}
}

func TestEstimateBounds(t *testing.T) {
	p := TableOne()
	// A fully parallel block is issue-bound.
	par := Block{Instrs: 300, DepFrac: 0}
	want := sim.Time(100) * p.Cycle()
	if got := p.Estimate(par); got != want {
		t.Fatalf("issue-bound = %v, want %v", got, want)
	}
	// A fully serial block is dependency-bound.
	ser := Block{Instrs: 300, DepFrac: 1}
	if got := p.Estimate(ser); got != sim.Time(300)*p.Cycle() {
		t.Fatalf("dep-bound = %v", got)
	}
}

func TestEstimateMissStalls(t *testing.T) {
	p := TableOne()
	base := p.Estimate(Block{Instrs: 100, DepFrac: 0.3})
	withL1 := p.Estimate(Block{Instrs: 100, DepFrac: 0.3, L1DMisses: 2})
	withL2 := p.Estimate(Block{Instrs: 100, DepFrac: 0.3, L2Misses: 2})
	if withL1 <= base {
		t.Fatal("L1 misses should add stalls")
	}
	if withL2 <= withL1 {
		t.Fatal("memory misses should dominate L2 hits")
	}
	// MLP overlap: 6 misses cost one round, 7 cost two.
	six := p.Estimate(Block{Instrs: 10, L2Misses: 6})
	seven := p.Estimate(Block{Instrs: 10, L2Misses: 7})
	if seven-six != p.MemLat {
		t.Fatalf("MLP rounds wrong: %v vs %v", six, seven)
	}
}

func TestEstimateStreaming(t *testing.T) {
	p := TableOne()
	small := p.Estimate(Block{Instrs: 10, Bytes: 64})
	big := p.Estimate(Block{Instrs: 10, Bytes: 4096})
	if big <= small {
		t.Fatal("streaming should scale with bytes")
	}
}

func TestEstimateValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid block accepted")
		}
	}()
	TableOne().Estimate(Block{Instrs: 10, DepFrac: 2})
}

// Property: estimates are monotone in instruction count and misses.
func TestEstimateMonotoneProperty(t *testing.T) {
	p := TableOne()
	f := func(a, b uint8, misses uint8) bool {
		x, y := int(a), int(b)
		if x > y {
			x, y = y, x
		}
		bx := Block{Instrs: x, DepFrac: 0.5, L2Misses: int(misses % 8)}
		by := Block{Instrs: y, DepFrac: 0.5, L2Misses: int(misses % 8)}
		return p.Estimate(bx) <= p.Estimate(by)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// The derived software costs must agree with the independently calibrated
// driver constants to within a small factor — Table 1's core model and the
// Fig. 11 calibration describe the same machine.
func TestDeriveMatchesCalibration(t *testing.T) {
	c := Derive(TableOne())
	cases := []struct {
		name       string
		derived    sim.Time
		calibrated sim.Time
	}{
		{"SKBAlloc", c.SKBAlloc, 120 * sim.Nanosecond},
		{"PollCheck", c.PollCheck, 20 * sim.Nanosecond},
		{"DescWrite", c.DescWrite, 20 * sim.Nanosecond},
		{"AllocCacheLookup", c.AllocCacheLookup, 30 * sim.Nanosecond},
		{"SlowAllocPages", c.SlowAllocPages, 400 * sim.Nanosecond},
		{"ZcpyPin", c.ZcpyPin, 100 * sim.Nanosecond},
		{"CopyFixed", c.CopyFixed, 260 * sim.Nanosecond},
		{"FlushBase", c.FlushBase, 30 * sim.Nanosecond},
	}
	for _, cse := range cases {
		ratio := float64(cse.derived) / float64(cse.calibrated)
		if ratio < 0.4 || ratio > 2.5 {
			t.Errorf("%s: derived %v vs calibrated %v (ratio %.2f)",
				cse.name, cse.derived, cse.calibrated, ratio)
		}
	}
	// Copy bandwidth: calibrated 6GB/s; derived from MLP x 64B / MemLat.
	if c.CopyBytesPerSec < 3e9 || c.CopyBytesPerSec > 12e9 {
		t.Errorf("CopyBytesPerSec = %.1e", c.CopyBytesPerSec)
	}
	if c.FlushPerLine < 2*sim.Nanosecond || c.FlushPerLine > 15*sim.Nanosecond {
		t.Errorf("FlushPerLine = %v", c.FlushPerLine)
	}
}
