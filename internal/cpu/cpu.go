// Package cpu is a first-order out-of-order core timing model built from
// the paper's Table 1 parameters (8 cores at 3.4GHz, 3-way superscalar,
// 40-entry ROB, 32KB/64KB/2MB caches at 1/2/12 cycles). The paper runs its
// drivers on gem5's O3 core; this model is the analytical substitute: it
// estimates the execution time of the driver code blocks whose costs the
// driver package uses, tying Table 1's core configuration into the
// simulation instead of leaving the software constants free-floating.
package cpu

import (
	"fmt"
	"math"

	"netdimm/internal/sim"
)

// Params describes the core.
type Params struct {
	FreqGHz    float64
	IssueWidth int
	ROBEntries int
	// L1DLat and L2Lat are load-to-use latencies in cycles.
	L1DLat int
	L2Lat  int
	// MemLat is the DRAM access latency seen by an L2 miss.
	MemLat sim.Time
	// MLP is the sustainable memory-level parallelism (MSHR-bound
	// outstanding misses).
	MLP int
}

// TableOne returns the paper's Table 1 core.
func TableOne() Params {
	return Params{
		FreqGHz:    3.4,
		IssueWidth: 3,
		ROBEntries: 40,
		L1DLat:     2,
		L2Lat:      12,
		MemLat:     70 * sim.Nanosecond,
		MLP:        6,
	}
}

// Cycle returns the clock period.
func (p Params) Cycle() sim.Time {
	return sim.Time(math.Round(1000.0 / p.FreqGHz)) // ps
}

// Block is one straight-line-ish software code block: a driver routine or
// a phase of one (SKB allocation, descriptor write, copy loop, ...).
type Block struct {
	Name string
	// Instrs is the dynamic instruction count per execution.
	Instrs int
	// DepFrac is the fraction of instructions on the critical dependency
	// chain (1.0 = fully serial, 1/IssueWidth = perfectly parallel).
	DepFrac float64
	// L1DMisses and L2Misses count data-cache misses per execution.
	L1DMisses int
	L2Misses  int
	// Bytes, if non-zero, adds a streaming component: the block moves this
	// many bytes through the cache hierarchy (copy loops).
	Bytes int
}

// Estimate returns the block's execution time: the issue-bound or
// dependency-bound instruction time, plus cache-miss stalls with MLP
// overlap, plus the streaming time of bulk data movement.
func (p Params) Estimate(b Block) sim.Time {
	if b.Instrs < 0 || b.DepFrac < 0 || b.DepFrac > 1 {
		panic(fmt.Sprintf("cpu: invalid block %+v", b))
	}
	issueCycles := float64(b.Instrs) / float64(p.IssueWidth)
	depCycles := float64(b.Instrs) * b.DepFrac
	cycles := math.Max(issueCycles, depCycles)
	cycles += float64(b.L1DMisses * p.L2Lat)

	t := sim.Time(math.Round(cycles)) * p.Cycle()
	if b.L2Misses > 0 {
		mlp := p.MLP
		if mlp < 1 {
			mlp = 1
		}
		rounds := (b.L2Misses + mlp - 1) / mlp
		t += sim.Time(rounds) * p.MemLat
	}
	if b.Bytes > 0 {
		// A well-tuned copy loop moves ~16B per cycle until it becomes
		// miss-bound; the misses above account for the miss-bound part.
		t += sim.Time(math.Round(float64(b.Bytes)/16.0)) * p.Cycle()
	}
	return t
}

// DriverBlocks is the catalog of network-driver code blocks, with
// instruction counts representative of a bare-metal polled driver (the
// paper's Sec. 5.1 setup). These feed driver.CostsFromModel.
var DriverBlocks = map[string]Block{
	"skb_alloc": {
		Name: "skb_alloc", Instrs: 180, DepFrac: 0.35, L1DMisses: 3, L2Misses: 1,
	},
	"poll_check": {
		// Load-acquire of the status word (recently DMA-written: misses
		// L1), compare, timer bookkeeping.
		Name: "poll_check", Instrs: 40, DepFrac: 0.6, L1DMisses: 3,
	},
	"desc_write": {
		// Compose the descriptor, store, and the ordering fence.
		Name: "desc_write", Instrs: 50, DepFrac: 0.5, L1DMisses: 2,
	},
	"alloccache_lookup": {
		Name: "alloccache_lookup", Instrs: 40, DepFrac: 0.5, L1DMisses: 2,
	},
	"alloc_pages_slow": {
		Name: "alloc_pages_slow", Instrs: 600, DepFrac: 0.4, L1DMisses: 8, L2Misses: 4,
	},
	"zcpy_pin": {
		Name: "zcpy_pin", Instrs: 150, DepFrac: 0.45, L1DMisses: 2, L2Misses: 1,
	},
	"copy_fixed": {
		// Loop setup, skb bookkeeping, and the dependent cold misses on
		// the first source and destination lines before the pipeline fills.
		Name: "copy_fixed", Instrs: 120, DepFrac: 0.5, L1DMisses: 4, L2Misses: 12,
	},
	"flush_base": {
		// clwb loop setup plus the trailing sfence.
		Name: "flush_base", Instrs: 60, DepFrac: 0.7, L1DMisses: 1,
	},
}

// SoftwareCosts is the derived cost set, mirroring the driver package's
// constants.
type SoftwareCosts struct {
	SKBAlloc         sim.Time
	PollCheck        sim.Time
	DescWrite        sim.Time
	AllocCacheLookup sim.Time
	SlowAllocPages   sim.Time
	ZcpyPin          sim.Time
	CopyFixed        sim.Time
	FlushBase        sim.Time
	// CopyBytesPerSec is the steady-state cold-destination copy rate: one
	// cacheline per memory round trip at the core's MLP.
	CopyBytesPerSec float64
	// FlushPerLine is the cost of one clwb in a flush loop.
	FlushPerLine sim.Time
}

// Derive computes the software cost set from the core parameters.
func Derive(p Params) SoftwareCosts {
	est := func(name string) sim.Time { return p.Estimate(DriverBlocks[name]) }
	mlp := p.MLP
	if mlp < 1 {
		mlp = 1
	}
	// A cold copy sustains MLP cachelines per memory latency.
	copyBW := 64.0 * float64(mlp) / p.MemLat.Seconds()
	return SoftwareCosts{
		SKBAlloc:         est("skb_alloc"),
		PollCheck:        est("poll_check"),
		DescWrite:        est("desc_write"),
		AllocCacheLookup: est("alloccache_lookup"),
		SlowAllocPages:   est("alloc_pages_slow"),
		ZcpyPin:          est("zcpy_pin"),
		CopyFixed:        est("copy_fixed"),
		FlushBase:        est("flush_base"),
		CopyBytesPerSec:  copyBW,
		// clwb retires every few cycles when pipelined.
		FlushPerLine: 16 * p.Cycle(),
	}
}
