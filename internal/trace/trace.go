// Package trace defines the on-disk format for generated packet traces:
// a small binary format written by cmd/netdimm-trace and replayed by the
// experiment harness, so trace generation and replay can run as separate
// steps (mirroring how the paper replays recorded cluster traces).
package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"netdimm/internal/ethernet"
	"netdimm/internal/sim"
	"netdimm/internal/workload"
)

// Magic identifies a NetDIMM trace stream.
const Magic = "NDTR"

// Version of the trace format.
const Version = 1

// Header describes a trace file.
type Header struct {
	Cluster workload.Cluster
	Seed    uint64
	Count   uint32
}

// record is the fixed-width on-disk event: 8B timestamp (ps), 2B size,
// 1B locality.
const recordBytes = 11

// Write serialises a trace.
func Write(w io.Writer, h Header, events []workload.Event) error {
	if int(h.Count) != len(events) {
		return fmt.Errorf("trace: header count %d != %d events", h.Count, len(events))
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(Magic); err != nil {
		return err
	}
	fixed := []any{uint16(Version), uint8(h.Cluster), h.Seed, h.Count}
	for _, v := range fixed {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	var buf [recordBytes]byte
	for i, e := range events {
		if e.Size < 0 || e.Size > 0xffff {
			return fmt.Errorf("trace: event %d size %d out of range", i, e.Size)
		}
		if e.At < 0 {
			return fmt.Errorf("trace: event %d negative timestamp", i)
		}
		binary.LittleEndian.PutUint64(buf[0:8], uint64(e.At))
		binary.LittleEndian.PutUint16(buf[8:10], uint16(e.Size))
		buf[10] = uint8(e.Locality)
		if _, err := bw.Write(buf[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read parses a trace stream written by Write.
func Read(r io.Reader) (Header, []workload.Event, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(Magic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return Header{}, nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if string(magic) != Magic {
		return Header{}, nil, fmt.Errorf("trace: bad magic %q", magic)
	}
	var version uint16
	var cluster uint8
	var h Header
	if err := binary.Read(br, binary.LittleEndian, &version); err != nil {
		return Header{}, nil, err
	}
	if version != Version {
		return Header{}, nil, fmt.Errorf("trace: unsupported version %d", version)
	}
	if err := binary.Read(br, binary.LittleEndian, &cluster); err != nil {
		return Header{}, nil, err
	}
	h.Cluster = workload.Cluster(cluster)
	if err := binary.Read(br, binary.LittleEndian, &h.Seed); err != nil {
		return Header{}, nil, err
	}
	if err := binary.Read(br, binary.LittleEndian, &h.Count); err != nil {
		return Header{}, nil, err
	}
	events := make([]workload.Event, 0, h.Count)
	var buf [recordBytes]byte
	var prev sim.Time
	for i := uint32(0); i < h.Count; i++ {
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			return Header{}, nil, fmt.Errorf("trace: event %d: %w", i, err)
		}
		e := workload.Event{
			At:       sim.Time(binary.LittleEndian.Uint64(buf[0:8])),
			Size:     int(binary.LittleEndian.Uint16(buf[8:10])),
			Locality: ethernet.Locality(buf[10]),
		}
		if e.At < prev {
			return Header{}, nil, fmt.Errorf("trace: event %d out of order", i)
		}
		prev = e.At
		events = append(events, e)
	}
	return h, events, nil
}
