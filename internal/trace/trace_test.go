package trace

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"netdimm/internal/workload"
)

func TestRoundTrip(t *testing.T) {
	gen := workload.NewGenerator(workload.Webserver, 0, 11)
	events := gen.Generate(500)
	h := Header{Cluster: workload.Webserver, Seed: 11, Count: 500}

	var buf bytes.Buffer
	if err := Write(&buf, h, events); err != nil {
		t.Fatal(err)
	}
	h2, got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if h2 != h {
		t.Fatalf("header = %+v, want %+v", h2, h)
	}
	if len(got) != len(events) {
		t.Fatalf("events = %d", len(got))
	}
	for i := range got {
		if got[i] != events[i] {
			t.Fatalf("event %d: %+v != %+v", i, got[i], events[i])
		}
	}
}

func TestWriteValidation(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, Header{Count: 2}, nil); err == nil {
		t.Error("count mismatch accepted")
	}
	if err := Write(&buf, Header{Count: 1}, []workload.Event{{Size: 1 << 17}}); err == nil {
		t.Error("oversized packet accepted")
	}
	if err := Write(&buf, Header{Count: 1}, []workload.Event{{At: -1, Size: 64}}); err == nil {
		t.Error("negative timestamp accepted")
	}
}

func TestReadErrors(t *testing.T) {
	if _, _, err := Read(strings.NewReader("XXXX")); err == nil {
		t.Error("bad magic accepted")
	}
	if _, _, err := Read(strings.NewReader("")); err == nil {
		t.Error("empty stream accepted")
	}
	// Truncated body.
	var buf bytes.Buffer
	events := workload.NewGenerator(workload.Hadoop, 0, 1).Generate(10)
	if err := Write(&buf, Header{Cluster: workload.Hadoop, Seed: 1, Count: 10}, events); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-5]
	if _, _, err := Read(bytes.NewReader(trunc)); err == nil {
		t.Error("truncated stream accepted")
	}
	// Corrupt version.
	raw := append([]byte(nil), buf.Bytes()...)
	raw[4] = 9
	if _, _, err := Read(bytes.NewReader(raw)); err == nil {
		t.Error("bad version accepted")
	}
}

// TestReadTruncatedEverywhere cuts a valid stream at every byte boundary
// — inside the magic, inside each header field, and mid-record — and
// requires Read to fail cleanly at all of them.
func TestReadTruncatedEverywhere(t *testing.T) {
	var buf bytes.Buffer
	events := workload.NewGenerator(workload.Webserver, 0, 7).Generate(3)
	if err := Write(&buf, Header{Cluster: workload.Webserver, Seed: 7, Count: 3}, events); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	for cut := 0; cut < len(raw); cut++ {
		if _, _, err := Read(bytes.NewReader(raw[:cut])); err == nil {
			t.Errorf("stream truncated to %d/%d bytes accepted", cut, len(raw))
		}
	}
	// The untruncated stream still reads, so the loop above exercised real
	// truncation and not some unrelated defect.
	if _, _, err := Read(bytes.NewReader(raw)); err != nil {
		t.Fatalf("full stream rejected: %v", err)
	}
}

// TestReadVersionRange rejects every version other than the supported one.
func TestReadVersionRange(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, Header{Count: 0}, nil); err != nil {
		t.Fatal(err)
	}
	for _, v := range []uint16{0, Version + 1, 0xffff} {
		raw := append([]byte(nil), buf.Bytes()...)
		raw[4] = byte(v)
		raw[5] = byte(v >> 8)
		_, _, err := Read(bytes.NewReader(raw))
		if err == nil {
			t.Errorf("version %d accepted", v)
		} else if !strings.Contains(err.Error(), "version") {
			t.Errorf("version %d: error %q does not mention the version", v, err)
		}
	}
}

// Property: Write→Read round-trips any monotone event sequence, across
// clusters and seeds.
func TestRoundTripProperty(t *testing.T) {
	f := func(seed uint64, cluster, count uint8) bool {
		cl := workload.Cluster(cluster % 3)
		n := int(count)
		events := workload.NewGenerator(cl, 0, seed).Generate(n)
		var buf bytes.Buffer
		h := Header{Cluster: cl, Seed: seed, Count: uint32(n)}
		if err := Write(&buf, h, events); err != nil {
			return false
		}
		h2, got, err := Read(&buf)
		if err != nil || h2 != h || len(got) != len(events) {
			return false
		}
		for i := range got {
			if got[i] != events[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestOutOfOrderRejected(t *testing.T) {
	var buf bytes.Buffer
	events := []workload.Event{{At: 100, Size: 64}, {At: 50, Size: 64}}
	if err := Write(&buf, Header{Count: 2}, events); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Read(&buf); err == nil {
		t.Error("out-of-order trace accepted")
	}
}
