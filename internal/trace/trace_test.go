package trace

import (
	"bytes"
	"strings"
	"testing"

	"netdimm/internal/workload"
)

func TestRoundTrip(t *testing.T) {
	gen := workload.NewGenerator(workload.Webserver, 0, 11)
	events := gen.Generate(500)
	h := Header{Cluster: workload.Webserver, Seed: 11, Count: 500}

	var buf bytes.Buffer
	if err := Write(&buf, h, events); err != nil {
		t.Fatal(err)
	}
	h2, got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if h2 != h {
		t.Fatalf("header = %+v, want %+v", h2, h)
	}
	if len(got) != len(events) {
		t.Fatalf("events = %d", len(got))
	}
	for i := range got {
		if got[i] != events[i] {
			t.Fatalf("event %d: %+v != %+v", i, got[i], events[i])
		}
	}
}

func TestWriteValidation(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, Header{Count: 2}, nil); err == nil {
		t.Error("count mismatch accepted")
	}
	if err := Write(&buf, Header{Count: 1}, []workload.Event{{Size: 1 << 17}}); err == nil {
		t.Error("oversized packet accepted")
	}
	if err := Write(&buf, Header{Count: 1}, []workload.Event{{At: -1, Size: 64}}); err == nil {
		t.Error("negative timestamp accepted")
	}
}

func TestReadErrors(t *testing.T) {
	if _, _, err := Read(strings.NewReader("XXXX")); err == nil {
		t.Error("bad magic accepted")
	}
	if _, _, err := Read(strings.NewReader("")); err == nil {
		t.Error("empty stream accepted")
	}
	// Truncated body.
	var buf bytes.Buffer
	events := workload.NewGenerator(workload.Hadoop, 0, 1).Generate(10)
	if err := Write(&buf, Header{Cluster: workload.Hadoop, Seed: 1, Count: 10}, events); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-5]
	if _, _, err := Read(bytes.NewReader(trunc)); err == nil {
		t.Error("truncated stream accepted")
	}
	// Corrupt version.
	raw := append([]byte(nil), buf.Bytes()...)
	raw[4] = 9
	if _, _, err := Read(bytes.NewReader(raw)); err == nil {
		t.Error("bad version accepted")
	}
}

func TestOutOfOrderRejected(t *testing.T) {
	var buf bytes.Buffer
	events := []workload.Event{{At: 100, Size: 64}, {At: 50, Size: 64}}
	if err := Write(&buf, Header{Count: 2}, events); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Read(&buf); err == nil {
		t.Error("out-of-order trace accepted")
	}
}
