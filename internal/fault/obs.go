package fault

import (
	"netdimm/internal/obs"
	"netdimm/internal/stats"
)

// PublishCounters folds a fault-counter block into the metrics registry
// under prefix (e.g. "netdimm.fault"). It lives here rather than in stats
// because stats sits below obs in the import order. A nil registry is a
// no-op.
func PublishCounters(reg *obs.Registry, prefix string, c stats.FaultCounters) {
	if reg == nil {
		return
	}
	reg.Counter(prefix + ".frames_dropped").Add(int64(c.FramesDropped))
	reg.Counter(prefix + ".frames_corrupted").Add(int64(c.FramesCorrupted))
	reg.Counter(prefix + ".port_drops").Add(int64(c.PortDrops))
	reg.Counter(prefix + ".retransmits").Add(int64(c.Retransmits))
	reg.Counter(prefix + ".delivery_failures").Add(int64(c.DeliveryFailures))
	reg.Counter(prefix + ".mem_timeouts").Add(int64(c.MemTimeouts))
	reg.Counter(prefix + ".mem_retries").Add(int64(c.MemRetries))
	reg.Counter(prefix + ".mem_failures").Add(int64(c.MemFailures))
}
