package fault

import (
	"strings"
	"testing"

	"netdimm/internal/sim"
)

func TestSpecValidate(t *testing.T) {
	good := []Spec{
		{},
		{DropProb: 0.5, CorruptProb: 1, PortDropProb: 0, MaxRetries: 3},
		{MemTimeoutProb: 0.1, MemTimeoutNs: 500, MemMaxRetries: 2},
		{RetryBaseNs: 100, RetryCapNs: 100},
	}
	for _, s := range good {
		if err := s.Validate(); err != nil {
			t.Errorf("Validate(%+v) = %v, want nil", s, err)
		}
	}
	bad := []Spec{
		{DropProb: -0.1},
		{CorruptProb: 1.5},
		{PortDropProb: 2},
		{MemTimeoutProb: -1},
		{MaxRetries: -1},
		{MemMaxRetries: -2},
		{RetryBaseNs: -5},
		{MemTimeoutNs: -1},
		{RetryBaseNs: 200, RetryCapNs: 100},
	}
	for _, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("Validate(%+v) = nil, want error", s)
		}
	}
}

func TestSpecEnabled(t *testing.T) {
	if (Spec{}).Enabled() {
		t.Error("zero Spec must be disabled")
	}
	if !(Spec{DropProb: 0.1}).NetEnabled() || !(Spec{DropProb: 0.1}).Enabled() {
		t.Error("DropProb must enable the network faults")
	}
	if !(Spec{MemTimeoutProb: 0.1}).MemEnabled() {
		t.Error("MemTimeoutProb must enable the memory faults")
	}
	if (Spec{MemTimeoutProb: 0.1}).NetEnabled() {
		t.Error("memory faults must not enable the network plane")
	}
}

func TestSpecString(t *testing.T) {
	if got := (Spec{}).String(); got != "disabled" {
		t.Errorf("zero Spec String() = %q, want disabled", got)
	}
	s := Spec{DropProb: 0.01, MaxRetries: 8, MemTimeoutProb: 0.05}.String()
	for _, want := range []string{"drop 0.01", "retries 8", "RDY loss 0.05"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q, missing %q", s, want)
		}
	}
}

func TestBackoffDelay(t *testing.T) {
	b := Backoff{Base: 100 * sim.Nanosecond, Cap: 400 * sim.Nanosecond}
	want := []sim.Time{
		100 * sim.Nanosecond, 200 * sim.Nanosecond,
		400 * sim.Nanosecond, 400 * sim.Nanosecond, 400 * sim.Nanosecond,
	}
	for i, w := range want {
		if got := b.Delay(i); got != w {
			t.Errorf("Delay(%d) = %v, want %v", i, got, w)
		}
	}
	// Uncapped backoff keeps doubling.
	u := Backoff{Base: sim.Nanosecond}
	if got := u.Delay(10); got != 1024*sim.Nanosecond {
		t.Errorf("uncapped Delay(10) = %v, want 1.024µs", got)
	}
	// A zero base falls back to a positive delay so recovery always advances
	// simulated time.
	if got := (Backoff{}).Delay(0); got <= 0 {
		t.Errorf("zero-base Delay(0) = %v, want positive", got)
	}
}

// Property test over the full attempt range the ARQ can reach: the delay
// must stay positive, never decrease, respect the cap when one is set,
// and saturate (rather than wrap negative) without one. Before the
// saturating rewrite, an uncapped 1µs base overflowed int64 and went
// negative around attempt 43.
func TestBackoffDelayProperty(t *testing.T) {
	backoffs := []Backoff{
		{},                            // all defaults
		{Base: sim.Nanosecond},        // uncapped, minimal base
		{Base: 1000 * sim.Nanosecond}, // uncapped, the NetPolicy default base
		{Base: sim.Millisecond},       // uncapped, large base
		{Base: 100 * sim.Nanosecond, Cap: 400 * sim.Nanosecond},
		{Base: 1000 * sim.Nanosecond, Cap: 16_000 * sim.Nanosecond}, // the NetPolicy default
		{Base: sim.Second, Cap: sim.Second},                         // cap == base
	}
	for _, b := range backoffs {
		prev := sim.Time(0)
		for attempt := 0; attempt <= 64; attempt++ {
			d := b.Delay(attempt)
			if d <= 0 {
				t.Fatalf("%+v Delay(%d) = %v, want positive", b, attempt, d)
			}
			if d < prev {
				t.Fatalf("%+v Delay(%d) = %v below Delay(%d) = %v — not monotone", b, attempt, d, attempt-1, prev)
			}
			if b.Cap > 0 && d > b.Cap {
				t.Fatalf("%+v Delay(%d) = %v exceeds cap %v", b, attempt, d, b.Cap)
			}
			if d > sim.MaxTime {
				t.Fatalf("%+v Delay(%d) = %v exceeds sim.MaxTime", b, attempt, d)
			}
			prev = d
		}
		// Deep into saturation the delay must be pinned, not oscillating.
		if b.Cap == 0 {
			if got := b.Delay(64); got != sim.MaxTime {
				t.Errorf("%+v Delay(64) = %v, want saturation at sim.MaxTime", b, got)
			}
		} else if got := b.Delay(64); got != b.Cap {
			t.Errorf("%+v Delay(64) = %v, want cap %v", b, got, b.Cap)
		}
	}
}

func TestSpecValidateFailure(t *testing.T) {
	good := Spec{Failure: Schedule{
		Outages: []Outage{{Kind: OutageSpine, Index: 0, StartNs: 1000, EndNs: 2000}},
		Burst:   Burst{BadLossProb: 0.5, GoodToBad: 0.01, BadToGood: 0.1},
	}}
	if err := good.Validate(); err != nil {
		t.Errorf("Validate(valid Failure) = %v, want nil", err)
	}
	bad := []Spec{
		{Failure: Schedule{Outages: []Outage{{Kind: "bogus", EndNs: 1}}}},
		{Failure: Schedule{Outages: []Outage{{Kind: OutageSpine, StartNs: 5, EndNs: 5}}}},
		{Failure: Schedule{Burst: Burst{BadLossProb: 2}}},
	}
	for _, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("Validate(%+v) = nil, want error", s.Failure)
		}
	}
}

func TestSpecStringFailure(t *testing.T) {
	s := Spec{Failure: Schedule{
		Outages: []Outage{{Kind: OutageSpine, Index: 1, StartNs: 1000, EndNs: 2000}},
	}}
	if !s.Enabled() {
		t.Error("a spec with a failure schedule must be enabled")
	}
	str := s.String()
	if !strings.Contains(str, "failures") || !strings.Contains(str, "spine 1") {
		t.Errorf("String() = %q, want failure schedule summary", str)
	}
	// The schedule must not leak into the summary when disabled.
	if str := (Spec{DropProb: 0.1}).String(); strings.Contains(str, "failures") {
		t.Errorf("String() = %q mentions failures without a schedule", str)
	}
}

func TestRetryPolicyNextDelay(t *testing.T) {
	p := RetryPolicy{Backoff: Backoff{Base: 10 * sim.Nanosecond}, MaxRetries: 2}
	if d, ok := p.NextDelay(0); !ok || d != 10*sim.Nanosecond {
		t.Errorf("NextDelay(0) = %v, %v", d, ok)
	}
	if d, ok := p.NextDelay(1); !ok || d != 20*sim.Nanosecond {
		t.Errorf("NextDelay(1) = %v, %v", d, ok)
	}
	if _, ok := p.NextDelay(2); ok {
		t.Error("NextDelay(2) must exhaust a budget of 2 retries")
	}
	// MaxRetries 0 means unlimited.
	unlimited := RetryPolicy{Backoff: Backoff{Base: sim.Nanosecond}}
	if _, ok := unlimited.NextDelay(1_000_000); !ok {
		t.Error("unlimited policy must never exhaust")
	}
}

func TestPolicyDefaults(t *testing.T) {
	p := Spec{}.NetPolicy()
	if p.Backoff.Base != defaultRetryBase || p.Backoff.Cap != defaultCapFactor*defaultRetryBase {
		t.Errorf("default NetPolicy = %+v", p)
	}
	if d := (Spec{}).MemDeadline(); d != defaultMemTimeout {
		t.Errorf("default MemDeadline = %v, want %v", d, defaultMemTimeout)
	}
	s := Spec{RetryBaseNs: 500, RetryCapNs: 2000, MemTimeoutNs: 700, MaxRetries: 3, MemMaxRetries: 5}
	if p := s.NetPolicy(); p.Backoff.Base != 500*sim.Nanosecond || p.Backoff.Cap != 2000*sim.Nanosecond || p.MaxRetries != 3 {
		t.Errorf("NetPolicy = %+v", p)
	}
	if p := s.MemPolicy(); p.MaxRetries != 5 {
		t.Errorf("MemPolicy.MaxRetries = %d, want 5", p.MaxRetries)
	}
	if d := s.MemDeadline(); d != 700*sim.Nanosecond {
		t.Errorf("MemDeadline = %v, want 700ns", d)
	}
}

// Two injectors with the same spec and seed must draw identical decision
// sequences — the foundation of the sweep's sequential/parallel identity.
func TestInjectorDeterminism(t *testing.T) {
	spec := Spec{DropProb: 0.3, CorruptProb: 0.1, PortDropProb: 0.05, MemTimeoutProb: 0.2}
	a := NewInjector(spec, 42)
	b := NewInjector(spec, 42)
	for i := 0; i < 2000; i++ {
		if a.DropFrame() != b.DropFrame() || a.CorruptFrame() != b.CorruptFrame() ||
			a.PortDrop() != b.PortDrop() || a.LoseRDY() != b.LoseRDY() {
			t.Fatalf("decision %d diverged between identical injectors", i)
		}
	}
	if a.Counters != b.Counters {
		t.Errorf("counters diverged: %+v vs %+v", a.Counters, b.Counters)
	}
	if a.Counters.FramesDropped == 0 || a.Counters.MemTimeouts == 0 {
		t.Errorf("expected some injected faults at these rates, got %+v", a.Counters)
	}
}

// Different cell seeds (and different spec seeds) must perturb the stream.
func TestInjectorSeedsDiffer(t *testing.T) {
	spec := Spec{DropProb: 0.5}
	a, b := NewInjector(spec, 1), NewInjector(spec, 2)
	specB := spec
	specB.Seed = 9
	c := NewInjector(specB, 1)
	same := func(x, y *Injector) bool {
		for i := 0; i < 256; i++ {
			if x.DropFrame() != y.DropFrame() {
				return false
			}
		}
		return true
	}
	if same(a, b) {
		t.Error("cell seeds 1 and 2 drew identical traces")
	}
	if same(NewInjector(spec, 1), c) {
		t.Error("Spec.Seed did not perturb the stream")
	}
}

// A disabled fault class must not consume random values: the zero spec's
// injector leaves the stream untouched, which keeps fault-free runs
// byte-identical to the pre-fault simulator.
func TestZeroSpecDrawsNothing(t *testing.T) {
	j := NewInjector(Spec{}, 7)
	for i := 0; i < 100; i++ {
		if j.DropFrame() || j.CorruptFrame() || j.PortDrop() || j.LoseRDY() {
			t.Fatal("zero spec injected a fault")
		}
	}
	if j.Counters.Any() {
		t.Errorf("zero spec counted faults: %+v", j.Counters)
	}
	// The stream must be in its initial state: a probability-1 draw after
	// 400 disabled decisions matches the very first value of a fresh stream.
	fresh := NewInjector(Spec{DropProb: 1}, 7)
	jj := NewInjector(Spec{DropProb: 1}, 7)
	if fresh.DropFrame() != jj.DropFrame() {
		t.Fatal("fresh injectors diverged") // sanity
	}
}

func TestOutcomeString(t *testing.T) {
	for o, want := range map[Outcome]string{
		Delivered: "delivered", Dropped: "dropped", Corrupted: "corrupted", Outcome(9): "Outcome(9)",
	} {
		if got := o.String(); got != want {
			t.Errorf("Outcome(%d).String() = %q, want %q", int(o), got, want)
		}
	}
}
