package fault

import (
	"math"
	"strings"
	"testing"

	"netdimm/internal/sim"
)

func TestOutageValidate(t *testing.T) {
	good := []Outage{
		{Kind: OutageLink, Index: 0, StartNs: 0, EndNs: 1},
		{Kind: OutageSpine, Index: 3, StartNs: 1000, EndNs: 5000},
		{Kind: OutageLeaf, Index: 2, StartNs: 0, EndNs: 10},
		{Kind: OutageTrunk, Index: 1, Leaf: 2, StartNs: 5, EndNs: 6},
	}
	for _, o := range good {
		if err := o.Validate(); err != nil {
			t.Errorf("Validate(%+v) = %v, want nil", o, err)
		}
	}
	bad := []Outage{
		{},                                                 // no kind
		{Kind: "switch", StartNs: 0, EndNs: 1},             // unknown kind
		{Kind: OutageSpine, Index: -1, EndNs: 1},           // negative index
		{Kind: OutageTrunk, Leaf: -1, EndNs: 1},            // negative leaf
		{Kind: OutageSpine, StartNs: -5, EndNs: 1},         // negative start
		{Kind: OutageSpine, StartNs: 10, EndNs: 10},        // empty window
		{Kind: OutageSpine, StartNs: 10, EndNs: 5},         // inverted window
		{Kind: OutageLink, Index: 0, StartNs: 0, EndNs: 0}, // zero end
	}
	for _, o := range bad {
		if err := o.Validate(); err == nil {
			t.Errorf("Validate(%+v) = nil, want error", o)
		}
	}
}

func TestOutageString(t *testing.T) {
	cases := []struct {
		o    Outage
		want []string
	}{
		{Outage{Kind: OutageSpine, Index: 0, StartNs: 20000, EndNs: 40000}, []string{"spine 0", "down"}},
		{Outage{Kind: OutageLink, Index: 7, StartNs: 0, EndNs: 100}, []string{"link 7"}},
		{Outage{Kind: OutageTrunk, Index: 1, Leaf: 2, StartNs: 0, EndNs: 100}, []string{"trunk l2-s1"}},
		{Outage{Kind: OutageLeaf, Index: 3, StartNs: 0, EndNs: 100}, []string{"leaf 3"}},
	}
	for _, tc := range cases {
		s := tc.o.String()
		for _, want := range tc.want {
			if !strings.Contains(s, want) {
				t.Errorf("String(%+v) = %q, missing %q", tc.o, s, want)
			}
		}
	}
}

func TestOutageWindow(t *testing.T) {
	o := Outage{Kind: OutageSpine, StartNs: 1500, EndNs: 2500}
	start, end := o.Window()
	if start != 1500*sim.Nanosecond || end != 2500*sim.Nanosecond {
		t.Errorf("Window() = %v, %v; want 1.5µs, 2.5µs", start, end)
	}
}

func TestBurstValidate(t *testing.T) {
	good := []Burst{
		{},
		{GoodLossProb: 0.001, BadLossProb: 0.5, GoodToBad: 0.01, BadToGood: 0.1},
		{BadLossProb: 1, GoodToBad: 1, BadToGood: 1},
	}
	for _, b := range good {
		if err := b.Validate(); err != nil {
			t.Errorf("Validate(%+v) = %v, want nil", b, err)
		}
	}
	bad := []Burst{
		{GoodLossProb: -0.1},
		{BadLossProb: 1.5},
		{GoodToBad: 2},
		{BadToGood: -1},
		{GoodLossProb: math.NaN()},
	}
	for _, b := range bad {
		if err := b.Validate(); err == nil {
			t.Errorf("Validate(%+v) = nil, want error", b)
		}
	}
}

func TestBurstEnabled(t *testing.T) {
	if (Burst{}).Enabled() {
		t.Error("zero Burst must be disabled")
	}
	if (Burst{BadLossProb: 0.5}).Enabled() {
		t.Error("an unreachable bad state (GoodToBad 0) must not enable the process")
	}
	if !(Burst{BadLossProb: 0.5, GoodToBad: 0.01}).Enabled() {
		t.Error("a reachable lossy bad state must enable the process")
	}
	if !(Burst{GoodLossProb: 0.001}).Enabled() {
		t.Error("good-state loss alone must enable the process")
	}
}

func TestScheduleValidateAndString(t *testing.T) {
	zero := Schedule{}
	if zero.Enabled() {
		t.Error("zero Schedule must be disabled")
	}
	if err := zero.Validate(); err != nil {
		t.Errorf("zero Schedule Validate() = %v, want nil", err)
	}
	if got := zero.String(); got != "disabled" {
		t.Errorf("zero Schedule String() = %q, want disabled", got)
	}

	s := Schedule{
		Outages: []Outage{
			{Kind: OutageSpine, Index: 0, StartNs: 20000, EndNs: 40000},
			{Kind: OutageLink, Index: 3, StartNs: 0, EndNs: 5000},
		},
		Burst: Burst{BadLossProb: 0.3, GoodToBad: 0.01, BadToGood: 0.2},
	}
	if !s.Enabled() {
		t.Error("schedule with outages must be enabled")
	}
	if err := s.Validate(); err != nil {
		t.Errorf("Validate() = %v, want nil", err)
	}
	str := s.String()
	for _, want := range []string{"spine 0", "link 3", "burst"} {
		if !strings.Contains(str, want) {
			t.Errorf("String() = %q, missing %q", str, want)
		}
	}

	// An invalid outage is reported with its index.
	s.Outages = append(s.Outages, Outage{Kind: "spline", StartNs: 0, EndNs: 1})
	err := s.Validate()
	if err == nil || !strings.Contains(err.Error(), "Outages[2]") {
		t.Errorf("Validate() = %v, want error naming Outages[2]", err)
	}
}

func TestGilbertElliottDisabled(t *testing.T) {
	if g := NewGilbertElliott(Burst{}, 1); g != nil {
		t.Error("disabled burst spec must yield a nil process")
	}
	var g *GilbertElliott
	for i := 0; i < 10; i++ {
		if g.Lose() {
			t.Fatal("nil process must never lose a frame")
		}
	}
}

func TestGilbertElliottDeterminism(t *testing.T) {
	spec := Burst{GoodLossProb: 0.01, BadLossProb: 0.5, GoodToBad: 0.05, BadToGood: 0.2}
	a := NewGilbertElliott(spec, 42)
	b := NewGilbertElliott(spec, 42)
	for i := 0; i < 10_000; i++ {
		if a.Lose() != b.Lose() {
			t.Fatalf("decision %d diverged between identically-seeded processes", i)
		}
	}
	if a.Losses != b.Losses || a.BadEntries != b.BadEntries {
		t.Errorf("tallies diverged: %d/%d vs %d/%d", a.Losses, a.BadEntries, b.Losses, b.BadEntries)
	}
	if a.Losses == 0 || a.BadEntries == 0 {
		t.Errorf("process injected nothing over 10k draws (losses %d, bad entries %d)", a.Losses, a.BadEntries)
	}
}

// The defining property of the Gilbert–Elliott process: losses cluster.
// The loss rate inside the bad state must be far above the good state's.
func TestGilbertElliottBurstiness(t *testing.T) {
	spec := Burst{GoodLossProb: 0.001, BadLossProb: 0.5, GoodToBad: 0.02, BadToGood: 0.2}
	g := NewGilbertElliott(spec, 7)
	goodLoss, goodN, badLoss, badN := 0, 0, 0, 0
	for i := 0; i < 200_000; i++ {
		bad := g.Bad()
		lost := g.Lose()
		if bad {
			badN++
			if lost {
				badLoss++
			}
		} else {
			goodN++
			if lost {
				goodLoss++
			}
		}
	}
	if goodN == 0 || badN == 0 {
		t.Fatalf("process never visited both states (good %d, bad %d)", goodN, badN)
	}
	goodRate := float64(goodLoss) / float64(goodN)
	badRate := float64(badLoss) / float64(badN)
	if badRate < 10*goodRate {
		t.Errorf("bad-state loss rate %.4f not clearly above good-state %.4f — losses are not bursty", badRate, goodRate)
	}
}
