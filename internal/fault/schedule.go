package fault

import (
	"fmt"

	"netdimm/internal/sim"
)

// This file is the scheduled half of the fault plane. The Injector's
// per-frame probabilities model memoryless noise; real fabric failures are
// correlated in time — a link flaps for fifty microseconds, a spine dies
// mid-run, loss arrives in bursts. A Schedule describes those correlated
// events declaratively (timed outage windows plus a Gilbert–Elliott
// burst-loss process), the fabric arms them as ordinary engine events at
// absolute instants, and every random decision rides a sim.Rand stream, so
// the failure trace is byte-identical sequentially, in parallel and at any
// shard count.

// Outage element kinds. Link outages name a host's NIC uplink (Index is
// the host); trunk outages name one leaf↔spine cable (Leaf + Index);
// spine and leaf outages take a whole switch down (Index).
const (
	OutageLink  = "link"
	OutageTrunk = "trunk"
	OutageSpine = "spine"
	OutageLeaf  = "leaf"
)

// Outage is one scheduled failure window: the named element is down for
// [StartNs, EndNs) and healthy again at EndNs. Windows on the same element
// may overlap; the element stays down until every covering window has
// ended. Times are plain nanosecond integers so a scenario JSON file can
// address them directly.
type Outage struct {
	// Kind is the failed element's layer: "link" (a host uplink), "trunk"
	// (one leaf↔spine cable), "spine" or "leaf" (a whole switch).
	Kind string
	// Index names the element within its layer: the host for a link, the
	// switch for a spine/leaf, the spine end for a trunk.
	Index int
	// Leaf is the leaf end of a trunk outage; ignored for other kinds.
	Leaf int
	// StartNs and EndNs bound the half-open down window in nanoseconds.
	StartNs int
	EndNs   int
}

// Window returns the outage bounds as simulation times.
func (o Outage) Window() (start, end sim.Time) {
	return sim.Time(o.StartNs) * sim.Nanosecond, sim.Time(o.EndNs) * sim.Nanosecond
}

// Validate checks the window for internal consistency. Index bounds are
// topology-dependent and checked when the schedule is armed.
func (o Outage) Validate() error {
	switch o.Kind {
	case OutageLink, OutageTrunk, OutageSpine, OutageLeaf:
	default:
		return fmt.Errorf("fault: unknown outage kind %q (want link, trunk, spine or leaf)", o.Kind)
	}
	if o.Index < 0 {
		return fmt.Errorf("fault: outage Index must not be negative, got %d", o.Index)
	}
	if o.Leaf < 0 {
		return fmt.Errorf("fault: outage Leaf must not be negative, got %d", o.Leaf)
	}
	if o.StartNs < 0 {
		return fmt.Errorf("fault: outage StartNs must not be negative, got %d", o.StartNs)
	}
	if o.EndNs <= o.StartNs {
		return fmt.Errorf("fault: outage window [%d, %d) is empty", o.StartNs, o.EndNs)
	}
	return nil
}

func (o Outage) String() string {
	start, end := o.Window()
	if o.Kind == OutageTrunk {
		return fmt.Sprintf("trunk l%d-s%d down [%v, %v)", o.Leaf, o.Index, start, end)
	}
	return fmt.Sprintf("%s %d down [%v, %v)", o.Kind, o.Index, start, end)
}

// Burst configures a Gilbert–Elliott two-state burst-loss process at the
// fabric ingress: a hidden good/bad state flips with the transition
// probabilities and each frame is lost with the current state's loss
// probability, so losses cluster instead of arriving independently. The
// zero value disables the process.
type Burst struct {
	// GoodLossProb is the per-frame loss probability in the good state
	// (usually 0 or tiny).
	GoodLossProb float64
	// BadLossProb is the per-frame loss probability in the bad state.
	BadLossProb float64
	// GoodToBad and BadToGood are the per-frame state-flip probabilities;
	// their ratio sets how often bursts occur and how long they last.
	GoodToBad float64
	BadToGood float64
}

// Enabled reports whether the process can ever lose a frame: the good
// state loses directly, the bad state only if it is reachable. A disabled
// process consumes no random values.
func (b Burst) Enabled() bool {
	return b.GoodLossProb > 0 || (b.BadLossProb > 0 && b.GoodToBad > 0)
}

// Validate checks the process parameters.
func (b Burst) Validate() error {
	probs := []struct {
		name string
		p    float64
	}{
		{"GoodLossProb", b.GoodLossProb},
		{"BadLossProb", b.BadLossProb},
		{"GoodToBad", b.GoodToBad},
		{"BadToGood", b.BadToGood},
	}
	for _, pr := range probs {
		if pr.p < 0 || pr.p > 1 || pr.p != pr.p {
			return fmt.Errorf("fault: Burst %s must be in [0,1], got %g", pr.name, pr.p)
		}
	}
	return nil
}

func (b Burst) String() string {
	return fmt.Sprintf("burst loss %.2g/%.2g (g→b %.2g, b→g %.2g)",
		b.GoodLossProb, b.BadLossProb, b.GoodToBad, b.BadToGood)
}

// Schedule is the correlated-failure block of a fault Spec: the timed
// outage windows plus the burst-loss process. The zero value schedules
// nothing, arms no events and consumes no random values, so default
// configurations stay byte-identical to a schedule-free simulator.
type Schedule struct {
	// Outages are the timed down windows, armed in order.
	Outages []Outage
	// Burst is the Gilbert–Elliott ingress loss process.
	Burst Burst
	// Seed perturbs the burst process's stream independently of the cell
	// seed, like Spec.Seed does for the injector.
	Seed uint64
}

// Enabled reports whether the schedule does anything.
func (s Schedule) Enabled() bool {
	return len(s.Outages) > 0 || s.Burst.Enabled()
}

// Validate checks every window and the burst process.
func (s Schedule) Validate() error {
	for i, o := range s.Outages {
		if err := o.Validate(); err != nil {
			return fmt.Errorf("fault: Outages[%d]: %w", i, err)
		}
	}
	return s.Burst.Validate()
}

// String summarises the schedule compactly.
func (s Schedule) String() string {
	if !s.Enabled() {
		return "disabled"
	}
	out := ""
	for _, o := range s.Outages {
		if out != "" {
			out += ", "
		}
		out += o.String()
	}
	if s.Burst.Enabled() {
		if out != "" {
			out += ", "
		}
		out += s.Burst.String()
	}
	return out
}

// GilbertElliott is the running burst-loss process: single-goroutine like
// the engine that consults it, one instance per simulation cell. A nil
// process never loses a frame, so callers can hold the nil returned for a
// disabled Burst and skip the branch.
type GilbertElliott struct {
	spec Burst
	rng  *sim.Rand
	bad  bool

	// Losses counts frames the process consumed; BadEntries counts
	// good→bad transitions (the burst count).
	Losses     uint64
	BadEntries uint64
}

// NewGilbertElliott builds the process, or returns nil when the spec is
// disabled (so no random stream is even allocated).
func NewGilbertElliott(b Burst, seed uint64) *GilbertElliott {
	if !b.Enabled() {
		return nil
	}
	return &GilbertElliott{spec: b, rng: sim.NewRand(seed)}
}

// Bad reports whether the process is currently in its bad (bursty) state.
func (g *GilbertElliott) Bad() bool { return g != nil && g.bad }

// Lose draws one frame decision: flip the hidden state, then lose the
// frame with the state's probability. Every call consumes exactly two
// random values regardless of parameters or outcome, so the stream — and
// every decision after it — is identical across runs.
func (g *GilbertElliott) Lose() bool {
	if g == nil {
		return false
	}
	flip := g.rng.Float64()
	loss := g.rng.Float64()
	if g.bad {
		if flip < g.spec.BadToGood {
			g.bad = false
		}
	} else if flip < g.spec.GoodToBad {
		g.bad = true
		g.BadEntries++
	}
	p := g.spec.GoodLossProb
	if g.bad {
		p = g.spec.BadLossProb
	}
	if loss < p {
		g.Losses++
		return true
	}
	return false
}
