// Package fault is the deterministic fault-injection plane of the
// simulator. The paper's experiments assume a perfect world — links never
// drop or corrupt frames and NVDIMM-P devices always raise RDY — which is
// the best case the latency claims are made in. This package supplies the
// other cases: a seed-driven Spec describes per-traversal frame loss and
// corruption, switch-port tail-drop injection and NVDIMM-P RDY loss; an
// Injector draws every fault decision from a sim.Rand stream so sequential
// and parallel experiment fan-out see identical fault traces; and Backoff /
// RetryPolicy are the shared recovery primitives (capped exponential
// backoff, bounded retries) used by the NIC retransmit engine, the
// NVDIMM-P timeout path and the fig5 rig's credit-wait loop.
//
// The zero Spec injects nothing: every component consults the injector
// only when the relevant probability is positive, so default-configuration
// runs consume no random values and stay byte-identical to the pre-fault
// simulator.
package fault

import (
	"errors"
	"fmt"

	"netdimm/internal/sim"
	"netdimm/internal/stats"
)

// Spec configures fault injection for one run. The zero value disables
// every fault. Probabilities are per decision point: DropProb and
// CorruptProb per link traversal, PortDropProb per switch-port enqueue,
// MemTimeoutProb per NVDIMM-P transaction. Durations are plain nanosecond
// integers so a scenario JSON file can address every field directly.
type Spec struct {
	// DropProb is the probability a transmitted frame vanishes on the wire.
	DropProb float64
	// CorruptProb is the probability a frame arrives with a bit error; the
	// receiving NIC detects it by FCS check and discards the frame, so a
	// corrupted frame costs its full wire time before the sender times out.
	CorruptProb float64
	// PortDropProb is the probability an event-driven switch egress port
	// tail-drops a frame even with buffer space free (injected congestion).
	PortDropProb float64
	// MaxRetries bounds retransmit attempts per frame; 0 means unlimited
	// (a pathological all-loss configuration then relies on the engine
	// watchdog to terminate).
	MaxRetries int
	// RetryBaseNs is the first retransmit timeout/backoff in nanoseconds;
	// 0 selects the default (1000ns).
	RetryBaseNs int
	// RetryCapNs caps the exponential backoff; 0 selects 16x the base.
	RetryCapNs int
	// MemTimeoutProb is the probability an NVDIMM-P transaction's RDY
	// signal is lost (the device stages data but the host never sees it).
	MemTimeoutProb float64
	// MemTimeoutNs is how long the memory controller waits for RDY before
	// aborting the transaction; 0 selects the default (2000ns).
	MemTimeoutNs int
	// MemMaxRetries bounds memory-transaction retries; 0 means unlimited.
	MemMaxRetries int
	// Failure schedules correlated failures — timed link/switch outage
	// windows and a Gilbert–Elliott burst-loss process — on top of the
	// memoryless per-frame probabilities above. The zero value schedules
	// nothing.
	Failure Schedule
	// Seed perturbs every injector stream derived from this spec, so two
	// scenarios with identical probabilities can still draw different
	// fault traces.
	Seed uint64
}

// Enabled reports whether any fault is injected or scheduled.
func (s Spec) Enabled() bool { return s.NetEnabled() || s.MemEnabled() || s.Failure.Enabled() }

// NetEnabled reports whether any network fault is injected.
func (s Spec) NetEnabled() bool {
	return s.DropProb > 0 || s.CorruptProb > 0 || s.PortDropProb > 0
}

// MemEnabled reports whether NVDIMM-P RDY loss is injected.
func (s Spec) MemEnabled() bool { return s.MemTimeoutProb > 0 }

// Validate checks the block for internal consistency and returns an
// actionable error for the first violation found.
func (s Spec) Validate() error {
	probs := []struct {
		name string
		p    float64
	}{
		{"DropProb", s.DropProb},
		{"CorruptProb", s.CorruptProb},
		{"PortDropProb", s.PortDropProb},
		{"MemTimeoutProb", s.MemTimeoutProb},
	}
	for _, pr := range probs {
		if pr.p < 0 || pr.p > 1 {
			return fmt.Errorf("fault: %s must be in [0,1], got %g", pr.name, pr.p)
		}
	}
	switch {
	case s.MaxRetries < 0:
		return fmt.Errorf("fault: MaxRetries must not be negative, got %d", s.MaxRetries)
	case s.MemMaxRetries < 0:
		return fmt.Errorf("fault: MemMaxRetries must not be negative, got %d", s.MemMaxRetries)
	case s.RetryBaseNs < 0 || s.RetryCapNs < 0 || s.MemTimeoutNs < 0:
		return fmt.Errorf("fault: RetryBaseNs/RetryCapNs/MemTimeoutNs must not be negative, got %d/%d/%d",
			s.RetryBaseNs, s.RetryCapNs, s.MemTimeoutNs)
	case s.RetryCapNs > 0 && s.RetryCapNs < s.RetryBaseNs:
		return fmt.Errorf("fault: RetryCapNs %d below RetryBaseNs %d", s.RetryCapNs, s.RetryBaseNs)
	}
	return s.Failure.Validate()
}

// String summarises the enabled faults compactly.
func (s Spec) String() string {
	if !s.Enabled() {
		return "disabled"
	}
	out := ""
	add := func(format string, args ...any) {
		if out != "" {
			out += ", "
		}
		out += fmt.Sprintf(format, args...)
	}
	if s.DropProb > 0 {
		add("drop %.2g", s.DropProb)
	}
	if s.CorruptProb > 0 {
		add("corrupt %.2g", s.CorruptProb)
	}
	if s.PortDropProb > 0 {
		add("port-drop %.2g", s.PortDropProb)
	}
	if s.NetEnabled() {
		p := s.NetPolicy()
		if p.MaxRetries > 0 {
			add("retries %d (base %v)", p.MaxRetries, p.Backoff.Base)
		} else {
			add("retries unlimited (base %v)", p.Backoff.Base)
		}
	}
	if s.MemEnabled() {
		add("RDY loss %.2g (timeout %v)", s.MemTimeoutProb, s.MemDeadline())
	}
	if s.Failure.Enabled() {
		add("failures [%s]", s.Failure)
	}
	return out
}

// Default recovery constants resolved when the spec leaves a knob at zero.
const (
	defaultRetryBase  = 1000 * sim.Nanosecond
	defaultCapFactor  = 16
	defaultMemTimeout = 2000 * sim.Nanosecond
)

// NetPolicy resolves the network retransmit policy: capped exponential
// backoff from RetryBaseNs, bounded by MaxRetries.
func (s Spec) NetPolicy() RetryPolicy {
	base := sim.Time(s.RetryBaseNs) * sim.Nanosecond
	if base <= 0 {
		base = defaultRetryBase
	}
	cap := sim.Time(s.RetryCapNs) * sim.Nanosecond
	if cap <= 0 {
		cap = defaultCapFactor * base
	}
	return RetryPolicy{Backoff: Backoff{Base: base, Cap: cap}, MaxRetries: s.MaxRetries}
}

// MemPolicy resolves the memory-transaction retry policy. The backoff
// reuses the network knobs: a stalled MC re-issue is paced the same way a
// NIC retransmit is.
func (s Spec) MemPolicy() RetryPolicy {
	p := s.NetPolicy()
	p.MaxRetries = s.MemMaxRetries
	return p
}

// MemDeadline resolves the RDY timeout.
func (s Spec) MemDeadline() sim.Time {
	if s.MemTimeoutNs > 0 {
		return sim.Time(s.MemTimeoutNs) * sim.Nanosecond
	}
	return defaultMemTimeout
}

// Backoff computes capped exponential delays: Delay(0) == Base, doubling
// per attempt, never exceeding Cap.
type Backoff struct {
	Base sim.Time
	Cap  sim.Time
}

// Delay returns the backoff before retry number attempt (0-based). The
// doubling saturates instead of wrapping: a capped policy never exceeds
// Cap, and an uncapped one pins at sim.MaxTime once doubling would
// overflow (attempt ~62 at a 1ns base) rather than going negative.
func (b Backoff) Delay(attempt int) sim.Time {
	d := b.Base
	if d <= 0 {
		d = sim.Nanosecond
	}
	for i := 0; i < attempt; i++ {
		if b.Cap > 0 && d >= b.Cap {
			return b.Cap
		}
		if d > sim.MaxTime/2 {
			if b.Cap > 0 {
				return b.Cap
			}
			return sim.MaxTime
		}
		d *= 2
	}
	if b.Cap > 0 && d > b.Cap {
		return b.Cap
	}
	return d
}

// RetryPolicy bounds a recovery loop: how long to wait before each retry
// and how many retries are allowed.
type RetryPolicy struct {
	Backoff Backoff
	// MaxRetries is the retry budget after the first attempt; 0 means
	// unlimited.
	MaxRetries int
}

// NextDelay returns the delay before retrying after failed attempt number
// `attempt` (0-based), and false when the retry budget is exhausted.
func (p RetryPolicy) NextDelay(attempt int) (sim.Time, bool) {
	if p.MaxRetries > 0 && attempt >= p.MaxRetries {
		return 0, false
	}
	return p.Backoff.Delay(attempt), true
}

// ErrExhausted reports a recovery loop that hit its retry cap.
var ErrExhausted = errors.New("retry cap exhausted")

// Outcome classifies one transmission attempt over a lossy path.
type Outcome int

const (
	// Delivered: the frame arrived intact.
	Delivered Outcome = iota
	// Dropped: the frame vanished (link loss or injected tail drop); the
	// sender learns of it only by retransmit timeout.
	Dropped
	// Corrupted: the frame arrived but failed the receiver's FCS check
	// and was discarded, costing its full wire time first.
	Corrupted
)

func (o Outcome) String() string {
	switch o {
	case Delivered:
		return "delivered"
	case Dropped:
		return "dropped"
	case Corrupted:
		return "corrupted"
	default:
		return fmt.Sprintf("Outcome(%d)", int(o))
	}
}

// Injector draws fault decisions for one simulation cell. Each decision
// consumes pseudo-random values only when its probability is positive, so a
// disabled fault class leaves the stream (and therefore every downstream
// draw) untouched. Injectors are single-goroutine objects like the engines
// they serve; parallel experiment cells each build their own with a
// per-cell seed.
type Injector struct {
	spec Spec
	rng  *sim.Rand
	// Counters tallies every injected fault and recovery action; recovery
	// engines (Retransmitter, AsyncReader) share this same struct.
	Counters stats.FaultCounters
}

// NewInjector returns an injector for spec whose stream is derived
// deterministically from the cell seed and the spec's own Seed.
func NewInjector(spec Spec, seed uint64) *Injector {
	return &Injector{spec: spec, rng: sim.NewRand(seed ^ (spec.Seed * 0x9e3779b97f4a7c15))}
}

// Spec returns the injector's configuration.
func (j *Injector) Spec() Spec { return j.spec }

func (j *Injector) draw(p float64) bool {
	if p <= 0 {
		return false
	}
	return j.rng.Float64() < p
}

// DropFrame draws the per-traversal link-loss decision.
func (j *Injector) DropFrame() bool {
	if j.draw(j.spec.DropProb) {
		j.Counters.FramesDropped++
		return true
	}
	return false
}

// CorruptFrame draws the per-traversal bit-error decision.
func (j *Injector) CorruptFrame() bool {
	if j.draw(j.spec.CorruptProb) {
		j.Counters.FramesCorrupted++
		return true
	}
	return false
}

// PortDrop draws the injected switch-port tail-drop decision.
func (j *Injector) PortDrop() bool {
	if j.draw(j.spec.PortDropProb) {
		j.Counters.PortDrops++
		return true
	}
	return false
}

// LoseRDY draws the NVDIMM-P RDY-loss decision for one transaction.
func (j *Injector) LoseRDY() bool {
	if j.draw(j.spec.MemTimeoutProb) {
		j.Counters.MemTimeouts++
		return true
	}
	return false
}
