package pcie

import (
	"testing"
	"testing/quick"

	"netdimm/internal/sim"
)

func TestRawBandwidth(t *testing.T) {
	g3x8 := NewLink(Gen3, 8)
	// ~7.88 GB/s for Gen3 x8.
	if bw := g3x8.RawBandwidth(); bw < 7.8e9 || bw > 8.0e9 {
		t.Fatalf("Gen3 x8 raw = %.2e B/s", bw)
	}
	g4x16 := NewLink(Gen4, 16)
	// The paper quotes ~31.51GB/s theoretical for Gen4 x16 (Sec. 1).
	if bw := g4x16.RawBandwidth(); bw < 31.0e9 || bw > 32.0e9 {
		t.Fatalf("Gen4 x16 raw = %.2e B/s, want ~31.5GB/s", bw)
	}
	// Gen4 doubles Gen3 per lane.
	r := NewLink(Gen4, 8).RawBandwidth() / g3x8.RawBandwidth()
	if r < 1.99 || r > 2.01 {
		t.Fatalf("Gen4/Gen3 ratio = %v", r)
	}
}

func TestEffectiveBandwidthBelowRaw(t *testing.T) {
	l := NewLink(Gen4, 8)
	if l.EffectiveBandwidth(256) >= l.RawBandwidth() {
		t.Fatal("effective bandwidth must pay TLP overhead")
	}
	// Small payloads waste more of the link.
	if l.EffectiveBandwidth(64) >= l.EffectiveBandwidth(256) {
		t.Fatal("small payloads should be less efficient")
	}
	// Payload above MaxPayload clamps.
	if l.EffectiveBandwidth(4096) != l.EffectiveBandwidth(l.MaxPayload) {
		t.Fatal("payload should clamp at MaxPayload")
	}
	if l.EffectiveBandwidth(0) <= 0 {
		t.Fatal("degenerate payload should still return positive bandwidth")
	}
}

// Calibration to [59]: a 64B read round trip lands in the several-hundred-
// nanosecond range, far above a DDR access (~50ns), which is the whole
// motivation of the paper.
func TestReadRoundTripMagnitude(t *testing.T) {
	l := NewLink(Gen3, 8)
	rt := l.ReadRoundTrip(64)
	if rt < 300*sim.Nanosecond || rt > 1100*sim.Nanosecond {
		t.Fatalf("64B read RT = %v, want 0.3-1.1us per [59]", rt)
	}
	if w := l.PostedWrite(8); w >= rt/2 {
		t.Fatalf("posted write %v should be well below read RT %v", w, rt)
	}
}

func TestPostedWriteComponents(t *testing.T) {
	l := NewLink(Gen4, 8)
	small := l.PostedWrite(8)
	big := l.PostedWrite(256)
	if big <= small {
		t.Fatal("larger write should take longer (serialization)")
	}
	if small <= l.StackLatency {
		t.Fatal("posted write must include serialization on top of stack latency")
	}
}

func TestDMAStreamScaling(t *testing.T) {
	l := NewLink(Gen4, 8)
	w1 := l.DMAWrite(1500)
	w4 := l.DMAWrite(6000)
	// Streaming: 4x bytes adds roughly 4x the stream time on top of the
	// fixed latency.
	extra1 := w1 - l.StackLatency
	extra4 := w4 - l.StackLatency
	ratio := float64(extra4) / float64(extra1)
	if ratio < 3.9 || ratio > 4.1 {
		t.Fatalf("stream scaling = %v, want ~4", ratio)
	}
	// A read costs a round trip more than a write of the same size.
	if l.DMARead(1500) <= l.DMAWrite(1500) {
		t.Fatal("DMA read must cost more than DMA write")
	}
}

// The paper's Fig. 4 premise (Sec. 3): moving a 4KB page over x8 PCIe
// (~2us with per-TLP turnarounds; under 1us with pipelined completions)
// is several times slower than the ~200-320ns of a DDR4 channel.
func TestPageTransferVsMemoryChannel(t *testing.T) {
	l := NewLink(Gen3, 8)
	pg := l.DMARead(4096)
	if pg < 700*sim.Nanosecond || pg > 3*sim.Microsecond {
		t.Fatalf("4KB DMA read = %v, want ~0.9-2us (paper Sec. 3)", pg)
	}
	ddr4Page := sim.Time(float64(4096) / 12.8e9 * float64(sim.Second))
	if pg < 2*ddr4Page {
		t.Fatalf("PCIe page move %v should be several times a DDR4 page move %v", pg, ddr4Page)
	}
}

func TestTLPChunking(t *testing.T) {
	l := NewLink(Gen3, 8)
	if l.tlpCount(0) != 1 || l.tlpCount(1) != 1 || l.tlpCount(256) != 1 || l.tlpCount(257) != 2 {
		t.Fatal("tlpCount wrong")
	}
	if l.lastTLP(256) != 256 || l.lastTLP(300) != 44 || l.lastTLP(0) != 0 {
		t.Fatal("lastTLP wrong")
	}
}

// Property: all latencies are positive and monotonic in transfer size.
func TestMonotonicProperty(t *testing.T) {
	l := NewLink(Gen4, 8)
	f := func(a, b uint16) bool {
		x, y := int(a), int(b)
		if x > y {
			x, y = y, x
		}
		return l.PostedWrite(x) <= l.PostedWrite(y) &&
			l.ReadRoundTrip(x) <= l.ReadRoundTrip(y) &&
			l.DMAWrite(x) <= l.DMAWrite(y) &&
			l.DMARead(x) <= l.DMARead(y) &&
			l.PostedWrite(x) > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestInvalidConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero lanes accepted")
		}
	}()
	NewLink(Gen3, 0)
}

func TestUnsupportedGenPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unsupported gen accepted")
		}
	}()
	Gen(7).perLaneBytesPerSec()
}

func TestString(t *testing.T) {
	if s := NewLink(Gen4, 8).String(); s != "PCIe Gen4 x8" {
		t.Fatalf("String = %q", s)
	}
}
