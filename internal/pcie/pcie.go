// Package pcie is an analytical model of the PCI Express interconnect: TLP
// framing overheads, posted-write vs non-posted-read semantics, and DMA
// streaming bandwidth. The paper uses the same modelling approach (its own
// analytical PCIe model from Alian et al. [20], with latency figures from
// Neugebauer et al. [59], "Understanding PCIe performance for end host
// networking").
package pcie

import (
	"fmt"
	"strconv"
	"strings"

	"netdimm/internal/sim"
)

// Gen is a PCIe generation.
type Gen int

const (
	Gen3 Gen = 3
	Gen4 Gen = 4
	Gen5 Gen = 5
)

// perLaneGBps returns the raw per-lane data rate in bytes/s after line
// coding (128b/130b for Gen3+).
func (g Gen) perLaneBytesPerSec() float64 {
	switch g {
	case Gen3:
		return 8e9 / 8 * (128.0 / 130.0) // 8 GT/s
	case Gen4:
		return 16e9 / 8 * (128.0 / 130.0) // 16 GT/s
	case Gen5:
		return 32e9 / 8 * (128.0 / 130.0) // 32 GT/s
	default:
		panic(fmt.Sprintf("pcie: unsupported generation %d", int(g)))
	}
}

// Link is one PCIe link with fixed protocol-stack latency constants.
//
// The latency constants follow the measurements in [59]: a direct-attached
// 64B non-posted read completes in roughly 350-700ns (two traversals of the
// root complex + endpoint stacks plus completion turnaround; ~900ns medians
// include switch hops), and a posted write is visible at the endpoint after
// a single traversal, ~200ns.
type Link struct {
	Gen   Gen
	Lanes int

	// StackLatency is the one-way traversal latency of the PCIe stack
	// (PHY + DLL + TLP processing at both ends).
	StackLatency sim.Time
	// CompletionOverhead is the extra endpoint processing to turn around a
	// non-posted request into a completion TLP.
	CompletionOverhead sim.Time
	// MaxPayload is the maximum TLP payload in bytes (typically 256).
	MaxPayload int
	// HeaderBytes is the TLP+framing overhead per packet on the wire
	// (TLP header 12-16B + DLL 6B + framing 2B; 24B is representative).
	HeaderBytes int

	// Obs, when attached, tallies every modelled transfer (see obs.go).
	// The pointer survives value copies of the Link, so instrumenting a
	// device's embedded link instruments all of its uses.
	Obs *LinkObs
}

// NewLink returns a link with [59]-calibrated constants.
func NewLink(g Gen, lanes int) Link {
	if lanes <= 0 {
		panic("pcie: lanes must be positive")
	}
	return Link{
		Gen:                g,
		Lanes:              lanes,
		StackLatency:       150 * sim.Nanosecond,
		CompletionOverhead: 50 * sim.Nanosecond,
		MaxPayload:         256,
		HeaderBytes:        24,
	}
}

// String renders e.g. "PCIe Gen4 x8".
func (l Link) String() string { return fmt.Sprintf("PCIe Gen%d x%d", int(l.Gen), l.Lanes) }

// ParseLink resolves a PCIe description from a system configuration
// (Table 1's "x8 PCIe Gen4" string) to a link with [59]-calibrated
// constants. Tokens may appear in any order and case: a lane count is
// "x<N>", a generation is "Gen<N>" (3, 4 or 5), and the literal "PCIe" is
// ignored.
func ParseLink(s string) (Link, error) {
	gen, lanes := 0, 0
	for _, tok := range strings.Fields(s) {
		lower := strings.ToLower(tok)
		switch {
		case lower == "pcie":
		case strings.HasPrefix(lower, "gen"):
			n, err := strconv.Atoi(lower[len("gen"):])
			if err != nil || gen != 0 {
				return Link{}, parseLinkErr(s)
			}
			gen = n
		case strings.HasPrefix(lower, "x"):
			n, err := strconv.Atoi(lower[len("x"):])
			if err != nil || lanes != 0 {
				return Link{}, parseLinkErr(s)
			}
			lanes = n
		default:
			return Link{}, parseLinkErr(s)
		}
	}
	if gen < int(Gen3) || gen > int(Gen5) {
		return Link{}, fmt.Errorf("pcie: unsupported generation in %q (known: Gen3, Gen4, Gen5)", s)
	}
	if lanes < 1 || lanes > 32 {
		return Link{}, fmt.Errorf("pcie: lane count in %q must be x1..x32", s)
	}
	return NewLink(Gen(gen), lanes), nil
}

func parseLinkErr(s string) error {
	return fmt.Errorf("pcie: cannot parse link %q (expected e.g. \"x8 PCIe Gen4\")", s)
}

// RawBandwidth returns bytes/s per direction before TLP overhead.
func (l Link) RawBandwidth() float64 {
	return l.Gen.perLaneBytesPerSec() * float64(l.Lanes)
}

// EffectiveBandwidth returns the usable bytes/s for a stream of TLPs with
// the given payload size per TLP (capped at MaxPayload).
func (l Link) EffectiveBandwidth(payload int) float64 {
	if payload <= 0 {
		payload = 1
	}
	if payload > l.MaxPayload {
		payload = l.MaxPayload
	}
	eff := float64(payload) / float64(payload+l.HeaderBytes)
	return l.RawBandwidth() * eff
}

// serialize returns the wire time of one TLP carrying n payload bytes.
func (l Link) serialize(n int) sim.Time {
	total := float64(n + l.HeaderBytes)
	return sim.Time(total / l.RawBandwidth() * float64(sim.Second))
}

// PostedWrite returns the one-way latency until a posted write (MWr) of n
// bytes is visible at the far endpoint: doorbell writes, small descriptor
// writes.
func (l Link) PostedWrite(n int) sim.Time {
	t := l.StackLatency + l.serialize(n)
	l.Obs.record(n, t)
	return t
}

// ReadRoundTrip returns the latency of a non-posted read (MRd) of n bytes:
// request traversal, endpoint turnaround, completion traversal with data.
// I/O register reads and descriptor fetches over PCIe pay this in full.
func (l Link) ReadRoundTrip(n int) sim.Time {
	tlps := l.tlpCount(n)
	// Request TLP one way, completion(s) back with data.
	t := 2*l.StackLatency + l.CompletionOverhead + sim.Time(tlps-1)*l.serialize(l.MaxPayload) + l.serialize(l.lastTLP(n))
	l.Obs.record(n, t)
	return t
}

// DMAWrite returns the time for a device-initiated DMA write of n bytes to
// host memory (posted stream): first-TLP latency plus streaming at
// effective bandwidth.
func (l Link) DMAWrite(n int) sim.Time {
	if n <= 0 {
		l.Obs.record(0, l.StackLatency)
		return l.StackLatency
	}
	stream := sim.Time(float64(n) / l.EffectiveBandwidth(l.MaxPayload) * float64(sim.Second))
	t := l.StackLatency + stream
	l.Obs.record(n, t)
	return t
}

// DMARead returns the time for a device-initiated DMA read of n bytes from
// host memory: a non-posted request per MaxPayload chunk, completions
// streamed back; the round trip is paid once and the rest pipelines.
func (l Link) DMARead(n int) sim.Time {
	if n <= 0 {
		return l.ReadRoundTrip(0)
	}
	stream := sim.Time(float64(n) / l.EffectiveBandwidth(l.MaxPayload) * float64(sim.Second))
	t := 2*l.StackLatency + l.CompletionOverhead + stream
	l.Obs.record(n, t)
	return t
}

func (l Link) tlpCount(n int) int {
	if n <= 0 {
		return 1
	}
	return (n + l.MaxPayload - 1) / l.MaxPayload
}

func (l Link) lastTLP(n int) int {
	if n <= 0 {
		return 0
	}
	r := n % l.MaxPayload
	if r == 0 {
		return l.MaxPayload
	}
	return r
}
