package pcie

import (
	"netdimm/internal/obs"
	"netdimm/internal/sim"
)

// LinkObs accumulates link activity when attached to a Link: one record
// per modelled transfer operation (posted write, read round trip, DMA
// stream), the payload bytes moved, and the accumulated link occupancy in
// picoseconds — the raw material for the PCIe utilisation metric. Links
// are value types, so the pointer is shared by every copy of an
// instrumented Link; the nil LinkObs records nothing.
type LinkObs struct {
	// Transfers counts modelled link operations.
	Transfers *obs.Counter
	// Bytes counts payload bytes moved.
	Bytes *obs.Counter
	// BusyPs accumulates link occupancy in picoseconds; dividing by the
	// observed interval yields utilisation.
	BusyPs *obs.Counter
}

// NewLinkObs registers the link metrics under prefix (".transfers",
// ".bytes", ".busy_ps"). A nil registry yields a nil LinkObs.
func NewLinkObs(reg *obs.Registry, prefix string) *LinkObs {
	if reg == nil {
		return nil
	}
	return &LinkObs{
		Transfers: reg.Counter(prefix + ".transfers"),
		Bytes:     reg.Counter(prefix + ".bytes"),
		BusyPs:    reg.Counter(prefix + ".busy_ps"),
	}
}

// record tallies one modelled operation of n payload bytes lasting d.
func (lo *LinkObs) record(n int, d sim.Time) {
	if lo == nil {
		return
	}
	lo.Transfers.Inc()
	if n > 0 {
		lo.Bytes.Add(int64(n))
	}
	lo.BusyPs.Add(int64(d))
}
