// Package addrmap implements physical memory address mapping: the
// channel/rank/bank/sub-array/row decode of a NetDIMM rank (paper Fig. 9),
// and the system-level single-/multi-/flex-channel interleaving modes
// (paper Sec. 2.3 and Fig. 10).
//
// # Rank geometry (paper Fig. 9a)
//
// A NetDIMM rank consists of eight x8 DRAM devices; each device has 16
// banks, each bank 512 sub-arrays, each sub-array 128 rows of 1KB. The
// eight devices operate in lock-step behind the 64-bit data bus, so at rank
// level a row is 8KB and the rank capacity is
// 16 banks x 512 sub-arrays x 128 rows x 8KB = 8GB.
//
// # Address layout (paper Fig. 9b/9c)
//
// The paper states the key property of the layout directly: 4KB pages that
// share a bank and sub-array are spaced every 128KB — i.e. every 32 pages.
// The layout below reproduces that property exactly. Bits, LSB first, of a
// rank-local address:
//
//	[0:12)   offset within a 4KB page (column bits)
//	[12:13)  half-row selector (a 4KB page is half of an 8KB rank row)
//	[13:17)  bank (16 banks)
//	[17:24)  row within sub-array (128 rows)
//	[24:33)  sub-array (512 sub-arrays)
//
// With the row bits directly above the bank bits, two pages share a
// (bank, sub-array) pair exactly when their addresses agree on bits [13:17)
// and [24:33); the nearest row-distinct such pages are 2^17 = 128KB apart.
package addrmap

import "fmt"

// Fixed architectural constants (paper Sec. 4.1 footnote 1 and Sec. 4.2.1).
const (
	CachelineSize int64 = 64
	PageSize      int64 = 4096
	PageShift           = 12
)

// Rank geometry constants from paper Fig. 9a.
const (
	BanksPerRank     = 16
	SubarraysPerBank = 512
	RowsPerSubarray  = 128
	RankRowBytes     = 8 * 1024 // 1KB per device x 8 devices
	RankBytes        = int64(BanksPerRank) * SubarraysPerBank * RowsPerSubarray * RankRowBytes

	// SubarraysPerRank is the number of distinct (bank, sub-array) pairs in
	// one rank: 16 x 512 = 8K (paper Sec. 4.2.2).
	SubarraysPerRank = BanksPerRank * SubarraysPerBank

	// SameSubarrayPageStride is the address distance between row-distinct
	// pages that share a bank and sub-array: 128KB, or 32 pages (Fig. 9c).
	SameSubarrayPageStride int64 = 128 * 1024
)

// Bit-field positions of the rank-local layout.
const (
	bankShift     = 13
	bankBits      = 4
	rowShift      = 17
	rowBits       = 7
	subarrayShift = 24
	subarrayBits  = 9
	rankShift     = 33
)

// Location is a fully decoded DRAM coordinate within a DIMM.
type Location struct {
	Rank     int
	Bank     int
	Subarray int
	Row      int   // row within the sub-array
	Column   int64 // byte offset within the 8KB rank row
}

// GlobalRow is the flat row index within the rank (bank-major), useful for
// row-buffer bookkeeping in the DRAM model.
func (l Location) GlobalRow() int {
	return ((l.Bank*SubarraysPerBank)+l.Subarray)*RowsPerSubarray + l.Row
}

// String renders the location compactly for traces and test failures.
func (l Location) String() string {
	return fmt.Sprintf("r%d/b%d/s%d/row%d+%d", l.Rank, l.Bank, l.Subarray, l.Row, l.Column)
}

// DecodeRank decodes a DIMM-local address into a Location. DIMM-local means
// the address after system-level channel/region decode; rank selection uses
// the bits directly above the rank-local layout.
func DecodeRank(dimmLocal int64) Location {
	local := dimmLocal & (1<<rankShift - 1)
	pageHalf := (local >> PageShift) & 1
	return Location{
		Rank:     int(dimmLocal >> rankShift),
		Bank:     int((local >> bankShift) & (1<<bankBits - 1)),
		Subarray: int((local >> subarrayShift) & (1<<subarrayBits - 1)),
		Row:      int((local >> rowShift) & (1<<rowBits - 1)),
		Column:   (local & (PageSize - 1)) | pageHalf<<PageShift,
	}
}

// EncodeRank is the inverse of DecodeRank.
func EncodeRank(l Location) int64 {
	pageHalf := (l.Column >> PageShift) & 1
	local := l.Column & (PageSize - 1)
	local |= pageHalf << PageShift
	local |= int64(l.Bank) << bankShift
	local |= int64(l.Row) << rowShift
	local |= int64(l.Subarray) << subarrayShift
	return local | int64(l.Rank)<<rankShift
}

// SubarrayKey identifies a (rank, bank, sub-array) triple — the granularity
// at which the allocCache of the NetDIMM driver pre-allocates pages (paper
// Sec. 4.2.2). Keys are dense in [0, ranks*SubarraysPerRank).
type SubarrayKey int32

// SubarrayOf returns the SubarrayKey of a DIMM-local address.
func SubarrayOf(dimmLocal int64) SubarrayKey {
	l := DecodeRank(dimmLocal)
	return SubarrayKey((l.Rank*BanksPerRank+l.Bank)*SubarraysPerBank + l.Subarray)
}

// SameSubarray reports whether two DIMM-local addresses share a rank, bank
// and sub-array — the prerequisite for RowClone fast parallel mode (FPM).
func SameSubarray(a, b int64) bool { return SubarrayOf(a) == SubarrayOf(b) }

// SameRank reports whether two DIMM-local addresses are in the same rank —
// the prerequisite for RowClone pipeline serial mode (PSM) when the bank
// differs.
func SameRank(a, b int64) bool { return a>>rankShift == b>>rankShift }
