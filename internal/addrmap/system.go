package addrmap

import (
	"fmt"
	"sort"
)

// RegionKind distinguishes the two halves of the flex-mode address space
// (paper Fig. 10): conventional DDR DIMMs interleaved across channels, and
// per-NetDIMM single-channel regions.
type RegionKind int

const (
	// RegionDDR is the conventional-DIMM part of the address space,
	// interleaved across all memory channels (multi-channel mode).
	RegionDDR RegionKind = iota
	// RegionNetDIMM is a NetDIMM's local memory, exposed as a contiguous
	// single-channel chunk so the nNIC sees its own DRAM linearly.
	RegionNetDIMM
)

func (k RegionKind) String() string {
	switch k {
	case RegionDDR:
		return "ddr"
	case RegionNetDIMM:
		return "netdimm"
	default:
		return fmt.Sprintf("RegionKind(%d)", int(k))
	}
}

// Region is one contiguous piece of the flex-mode physical address space.
type Region struct {
	Kind    RegionKind
	Base    int64 // first physical address of the region
	Size    int64
	Channel int // for RegionNetDIMM: the channel the NetDIMM sits on
	Index   int // for RegionNetDIMM: the NetDIMM number i of zone NET_i
}

// Contains reports whether phys falls inside the region.
func (r Region) Contains(phys int64) bool { return phys >= r.Base && phys < r.Base+r.Size }

// Target is the result of a system-level decode: which channel the request
// must be issued on, which region it belongs to, and the address local to
// the device behind that channel slot.
type Target struct {
	Region  Region
	Channel int
	// Local is the device-local address: DIMM-local for a NetDIMM region,
	// channel-local for the DDR region.
	Local int64
}

// SystemMap is the machine's physical address map: a DDR region interleaved
// over Channels at Granule bytes, followed by one single-channel region per
// NetDIMM (flex mode, paper Fig. 10).
//
// The zero SystemMap is not usable; construct with NewSystemMap.
type SystemMap struct {
	channels int
	granule  int64
	regions  []Region // sorted by Base; regions[0] is the DDR region
}

// NetDIMMSpec describes one NetDIMM to place in the address map.
type NetDIMMSpec struct {
	Channel int   // host channel the NetDIMM occupies
	Size    int64 // local DRAM capacity, e.g. 16GB
}

// NewSystemMap builds a flex-mode map with ddrBytes of conventional memory
// interleaved across channels at granule bytes, then each NetDIMM's local
// memory appended as a single-channel region in argument order (NET_0,
// NET_1, ...).
func NewSystemMap(channels int, ddrBytes, granule int64, netdimms ...NetDIMMSpec) (*SystemMap, error) {
	if channels <= 0 {
		return nil, fmt.Errorf("addrmap: channels must be positive, got %d", channels)
	}
	if granule <= 0 || granule%CachelineSize != 0 {
		return nil, fmt.Errorf("addrmap: granule must be a positive multiple of %dB, got %d", CachelineSize, granule)
	}
	if ddrBytes <= 0 || ddrBytes%(granule*int64(channels)) != 0 {
		return nil, fmt.Errorf("addrmap: ddrBytes %d must be a positive multiple of granule*channels (%d)", ddrBytes, granule*int64(channels))
	}
	m := &SystemMap{
		channels: channels,
		granule:  granule,
		regions:  []Region{{Kind: RegionDDR, Base: 0, Size: ddrBytes}},
	}
	base := ddrBytes
	for i, nd := range netdimms {
		if nd.Channel < 0 || nd.Channel >= channels {
			return nil, fmt.Errorf("addrmap: NetDIMM %d on invalid channel %d (have %d channels)", i, nd.Channel, channels)
		}
		if nd.Size <= 0 || nd.Size%PageSize != 0 {
			return nil, fmt.Errorf("addrmap: NetDIMM %d size %d must be a positive multiple of the page size", i, nd.Size)
		}
		m.regions = append(m.regions, Region{
			Kind:    RegionNetDIMM,
			Base:    base,
			Size:    nd.Size,
			Channel: nd.Channel,
			Index:   i,
		})
		base += nd.Size
	}
	return m, nil
}

// Channels returns the number of host memory channels.
func (m *SystemMap) Channels() int { return m.channels }

// TotalBytes returns the size of the mapped physical address space.
func (m *SystemMap) TotalBytes() int64 {
	last := m.regions[len(m.regions)-1]
	return last.Base + last.Size
}

// DDRRegion returns the conventional multi-channel region.
func (m *SystemMap) DDRRegion() Region { return m.regions[0] }

// NetDIMMRegions returns the NetDIMM regions in NET_i order.
func (m *SystemMap) NetDIMMRegions() []Region {
	out := make([]Region, 0, len(m.regions)-1)
	for _, r := range m.regions[1:] {
		out = append(out, r)
	}
	return out
}

// NetDIMMRegion returns the region of NetDIMM i.
func (m *SystemMap) NetDIMMRegion(i int) (Region, error) {
	idx := 1 + i
	if i < 0 || idx >= len(m.regions) {
		return Region{}, fmt.Errorf("addrmap: no NetDIMM %d", i)
	}
	return m.regions[idx], nil
}

// Decode maps a physical address to its channel, region and device-local
// address. DDR addresses interleave across channels at the granule
// (multi-channel mode); NetDIMM addresses map to a single channel with a
// contiguous local address (single-channel mode).
func (m *SystemMap) Decode(phys int64) (Target, error) {
	if phys < 0 || phys >= m.TotalBytes() {
		return Target{}, fmt.Errorf("addrmap: physical address %#x outside mapped space [0, %#x)", phys, m.TotalBytes())
	}
	i := sort.Search(len(m.regions), func(i int) bool {
		return m.regions[i].Base+m.regions[i].Size > phys
	})
	r := m.regions[i]
	off := phys - r.Base
	if r.Kind == RegionNetDIMM {
		return Target{Region: r, Channel: r.Channel, Local: off}, nil
	}
	granuleIdx := off / m.granule
	channel := int(granuleIdx % int64(m.channels))
	local := (granuleIdx/int64(m.channels))*m.granule + off%m.granule
	return Target{Region: r, Channel: channel, Local: local}, nil
}

// EncodeDDR is the inverse of Decode for the DDR region: it returns the
// physical address of channel-local address local on the given channel.
func (m *SystemMap) EncodeDDR(channel int, local int64) (int64, error) {
	if channel < 0 || channel >= m.channels {
		return 0, fmt.Errorf("addrmap: invalid channel %d", channel)
	}
	granuleIdx := (local/m.granule)*int64(m.channels) + int64(channel)
	phys := granuleIdx*m.granule + local%m.granule
	if phys >= m.regions[0].Size {
		return 0, fmt.Errorf("addrmap: channel-local address %#x beyond DDR region", local)
	}
	return phys, nil
}

// EncodeNetDIMM is the inverse of Decode for NetDIMM i.
func (m *SystemMap) EncodeNetDIMM(i int, local int64) (int64, error) {
	r, err := m.NetDIMMRegion(i)
	if err != nil {
		return 0, err
	}
	if local < 0 || local >= r.Size {
		return 0, fmt.Errorf("addrmap: NetDIMM-local address %#x beyond region of size %#x", local, r.Size)
	}
	return r.Base + local, nil
}

// RegionOf returns the region containing phys.
func (m *SystemMap) RegionOf(phys int64) (Region, error) {
	t, err := m.Decode(phys)
	if err != nil {
		return Region{}, err
	}
	return t.Region, nil
}
