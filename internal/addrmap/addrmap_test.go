package addrmap

import (
	"testing"
	"testing/quick"
)

func TestRankGeometryConstants(t *testing.T) {
	if RankBytes != 8<<30 {
		t.Fatalf("RankBytes = %d, want 8GB", RankBytes)
	}
	if SubarraysPerRank != 8192 {
		t.Fatalf("SubarraysPerRank = %d, want 8K", SubarraysPerRank)
	}
	if SameSubarrayPageStride != 32*PageSize {
		t.Fatalf("SameSubarrayPageStride = %d, want 32 pages", SameSubarrayPageStride)
	}
}

func TestDecodeEncodeRoundTrip(t *testing.T) {
	f := func(raw uint64) bool {
		// Two ranks of 8GB -> 34 address bits.
		local := int64(raw % (2 * uint64(RankBytes)))
		return EncodeRank(DecodeRank(local)) == local
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeFieldsInRange(t *testing.T) {
	f := func(raw uint64) bool {
		local := int64(raw % (2 * uint64(RankBytes)))
		l := DecodeRank(local)
		return l.Rank >= 0 && l.Rank < 2 &&
			l.Bank >= 0 && l.Bank < BanksPerRank &&
			l.Subarray >= 0 && l.Subarray < SubarraysPerBank &&
			l.Row >= 0 && l.Row < RowsPerSubarray &&
			l.Column >= 0 && l.Column < RankRowBytes
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

// Paper Fig. 9c: pages sharing a bank and sub-array are spaced every 128KB
// (32 pages).
func TestSameSubarrayStride(t *testing.T) {
	base := int64(0x1234000) &^ (PageSize - 1)
	if !SameSubarray(base, base+SameSubarrayPageStride) {
		t.Fatal("pages 128KB apart should share a sub-array")
	}
	if !SameSubarray(base, base+5*SameSubarrayPageStride) {
		t.Fatal("pages k*128KB apart (within the row field) should share a sub-array")
	}
	// Adjacent pages fall in the same 8KB row only when they are the two
	// halves of one row; otherwise they differ in bank.
	for k := int64(1); k < 32; k++ {
		a, b := base, base+k*PageSize
		if k%2 == 1 && (b/PageSize)%2 == 1 {
			continue // other half of the same row: same sub-array by design
		}
		if SameSubarray(a, b) && k != 0 {
			// Pages less than 128KB apart (excluding the half-row pair)
			// must not share a (bank, sub-array).
			la, lb := DecodeRank(a), DecodeRank(b)
			if la.Bank == lb.Bank && la.Subarray == lb.Subarray && la.Row == lb.Row {
				continue
			}
			t.Fatalf("pages %d pages apart unexpectedly share a sub-array", k)
		}
	}
}

func TestSameSubarrayHalfRowPair(t *testing.T) {
	// A 4KB page is half of an 8KB row, so page 2n and 2n+1 share the row
	// and therefore the sub-array.
	if !SameSubarray(0, PageSize) {
		t.Fatal("the two halves of one row should share a sub-array")
	}
}

func TestSubarrayKeyDense(t *testing.T) {
	seen := make(map[SubarrayKey]bool)
	// Walk one page per (bank, sub-array) pair in rank 0.
	for bank := 0; bank < BanksPerRank; bank++ {
		for sub := 0; sub < SubarraysPerBank; sub++ {
			addr := EncodeRank(Location{Bank: bank, Subarray: sub})
			k := SubarrayOf(addr)
			if k < 0 || int(k) >= SubarraysPerRank {
				t.Fatalf("key %d out of range", k)
			}
			if seen[k] {
				t.Fatalf("duplicate key %d for bank %d sub %d", k, bank, sub)
			}
			seen[k] = true
		}
	}
	if len(seen) != SubarraysPerRank {
		t.Fatalf("got %d distinct keys, want %d", len(seen), SubarraysPerRank)
	}
	// Rank 1 keys must not collide with rank 0 keys.
	k1 := SubarrayOf(EncodeRank(Location{Rank: 1}))
	if seen[k1] {
		t.Fatal("rank 1 key collides with rank 0")
	}
}

func TestSameRank(t *testing.T) {
	if !SameRank(0, RankBytes-1) {
		t.Fatal("addresses within rank 0 should be same rank")
	}
	if SameRank(0, RankBytes) {
		t.Fatal("rank 0 and rank 1 addresses should differ")
	}
}

func TestGlobalRowUnique(t *testing.T) {
	seen := make(map[int]bool)
	for bank := 0; bank < BanksPerRank; bank += 5 {
		for sub := 0; sub < SubarraysPerBank; sub += 37 {
			for row := 0; row < RowsPerSubarray; row += 11 {
				l := Location{Bank: bank, Subarray: sub, Row: row}
				gr := l.GlobalRow()
				if seen[gr] {
					t.Fatalf("GlobalRow collision at %v", l)
				}
				seen[gr] = true
			}
		}
	}
}

func mustMap(t *testing.T) *SystemMap {
	t.Helper()
	m, err := NewSystemMap(2, 16<<30, 256, NetDIMMSpec{Channel: 1, Size: 16 << 30})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestSystemMapLayout(t *testing.T) {
	m := mustMap(t)
	if m.TotalBytes() != 32<<30 {
		t.Fatalf("TotalBytes = %d", m.TotalBytes())
	}
	nd, err := m.NetDIMMRegion(0)
	if err != nil {
		t.Fatal(err)
	}
	if nd.Base != 16<<30 || nd.Channel != 1 || nd.Index != 0 {
		t.Fatalf("NetDIMM region = %+v", nd)
	}
	if _, err := m.NetDIMMRegion(1); err == nil {
		t.Fatal("expected error for missing NetDIMM 1")
	}
}

func TestSystemMapErrors(t *testing.T) {
	if _, err := NewSystemMap(0, 1<<30, 256); err == nil {
		t.Error("zero channels accepted")
	}
	if _, err := NewSystemMap(2, 1<<30, 100); err == nil {
		t.Error("non-cacheline granule accepted")
	}
	if _, err := NewSystemMap(2, 1000, 256); err == nil {
		t.Error("ddrBytes not multiple of granule*channels accepted")
	}
	if _, err := NewSystemMap(2, 1<<30, 256, NetDIMMSpec{Channel: 5, Size: 1 << 30}); err == nil {
		t.Error("NetDIMM on invalid channel accepted")
	}
	if _, err := NewSystemMap(2, 1<<30, 256, NetDIMMSpec{Channel: 0, Size: 100}); err == nil {
		t.Error("non-page NetDIMM size accepted")
	}
	m := mustMap(t)
	if _, err := m.Decode(-1); err == nil {
		t.Error("negative address decoded")
	}
	if _, err := m.Decode(m.TotalBytes()); err == nil {
		t.Error("address beyond space decoded")
	}
}

// Multi-channel mode: sequential DDR addresses interleave between channels
// at granule boundaries (paper Sec. 2.3).
func TestDDRInterleaving(t *testing.T) {
	m := mustMap(t)
	t0, err := m.Decode(0)
	if err != nil {
		t.Fatal(err)
	}
	t1, err := m.Decode(256)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := m.Decode(512)
	if err != nil {
		t.Fatal(err)
	}
	if t0.Channel != 0 || t1.Channel != 1 || t2.Channel != 0 {
		t.Fatalf("channels = %d,%d,%d; want 0,1,0", t0.Channel, t1.Channel, t2.Channel)
	}
	if t2.Local != 256 {
		t.Fatalf("third granule local = %d, want 256", t2.Local)
	}
}

// Single-channel mode: the NetDIMM region is contiguous on one channel
// (paper Sec. 4.2.1: "the host processor sees the NetDIMM physical address
// as a continuous memory chunk").
func TestNetDIMMSingleChannel(t *testing.T) {
	m := mustMap(t)
	base := int64(16 << 30)
	for off := int64(0); off < 1<<20; off += 64 << 10 {
		tg, err := m.Decode(base + off)
		if err != nil {
			t.Fatal(err)
		}
		if tg.Channel != 1 {
			t.Fatalf("NetDIMM address on channel %d, want 1", tg.Channel)
		}
		if tg.Local != off {
			t.Fatalf("local = %d, want %d (contiguous)", tg.Local, off)
		}
		if tg.Region.Kind != RegionNetDIMM {
			t.Fatalf("kind = %v", tg.Region.Kind)
		}
	}
}

// Property: decode/encode round-trips for both regions and every address
// maps to exactly one region.
func TestSystemMapRoundTripProperty(t *testing.T) {
	m := mustMap(t)
	f := func(raw uint64) bool {
		phys := int64(raw % uint64(m.TotalBytes()))
		tg, err := m.Decode(phys)
		if err != nil {
			return false
		}
		var back int64
		if tg.Region.Kind == RegionDDR {
			back, err = m.EncodeDDR(tg.Channel, tg.Local)
		} else {
			back, err = m.EncodeNetDIMM(tg.Region.Index, tg.Local)
		}
		return err == nil && back == phys
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeErrors(t *testing.T) {
	m := mustMap(t)
	if _, err := m.EncodeDDR(9, 0); err == nil {
		t.Error("invalid channel accepted")
	}
	if _, err := m.EncodeDDR(0, 16<<30); err == nil {
		t.Error("beyond-region channel-local accepted")
	}
	if _, err := m.EncodeNetDIMM(0, 16<<30); err == nil {
		t.Error("beyond-region NetDIMM-local accepted")
	}
	if _, err := m.EncodeNetDIMM(3, 0); err == nil {
		t.Error("missing NetDIMM accepted")
	}
}

func TestRegionOf(t *testing.T) {
	m := mustMap(t)
	r, err := m.RegionOf(0)
	if err != nil || r.Kind != RegionDDR {
		t.Fatalf("RegionOf(0) = %v, %v", r, err)
	}
	r, err = m.RegionOf(16 << 30)
	if err != nil || r.Kind != RegionNetDIMM {
		t.Fatalf("RegionOf(16GB) = %v, %v", r, err)
	}
}

func TestMultipleNetDIMMs(t *testing.T) {
	m, err := NewSystemMap(2, 8<<30, 256,
		NetDIMMSpec{Channel: 0, Size: 16 << 30},
		NetDIMMSpec{Channel: 1, Size: 16 << 30},
	)
	if err != nil {
		t.Fatal(err)
	}
	regions := m.NetDIMMRegions()
	if len(regions) != 2 {
		t.Fatalf("got %d NetDIMM regions", len(regions))
	}
	if regions[0].Index != 0 || regions[1].Index != 1 {
		t.Fatal("NET_i indices out of order")
	}
	if regions[1].Base != regions[0].Base+regions[0].Size {
		t.Fatal("NetDIMM regions not adjacent")
	}
}
