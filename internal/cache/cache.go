// Package cache models the processor's last-level cache, including the
// Data Direct I/O (DDIO) way restriction that limits NIC DMA allocations to
// a fraction of the LLC (paper Sec. 2.1), and the cache flush / invalidate
// operations the NetDIMM driver uses for coherency (paper Alg. 1).
package cache

import (
	"fmt"

	"netdimm/internal/addrmap"
	"netdimm/internal/sim"
)

// Config describes a set-associative cache.
type Config struct {
	Name       string
	SizeBytes  int64
	Ways       int
	LineBytes  int64
	HitLatency sim.Time
	// DDIOWays limits DMA (DDIO) allocations to the first DDIOWays ways of
	// each set — the "usually 10% of the LLC capacity" share of Sec. 2.1.
	// Zero disables DDIO allocation entirely.
	DDIOWays int
	// FlushBase/FlushPerLine parameterise clwb/clflush cost; the NetDIMM
	// driver pays this on the TX path (txFlush) and for descriptor
	// invalidation on RX (rxInvalidate).
	FlushBase    sim.Time
	FlushPerLine sim.Time
}

// LLC2MB returns the paper's Table 1 last-level cache: 2MB, 16 ways, 12
// cycles at 3.4GHz, with a 10% DDIO share (2 of 16 ways).
func LLC2MB() Config {
	cycle := sim.FromNanos(1.0 / 3.4)
	return Config{
		Name:         "LLC",
		SizeBytes:    2 << 20,
		Ways:         16,
		LineBytes:    addrmap.CachelineSize,
		HitLatency:   12 * cycle,
		DDIOWays:     2,
		FlushBase:    40 * sim.Nanosecond,
		FlushPerLine: 10 * sim.Nanosecond,
	}
}

// Stats accumulates cache events.
type Stats struct {
	Hits, Misses    uint64
	DDIOHits        uint64
	DDIOAllocations uint64
	Evictions       uint64
	DirtyEvictions  uint64
	DDIOEvictions   uint64 // DDIO lines evicted before first use: DMA leakage [68]
	Flushes         uint64
	FlushedDirty    uint64
	Invalidations   uint64
}

type line struct {
	tag      int64
	addr     int64 // line-aligned address, for writeback notification
	valid    bool
	dirty    bool
	ddio     bool
	ddioUsed bool // DDIO line has been read at least once
	lastUse  uint64
}

// Cache is a single-level set-associative cache with LRU replacement.
// It is a timing/occupancy model: no data is stored.
type Cache struct {
	cfg   Config
	sets  [][]line
	setsN int64
	tick  uint64
	stats Stats
	// WritebackFn, if set, is invoked for each dirty line evicted or
	// flushed, with the line's address; callers wire this to the memory
	// controller so writebacks create memory traffic.
	WritebackFn func(addr int64)
}

// New builds a cache from cfg. It panics on an inconsistent geometry, since
// that is a programming error in experiment setup.
func New(cfg Config) *Cache {
	if cfg.LineBytes <= 0 || cfg.Ways <= 0 || cfg.SizeBytes <= 0 {
		panic(fmt.Sprintf("cache: bad geometry %+v", cfg))
	}
	n := cfg.SizeBytes / (cfg.LineBytes * int64(cfg.Ways))
	if n <= 0 || cfg.SizeBytes%(cfg.LineBytes*int64(cfg.Ways)) != 0 {
		panic(fmt.Sprintf("cache: size %d not divisible into %d-way sets of %dB lines",
			cfg.SizeBytes, cfg.Ways, cfg.LineBytes))
	}
	if cfg.DDIOWays > cfg.Ways {
		panic("cache: DDIOWays exceeds Ways")
	}
	sets := make([][]line, n)
	for i := range sets {
		sets[i] = make([]line, cfg.Ways)
	}
	return &Cache{cfg: cfg, sets: sets, setsN: n}
}

// Config returns the cache configuration.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns a copy of the statistics.
func (c *Cache) Stats() Stats { return c.stats }

// ResetStats zeroes the statistics.
func (c *Cache) ResetStats() { c.stats = Stats{} }

func (c *Cache) locate(addr int64) (set []line, tag int64) {
	lineIdx := addr / c.cfg.LineBytes
	return c.sets[lineIdx%c.setsN], lineIdx / c.setsN
}

// Lookup probes the cache without modifying replacement state.
func (c *Cache) Lookup(addr int64) bool {
	set, tag := c.locate(addr)
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			return true
		}
	}
	return false
}

// Access performs a demand access (from the CPU). It returns true on hit.
// On miss the line is allocated over the LRU victim of the whole set.
func (c *Cache) Access(addr int64, write bool) bool {
	c.tick++
	set, tag := c.locate(addr)
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			c.stats.Hits++
			if set[i].ddio {
				c.stats.DDIOHits++
				set[i].ddioUsed = true
			}
			set[i].lastUse = c.tick
			if write {
				set[i].dirty = true
			}
			return true
		}
	}
	c.stats.Misses++
	v := c.victim(set, len(set))
	c.fill(&set[v], tag, addr, write, false)
	return false
}

// DDIOAllocate models a NIC DMA write landing in the LLC: the line is
// allocated, but only within the DDIO ways of the set, so heavy RX traffic
// cannot pollute the whole cache (and conversely can thrash its own share —
// DMA leakage). It reports whether the line was already present.
func (c *Cache) DDIOAllocate(addr int64) bool {
	if c.cfg.DDIOWays == 0 {
		return false
	}
	c.tick++
	set, tag := c.locate(addr)
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			set[i].dirty = true
			set[i].lastUse = c.tick
			if set[i].ddio {
				set[i].ddioUsed = false // fresh DMA payload, unread again
			}
			return true
		}
	}
	v := c.victim(set, c.cfg.DDIOWays)
	c.fill(&set[v], tag, addr, true, true)
	c.stats.DDIOAllocations++
	return false
}

func (c *Cache) victim(set []line, ways int) int {
	best := 0
	for i := 0; i < ways; i++ {
		if !set[i].valid {
			return i
		}
		if set[i].lastUse < set[best].lastUse {
			best = i
		}
	}
	return best
}

func (c *Cache) fill(l *line, tag, addr int64, dirty, ddio bool) {
	if l.valid {
		c.stats.Evictions++
		if l.dirty {
			c.stats.DirtyEvictions++
			if c.WritebackFn != nil {
				c.WritebackFn(l.addr)
			}
		}
		if l.ddio && !l.ddioUsed {
			c.stats.DDIOEvictions++
		}
	}
	l.tag = tag
	l.addr = addr &^ (c.cfg.LineBytes - 1)
	l.valid = true
	l.dirty = dirty
	l.ddio = ddio
	l.ddioUsed = false
	l.lastUse = c.tick
}

// FlushRange writes back and evicts every cached line in [addr, addr+bytes),
// returning the modelled CPU cost (clwb/clflush loop). Dirty lines trigger
// WritebackFn. This is the txFlush operation of Alg. 1.
func (c *Cache) FlushRange(addr, bytes int64) sim.Time {
	lines := c.forEachLine(addr, bytes, func(l *line) {
		c.stats.Flushes++
		if l.dirty {
			c.stats.FlushedDirty++
			if c.WritebackFn != nil {
				c.WritebackFn(l.addr)
			}
		}
		l.valid = false
	})
	if lines == 0 {
		return 0
	}
	return c.cfg.FlushBase + sim.Time(lines)*c.cfg.FlushPerLine
}

// InvalidateRange drops every cached line in the range without writeback —
// the rxInvalidate operation of Alg. 1 (the descriptor must be re-fetched
// from NetDIMM memory).
func (c *Cache) InvalidateRange(addr, bytes int64) sim.Time {
	lines := c.forEachLine(addr, bytes, func(l *line) {
		c.stats.Invalidations++
		l.valid = false
	})
	if lines == 0 {
		return 0
	}
	return c.cfg.FlushBase + sim.Time(lines)*c.cfg.FlushPerLine
}

// forEachLine visits each cached line overlapping the range and returns the
// number of lines in the range (cached or not) — the cost is paid per
// instruction issued, not per hit.
func (c *Cache) forEachLine(addr, bytes int64, fn func(*line)) int64 {
	if bytes <= 0 {
		return 0
	}
	first := addr / c.cfg.LineBytes
	last := (addr + bytes - 1) / c.cfg.LineBytes
	for li := first; li <= last; li++ {
		set := c.sets[li%c.setsN]
		tag := li / c.setsN
		for i := range set {
			if set[i].valid && set[i].tag == tag {
				fn(&set[i])
				break
			}
		}
	}
	return last - first + 1
}

// Occupancy returns the number of valid lines (for tests and reporting).
func (c *Cache) Occupancy() int {
	n := 0
	for _, set := range c.sets {
		for i := range set {
			if set[i].valid {
				n++
			}
		}
	}
	return n
}

// HitRate returns hits/(hits+misses), or 0 with no accesses.
func (s Stats) HitRate() float64 {
	t := s.Hits + s.Misses
	if t == 0 {
		return 0
	}
	return float64(s.Hits) / float64(t)
}
