package cache

import (
	"testing"
	"testing/quick"

	"netdimm/internal/sim"
)

func small() Config {
	return Config{
		Name:         "test",
		SizeBytes:    8 * 1024, // 8KB: 16 sets x 8 ways x 64B
		Ways:         8,
		LineBytes:    64,
		HitLatency:   3 * sim.Nanosecond,
		DDIOWays:     2,
		FlushBase:    40 * sim.Nanosecond,
		FlushPerLine: 10 * sim.Nanosecond,
	}
}

func TestBasicHitMiss(t *testing.T) {
	c := New(small())
	if c.Access(0, false) {
		t.Fatal("cold access hit")
	}
	if !c.Access(0, false) {
		t.Fatal("second access missed")
	}
	if !c.Access(63, false) {
		t.Fatal("same-line access missed")
	}
	if c.Access(64, false) {
		t.Fatal("next-line access hit")
	}
	s := c.Stats()
	if s.Hits != 2 || s.Misses != 2 {
		t.Fatalf("hits/misses = %d/%d", s.Hits, s.Misses)
	}
}

func TestLRUReplacement(t *testing.T) {
	c := New(small())
	// 16 sets: addresses k*16*64 all map to set 0. Fill 8 ways.
	stride := int64(16 * 64)
	for i := int64(0); i < 8; i++ {
		c.Access(i*stride, false)
	}
	c.Access(0, false) // touch line 0: it becomes MRU
	c.Access(8*stride, false)
	if !c.Lookup(0) {
		t.Fatal("MRU line evicted")
	}
	if c.Lookup(stride) {
		t.Fatal("LRU line survived")
	}
}

func TestDDIOWayRestriction(t *testing.T) {
	c := New(small())
	stride := int64(16 * 64)
	// Warm the set with 8 demand lines.
	for i := int64(0); i < 8; i++ {
		c.Access(i*stride, true)
	}
	// A storm of DDIO allocations to the same set may only thrash the DDIO
	// ways; at most DDIOWays demand lines can be displaced.
	for i := int64(100); i < 140; i++ {
		c.DDIOAllocate(i * stride)
	}
	surviving := 0
	for i := int64(0); i < 8; i++ {
		if c.Lookup(i * stride) {
			surviving++
		}
	}
	if surviving < 8-small().DDIOWays {
		t.Fatalf("DDIO storm displaced %d demand lines, cap is %d", 8-surviving, small().DDIOWays)
	}
}

func TestDDIODisabled(t *testing.T) {
	cfg := small()
	cfg.DDIOWays = 0
	c := New(cfg)
	if c.DDIOAllocate(0) {
		t.Fatal("DDIOAllocate with DDIO disabled should report not-present")
	}
	if c.Occupancy() != 0 {
		t.Fatal("DDIO-disabled allocation should not install a line")
	}
}

// DMA leakage (paper ref [68]): DDIO lines evicted before the CPU reads
// them are counted.
func TestDMALeakage(t *testing.T) {
	c := New(small())
	stride := int64(16 * 64)
	for i := int64(0); i < 10; i++ {
		c.DDIOAllocate(i * stride) // 2 DDIO ways, 10 allocations: 8 leaked
	}
	if got := c.Stats().DDIOEvictions; got != 8 {
		t.Fatalf("DDIOEvictions = %d, want 8", got)
	}
	// A consumed DDIO line does not count as leakage.
	c2 := New(small())
	c2.DDIOAllocate(0)
	c2.Access(0, false) // CPU consumes it
	for i := int64(1); i < 4; i++ {
		c2.DDIOAllocate(i * stride)
	}
	if got := c2.Stats().DDIOEvictions; got != 1 {
		t.Fatalf("DDIOEvictions = %d, want 1 (only the unread line)", got)
	}
}

func TestWritebackOnDirtyEviction(t *testing.T) {
	c := New(small())
	var wb []int64
	c.WritebackFn = func(a int64) { wb = append(wb, a) }
	stride := int64(16 * 64)
	c.Access(0, true) // dirty
	for i := int64(1); i <= 8; i++ {
		c.Access(i*stride, false)
	}
	if len(wb) != 1 || wb[0] != 0 {
		t.Fatalf("writebacks = %v, want [0]", wb)
	}
	if c.Stats().DirtyEvictions != 1 {
		t.Fatalf("DirtyEvictions = %d", c.Stats().DirtyEvictions)
	}
}

func TestFlushRange(t *testing.T) {
	c := New(small())
	var wb []int64
	c.WritebackFn = func(a int64) { wb = append(wb, a) }
	c.Access(0, true)
	c.Access(64, false)
	c.Access(128, true)

	cost := c.FlushRange(0, 192)
	want := small().FlushBase + 3*small().FlushPerLine
	if cost != want {
		t.Fatalf("flush cost = %v, want %v", cost, want)
	}
	if c.Lookup(0) || c.Lookup(64) || c.Lookup(128) {
		t.Fatal("flushed lines still present")
	}
	if len(wb) != 2 {
		t.Fatalf("writebacks = %v, want two dirty lines", wb)
	}
	if c.Stats().FlushedDirty != 2 {
		t.Fatalf("FlushedDirty = %d", c.Stats().FlushedDirty)
	}
}

func TestFlushCostCountsUncachedLines(t *testing.T) {
	c := New(small())
	// Nothing cached: the cost is still paid per line in the range.
	cost := c.FlushRange(0, 640)
	want := small().FlushBase + 10*small().FlushPerLine
	if cost != want {
		t.Fatalf("flush cost = %v, want %v", cost, want)
	}
	if c.FlushRange(0, 0) != 0 {
		t.Fatal("empty flush should be free")
	}
}

func TestInvalidateRange(t *testing.T) {
	c := New(small())
	var wb []int64
	c.WritebackFn = func(a int64) { wb = append(wb, a) }
	c.Access(0, true)
	c.InvalidateRange(0, 64)
	if c.Lookup(0) {
		t.Fatal("invalidated line still present")
	}
	if len(wb) != 0 {
		t.Fatal("invalidate must not write back")
	}
	if c.Stats().Invalidations != 1 {
		t.Fatalf("Invalidations = %d", c.Stats().Invalidations)
	}
}

func TestUnalignedRange(t *testing.T) {
	c := New(small())
	c.Access(64, false)
	// Range [100, 130) overlaps lines 1 and 2.
	cost := c.InvalidateRange(100, 30)
	want := small().FlushBase + 2*small().FlushPerLine
	if cost != want {
		t.Fatalf("cost = %v, want %v", cost, want)
	}
	if c.Lookup(64) {
		t.Fatal("line overlapping range not invalidated")
	}
}

// Property: occupancy never exceeds capacity and hit rate stays in [0,1].
func TestOccupancyBoundProperty(t *testing.T) {
	cfg := small()
	capLines := int(cfg.SizeBytes / cfg.LineBytes)
	f := func(ops []uint16) bool {
		c := New(cfg)
		for _, op := range ops {
			addr := int64(op) * 64
			switch op % 3 {
			case 0:
				c.Access(addr, false)
			case 1:
				c.Access(addr, true)
			default:
				c.DDIOAllocate(addr)
			}
		}
		hr := c.Stats().HitRate()
		return c.Occupancy() <= capLines && hr >= 0 && hr <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: after DDIOAllocate, Lookup finds the line (inclusion of fresh
// DMA data), provided DDIO is enabled.
func TestDDIOInstallsProperty(t *testing.T) {
	c := New(small())
	f := func(raw uint16) bool {
		addr := int64(raw) * 64
		c.DDIOAllocate(addr)
		return c.Lookup(addr)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestBadGeometryPanics(t *testing.T) {
	cases := []Config{
		{SizeBytes: 0, Ways: 8, LineBytes: 64},
		{SizeBytes: 8192, Ways: 0, LineBytes: 64},
		{SizeBytes: 1000, Ways: 8, LineBytes: 64}, // not divisible
		{SizeBytes: 8192, Ways: 8, LineBytes: 64, DDIOWays: 9},
	}
	for i, cfg := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: bad geometry accepted", i)
				}
			}()
			New(cfg)
		}()
	}
}

func TestLLC2MBConfig(t *testing.T) {
	cfg := LLC2MB()
	c := New(cfg)
	if got := cfg.DDIOWays * 100 / cfg.Ways; got > 15 || got < 10 {
		t.Fatalf("DDIO share = %d%%, want ~10%%", got)
	}
	if c.Occupancy() != 0 {
		t.Fatal("new cache not empty")
	}
}
