package core

import (
	"bytes"
	"testing"

	"netdimm/internal/sim"
)

func TestDataPlaneWriteRead(t *testing.T) {
	_, d := newDevice(t)
	if err := d.WriteData(0x5000, []byte("device data plane")); err != nil {
		t.Fatal(err)
	}
	got, err := d.ReadData(0x5000, 17)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "device data plane" {
		t.Fatalf("got %q", got)
	}
}

func TestReceivePacketDataStoresBytes(t *testing.T) {
	eng, d := newDevice(t)
	payload := bytes.Repeat([]byte{0x5A}, 300)
	if err := d.ReceivePacketData(0x7000, 300, payload, nil); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	got, _ := d.ReadData(0x7000, 300)
	if !bytes.Equal(got, payload) {
		t.Fatal("DMA data corrupted")
	}
}

func TestReceivePacketDataClips(t *testing.T) {
	eng, d := newDevice(t)
	long := bytes.Repeat([]byte{1}, 200)
	if err := d.ReceivePacketData(0x8000, 100, long, nil); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	got, _ := d.ReadData(0x8000, 101)
	if got[100] != 0 {
		t.Fatal("data written beyond the frame size")
	}
}

func TestPrefetchStopsAtDeviceEnd(t *testing.T) {
	eng, d := newDevice(t)
	// Read near the very end of the local address space: the prefetcher
	// must not issue beyond Size().
	last := d.Size() - 64
	before := d.Stats().Prefetches
	d.HostReadLine(last, nil)
	eng.Run()
	if d.Stats().Prefetches != before {
		t.Fatalf("prefetcher ran past the device end: %d fetches", d.Stats().Prefetches-before)
	}
}

func TestPrefetchSkipsResidentLines(t *testing.T) {
	eng, d := newDevice(t)
	d.ReceivePacket(0x9000, 1514, nil)
	eng.Run()
	// First payload read prefetches lines 2..5; an immediate second read
	// of line 2 (a hit) re-arms the prefetcher, which must skip lines
	// already resident.
	d.HostReadLine(0x9000+64, nil)
	eng.Run()
	p1 := d.Stats().Prefetches
	d.HostReadLine(0x9000+128, nil)
	eng.Run()
	p2 := d.Stats().Prefetches
	if p2-p1 > uint64(d.cfg.PrefetchDegree) {
		t.Fatalf("prefetcher re-fetched resident lines: %d new", p2-p1)
	}
}

func TestHostReadsUnderNNICTraffic(t *testing.T) {
	eng, d := newDevice(t)
	// Saturate the nMC with nNIC receive traffic, then issue a host read:
	// it must still complete (arbitration does not starve the PHY path).
	for i := 0; i < 16; i++ {
		d.ReceivePacket(int64(i)*2048, 1514, nil)
	}
	completed := false
	var lat sim.Time
	d.HostReadLine(1<<20, func(hit bool, l sim.Time) { completed = true; lat = l })
	eng.Run()
	if !completed {
		t.Fatal("host read starved by nNIC traffic")
	}
	if lat <= 0 {
		t.Fatal("missing latency")
	}
}

func TestCloneDataPlane(t *testing.T) {
	eng, d := newDevice(t)
	d.WriteData(0, []byte("clone me through registers or calls"))
	d.Clone(1<<20, 0, 35, nil)
	eng.Run()
	got, _ := d.ReadData(1<<20, 35)
	if string(got) != "clone me through registers or calls" {
		t.Fatalf("clone data = %q", got)
	}
}
