package core

import (
	"fmt"

	"netdimm/internal/addrmap"
	"netdimm/internal/dram"
	"netdimm/internal/membank"
	"netdimm/internal/memctrl"
	"netdimm/internal/nic"
	"netdimm/internal/nvdimmp"
	"netdimm/internal/obs"
	"netdimm/internal/sim"
)

// Config parameterises a NetDIMM buffer device.
type Config struct {
	// Ranks of local DRAM (16GB NetDIMM = two 8GB ranks, Fig. 9a).
	Ranks int
	// LocalTiming is the DRAM timing of the local modules; the local
	// channel is what the nMC drives.
	LocalTiming dram.Timing
	// MC configures the nMC.
	MC memctrl.Config
	// NCacheLines / NCacheWays give the SRAM buffer geometry.
	NCacheLines int
	NCacheWays  int
	// PrefetchDegree is the nPrefetcher's next-line depth n.
	PrefetchDegree int
	// Clone parameterises the RowClone engine.
	Clone dram.CloneTiming
	// Protocol is the NVDIMM-P asynchronous channel timing.
	Protocol nvdimmp.Timing
	// SRAMLatency is the nCache access time (hit service).
	SRAMLatency sim.Time
	// Seed drives the random-replacement stream.
	Seed uint64
}

// DefaultConfig returns a 16GB NetDIMM with a 32KB nCache and a
// four-line-deep next-line prefetcher.
func DefaultConfig() Config {
	return Config{
		Ranks:          2,
		LocalTiming:    dram.DDR4_2400(),
		MC:             memctrl.DefaultConfig(),
		NCacheLines:    512,
		NCacheWays:     8,
		PrefetchDegree: 4,
		Clone:          dram.DefaultCloneTiming(),
		Protocol:       nvdimmp.DefaultTiming(),
		SRAMLatency:    5 * sim.Nanosecond,
		Seed:           1,
	}
}

// Stats aggregates device-level counters.
type Stats struct {
	HostReads, HostWrites uint64
	NNICReads, NNICWrites uint64
	Prefetches            uint64
	Clones                map[dram.CloneMode]uint64
}

// Device is one NetDIMM buffer device plus its local DRAM: the nController
// logic, nCache, nPrefetcher, nMC and clone engine of Fig. 6a. Addresses
// are DIMM-local (the system map's NetDIMM region offset).
type Device struct {
	cfg    Config
	eng    *sim.Engine
	nmc    *memctrl.Controller
	ranks  *memctrl.RankSet
	ncache *NCache
	clones *dram.CloneEngine
	bus    nic.MemChannelBus
	// mem is the functional data plane: the bytes in local DRAM. Timing
	// and data are updated together, so the simulated machine's contents
	// are always consistent with its event history.
	mem     *membank.Store
	regfile *RegisterFile
	stats   Stats
}

// NewDevice builds a NetDIMM device on the engine.
func NewDevice(eng *sim.Engine, cfg Config) *Device {
	if cfg.Ranks <= 0 {
		panic("core: NetDIMM needs at least one rank")
	}
	ranks := memctrl.NewRankSet(cfg.LocalTiming, cfg.Ranks)
	d := &Device{
		cfg:    cfg,
		eng:    eng,
		ranks:  ranks,
		nmc:    memctrl.New(eng, cfg.MC, ranks),
		ncache: NewNCache(cfg.NCacheLines, cfg.NCacheWays, cfg.Seed),
		clones: dram.NewCloneEngine(cfg.Clone, cfg.LocalTiming, ranks.Ranks),
		bus:    nic.MemChannelBus{Protocol: cfg.Protocol, Media: 15 * sim.Nanosecond},
		mem:    membank.New(),
		stats:  Stats{Clones: make(map[dram.CloneMode]uint64)},
	}
	return d
}

// Observe wires the device's observability hooks into cell c: the nMC gets
// a transaction-span track (prefix+"/nmc") and a read-queue-depth series
// (prefix+".nmc.readq"), and every local rank samples busy-bank occupancy
// (prefix+".rank<i>.busyBanks"). A nil cell — or a cell with tracing and
// metrics both off — leaves all hooks nil, preserving the uninstrumented
// fast path.
func (d *Device) Observe(c *obs.Cell, prefix string) {
	if c == nil {
		return
	}
	d.nmc.Observe(c.Track(prefix+"/nmc"), c.Metrics().Series(prefix+".nmc.readq"))
	for i, r := range d.ranks.Ranks {
		r.Observe(c.Metrics().Series(fmt.Sprintf("%s.rank%d.busyBanks", prefix, i)))
	}
}

// Size returns the local DRAM capacity in bytes.
func (d *Device) Size() int64 { return int64(d.cfg.Ranks) * addrmap.RankBytes }

// NCache exposes the SRAM buffer (for tests and experiments).
func (d *Device) NCache() *NCache { return d.ncache }

// NMC exposes the local memory controller (for interference experiments).
func (d *Device) NMC() *memctrl.Controller { return d.nmc }

// Stats returns a copy of the device counters.
func (d *Device) Stats() Stats {
	s := d.stats
	s.Clones = make(map[dram.CloneMode]uint64, len(d.stats.Clones))
	for k, v := range d.stats.Clones {
		s.Clones[k] = v
	}
	return s
}

// RegisterBus returns the host's register attachment: a memory-channel
// access via the asynchronous protocol.
func (d *Device) RegisterBus() nic.RegisterBus { return d.bus }

// ReceivePacket models the nNIC delivering a received frame: the
// nController depletes the nNIC RX buffer into the descriptor's DMA buffer
// in local DRAM (one write per cacheline through the nMC, which gives nNIC
// traffic priority by construction: it enqueues ahead of host reads in
// submission order) and writes the first cacheline — the packet header —
// into nCache (paper Sec. 4.1). done fires when the last write retires.
func (d *Device) ReceivePacket(bufAddr int64, size int, done func()) error {
	return d.ReceivePacketData(bufAddr, size, nil, done)
}

// ReceivePacketData is ReceivePacket with the frame's bytes: the data
// lands in the functional store at the DMA buffer address as the timing
// path retires.
func (d *Device) ReceivePacketData(bufAddr int64, size int, data []byte, done func()) error {
	if size <= 0 {
		return fmt.Errorf("core: ReceivePacket size %d", size)
	}
	if data != nil {
		if len(data) > size {
			data = data[:size]
		}
		if err := d.mem.Write(bufAddr, data); err != nil {
			return err
		}
	}
	lines := (int64(size) + addrmap.CachelineSize - 1) / addrmap.CachelineSize
	var lastErr error
	remaining := int(lines)
	for i := int64(0); i < lines; i++ {
		addr := bufAddr + i*addrmap.CachelineSize
		d.ncache.Invalidate(addr) // snoop: stale copies must die
		d.stats.NNICWrites++
		err := d.nmc.Submit(&memctrl.Request{
			Addr:  addr,
			Write: true,
			Bytes: addrmap.CachelineSize,
			Done: func(memctrl.Response) {
				remaining--
				if remaining == 0 && done != nil {
					done()
				}
			},
		})
		if err != nil {
			lastErr = err
			remaining--
		}
	}
	// Cache the header line: "the nController writes the first cacheline
	// of each received packet to nCache".
	d.ncache.Insert(bufAddr, true, false)
	d.Registers().noteRX()
	return lastErr
}

// TransmitFetch models the nController reading a TX packet out of local
// DRAM into the nNIC TX buffer. done fires when the data is staged.
func (d *Device) TransmitFetch(bufAddr int64, size int, done func()) error {
	if size <= 0 {
		return fmt.Errorf("core: TransmitFetch size %d", size)
	}
	lines := (int64(size) + addrmap.CachelineSize - 1) / addrmap.CachelineSize
	remaining := int(lines)
	var lastErr error
	for i := int64(0); i < lines; i++ {
		d.stats.NNICReads++
		err := d.nmc.Submit(&memctrl.Request{
			Addr:  bufAddr + i*addrmap.CachelineSize,
			Bytes: addrmap.CachelineSize,
			Done: func(memctrl.Response) {
				remaining--
				if remaining == 0 && done != nil {
					done()
				}
			},
		})
		if err != nil {
			lastErr = err
			remaining--
		}
	}
	return lastErr
}

// HostReadLine serves one cacheline read arriving from the global memory
// channel (the PHY path of Fig. 6a): nCache hit → data returns after the
// protocol handshake plus SRAM access; miss → the request goes to the nMC
// and returns asynchronously. Non-header accesses arm the nPrefetcher.
// done receives whether the read hit nCache and the total latency.
func (d *Device) HostReadLine(addr int64, done func(hit bool, latency sim.Time)) {
	d.stats.HostReads++
	start := d.eng.Now()
	hit, wasHeader := d.ncache.Read(addr)
	if hit {
		lat := d.cfg.Protocol.ReadLatency(d.cfg.SRAMLatency)
		if !wasHeader {
			d.prefetch(addr)
		}
		if done != nil {
			d.eng.Schedule(lat, func() { done(true, lat) })
		}
		return
	}
	// Miss: fetch from local DRAM through the nMC, then complete over the
	// asynchronous protocol. A missing line cannot carry the header flag,
	// so the prefetcher runs (paper: the flag only inhibits prefetch for
	// header lines resident in nCache).
	d.prefetch(addr)
	err := d.nmc.Submit(&memctrl.Request{
		Addr:  addr,
		Bytes: addrmap.CachelineSize,
		Done: func(r memctrl.Response) {
			lat := r.Completed - start + d.cfg.Protocol.ReadOverhead()
			if done != nil {
				d.eng.Schedule(d.cfg.Protocol.ReadOverhead(), func() { done(false, lat) })
			}
		},
	})
	if err != nil {
		// Queue full: model back-pressure as a retry after one burst slot.
		d.eng.Schedule(d.cfg.LocalTiming.TBL, func() { d.HostReadLine(addr, done) })
		d.stats.HostReads--
	}
}

// HostWriteLine serves one cacheline write from the global channel: writes
// bypass nCache (they queue directly in the nMC write queue) but snoop it
// for coherency (paper Sec. 4.1). The returned latency is the posted-write
// protocol overhead; done, if non-nil, fires when the write retires in
// DRAM.
func (d *Device) HostWriteLine(addr int64, done func()) sim.Time {
	d.stats.HostWrites++
	d.ncache.Invalidate(addr)
	err := d.nmc.Submit(&memctrl.Request{
		Addr:  addr,
		Write: true,
		Bytes: addrmap.CachelineSize,
		Done: func(memctrl.Response) {
			if done != nil {
				done()
			}
		},
	})
	if err != nil {
		d.eng.Schedule(d.cfg.LocalTiming.TBL, func() { d.HostWriteLine(addr, done) })
		d.stats.HostWrites--
	}
	return d.cfg.Protocol.WriteOverhead()
}

// prefetch arms the nPrefetcher: the next PrefetchDegree cachelines are
// read from local DRAM into nCache (skipping lines already present).
func (d *Device) prefetch(addr int64) {
	for i := 1; i <= d.cfg.PrefetchDegree; i++ {
		target := addr + int64(i)*addrmap.CachelineSize
		if target >= d.Size() || d.ncache.Contains(target) {
			continue
		}
		d.stats.Prefetches++
		err := d.nmc.Submit(&memctrl.Request{
			Addr:  target,
			Bytes: addrmap.CachelineSize,
			Done: func(memctrl.Response) {
				d.ncache.Insert(target, false, true)
				d.ncache.notePrefetchFill()
			},
		})
		if err != nil {
			d.stats.Prefetches-- // dropped under pressure; prefetch is best effort
		}
	}
}

// Clone performs netdimmClone(dst, src, size): in-memory buffer cloning
// with automatic FPM/PSM/GCM mode selection (paper Sec. 4.1, Alg. 1 line
// 14). done receives the selected mode. The engine write-snoops nCache for
// the destination range.
func (d *Device) Clone(dst, src int64, size int, done func(dram.CloneMode)) sim.Time {
	lines := (int64(size) + addrmap.CachelineSize - 1) / addrmap.CachelineSize
	for i := int64(0); i < lines; i++ {
		d.ncache.Invalidate(dst + i*addrmap.CachelineSize)
	}
	d.mem.Clone(dst, src, size)
	finish, mode := d.clones.Clone(d.eng.Now(), src, dst, int64(size))
	d.stats.Clones[mode]++
	lat := finish - d.eng.Now()
	if done != nil {
		d.eng.At(finish, func() { done(mode) })
	}
	return lat
}

// CloneLatency predicts the cost of a clone without running it.
func (d *Device) CloneLatency(dst, src int64, size int) sim.Time {
	return d.clones.Latency(src, dst, int64(size))
}

// ReadData returns the bytes at a DIMM-local address from the functional
// store (no timing side effects; the timing path is HostReadLine).
func (d *Device) ReadData(addr int64, n int) ([]byte, error) {
	return d.mem.Read(addr, n)
}

// WriteData stores bytes at a DIMM-local address (the functional effect of
// host writes; the timing path is HostWriteLine).
func (d *Device) WriteData(addr int64, data []byte) error {
	return d.mem.Write(addr, data)
}
