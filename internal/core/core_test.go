package core

import (
	"testing"
	"testing/quick"

	"netdimm/internal/addrmap"
	"netdimm/internal/dram"
	"netdimm/internal/sim"
)

func TestNCacheInsertRead(t *testing.T) {
	c := NewNCache(64, 8, 1)
	c.Insert(0, true, false)
	if !c.Contains(0) {
		t.Fatal("inserted line missing")
	}
	hit, header := c.Read(0)
	if !hit || !header {
		t.Fatalf("Read = %v/%v, want hit header", hit, header)
	}
	// Consume-on-read: gone now.
	if c.Contains(0) {
		t.Fatal("line survived a read (consume-on-read violated)")
	}
	if hit, _ := c.Read(0); hit {
		t.Fatal("second read hit")
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 || s.Consumed != 1 || s.HeaderHits != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestNCacheRandomReplacement(t *testing.T) {
	c := NewNCache(16, 2, 7) // 8 sets x 2 ways
	// With XOR-folded indexing, (li ^ li/8) %% 8 == 0 for lines 0, 9, 18:
	// three aliases of set 0 in a 2-way cache.
	c.Insert(0, false, false)
	c.Insert(9*64, false, false)
	c.Insert(18*64, false, false) // forces a random victim
	if c.Stats().Replacements != 1 {
		t.Fatalf("Replacements = %d", c.Stats().Replacements)
	}
	if c.Occupancy() != 2 {
		t.Fatalf("Occupancy = %d, want 2", c.Occupancy())
	}
}

func TestNCacheInvalidate(t *testing.T) {
	c := NewNCache(64, 8, 1)
	c.Insert(64, false, false)
	c.Invalidate(64)
	if c.Contains(64) {
		t.Fatal("invalidated line present")
	}
	if c.Stats().Invalidations != 1 {
		t.Fatal("invalidation not counted")
	}
	c.Invalidate(128) // miss: no count
	if c.Stats().Invalidations != 1 {
		t.Fatal("missing invalidation counted")
	}
}

func TestNCacheDuplicateInsert(t *testing.T) {
	c := NewNCache(64, 8, 1)
	c.Insert(0, false, false)
	c.Insert(0, true, false) // refresh with header flag
	if c.Occupancy() != 1 {
		t.Fatalf("Occupancy = %d after duplicate insert", c.Occupancy())
	}
	_, header := c.Read(0)
	if !header {
		t.Fatal("refresh did not update header flag")
	}
}

// Property: occupancy is bounded by capacity and reads never return data
// that was not inserted.
func TestNCacheBoundsProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		c := NewNCache(32, 4, 9)
		live := make(map[int64]bool)
		for _, op := range ops {
			addr := int64(op%64) * 64
			switch op % 3 {
			case 0:
				c.Insert(addr, false, false)
				live[addr] = true
			case 1:
				hit, _ := c.Read(addr)
				if hit && !live[addr] {
					return false // phantom line
				}
				delete(live, addr) // consumed or absent either way
			default:
				c.Invalidate(addr)
				delete(live, addr)
			}
			if c.Occupancy() > c.Lines() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestNCacheBadGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad geometry accepted")
		}
	}()
	NewNCache(10, 3, 1)
}

func newDevice(t *testing.T) (*sim.Engine, *Device) {
	t.Helper()
	eng := sim.NewEngine()
	return eng, NewDevice(eng, DefaultConfig())
}

func TestReceivePacketCachesHeader(t *testing.T) {
	eng, d := newDevice(t)
	fired := false
	if err := d.ReceivePacket(0x10000, 1514, func() { fired = true }); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if !fired {
		t.Fatal("completion callback not fired")
	}
	if !d.NCache().Contains(0x10000) {
		t.Fatal("header line not cached")
	}
	if d.NCache().Contains(0x10000 + 64) {
		t.Fatal("payload line cached on receive")
	}
	if d.Stats().NNICWrites != 24 {
		t.Fatalf("NNICWrites = %d, want 24 (1514B)", d.Stats().NNICWrites)
	}
}

func TestHostReadHeaderHit(t *testing.T) {
	eng, d := newDevice(t)
	d.ReceivePacket(0x10000, 1514, nil)
	eng.Run()

	var gotHit bool
	var gotLat sim.Time
	d.HostReadLine(0x10000, func(hit bool, lat sim.Time) { gotHit, gotLat = hit, lat })
	eng.Run()
	if !gotHit {
		t.Fatal("header read should hit nCache")
	}
	want := DefaultConfig().Protocol.ReadLatency(DefaultConfig().SRAMLatency)
	if gotLat != want {
		t.Fatalf("header hit latency = %v, want %v", gotLat, want)
	}
	// Header access must NOT trigger prefetching (paper Sec. 4.1).
	if d.Stats().Prefetches != 0 {
		t.Fatalf("header access armed the prefetcher: %d", d.Stats().Prefetches)
	}
}

func TestHostReadPayloadPrefetches(t *testing.T) {
	eng, d := newDevice(t)
	d.ReceivePacket(0x10000, 1514, nil)
	eng.Run()

	// First payload line misses and arms the prefetcher.
	var missLat sim.Time
	d.HostReadLine(0x10000+64, func(hit bool, lat sim.Time) {
		if hit {
			t.Error("first payload read should miss")
		}
		missLat = lat
	})
	eng.Run()
	if d.Stats().Prefetches == 0 {
		t.Fatal("payload miss did not prefetch")
	}
	// Subsequent lines hit thanks to the prefetcher ("in the worst case,
	// reading an entire RX packet may only experience one nCache miss").
	var hits, misses int
	for i := 2; i < 24; i++ {
		addr := 0x10000 + int64(i)*64
		d.HostReadLine(addr, func(hit bool, lat sim.Time) {
			if hit {
				hits++
				if lat >= missLat {
					t.Errorf("hit latency %v not below miss latency %v", lat, missLat)
				}
			} else {
				misses++
			}
		})
		eng.Run()
	}
	if hits < 20 {
		t.Fatalf("prefetcher ineffective: %d hits, %d misses", hits, misses)
	}
}

func TestHostWriteSnoopsNCache(t *testing.T) {
	eng, d := newDevice(t)
	d.ReceivePacket(0x20000, 128, nil)
	eng.Run()
	if !d.NCache().Contains(0x20000) {
		t.Fatal("header not cached")
	}
	lat := d.HostWriteLine(0x20000, nil)
	if lat != DefaultConfig().Protocol.WriteOverhead() {
		t.Fatalf("write latency = %v", lat)
	}
	if d.NCache().Contains(0x20000) {
		t.Fatal("write did not snoop-invalidate nCache")
	}
	eng.Run()
}

func TestReceiveSnoopsStaleLines(t *testing.T) {
	eng, d := newDevice(t)
	d.ReceivePacket(0x30000, 256, nil)
	eng.Run()
	// Re-receive into the same buffer: previously cached lines for the
	// payload must be invalidated, header refreshed.
	d.ReceivePacket(0x30000, 256, nil)
	eng.Run()
	if !d.NCache().Contains(0x30000) {
		t.Fatal("header line missing after re-receive")
	}
}

func TestCloneModesAndLatency(t *testing.T) {
	eng, d := newDevice(t)
	src := int64(0)
	dstFPM := src + addrmap.SameSubarrayPageStride
	dstGCM := src + addrmap.RankBytes

	var mode dram.CloneMode
	lat := d.Clone(dstFPM, src, 1514, func(m dram.CloneMode) { mode = m })
	eng.Run()
	if mode != dram.FPM {
		t.Fatalf("mode = %v, want FPM", mode)
	}
	if lat != 90*sim.Nanosecond {
		t.Fatalf("FPM clone latency = %v", lat)
	}
	lat2 := d.Clone(dstGCM, src, 1514, nil)
	if lat2 <= lat {
		t.Fatalf("GCM %v should cost more than FPM %v", lat2, lat)
	}
	eng.Run()
	if d.Stats().Clones[dram.FPM] != 1 || d.Stats().Clones[dram.GCM] != 1 {
		t.Fatalf("clone stats = %v", d.Stats().Clones)
	}
	if d.CloneLatency(dstFPM, src, 1514) != 90*sim.Nanosecond {
		t.Fatal("CloneLatency mismatch")
	}
}

func TestCloneSnoopsDestination(t *testing.T) {
	eng, d := newDevice(t)
	dst := addrmap.SameSubarrayPageStride
	d.ReceivePacket(dst, 128, nil) // header of dst cached
	eng.Run()
	d.Clone(dst, 0, 1514, nil)
	if d.NCache().Contains(dst) {
		t.Fatal("clone did not snoop-invalidate destination lines")
	}
	eng.Run()
}

func TestTransmitFetch(t *testing.T) {
	eng, d := newDevice(t)
	fired := false
	if err := d.TransmitFetch(0x40000, 1024, func() { fired = true }); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if !fired {
		t.Fatal("TransmitFetch completion missing")
	}
	if d.Stats().NNICReads != 16 {
		t.Fatalf("NNICReads = %d, want 16", d.Stats().NNICReads)
	}
}

func TestDeviceErrors(t *testing.T) {
	_, d := newDevice(t)
	if err := d.ReceivePacket(0, 0, nil); err == nil {
		t.Error("zero-size receive accepted")
	}
	if err := d.TransmitFetch(0, -1, nil); err == nil {
		t.Error("negative-size transmit accepted")
	}
}

func TestDeviceSizeAndBus(t *testing.T) {
	_, d := newDevice(t)
	if d.Size() != 16<<30 {
		t.Fatalf("Size = %d", d.Size())
	}
	if d.RegisterBus().Name() != "memory-channel" {
		t.Fatal("register bus should be the memory channel")
	}
	// Register access over the channel is far below a PCIe round trip.
	if d.RegisterBus().ReadCost() > 200*sim.Nanosecond {
		t.Fatalf("register read = %v, implausibly slow", d.RegisterBus().ReadCost())
	}
}
