// Package core implements the NetDIMM buffer device — the paper's primary
// contribution (Sec. 4.1, Fig. 6a): the nController that arbitrates
// between the nNIC and the DDR5 PHY, the nCache consume-on-read SRAM
// buffer, the next-line nPrefetcher, the nMC local memory controller
// binding, and the in-memory buffer-cloning engine, all exposed to the
// host over the NVDIMM-P asynchronous protocol.
package core

import (
	"fmt"

	"netdimm/internal/addrmap"
	"netdimm/internal/sim"
)

// NCacheStats counts nCache events.
type NCacheStats struct {
	Hits, Misses   uint64
	HeaderHits     uint64
	Inserts        uint64
	Replacements   uint64 // random-replacement victims
	Consumed       uint64 // lines removed by consume-on-read
	Invalidations  uint64 // snooped writes that matched
	PrefetchFills  uint64
	PrefetchUseful uint64 // prefetched lines later hit
}

type nline struct {
	tag      int64
	valid    bool
	header   bool // set for the first cacheline of a newly arrived packet
	prefetch bool // filled by the nPrefetcher
}

// NCache is the dual-port SRAM buffer of the NetDIMM buffer device. It is
// an inclusive set-associative structure, but behaves as a streaming
// buffer: a read hit removes the line (the RX data moves on to the host
// and "is unlikely to be accessed in a near future"), all lines are clean,
// and replacement is random (paper Sec. 4.1).
type NCache struct {
	ways  int
	sets  [][]nline
	setsN int64
	rng   *sim.Rand
	stats NCacheStats
}

// NewNCache builds an nCache with the given total line count and
// associativity. Replacement randomness is seeded deterministically.
func NewNCache(lines, ways int, seed uint64) *NCache {
	if lines <= 0 || ways <= 0 || lines%ways != 0 {
		panic(fmt.Sprintf("core: bad nCache geometry lines=%d ways=%d", lines, ways))
	}
	setsN := lines / ways
	sets := make([][]nline, setsN)
	for i := range sets {
		sets[i] = make([]nline, ways)
	}
	return &NCache{ways: ways, sets: sets, setsN: int64(setsN), rng: sim.NewRand(seed)}
}

// Stats returns a copy of the statistics.
func (c *NCache) Stats() NCacheStats { return c.stats }

// Lines returns the capacity in cachelines.
func (c *NCache) Lines() int { return int(c.setsN) * c.ways }

// Occupancy returns the number of valid lines.
func (c *NCache) Occupancy() int {
	n := 0
	for _, s := range c.sets {
		for i := range s {
			if s[i].valid {
				n++
			}
		}
	}
	return n
}

func (c *NCache) locate(addr int64) ([]nline, int64) {
	li := addr / addrmap.CachelineSize
	// XOR-folded set index: RX ring slots sit at power-of-two strides, so
	// a plain modulo would alias every packet header into the same one or
	// two sets. Folding the tag bits in spreads strided streams.
	set := (li ^ (li / c.setsN)) % c.setsN
	return c.sets[set], li / c.setsN
}

// Insert stores one cacheline. header marks the first cacheline of a newly
// arrived packet (prefetch-inhibit flag); prefetched marks nPrefetcher
// fills. If the set is full a random victim is replaced; all lines are
// clean so no writeback occurs.
func (c *NCache) Insert(addr int64, header, prefetched bool) {
	set, tag := c.locate(addr)
	// Refresh in place if present.
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			set[i].header = header
			set[i].prefetch = prefetched
			c.stats.Inserts++
			return
		}
	}
	v := -1
	for i := range set {
		if !set[i].valid {
			v = i
			break
		}
	}
	if v < 0 {
		v = c.rng.Intn(c.ways)
		c.stats.Replacements++
	}
	set[v] = nline{tag: tag, valid: true, header: header, prefetch: prefetched}
	c.stats.Inserts++
}

// Read probes the cache for one cacheline. On a hit the line is consumed
// (removed). wasHeader reports the line's header flag — the nPrefetcher
// must not prefetch after a header access (paper: "We disable nPrefetcher
// for the first cacheline of RX packets").
func (c *NCache) Read(addr int64) (hit, wasHeader bool) {
	set, tag := c.locate(addr)
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			c.stats.Hits++
			if set[i].header {
				c.stats.HeaderHits++
			}
			if set[i].prefetch {
				c.stats.PrefetchUseful++
			}
			wasHeader = set[i].header
			set[i].valid = false // consume-on-read
			c.stats.Consumed++
			return true, wasHeader
		}
	}
	c.stats.Misses++
	return false, false
}

// Contains probes without consuming (for tests and the prefetcher's
// duplicate-fill suppression).
func (c *NCache) Contains(addr int64) bool {
	set, tag := c.locate(addr)
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			return true
		}
	}
	return false
}

// Invalidate drops the line if present — the nController snoops write
// addresses from the PHY and nNIC to keep nCache coherent with local DRAM
// (paper Sec. 4.1).
func (c *NCache) Invalidate(addr int64) {
	set, tag := c.locate(addr)
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			set[i].valid = false
			c.stats.Invalidations++
			return
		}
	}
}

// notePrefetchFill is the statistics hook used by the device.
func (c *NCache) notePrefetchFill() { c.stats.PrefetchFills++ }
