package core

import (
	"fmt"

	"netdimm/internal/dram"
)

// Reg identifies one NetDIMM configuration-space register. The driver maps
// this space with ioremap() and programs it like a conventional NIC's BAR
// (paper Sec. 4.2.2: the e1000-derived driver reuses the standard register
// programming model; Alg. 1 line 14 "writes dst, src, and size values to a
// set of NetDIMM registers").
type Reg int

const (
	// RegStatus: read-only status bits (RX pending count in the low bits,
	// StatusCloneBusy and StatusTxDone flags above).
	RegStatus Reg = iota
	// RegTxTail: writing kicks transmission of descriptors up to the tail.
	RegTxTail
	// RegRxHead: the driver acknowledges consumed RX descriptors.
	RegRxHead
	// RegCloneSrc / RegCloneDst: DIMM-local clone addresses.
	RegCloneSrc
	RegCloneDst
	// RegCloneSize: writing the size kicks off netdimmClone(dst, src, size).
	RegCloneSize
	numRegs
)

// Status bits in RegStatus above the 32-bit RX pending count.
const (
	StatusCloneBusy uint64 = 1 << 32
	StatusTxDone    uint64 = 1 << 33
)

// RegisterFile is the NetDIMM's host-visible register space. Reads and
// writes are functional; their channel timing is the RegisterBus cost the
// driver accounts separately.
type RegisterFile struct {
	dev  *Device
	regs [numRegs]uint64

	rxPending uint32
	cloneBusy bool

	// lastCloneMode records the mode of the most recent clone for
	// inspection.
	lastCloneMode dram.CloneMode

	// OnCloneDone, if set, fires when a register-kicked clone completes.
	OnCloneDone func(dram.CloneMode)
}

// Registers returns the device's register file.
func (d *Device) Registers() *RegisterFile {
	if d.regfile == nil {
		d.regfile = &RegisterFile{dev: d}
	}
	return d.regfile
}

// Read returns a register value. RegStatus composes the live status.
func (rf *RegisterFile) Read(r Reg) (uint64, error) {
	if r < 0 || r >= numRegs {
		return 0, fmt.Errorf("core: no register %d", int(r))
	}
	if r == RegStatus {
		v := uint64(rf.rxPending)
		if rf.cloneBusy {
			v |= StatusCloneBusy
		}
		return v, nil
	}
	return rf.regs[r], nil
}

// Write stores a register value and triggers its side effect: writing
// RegCloneSize launches the in-memory clone with the latched src/dst.
func (rf *RegisterFile) Write(r Reg, v uint64) error {
	if r < 0 || r >= numRegs {
		return fmt.Errorf("core: no register %d", int(r))
	}
	if r == RegStatus {
		return fmt.Errorf("core: RegStatus is read-only")
	}
	rf.regs[r] = v
	if r == RegCloneSize {
		if rf.cloneBusy {
			return fmt.Errorf("core: clone engine busy")
		}
		src := int64(rf.regs[RegCloneSrc])
		dst := int64(rf.regs[RegCloneDst])
		size := int(v)
		if size <= 0 {
			return fmt.Errorf("core: clone size %d", size)
		}
		rf.cloneBusy = true
		rf.dev.Clone(dst, src, size, func(m dram.CloneMode) {
			rf.cloneBusy = false
			rf.lastCloneMode = m
			if rf.OnCloneDone != nil {
				rf.OnCloneDone(m)
			}
		})
	}
	return nil
}

// LastCloneMode reports the mode of the most recent completed clone.
func (rf *RegisterFile) LastCloneMode() dram.CloneMode { return rf.lastCloneMode }

// noteRX bumps the RX-pending count (called by the device on packet
// arrival); the polling agent observes it via RegStatus.
func (rf *RegisterFile) noteRX() { rf.rxPending++ }

// AckRX clears one pending packet (the driver consumed a descriptor,
// typically paired with a RegRxHead write).
func (rf *RegisterFile) AckRX() {
	if rf.rxPending > 0 {
		rf.rxPending--
	}
}
