package core

import (
	"testing"

	"netdimm/internal/addrmap"
	"netdimm/internal/dram"
)

func TestRegisterFileBasics(t *testing.T) {
	_, d := newDevice(t)
	rf := d.Registers()
	if rf != d.Registers() {
		t.Fatal("Registers should be a singleton per device")
	}
	if err := rf.Write(RegTxTail, 7); err != nil {
		t.Fatal(err)
	}
	v, err := rf.Read(RegTxTail)
	if err != nil || v != 7 {
		t.Fatalf("Read = %d, %v", v, err)
	}
	if _, err := rf.Read(Reg(99)); err == nil {
		t.Error("bad register read accepted")
	}
	if err := rf.Write(Reg(-1), 0); err == nil {
		t.Error("bad register write accepted")
	}
	if err := rf.Write(RegStatus, 1); err == nil {
		t.Error("RegStatus write accepted")
	}
}

func TestRegisterRXPending(t *testing.T) {
	eng, d := newDevice(t)
	rf := d.Registers()
	st, _ := rf.Read(RegStatus)
	if st&0xffffffff != 0 {
		t.Fatal("fresh device should report no pending RX")
	}
	d.ReceivePacket(0x1000, 256, nil)
	d.ReceivePacket(0x2000, 256, nil)
	eng.Run()
	st, _ = rf.Read(RegStatus)
	if st&0xffffffff != 2 {
		t.Fatalf("pending = %d, want 2", st&0xffffffff)
	}
	rf.AckRX()
	st, _ = rf.Read(RegStatus)
	if st&0xffffffff != 1 {
		t.Fatalf("pending after ack = %d", st&0xffffffff)
	}
	rf.AckRX()
	rf.AckRX() // over-ack is harmless
	st, _ = rf.Read(RegStatus)
	if st&0xffffffff != 0 {
		t.Fatal("pending should clamp at zero")
	}
}

func TestRegisterCloneKick(t *testing.T) {
	eng, d := newDevice(t)
	d.WriteData(0, []byte("register clone data"))
	rf := d.Registers()

	dst := addrmap.SameSubarrayPageStride
	rf.Write(RegCloneSrc, 0)
	rf.Write(RegCloneDst, uint64(dst))
	var mode dram.CloneMode
	fired := false
	rf.OnCloneDone = func(m dram.CloneMode) { mode = m; fired = true }
	if err := rf.Write(RegCloneSize, 19); err != nil {
		t.Fatal(err)
	}
	// Busy until the engine runs the completion.
	st, _ := rf.Read(RegStatus)
	if st&StatusCloneBusy == 0 {
		t.Fatal("clone should be busy after kick")
	}
	if err := rf.Write(RegCloneSize, 19); err == nil {
		t.Fatal("double kick while busy accepted")
	}
	eng.Run()
	if !fired || mode != dram.FPM {
		t.Fatalf("clone completion: fired=%v mode=%v", fired, mode)
	}
	if rf.LastCloneMode() != dram.FPM {
		t.Fatal("LastCloneMode wrong")
	}
	got, _ := d.ReadData(dst, 19)
	if string(got) != "register clone data" {
		t.Fatalf("cloned bytes = %q", got)
	}
}

func TestRegisterCloneValidation(t *testing.T) {
	_, d := newDevice(t)
	rf := d.Registers()
	if err := rf.Write(RegCloneSize, 0); err == nil {
		t.Fatal("zero-size clone accepted")
	}
}
