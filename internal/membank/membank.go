// Package membank is the functional (data-carrying) half of the memory
// model: a sparse, page-granular byte store for a DIMM's local address
// space. The timing models elsewhere say *when* data moves; membank says
// *what* moved, so tests can assert end-to-end data integrity — a packet
// DMA-written by the nNIC, cloned by the RowClone engine, and read back by
// the host must come out byte-identical.
package membank

import (
	"fmt"

	"netdimm/internal/addrmap"
)

// Store is a sparse byte-addressable memory. Unwritten bytes read as zero.
// The zero value is ready to use.
type Store struct {
	pages map[int64][]byte
	// writes and reads count bytes moved, for accounting tests.
	bytesWritten int64
	bytesRead    int64
}

// New returns an empty store.
func New() *Store { return &Store{pages: make(map[int64][]byte)} }

func (s *Store) page(base int64, create bool) []byte {
	if s.pages == nil {
		s.pages = make(map[int64][]byte)
	}
	p, ok := s.pages[base]
	if !ok && create {
		p = make([]byte, addrmap.PageSize)
		s.pages[base] = p
	}
	return p
}

// Write stores data at addr, spanning pages as needed. Negative addresses
// are rejected.
func (s *Store) Write(addr int64, data []byte) error {
	if addr < 0 {
		return fmt.Errorf("membank: negative address %d", addr)
	}
	s.bytesWritten += int64(len(data))
	for len(data) > 0 {
		base := addr &^ (addrmap.PageSize - 1)
		off := addr - base
		p := s.page(base, true)
		n := copy(p[off:], data)
		data = data[n:]
		addr += int64(n)
	}
	return nil
}

// Read returns n bytes starting at addr. Unwritten regions are zero.
func (s *Store) Read(addr int64, n int) ([]byte, error) {
	if addr < 0 || n < 0 {
		return nil, fmt.Errorf("membank: invalid read addr=%d n=%d", addr, n)
	}
	s.bytesRead += int64(n)
	out := make([]byte, n)
	dst := out
	for len(dst) > 0 {
		base := addr &^ (addrmap.PageSize - 1)
		off := addr - base
		span := int(addrmap.PageSize - off)
		if span > len(dst) {
			span = len(dst)
		}
		if p := s.page(base, false); p != nil {
			copy(dst[:span], p[off:])
		}
		dst = dst[span:]
		addr += int64(span)
	}
	return out, nil
}

// Clone copies n bytes from src to dst — the functional effect of a
// RowClone operation (any mode: FPM/PSM/GCM all produce the same bytes).
// Overlapping ranges copy through an intermediate buffer, matching the
// engine's read-then-write behaviour.
func (s *Store) Clone(dst, src int64, n int) error {
	if n < 0 {
		return fmt.Errorf("membank: negative clone length %d", n)
	}
	data, err := s.Read(src, n)
	if err != nil {
		return err
	}
	return s.Write(dst, data)
}

// Zero clears n bytes at addr (RowClone's bulk-initialisation use).
func (s *Store) Zero(addr int64, n int) error {
	return s.Write(addr, make([]byte, n))
}

// PagesResident returns how many distinct pages hold data.
func (s *Store) PagesResident() int { return len(s.pages) }

// Traffic returns total bytes written and read through the store.
func (s *Store) Traffic() (written, read int64) { return s.bytesWritten, s.bytesRead }
