package membank

import (
	"bytes"
	"testing"
	"testing/quick"

	"netdimm/internal/addrmap"
)

func TestWriteReadRoundTrip(t *testing.T) {
	s := New()
	data := []byte("hello netdimm")
	if err := s.Write(100, data); err != nil {
		t.Fatal(err)
	}
	got, err := s.Read(100, len(data))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("got %q", got)
	}
}

func TestUnwrittenReadsZero(t *testing.T) {
	s := New()
	got, err := s.Read(1<<30, 16)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range got {
		if b != 0 {
			t.Fatal("unwritten memory not zero")
		}
	}
	if s.PagesResident() != 0 {
		t.Fatal("read should not materialise pages")
	}
}

func TestCrossPageWrite(t *testing.T) {
	s := New()
	addr := addrmap.PageSize - 5
	data := []byte("0123456789")
	if err := s.Write(addr, data); err != nil {
		t.Fatal(err)
	}
	got, _ := s.Read(addr, len(data))
	if !bytes.Equal(got, data) {
		t.Fatalf("cross-page round trip failed: %q", got)
	}
	if s.PagesResident() != 2 {
		t.Fatalf("PagesResident = %d, want 2", s.PagesResident())
	}
}

func TestClone(t *testing.T) {
	s := New()
	payload := bytes.Repeat([]byte{0xAB, 0xCD}, 757) // 1514B
	s.Write(0x1000, payload)
	if err := s.Clone(0x200000, 0x1000, len(payload)); err != nil {
		t.Fatal(err)
	}
	got, _ := s.Read(0x200000, len(payload))
	if !bytes.Equal(got, payload) {
		t.Fatal("clone corrupted data")
	}
	// Source intact.
	src, _ := s.Read(0x1000, len(payload))
	if !bytes.Equal(src, payload) {
		t.Fatal("clone damaged source")
	}
}

func TestCloneOverlapping(t *testing.T) {
	s := New()
	s.Write(0, []byte("abcdefgh"))
	if err := s.Clone(4, 0, 8); err != nil {
		t.Fatal(err)
	}
	got, _ := s.Read(4, 8)
	if string(got) != "abcdefgh" {
		t.Fatalf("overlapping clone = %q, want snapshot semantics", got)
	}
}

func TestZero(t *testing.T) {
	s := New()
	s.Write(64, []byte{1, 2, 3, 4})
	s.Zero(64, 4)
	got, _ := s.Read(64, 4)
	if !bytes.Equal(got, []byte{0, 0, 0, 0}) {
		t.Fatal("Zero did not clear")
	}
}

func TestValidation(t *testing.T) {
	s := New()
	if err := s.Write(-1, []byte{1}); err == nil {
		t.Error("negative write accepted")
	}
	if _, err := s.Read(-1, 4); err == nil {
		t.Error("negative read accepted")
	}
	if _, err := s.Read(0, -4); err == nil {
		t.Error("negative length accepted")
	}
	if err := s.Clone(0, 0, -1); err == nil {
		t.Error("negative clone accepted")
	}
}

func TestTrafficAccounting(t *testing.T) {
	s := New()
	s.Write(0, make([]byte, 100))
	s.Read(0, 50)
	w, r := s.Traffic()
	if w != 100 || r != 50 {
		t.Fatalf("traffic = %d/%d", w, r)
	}
}

func TestZeroValueUsable(t *testing.T) {
	var s Store
	if err := s.Write(0, []byte{1}); err != nil {
		t.Fatal(err)
	}
	got, _ := s.Read(0, 1)
	if got[0] != 1 {
		t.Fatal("zero-value store broken")
	}
}

// Property: the store behaves like a flat byte array.
func TestStoreVsFlatModelProperty(t *testing.T) {
	const span = 3 * 4096
	f := func(ops []struct {
		Addr uint16
		Data []byte
	}) bool {
		s := New()
		flat := make([]byte, span+1<<16+256)
		for _, op := range ops {
			data := op.Data
			if len(data) > 200 {
				data = data[:200]
			}
			addr := int64(op.Addr)
			if err := s.Write(addr, data); err != nil {
				return false
			}
			copy(flat[addr:], data)
		}
		// Compare a few windows.
		for _, at := range []int64{0, 4090, 8192, 300} {
			got, err := s.Read(at, 64)
			if err != nil {
				return false
			}
			if !bytes.Equal(got, flat[at:at+64]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
