package experiments

import (
	"reflect"
	"strings"
	"testing"

	"netdimm/internal/fault"
	"netdimm/internal/netfunc"
	"netdimm/internal/obs"
	"netdimm/internal/sim"
	"netdimm/internal/spec"
	"netdimm/internal/workload"
)

// The parallel fan-out must be invisible in the results: every sweep runs
// each cell on a fresh engine with per-cell seeds and writes only its own
// pre-sized slice index, so parallelism=8 must produce output deep-equal to
// parallelism=1. This is the guard for that contract — if a future change
// introduces shared mutable state across cells, one of these cases fails
// (and `go test -race ./internal/experiments/...` pinpoints the write).
func TestParallelMatchesSequential(t *testing.T) {
	fig5cfg := DefaultFig5Config()
	fig5cfg.Duration = 200 * sim.Microsecond
	fig12bcfg := DefaultFig12bConfig()
	fig12bcfg.Duration = 100 * sim.Microsecond

	cases := []struct {
		name string
		run  func(parallelism int) (any, error)
	}{
		{"Fig4", func(p int) (any, error) {
			return Fig4(spec.TableOne(), []int{10, 200, 2000}, 100*sim.Nanosecond, p), nil
		}},
		{"Fig5", func(p int) (any, error) {
			return Fig5(spec.TableOne(), []sim.Time{sim.Second, 100 * sim.Nanosecond, 5 * sim.Nanosecond}, fig5cfg, p), nil
		}},
		{"Fig11", func(p int) (any, error) {
			return Fig11(spec.TableOne(), []int{64, 1024}, 100*sim.Nanosecond, p)
		}},
		{"Fig12a", func(p int) (any, error) {
			return Fig12a(spec.TableOne(), workload.Clusters, PaperSwitchLatencies[:2], 60, 3, p)
		}},
		{"Fig12b", func(p int) (any, error) {
			return Fig12b(spec.TableOne(), workload.Clusters[:2], []netfunc.Kind{netfunc.DPI, netfunc.L3F}, fig12bcfg, p), nil
		}},
		{"PrefetchAblation", func(p int) (any, error) {
			return PrefetchAblation(spec.TableOne(), []int{0, 2, 4}, 15, p), nil
		}},
		{"HeaderCacheAblation", func(p int) (any, error) {
			return HeaderCacheAblation(spec.TableOne(), 60, p), nil
		}},
		{"Bandwidth", func(p int) (any, error) {
			return Bandwidth(spec.TableOne(), 100, p)
		}},
		{"ReplayTrace", func(p int) (any, error) {
			gen := workload.NewGenerator(workload.Hadoop, 0, 5)
			return ReplayTrace(spec.TableOne(), gen.Generate(150), 100*sim.Nanosecond, 9, p)
		}},
		{"LoadSweep", func(p int) (any, error) {
			cfg := DefaultLoadSweepConfig()
			cfg.Packets = 120
			rows, knees, err := LoadSweep(spec.TableOne(), []float64{0.05, 0.14, 0.2}, cfg, p)
			return []any{rows, knees}, err
		}},
		{"RackSweep", func(p int) (any, error) {
			sp := spec.TableOne()
			sp.Load.Hosts = 12
			cfg := DefaultRackSweepConfig()
			cfg.Packets = 240
			rows, knees, err := RackSweep(sp, []int{2}, []float64{0.1, 0.5}, cfg, p)
			return []any{rows, knees}, err
		}},
		{"FailSweep", func(p int) (any, error) {
			sp := spec.TableOne()
			sp.Load.Hosts = 12
			cfg := DefaultFailSweepConfig()
			cfg.Packets = 240
			return FailSweep(sp, []sim.Time{0, 20 * sim.Microsecond}, cfg, p)
		}},
		{"FaultSweep", func(p int) (any, error) {
			sp := spec.TableOne()
			sp.Fault.CorruptProb = 0.002
			sp.Fault.MaxRetries = 8
			sp.Fault.MemTimeoutProb = 0.05
			sp.Fault.MemMaxRetries = 4
			cfg := DefaultFaultSweepConfig()
			cfg.Packets = 80
			return FaultSweep(sp, []float64{0, 0.02, 0.1}, cfg, p)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			seq, err := tc.run(1)
			if err != nil {
				t.Fatalf("sequential: %v", err)
			}
			par, err := tc.run(8)
			if err != nil {
				t.Fatalf("parallel(8): %v", err)
			}
			if !reflect.DeepEqual(seq, par) {
				t.Errorf("parallel(8) diverged from sequential:\nseq: %+v\npar: %+v", seq, par)
			}
		})
	}
}

// The headline suite composes three sweeps; guard it end to end (it is the
// slowest case, so skip under -short).
func TestHeadlineParallelMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("headline determinism check skipped under -short")
	}
	seq, err := RunHeadline(spec.TableOne(), 80, 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunHeadline(spec.TableOne(), 80, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Errorf("headline parallel(8) diverged:\nseq: %+v\npar: %+v", seq, par)
	}
}

// TestLoadSweepShardedDeterminism is the sharded-engine contract at the
// experiment level: the identical model partitioned across 1, 2 or 4
// conservative shards must produce byte-identical output — rows, knees,
// the rendered metrics table and the Chrome trace export. shards=1 is the
// reference because it runs the full window/merge machinery with every
// component on one shard.
func TestLoadSweepShardedDeterminism(t *testing.T) {
	run := func(shards int) ([]LoadRow, []LoadKnee, string, string) {
		t.Helper()
		sp := spec.TableOne()
		sp.Load.Shards = shards
		cfg := DefaultLoadSweepConfig()
		cfg.Packets = 120
		rows, knees, o, err := LoadSweepObserved(sp, []float64{0.05, 0.14, 0.2}, cfg, 2,
			obs.Spec{Metrics: true, Trace: true})
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		var tr strings.Builder
		if err := o.WriteTrace(&tr); err != nil {
			t.Fatalf("shards=%d trace: %v", shards, err)
		}
		return rows, knees, o.MetricsCSV(), tr.String()
	}
	rows1, knees1, csv1, trace1 := run(1)
	for _, shards := range []int{2, 4} {
		rows, knees, csv, trace := run(shards)
		if !reflect.DeepEqual(rows, rows1) {
			t.Errorf("shards=%d rows diverged from shards=1", shards)
		}
		if !reflect.DeepEqual(knees, knees1) {
			t.Errorf("shards=%d knees diverged from shards=1", shards)
		}
		if csv != csv1 {
			t.Errorf("shards=%d metrics CSV diverged from shards=1", shards)
		}
		if trace != trace1 {
			t.Errorf("shards=%d trace bytes diverged from shards=1", shards)
		}
	}
}

// TestRackSweepShardedDeterminism extends the sharded contract to the
// clos: many-to-many traffic with ECN echo channels partitioned across 1,
// 2 or 4 shards must still be byte-identical — the host→fabric crossings,
// the fabric→host mark echoes and every per-host tally are confined to
// deterministic channel windows.
// TestFailSweepShardedDeterminism is the failure plane's determinism
// contract: outage flips, health-aware ECMP, burst loss and ARQ
// retransmit timers partitioned across 1, 2 or 4 shards must still be
// byte-identical — the health view lives wholly on the fabric shard,
// per-host link outages wholly on their host shards, and the ack echoes
// ride the same deterministic channel windows as ECN marks.
func TestFailSweepShardedDeterminism(t *testing.T) {
	run := func(shards int) ([]FailRow, string) {
		t.Helper()
		sp := spec.TableOne()
		sp.Load.Hosts = 12
		sp.Load.Shards = shards
		sp.Fault.Failure.Burst = fault.Burst{
			GoodLossProb: 0.001, BadLossProb: 0.2, GoodToBad: 0.02, BadToGood: 0.2,
		}
		cfg := DefaultFailSweepConfig()
		cfg.Packets = 240
		rows, o, err := FailSweepObserved(sp, []sim.Time{0, 20 * sim.Microsecond}, cfg, 2,
			obs.Spec{Metrics: true})
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		return rows, o.MetricsCSV()
	}
	rows1, csv1 := run(1)
	rerouted := false
	for _, r := range rows1 {
		if r.Rerouted > 0 {
			rerouted = true
		}
	}
	if !rerouted {
		t.Error("no cell rerouted any frame; the failover path is not being exercised")
	}
	for _, shards := range []int{2, 4} {
		rows, csv := run(shards)
		if !reflect.DeepEqual(rows, rows1) {
			t.Errorf("shards=%d rows diverged from shards=1", shards)
		}
		if csv != csv1 {
			t.Errorf("shards=%d metrics CSV diverged from shards=1", shards)
		}
	}
}

func TestRackSweepShardedDeterminism(t *testing.T) {
	run := func(shards int) ([]RackRow, []RackKnee, string) {
		t.Helper()
		sp := spec.TableOne()
		sp.Load.Hosts = 12
		sp.Load.Shards = shards
		// Mark on any queued frame so the fabric→host echo channel — the
		// only traffic flowing against the shard partition — carries real
		// load in this small configuration.
		sp.Fabric.ECNThreshold = 1
		cfg := DefaultRackSweepConfig()
		cfg.Packets = 240
		rows, knees, o, err := RackSweepObserved(sp, []int{2}, []float64{0.1, 0.5}, cfg, 2,
			obs.Spec{Metrics: true})
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		return rows, knees, o.MetricsCSV()
	}
	rows1, knees1, csv1 := run(1)
	marked := false
	for _, r := range rows1 {
		if r.Marked > 0 {
			marked = true
		}
	}
	if !marked {
		t.Error("no cell marked any frame; the ECN echo path is not being exercised")
	}
	for _, shards := range []int{2, 4} {
		rows, knees, csv := run(shards)
		if !reflect.DeepEqual(rows, rows1) {
			t.Errorf("shards=%d rows diverged from shards=1", shards)
		}
		if !reflect.DeepEqual(knees, knees1) {
			t.Errorf("shards=%d knees diverged from shards=1", shards)
		}
		if csv != csv1 {
			t.Errorf("shards=%d metrics CSV diverged from shards=1", shards)
		}
	}
}
