package experiments

import (
	"netdimm/internal/addrmap"
	"netdimm/internal/fault"
	"netdimm/internal/memctrl"
	"netdimm/internal/nic"
	"netdimm/internal/sim"
	"netdimm/internal/spec"
	"netdimm/internal/workload"
)

// Fig5Row is one memory-pressure level of the motivation experiment: the
// delay between injected MLC requests (higher = less interference) and the
// achieved iperf-style TCP bandwidth.
type Fig5Row struct {
	InjectDelay   sim.Time
	BandwidthGbps float64
	MemReadNs     float64 // observed memory read latency under this pressure
}

// Fig5Config parameterises the Fig. 5 rig, mirroring the paper's testbed:
// a receiver with three DDR4 channels and a 40GbE stream, with an MLC-style
// injector (1:1 read:write) loading every channel.
type Fig5Config struct {
	Channels   int
	RingWindow int // RX frames in flight
	// CopyCores bounds concurrent driver copies: each frame is copied
	// serially by one core (chunked loads with limited MLP), so inflated
	// memory latency directly slows the receiver — the mechanism that
	// collapses iperf bandwidth under MLC pressure.
	CopyCores int
	// CopyMLP is the number of cacheline loads a copying core keeps in
	// flight (MSHR-bound).
	CopyMLP  int
	Duration sim.Time
	Seed     uint64
}

// DefaultFig5Config matches Sec. 3's setup (Xeon E5-2660, three DDR4
// channels, 40GbE).
func DefaultFig5Config() Fig5Config {
	return Fig5Config{
		Channels:   3,
		RingWindow: 128,
		CopyCores:  8,
		CopyMLP:    4,
		Duration:   2 * sim.Millisecond,
		Seed:       1,
	}
}

// Fig5 sweeps the injector delay and reports achieved bandwidth on the
// system described by sp (host DRAM timing, controller config and link
// rate all derive from it): the paper's observation is that at maximum
// memory pressure iperf delivers only ~28% of its uncontended bandwidth.
// Each pressure level is an independent cell (its own engine, controllers
// and injectors), fanned out over `parallelism` workers.
func Fig5(sp spec.Spec, delays []sim.Time, cfg Fig5Config, parallelism int) []Fig5Row {
	rows := make([]Fig5Row, len(delays))
	forEachCell(len(delays), parallelism, func(i int) {
		rows[i] = runFig5(sp.MustDerive(), delays[i], cfg)
	})
	return rows
}

// fig5Rig simulates the iperf receiver: frames arrive at 40GbE line rate;
// each frame is DMA-written to memory (one request per cacheline,
// interleaved across channels) and then copied from the DMA buffer to the
// application buffer (read + write per cacheline). The TCP window limits
// frames in flight, so memory pressure throttles the achieved rate.
type fig5Rig struct {
	eng       *sim.Engine
	mcs       []*memctrl.Controller
	cfg       Fig5Config
	inflight  int
	completed int64
	frameGap  sim.Time
	nextFrame int64
	stopped   bool

	copyQueue   []int64 // frames awaiting a copy core
	activeCores int
}

func runFig5(d *spec.Derived, delay sim.Time, cfg Fig5Config) Fig5Row {
	eng := sim.NewEngine()
	rig := &fig5Rig{
		eng: eng,
		cfg: cfg,
		// 1538 wire bytes per MTU frame at line rate.
		frameGap: d.Link.SerializeTime(nic.MTU),
	}
	var injectors []*workload.Injector
	for ch := 0; ch < cfg.Channels; ch++ {
		mc := memctrl.New(eng, d.MC, memctrl.NewRankSet(d.HostTiming, 2))
		rig.mcs = append(rig.mcs, mc)
		// MLC pressure: 1:1 read/write over a large working set on every
		// channel. The injector is disabled with a non-positive... a very
		// large delay stands in for "no interference".
		if delay < sim.Second {
			in := workload.NewInjector(eng, mc, delay, 0.5, 1<<30, 512<<20, cfg.Seed+uint64(ch))
			in.Retry = true
			in.Parallelism = 8 // MLC load threads driving this channel
			in.Start()
			injectors = append(injectors, in)
		}
	}
	rig.arrive()
	eng.RunUntil(cfg.Duration)
	rig.stopped = true
	for _, in := range injectors {
		in.Stop()
	}

	gbps := float64(rig.completed) * float64(nic.MTU+nic.EthernetOverheadBytes) * 8 /
		cfg.Duration.Seconds() / 1e9
	var latSum, latN float64
	for _, in := range injectors {
		if h := in.ReadLatency(); h.Count() > 0 {
			latSum += h.Mean().Nanoseconds()
			latN++
		}
	}
	row := Fig5Row{InjectDelay: delay, BandwidthGbps: gbps}
	if latN > 0 {
		row.MemReadNs = latSum / latN
	}
	return row
}

// arrive starts frames at line rate, subject to the window.
func (r *fig5Rig) arrive() {
	if r.stopped {
		return
	}
	if r.inflight >= r.cfg.RingWindow {
		// Window closed: re-check shortly (the sender's TCP stack clocks
		// out new data as acknowledgements return).
		r.eng.Schedule(r.frameGap, r.arrive)
		return
	}
	r.inflight++
	frame := r.nextFrame
	r.nextFrame++
	r.dmaPhase(frame)
	r.eng.Schedule(r.frameGap, r.arrive)
}

const frameLines = (nic.MTU + 63) / 64

// dmaPhase issues the NIC's 24 cacheline writes for one frame (the NIC's
// DMA engine has deep queues, so these go out in parallel), then hands the
// frame to a copy core.
func (r *fig5Rig) dmaPhase(frame int64) {
	base := (frame % 1024) * 2048 // ring of 2KB buffers
	remaining := frameLines
	for i := 0; i < frameLines; i++ {
		addr := base + int64(i)*addrmap.CachelineSize
		r.submitRetry(r.mcOf(addr), &memctrl.Request{
			Addr:  addr,
			Write: true,
			Bytes: addrmap.CachelineSize,
			Done: func(memctrl.Response) {
				remaining--
				if remaining == 0 {
					r.copyQueue = append(r.copyQueue, frame)
					r.dispatchCopies()
				}
			},
		})
	}
}

// dispatchCopies starts queued frame copies on free cores.
func (r *fig5Rig) dispatchCopies() {
	for r.activeCores < r.cfg.CopyCores && len(r.copyQueue) > 0 {
		frame := r.copyQueue[0]
		r.copyQueue = r.copyQueue[1:]
		r.activeCores++
		r.copyChunk(frame, 0)
	}
}

// copyChunk copies one MLP-sized chunk of the frame: the loads of the
// chunk go out together; the stores are posted; the next chunk starts only
// when the loads return. Memory latency therefore directly gates copy
// throughput.
func (r *fig5Rig) copyChunk(frame int64, line int) {
	if line >= frameLines {
		r.activeCores--
		r.inflight--
		r.completed++
		r.dispatchCopies()
		return
	}
	base := (frame % 1024) * 2048
	appBase := int64(8<<20) + (frame%4096)*2048
	n := r.cfg.CopyMLP
	if line+n > frameLines {
		n = frameLines - line
	}
	remaining := n
	for i := 0; i < n; i++ {
		addr := base + int64(line+i)*addrmap.CachelineSize
		dst := appBase + int64(line+i)*addrmap.CachelineSize
		r.submitRetry(r.mcOf(addr), &memctrl.Request{
			Addr:  addr,
			Bytes: addrmap.CachelineSize,
			Done: func(memctrl.Response) {
				// Store the line to the app buffer (posted).
				r.submitRetry(r.mcOf(dst), &memctrl.Request{
					Addr: dst, Write: true, Bytes: addrmap.CachelineSize,
				})
				remaining--
				if remaining == 0 {
					r.copyChunk(frame, line+n)
				}
			},
		})
	}
}

func (r *fig5Rig) mcOf(addr int64) *memctrl.Controller {
	return r.mcs[int(addr/addrmap.CachelineSize)%len(r.mcs)]
}

// fig5Backoff paces re-submission of rejected memory requests — the
// hardware equivalent of waiting for a credit. The exponential cap keeps a
// saturated controller from being hammered every 50ns while still probing
// often enough that a freed credit is claimed quickly.
var fig5Backoff = fault.Backoff{Base: 50 * sim.Nanosecond, Cap: 200 * sim.Nanosecond}

// submitRetry retries a rejected request with capped exponential backoff.
func (r *fig5Rig) submitRetry(mc *memctrl.Controller, req *memctrl.Request) {
	r.submitAttempt(mc, req, 0)
}

func (r *fig5Rig) submitAttempt(mc *memctrl.Controller, req *memctrl.Request, attempt int) {
	if err := mc.Submit(req); err != nil {
		r.eng.Schedule(fig5Backoff.Delay(attempt), func() { r.submitAttempt(mc, req, attempt+1) })
	}
}
