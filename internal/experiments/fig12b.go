package experiments

import (
	"netdimm/internal/addrmap"
	"netdimm/internal/cache"
	"netdimm/internal/memctrl"
	"netdimm/internal/netfunc"
	"netdimm/internal/sim"
	"netdimm/internal/spec"
	"netdimm/internal/stats"
	"netdimm/internal/workload"
)

// Fig12bRow is one (cluster, network function) cell of Fig. 12(b): the
// memory access latency a co-running application observes on a server
// running the function over the cluster's traffic, for iNIC and NetDIMM.
type Fig12bRow struct {
	Cluster   workload.Cluster
	Kind      netfunc.Kind
	INICAppNs float64
	NetDIMMNs float64
}

// Norm returns NetDIMM's app latency normalised to iNIC (Fig. 12b Y axis;
// below 1.0 means NetDIMM interferes less).
func (r Fig12bRow) Norm() float64 {
	if r.INICAppNs == 0 {
		return 0
	}
	return r.NetDIMMNs / r.INICAppNs
}

// Fig12bConfig parameterises the interference rig.
type Fig12bConfig struct {
	Duration sim.Time
	// AppGap is the co-running application's mean time between memory
	// accesses.
	AppGap sim.Time
	// AppWorkingSet sizes the application's footprint; around the LLC
	// size, so losing the DDIO ways to iNIC traffic is visible.
	AppWorkingSet int64
	// PacketGap is the mean inter-arrival of the replayed traffic.
	PacketGap sim.Time
	Seed      uint64
}

// DefaultFig12bConfig returns the rig parameters used for the reported
// numbers.
func DefaultFig12bConfig() Fig12bConfig {
	return Fig12bConfig{
		Duration:      400 * sim.Microsecond,
		AppGap:        60 * sim.Nanosecond,
		AppWorkingSet: 2 << 20,
		// Near line rate for the clusters' mean packet size (~5GB/s of
		// 40GbE traffic).
		PacketGap: 160 * sim.Nanosecond,
		Seed:      1,
	}
}

// Fig12b measures co-running application memory latency under each
// (cluster, function, architecture) combination.
//
// The mechanism being compared (Sec. 5.3): an iNIC injects every received
// packet into the LLC via DDIO — no memory-channel traffic while the
// function keeps up, but the DDIO ways are lost to the application. A
// NetDIMM keeps packets in its local DRAM — the LLC stays clean, but every
// cacheline the function actually reads crosses the host memory channel
// the NetDIMM shares with the application's DIMMs: one line per packet for
// L3F (served by nCache but still occupying the channel), the whole packet
// for DPI.
// Each (cluster, function, architecture) run is its own cell — the finest
// grain available, 2 cells per output row — fanned out over `parallelism`
// workers and reassembled in grid order.
func Fig12b(sp spec.Spec, clusters []workload.Cluster, kinds []netfunc.Kind, cfg Fig12bConfig, parallelism int) []Fig12bRow {
	nRows := len(clusters) * len(kinds)
	vals := make([]float64, 2*nRows) // [2*row] = iNIC, [2*row+1] = NetDIMM
	forEachCell(2*nRows, parallelism, func(idx int) {
		row := idx / 2
		cl := clusters[row/len(kinds)]
		k := kinds[row%len(kinds)]
		vals[idx] = runInterference(sp.MustDerive(), cl, k, idx%2 == 1, cfg)
	})
	rows := make([]Fig12bRow, nRows)
	for row := range rows {
		rows[row] = Fig12bRow{
			Cluster:   clusters[row/len(kinds)],
			Kind:      kinds[row%len(kinds)],
			INICAppNs: vals[2*row],
			NetDIMMNs: vals[2*row+1],
		}
	}
	return rows
}

// runInterference returns the app's mean memory access latency in ns.
func runInterference(d *spec.Derived, cl workload.Cluster, kind netfunc.Kind, netdimm bool, cfg Fig12bConfig) float64 {
	eng := sim.NewEngine()
	rs := memctrl.NewRankSet(d.HostTiming, 2)
	mc := memctrl.New(eng, d.MC, rs)
	llc := cache.New(cache.LLC2MB())
	llc.WritebackFn = func(addr int64) {
		mc.Submit(&memctrl.Request{Addr: addr, Write: true, Bytes: addrmap.CachelineSize})
	}

	var appLat stats.Histogram
	rng := sim.NewRand(cfg.Seed)

	// The co-running application: a pointer-chasing workload over its
	// working set in rank 0, measured through the LLC.
	var appTick func()
	appTick = func() {
		lines := cfg.AppWorkingSet / addrmap.CachelineSize
		addr := rng.Int63n(lines) * addrmap.CachelineSize
		write := rng.Float64() < 0.3
		hitLat := llc.Config().HitLatency
		if llc.Access(addr, write) {
			appLat.Observe(hitLat)
		} else if !write {
			start := eng.Now()
			err := mc.Submit(&memctrl.Request{
				Addr: addr, Bytes: addrmap.CachelineSize,
				Done: func(r memctrl.Response) { appLat.Observe(hitLat + r.Completed - start) },
			})
			if err != nil {
				appLat.Observe(hitLat + 500*sim.Nanosecond) // back-pressure penalty
			}
		}
		eng.Schedule(rng.Exp(cfg.AppGap), appTick)
	}
	appTick()

	// The network function's traffic.
	gen := workload.NewGenerator(cl, cfg.PacketGap, cfg.Seed+7)
	// NetDIMM-region reads target rank 1: a different DIMM on the same
	// channel, sharing the data bus with the application's rank-0 DIMM.
	netdimmBase := addrmap.RankBytes
	// The RX ring footprint (512KB) deliberately exceeds the 256KB DDIO
	// share: on an iNIC, untouched payload lines leak out of the LLC as
	// dirty writebacks — the on-chip pollution the paper's L3F case
	// penalises (Sec. 3, limitation L3).
	ringSlots := int64(256)
	var slot int64
	var pktTick func()
	pktTick = func() {
		e := gen.Next()
		p := e.Packet(0)
		lines := int64(p.Cachelines())
		touched := int64(kind.LinesTouched(p))
		buf := (slot % ringSlots) * 2048
		slot++
		if netdimm {
			// Host fetches only the lines the function needs, over the
			// shared channel, from the NetDIMM's address space. The driver
			// invalidates the stale buffer lines first (Alg. 1), and the
			// fetched lines allocate into the LLC as ordinary demand
			// fills — so a DPI workload pollutes the whole cache, not just
			// a DDIO share (the paper's DPI-on-NetDIMM downside).
			llc.InvalidateRange(netdimmBase+buf, touched*addrmap.CachelineSize)
			for i := int64(0); i < touched; i++ {
				addr := netdimmBase + buf + i*addrmap.CachelineSize
				if !llc.Access(addr, false) {
					mc.Submit(&memctrl.Request{Addr: addr, Bytes: addrmap.CachelineSize})
				}
			}
		} else {
			// iNIC: DDIO the whole packet into the LLC, then the function
			// reads its lines from the cache.
			for i := int64(0); i < lines; i++ {
				llc.DDIOAllocate(buf + i*addrmap.CachelineSize)
			}
			for i := int64(0); i < touched; i++ {
				if !llc.Access(buf+i*addrmap.CachelineSize, false) {
					// Leaked before use: fetch from memory.
					mc.Submit(&memctrl.Request{Addr: buf + i*addrmap.CachelineSize, Bytes: addrmap.CachelineSize})
				}
			}
			// Forwarding: the NIC TX engine reads the whole frame back out
			// of the LLC. Lines that already leaked to DRAM (the untouched
			// payload of an L3F packet) must be fetched over the channel —
			// the DDIO-pollution penalty of Sec. 3 (L3). DPI-touched lines
			// are still resident, so DPI forwarding stays on-chip.
			for i := int64(0); i < lines; i++ {
				if !llc.Lookup(buf + i*addrmap.CachelineSize) {
					mc.Submit(&memctrl.Request{Addr: buf + i*addrmap.CachelineSize, Bytes: addrmap.CachelineSize})
				}
			}
		}
		eng.Schedule(rng.Exp(cfg.PacketGap), pktTick)
	}
	pktTick()

	eng.RunUntil(cfg.Duration)
	return appLat.Mean().Nanoseconds()
}
