package experiments

import (
	"strings"
	"testing"

	"netdimm/internal/fault"
	"netdimm/internal/sim"
	"netdimm/internal/spec"
)

// testFailSweep runs a trimmed sweep: 16 hosts on the default
// 2-spine/4-leaf clos, few packets.
func testFailSweep(t *testing.T, sp spec.Spec, outages []sim.Time) []FailRow {
	t.Helper()
	if sp.Load.Hosts == 0 {
		sp.Load.Hosts = 16
	}
	cfg := DefaultFailSweepConfig()
	cfg.Packets = 480
	rows, err := FailSweep(sp, outages, cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	return rows
}

func TestFailSweepBaselineAndFailover(t *testing.T) {
	outages := []sim.Time{0, 20 * sim.Microsecond}
	rows := testFailSweep(t, spec.TableOne(), outages)
	if want := len(LoadSweepArchs) * len(outages); len(rows) != want {
		t.Fatalf("got %d rows, want %d", len(rows), want)
	}
	for _, r := range rows {
		// With unlimited retries every packet must eventually deliver: the
		// outage eats frames, the ARQ resends them, ECMP routes the resend
		// over the surviving spine.
		if r.Delivered != 480 || r.Failed != 0 {
			t.Errorf("%s outage=%v: delivered %d failed %d, want 480/0",
				r.Arch, r.Outage, r.Delivered, r.Failed)
		}
		if r.DuringDelivered > r.DuringOffered {
			t.Errorf("%s outage=%v: delivered-during %d exceeds offered-during %d",
				r.Arch, r.Outage, r.DuringDelivered, r.DuringOffered)
		}
		if r.Outage == 0 {
			// Baseline: no failure plane at all.
			if r.Rerouted != 0 || r.OutageDrops != 0 || r.Degraded != 0 {
				t.Errorf("%s baseline: rerouted %d outage-drops %d degraded %d, want all 0",
					r.Arch, r.Rerouted, r.OutageDrops, r.Degraded)
			}
			if r.DuringOffered != 0 {
				t.Errorf("%s baseline: %d packets classified inside a zero-length window", r.Arch, r.DuringOffered)
			}
			if r.TimeToReroute != -1 {
				t.Errorf("%s baseline: time-to-reroute %v, want -1", r.Arch, r.TimeToReroute)
			}
			continue
		}
		// Outage cell: ECMP must have failed flows over, promptly.
		if r.Rerouted == 0 {
			t.Errorf("%s outage=%v: no frames rerouted during a spine outage", r.Arch, r.Outage)
		}
		if r.TimeToReroute < 0 || r.TimeToReroute > r.Outage {
			t.Errorf("%s outage=%v: time-to-reroute %v outside [0, outage]", r.Arch, r.Outage, r.TimeToReroute)
		}
		if r.Degraded != 0 {
			t.Errorf("%s outage=%v: %d degraded routings with one spine still up", r.Arch, r.Outage, r.Degraded)
		}
		// Recovery accounting: any frame the outage ate must show up as a
		// retransmission, and recovered packets carry the timer in their
		// latency.
		if r.OutageDrops > 0 {
			if r.Retransmits == 0 {
				t.Errorf("%s outage=%v: %d outage drops but no retransmits", r.Arch, r.Outage, r.OutageDrops)
			}
			if r.Recovered == 0 {
				t.Errorf("%s outage=%v: %d outage drops but nothing recovered", r.Arch, r.Outage, r.OutageDrops)
			}
			if r.MeanRecovery < defaultFailRetryBase {
				t.Errorf("%s outage=%v: mean recovery %v below the %v retransmit timer",
					r.Arch, r.Outage, r.MeanRecovery, defaultFailRetryBase)
			}
		}
	}
}

func TestFailSweepSpineShiftsTraffic(t *testing.T) {
	// Direct topology check that failover moves frames, not just counters:
	// compare per-spine forwarded totals with and without the outage.
	sp := spec.TableOne()
	sp.Load.Hosts = 16
	cfg := DefaultFailSweepConfig()
	cfg.Packets = 480
	rows, err := FailSweep(sp, []sim.Time{0, 40 * sim.Microsecond}, cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i+1 < len(rows); i += 2 {
		base, out := rows[i], rows[i+1]
		if base.Arch != out.Arch {
			t.Fatalf("row pairing broken: %s vs %s", base.Arch, out.Arch)
		}
		// The outage cell must deliver everything while dropping frames at
		// the dead spine — the extra traffic went over the survivor.
		if out.OutageDrops == 0 && out.Rerouted == 0 {
			t.Errorf("%s: outage cell shows no spine impact at all", out.Arch)
		}
	}
}

func TestFailSweepBurstLossRecovers(t *testing.T) {
	sp := spec.TableOne()
	sp.Load.Hosts = 16
	sp.Fault.Failure.Burst = fault.Burst{
		GoodLossProb: 0.001,
		BadLossProb:  0.3,
		GoodToBad:    0.02,
		BadToGood:    0.2,
	}
	rows := testFailSweep(t, sp, []sim.Time{0})
	sawLoss := false
	for _, r := range rows {
		if r.Delivered != 480 || r.Failed != 0 {
			t.Errorf("%s: delivered %d failed %d under burst loss, want 480/0", r.Arch, r.Delivered, r.Failed)
		}
		if r.BurstDrops > 0 {
			sawLoss = true
			if r.Retransmits == 0 {
				t.Errorf("%s: %d burst drops but no retransmits", r.Arch, r.BurstDrops)
			}
		}
	}
	if !sawLoss {
		t.Error("burst process injected no losses in any cell; raise the probabilities")
	}
}

func TestFailSweepRejectsBadInput(t *testing.T) {
	sp := spec.TableOne()
	sp.Load.Hosts = 16
	cfg := DefaultFailSweepConfig()
	cfg.Packets = 32

	if _, err := FailSweep(sp, []sim.Time{-sim.Microsecond}, cfg, 0); err == nil ||
		!strings.Contains(err.Error(), "negative") {
		t.Errorf("negative outage duration: got %v, want negative-duration error", err)
	}

	bad := cfg
	bad.Spine = 7
	if _, err := FailSweep(sp, []sim.Time{0}, bad, 0); err == nil ||
		!strings.Contains(err.Error(), "spine") {
		t.Errorf("out-of-range spine: got %v, want spine-range error", err)
	}

	one := sp
	one.Load.Hosts = 1
	if _, err := FailSweep(one, []sim.Time{0}, cfg, 0); err == nil ||
		!strings.Contains(err.Error(), "hosts") {
		t.Errorf("single host: got %v, want host-count error", err)
	}

	sched := sp
	sched.Fault.Failure.Outages = []fault.Outage{{Kind: fault.OutageSpine, Index: 99, StartNs: 0, EndNs: 10}}
	if _, err := FailSweep(sched, []sim.Time{0}, cfg, 0); err == nil {
		t.Error("background schedule naming spine 99 on a 2-spine clos: want arming error")
	}
}
