package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"

	"netdimm/internal/obs"
	"netdimm/internal/sim"
	"netdimm/internal/spec"
	"netdimm/internal/stats"
)

// TestFig11SpanSumsMatchBreakdown pins the recorder invariant the exported
// fig11 trace relies on: for every architecture, the spans on each
// per-component track sum exactly to that component's entry in the
// reported breakdown, so the Perfetto view reconstructs Fig. 11.
func TestFig11SpanSumsMatchBreakdown(t *testing.T) {
	sizes := []int{64, 1024, 1514}
	rows, o, err := Fig11Observed(spec.TableOne(), sizes, 100*sim.Nanosecond, 1,
		obs.Spec{Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	if o == nil {
		t.Fatal("enabled spec returned nil observer")
	}
	for i, row := range rows {
		cell := o.Cell(i)
		if cell == nil {
			t.Fatalf("no cell for size %d", row.Size)
		}
		if want := fmt.Sprintf("fig11/size=%d", row.Size); cell.Label() != want {
			t.Fatalf("cell %d label = %q, want %q", i, cell.Label(), want)
		}
		sums := make(map[string]sim.Time)
		for _, tr := range cell.Tracks() {
			sums[tr.Name()] += tr.Sum()
		}
		for arch, b := range map[string]stats.Breakdown{
			"dNIC": row.DNIC, "iNIC": row.INIC, "NetDIMM": row.NetDIMM,
		} {
			for comp, want := range b {
				track := arch + "/" + string(comp)
				if got := sums[track]; got != want {
					t.Errorf("size %d: track %q spans sum to %v, breakdown says %v",
						row.Size, track, got, want)
				}
				delete(sums, track)
			}
		}
		// Every remaining track must belong to a non-breakdown plane
		// (engine, device metrics) — none may carry breakdown components.
		for name := range sums {
			for _, arch := range []string{"dNIC/", "iNIC/", "NetDIMM/"} {
				if len(name) > len(arch) && name[:len(arch)] == arch {
					t.Errorf("size %d: unexpected breakdown track %q", row.Size, name)
				}
			}
		}
	}
}

// TestFig11ObservedDeterministicTrace checks that instrumentation does not
// break run-to-run determinism: a sequential and an 8-way parallel observed
// run export byte-identical traces and identical results.
func TestFig11ObservedDeterministicTrace(t *testing.T) {
	sizes := []int{64, 256, 1024, 1514}
	ospec := obs.Spec{Trace: true, Metrics: true}
	rowsSeq, oSeq, err := Fig11Observed(spec.TableOne(), sizes, 100*sim.Nanosecond, 1, ospec)
	if err != nil {
		t.Fatal(err)
	}
	rowsPar, oPar, err := Fig11Observed(spec.TableOne(), sizes, 100*sim.Nanosecond, 8, ospec)
	if err != nil {
		t.Fatal(err)
	}
	for i := range rowsSeq {
		if rowsSeq[i].Size != rowsPar[i].Size ||
			rowsSeq[i].DNIC.Total() != rowsPar[i].DNIC.Total() ||
			rowsSeq[i].INIC.Total() != rowsPar[i].INIC.Total() ||
			rowsSeq[i].NetDIMM.Total() != rowsPar[i].NetDIMM.Total() {
			t.Errorf("row %d differs: seq %+v, par %+v", i, rowsSeq[i], rowsPar[i])
		}
	}
	var seq, par bytes.Buffer
	if err := oSeq.WriteTrace(&seq); err != nil {
		t.Fatal(err)
	}
	if err := oPar.WriteTrace(&par); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(seq.Bytes(), par.Bytes()) {
		t.Errorf("sequential and parallel traces differ (%d vs %d bytes)", seq.Len(), par.Len())
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(seq.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Error("observed fig11 trace has no events")
	}
}

// TestFig11ObservedDisabledIdentical checks the zero-overhead contract at
// the experiment level: a run with a zero obs.Spec returns a nil observer
// and the exact numbers of the uninstrumented path.
func TestFig11ObservedDisabledIdentical(t *testing.T) {
	sizes := []int{64, 1514}
	plain, err := Fig11(spec.TableOne(), sizes, 100*sim.Nanosecond, 1)
	if err != nil {
		t.Fatal(err)
	}
	rows, o, err := Fig11Observed(spec.TableOne(), sizes, 100*sim.Nanosecond, 1, obs.Spec{})
	if err != nil {
		t.Fatal(err)
	}
	if o != nil {
		t.Error("zero spec returned a non-nil observer")
	}
	for i := range plain {
		if plain[i].DNIC.Total() != rows[i].DNIC.Total() ||
			plain[i].INIC.Total() != rows[i].INIC.Total() ||
			plain[i].NetDIMM.Total() != rows[i].NetDIMM.Total() {
			t.Errorf("row %d: observed-disabled run differs from plain run", i)
		}
	}
}

// TestFaultSweepObservedDeterministic runs the instrumented fault sweep
// sequentially and in parallel and requires identical traces — the
// fault-plane spans (retransmit, backoff, give-up) must not depend on
// worker scheduling.
func TestFaultSweepObservedDeterministic(t *testing.T) {
	rates := []float64{0, 0.05, 0.2}
	cfg := DefaultFaultSweepConfig()
	cfg.Packets = 60
	ospec := obs.Spec{Trace: true, Metrics: true}
	_, oSeq, err := FaultSweepObserved(spec.TableOne(), rates, cfg, 1, ospec)
	if err != nil {
		t.Fatal(err)
	}
	_, oPar, err := FaultSweepObserved(spec.TableOne(), rates, cfg, 8, ospec)
	if err != nil {
		t.Fatal(err)
	}
	var seq, par bytes.Buffer
	if err := oSeq.WriteTrace(&seq); err != nil {
		t.Fatal(err)
	}
	if err := oPar.WriteTrace(&par); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(seq.Bytes(), par.Bytes()) {
		t.Errorf("sequential and parallel fault-sweep traces differ (%d vs %d bytes)",
			seq.Len(), par.Len())
	}
}

// TestFaultTailsMergeAcrossRates checks that the per-architecture tails
// merge every rate's histogram: counts add up and the merged percentiles
// fall inside the per-rate extremes.
func TestFaultTailsMergeAcrossRates(t *testing.T) {
	rates := []float64{0, 0.1}
	cfg := DefaultFaultSweepConfig()
	cfg.Packets = 80
	rows, err := FaultSweep(spec.TableOne(), rates, cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	tails := FaultTails(rows)
	if len(tails) != len(FaultSweepArchs) {
		t.Fatalf("tails = %d archs, want %d", len(tails), len(FaultSweepArchs))
	}
	perArch := make(map[string]int)
	for _, r := range rows {
		if r.Hist != nil {
			perArch[r.Arch] += r.Hist.Count()
		}
	}
	for _, tl := range tails {
		if tl.Count != perArch[tl.Arch] {
			t.Errorf("%s: merged count %d, want %d", tl.Arch, tl.Count, perArch[tl.Arch])
		}
		if tl.P99 < tl.P50 {
			t.Errorf("%s: p99 %v < p50 %v", tl.Arch, tl.P99, tl.P50)
		}
	}
}
