package experiments

import (
	"netdimm/internal/nic"
	"netdimm/internal/sim"
	"netdimm/internal/spec"
)

// Fig7Point is one DMA memory request as plotted in the paper's Fig. 7:
// relative cacheline address vs relative arrival time at the memory
// controller.
type Fig7Point struct {
	RelLine int // cacheline offset from the first request
	RelTime sim.Time
	Burst   int // which packet's burst this request belongs to
}

// Fig7 reproduces the NIC DMA access-pattern study: the memory requests
// generated while receiving six back-to-back 1514B packets on the system's
// NIC. Each arrival produces a burst of 24 cacheline writes paced at the
// PCIe DMA rate — the spatial/temporal locality that motivates nCache and
// nPrefetcher (Sec. 4.1).
func Fig7(sp spec.Spec) []Fig7Point {
	const packets = 6
	d := sp.MustDerive()
	link := d.Link
	dmaBW := d.PCIe.EffectiveBandwidth(256)

	var out []Fig7Point
	var t0 sim.Time
	var base int64
	for pktIdx := 0; pktIdx < packets; pktIdx++ {
		arrive := sim.Time(pktIdx) * link.SerializeTime(nic.MTU)
		// RX buffers are consecutive 2KB ring slots.
		buf := int64(pktIdx) * 2048
		trace := nic.TraceTransfer(arrive, buf, nic.MTU, true, dmaBW)
		for _, e := range trace {
			if len(out) == 0 {
				t0 = e.At
				base = e.Addr
			}
			out = append(out, Fig7Point{
				RelLine: int((e.Addr - base) / 64),
				RelTime: e.At - t0,
				Burst:   pktIdx,
			})
		}
	}
	return out
}

// Fig7BurstSpan returns the duration of one packet's DMA burst — the
// paper highlights a 24-cacheline burst spanning ~143ns.
func Fig7BurstSpan(points []Fig7Point, burst int) sim.Time {
	var first, last sim.Time
	seen := false
	for _, p := range points {
		if p.Burst != burst {
			continue
		}
		if !seen {
			first = p.RelTime
			seen = true
		}
		last = p.RelTime
	}
	return last - first
}
