package experiments

import (
	"testing"

	"netdimm/internal/driver"
	"netdimm/internal/ethernet"
	"netdimm/internal/netfunc"
	"netdimm/internal/nic"
	"netdimm/internal/sim"
	"netdimm/internal/spec"
	"netdimm/internal/stats"
	"netdimm/internal/workload"
)

// ---- Fig. 4 ----

func TestFig4Shapes(t *testing.T) {
	rows := Fig4(spec.TableOne(), []int{10, 60, 200, 500, 1000, 2000}, 100*sim.Nanosecond, 1)
	for i, r := range rows {
		// iNIC beats dNIC; zero copy beats copying on each architecture.
		if !(r.INIC < r.DNIC) {
			t.Errorf("size %d: iNIC %v !< dNIC %v", r.Size, r.INIC, r.DNIC)
		}
		if !(r.DNICZcpy < r.DNIC) || !(r.INICZcpy < r.INIC) {
			t.Errorf("size %d: zero copy did not help", r.Size)
		}
		// PCIe is a dominant dNIC overhead (paper quotes 40.9%/34.3% for
		// dNIC.zcpy at 10B/2000B).
		if r.PCIeShare < 0.25 || r.PCIeShare > 0.95 {
			t.Errorf("size %d: PCIe share %.2f out of plausible band", r.Size, r.PCIeShare)
		}
		// Latency grows with size within each configuration.
		if i > 0 && r.DNIC < rows[i-1].DNIC {
			t.Errorf("size %d: dNIC latency shrank with size", r.Size)
		}
	}
	// Zero copy helps large packets more than small ones (Sec. 3).
	first, last := rows[0], rows[len(rows)-1]
	gainSmall := stats.Reduction(first.INIC, first.INICZcpy)
	gainLarge := stats.Reduction(last.INIC, last.INICZcpy)
	if gainLarge <= gainSmall {
		t.Errorf("zcpy gain should grow with size: %.2f (10B) vs %.2f (2000B)", gainSmall, gainLarge)
	}
	// PCIe share declines with packet size for dNIC.zcpy (40.9% -> 34.3%).
	if last.PCIeShareZcpy >= first.PCIeShareZcpy {
		t.Errorf("dNIC.zcpy PCIe share should shrink with size: %.2f -> %.2f",
			first.PCIeShareZcpy, last.PCIeShareZcpy)
	}
}

// ---- Fig. 11 / headline latency ----

func TestFig11PaperShape(t *testing.T) {
	rows, err := Fig11(spec.TableOne(), Fig11Sizes, 100*sim.Nanosecond, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		// Ordering at every size.
		if !(r.NetDIMM.Total() < r.INIC.Total() && r.INIC.Total() < r.DNIC.Total()) {
			t.Errorf("size %d: ordering violated: ND %v iNIC %v dNIC %v",
				r.Size, r.NetDIMM.Total(), r.INIC.Total(), r.DNIC.Total())
		}
		// Paper Sec. 5.2: 46.1-52.3%% reductions for 64-1024B; allow a
		// band of 40-60%%.
		if red := r.ReductionVsDNIC(); red < 0.40 || red > 0.60 {
			t.Errorf("size %d: reduction vs dNIC = %.1f%%, want 40-60%%", r.Size, red*100)
		}
		// NetDIMM's flush+invalidate overhead is present but bounded
		// (paper: 9.7-15.8%% combined).
		share := r.NetDIMM.Share(stats.TxFlush) + r.NetDIMM.Share(stats.RxInvalidate)
		if share <= 0.01 || share > 0.25 {
			t.Errorf("size %d: flush+invalidate share %.1f%%", r.Size, share*100)
		}
		// iNIC and NetDIMM have tiny I/O register cost next to dNIC.
		if r.NetDIMM[stats.IOReg] >= r.DNIC[stats.IOReg]/2 {
			t.Errorf("size %d: NetDIMM ioreg %v not well below dNIC %v",
				r.Size, r.NetDIMM[stats.IOReg], r.DNIC[stats.IOReg])
		}
	}
	// Paper averages: 49.9%% vs dNIC, 25.9%% vs iNIC.
	avgD := AverageReduction(rows, false)
	avgI := AverageReduction(rows, true)
	if avgD < 0.40 || avgD > 0.58 {
		t.Errorf("avg reduction vs dNIC = %.1f%%, want ~50%%", avgD*100)
	}
	if avgI < 0.15 || avgI > 0.35 {
		t.Errorf("avg reduction vs iNIC = %.1f%%, want ~26%%", avgI*100)
	}
}

// ---- Fig. 5 ----

func TestFig5BandwidthCollapse(t *testing.T) {
	cfg := DefaultFig5Config()
	cfg.Duration = 1 * sim.Millisecond
	rows := Fig5(spec.TableOne(), []sim.Time{sim.Second, 500 * sim.Nanosecond, 20 * sim.Nanosecond, 5 * sim.Nanosecond}, cfg, 0)
	base := rows[0].BandwidthGbps
	if base < 35 || base > 41 {
		t.Fatalf("uncontended bandwidth = %.1f Gbps, want ~40", base)
	}
	if rows[1].BandwidthGbps < 0.9*base {
		t.Errorf("light pressure should not collapse bandwidth: %.1f", rows[1].BandwidthGbps)
	}
	// Paper: at maximum pressure iperf delivers ~27.9%% of its uncontended
	// bandwidth; accept a 5-40%% collapse band.
	worst := rows[len(rows)-1].BandwidthGbps / base
	if worst > 0.40 || worst < 0.05 {
		t.Errorf("max-pressure fraction = %.2f, want 0.05-0.40 (~0.28 in the paper)", worst)
	}
	// Monotone: more pressure, less bandwidth.
	for i := 1; i < len(rows); i++ {
		if rows[i].BandwidthGbps > rows[i-1].BandwidthGbps*1.05 {
			t.Errorf("bandwidth rose as pressure grew: %v", rows)
		}
	}
	// And observed memory latency rises under pressure.
	if rows[len(rows)-1].MemReadNs <= rows[1].MemReadNs {
		t.Error("memory latency should rise under pressure")
	}
}

// ---- Fig. 7 ----

func TestFig7BurstStructure(t *testing.T) {
	pts := Fig7(spec.TableOne())
	// Six packets x 24 cachelines.
	if len(pts) != 6*24 {
		t.Fatalf("points = %d, want 144", len(pts))
	}
	// Bursts are compact in time (paper: ~143ns for one packet's 24
	// cachelines) and sequential in address.
	for b := 0; b < 6; b++ {
		span := Fig7BurstSpan(pts, b)
		if span < 50*sim.Nanosecond || span > 400*sim.Nanosecond {
			t.Errorf("burst %d span %v, want ~100-300ns", b, span)
		}
	}
	// Addresses within a burst are consecutive cachelines.
	prev := -1
	for _, p := range pts {
		if p.Burst == 2 {
			if prev >= 0 && p.RelLine != prev+1 {
				t.Fatalf("burst 2 not sequential: %d after %d", p.RelLine, prev)
			}
			prev = p.RelLine
		}
	}
	// Inter-burst gaps (wire pacing) dwarf intra-burst gaps (DMA pacing):
	// the temporal clustering of Fig. 7.
	wireGap := pts[24].RelTime - pts[23].RelTime
	dmaGap := pts[1].RelTime - pts[0].RelTime
	if wireGap < 5*dmaGap {
		t.Errorf("bursts not clustered: wire gap %v vs dma gap %v", wireGap, dmaGap)
	}
}

// ---- Fig. 12a ----

func TestFig12aPaperShape(t *testing.T) {
	rows, err := Fig12a(spec.TableOne(), workload.Clusters, PaperSwitchLatencies, 400, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	byCluster := map[workload.Cluster][]Fig12aRow{}
	for _, r := range rows {
		byCluster[r.Cluster] = append(byCluster[r.Cluster], r)
		// NetDIMM always wins on average.
		if r.NormVsDNIC() >= 1 || r.NormVsINIC() >= 1 {
			t.Errorf("%v @%v: NetDIMM did not win (%.3f vs dNIC, %.3f vs iNIC)",
				r.Cluster, r.SwitchLatency, r.NormVsDNIC(), r.NormVsINIC())
		}
	}
	// Gains shrink as switch latency grows (paper: 40.6%% at 25ns down to
	// 25.3%% at 200ns).
	for cl, rs := range byCluster {
		for i := 1; i < len(rs); i++ {
			if rs[i].NormVsDNIC() < rs[i-1].NormVsDNIC() {
				t.Errorf("%v: improvement should shrink with switch latency", cl)
			}
		}
	}
	// Averages across clusters per switch latency land in the paper's
	// 25-41%% band (we accept 15-50%%).
	for sl, red := range Fig12aAverages(rows) {
		if red < 0.15 || red > 0.50 {
			t.Errorf("switch %v: avg reduction %.1f%%, want 15-50%%", sl, red*100)
		}
	}
	// NetDIMM vs iNIC on traces: paper quotes 8.1-15.3%%; accept 5-20%%.
	var sumI float64
	for _, r := range rows {
		sumI += 1 - r.NormVsINIC()
	}
	avgI := sumI / float64(len(rows))
	if avgI < 0.05 || avgI > 0.25 {
		t.Errorf("avg reduction vs iNIC on traces = %.1f%%, want ~8-15%%", avgI*100)
	}
}

// ---- Fig. 12b ----

func TestFig12bPaperShape(t *testing.T) {
	cfg := DefaultFig12bConfig()
	cfg.Duration = 300 * sim.Microsecond
	rows := Fig12b(spec.TableOne(), workload.Clusters, []netfunc.Kind{netfunc.DPI, netfunc.L3F}, cfg, 0)
	norms := map[workload.Cluster]map[netfunc.Kind]float64{}
	for _, r := range rows {
		if norms[r.Cluster] == nil {
			norms[r.Cluster] = map[netfunc.Kind]float64{}
		}
		norms[r.Cluster][r.Kind] = r.Norm()
	}
	for cl, m := range norms {
		// L3F: NetDIMM interferes less than iNIC (paper: 9.8-30.9%%
		// better).
		if m[netfunc.L3F] >= 1.0 {
			t.Errorf("%v: L3F norm %.3f, want < 1 (NetDIMM better)", cl, m[netfunc.L3F])
		}
		// DPI: NetDIMM interferes at least as much as iNIC (paper: 5.7-
		// 15.4%% worse). Small packets (webserver) sit near parity.
		if m[netfunc.DPI] < 0.95 {
			t.Errorf("%v: DPI norm %.3f, want >= ~1 (NetDIMM worse)", cl, m[netfunc.DPI])
		}
		// And DPI is always worse for NetDIMM than L3F.
		if m[netfunc.DPI] <= m[netfunc.L3F] {
			t.Errorf("%v: DPI norm %.3f should exceed L3F norm %.3f", cl, m[netfunc.DPI], m[netfunc.L3F])
		}
	}
	// Hadoop (MTU-heavy) shows the strongest effects in both directions.
	if norms[workload.Hadoop][netfunc.DPI] < norms[workload.Webserver][netfunc.DPI] {
		t.Error("hadoop DPI should interfere more than webserver DPI")
	}
	if norms[workload.Hadoop][netfunc.L3F] > norms[workload.Webserver][netfunc.L3F] {
		t.Error("hadoop L3F should benefit more than webserver L3F")
	}
}

// ---- Headline ----

func TestHeadlineNumbers(t *testing.T) {
	if testing.Short() {
		t.Skip("headline suite is slow")
	}
	h, err := RunHeadline(spec.TableOne(), 200, 0)
	if err != nil {
		t.Fatal(err)
	}
	if h.AvgReductionVsDNIC < 0.40 || h.AvgReductionVsDNIC > 0.58 {
		t.Errorf("headline vs dNIC = %.1f%%, paper 49.9%%", h.AvgReductionVsDNIC*100)
	}
	if h.AvgReductionVsINIC < 0.15 || h.AvgReductionVsINIC > 0.35 {
		t.Errorf("headline vs iNIC = %.1f%%, paper 25.9%%", h.AvgReductionVsINIC*100)
	}
	if len(h.TraceReductionBySwitch) != 4 {
		t.Fatalf("switch sweep cells = %d", len(h.TraceReductionBySwitch))
	}
	if h.L3FBest < 0.05 {
		t.Errorf("L3F best improvement = %.1f%%, paper up to 30.9%%", h.L3FBest*100)
	}
	if h.DPIWorst < 0.0 {
		t.Errorf("DPI worst delta = %.1f%%, paper up to +15.4%%", h.DPIWorst*100)
	}
}

// Sec. 3 positions iNIC.zcpy as the seemingly ideal architecture that
// NetDIMM competes with on different terms: NetDIMM matches its latency
// class (within ~25% at every size) while avoiding zero-copy's security /
// memory-exhaustion / pinning problems (L1) and the on-chip pollution
// (L3). This test pins that relationship.
func TestNetDIMMVsIdealZeroCopy(t *testing.T) {
	fabric := ethernet.NewFabric(100 * sim.Nanosecond)
	for i, size := range []int{64, 256, 1514, 8000} {
		ndTX, err := driver.NewNetDIMMMachine(uint64(60 + 2*i))
		if err != nil {
			t.Fatal(err)
		}
		ndRX, err := driver.NewNetDIMMMachine(uint64(61 + 2*i))
		if err != nil {
			t.Fatal(err)
		}
		p := nic.Packet{Size: size}
		nd := driver.OneWay(ndTX, ndRX, p, fabric).Total()
		iz := driver.OneWay(driver.NewINICMachine(true), driver.NewINICMachine(true), p, fabric).Total()
		ratio := float64(nd) / float64(iz)
		if ratio > 1.40 {
			t.Errorf("size %d: NetDIMM %v not in iNIC.zcpy's (%v) latency class (ratio %.2f)",
				size, nd, iz, ratio)
		}
	}
}
