package experiments

import (
	"fmt"
	"math"

	"netdimm/internal/driver"
	"netdimm/internal/ethernet"
	"netdimm/internal/fabric"
	"netdimm/internal/fault"
	"netdimm/internal/obs"
	"netdimm/internal/sim"
	"netdimm/internal/spec"
	"netdimm/internal/stats"
	"netdimm/internal/workload"
)

// The rack sweep scales the load sweep out to the fabric: many hosts
// spread over a leaf/spine clos, every host both sending and receiving,
// destinations drawn from the cluster's published flow-locality mix (so
// database traffic is ~90% cross-rack and hadoop ~10%), ECMP spreading
// cross-rack flows over the spines, and — on half the cells — ECN pacing
// the senders whose flows congest a queue. The axes are architecture x
// rack count x ECN x offered load; the reduction is one saturation knee
// per (arch, racks, ECN) curve, so the sweep answers two questions the
// one-switch incast cannot: how much of each architecture's headroom
// survives multi-hop queueing, and how much of it ECN claws back.

// DefaultRackGrid is the default rack-count axis.
var DefaultRackGrid = []int{2, 4, 8}

// DefaultRackLoadGrid is the default per-host offered-load axis, as
// fractions of one host's line rate. The grid is geometric: the knees sit
// an octave apart (the slow dNIC TX driver self-paces and rides out far
// more offered load than the near-memory paths, whose bursts congest the
// spine layer), so doubling steps bracket every architecture's knee
// without wasting cells on one curve's flat region.
var DefaultRackLoadGrid = []float64{0.05, 0.1, 0.2, 0.4, 0.8}

// DefaultRackHosts is the default host count: large enough that the spine
// layer, not any single queue, is the contended resource.
const DefaultRackHosts = 256

// RackSweepConfig parameterises one rack sweep; traffic shape, buffering
// and sharding come from the specification's Load block, the clos shape
// and ECN tuning from its Fabric block.
type RackSweepConfig struct {
	// Packets is the total arrival count per cell, split across all hosts
	// (default 4000 — about sixteen per host at the default 256, deep
	// enough a host's open-loop backlog can push the tail past the knee
	// factor instead of draining before the queue matters).
	Packets int
	// EventBudget bounds each cell's engine via the watchdog (default
	// 8,000,000 — the clos pays several queue hops per packet).
	EventBudget uint64
	// Seed perturbs every host's arrival and destination streams.
	Seed uint64
}

// DefaultRackSweepConfig returns the sweep defaults.
func DefaultRackSweepConfig() RackSweepConfig {
	return RackSweepConfig{Packets: 4000, EventBudget: 8_000_000}
}

func (c RackSweepConfig) withDefaults() RackSweepConfig {
	def := DefaultRackSweepConfig()
	if c.Packets <= 0 {
		c.Packets = def.Packets
	}
	if c.EventBudget == 0 {
		c.EventBudget = def.EventBudget
	}
	return c
}

// RackRow is one (architecture, racks, ECN, offered load) cell of the rack
// sweep: end-to-end latency statistics over delivered packets plus the
// cell's fabric tallies.
type RackRow struct {
	Arch string
	// Racks is the leaf count of the cell's clos.
	Racks int
	// ECN reports whether the cell ran with marking and sender backoff.
	ECN bool
	// Load is each host's offered fraction of its own line rate.
	Load float64
	Mean sim.Time
	P50  sim.Time
	P99  sim.Time
	P999 sim.Time
	// Delivered counts packets that completed end to end; Dropped counts
	// frames tail-dropped at any hop (uplink, leaf or spine queue).
	Delivered int
	Dropped   int
	// Marked counts frames freshly ECN-marked at any fabric queue.
	Marked int
	// CrossRack counts packets whose destination lay in another rack.
	CrossRack int
	// LeafMaxDepth and SpineMaxDepth are the deepest output queues seen at
	// each fabric layer.
	LeafMaxDepth  int
	SpineMaxDepth int
	// RxMaxDepth is the deepest receiver driver queue across all hosts.
	RxMaxDepth int
	// LinkUtilization is the delivered wire occupancy averaged over all
	// host links and the cell's makespan, in [0,1].
	LinkUtilization float64
	// Hist holds the cell's full latency sample set for cross-cell
	// aggregation.
	Hist *stats.Histogram
}

// RackKnee is one (arch, racks, ECN) curve's detected saturation point.
type RackKnee struct {
	Arch  string
	Racks int
	ECN   bool
	// Knee is the highest swept load whose p99 stayed within
	// KneeFactor x the lowest swept load's p99; it is only meaningful
	// when Saturated is true. An unsaturated curve — including the
	// degenerate single-load grid, which cannot bracket a knee — reports
	// the explicit no-knee result {Knee: 0, Saturated: false}.
	Knee float64
	// Saturated reports whether any swept load exceeded that bound; when
	// false the grid never reached the curve's knee.
	Saturated bool
}

// DetectRackKnees reduces sweep rows to one saturation knee per
// (arch, racks, ECN) curve, in first-appearance order. Within each curve
// loads are evaluated ascending and the lowest load is the tail baseline.
func DetectRackKnees(rows []RackRow, kneeFactor float64) []RackKnee {
	if kneeFactor <= 0 {
		kneeFactor = 3
	}
	type curve struct {
		arch  string
		racks int
		ecn   bool
	}
	groups := make(map[curve][]RackRow)
	var order []curve
	for _, r := range rows {
		k := curve{r.Arch, r.Racks, r.ECN}
		if _, ok := groups[k]; !ok {
			order = append(order, k)
		}
		groups[k] = append(groups[k], r)
	}
	var knees []RackKnee
	for _, k := range order {
		rs := groups[k]
		for i := 1; i < len(rs); i++ {
			for j := i; j > 0 && rs[j-1].Load > rs[j].Load; j-- {
				rs[j-1], rs[j] = rs[j], rs[j-1]
			}
		}
		base := rs[0].P99
		knee := RackKnee{Arch: k.arch, Racks: k.racks, ECN: k.ecn}
		for _, r := range rs {
			if base > 0 && float64(r.P99) > kneeFactor*float64(base) {
				knee.Saturated = true
				break
			}
			knee.Knee = r.Load
		}
		if !knee.Saturated {
			// Same no-knee contract as DetectKnees: an unsaturated curve
			// reports Knee 0 instead of the top of the grid.
			knee.Knee = 0
		}
		knees = append(knees, knee)
	}
	return knees
}

// RackSweep runs the rack-count sweep: for every (architecture, racks,
// ECN, offered load) cell it simulates the spec's hosts (default 256)
// exchanging cluster-mix traffic over a racks-leaf clos, with and without
// ECN, and reduces the rows to saturation knees. Nil axes use
// DefaultRackGrid and DefaultRackLoadGrid; a spec whose Fabric block pins
// Leaves sweeps only that rack count.
//
// Cells are deterministic: each builds its own engine, fabric, machines
// and arrival/destination streams from per-cell seeds, so results are
// identical sequentially, in parallel, and at every Load.Shards count.
func RackSweep(sp spec.Spec, racks []int, loads []float64, cfg RackSweepConfig, parallelism int) ([]RackRow, []RackKnee, error) {
	rows, knees, _, err := RackSweepObserved(sp, racks, loads, cfg, parallelism, obs.Spec{})
	return rows, knees, err
}

// RackSweepObserved is RackSweep with the observability plane: when ospec
// enables collection, each cell gets a Cell labelled
// "racksweep/<arch>/racks=<n>/ecn=<on|off>/load=<g>" with delivery, drop
// and mark counters, fabric depth gauges and engine probes. A zero ospec
// yields a nil observer and the exact RackSweep behaviour.
func RackSweepObserved(sp spec.Spec, racks []int, loads []float64, cfg RackSweepConfig, parallelism int, ospec obs.Spec) ([]RackRow, []RackKnee, *obs.Observer, error) {
	cfg = cfg.withDefaults()
	if len(racks) == 0 {
		if sp.Fabric.Leaves > 0 {
			racks = []int{sp.Fabric.Leaves}
		} else {
			racks = DefaultRackGrid
		}
	}
	for _, r := range racks {
		if r < 1 {
			return nil, nil, nil, fmt.Errorf("racksweep: rack count must be at least 1, got %d", r)
		}
	}
	if len(loads) == 0 {
		loads = DefaultRackLoadGrid
	}
	for _, l := range loads {
		if l <= 0 || math.IsNaN(l) || math.IsInf(l, 0) {
			return nil, nil, nil, fmt.Errorf("racksweep: offered load must be positive and finite, got %g", l)
		}
	}
	shape, err := resolveLoad(sp.Load)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("racksweep: %w", err)
	}
	if sp.Load.Hosts == 0 {
		shape.hosts = DefaultRackHosts
	}
	if shape.hosts < 2 {
		return nil, nil, nil, fmt.Errorf("racksweep: need at least 2 hosts to exchange traffic, got %d", shape.hosts)
	}
	// The ECN-on half of the axis: the spec's threshold, or the fabric
	// default when the spec leaves it unset.
	ecnThreshold := sp.Fabric.ECNThreshold
	if ecnThreshold == 0 {
		ecnThreshold = fabric.DefaultECNThreshold
	}

	ecns := []bool{false, true}
	n := len(LoadSweepArchs) * len(racks) * len(ecns) * len(loads)
	axes := func(i int) (arch string, rk int, ecn bool, load float64) {
		arch = LoadSweepArchs[i/(len(racks)*len(ecns)*len(loads))]
		i %= len(racks) * len(ecns) * len(loads)
		rk = racks[i/(len(ecns)*len(loads))]
		i %= len(ecns) * len(loads)
		return arch, rk, ecns[i/len(loads)], loads[i%len(loads)]
	}
	var o *obs.Observer
	if ospec.Enabled() {
		labels := make([]string, n)
		for i := range labels {
			arch, rk, ecn, load := axes(i)
			labels[i] = fmt.Sprintf("racksweep/%s/racks=%d/ecn=%s/load=%g", arch, rk, onOff(ecn), load)
		}
		o = obs.New(ospec, labels...)
	}
	rows := make([]RackRow, n)
	errs := make([]error, n)
	forEachCell(n, parallelism, func(i int) {
		arch, rk, ecn, load := axes(i)
		cell := sp
		cell.Fabric.Leaves = rk
		if cell.Fabric.Spines == 0 {
			cell.Fabric.Spines = rackSpines(shape.hosts, rk)
		}
		if ecn {
			cell.Fabric.ECNThreshold = ecnThreshold
		} else {
			cell.Fabric.ECNThreshold = 0
			cell.Fabric.ECNBackoffNs = 0
		}
		row, err := rackCell(cell, arch, load, shape, cfg, o.Cell(i))
		if err != nil {
			errs[i] = fmt.Errorf("racksweep: %s racks=%d ecn=%s at load %g: %w", arch, rk, onOff(ecn), load, err)
			return
		}
		rows[i] = row
	})
	if err := firstError(errs); err != nil {
		return nil, nil, nil, err
	}
	return rows, DetectRackKnees(rows, shape.kneeFactor), o, nil
}

// rackSpines sizes the spine layer when the spec leaves it unset: one
// spine per eight hosts in a rack (8:1 oversubscription, a common
// datacenter design point — the fabric-level default of two spines is
// meant for handfuls of hosts and would drown a 256-host sweep in spine
// drops), floor two so ECMP always has a choice.
func rackSpines(hosts, racks int) int {
	perLeaf := (hosts + racks - 1) / racks
	s := (perLeaf + 7) / 8
	if s < 2 {
		s = 2
	}
	return s
}

func onOff(b bool) string {
	if b {
		return "on"
	}
	return "off"
}

// rackCell runs one (arch, racks, ECN, load) cell: shape.hosts hosts
// exchanging cluster-mix traffic over the cell spec's clos. The engine
// layout, sharding contract and ECN/fault wiring are loadCell's (see its
// doc); the differences are many-to-many traffic — every host carries a
// TX and an RX machine, destinations ride a per-host stream through
// workload.SampleDest — and fabric-wide tallies in the row.
func rackCell(sp spec.Spec, arch string, load float64, shape loadShape, cfg RackSweepConfig, oc *obs.Cell) (RackRow, error) {
	d := sp.MustDerive()
	rig := newCellRig(shape.shards, shape.hosts, d.ShardLookahead(), cfg.EventBudget)
	link := d.Link

	txs, rxs, err := rackEndpoints(d, arch, shape.hosts, cfg.Seed)
	if err != nil {
		return RackRow{}, err
	}

	// Each host offers `load` of its OWN line rate (one source per link),
	// unlike the incast sweep where all hosts share the receiver's link.
	perHostGap, err := shape.cluster.MeanGapForLoad(load, 1, link.BitsPerSec/1e9)
	if err != nil {
		return RackRow{}, err
	}

	reg := oc.Metrics()
	deliveredC := reg.Counter(arch + ".delivered")
	droppedC := reg.Counter(arch + ".dropped")
	markedC := reg.Counter(arch + ".ecn_marked")
	ep := obs.NewEngineProbe(reg, arch+".engine")
	probes := rig.attachProbes(ep)

	topo := d.NewTopology(rig.placement(), shape.hosts, shape.portBuffer)
	if d.Spec.Fault.PortDropProb > 0 {
		topo.InjectFaults(fault.NewInjector(d.Spec.Fault, cfg.Seed))
	}
	if _, err := topo.ArmFailures(d.Spec.Fault.Failure, cfg.Seed); err != nil {
		return RackRow{}, err
	}
	ecn := topo.Spec().ECNThreshold > 0

	// Every host receives: one RX driver queue per host, all on the fabric
	// engine (deliveries already land there).
	recvs := make([]*serialServer, shape.hosts)
	for i := range recvs {
		recvs[i] = &serialServer{eng: rig.fabEng}
	}

	var hist stats.Histogram
	delivered := 0
	var wireBusy sim.Time
	hostDrops := make([]int, shape.hosts)
	hostCross := make([]int, shape.hosts)

	for h := 0; h < shape.hosts; h++ {
		count := shareCount(cfg.Packets, shape.hosts, h)
		if count == 0 {
			continue
		}
		rig.armHost(h, ecn)
		eng := rig.hostEngine(h)
		// Per-host seeds are independent of the offered load, so the
		// packet and destination sequences are identical along the load
		// axis; the destination stream is separate from the arrival stream
		// so the fabric shape cannot perturb the traffic.
		gen := workload.NewOpenLoop(shape.cluster, shape.process, perHostGap,
			cfg.Seed+uint64(h)*0x9e3779b97f4a7c15)
		destR := sim.NewRand(cfg.Seed ^ 0x5eed0fde57 + uint64(h)*0x9e3779b97f4a7c15)
		txSrv := &serialServer{eng: eng}
		tx := txs[h]
		src := h
		host := uint64(h)
		drops := &hostDrops[h]
		cross := &hostCross[h]
		var pacer *fabric.Pacer
		if ecn {
			pacer = &fabric.Pacer{Backoff: topo.Spec().ECNBackoff(),
				Stall: func(dur sim.Time, done func()) { txSrv.Submit(dur, done) }}
		}

		var arm func(i int)
		arm = func(i int) {
			if i >= count {
				return
			}
			e := gen.Next()
			eng.At(e.At, func() {
				arm(i + 1)
				p := e.Packet(host<<32 | uint64(i))
				dst := workload.SampleDest(destR, e.Locality, src, shape.hosts, topo.Leaves())
				if topo.CrossesSpine(src, dst) {
					*cross++
				}
				born := eng.Now()
				txSrv.Submit(tx.TX(p).Total(), func() {
					f := ethernet.Frame{ID: p.ID, Bytes: e.Size}
					ok := topo.Inject(src, dst, f, func(fr ethernet.Frame) {
						recvs[dst].Submit(rxs[dst].RX(p).Total(), func() {
							hist.Observe(rig.fabEng.Now() - born)
							delivered++
							wireBusy += link.SerializeTime(e.Size)
						})
						if pacer != nil && fr.ECN {
							topo.EchoMark(src, pacer.OnMark)
						}
					})
					if !ok {
						*drops++
					}
				})
			})
		}
		arm(0)
	}

	if err := rig.run(); err != nil {
		return RackRow{}, err
	}
	if probes != nil {
		ep.Merge(probes...)
	}

	fstats := topo.Stats()
	dropped := int(fstats.Dropped + fstats.OutageDrops + fstats.BurstDrops)
	for _, n := range hostDrops {
		dropped += n
	}
	crossRack := 0
	for _, n := range hostCross {
		crossRack += n
	}
	rxMax := 0
	for _, r := range recvs {
		if r.maxDepth > rxMax {
			rxMax = r.maxDepth
		}
	}
	util := 0.0
	if rig.now() > 0 {
		util = float64(wireBusy) / (float64(rig.now()) * float64(shape.hosts))
	}
	deliveredC.Add(int64(delivered))
	droppedC.Add(int64(dropped))
	markedC.Add(int64(fstats.Marked))
	reg.Gauge(arch + ".leaf_max_depth").Set(int64(fstats.LeafMaxDepth))
	reg.Gauge(arch + ".spine_max_depth").Set(int64(fstats.SpineMaxDepth))
	reg.Gauge(arch + ".rx_max_depth").Set(int64(rxMax))
	reg.Gauge(arch + ".link_util_pct").Set(int64(math.Round(util * 100)))

	return RackRow{
		Arch:            arch,
		Racks:           topo.Leaves(),
		ECN:             ecn,
		Load:            load,
		Mean:            hist.Mean(),
		P50:             hist.Percentile(50),
		P99:             hist.Percentile(99),
		P999:            hist.Percentile(99.9),
		Delivered:       delivered,
		Dropped:         dropped,
		Marked:          int(fstats.Marked),
		CrossRack:       crossRack,
		LeafMaxDepth:    fstats.LeafMaxDepth,
		SpineMaxDepth:   fstats.SpineMaxDepth,
		RxMaxDepth:      rxMax,
		LinkUtilization: util,
		Hist:            &hist,
	}, nil
}

// rackEndpoints builds one TX and one RX machine per host for the given
// architecture (every host both sends and receives in the rack sweep).
func rackEndpoints(d *spec.Derived, arch string, hosts int, seed uint64) ([]driver.Machine, []driver.Machine, error) {
	txs := make([]driver.Machine, hosts)
	rxs := make([]driver.Machine, hosts)
	switch arch {
	case "dNIC":
		for h := range txs {
			txs[h], rxs[h] = d.NewDNIC(false), d.NewDNIC(false)
		}
	case "iNIC":
		for h := range txs {
			txs[h], rxs[h] = d.NewINIC(false), d.NewINIC(false)
		}
	case "NetDIMM":
		for h := range txs {
			nd, err := d.NewNetDIMM(seed + 2*uint64(h) + 1)
			if err != nil {
				return nil, nil, err
			}
			txs[h] = nd
			nd, err = d.NewNetDIMM(seed + 2*uint64(h) + 2)
			if err != nil {
				return nil, nil, err
			}
			rxs[h] = nd
		}
	default:
		return nil, nil, fmt.Errorf("unknown architecture %q", arch)
	}
	return txs, rxs, nil
}
