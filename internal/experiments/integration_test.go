package experiments

// Integration tests: end-to-end flows across the driver, core device,
// functional memory, network functions and fabric — the "does the whole
// machine behave like a machine" suite, complementing the per-figure
// shape tests.

import (
	"bytes"
	"testing"

	"netdimm/internal/driver"
	"netdimm/internal/ethernet"
	"netdimm/internal/netfunc"
	"netdimm/internal/nic"
	"netdimm/internal/sim"
	"netdimm/internal/stats"
)

// buildFrame makes an Ethernet+IPv4-ish frame with the given destination
// address and payload.
func buildFrame(dst uint32, payload string, size int) []byte {
	f := make([]byte, size)
	f[30], f[31], f[32], f[33] = byte(dst>>24), byte(dst>>16), byte(dst>>8), byte(dst)
	copy(f[34:], payload)
	return f
}

// A frame transmitted by one NetDIMM machine and received by another must
// arrive byte-identical after DMA into local DRAM, the in-memory clone,
// and delivery to the application.
func TestEndToEndDataIntegrity(t *testing.T) {
	tx, err := driver.NewNetDIMMMachine(31)
	if err != nil {
		t.Fatal(err)
	}
	rx, err := driver.NewNetDIMMMachine(32)
	if err != nil {
		t.Fatal(err)
	}
	for i, size := range []int{64, 256, 1024, 1514} {
		frame := buildFrame(0x0a000001, "payload-integrity-check", size)
		for j := 34 + 23; j < size; j++ {
			frame[j] = byte(i*7 + j) // deterministic filler
		}
		p := nic.Packet{ID: uint64(i), Size: size}

		_, wire := tx.TXData(p, frame)
		if !bytes.Equal(wire, frame) {
			t.Fatalf("size %d: TX corrupted the frame", size)
		}
		_, delivered := rx.RXData(p, wire)
		if !bytes.Equal(delivered, frame) {
			t.Fatalf("size %d: RX clone corrupted the frame", size)
		}
	}
	// The receiving driver's clones were all FPM and the headers hit
	// nCache — the timing machinery ran alongside the data.
	s := rx.Stats()
	if s.ClonesFPM != 4 || s.HeaderCacheHits != 4 {
		t.Fatalf("rx stats = %+v", s)
	}
}

// The COPY_NEEDED slow path must also preserve data.
func TestSlowPathDataIntegrity(t *testing.T) {
	tx, err := driver.NewNetDIMMMachine(33)
	if err != nil {
		t.Fatal(err)
	}
	tx.CopyNeeded = true
	frame := buildFrame(0x0a000001, "slow path bytes", 200)
	_, wire := tx.TXData(nic.Packet{Size: 200}, frame)
	if !bytes.Equal(wire, frame) {
		t.Fatal("COPY_NEEDED path corrupted the frame")
	}
}

// A full forwarding pipeline: frames received on a NetDIMM, inspected by
// the real DPI engine, and forwarded or dropped by the real LPM table.
func TestNetDIMMForwardingPipeline(t *testing.T) {
	rx, err := driver.NewNetDIMMMachine(34)
	if err != nil {
		t.Fatal(err)
	}
	table := netfunc.NewTable()
	table.Insert(netfunc.Route{Prefix: 0x0a000000, Bits: 8, NextHop: 1})
	table.Insert(netfunc.Route{Prefix: 0x0a010000, Bits: 16, NextHop: 2})
	matcher, err := netfunc.NewMatcher("forbidden")
	if err != nil {
		t.Fatal(err)
	}
	dpi := &netfunc.Inspector{Matcher: matcher, Table: table}

	cases := []struct {
		dst     uint32
		payload string
		drop    bool
		hop     int
	}{
		{0x0a000005, "normal traffic", false, 1},
		{0x0a010005, "more normal traffic", false, 2},
		{0x0a000005, "carries forbidden content", true, 0},
	}
	for i, c := range cases {
		frame := buildFrame(c.dst, c.payload, 128)
		_, delivered := rx.RXData(nic.Packet{ID: uint64(i), Size: 128}, frame)
		dec, err := dpi.Inspect(delivered)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if c.drop && dec.Verdict != netfunc.Dropped {
			t.Fatalf("case %d: should have dropped", i)
		}
		if !c.drop && (dec.Verdict != netfunc.Forwarded || dec.NextHop != c.hop) {
			t.Fatalf("case %d: decision %+v, want hop %d", i, dec, c.hop)
		}
	}
}

// One-way latency via the composed OneWay matches the sum of independent
// TX + wire + RX (the composition is exact, not approximate).
func TestOneWayComposition(t *testing.T) {
	fabric := ethernet.NewFabric(100 * sim.Nanosecond)
	p := nic.Packet{Size: 512}
	dn := driver.NewDNICMachine(false)
	got := driver.OneWay(dn, dn, p, fabric).Total()
	want := dn.TX(p).Total() + fabric.DirectWireTime(512) + dn.RX(p).Total()
	if got != want {
		t.Fatalf("OneWay %v != composed %v", got, want)
	}
}

// A multi-NetDIMM system under mixed connection traffic stays consistent:
// every connection's packets ride its own zone, data integrity holds, and
// the allocCaches do not leak.
func TestSystemEndToEnd(t *testing.T) {
	s, err := driver.NewSystem(2, 40)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 50; round++ {
		for conn := uint64(0); conn < 8; conn++ {
			s.TX(conn, nic.Packet{Size: 256 + int(conn)*64})
			s.RX(conn, nic.Packet{Size: 512})
		}
	}
	dist := s.Distribution()
	if dist[0] != 4 || dist[1] != 4 {
		t.Fatalf("distribution = %v", dist)
	}
	if s.FirstPackets() != 8 {
		t.Fatalf("FirstPackets = %d", s.FirstPackets())
	}
	for i := 0; i < 2; i++ {
		st := s.Driver(i).Stats()
		if st.AllocSlow > 5 {
			t.Fatalf("NET_%d allocCache degraded: %+v", i, st)
		}
	}
}

// Breakdown components always sum to the total (no unaccounted time).
func TestBreakdownAccounting(t *testing.T) {
	nd, err := driver.NewNetDIMMMachine(41)
	if err != nil {
		t.Fatal(err)
	}
	fabric := ethernet.NewFabric(50 * sim.Nanosecond)
	for _, size := range []int{64, 1514} {
		b := driver.OneWay(nd, nd, nic.Packet{Size: size}, fabric)
		var sum sim.Time
		for _, c := range stats.Components {
			sum += b[c]
		}
		if sum != b.Total() {
			t.Fatalf("size %d: components %v != total %v", size, sum, b.Total())
		}
	}
}
