// Package experiments assembles full systems from the substrate packages
// and regenerates every table and figure of the paper's evaluation:
//
//	Fig. 4   — one-way latency of dNIC / dNIC.zcpy / iNIC / iNIC.zcpy with
//	           the PCIe overhead share (motivation, Sec. 3)
//	Fig. 5   — iperf bandwidth under memory pressure (motivation, Sec. 3)
//	Fig. 7   — spatial/temporal locality of NIC DMA accesses (Sec. 4.1)
//	Fig. 11  — one-way latency breakdown for dNIC / iNIC / NetDIMM (Sec. 5.2)
//	Fig. 12a — per-packet latency on Facebook-like cluster traces across
//	           switch latencies (Sec. 5.3)
//	Fig. 12b — co-running application memory latency under DPI and L3F
//	           (Sec. 5.3)
//
// plus the headline numbers quoted in the abstract.
package experiments

import (
	"fmt"

	"netdimm/internal/driver"
	"netdimm/internal/nic"
	"netdimm/internal/obs"
	"netdimm/internal/sim"
	"netdimm/internal/spec"
	"netdimm/internal/stats"
)

// PaperSizes are the packet sizes on the X axis of Fig. 4 and Fig. 11.
var PaperSizes = []int{10, 60, 200, 500, 1000, 2000, 4000, 8000}

// Fig11Sizes are the sizes the paper quotes explicit NetDIMM reductions
// for (Sec. 5.2: 64B, 256B, 1024B).
var Fig11Sizes = []int{64, 256, 1024, 1514, 4000, 8000}

// Fig4Row is one packet size's comparison of the four baseline NIC
// configurations (Fig. 4), with the PCIe share of the two dNIC configs.
type Fig4Row struct {
	Size          int
	DNIC          sim.Time
	DNICZcpy      sim.Time
	INIC          sim.Time
	INICZcpy      sim.Time
	PCIeShare     float64 // pcie.overh for dNIC
	PCIeShareZcpy float64 // pcie.overh for dNIC.zcpy
}

// Fig4 reproduces the motivation experiment: one-way latency between two
// directly connected nodes for the four baseline configurations, on the
// system described by sp. Each size is an independent cell (fresh machines
// and derived parameters per cell), fanned out over `parallelism` workers.
func Fig4(sp spec.Spec, sizes []int, switchLatency sim.Time, parallelism int) []Fig4Row {
	rows := make([]Fig4Row, len(sizes))
	forEachCell(len(sizes), parallelism, func(i int) {
		d := sp.MustDerive()
		fabric := d.Fabric(switchLatency)
		size := sizes[i]
		p := nic.Packet{Size: size}
		dn := d.NewDNIC(false)
		dz := d.NewDNIC(true)
		in := d.NewINIC(false)
		iz := d.NewINIC(true)

		dnB := driver.OneWay(dn, d.NewDNIC(false), p, fabric)
		dzB := driver.OneWay(dz, d.NewDNIC(true), p, fabric)
		inB := driver.OneWay(in, d.NewINIC(false), p, fabric)
		izB := driver.OneWay(iz, d.NewINIC(true), p, fabric)

		rows[i] = Fig4Row{
			Size:          size,
			DNIC:          dnB.Total(),
			DNICZcpy:      dzB.Total(),
			INIC:          inB.Total(),
			INICZcpy:      izB.Total(),
			PCIeShare:     dn.PCIeShare(p, dnB.Total()),
			PCIeShareZcpy: dz.PCIeShare(p, dzB.Total()),
		}
	})
	return rows
}

// Fig11Row is one packet size's latency breakdown for the three
// architectures (the three panels of Fig. 11).
type Fig11Row struct {
	Size    int
	DNIC    stats.Breakdown
	INIC    stats.Breakdown
	NetDIMM stats.Breakdown
}

// ReductionVsDNIC returns NetDIMM's relative latency reduction.
func (r Fig11Row) ReductionVsDNIC() float64 {
	return stats.Reduction(r.DNIC.Total(), r.NetDIMM.Total())
}

// ReductionVsINIC returns NetDIMM's relative latency reduction over iNIC.
func (r Fig11Row) ReductionVsINIC() float64 {
	return stats.Reduction(r.INIC.Total(), r.NetDIMM.Total())
}

// Fig11 reproduces the central latency experiment: per-component one-way
// latency for dNIC, iNIC and NetDIMM across packet sizes, on the system
// described by sp. Each size uses fresh machines so bank and cache state do
// not leak across rows; seeds vary per side so TX and RX devices differ.
func Fig11(sp spec.Spec, sizes []int, switchLatency sim.Time, parallelism int) ([]Fig11Row, error) {
	rows, _, err := Fig11Observed(sp, sizes, switchLatency, parallelism, obs.Spec{})
	return rows, err
}

// Fig11Observed is Fig11 with the observability plane: when ospec enables
// tracing or metrics, every size gets its own cell (labelled
// "fig11/size=<n>") holding per-architecture lifecycle spans whose
// per-component track sums equal the reported breakdowns, plus substrate
// metrics. With a zero ospec the returned observer is nil and the run is
// identical to Fig11 — same cells, same event order, same numbers.
func Fig11Observed(sp spec.Spec, sizes []int, switchLatency sim.Time, parallelism int, ospec obs.Spec) ([]Fig11Row, *obs.Observer, error) {
	var o *obs.Observer
	if ospec.Enabled() {
		labels := make([]string, len(sizes))
		for i, s := range sizes {
			labels[i] = fmt.Sprintf("fig11/size=%d", s)
		}
		o = obs.New(ospec, labels...)
	}
	rows := make([]Fig11Row, len(sizes))
	errs := make([]error, len(sizes))
	forEachCell(len(sizes), parallelism, func(i int) {
		d := sp.MustDerive()
		fabric := d.Fabric(switchLatency)
		size := sizes[i]
		p := nic.Packet{Size: size}
		cell := o.Cell(i)
		ndTX, err := d.NewNetDIMM(uint64(2*i + 1))
		if err != nil {
			errs[i] = err
			return
		}
		ndRX, err := d.NewNetDIMM(uint64(2*i + 2))
		if err != nil {
			errs[i] = err
			return
		}
		rows[i] = Fig11Row{
			Size:    size,
			DNIC:    driver.OneWayObserved(d.NewDNIC(false), d.NewDNIC(false), p, fabric, cell),
			INIC:    driver.OneWayObserved(d.NewINIC(false), d.NewINIC(false), p, fabric, cell),
			NetDIMM: driver.OneWayObserved(ndTX, ndRX, p, fabric, cell),
		}
	})
	if err := firstError(errs); err != nil {
		return nil, nil, err
	}
	return rows, o, nil
}

// AverageReduction computes the mean relative reduction of NetDIMM vs the
// selected baseline over the rows (the paper's "on average 49.9% vs PCIe
// NIC, 25.9% vs integrated NIC").
func AverageReduction(rows []Fig11Row, vsINIC bool) float64 {
	if len(rows) == 0 {
		return 0
	}
	var sum float64
	for _, r := range rows {
		if vsINIC {
			sum += r.ReductionVsINIC()
		} else {
			sum += r.ReductionVsDNIC()
		}
	}
	return sum / float64(len(rows))
}
