package experiments

import (
	"netdimm/internal/sim"
	"netdimm/internal/spec"
	"netdimm/internal/stats"
	"netdimm/internal/workload"
)

// Fig12aRow is one (cluster, switch latency) cell of Fig. 12(a): mean
// per-packet one-way latency per architecture and NetDIMM's normalised
// latency against both baselines.
type Fig12aRow struct {
	Cluster       workload.Cluster
	SwitchLatency sim.Time
	DNICMean      sim.Time
	INICMean      sim.Time
	NetDIMMMean   sim.Time
}

// NormVsDNIC returns NetDIMM latency normalised to the dNIC configuration
// (the Fig. 12a Y axis; lower is better).
func (r Fig12aRow) NormVsDNIC() float64 {
	if r.DNICMean == 0 {
		return 0
	}
	return float64(r.NetDIMMMean) / float64(r.DNICMean)
}

// NormVsINIC returns NetDIMM latency normalised to the iNIC configuration.
func (r Fig12aRow) NormVsINIC() float64 {
	if r.INICMean == 0 {
		return 0
	}
	return float64(r.NetDIMMMean) / float64(r.INICMean)
}

// PaperSwitchLatencies are the values swept in Fig. 12(a).
var PaperSwitchLatencies = []sim.Time{
	25 * sim.Nanosecond, 50 * sim.Nanosecond, 100 * sim.Nanosecond, 200 * sim.Nanosecond,
}

// Fig12a replays n packets of each cluster's synthetic trace through the
// clos fabric for every switch latency, measuring the mean one-way
// per-packet latency under each NIC architecture. The clos switches are
// store-and-forward, so MTU-heavy traffic (hadoop) pays per-hop
// re-serialisation, reproducing the paper's cluster ordering.
func Fig12a(sp spec.Spec, clusters []workload.Cluster, switchLats []sim.Time, n int, seed uint64, parallelism int) ([]Fig12aRow, error) {
	rows := make([]Fig12aRow, len(clusters)*len(switchLats))
	errs := make([]error, len(rows))
	forEachCell(len(rows), parallelism, func(idx int) {
		cl := clusters[idx/len(switchLats)]
		sl := switchLats[idx%len(switchLats)]
		rows[idx], errs[idx] = fig12aCell(sp.MustDerive(), cl, sl, n, seed)
	})
	if err := firstError(errs); err != nil {
		return nil, err
	}
	return rows, nil
}

// fig12aCell measures one (cluster, switch latency) grid point. Every cell
// regenerates its trace and machines from the same seed, so cells are
// fully independent of each other.
func fig12aCell(d *spec.Derived, cl workload.Cluster, sl sim.Time, n int, seed uint64) (Fig12aRow, error) {
	fabric := d.Fabric(sl)
	fabric.Switch.CutThrough = false

	events := workload.NewGenerator(cl, 0, seed).Generate(n)
	ndTX, err := d.NewNetDIMM(seed*2 + 1)
	if err != nil {
		return Fig12aRow{}, err
	}
	ndRX, err := d.NewNetDIMM(seed*2 + 2)
	if err != nil {
		return Fig12aRow{}, err
	}
	dn := d.NewDNIC(false)
	in := d.NewINIC(false)

	var dnSum, inSum, ndSum sim.Time
	for i, e := range events {
		p := e.Packet(uint64(i))
		wire := fabric.WireTime(e.Size, e.Locality)

		dnB := dn.TX(p)
		dnB.Add(stats.Wire, wire)
		dnSum += dnB.Plus(dn.RX(p)).Total()

		inB := in.TX(p)
		inB.Add(stats.Wire, wire)
		inSum += inB.Plus(in.RX(p)).Total()

		ndB := ndTX.TX(p)
		ndB.Add(stats.Wire, wire)
		ndSum += ndB.Plus(ndRX.RX(p)).Total()
	}
	cnt := sim.Time(len(events))
	return Fig12aRow{
		Cluster:       cl,
		SwitchLatency: sl,
		DNICMean:      dnSum / cnt,
		INICMean:      inSum / cnt,
		NetDIMMMean:   ndSum / cnt,
	}, nil
}

// Fig12aAverages reduces rows to the paper's summary form: the average
// NetDIMM latency reduction vs dNIC per switch latency, across clusters
// ("40.6%, 36.0%, 33.1%, and 25.3% when switch latency is 25, 50, 100, and
// 200ns").
func Fig12aAverages(rows []Fig12aRow) map[sim.Time]float64 {
	sums := map[sim.Time]float64{}
	counts := map[sim.Time]int{}
	for _, r := range rows {
		sums[r.SwitchLatency] += 1 - r.NormVsDNIC()
		counts[r.SwitchLatency]++
	}
	out := make(map[sim.Time]float64, len(sums))
	for k, v := range sums {
		out[k] = v / float64(counts[k])
	}
	return out
}
