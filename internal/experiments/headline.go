package experiments

import (
	"netdimm/internal/netfunc"
	"netdimm/internal/sim"
	"netdimm/internal/spec"
	"netdimm/internal/workload"
)

// Headline collects the numbers the paper quotes in its abstract and
// Sec. 5, as measured by this reproduction.
type Headline struct {
	// AvgReductionVsDNIC is the mean one-way latency reduction vs a PCIe
	// NIC across packet sizes (paper: 49.9%).
	AvgReductionVsDNIC float64
	// AvgReductionVsINIC is the mean reduction vs an integrated NIC
	// (paper: 25.9%).
	AvgReductionVsINIC float64
	// TraceReductionBySwitch is the per-switch-latency average per-packet
	// reduction on the cluster replays (paper: 40.6/36.0/33.1/25.3% at
	// 25/50/100/200ns).
	TraceReductionBySwitch map[sim.Time]float64
	// DPIWorst / L3FBest bound the Fig. 12b interference deltas (paper:
	// DPI up to +15.4%, L3F up to -30.9% vs iNIC).
	DPIWorst float64 // max Norm-1 over DPI cells
	L3FBest  float64 // max 1-Norm over L3F cells
}

// RunHeadline executes the summary measurement suite. n controls the
// trace-replay length per cell; parallelism is the worker knob passed to
// each underlying sweep (the three studies themselves run in sequence —
// their cells are where the parallelism lives).
func RunHeadline(sp spec.Spec, n int, parallelism int) (Headline, error) {
	var h Headline

	fig11, err := Fig11(sp, Fig11Sizes, 100*sim.Nanosecond, parallelism)
	if err != nil {
		return h, err
	}
	h.AvgReductionVsDNIC = AverageReduction(fig11, false)
	h.AvgReductionVsINIC = AverageReduction(fig11, true)

	rows, err := Fig12a(sp, workload.Clusters, PaperSwitchLatencies, n, 3, parallelism)
	if err != nil {
		return h, err
	}
	h.TraceReductionBySwitch = Fig12aAverages(rows)

	cfg := DefaultFig12bConfig()
	cells := Fig12b(sp, workload.Clusters, []netfunc.Kind{netfunc.DPI, netfunc.L3F}, cfg, parallelism)
	for _, c := range cells {
		switch c.Kind {
		case netfunc.DPI:
			if d := c.Norm() - 1; d > h.DPIWorst {
				h.DPIWorst = d
			}
		case netfunc.L3F:
			if d := 1 - c.Norm(); d > h.L3FBest {
				h.L3FBest = d
			}
		}
	}
	return h, nil
}
