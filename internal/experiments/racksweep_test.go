package experiments

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"netdimm/internal/obs"
	"netdimm/internal/sim"
	"netdimm/internal/spec"
)

// testRackSweep runs a trimmed sweep: few hosts, one rack count, a load
// pair straddling the congestion regime.
func testRackSweep(t *testing.T, sp spec.Spec, racks []int, loads []float64) ([]RackRow, []RackKnee) {
	t.Helper()
	if sp.Load.Hosts == 0 {
		sp.Load.Hosts = 16
	}
	cfg := DefaultRackSweepConfig()
	cfg.Packets = 320
	rows, knees, err := RackSweep(sp, racks, loads, cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	return rows, knees
}

func TestRackSweepShapes(t *testing.T) {
	racks, loads := []int{2}, []float64{0.1, 0.6}
	rows, knees := testRackSweep(t, spec.TableOne(), racks, loads)
	if want := len(LoadSweepArchs) * len(racks) * 2 * len(loads); len(rows) != want {
		t.Fatalf("got %d rows, want %d", len(rows), want)
	}
	if want := len(LoadSweepArchs) * len(racks) * 2; len(knees) != want {
		t.Fatalf("got %d knees, want %d", len(knees), want)
	}
	for _, r := range rows {
		if r.Racks != 2 {
			t.Errorf("%s: row carries racks=%d, want 2", r.Arch, r.Racks)
		}
		if r.Delivered+r.Dropped != 320 {
			t.Errorf("%s ecn=%v load=%g: delivered %d + dropped %d != 320 offered",
				r.Arch, r.ECN, r.Load, r.Delivered, r.Dropped)
		}
		if r.Delivered == 0 {
			t.Errorf("%s ecn=%v load=%g: nothing delivered", r.Arch, r.ECN, r.Load)
		}
		if r.P50 > r.P99 || r.P99 > r.P999 {
			t.Errorf("%s ecn=%v load=%g: percentiles out of order: p50=%v p99=%v p999=%v",
				r.Arch, r.ECN, r.Load, r.P50, r.P99, r.P999)
		}
		if !r.ECN && r.Marked != 0 {
			t.Errorf("%s load=%g: %d frames marked with ECN off", r.Arch, r.Load, r.Marked)
		}
		if r.LinkUtilization < 0 || r.LinkUtilization > 1 {
			t.Errorf("%s ecn=%v load=%g: link utilisation %g outside [0,1]",
				r.Arch, r.ECN, r.Load, r.LinkUtilization)
		}
		if r.CrossRack <= 0 || r.CrossRack > 320 {
			t.Errorf("%s ecn=%v load=%g: cross-rack count %d outside (0,320]",
				r.Arch, r.ECN, r.Load, r.CrossRack)
		}
	}
	// The destination stream is seeded per host, independent of
	// architecture, load and ECN — so every cell of a given rack count
	// must route the exact same cross-rack packet set.
	for _, r := range rows[1:] {
		if r.CrossRack != rows[0].CrossRack {
			t.Errorf("%s ecn=%v load=%g: cross-rack count %d != %d — destination stream not load-invariant",
				r.Arch, r.ECN, r.Load, r.CrossRack, rows[0].CrossRack)
		}
	}
	// TableOne's database mix is ~90% inter-rack (workload.Clusters): the
	// routed share must land near it.
	share := float64(rows[0].CrossRack) / 320
	if share < 0.75 || share > 1 {
		t.Errorf("cross-rack share %.2f implausible for the database mix (~0.9)", share)
	}
}

// ECN must act only through marking and pacing: with no queue ever
// crossing the threshold, the ECN-on cell is bit-identical to ECN-off.
func TestRackSweepECNIdleAtLowLoad(t *testing.T) {
	rows, _ := testRackSweep(t, spec.TableOne(), []int{2}, []float64{0.02})
	byArch := map[string]map[bool]RackRow{}
	for _, r := range rows {
		if byArch[r.Arch] == nil {
			byArch[r.Arch] = map[bool]RackRow{}
		}
		byArch[r.Arch][r.ECN] = r
	}
	for arch, pair := range byArch {
		off, on := pair[false], pair[true]
		if on.Marked != 0 {
			// Marking did engage; pacing may legitimately shift latency.
			continue
		}
		off.ECN, off.Hist, on.Hist = true, nil, nil
		if off != on {
			t.Errorf("%s: unmarked ECN-on cell diverged from ECN-off:\noff: %+v\non:  %+v", arch, off, on)
		}
	}
}

func TestDetectRackKnees(t *testing.T) {
	us := sim.Microsecond
	rows := []RackRow{
		// Deliberately out of load order: the detector sorts per curve.
		{Arch: "dNIC", Racks: 2, ECN: false, Load: 0.2, P99: 9 * us},
		{Arch: "dNIC", Racks: 2, ECN: false, Load: 0.05, P99: 2 * us},
		{Arch: "dNIC", Racks: 2, ECN: false, Load: 0.1, P99: 3 * us},
		// Same arch and racks, ECN on: a separate curve that rides out the
		// whole grid.
		{Arch: "dNIC", Racks: 2, ECN: true, Load: 0.05, P99: 2 * us},
		{Arch: "dNIC", Racks: 2, ECN: true, Load: 0.1, P99: 3 * us},
		{Arch: "dNIC", Racks: 2, ECN: true, Load: 0.2, P99: 5 * us},
		// Same arch, more racks: yet another curve.
		{Arch: "dNIC", Racks: 4, ECN: false, Load: 0.05, P99: 2 * us},
		{Arch: "dNIC", Racks: 4, ECN: false, Load: 0.2, P99: 7 * us},
	}
	knees := DetectRackKnees(rows, 3)
	if len(knees) != 3 {
		t.Fatalf("got %d knees, want 3: %+v", len(knees), knees)
	}
	if k := knees[0]; k.Arch != "dNIC" || k.Racks != 2 || k.ECN || k.Knee != 0.1 || !k.Saturated {
		t.Errorf("ecn-off knee = %+v, want knee 0.1 saturated", k)
	}
	// The ECN-on curve rides out the whole grid: explicit no-knee result.
	if k := knees[1]; !k.ECN || k.Knee != 0 || k.Saturated {
		t.Errorf("ecn-on knee = %+v, want no-knee (0, unsaturated)", k)
	}
	if k := knees[2]; k.Racks != 4 || k.Knee != 0.05 || !k.Saturated {
		t.Errorf("racks=4 knee = %+v, want knee 0.05 saturated", k)
	}
}

// TestDetectRackKneesDegenerate pins the same no-knee contract as
// TestDetectKneesDegenerate on the per-curve rack detector.
func TestDetectRackKneesDegenerate(t *testing.T) {
	us := sim.Microsecond
	cases := []struct {
		name string
		rows []RackRow
		want []RackKnee
	}{
		{name: "empty", rows: nil, want: nil},
		{
			name: "single row per curve",
			rows: []RackRow{{Arch: "dNIC", Racks: 2, Load: 0.4, P99: 5 * us}},
			want: []RackKnee{{Arch: "dNIC", Racks: 2}},
		},
		{
			name: "monotone but never saturating",
			rows: []RackRow{
				{Arch: "iNIC", Racks: 4, ECN: true, Load: 0.05, P99: 2 * us},
				{Arch: "iNIC", Racks: 4, ECN: true, Load: 0.1, P99: 4 * us},
				{Arch: "iNIC", Racks: 4, ECN: true, Load: 0.2, P99: 5 * us},
			},
			want: []RackKnee{{Arch: "iNIC", Racks: 4, ECN: true}},
		},
	}
	for _, c := range cases {
		got := DetectRackKnees(c.rows, 3)
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("%s: DetectRackKnees = %+v, want %+v", c.name, got, c.want)
		}
	}
}

func TestRackSpines(t *testing.T) {
	cases := []struct{ hosts, racks, want int }{
		{256, 2, 16}, // 128 hosts per leaf, 8:1
		{256, 4, 8},
		{256, 8, 4},
		{16, 2, 2}, // floor: ECMP needs a choice
		{8, 8, 2},
		{100, 3, 5}, // ceil(34/8)
	}
	for _, c := range cases {
		if got := rackSpines(c.hosts, c.racks); got != c.want {
			t.Errorf("rackSpines(%d, %d) = %d, want %d", c.hosts, c.racks, got, c.want)
		}
	}
}

func TestRackSweepRejectsBadInput(t *testing.T) {
	cfg := DefaultRackSweepConfig()
	if _, _, err := RackSweep(spec.TableOne(), []int{0}, nil, cfg, 1); err == nil ||
		!strings.Contains(err.Error(), "rack count") {
		t.Errorf("racks {0}: err = %v", err)
	}
	for _, loads := range [][]float64{{0}, {-0.1}, {math.NaN()}, {math.Inf(1)}} {
		if _, _, err := RackSweep(spec.TableOne(), []int{2}, loads, cfg, 1); err == nil {
			t.Errorf("loads %v: no error", loads)
		}
	}
	sp := spec.TableOne()
	sp.Load.Hosts = 1
	if _, _, err := RackSweep(sp, []int{2}, []float64{0.1}, cfg, 1); err == nil ||
		!strings.Contains(err.Error(), "at least 2 hosts") {
		t.Errorf("hosts=1: err = %v", err)
	}
	sp = spec.TableOne()
	sp.Load.Cluster = "mainframe"
	if _, _, err := RackSweep(sp, []int{2}, []float64{0.1}, cfg, 1); err == nil ||
		!strings.Contains(err.Error(), "unknown cluster") {
		t.Errorf("bad cluster: err = %v", err)
	}
}

func TestRackEndpointsUnknownArch(t *testing.T) {
	d := spec.TableOne().MustDerive()
	if _, _, err := rackEndpoints(d, "quantum", 2, 1); err == nil ||
		!strings.Contains(err.Error(), "unknown architecture") {
		t.Errorf("err = %v", err)
	}
}

// A spec whose Fabric block pins Leaves replaces the rack axis.
func TestRackSweepSpecPinsLeaves(t *testing.T) {
	sp := spec.TableOne()
	sp.Load.Hosts = 12
	sp.Fabric.Leaves = 3
	rows, _ := testRackSweep(t, sp, nil, []float64{0.1})
	if want := len(LoadSweepArchs) * 2; len(rows) != want {
		t.Fatalf("got %d rows, want %d (pinned rack axis)", len(rows), want)
	}
	for _, r := range rows {
		if r.Racks != 3 {
			t.Errorf("%s: racks = %d, want pinned 3", r.Arch, r.Racks)
		}
	}
}

func TestRackSweepObservedMetrics(t *testing.T) {
	sp := spec.TableOne()
	sp.Load.Hosts = 16
	cfg := DefaultRackSweepConfig()
	cfg.Packets = 320
	rows, _, o, err := RackSweepObserved(sp, []int{2}, []float64{0.1, 0.6}, cfg, 0, obs.Spec{Metrics: true})
	if err != nil {
		t.Fatal(err)
	}
	if o == nil {
		t.Fatal("nil observer with metrics enabled")
	}
	cells := o.Cells()
	if len(cells) != len(rows) {
		t.Fatalf("got %d cells, want %d", len(cells), len(rows))
	}
	if got, want := cells[0].Label(), "racksweep/dNIC/racks=2/ecn=off/load=0.1"; got != want {
		t.Errorf("cell 0 label = %q, want %q", got, want)
	}
	for i, c := range cells {
		reg := c.Metrics()
		arch := rows[i].Arch
		if got := reg.Counter(arch + ".delivered").Value(); got != int64(rows[i].Delivered) {
			t.Errorf("cell %d (%s): delivered counter %d != row %d", i, c.Label(), got, rows[i].Delivered)
		}
		if got := reg.Counter(arch + ".dropped").Value(); got != int64(rows[i].Dropped) {
			t.Errorf("cell %d (%s): dropped counter %d != row %d", i, c.Label(), got, rows[i].Dropped)
		}
		if got := reg.Counter(arch + ".ecn_marked").Value(); got != int64(rows[i].Marked) {
			t.Errorf("cell %d (%s): ecn_marked counter %d != row %d", i, c.Label(), got, rows[i].Marked)
		}
		if got := reg.Gauge(arch + ".spine_max_depth").Value(); got != int64(rows[i].SpineMaxDepth) {
			t.Errorf("cell %d (%s): spine_max_depth gauge %d != row %d", i, c.Label(), got, rows[i].SpineMaxDepth)
		}
		if got := reg.Gauge(arch + ".rx_max_depth").Value(); got != int64(rows[i].RxMaxDepth) {
			t.Errorf("cell %d (%s): rx_max_depth gauge %d != row %d", i, c.Label(), got, rows[i].RxMaxDepth)
		}
	}
}
