package experiments

import (
	"netdimm/internal/addrmap"
	"netdimm/internal/core"
	"netdimm/internal/dram"
	"netdimm/internal/kalloc"
	"netdimm/internal/nic"
	"netdimm/internal/sim"
	"netdimm/internal/spec"
)

// Ablations quantify the contribution of each NetDIMM design choice the
// paper argues for (Sec. 4): the nPrefetcher, the nCache header caching,
// sub-array-affine allocation (FPM cloning), and the allocCache fast path.

// PrefetchAblationRow reports payload-read behaviour for one prefetch
// degree.
type PrefetchAblationRow struct {
	Degree      int
	HitRate     float64  // nCache hit rate over payload reads
	MeanReadLat sim.Time // mean host payload-read latency
}

// PrefetchAblation receives MTU packets and reads their full payload
// through the memory channel for several nPrefetcher degrees. The paper's
// claim: with the next-line prefetcher, "reading an entire RX packet may
// only experience one nCache miss" (Sec. 4.1).
func PrefetchAblation(sp spec.Spec, degrees []int, packets int, parallelism int) []PrefetchAblationRow {
	if len(degrees) == 0 {
		degrees = []int{0, 1, 2, 4, 8}
	}
	if packets <= 0 {
		packets = 50
	}
	rows := make([]PrefetchAblationRow, len(degrees))
	forEachCell(len(degrees), parallelism, func(cell int) {
		deg := degrees[cell]
		eng := sim.NewEngine()
		cfg := sp.MustDerive().Core
		cfg.PrefetchDegree = deg
		dev := core.NewDevice(eng, cfg)

		var hits, total int
		var latSum sim.Time
		for p := 0; p < packets; p++ {
			buf := int64(p%256) * 2048
			dev.ReceivePacket(buf, nic.MTU, nil)
			eng.Run()
			lines := (nic.MTU + 63) / 64
			for i := 1; i < lines; i++ { // payload lines only
				addr := buf + int64(i)*64
				dev.HostReadLine(addr, func(hit bool, lat sim.Time) {
					total++
					if hit {
						hits++
					}
					latSum += lat
				})
				eng.Run()
			}
		}
		row := PrefetchAblationRow{Degree: deg}
		if total > 0 {
			row.HitRate = float64(hits) / float64(total)
			row.MeanReadLat = latSum / sim.Time(total)
		}
		rows[cell] = row
	})
	return rows
}

// CloneAblationRow compares the in-memory clone modes for the RX buffer
// copy, and the CPU-copy alternative.
type CloneAblationRow struct {
	Strategy string
	PerClone sim.Time
}

// CloneAblation quantifies why sub-array-affine allocation matters (paper
// Sec. 4.1/4.2.1): an FPM clone vs PSM vs GCM vs a conventional CPU copy
// of one MTU packet.
func CloneAblation(sp spec.Spec) []CloneAblationRow {
	d := sp.MustDerive()
	eng := sim.NewEngine()
	dev := core.NewDevice(eng, d.Core)
	costs := d.Costs

	src := int64(0)
	fpmDst := src + addrmap.SameSubarrayPageStride
	psmDst := src + 2*addrmap.PageSize // same rank, different bank
	gcmDst := src + addrmap.RankBytes  // other rank

	return []CloneAblationRow{
		{Strategy: "FPM (same sub-array, hinted alloc)", PerClone: dev.CloneLatency(fpmDst, src, nic.MTU)},
		{Strategy: "PSM (same rank, unhinted)", PerClone: dev.CloneLatency(psmDst, src, nic.MTU)},
		{Strategy: "GCM (cross-rank)", PerClone: dev.CloneLatency(gcmDst, src, nic.MTU)},
		{Strategy: "CPU memcpy (no in-memory cloning)", PerClone: costs.CopyTime(nic.MTU)},
	}
}

// AllocAblationRow compares DMA-buffer allocation strategies.
type AllocAblationRow struct {
	Strategy string
	PerAlloc sim.Time
	// FPMRate is the fraction of RX clones that ran in FPM mode under the
	// strategy.
	FPMRate float64
}

// AllocAblation measures the allocCache contribution: pre-allocated
// sub-array-affine pages vs calling __alloc_netdimm_pages per packet vs
// hint-less allocation (which degrades clones to PSM/GCM).
//
// AllocAblation stays sequential: strategy 2 reuses the FPM rate measured
// by strategy 1, so the strategies are not independent cells.
func AllocAblation(sp spec.Spec, packets int) ([]AllocAblationRow, error) {
	if packets <= 0 {
		packets = 300
	}
	d := sp.MustDerive()
	costs := d.Costs

	// Strategy 1: allocCache (the paper's design) — measured on the real
	// driver.
	nd, err := d.NewNetDIMM(21)
	if err != nil {
		return nil, err
	}
	for i := 0; i < packets; i++ {
		nd.RX(nic.Packet{Size: nic.MTU})
	}
	s := nd.Stats()
	fpm := float64(s.ClonesFPM) / float64(s.ClonesFPM+s.ClonesOther)
	rows := []AllocAblationRow{{
		Strategy: "allocCache (pre-allocated, affine)",
		PerAlloc: costs.AllocCacheLookup,
		FPMRate:  fpm,
	}}

	// Strategy 2: direct __alloc_netdimm_pages with hint per packet: same
	// affinity, but the slow allocator runs on the critical path.
	rows = append(rows, AllocAblationRow{
		Strategy: "__alloc_netdimm_pages(hint) per packet",
		PerAlloc: costs.AllocCacheLookup + costs.SlowAllocPages,
		FPMRate:  fpm,
	})

	// Strategy 3: hint-less allocation — a conventional buddy allocator
	// hands back physically sequential pages, which land in different
	// banks/sub-arrays (Fig. 9c), so the clone degrades to PSM/GCM.
	zone := kalloc.NewNetDIMMZone("NET_x", d.ZoneBase(0), int64(d.Spec.NetDIMMSizeGB)<<30)
	var fpmCount, total int
	rxBuf, _ := zone.AllocPage()
	for i := 0; i < packets; i++ {
		skb := zone.Base + int64(i+2)*addrmap.PageSize // sequential pages
		if dram.CloneModeFor(rxBuf-zone.Base, skb-zone.Base) == dram.FPM {
			fpmCount++
		}
		total++
	}
	rows = append(rows, AllocAblationRow{
		Strategy: "no hint (sequential pages)",
		PerAlloc: costs.SlowAllocPages,
		FPMRate:  float64(fpmCount) / float64(total),
	})
	return rows, nil
}

// HeaderCacheAblationRow compares header-read latency with and without
// nCache.
type HeaderCacheAblationRow struct {
	Strategy   string
	HeaderRead sim.Time
	HitRate    float64
}

// HeaderCacheAblation measures the nCache contribution to header
// processing (the L3F-style access pattern): header reads with the nCache
// enabled vs a device with a zero-line cache.
func HeaderCacheAblation(sp spec.Spec, packets int, parallelism int) []HeaderCacheAblationRow {
	if packets <= 0 {
		packets = 200
	}
	run := func(lines int) HeaderCacheAblationRow {
		eng := sim.NewEngine()
		cfg := sp.MustDerive().Core
		name := "nCache enabled (512 lines)"
		if lines > 0 {
			cfg.NCacheLines = lines
		} else {
			// A 1-line direct cache that every later insert evicts models
			// "no nCache" while keeping the structure valid.
			cfg.NCacheLines = 1
			cfg.NCacheWays = 1
			cfg.PrefetchDegree = 0
			name = "nCache disabled"
		}
		dev := core.NewDevice(eng, cfg)
		var latSum sim.Time
		var hits, total int
		for p := 0; p < packets; p++ {
			buf := int64(p%256) * 2048
			dev.ReceivePacket(buf, nic.MTU, nil)
			// A second packet arrives before the header read (burstiness),
			// stressing nCache capacity.
			dev.ReceivePacket(buf+512*1024, 128, nil)
			eng.Run()
			dev.HostReadLine(buf, func(hit bool, lat sim.Time) {
				total++
				if hit {
					hits++
				}
				latSum += lat
			})
			eng.Run()
		}
		return HeaderCacheAblationRow{
			Strategy:   name,
			HeaderRead: latSum / sim.Time(total),
			HitRate:    float64(hits) / float64(total),
		}
	}
	lines := []int{512, 0}
	rows := make([]HeaderCacheAblationRow, len(lines))
	forEachCell(len(lines), parallelism, func(i int) {
		rows[i] = run(lines[i])
	})
	return rows
}
