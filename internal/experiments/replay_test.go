package experiments

import (
	"bytes"
	"strings"
	"testing"

	"netdimm/internal/fault"
	"netdimm/internal/sim"
	"netdimm/internal/spec"
	"netdimm/internal/trace"
	"netdimm/internal/workload"
)

func TestReplayTrace(t *testing.T) {
	events := workload.NewGenerator(workload.Webserver, 0, 5).Generate(300)
	rows, err := ReplayTrace(spec.TableOne(), events, 100*sim.Nanosecond, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]ReplayResult{}
	for _, r := range rows {
		byName[r.Arch] = r
		if r.Packets != 300 {
			t.Fatalf("%s packets = %d", r.Arch, r.Packets)
		}
		if !(r.P50 <= r.P99) {
			t.Fatalf("%s percentiles inverted", r.Arch)
		}
	}
	if !(byName["NetDIMM"].Mean < byName["iNIC"].Mean &&
		byName["iNIC"].Mean < byName["dNIC"].Mean) {
		t.Fatalf("replay ordering violated: %+v", byName)
	}
}

func TestReplayEmptyTrace(t *testing.T) {
	if _, err := ReplayTrace(spec.TableOne(), nil, 100*sim.Nanosecond, 1, 0); err == nil {
		t.Fatal("empty trace accepted")
	}
}

func TestReplayTraceFileBadStream(t *testing.T) {
	r := bytes.NewReader([]byte("this is not a trace stream"))
	if _, _, err := ReplayTraceFile(spec.TableOne(), r, 100*sim.Nanosecond, 1, 0); err == nil {
		t.Fatal("malformed stream accepted")
	}
}

func TestFaultEndpointsUnknownArch(t *testing.T) {
	d := spec.TableOne().MustDerive()
	eng := sim.NewEngine()
	inj := fault.NewInjector(fault.Spec{}, 1)
	if _, _, _, err := faultEndpoints(d, "quantum", fault.Spec{}, eng, inj, 1); err == nil ||
		!strings.Contains(err.Error(), "unknown architecture") {
		t.Fatalf("err = %v", err)
	}
}

func TestReplayTraceFileRoundTrip(t *testing.T) {
	events := workload.NewGenerator(workload.Hadoop, 0, 9).Generate(150)
	var buf bytes.Buffer
	h := trace.Header{Cluster: workload.Hadoop, Seed: 9, Count: 150}
	if err := trace.Write(&buf, h, events); err != nil {
		t.Fatal(err)
	}
	gotH, rows, err := ReplayTraceFile(spec.TableOne(), &buf, 100*sim.Nanosecond, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if gotH.Cluster != workload.Hadoop || len(rows) != 3 {
		t.Fatalf("header %+v rows %d", gotH, len(rows))
	}
}

func TestMixedChannel(t *testing.T) {
	res, err := MixedChannel(spec.TableOne(), 300, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.DDRReads == 0 || res.NetDIMMReads == 0 {
		t.Fatalf("degenerate mix: %+v", res)
	}
	// The whole point of the asynchronous protocol: NetDIMM reads are
	// slower and non-deterministic, yet the channel serves DDR reads at
	// DDR latency — mixing works.
	if res.DDRMeanLatency <= 0 || res.NetDIMMMean <= 0 {
		t.Fatalf("missing latencies: %+v", res)
	}
	if res.NetDIMMMean <= res.DDRMeanLatency {
		t.Fatalf("NetDIMM reads %v should exceed DDR reads %v",
			res.NetDIMMMean, res.DDRMeanLatency)
	}
	if res.DDRMeanLatency > 200*sim.Nanosecond {
		t.Fatalf("DDR latency %v inflated by NetDIMM traffic", res.DDRMeanLatency)
	}
	if res.MaxOutstandingIDs < 1 {
		t.Fatal("no concurrent asynchronous transactions")
	}
}

func TestMixedChannelOutOfOrder(t *testing.T) {
	res, err := MixedChannel(spec.TableOne(), 400, 11)
	if err != nil {
		t.Fatal(err)
	}
	// The asynchronous protocol's raison d'etre: fast nCache hits overtake
	// older in-flight misses.
	if res.OutOfOrder == 0 {
		t.Fatalf("no out-of-order completions observed: %+v", res)
	}
}
