package experiments

import (
	"testing"

	"netdimm/internal/sim"
	"netdimm/internal/spec"
)

func TestPrefetchAblation(t *testing.T) {
	rows := PrefetchAblation(spec.TableOne(), []int{0, 4}, 20, 1)
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	off, on := rows[0], rows[1]
	if off.Degree != 0 || on.Degree != 4 {
		t.Fatal("degrees wrong")
	}
	// Without the prefetcher, payload reads miss nCache; with it, the
	// paper claims at most ~one miss per packet.
	if off.HitRate > 0.1 {
		t.Fatalf("degree 0 hit rate = %.2f, want ~0", off.HitRate)
	}
	if on.HitRate < 0.7 {
		t.Fatalf("degree 4 hit rate = %.2f, want high", on.HitRate)
	}
	if on.MeanReadLat >= off.MeanReadLat {
		t.Fatalf("prefetching should cut read latency: %v vs %v", on.MeanReadLat, off.MeanReadLat)
	}
}

func TestPrefetchAblationMonotone(t *testing.T) {
	rows := PrefetchAblation(spec.TableOne(), []int{1, 2, 4}, 15, 0)
	for i := 1; i < len(rows); i++ {
		if rows[i].HitRate+0.02 < rows[i-1].HitRate {
			t.Fatalf("hit rate fell with degree: %+v", rows)
		}
	}
}

func TestCloneAblationOrdering(t *testing.T) {
	rows := CloneAblation(spec.TableOne())
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	// FPM < PSM < GCM, and FPM beats the CPU copy by a wide margin.
	if !(rows[0].PerClone < rows[1].PerClone && rows[1].PerClone < rows[2].PerClone) {
		t.Fatalf("clone mode ordering violated: %+v", rows)
	}
	cpu := rows[3].PerClone
	if rows[0].PerClone*3 > cpu {
		t.Fatalf("FPM %v should be well below a CPU copy %v", rows[0].PerClone, cpu)
	}
}

func TestAllocAblation(t *testing.T) {
	rows, err := AllocAblation(spec.TableOne(), 200)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	cacheRow, slowRow, noHint := rows[0], rows[1], rows[2]
	if cacheRow.PerAlloc >= slowRow.PerAlloc {
		t.Fatal("allocCache must beat the slow allocator on the critical path")
	}
	if cacheRow.FPMRate < 0.9 {
		t.Fatalf("affine allocation FPM rate = %.2f, want ~1", cacheRow.FPMRate)
	}
	// Hint-less allocation destroys FPM eligibility.
	if noHint.FPMRate > 0.5 {
		t.Fatalf("no-hint FPM rate = %.2f, should collapse", noHint.FPMRate)
	}
}

func TestHeaderCacheAblation(t *testing.T) {
	rows := HeaderCacheAblation(spec.TableOne(), 100, 0)
	on, off := rows[0], rows[1]
	if on.HitRate < 0.9 {
		t.Fatalf("nCache header hit rate = %.2f, want ~1", on.HitRate)
	}
	if off.HitRate > 0.2 {
		t.Fatalf("disabled-cache hit rate = %.2f, want ~0", off.HitRate)
	}
	if on.HeaderRead >= off.HeaderRead {
		t.Fatalf("nCache should cut header latency: %v vs %v", on.HeaderRead, off.HeaderRead)
	}
}

func TestBandwidthSustained(t *testing.T) {
	rows, err := Bandwidth(spec.TableOne(), 300, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		// Paper Sec. 5.2: NetDIMM delivers 40Gbps just like the PCIe and
		// integrated NIC models.
		if !r.Sustained() {
			t.Errorf("%s did not sustain line rate: %.1f of %.1f Gbps", r.Arch, r.AchievedGbps, r.OfferedGbps)
		}
	}
	// The NetDIMM's single local channel has ample headroom for 40GbE.
	if rows[0].ChannelHeadroom <= 0 || rows[0].ChannelHeadroom >= 1 {
		t.Errorf("channel headroom = %.2f, want in (0,1)", rows[0].ChannelHeadroom)
	}
	// NetDIMM's per-packet driver work is below the baselines' (no copy).
	if rows[0].PerPacketRx >= rows[1].PerPacketRx {
		t.Errorf("NetDIMM per-packet %v should beat dNIC %v", rows[0].PerPacketRx, rows[1].PerPacketRx)
	}
	_ = sim.Time(0)
}
