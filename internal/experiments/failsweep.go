package experiments

import (
	"fmt"

	"netdimm/internal/ethernet"
	"netdimm/internal/fabric"
	"netdimm/internal/fault"
	"netdimm/internal/nic"
	"netdimm/internal/obs"
	"netdimm/internal/sim"
	"netdimm/internal/spec"
	"netdimm/internal/stats"
	"netdimm/internal/workload"
)

// The failure sweep measures what the load and rack sweeps assume away:
// how each architecture rides out a fabric that loses capacity mid-run. A
// scheduled spine outage takes one of the clos's two spines down for a
// window [start, start+duration); ECMP consults the fabric health view,
// so flows hashed onto the dead spine fail over to the survivor the
// moment the window opens, while frames already in flight toward it are
// eaten and recovered by each sender's ack-timeout ARQ. The axes are
// architecture × outage duration on a fixed 2-spine/4-leaf clos at a
// fixed offered load; every row reports the failover record (rerouted
// flows, outage drops, time-to-reroute), the recovery record
// (retransmits, packets recovered, mean recovery time), and the latency
// tail split by when the packet was born — before, during or after the
// window — so post-recovery tail inflation is read directly off the row.

// DefaultOutageGrid is the default outage-duration axis. Zero is the
// baseline cell every other duration is compared against.
var DefaultOutageGrid = []sim.Time{0, 5 * sim.Microsecond, 20 * sim.Microsecond, 60 * sim.Microsecond}

// DefaultFailHosts is the default host count: the 2×4 clos scenario's 32,
// eight per leaf.
const DefaultFailHosts = 32

// Default clos shape when the spec's Fabric block is zero: the 2-spine ×
// 4-leaf clos (scenarios/clos-2x4.json), the smallest fabric where a
// spine outage halves — rather than removes — the cross-rack capacity.
const (
	defaultFailLeaves = 4
	defaultFailSpines = 2
)

// defaultFailRetryBase is the ARQ retransmit base when the spec's Fault
// block leaves RetryBaseNs zero: the fault plane's 1µs link-level default
// would fire well inside a loaded clos round trip and flood the fabric
// with spurious copies, so the sweep sizes the timer above the loaded
// end-to-end tail instead.
const defaultFailRetryBase = 30 * sim.Microsecond

// FailSweepConfig parameterises one failure sweep; traffic shape,
// buffering and sharding come from the specification's Load block, the
// clos shape from its Fabric block, and any background failure schedule
// (extra outages, burst loss) from its Fault.Failure block.
type FailSweepConfig struct {
	// Packets is the total arrival count per cell, split across all hosts
	// (default 2400 — 75 per host at the default 32, a makespan several
	// times the longest default outage).
	Packets int
	// EventBudget bounds each cell's engine via the watchdog (default
	// 8,000,000).
	EventBudget uint64
	// Seed perturbs every host's arrival and destination streams.
	Seed uint64
	// Load is each host's offered fraction of its own line rate (default
	// 0.08 — busy enough that queues exist, below every architecture's
	// saturation knee so tail inflation is attributable to the outage,
	// and light enough that the loaded tail sits well under the
	// retransmit timer, keeping the baseline free of spurious
	// retransmissions).
	Load float64
	// OutageStart is when the swept outage window opens (default 20µs,
	// past the cold-start transient).
	OutageStart sim.Time
	// Spine is the spine the swept outage takes down (default 0).
	Spine int
}

// DefaultFailSweepConfig returns the sweep defaults.
func DefaultFailSweepConfig() FailSweepConfig {
	return FailSweepConfig{
		Packets:     2400,
		EventBudget: 8_000_000,
		Load:        0.08,
		OutageStart: 20 * sim.Microsecond,
	}
}

func (c FailSweepConfig) withDefaults() FailSweepConfig {
	def := DefaultFailSweepConfig()
	if c.Packets <= 0 {
		c.Packets = def.Packets
	}
	if c.EventBudget == 0 {
		c.EventBudget = def.EventBudget
	}
	if c.Load == 0 {
		c.Load = def.Load
	}
	if c.OutageStart == 0 {
		c.OutageStart = def.OutageStart
	}
	return c
}

// FailRow is one (architecture, outage duration) cell of the failure
// sweep. Latency percentiles are split by the packet's birth instant
// relative to the outage window; the failover and recovery tallies
// describe how the cell absorbed the outage.
type FailRow struct {
	Arch string
	// Outage is the swept spine-down window length; 0 is the baseline.
	Outage sim.Time
	// Delivered counts packets that completed end to end (duplicates from
	// spurious retransmits are counted once); Failed counts packets
	// abandoned after the retry cap (always 0 with unlimited retries).
	Delivered int
	Failed    int
	// DuringOffered / DuringDelivered count packets born inside the
	// outage window and how many of them still delivered — the
	// delivered-during-outage fraction.
	DuringOffered   int
	DuringDelivered int
	// Dropped counts frames lost anywhere before recovery: queue tail
	// drops, down-element (outage) drops, burst losses and downed-uplink
	// refusals.
	Dropped int
	// OutageDrops counts frames eaten by the down spine (in-flight frames
	// included); BurstDrops frames lost to a scheduled Gilbert–Elliott
	// process; Rerouted frames ECMP steered off their primary spine;
	// Degraded frames forced onto the single-path fallback.
	OutageDrops uint64
	BurstDrops  uint64
	Rerouted    uint64
	Degraded    uint64
	// Retransmits counts ARQ retransmissions across all hosts; Recovered
	// counts packets that delivered only through a retransmitted frame.
	Retransmits uint64
	Recovered   int
	// TimeToReroute is the delay from outage start to the first failover
	// routing decision, or -1 when no frame was rerouted (the baseline).
	TimeToReroute sim.Time
	// MeanRecovery is the mean end-to-end latency of Recovered packets —
	// the mean time-to-recover a lost frame, dominated by the retransmit
	// timer.
	MeanRecovery sim.Time
	// Percentiles of end-to-end latency by delivery instant relative to
	// the outage window: Before is the clean pre-outage steady state,
	// During covers completions while the spine is down (failover detours
	// and in-window recoveries), After everything past the window —
	// including recoveries of frames the outage ate near its end. Each is
	// zero when its window saw no deliveries.
	P99Before  sim.Time
	P999Before sim.Time
	P99During  sim.Time
	P999During sim.Time
	P99After   sim.Time
	P999After  sim.Time
	// TailInflation is P99After / P99Before — the post-recovery tail
	// relative to the same cell's pre-outage tail (compare against the
	// baseline cell's value to cancel warm-up drift).
	TailInflation float64
	// Hist holds the cell's full latency sample set.
	Hist *stats.Histogram
}

// FailSweep runs the failure sweep: for every (architecture, outage
// duration) cell, the spec's hosts (default 32 on a 2-spine/4-leaf clos)
// exchange cluster-mix traffic at a fixed offered load while spine
// cfg.Spine is down for [cfg.OutageStart, cfg.OutageStart+duration), and
// every sender recovers lost frames through the NIC's ack-timeout ARQ. A
// nil durations axis uses DefaultOutageGrid; duration 0 is the baseline.
//
// Cells are deterministic: each builds its own engine, fabric, health
// schedule and streams from per-cell seeds, so results are identical
// sequentially, in parallel, and at every Load.Shards count.
func FailSweep(sp spec.Spec, outages []sim.Time, cfg FailSweepConfig, parallelism int) ([]FailRow, error) {
	rows, _, err := FailSweepObserved(sp, outages, cfg, parallelism, obs.Spec{})
	return rows, err
}

// FailSweepObserved is FailSweep with the observability plane: when ospec
// enables collection, each cell gets a Cell labelled
// "failsweep/<arch>/outage=<dur>" with delivery, drop, reroute and
// retransmit counters, the merged fault-counter block and engine probes.
// A zero ospec yields a nil observer and the exact FailSweep behaviour.
func FailSweepObserved(sp spec.Spec, outages []sim.Time, cfg FailSweepConfig, parallelism int, ospec obs.Spec) ([]FailRow, *obs.Observer, error) {
	cfg = cfg.withDefaults()
	if len(outages) == 0 {
		outages = DefaultOutageGrid
	}
	for _, d := range outages {
		if d < 0 {
			return nil, nil, fmt.Errorf("failsweep: outage duration must not be negative, got %v", d)
		}
	}
	shape, err := resolveLoad(sp.Load)
	if err != nil {
		return nil, nil, fmt.Errorf("failsweep: %w", err)
	}
	if sp.Load.Hosts == 0 {
		shape.hosts = DefaultFailHosts
	}
	if shape.hosts < 2 {
		return nil, nil, fmt.Errorf("failsweep: need at least 2 hosts to exchange traffic, got %d", shape.hosts)
	}
	if sp.Fabric.Leaves == 0 {
		sp.Fabric.Leaves = defaultFailLeaves
	}
	if sp.Fabric.Spines == 0 {
		sp.Fabric.Spines = defaultFailSpines
	}
	if cfg.Spine < 0 || cfg.Spine >= sp.Fabric.Spines {
		return nil, nil, fmt.Errorf("failsweep: swept spine %d outside the fabric's %d spines", cfg.Spine, sp.Fabric.Spines)
	}
	if cfg.Load < 0 || cfg.Load != cfg.Load {
		return nil, nil, fmt.Errorf("failsweep: offered load must be positive and finite, got %g", cfg.Load)
	}

	n := len(LoadSweepArchs) * len(outages)
	axes := func(i int) (arch string, dur sim.Time) {
		return LoadSweepArchs[i/len(outages)], outages[i%len(outages)]
	}
	var o *obs.Observer
	if ospec.Enabled() {
		labels := make([]string, n)
		for i := range labels {
			arch, dur := axes(i)
			labels[i] = fmt.Sprintf("failsweep/%s/outage=%v", arch, dur)
		}
		o = obs.New(ospec, labels...)
	}
	rows := make([]FailRow, n)
	errs := make([]error, n)
	forEachCell(n, parallelism, func(i int) {
		arch, dur := axes(i)
		row, err := failCell(sp, arch, dur, shape, cfg, o.Cell(i))
		if err != nil {
			errs[i] = fmt.Errorf("failsweep: %s outage=%v: %w", arch, dur, err)
			return
		}
		rows[i] = row
	})
	if err := firstError(errs); err != nil {
		return nil, nil, err
	}
	return rows, o, nil
}

// failPolicy resolves the sweep's ARQ policy from the spec's Fault knobs,
// substituting the fabric-scale retransmit base when the spec leaves it
// at zero.
func failPolicy(fs fault.Spec) fault.RetryPolicy {
	if fs.RetryBaseNs == 0 {
		fs.RetryBaseNs = int(defaultFailRetryBase / sim.Nanosecond)
	}
	return fs.NetPolicy()
}

// failCell runs one (arch, outage duration) cell. The engine layout and
// sharding contract are rackCell's — many-to-many cluster-mix traffic
// over the cell spec's clos — with two additions: the cell's failure
// schedule (the spec's background Failure block plus the swept spine
// window) is armed on the topology, and every sender transmits through
// an ack-timeout ARQ whose acknowledgement rides the fabric→host echo
// channel, so a frame eaten by the outage is retransmitted and, once
// ECMP has failed over, delivered.
func failCell(sp spec.Spec, arch string, dur sim.Time, shape loadShape, cfg FailSweepConfig, oc *obs.Cell) (FailRow, error) {
	d := sp.MustDerive()
	rig := newCellRig(shape.shards, shape.hosts, d.ShardLookahead(), cfg.EventBudget)

	txs, rxs, err := rackEndpoints(d, arch, shape.hosts, cfg.Seed)
	if err != nil {
		return FailRow{}, err
	}
	link := d.Link
	perHostGap, err := shape.cluster.MeanGapForLoad(cfg.Load, 1, link.BitsPerSec/1e9)
	if err != nil {
		return FailRow{}, err
	}

	sched := sp.Fault.Failure
	winStart := cfg.OutageStart
	winEnd := winStart + dur
	if dur > 0 {
		outs := make([]fault.Outage, 0, len(sched.Outages)+1)
		outs = append(outs, sched.Outages...)
		outs = append(outs, fault.Outage{
			Kind:    fault.OutageSpine,
			Index:   cfg.Spine,
			StartNs: int(winStart / sim.Nanosecond),
			EndNs:   int(winEnd / sim.Nanosecond),
		})
		sched.Outages = outs
	}

	reg := oc.Metrics()
	deliveredC := reg.Counter(arch + ".delivered")
	droppedC := reg.Counter(arch + ".dropped")
	reroutedC := reg.Counter(arch + ".rerouted")
	outageDropsC := reg.Counter(arch + ".outage_drops")
	ep := obs.NewEngineProbe(reg, arch+".engine")
	probes := rig.attachProbes(ep)

	topo := d.NewTopology(rig.placement(), shape.hosts, shape.portBuffer)
	if d.Spec.Fault.PortDropProb > 0 {
		topo.InjectFaults(fault.NewInjector(d.Spec.Fault, cfg.Seed))
	}
	if _, err := topo.ArmFailures(sched, cfg.Seed); err != nil {
		return FailRow{}, err
	}
	ecn := topo.Spec().ECNThreshold > 0
	policy := failPolicy(d.Spec.Fault)

	recvs := make([]*serialServer, shape.hosts)
	for i := range recvs {
		recvs[i] = &serialServer{eng: rig.fabEng}
	}

	// Global packet index: host-major, so the fabric-side delivery dedup
	// (first copy wins; spurious retransmits are discarded at the NIC
	// before the RX driver) is a flat slice on the fabric engine.
	base := make([]int, shape.hosts)
	acc := 0
	for h := range base {
		base[h] = acc
		acc += shareCount(cfg.Packets, shape.hosts, h)
	}
	seen := make([]bool, cfg.Packets)

	// Receiver-side tallies, all written on the fabric engine.
	var histAll, histBefore, histDuring, histAfter stats.Histogram
	delivered, duringDelivered, recovered := 0, 0, 0
	var recoverySum sim.Time
	// Sender-side tallies, per host so sharded cells never share a write.
	hostDrops := make([]int, shape.hosts)
	hostFailed := make([]int, shape.hosts)
	hostDuring := make([]int, shape.hosts)
	hostCtrs := make([]stats.FaultCounters, shape.hosts)

	for h := 0; h < shape.hosts; h++ {
		count := shareCount(cfg.Packets, shape.hosts, h)
		if count == 0 {
			continue
		}
		// The echo channel is armed unconditionally: it carries the ARQ
		// acknowledgements (and, with ECN on, the congestion echoes).
		rig.armHost(h, true)
		eng := rig.hostEngine(h)
		gen := workload.NewOpenLoop(shape.cluster, shape.process, perHostGap,
			cfg.Seed+uint64(h)*0x9e3779b97f4a7c15)
		destR := sim.NewRand(cfg.Seed ^ 0x5eed0fde57 + uint64(h)*0x9e3779b97f4a7c15)
		txSrv := &serialServer{eng: eng}
		rt := &nic.Retransmitter{Eng: eng, Policy: policy, Counters: &hostCtrs[h]}
		tx := txs[h]
		src := h
		host := uint64(h)
		gbase := base[h]
		drops := &hostDrops[h]
		failed := &hostFailed[h]
		during := &hostDuring[h]
		var pacer *fabric.Pacer
		if ecn {
			pacer = &fabric.Pacer{Backoff: topo.Spec().ECNBackoff(),
				Stall: func(dur sim.Time, done func()) { txSrv.Submit(dur, done) }}
		}

		var arm func(i int)
		arm = func(i int) {
			if i >= count {
				return
			}
			e := gen.Next()
			eng.At(e.At, func() {
				arm(i + 1)
				p := e.Packet(host<<32 | uint64(i))
				dst := workload.SampleDest(destR, e.Locality, src, shape.hosts, topo.Leaves())
				born := eng.Now()
				if born >= winStart && born < winEnd {
					*during++
				}
				g := gbase + i
				rt.SendAsync(func(attempt int, ack func()) {
					txSrv.Submit(tx.TX(p).Total(), func() {
						f := ethernet.Frame{ID: p.ID, Bytes: e.Size}
						ok := topo.Inject(src, dst, f, func(fr ethernet.Frame) {
							if seen[g] {
								return // duplicate of an already-delivered packet
							}
							seen[g] = true
							recvs[dst].Submit(rxs[dst].RX(p).Total(), func() {
								now := rig.fabEng.Now()
								lat := now - born
								histAll.Observe(lat)
								// Bucket the tails by delivery instant so a
								// recovered frame's timer-dominated latency
								// lands in the window it completed in, not
								// the one it was born in.
								switch {
								case now < winStart:
									histBefore.Observe(lat)
								case now < winEnd:
									histDuring.Observe(lat)
								default:
									histAfter.Observe(lat)
								}
								if born >= winStart && born < winEnd {
									duringDelivered++
								}
								delivered++
								if attempt > 0 {
									recovered++
									recoverySum += lat
								}
								topo.EchoMark(src, ack)
							})
							if pacer != nil && fr.ECN {
								topo.EchoMark(src, pacer.OnMark)
							}
						})
						if !ok {
							*drops++
						}
					})
				}, func(attempts int, err error) {
					if err != nil {
						*failed++
					}
				})
			})
		}
		arm(0)
	}

	if err := rig.run(); err != nil {
		return FailRow{}, err
	}
	if probes != nil {
		ep.Merge(probes...)
	}

	fstats := topo.Stats()
	dropped := int(fstats.Dropped + fstats.OutageDrops + fstats.BurstDrops)
	for _, n := range hostDrops {
		dropped += n
	}
	failedTotal := 0
	for _, n := range hostFailed {
		failedTotal += n
	}
	duringOffered := 0
	for _, n := range hostDuring {
		duringOffered += n
	}
	var ctrs stats.FaultCounters
	for _, c := range hostCtrs {
		ctrs.Merge(c)
	}
	timeToReroute := sim.Time(-1)
	if hv := topo.Health(); hv != nil {
		if first := hv.Stats().FirstReroute; first >= 0 {
			timeToReroute = first - winStart
		}
	}
	var meanRecovery sim.Time
	if recovered > 0 {
		meanRecovery = recoverySum / sim.Time(recovered)
	}
	p99Before := histBefore.Percentile(99)
	p99After := histAfter.Percentile(99)
	inflation := 0.0
	if p99Before > 0 && p99After > 0 {
		inflation = float64(p99After) / float64(p99Before)
	}

	deliveredC.Add(int64(delivered))
	droppedC.Add(int64(dropped))
	reroutedC.Add(int64(fstats.Rerouted))
	outageDropsC.Add(int64(fstats.OutageDrops))
	fault.PublishCounters(reg, arch, ctrs)
	reg.Gauge(arch + ".leaf_max_depth").Set(int64(fstats.LeafMaxDepth))
	reg.Gauge(arch + ".spine_max_depth").Set(int64(fstats.SpineMaxDepth))

	return FailRow{
		Arch:            arch,
		Outage:          dur,
		Delivered:       delivered,
		Failed:          failedTotal,
		DuringOffered:   duringOffered,
		DuringDelivered: duringDelivered,
		Dropped:         dropped,
		OutageDrops:     fstats.OutageDrops,
		BurstDrops:      fstats.BurstDrops,
		Rerouted:        fstats.Rerouted,
		Degraded:        fstats.Degraded,
		Retransmits:     ctrs.Retransmits,
		Recovered:       recovered,
		TimeToReroute:   timeToReroute,
		MeanRecovery:    meanRecovery,
		P99Before:       p99Before,
		P999Before:      histBefore.Percentile(99.9),
		P99During:       histDuring.Percentile(99),
		P999During:      histDuring.Percentile(99.9),
		P99After:        p99After,
		P999After:       histAfter.Percentile(99.9),
		TailInflation:   inflation,
		Hist:            &histAll,
	}, nil
}
