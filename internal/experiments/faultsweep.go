package experiments

import (
	"fmt"

	"netdimm/internal/core"
	"netdimm/internal/driver"
	"netdimm/internal/ethernet"
	"netdimm/internal/fault"
	"netdimm/internal/memctrl"
	"netdimm/internal/nic"
	"netdimm/internal/nvdimmp"
	"netdimm/internal/obs"
	"netdimm/internal/sim"
	"netdimm/internal/spec"
	"netdimm/internal/stats"
)

// FaultSweepArchs are the architectures compared by the fault sweep, in
// output order.
var FaultSweepArchs = []string{"dNIC", "iNIC", "NetDIMM"}

// FaultSweepConfig parameterises one fault sweep.
type FaultSweepConfig struct {
	// Size is the packet payload size in bytes (default nic.MTU).
	Size int
	// Packets is how many packets each cell delivers (default 200).
	Packets int
	// EventBudget bounds each cell's engine via the watchdog, so a
	// pathological configuration (unlimited retries at 100% loss) aborts
	// with a diagnostic error instead of spinning (default 2,000,000).
	EventBudget uint64
	// Seed perturbs every cell's fault stream.
	Seed uint64
}

// DefaultFaultSweepConfig returns the sweep defaults.
func DefaultFaultSweepConfig() FaultSweepConfig {
	return FaultSweepConfig{Size: nic.MTU, Packets: 200, EventBudget: 2_000_000}
}

func (c FaultSweepConfig) withDefaults() FaultSweepConfig {
	def := DefaultFaultSweepConfig()
	if c.Size <= 0 {
		c.Size = def.Size
	}
	if c.Packets <= 0 {
		c.Packets = def.Packets
	}
	if c.EventBudget == 0 {
		c.EventBudget = def.EventBudget
	}
	return c
}

// FaultRow is one (architecture, loss rate) cell of the fault sweep:
// one-way latency statistics over the delivered packets, plus the fault and
// recovery tallies of the cell's injector.
type FaultRow struct {
	Arch     string
	LossRate float64
	Mean     sim.Time
	P50      sim.Time
	P99      sim.Time
	// Delivered counts packets that completed end to end (including any
	// NVDIMM-P recovery on the NetDIMM receive path); Failed counts packets
	// abandoned after the retry cap.
	Delivered int
	Failed    int
	Counters  stats.FaultCounters
	// Hist holds the cell's full latency sample set, so callers can merge
	// cells (see FaultTails) or compute percentiles beyond P50/P99.
	Hist *stats.Histogram
}

// FaultTails merges every rate's sample set per architecture (via
// stats.Histogram.Merge) and reports the cross-rate latency tail, in
// FaultSweepArchs order. Architectures with no delivered packets are
// skipped.
type FaultTail struct {
	Arch     string
	Count    int
	Mean     sim.Time
	P50, P99 sim.Time
}

// FaultTails aggregates sweep rows into per-architecture tails.
func FaultTails(rows []FaultRow) []FaultTail {
	merged := make(map[string]*stats.Histogram)
	for _, r := range rows {
		if r.Hist == nil {
			continue
		}
		if merged[r.Arch] == nil {
			merged[r.Arch] = &stats.Histogram{}
		}
		merged[r.Arch].Merge(r.Hist)
	}
	var tails []FaultTail
	for _, arch := range FaultSweepArchs {
		h := merged[arch]
		if h == nil || h.Count() == 0 {
			continue
		}
		tails = append(tails, FaultTail{
			Arch:  arch,
			Count: h.Count(),
			Mean:  h.Mean(),
			P50:   h.Percentile(50),
			P99:   h.Percentile(99),
		})
	}
	return tails
}

// FaultSweep measures one-way latency degradation under injected frame
// loss for the three NIC architectures. For each (arch, rate) cell it runs
// an event-driven delivery loop on a fresh engine: driver TX cost, then the
// lossy wire with NIC retransmit/backoff recovery, then driver RX; on the
// NetDIMM receive path an additional NVDIMM-P header read runs through the
// RDY-timeout recovery machinery when the spec injects memory faults. The
// sweep overrides only Spec.Fault.DropProb per cell — every other fault
// knob (corruption, port drops, RDY loss, retry policy) comes from sp.
//
// Cells are deterministic: each builds its own engine and injector from a
// per-cell seed, so results are identical sequentially and in parallel.
func FaultSweep(sp spec.Spec, rates []float64, cfg FaultSweepConfig, parallelism int) ([]FaultRow, error) {
	rows, _, err := FaultSweepObserved(sp, rates, cfg, parallelism, obs.Spec{})
	return rows, err
}

// FaultSweepObserved is FaultSweep with the observability plane: when
// ospec enables collection, each (arch, rate) cell gets a Cell labelled
// "faultsweep/<arch>/loss=<rate>" with retransmit/backoff and NVDIMM-P
// recovery spans, path outcome counters, engine probes and the cell's
// fault tallies. A zero ospec yields a nil observer and the exact
// FaultSweep behaviour.
func FaultSweepObserved(sp spec.Spec, rates []float64, cfg FaultSweepConfig, parallelism int, ospec obs.Spec) ([]FaultRow, *obs.Observer, error) {
	cfg = cfg.withDefaults()
	n := len(FaultSweepArchs) * len(rates)
	var o *obs.Observer
	if ospec.Enabled() {
		labels := make([]string, n)
		for i := range labels {
			labels[i] = fmt.Sprintf("faultsweep/%s/loss=%g",
				FaultSweepArchs[i/len(rates)], rates[i%len(rates)])
		}
		o = obs.New(ospec, labels...)
	}
	rows := make([]FaultRow, n)
	errs := make([]error, n)
	forEachCell(n, parallelism, func(i int) {
		arch := FaultSweepArchs[i/len(rates)]
		rate := rates[i%len(rates)]
		row, err := faultCell(sp, arch, rate, cfg, uint64(i), o.Cell(i))
		if err != nil {
			errs[i] = fmt.Errorf("faultsweep: %s at loss %g: %w", arch, rate, err)
			return
		}
		rows[i] = row
	})
	if err := firstError(errs); err != nil {
		return nil, nil, err
	}
	return rows, o, nil
}

// faultCell runs one (arch, rate) cell.
func faultCell(sp spec.Spec, arch string, rate float64, cfg FaultSweepConfig, cell uint64, oc *obs.Cell) (FaultRow, error) {
	d := sp.MustDerive()
	fspec := d.Spec.Fault
	fspec.DropProb = rate

	cellSeed := cfg.Seed + cell*0x9e3779b97f4a7c15
	inj := fault.NewInjector(fspec, cellSeed)
	eng := sim.NewEngine()
	eng.SetWatchdog(sim.Watchdog{MaxEvents: cfg.EventBudget})

	tx, rx, reader, err := faultEndpoints(d, arch, fspec, eng, inj, cellSeed)
	if err != nil {
		return FaultRow{}, err
	}

	p := nic.Packet{Size: cfg.Size}
	txCost := tx.TX(p).Total()
	rxCost := rx.RX(p).Total()
	path := ethernet.LossyPath{Fabric: d.Fabric(d.SwitchLatency), Inj: inj,
		Obs: ethernet.NewPathObs(oc.Metrics(), arch+".path")}
	rt := &nic.Retransmitter{Eng: eng, Policy: fspec.NetPolicy(), Counters: &inj.Counters,
		Trace: oc.Track(arch + "/retrans")}
	if reader != nil {
		reader.Observe(oc.Track(arch + "/nvdimmp"))
	}
	obs.NewEngineProbe(oc.Metrics(), arch+".engine").Attach(eng)

	// The inter-packet gap only spaces sends out; it is not part of any
	// latency sample.
	const gap = 100 * sim.Nanosecond
	var hist stats.Histogram
	delivered, failed := 0, 0

	var send func(i int)
	next := func(i int) { eng.Schedule(gap, func() { send(i + 1) }) }
	send = func(i int) {
		if i >= cfg.Packets {
			return
		}
		start := eng.Now()
		rt.Send(
			func(int) (fault.Outcome, sim.Time) { return path.Attempt(p.Size) },
			func(attempts int, err error) {
				if err != nil {
					failed++
					next(i)
					return
				}
				// Wire time plus every retransmit timeout the packet paid.
				sample := txCost + (eng.Now() - start) + rxCost
				if reader == nil {
					hist.Observe(sample)
					delivered++
					next(i)
					return
				}
				// NetDIMM receive path with memory faults armed: the header
				// read goes through the NVDIMM-P recovery machinery.
				reader.Read(int64(i%32)*2048, func(lat sim.Time, err error) {
					if err != nil {
						failed++
					} else {
						hist.Observe(sample + lat)
						delivered++
					}
					next(i)
				})
			})
	}
	send(0)
	eng.Run()
	if err := eng.Err(); err != nil {
		return FaultRow{}, err
	}
	fault.PublishCounters(oc.Metrics(), arch+".fault", inj.Counters)

	return FaultRow{
		Arch:      arch,
		LossRate:  rate,
		Mean:      hist.Mean(),
		P50:       hist.Percentile(50),
		P99:       hist.Percentile(99),
		Delivered: delivered,
		Failed:    failed,
		Counters:  inj.Counters,
		Hist:      &hist,
	}, nil
}

// faultEndpoints builds the cell's tx/rx machines and, for the NetDIMM
// architecture with memory faults injected, the recovering NVDIMM-P reader
// used on the receive path.
func faultEndpoints(d *spec.Derived, arch string, fspec fault.Spec, eng *sim.Engine, inj *fault.Injector, seed uint64) (tx, rx driver.Machine, reader *memctrl.AsyncReader, err error) {
	switch arch {
	case "dNIC":
		return d.NewDNIC(false), d.NewDNIC(false), nil, nil
	case "iNIC":
		return d.NewINIC(false), d.NewINIC(false), nil, nil
	case "NetDIMM":
		ndTX, err := d.NewNetDIMM(2*seed + 1)
		if err != nil {
			return nil, nil, nil, err
		}
		ndRX, err := d.NewNetDIMM(2*seed + 2)
		if err != nil {
			return nil, nil, nil, err
		}
		if fspec.MemEnabled() {
			cfg := d.Core
			cfg.Seed = seed
			dev := core.NewDevice(eng, cfg)
			tracker := nvdimmp.NewTracker(cfg.Protocol, 64)
			tracker.SetTimeout(fspec.MemDeadline())
			reader = memctrl.NewAsyncReader(eng, tracker,
				func(addr int64, done func()) {
					dev.HostReadLine(addr, func(bool, sim.Time) { done() })
				}, inj, fspec.MemPolicy())
		}
		return ndTX, ndRX, reader, nil
	default:
		return nil, nil, nil, fmt.Errorf("unknown architecture %q", arch)
	}
}
