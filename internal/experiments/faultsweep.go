package experiments

import (
	"fmt"

	"netdimm/internal/core"
	"netdimm/internal/driver"
	"netdimm/internal/ethernet"
	"netdimm/internal/fault"
	"netdimm/internal/memctrl"
	"netdimm/internal/nic"
	"netdimm/internal/nvdimmp"
	"netdimm/internal/sim"
	"netdimm/internal/spec"
	"netdimm/internal/stats"
)

// FaultSweepArchs are the architectures compared by the fault sweep, in
// output order.
var FaultSweepArchs = []string{"dNIC", "iNIC", "NetDIMM"}

// FaultSweepConfig parameterises one fault sweep.
type FaultSweepConfig struct {
	// Size is the packet payload size in bytes (default nic.MTU).
	Size int
	// Packets is how many packets each cell delivers (default 200).
	Packets int
	// EventBudget bounds each cell's engine via the watchdog, so a
	// pathological configuration (unlimited retries at 100% loss) aborts
	// with a diagnostic error instead of spinning (default 2,000,000).
	EventBudget uint64
	// Seed perturbs every cell's fault stream.
	Seed uint64
}

// DefaultFaultSweepConfig returns the sweep defaults.
func DefaultFaultSweepConfig() FaultSweepConfig {
	return FaultSweepConfig{Size: nic.MTU, Packets: 200, EventBudget: 2_000_000}
}

func (c FaultSweepConfig) withDefaults() FaultSweepConfig {
	def := DefaultFaultSweepConfig()
	if c.Size <= 0 {
		c.Size = def.Size
	}
	if c.Packets <= 0 {
		c.Packets = def.Packets
	}
	if c.EventBudget == 0 {
		c.EventBudget = def.EventBudget
	}
	return c
}

// FaultRow is one (architecture, loss rate) cell of the fault sweep:
// one-way latency statistics over the delivered packets, plus the fault and
// recovery tallies of the cell's injector.
type FaultRow struct {
	Arch     string
	LossRate float64
	Mean     sim.Time
	P50      sim.Time
	P99      sim.Time
	// Delivered counts packets that completed end to end (including any
	// NVDIMM-P recovery on the NetDIMM receive path); Failed counts packets
	// abandoned after the retry cap.
	Delivered int
	Failed    int
	Counters  stats.FaultCounters
}

// FaultSweep measures one-way latency degradation under injected frame
// loss for the three NIC architectures. For each (arch, rate) cell it runs
// an event-driven delivery loop on a fresh engine: driver TX cost, then the
// lossy wire with NIC retransmit/backoff recovery, then driver RX; on the
// NetDIMM receive path an additional NVDIMM-P header read runs through the
// RDY-timeout recovery machinery when the spec injects memory faults. The
// sweep overrides only Spec.Fault.DropProb per cell — every other fault
// knob (corruption, port drops, RDY loss, retry policy) comes from sp.
//
// Cells are deterministic: each builds its own engine and injector from a
// per-cell seed, so results are identical sequentially and in parallel.
func FaultSweep(sp spec.Spec, rates []float64, cfg FaultSweepConfig, parallelism int) ([]FaultRow, error) {
	cfg = cfg.withDefaults()
	n := len(FaultSweepArchs) * len(rates)
	rows := make([]FaultRow, n)
	errs := make([]error, n)
	forEachCell(n, parallelism, func(i int) {
		arch := FaultSweepArchs[i/len(rates)]
		rate := rates[i%len(rates)]
		row, err := faultCell(sp, arch, rate, cfg, uint64(i))
		if err != nil {
			errs[i] = fmt.Errorf("faultsweep: %s at loss %g: %w", arch, rate, err)
			return
		}
		rows[i] = row
	})
	if err := firstError(errs); err != nil {
		return nil, err
	}
	return rows, nil
}

// faultCell runs one (arch, rate) cell.
func faultCell(sp spec.Spec, arch string, rate float64, cfg FaultSweepConfig, cell uint64) (FaultRow, error) {
	d := sp.MustDerive()
	fspec := d.Spec.Fault
	fspec.DropProb = rate

	cellSeed := cfg.Seed + cell*0x9e3779b97f4a7c15
	inj := fault.NewInjector(fspec, cellSeed)
	eng := sim.NewEngine()
	eng.SetWatchdog(sim.Watchdog{MaxEvents: cfg.EventBudget})

	tx, rx, reader, err := faultEndpoints(d, arch, fspec, eng, inj, cellSeed)
	if err != nil {
		return FaultRow{}, err
	}

	p := nic.Packet{Size: cfg.Size}
	txCost := tx.TX(p).Total()
	rxCost := rx.RX(p).Total()
	path := ethernet.LossyPath{Fabric: d.Fabric(d.SwitchLatency), Inj: inj}
	rt := &nic.Retransmitter{Eng: eng, Policy: fspec.NetPolicy(), Counters: &inj.Counters}

	// The inter-packet gap only spaces sends out; it is not part of any
	// latency sample.
	const gap = 100 * sim.Nanosecond
	var hist stats.Histogram
	delivered, failed := 0, 0

	var send func(i int)
	next := func(i int) { eng.Schedule(gap, func() { send(i + 1) }) }
	send = func(i int) {
		if i >= cfg.Packets {
			return
		}
		start := eng.Now()
		rt.Send(
			func(int) (fault.Outcome, sim.Time) { return path.Attempt(p.Size) },
			func(attempts int, err error) {
				if err != nil {
					failed++
					next(i)
					return
				}
				// Wire time plus every retransmit timeout the packet paid.
				sample := txCost + (eng.Now() - start) + rxCost
				if reader == nil {
					hist.Observe(sample)
					delivered++
					next(i)
					return
				}
				// NetDIMM receive path with memory faults armed: the header
				// read goes through the NVDIMM-P recovery machinery.
				reader.Read(int64(i%32)*2048, func(lat sim.Time, err error) {
					if err != nil {
						failed++
					} else {
						hist.Observe(sample + lat)
						delivered++
					}
					next(i)
				})
			})
	}
	send(0)
	eng.Run()
	if err := eng.Err(); err != nil {
		return FaultRow{}, err
	}

	return FaultRow{
		Arch:      arch,
		LossRate:  rate,
		Mean:      hist.Mean(),
		P50:       hist.Percentile(50),
		P99:       hist.Percentile(99),
		Delivered: delivered,
		Failed:    failed,
		Counters:  inj.Counters,
	}, nil
}

// faultEndpoints builds the cell's tx/rx machines and, for the NetDIMM
// architecture with memory faults injected, the recovering NVDIMM-P reader
// used on the receive path.
func faultEndpoints(d *spec.Derived, arch string, fspec fault.Spec, eng *sim.Engine, inj *fault.Injector, seed uint64) (tx, rx driver.Machine, reader *memctrl.AsyncReader, err error) {
	switch arch {
	case "dNIC":
		return d.NewDNIC(false), d.NewDNIC(false), nil, nil
	case "iNIC":
		return d.NewINIC(false), d.NewINIC(false), nil, nil
	case "NetDIMM":
		ndTX, err := d.NewNetDIMM(2*seed + 1)
		if err != nil {
			return nil, nil, nil, err
		}
		ndRX, err := d.NewNetDIMM(2*seed + 2)
		if err != nil {
			return nil, nil, nil, err
		}
		if fspec.MemEnabled() {
			cfg := d.Core
			cfg.Seed = seed
			dev := core.NewDevice(eng, cfg)
			tracker := nvdimmp.NewTracker(cfg.Protocol, 64)
			tracker.SetTimeout(fspec.MemDeadline())
			reader = memctrl.NewAsyncReader(eng, tracker,
				func(addr int64, done func()) {
					dev.HostReadLine(addr, func(bool, sim.Time) { done() })
				}, inj, fspec.MemPolicy())
		}
		return ndTX, ndRX, reader, nil
	default:
		return nil, nil, nil, fmt.Errorf("unknown architecture %q", arch)
	}
}
