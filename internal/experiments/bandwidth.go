package experiments

import (
	"netdimm/internal/driver"
	"netdimm/internal/nic"
	"netdimm/internal/sim"
	"netdimm/internal/spec"
	"netdimm/internal/stats"
)

// BandwidthResult reports the sustained-throughput check of Sec. 5.2: the
// paper notes a caveat — NetDIMM sits on one memory channel — but shows it
// still delivers full 40Gbps line rate, because a single DDR4 channel's
// 12.8GB/s (102.4Gbps) far exceeds the NIC rate.
type BandwidthResult struct {
	Arch string
	// OfferedGbps is the line rate of the ingress stream.
	OfferedGbps float64
	// AchievedGbps is the sustained delivery rate to the application.
	AchievedGbps float64
	// PerPacketRx is the mean RX processing time per MTU packet.
	PerPacketRx sim.Time
	// ChannelHeadroom is offered NIC bandwidth / local channel bandwidth.
	ChannelHeadroom float64
}

// Sustained reports whether the architecture keeps up with line rate.
func (r BandwidthResult) Sustained() bool {
	return r.AchievedGbps >= 0.95*r.OfferedGbps
}

// RSSCores is the number of cores the polling driver spreads flows over
// (receive-side scaling); Table 1's CPU has eight cores, of which half
// serve the network stack in this experiment.
const RSSCores = 4

// Bandwidth streams MTU frames at 40GbE line rate through each
// architecture's RX path and measures whether processing keeps up. The RX
// path is the binding side: TX is paced by the same stages. Per-packet
// driver work spreads over RSSCores (receive-side scaling), as in any
// 40GbE deployment; NIC DMA and the wire pipeline with the CPU.
func Bandwidth(sp spec.Spec, packets int, parallelism int) ([]BandwidthResult, error) {
	if packets <= 0 {
		packets = 2000
	}

	// Each architecture is an independent cell with its own machine.
	out := make([]BandwidthResult, 3)
	errs := make([]error, 3)
	forEachCell(3, parallelism, func(i int) {
		d := sp.MustDerive()
		gap := d.Link.SerializeTime(nic.MTU) // line-rate arrival spacing
		wireBytes := float64(nic.MTU + nic.EthernetOverheadBytes)
		switch i {
		case 0:
			// NetDIMM: event-driven; packets arrive every gap and the
			// driver RX path must finish before the backlog grows without
			// bound. The device pipeline overlaps DMA with driver work, so
			// sustained throughput is bounded by the slower of the two; we
			// measure the serialized driver cost as the conservative bound.
			nd, err := d.NewNetDIMM(11)
			if err != nil {
				errs[i] = err
				return
			}
			var busy sim.Time
			for p := 0; p < packets; p++ {
				busy += driverSerial(nd.RX(nic.Packet{Size: nic.MTU}))
			}
			out[i] = result("NetDIMM", gap, busy/sim.Time(packets), wireBytes,
				d.Core.LocalTiming.BandwidthBytesPerSec)
		default:
			// dNIC and iNIC: analytic per-packet RX costs.
			var m driver.Machine
			if i == 1 {
				m = d.NewDNIC(false)
			} else {
				m = d.NewINIC(false)
			}
			var sum sim.Time
			for p := 0; p < 32; p++ {
				sum += driverSerial(m.RX(nic.Packet{Size: nic.MTU}))
			}
			out[i] = result(m.Name(), gap, sum/32, wireBytes, 0)
		}
	})
	if err := firstError(errs); err != nil {
		return nil, err
	}
	return out, nil
}

// driverSerial is the per-packet work that cannot overlap with the next
// packet's reception: the CPU-side driver stages. Wire transfer and NIC
// DMA pipeline with the driver (the NIC hardware runs in parallel with
// the CPU), so they do not bound steady-state throughput.
func driverSerial(b stats.Breakdown) sim.Time {
	return b.Total() - b[stats.Wire] - b[stats.RxDMA] - b[stats.TxDMA]
}

func result(arch string, gap, perPkt sim.Time, wireBytes, channelBW float64) BandwidthResult {
	offered := wireBytes * 8 / gap.Seconds() / 1e9
	achieved := offered
	effective := perPkt / RSSCores
	if effective > gap {
		// Processing-bound: deliveries are spaced by the per-core work
		// divided across the RSS cores.
		achieved = wireBytes * 8 / effective.Seconds() / 1e9
	}
	r := BandwidthResult{
		Arch:         arch,
		OfferedGbps:  offered,
		AchievedGbps: achieved,
		PerPacketRx:  perPkt,
	}
	if channelBW > 0 {
		r.ChannelHeadroom = offered * 1e9 / 8 / channelBW
	}
	return r
}
