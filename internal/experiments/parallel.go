package experiments

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Every figure in this package is a sweep over independent simulation
// cells: each cell builds its own sim.Engine and machines, so cells share
// no mutable state and can run on separate goroutines. forEachCell is the
// bounded worker pool that fans them out.
//
// Determinism guarantee: a cell writes only its own index of a pre-sized
// result slice, cell inputs are pure values, and every random stream is
// seeded per cell — so the assembled output is byte-identical to the
// sequential path regardless of scheduling. The guard tests in
// determinism_test.go assert exactly that.
//
// The parallelism knob threaded through this package (and the public Run*
// wrappers) means: <= 0 use runtime.GOMAXPROCS(0), 1 run sequentially,
// N use at most N workers.

// workers resolves a parallelism knob for n cells.
func workers(parallelism, n int) int {
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	if parallelism > n {
		parallelism = n
	}
	if parallelism < 1 {
		parallelism = 1
	}
	return parallelism
}

// forEachCell runs cell(i) for every i in [0, n) on at most `parallelism`
// goroutines (see the knob semantics above). Cells are claimed from an
// atomic counter, so workers stay busy even when cell costs are skewed. A
// panic in any cell is re-raised on the caller's goroutine after all
// workers have drained, matching the sequential failure mode.
func forEachCell(n, parallelism int, cell func(i int)) {
	w := workers(parallelism, n)
	if w <= 1 {
		for i := 0; i < n; i++ {
			cell(i)
		}
		return
	}
	var (
		next      atomic.Int64
		wg        sync.WaitGroup
		panicOnce sync.Once
		panicked  any
	)
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicOnce.Do(func() { panicked = r })
				}
			}()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				cell(i)
			}
		}()
	}
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
}

// ForEachCell exposes the bounded worker pool to the other harness layers
// (the campaign runner fans its grid cells out through it), with the same
// determinism and panic-propagation contract as the in-package sweeps.
func ForEachCell(n, parallelism int, cell func(i int)) { forEachCell(n, parallelism, cell) }

// firstError returns the first non-nil error of a per-cell error slice, in
// cell order — the deterministic analogue of the sequential early return.
func firstError(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
