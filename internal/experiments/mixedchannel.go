package experiments

import (
	"netdimm/internal/core"
	"netdimm/internal/memctrl"
	"netdimm/internal/nvdimmp"
	"netdimm/internal/obs"
	"netdimm/internal/sim"
	"netdimm/internal/spec"
	"netdimm/internal/stats"
)

// MixedChannelResult reports the DDR5 mixed-channel experiment: a
// conventional DIMM and a NetDIMM share one channel; the asynchronous
// protocol lets deterministic DDR reads complete past in-flight
// non-deterministic NetDIMM reads (paper Sec. 2.2 and 4.1: "The DDR5
// support of asynchronous memory request completion allows mixing DRAM
// and NetDIMM on a same memory channel").
type MixedChannelResult struct {
	DDRReads          int
	NetDIMMReads      int
	DDRMeanLatency    sim.Time
	NetDIMMMean       sim.Time
	OutOfOrder        uint64 // completions that overtook an older transaction
	MaxOutstandingIDs int
}

// MixedChannel interleaves DDR reads (served by a plain DDR4 rank) with
// NetDIMM reads (served by the buffer device through nCache misses into
// busy local DRAM) over one channel, tracking every transaction with the
// NVDIMM-P request-ID machinery.
func MixedChannel(sp spec.Spec, n int, seed uint64) (MixedChannelResult, error) {
	res, _, err := MixedChannelObserved(sp, n, seed, obs.Spec{})
	return res, err
}

// MixedChannelObserved is MixedChannel with the observability plane: one
// cell ("mixed") collects DDR controller transaction spans and queue
// depth, NetDIMM device metrics, an NVDIMM-P outstanding-transaction
// series, and an engine probe. A zero ospec yields a nil observer and the
// exact MixedChannel behaviour.
func MixedChannelObserved(sp spec.Spec, n int, seed uint64, ospec obs.Spec) (MixedChannelResult, *obs.Observer, error) {
	if n <= 0 {
		n = 200
	}
	var o *obs.Observer
	if ospec.Enabled() {
		o = obs.New(ospec, "mixed")
	}
	cell := o.Cell(0)
	d := sp.MustDerive()
	eng := sim.NewEngine()
	ddr := memctrl.New(eng, d.MC, memctrl.NewRankSet(d.HostTiming, 1))
	ddr.Observe(cell.Track("ddr/mc"), cell.Metrics().Series("ddr.readq"))
	obs.NewEngineProbe(cell.Metrics(), "engine").Attach(eng)

	cfg := d.Core
	cfg.Seed = seed
	dev := core.NewDevice(eng, cfg)
	dev.Observe(cell, "netdimm")
	// Keep the NetDIMM's local DRAM busy with nNIC traffic, so host reads
	// see non-deterministic latency (the arbitration of Sec. 4.1).
	for p := 0; p < 32; p++ {
		dev.ReceivePacket(int64(p)*2048, 1514, nil)
	}

	tracker := nvdimmp.NewTracker(cfg.Protocol, 64)
	if s := cell.Metrics().Series("nvdimmp.outstanding"); s != nil {
		tracker.SetProbe(func(now sim.Time, outstanding int) { s.Sample(now, int64(outstanding)) })
	}
	rng := sim.NewRand(seed)

	var res MixedChannelResult
	var ddrHist, ndHist stats.Histogram
	maxOut := 0

	for i := 0; i < n; i++ {
		if rng.Float64() < 0.5 {
			// DDR read: deterministic timing, no request ID needed.
			start := eng.Now()
			ddr.Submit(&memctrl.Request{
				Addr: rng.Int63n(1<<20) * 64,
				Done: func(r memctrl.Response) { ddrHist.Observe(r.Completed - start) },
			})
			res.DDRReads++
		} else {
			// NetDIMM read: issue an XRD with a request ID; RDY fires when
			// the device stages the data; SEND completes it. A third of the
			// reads target freshly received packet headers, which hit
			// nCache and complete fast — overtaking older in-flight misses
			// (the out-of-order completions the protocol exists for).
			addr := rng.Int63n(1<<20) * 64
			if rng.Float64() < 0.33 {
				slot := int64(rng.Intn(32))
				dev.ReceivePacket(slot*2048, 128, nil) // refresh the header line
				addr = slot * 2048
			}
			tx, err := tracker.Issue(eng.Now(), addr)
			if err != nil {
				// ID space exhausted: stall this iteration (the MC would).
				eng.Schedule(20*sim.Nanosecond, func() {})
				eng.Run()
				i--
				continue
			}
			start := eng.Now()
			id := tx.ID
			dev.HostReadLine(addr, func(hit bool, lat sim.Time) {
				tracker.Ready(id, eng.Now())
				if _, err := tracker.Complete(id); err == nil {
					ndHist.Observe(eng.Now() - start)
				}
			})
			res.NetDIMMReads++
		}
		if o := tracker.Outstanding(); o > maxOut {
			maxOut = o
		}
		// Interleave issue with a short think time so transactions overlap.
		eng.Schedule(sim.Time(rng.Range(5, 40))*sim.Nanosecond, func() {})
		eng.RunUntil(eng.Now() + sim.Time(rng.Range(5, 40))*sim.Nanosecond)
	}
	eng.Run()

	_, _, ooo := tracker.Stats()
	res.DDRMeanLatency = ddrHist.Mean()
	res.NetDIMMMean = ndHist.Mean()
	res.OutOfOrder = ooo
	res.MaxOutstandingIDs = maxOut
	return res, o, nil
}
