package experiments

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"netdimm/internal/obs"
	"netdimm/internal/sim"
	"netdimm/internal/spec"
)

// collTestSpec returns a spec sized for fast collective cells.
func collTestSpec() spec.Spec {
	sp := spec.TableOne()
	sp.Collective.PayloadBytes = 8 << 10
	return sp
}

func TestCollSweepRows(t *testing.T) {
	sp := collTestSpec()
	rows, err := CollSweep(sp, []int{4, 8}, nil, CollSweepConfig{Seed: 3}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(LoadSweepArchs)*3*2 {
		t.Fatalf("got %d rows, want %d", len(rows), len(LoadSweepArchs)*3*2)
	}
	for _, r := range rows {
		if r.Completion <= 0 {
			t.Errorf("%s/%s/%d: completion %v not positive", r.Arch, r.Op, r.Ranks, r.Completion)
		}
		if r.Dropped != 0 {
			t.Errorf("%s/%s/%d: %d drops in an uncongested cell", r.Arch, r.Op, r.Ranks, r.Dropped)
		}
		if r.Frames < r.Delivered || r.Delivered == 0 {
			t.Errorf("%s/%s/%d: frames=%d delivered=%d", r.Arch, r.Op, r.Ranks, r.Frames, r.Delivered)
		}
		if r.LinkUtilization < 0 || r.LinkUtilization > 1 {
			t.Errorf("%s/%s/%d: link utilisation %g out of range", r.Arch, r.Op, r.Ranks, r.LinkUtilization)
		}
	}
	// The ring's message count is exact: 2(N-1) steps x N ranks for
	// allreduce, (N-1) x N for reduce-scatter; the tree delivers N-1.
	for _, r := range rows {
		var want int
		switch r.Op {
		case "allreduce":
			want = 2 * (r.Ranks - 1) * r.Ranks
		case "reducescatter":
			want = (r.Ranks - 1) * r.Ranks
		case "broadcast":
			want = r.Ranks - 1
		}
		if r.Delivered != want {
			t.Errorf("%s/%s/%d: delivered %d messages, want %d", r.Arch, r.Op, r.Ranks, r.Delivered, want)
		}
	}
}

// TestCollCellMatchesReference is the fabric-level property test: for
// random rank counts, payload sizes and chunkings, every operation
// executed over the simulated fabric must match the sequential reference —
// collCell runs collective.Verify (element-wise sum / root-copy check)
// before returning a row, so an error here is a data-plane divergence.
func TestCollCellMatchesReference(t *testing.T) {
	rng := sim.NewRand(19)
	for trial := 0; trial < 6; trial++ {
		sp := spec.TableOne()
		sp.Collective.PayloadBytes = 8 * (1 + int(rng.Intn(2000)))
		sp.Collective.ChunkBytes = []int{128, 512, 1514}[rng.Intn(3)]
		ranks := 2 + int(rng.Intn(8))
		arch := LoadSweepArchs[rng.Intn(len(LoadSweepArchs))]
		shape, err := resolveColl(sp)
		if err != nil {
			t.Fatal(err)
		}
		for _, op := range []string{"allreduce", "broadcast", "reducescatter"} {
			row, err := collCell(sp, arch, op, ranks, shape, CollSweepConfig{EventBudget: 8_000_000, Seed: uint64(trial)}, nil)
			if err != nil {
				t.Fatalf("trial %d %s/%s/%d (payload %d chunk %d): %v",
					trial, arch, op, ranks, shape.payload, shape.chunk, err)
			}
			if row.Completion <= 0 {
				t.Fatalf("trial %d %s/%s/%d: zero completion", trial, arch, op, ranks)
			}
		}
	}
}

// TestCollSweepShardedDeterminism pins the sweep's cross-shard contract:
// the single-engine path and every shard count produce byte-identical
// rows.
func TestCollSweepShardedDeterminism(t *testing.T) {
	base := collTestSpec()
	var want []CollRow
	for _, shards := range []int{0, 1, 2, 4} {
		sp := base
		sp.Load.Shards = shards
		rows, err := CollSweep(sp, []int{4, 5, 8}, nil, CollSweepConfig{Seed: 7}, 4)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if want == nil {
			want = rows
			continue
		}
		if !reflect.DeepEqual(rows, want) {
			for i := range rows {
				if !reflect.DeepEqual(rows[i], want[i]) {
					t.Fatalf("shards=%d row %d = %+v, want %+v", shards, i, rows[i], want[i])
				}
			}
			t.Fatalf("shards=%d rows diverge", shards)
		}
	}
}

// TestCollSweepParallelDeterminism pins the cell-parallelism contract.
func TestCollSweepParallelDeterminism(t *testing.T) {
	sp := collTestSpec()
	seq, err := CollSweep(sp, []int{4, 8}, []string{"allreduce"}, CollSweepConfig{Seed: 5}, 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := CollSweep(sp, []int{4, 8}, []string{"allreduce"}, CollSweepConfig{Seed: 5}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Fatal("parallel rows diverge from sequential")
	}
}

// TestCollSweepStallDiagnostic forces tail drops (a 1-deep port buffer
// against a 1Gbps wire that serializes far slower than any TX path) and
// checks the cell fails with the actionable stall diagnostic instead of
// reporting a bogus completion time.
func TestCollSweepStallDiagnostic(t *testing.T) {
	sp := collTestSpec()
	sp.NetworkGbps = 1
	sp.Load.PortBuffer = 1
	sp.Collective.PayloadBytes = 64 << 10
	_, err := CollSweep(sp, []int{4}, []string{"broadcast"}, CollSweepConfig{Seed: 1}, 2)
	if err == nil {
		t.Fatal("1-deep port buffer produced no stall")
	}
	if !strings.Contains(err.Error(), "stalled") || !strings.Contains(err.Error(), "PortBuffer") {
		t.Fatalf("stall diagnostic missing from %q", err)
	}
}

func TestCollSweepPinnedSpec(t *testing.T) {
	sp := collTestSpec()
	sp.Collective.Op = "broadcast"
	sp.Collective.Ranks = 4
	rows, err := CollSweep(sp, nil, nil, CollSweepConfig{Seed: 2}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(LoadSweepArchs) {
		t.Fatalf("pinned spec gave %d rows, want %d", len(rows), len(LoadSweepArchs))
	}
	for _, r := range rows {
		if r.Op != "broadcast" || r.Ranks != 4 {
			t.Fatalf("pinned spec ran cell %s/%d", r.Op, r.Ranks)
		}
	}
}

func TestCollSweepRejectsBadAxes(t *testing.T) {
	sp := collTestSpec()
	if _, err := CollSweep(sp, []int{1}, nil, CollSweepConfig{}, 1); err == nil {
		t.Fatal("rank count 1 accepted")
	}
	if _, err := CollSweep(sp, nil, []string{"alltoall"}, CollSweepConfig{}, 1); err == nil {
		t.Fatal("unknown op accepted")
	}
}

func TestCollSweepObserved(t *testing.T) {
	sp := collTestSpec()
	rows, o, err := CollSweepObserved(sp, []int{4}, []string{"allreduce"},
		CollSweepConfig{Seed: 3}, 2, obs.Spec{Trace: true, Metrics: true})
	if err != nil {
		t.Fatal(err)
	}
	if o == nil {
		t.Fatal("enabled ospec returned nil observer")
	}
	if len(rows) != len(LoadSweepArchs) {
		t.Fatalf("got %d rows", len(rows))
	}
	for i, arch := range LoadSweepArchs {
		c := o.Cell(i)
		wantLabel := fmt.Sprintf("collsweep/%s/op=allreduce/ranks=4", arch)
		if c.Label() != wantLabel {
			t.Fatalf("cell %d label %q, want %q", i, c.Label(), wantLabel)
		}
		if got := len(c.Tracks()); got != 4 {
			t.Fatalf("cell %d has %d tracks, want one per rank", i, got)
		}
		for _, track := range c.Tracks() {
			if len(track.Spans()) == 0 {
				t.Fatalf("cell %d track %v has no step spans", i, track)
			}
		}
	}
}
