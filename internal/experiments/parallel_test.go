package experiments

import (
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	procs := runtime.GOMAXPROCS(0)
	cases := []struct {
		parallelism, n, want int
	}{
		{1, 10, 1},            // explicit sequential
		{4, 10, 4},            // capped by the knob
		{4, 2, 2},             // capped by the cell count
		{100, 3, 3},           // parallelism far above n
		{0, procs + 5, procs}, // auto: GOMAXPROCS
		{-3, procs + 5, procs},
		{0, 0, 1}, // no cells still resolves to one (idle) worker
		{5, 0, 1},
	}
	for _, tc := range cases {
		if got := workers(tc.parallelism, tc.n); got != tc.want {
			t.Errorf("workers(%d, %d) = %d, want %d", tc.parallelism, tc.n, got, tc.want)
		}
	}
}

func TestForEachCellVisitsEveryIndexOnce(t *testing.T) {
	for _, parallelism := range []int{1, 3, 64} {
		const n = 100
		var visits [n]atomic.Int32
		forEachCell(n, parallelism, func(i int) { visits[i].Add(1) })
		for i := range visits {
			if got := visits[i].Load(); got != 1 {
				t.Fatalf("parallelism %d: cell %d visited %d times", parallelism, i, got)
			}
		}
	}
}

func TestForEachCellZeroCells(t *testing.T) {
	for _, parallelism := range []int{0, 1, 8} {
		called := false
		forEachCell(0, parallelism, func(i int) { called = true })
		if called {
			t.Fatalf("parallelism %d: cell invoked for n=0", parallelism)
		}
	}
}

func TestForEachCellParallelismAboveN(t *testing.T) {
	// More workers than cells: the pool must clamp, drain exactly n cells
	// and terminate (a worker that claims i >= n must exit, not spin).
	var count atomic.Int32
	forEachCell(3, 50, func(i int) { count.Add(1) })
	if got := count.Load(); got != 3 {
		t.Fatalf("ran %d cells, want 3", got)
	}
}

// A cell panic must surface on the caller's goroutine in both the
// sequential and the worker-pool path — the parallel fan-out may not
// swallow it (nor crash the process from a worker goroutine).
func TestForEachCellPanicReRaised(t *testing.T) {
	sentinel := errors.New("cell 7 exploded")
	for _, parallelism := range []int{1, 8} {
		func() {
			defer func() {
				if r := recover(); r != sentinel {
					t.Errorf("parallelism %d: recovered %v, want sentinel", parallelism, r)
				}
			}()
			forEachCell(20, parallelism, func(i int) {
				if i == 7 {
					panic(sentinel)
				}
			})
			t.Errorf("parallelism %d: no panic reached the caller", parallelism)
		}()
	}
}

func TestFirstError(t *testing.T) {
	e1, e2 := errors.New("one"), errors.New("two")
	if err := firstError([]error{nil, nil, nil}); err != nil {
		t.Errorf("all-nil: %v", err)
	}
	if err := firstError(nil); err != nil {
		t.Errorf("empty slice: %v", err)
	}
	// Cell order, not completion order: the first non-nil wins.
	if err := firstError([]error{nil, e2, e1}); err != e2 {
		t.Errorf("got %v, want %v", err, e2)
	}
}
