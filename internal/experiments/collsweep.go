package experiments

import (
	"fmt"
	"math"

	"netdimm/internal/collective"
	"netdimm/internal/ethernet"
	"netdimm/internal/nic"
	"netdimm/internal/obs"
	"netdimm/internal/sim"
	"netdimm/internal/spec"
)

// The collective sweep measures the distributed-ML traffic pattern the
// paper never did: N ranks executing Ring AllReduce, binomial-tree
// Broadcast or Reduce-Scatter over the switched fabric, every rank both
// sending and receiving under a per-step dependency graph instead of an
// open-loop arrival process. The axes are architecture x operation x rank
// count; the headline metric is operation completion time (the latest
// rank's last step), with per-step skew, wire bytes and link utilisation
// alongside — the numbers a training-job scheduler actually budgets.

// DefaultCollRankGrid is the default rank-count axis: powers of two from
// one small ring to a rack-scale 128, so the ring's linear step count and
// the tree's logarithmic depth both show their shape.
var DefaultCollRankGrid = []int{4, 8, 16, 32, 64, 128}

// minFrameBytes floors every collective wire frame at the classic
// minimum Ethernet frame size, so a zero-byte dependency token still pays
// a realistic wire cost.
const minFrameBytes = 64

// DefaultCollPortBuffer is the default fabric port depth for collective
// cells. Collective steps burst a whole chunk at once from every rank
// simultaneously, so the sweep defaults deeper than the load sweep's 64:
// a dropped frame does not just lengthen a tail here, it deadlocks the
// dependency graph.
const DefaultCollPortBuffer = 256

// CollSweepConfig parameterises one collective sweep; operation, payload
// and chunking come from the specification's Collective block, buffering
// and sharding from its Load block.
type CollSweepConfig struct {
	// EventBudget bounds each cell's engine via the watchdog (default
	// 8,000,000).
	EventBudget uint64
	// Seed perturbs the NetDIMM device seeds and every rank's payload
	// contents.
	Seed uint64
}

// DefaultCollSweepConfig returns the sweep defaults.
func DefaultCollSweepConfig() CollSweepConfig {
	return CollSweepConfig{EventBudget: 8_000_000}
}

func (c CollSweepConfig) withDefaults() CollSweepConfig {
	if c.EventBudget == 0 {
		c.EventBudget = DefaultCollSweepConfig().EventBudget
	}
	return c
}

// CollRow is one (architecture, operation, ranks) cell of the collective
// sweep.
type CollRow struct {
	Arch string
	// Op is the collective operation ("allreduce", "broadcast",
	// "reducescatter").
	Op string
	// Ranks is the cell's rank count; each rank is one fabric host.
	Ranks int
	// PayloadBytes is each rank's vector size.
	PayloadBytes int
	// Steps is the longest rank schedule (2(N-1) for the allreduce ring,
	// N-1 for reduce-scatter, the root's fan-out for the tree).
	Steps int
	// Completion is the operation's completion time: the instant the last
	// rank finishes its last step.
	Completion sim.Time
	// StepSkew is the worst per-step straggler spread across ranks.
	StepSkew sim.Time
	// BytesOnWire totals delivered frame bytes including Ethernet overhead.
	BytesOnWire int64
	// Frames counts delivered wire frames; Delivered counts completed
	// step messages (a message fragments into ceil(bytes/chunk) frames).
	Frames    int
	Delivered int
	// Dropped counts frames tail-dropped at any hop; any drop stalls the
	// dependency graph and fails the cell.
	Dropped int
	// Marked counts frames freshly ECN-marked at any fabric queue (zero
	// unless the spec's Fabric block enables ECN).
	Marked int
	// LinkUtilization is delivered wire occupancy averaged over all rank
	// links and the cell's makespan, in [0,1].
	LinkUtilization float64
}

// CollSweep runs the collective sweep: for every (architecture, operation,
// ranks) cell it executes the operation's full dependency graph over the
// spec's fabric and reports completion-time rows. Nil axes use all three
// operations and DefaultCollRankGrid; a spec whose Collective block pins
// Op or Ranks sweeps only that value. Each cell verifies the executed data
// plane against the sequential reference, so a sweep that returns rows has
// also proven the collective computed the right answer.
//
// Cells are deterministic: each builds its own engines, fabric, machines
// and payloads from per-cell seeds, so results are identical sequentially,
// in parallel, and at every Load.Shards count.
func CollSweep(sp spec.Spec, ranks []int, ops []string, cfg CollSweepConfig, parallelism int) ([]CollRow, error) {
	rows, _, err := CollSweepObserved(sp, ranks, ops, cfg, parallelism, obs.Spec{})
	return rows, err
}

// CollSweepObserved is CollSweep with the observability plane: when ospec
// enables collection, each cell gets a Cell labelled
// "collsweep/<arch>/op=<op>/ranks=<n>" with one trace track per rank
// (step spans), delivery/drop/mark counters, completion and skew gauges
// and engine probes. A zero ospec yields a nil observer and the exact
// CollSweep behaviour.
func CollSweepObserved(sp spec.Spec, ranks []int, ops []string, cfg CollSweepConfig, parallelism int, ospec obs.Spec) ([]CollRow, *obs.Observer, error) {
	cfg = cfg.withDefaults()
	if len(ops) == 0 {
		if sp.Collective.Op != "" {
			ops = []string{sp.Collective.Op}
		} else {
			ops = make([]string, len(collective.Ops))
			for i, op := range collective.Ops {
				ops[i] = op.String()
			}
		}
	}
	for _, name := range ops {
		if name == "" {
			return nil, nil, fmt.Errorf("collsweep: empty operation name")
		}
		if _, err := collective.ParseOp(name); err != nil {
			return nil, nil, fmt.Errorf("collsweep: %w", err)
		}
	}
	if len(ranks) == 0 {
		if sp.Collective.Ranks != 0 {
			ranks = []int{sp.Collective.Ranks}
		} else {
			ranks = DefaultCollRankGrid
		}
	}
	for _, n := range ranks {
		if n < 2 || n > collective.MaxRanks {
			return nil, nil, fmt.Errorf("collsweep: rank count must be between 2 and %d, got %d", collective.MaxRanks, n)
		}
	}
	shape, err := resolveColl(sp)
	if err != nil {
		return nil, nil, fmt.Errorf("collsweep: %w", err)
	}

	n := len(LoadSweepArchs) * len(ops) * len(ranks)
	axes := func(i int) (arch, op string, rk int) {
		arch = LoadSweepArchs[i/(len(ops)*len(ranks))]
		i %= len(ops) * len(ranks)
		return arch, ops[i/len(ranks)], ranks[i%len(ranks)]
	}
	var o *obs.Observer
	if ospec.Enabled() {
		labels := make([]string, n)
		for i := range labels {
			arch, op, rk := axes(i)
			labels[i] = fmt.Sprintf("collsweep/%s/op=%s/ranks=%d", arch, op, rk)
		}
		o = obs.New(ospec, labels...)
	}
	rows := make([]CollRow, n)
	errs := make([]error, n)
	forEachCell(n, parallelism, func(i int) {
		arch, opName, rk := axes(i)
		row, err := collCell(sp, arch, opName, rk, shape, cfg, o.Cell(i))
		if err != nil {
			errs[i] = fmt.Errorf("collsweep: %s op=%s ranks=%d: %w", arch, opName, rk, err)
			return
		}
		rows[i] = row
	})
	if err := firstError(errs); err != nil {
		return nil, nil, err
	}
	return rows, o, nil
}

// collShape is the resolved per-sweep geometry from the spec's Collective
// and Load blocks.
type collShape struct {
	payload    int // bytes per rank vector
	chunk      int // max frame payload bytes
	portBuffer int
	shards     int
}

func resolveColl(sp spec.Spec) (collShape, error) {
	if err := sp.Collective.Validate(); err != nil {
		return collShape{}, err
	}
	s := collShape{
		payload:    sp.Collective.PayloadBytes,
		chunk:      sp.Collective.ChunkBytes,
		portBuffer: sp.Load.PortBuffer,
		shards:     sp.Load.Shards,
	}
	if s.payload == 0 {
		s.payload = collective.DefaultPayloadBytes
	}
	if s.chunk == 0 {
		s.chunk = nic.MTU
	}
	if s.portBuffer == 0 {
		s.portBuffer = DefaultCollPortBuffer
	}
	return s, nil
}

// collCell runs one (arch, op, ranks) cell: the operation's full plan
// executed over the cell's fabric. Engine layout and sharding follow the
// rig contract (fabric plus every RX queue on shard 0, rank r's state
// machine and TX queue on r's host shard); a step message fragments into
// chunk-sized frames, each frame pays the architecture's TX cost on the
// sender, the fabric's queueing and the RX cost at the destination, and
// the message's delivery notification rides the echo path back to the
// destination rank's engine — so every Exec transition for rank r happens
// on rank r's engine and the data plane needs no locks.
func collCell(sp spec.Spec, arch, opName string, ranks int, shape collShape, cfg CollSweepConfig, oc *obs.Cell) (CollRow, error) {
	op, err := collective.ParseOp(opName)
	if err != nil {
		return CollRow{}, err
	}
	d := sp.MustDerive()
	rig := newCellRig(shape.shards, ranks, d.ShardLookahead(), cfg.EventBudget)
	link := d.Link

	txs, rxs, err := rackEndpoints(d, arch, ranks, cfg.Seed)
	if err != nil {
		return CollRow{}, err
	}

	reg := oc.Metrics()
	deliveredC := reg.Counter(arch + ".delivered")
	droppedC := reg.Counter(arch + ".dropped")
	markedC := reg.Counter(arch + ".ecn_marked")
	ep := obs.NewEngineProbe(reg, arch+".engine")
	probes := rig.attachProbes(ep)

	topo := d.NewTopology(rig.placement(), ranks, shape.portBuffer)

	// Payloads: one vector per rank, contents drawn from per-rank streams
	// so they are independent of op, architecture and sharding.
	elems := shape.payload / 8
	if elems < 1 {
		elems = 1
	}
	before := make([][]int64, ranks)
	data := make([][]int64, ranks)
	for r := range data {
		rng := sim.NewRand(cfg.Seed ^ 0xc0_11ec_71fe + uint64(r)*0x9e3779b97f4a7c15)
		before[r] = make([]int64, elems)
		for i := range before[r] {
			before[r][i] = rng.Int63n(1 << 40)
		}
		data[r] = append([]int64(nil), before[r]...)
	}

	// Per-rank driver queues: TX on the rank's engine, RX on the fabric
	// engine (frames already land there).
	txSrvs := make([]*serialServer, ranks)
	rxSrvs := make([]*serialServer, ranks)
	for r := range txSrvs {
		txSrvs[r] = &serialServer{eng: rig.hostEngine(r)}
		rxSrvs[r] = &serialServer{eng: rig.fabEng}
	}
	// Arm every rank's cross and echo channels in host order (the echo
	// path carries message-complete notifications back to the receiving
	// rank's engine, so it is always needed here, ECN or not).
	for r := 0; r < ranks; r++ {
		rig.armHost(r, true)
	}

	// Tallies: host-engine state is per-rank (no sharing across shards);
	// fabric-engine state is shared only among events on shard 0.
	seqs := make([]int, ranks)
	drops := make([]int, ranks)
	frames := 0
	messages := 0
	var bytesOnWire int64
	var wireBusy sim.Time

	// The transport: fragment the message into chunk-sized frames, pay
	// TX serialization per frame, inject, pay RX per frame, and fire the
	// executor's deliver on the destination rank's engine once the last
	// frame has cleared its RX queue.
	send := func(src, dst, step, bytes int, deliver func()) {
		eng := rig.hostEngine(src)
		tx, rxSrv := txs[src], rxSrvs[dst]
		nf := (bytes + shape.chunk - 1) / shape.chunk
		if nf < 1 {
			nf = 1 // a zero-byte chunk still carries the dependency token
		}
		seq := seqs[src]
		seqs[src]++
		remaining := nf
		for f := 0; f < nf; f++ {
			sz := shareCount(bytes, nf, f)
			if sz < minFrameBytes {
				sz = minFrameBytes
			}
			p := nic.Packet{ID: uint64(src)<<40 | uint64(seq)<<20 | uint64(f), Size: sz, Born: eng.Now()}
			txSrvs[src].Submit(tx.TX(p).Total(), func() {
				ok := topo.Inject(src, dst, ethernet.Frame{ID: p.ID, Bytes: p.Size}, func(fr ethernet.Frame) {
					rxSrv.Submit(rxs[dst].RX(p).Total(), func() {
						frames++
						bytesOnWire += int64(p.Size + nic.EthernetOverheadBytes)
						wireBusy += link.SerializeTime(p.Size)
						remaining--
						if remaining == 0 {
							messages++
							topo.EchoMark(dst, deliver)
						}
					})
				})
				if !ok {
					drops[src]++
				}
			})
		}
	}

	plan := collective.NewPlan(op, ranks)
	exec := collective.NewExec(plan, data, send,
		func(r int) sim.Time { return rig.hostEngine(r).Now() })
	for r := 0; r < ranks; r++ {
		r := r
		rig.hostEngine(r).At(0, func() { exec.Launch(r) })
	}

	if err := rig.run(); err != nil {
		return CollRow{}, err
	}
	if probes != nil {
		ep.Merge(probes...)
	}

	fstats := topo.Stats()
	dropped := int(fstats.Dropped + fstats.OutageDrops + fstats.BurstDrops)
	for _, n := range drops {
		dropped += n
	}
	if exec.DoneRanks() != ranks {
		rank, steps := exec.Progress()
		return CollRow{}, fmt.Errorf("collective stalled: %d/%d ranks finished, rank %d stuck after %d/%d steps with %d dropped frames (raise Load.PortBuffer above %d to absorb the step burst)",
			exec.DoneRanks(), ranks, rank, steps, plan.MaxSteps(), dropped, shape.portBuffer)
	}
	if err := collective.Verify(op, before, data); err != nil {
		return CollRow{}, err
	}

	// Trace spans are emitted after the run from the executor's recorded
	// step instants: one track per rank, one span per step.
	if oc != nil {
		for r := 0; r < ranks; r++ {
			track := oc.Track(fmt.Sprintf("rank%03d", r))
			var start sim.Time
			for s, end := range exec.StepEnds(r) {
				track.Span(fmt.Sprintf("step%d", s), start, end)
				start = end
			}
		}
	}

	util := 0.0
	if rig.now() > 0 {
		util = float64(wireBusy) / (float64(rig.now()) * float64(ranks))
	}
	deliveredC.Add(int64(messages))
	droppedC.Add(int64(dropped))
	markedC.Add(int64(fstats.Marked))
	reg.Gauge(arch + ".completion_ns").Set(int64(exec.Completion() / sim.Nanosecond))
	reg.Gauge(arch + ".step_skew_ns").Set(int64(exec.StepSkew() / sim.Nanosecond))
	reg.Gauge(arch + ".link_util_pct").Set(int64(math.Round(util * 100)))

	return CollRow{
		Arch:            arch,
		Op:              op.String(),
		Ranks:           ranks,
		PayloadBytes:    shape.payload,
		Steps:           plan.MaxSteps(),
		Completion:      exec.Completion(),
		StepSkew:        exec.StepSkew(),
		BytesOnWire:     bytesOnWire,
		Frames:          frames,
		Delivered:       messages,
		Dropped:         dropped,
		Marked:          int(fstats.Marked),
		LinkUtilization: util,
	}, nil
}
