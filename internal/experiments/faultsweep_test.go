package experiments

import (
	"errors"
	"strings"
	"testing"

	"netdimm/internal/driver"
	"netdimm/internal/nic"
	"netdimm/internal/sim"
	"netdimm/internal/spec"
)

func fsTestConfig() FaultSweepConfig {
	cfg := DefaultFaultSweepConfig()
	cfg.Packets = 120
	return cfg
}

// At zero loss with a zero fault spec, the sweep's per-packet samples must
// equal the analytic OneWay latency exactly — the event-driven path adds
// nothing when nothing is injected.
func TestFaultSweepZeroLossMatchesAnalytic(t *testing.T) {
	sp := spec.TableOne()
	rows, err := FaultSweep(sp, []float64{0}, fsTestConfig(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want 3 archs", len(rows))
	}
	d := sp.MustDerive()
	fabric := d.Fabric(d.SwitchLatency)
	p := nic.Packet{Size: nic.MTU}
	want := map[string]sim.Time{
		"dNIC": driver.OneWay(d.NewDNIC(false), d.NewDNIC(false), p, fabric).Total(),
		"iNIC": driver.OneWay(d.NewINIC(false), d.NewINIC(false), p, fabric).Total(),
	}
	for _, r := range rows {
		if r.Delivered != 120 || r.Failed != 0 {
			t.Errorf("%s: delivered/failed = %d/%d, want 120/0", r.Arch, r.Delivered, r.Failed)
		}
		if r.Counters.Any() {
			t.Errorf("%s: fault-free sweep counted faults: %+v", r.Arch, r.Counters)
		}
		if r.Mean != r.P99 {
			t.Errorf("%s: lossless samples vary: mean %v, p99 %v", r.Arch, r.Mean, r.P99)
		}
		if w, ok := want[r.Arch]; ok && r.Mean != w {
			t.Errorf("%s: mean %v, want analytic OneWay %v", r.Arch, r.Mean, w)
		}
	}
}

// Acceptance: with increasing loss, p99 one-way latency is monotonically
// non-decreasing and the retransmit counters are nonzero, for every
// architecture.
func TestFaultSweepLatencyDegradesMonotonically(t *testing.T) {
	sp := spec.TableOne()
	sp.Fault.MaxRetries = 16
	rates := []float64{0, 0.02, 0.1, 0.3}
	rows, err := FaultSweep(sp, rates, fsTestConfig(), 0)
	if err != nil {
		t.Fatal(err)
	}
	byArch := map[string][]FaultRow{}
	for _, r := range rows {
		byArch[r.Arch] = append(byArch[r.Arch], r)
	}
	for arch, rs := range byArch {
		if len(rs) != len(rates) {
			t.Fatalf("%s: %d rows, want %d", arch, len(rs), len(rates))
		}
		for i := 1; i < len(rs); i++ {
			if rs[i].P99 < rs[i-1].P99 {
				t.Errorf("%s: p99 decreased from %v (loss %g) to %v (loss %g)",
					arch, rs[i-1].P99, rs[i-1].LossRate, rs[i].P99, rs[i].LossRate)
			}
			if rs[i].Mean < rs[i-1].Mean {
				t.Errorf("%s: mean decreased from %v to %v", arch, rs[i-1].Mean, rs[i].Mean)
			}
		}
		last := rs[len(rs)-1]
		if last.Counters.Retransmits == 0 || last.Counters.FramesDropped == 0 {
			t.Errorf("%s at loss %g: counters %+v, want nonzero drops and retransmits",
				arch, last.LossRate, last.Counters)
		}
		if last.Delivered == 0 {
			t.Errorf("%s at loss %g: nothing delivered", arch, last.LossRate)
		}
	}
}

// Acceptance: a livelocked configuration — 100% loss with an unlimited
// retry budget — must terminate through the event-budget watchdog with a
// diagnostic error, not hang.
func TestFaultSweepLivelockTripsWatchdog(t *testing.T) {
	sp := spec.TableOne() // Fault zero: MaxRetries 0 = unlimited
	cfg := fsTestConfig()
	cfg.EventBudget = 50_000
	_, err := FaultSweep(sp, []float64{1}, cfg, 1)
	if err == nil {
		t.Fatal("100% loss with unlimited retries returned no error")
	}
	var wde *sim.WatchdogError
	if !errors.As(err, &wde) {
		t.Fatalf("err = %v, want a *sim.WatchdogError in the chain", err)
	}
	if !strings.Contains(err.Error(), "event budget") {
		t.Errorf("diagnostic %q missing the event-budget reason", err)
	}
}

// A bounded retry budget at total loss fails every packet but terminates
// normally: recovery gives up per packet instead of spinning.
func TestFaultSweepTotalLossBoundedRetries(t *testing.T) {
	sp := spec.TableOne()
	sp.Fault.MaxRetries = 3
	rows, err := FaultSweep(sp, []float64{1}, fsTestConfig(), 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Delivered != 0 || r.Failed != 120 {
			t.Errorf("%s: delivered/failed = %d/%d, want 0/120", r.Arch, r.Delivered, r.Failed)
		}
		if r.Counters.DeliveryFailures != 120 {
			t.Errorf("%s: DeliveryFailures = %d, want 120", r.Arch, r.Counters.DeliveryFailures)
		}
	}
}

// The NetDIMM receive path exercises the NVDIMM-P recovery machinery when
// memory faults are armed: RDY losses must show up in the counters and the
// run must still deliver.
func TestFaultSweepMemoryFaults(t *testing.T) {
	sp := spec.TableOne()
	sp.Fault.MemTimeoutProb = 0.3
	sp.Fault.MemMaxRetries = 16
	sp.Fault.MaxRetries = 8
	rows, err := FaultSweep(sp, []float64{0.01}, fsTestConfig(), 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Arch != "NetDIMM" {
			if r.Counters.MemTimeouts != 0 {
				t.Errorf("%s counted memory faults: %+v", r.Arch, r.Counters)
			}
			continue
		}
		if r.Counters.MemTimeouts == 0 || r.Counters.MemRetries == 0 {
			t.Errorf("NetDIMM counters = %+v, want nonzero RDY losses and retries", r.Counters)
		}
		if r.Delivered == 0 {
			t.Error("NetDIMM delivered nothing under recoverable memory faults")
		}
	}
}

func TestFaultSweepValidatesArch(t *testing.T) {
	if _, err := faultCell(spec.TableOne(), "quantum", 0, fsTestConfig(), 0, nil); err == nil {
		t.Fatal("unknown architecture accepted")
	}
}
