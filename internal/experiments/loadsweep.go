package experiments

import (
	"fmt"
	"math"

	"netdimm/internal/driver"
	"netdimm/internal/ethernet"
	"netdimm/internal/fabric"
	"netdimm/internal/fault"
	"netdimm/internal/obs"
	"netdimm/internal/sim"
	"netdimm/internal/spec"
	"netdimm/internal/stats"
	"netdimm/internal/workload"
)

// The rack-scale load sweep: the latency-vs-offered-load curve the paper's
// unloaded replays never produce. N sender hosts fan in to one receiver
// through an output-queued switch (the incast pattern of Sec. 5.1's
// cluster traffic), arrivals are open-loop — they do not slow down when
// queues build — and every stage that can congest is a real queue: a
// serial TX driver per host, a finite egress buffer per port, and a serial
// RX driver at the receiver. As offered load approaches the slowest
// stage's capacity, queueing delay (and eventually tail drop) dominates
// the tail; the per-architecture saturation knee falls out of the p99
// curve. The receiver's RX driver is the architecture-dependent stage, so
// the sweep ranks dNIC / iNIC / NetDIMM by how much load each can absorb
// before its tail departs — the evaluation style of Alian et al.'s
// kernel-bypass gem5 study, applied to the NetDIMM comparison.

// LoadSweepArchs are the architectures compared by the load sweep, in
// output order.
var LoadSweepArchs = []string{"dNIC", "iNIC", "NetDIMM"}

// DefaultLoadGrid is the default offered-load axis, as fractions of the
// receiver's line rate. It brackets every architecture's knee on the
// default (Table 1, database-cluster) scenario.
var DefaultLoadGrid = []float64{0.02, 0.05, 0.08, 0.10, 0.12, 0.14, 0.16, 0.18, 0.22}

// LoadSweepConfig parameterises one load sweep; traffic shape and fabric
// buffering come from the specification's Load block.
type LoadSweepConfig struct {
	// Packets is the total arrival count per cell, split across the
	// sender hosts (default 2000 — enough for a stable p99 and a defined
	// p999).
	Packets int
	// EventBudget bounds each cell's engine via the watchdog (default
	// 4,000,000).
	EventBudget uint64
	// Seed perturbs every host's arrival stream.
	Seed uint64
}

// DefaultLoadSweepConfig returns the sweep defaults.
func DefaultLoadSweepConfig() LoadSweepConfig {
	return LoadSweepConfig{Packets: 2000, EventBudget: 4_000_000}
}

func (c LoadSweepConfig) withDefaults() LoadSweepConfig {
	def := DefaultLoadSweepConfig()
	if c.Packets <= 0 {
		c.Packets = def.Packets
	}
	if c.EventBudget == 0 {
		c.EventBudget = def.EventBudget
	}
	return c
}

// loadShape is the resolved Load block of a specification.
type loadShape struct {
	hosts      int
	cluster    workload.Cluster
	process    workload.ArrivalProcess
	portBuffer int
	kneeFactor float64
	shards     int
}

// resolveLoad applies the sweep defaults to a validated Load block.
func resolveLoad(l workload.LoadSpec) (loadShape, error) {
	if err := l.Validate(); err != nil {
		return loadShape{}, err
	}
	cl, _ := workload.ParseCluster(l.Cluster)
	proc, _ := workload.ParseProcess(l.Process)
	sh := loadShape{hosts: l.Hosts, cluster: cl, process: proc,
		portBuffer: l.PortBuffer, kneeFactor: l.KneeFactor, shards: l.Shards}
	if sh.hosts == 0 {
		sh.hosts = 8
	}
	if sh.portBuffer == 0 {
		sh.portBuffer = 64
	}
	if sh.kneeFactor == 0 {
		sh.kneeFactor = 3
	}
	return sh, nil
}

// LoadRow is one (architecture, offered load) cell of the load sweep:
// end-to-end latency statistics over delivered packets plus the cell's
// congestion tallies.
type LoadRow struct {
	Arch string
	// Load is the offered fraction of the receiver's line rate.
	Load float64
	Mean sim.Time
	P50  sim.Time
	P99  sim.Time
	P999 sim.Time
	// Delivered counts packets that completed end to end; Dropped counts
	// frames tail-dropped by a full uplink or egress buffer.
	Delivered int
	Dropped   int
	// EgressMaxDepth and EgressQueueDelay describe the shared egress port
	// (the incast bottleneck on the wire side).
	EgressMaxDepth   int
	EgressQueueDelay sim.Time
	// RxMaxDepth is the receiver driver queue's high-water mark (the
	// architecture-dependent bottleneck).
	RxMaxDepth int
	// LinkUtilization is delivered wire occupancy over the cell's
	// makespan, in [0,1].
	LinkUtilization float64
	// Hist holds the cell's full latency sample set for cross-cell
	// aggregation.
	Hist *stats.Histogram
}

// LoadKnee is one architecture's detected saturation point.
type LoadKnee struct {
	Arch string
	// Knee is the highest swept load whose p99 stayed within
	// KneeFactor x the lowest swept load's p99; it is only meaningful
	// when Saturated is true. An unsaturated curve — including the
	// degenerate single-load grid, which cannot bracket a knee — reports
	// the explicit no-knee result {Knee: 0, Saturated: false}.
	Knee float64
	// Saturated reports whether any swept load exceeded that bound; when
	// false the grid never reached the architecture's knee.
	Saturated bool
}

// DetectKnees reduces sweep rows to one saturation knee per architecture.
// Rows must carry at least one load per architecture; loads are evaluated
// in ascending order and the lowest load is the tail baseline.
func DetectKnees(rows []LoadRow, kneeFactor float64) []LoadKnee {
	if kneeFactor <= 0 {
		kneeFactor = 3
	}
	byArch := make(map[string][]LoadRow)
	for _, r := range rows {
		byArch[r.Arch] = append(byArch[r.Arch], r)
	}
	var knees []LoadKnee
	for _, arch := range LoadSweepArchs {
		rs := byArch[arch]
		if len(rs) == 0 {
			continue
		}
		// Rows arrive in sweep order (ascending load per architecture);
		// keep order-insensitivity for callers that re-sorted.
		for i := 1; i < len(rs); i++ {
			for j := i; j > 0 && rs[j-1].Load > rs[j].Load; j-- {
				rs[j-1], rs[j] = rs[j], rs[j-1]
			}
		}
		base := rs[0].P99
		knee := LoadKnee{Arch: arch}
		for _, r := range rs {
			if base > 0 && float64(r.P99) > kneeFactor*float64(base) {
				knee.Saturated = true
				break
			}
			knee.Knee = r.Load
		}
		if !knee.Saturated {
			// The grid never crossed the bound (or had a single row, which
			// cannot bracket a knee): report the explicit no-knee result
			// instead of passing the top of the grid off as a knee.
			knee.Knee = 0
		}
		knees = append(knees, knee)
	}
	return knees
}

// LoadSweep runs the rack-scale open-loop load sweep: for every
// (architecture, offered load) cell it simulates loads[i] of the line rate
// fanning in from the spec's Load.Hosts senders to one receiver and
// reports the end-to-end latency distribution, then reduces the rows to
// one saturation knee per architecture. A nil loads slice uses
// DefaultLoadGrid.
//
// Cells are deterministic: each builds its own engine, machines and
// arrival streams from per-cell seeds, so results are identical
// sequentially and in parallel. Along one architecture's load axis the
// packet sequence is held fixed (only the arrival spacing scales), so the
// latency curve isolates queueing.
func LoadSweep(sp spec.Spec, loads []float64, cfg LoadSweepConfig, parallelism int) ([]LoadRow, []LoadKnee, error) {
	rows, knees, _, err := LoadSweepObserved(sp, loads, cfg, parallelism, obs.Spec{})
	return rows, knees, err
}

// LoadSweepObserved is LoadSweep with the observability plane: when ospec
// enables collection, each (arch, load) cell gets a Cell labelled
// "loadsweep/<arch>/load=<load>" with receiver queue-depth and egress
// depth series, delivery/drop counters, link utilisation and engine
// probes. A zero ospec yields a nil observer and the exact LoadSweep
// behaviour.
func LoadSweepObserved(sp spec.Spec, loads []float64, cfg LoadSweepConfig, parallelism int, ospec obs.Spec) ([]LoadRow, []LoadKnee, *obs.Observer, error) {
	cfg = cfg.withDefaults()
	if len(loads) == 0 {
		loads = DefaultLoadGrid
	}
	for _, l := range loads {
		if l <= 0 || math.IsNaN(l) || math.IsInf(l, 0) {
			return nil, nil, nil, fmt.Errorf("loadsweep: offered load must be positive and finite, got %g", l)
		}
	}
	shape, err := resolveLoad(sp.Load)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("loadsweep: %w", err)
	}
	n := len(LoadSweepArchs) * len(loads)
	var o *obs.Observer
	if ospec.Enabled() {
		labels := make([]string, n)
		for i := range labels {
			labels[i] = fmt.Sprintf("loadsweep/%s/load=%g",
				LoadSweepArchs[i/len(loads)], loads[i%len(loads)])
		}
		o = obs.New(ospec, labels...)
	}
	rows := make([]LoadRow, n)
	errs := make([]error, n)
	forEachCell(n, parallelism, func(i int) {
		arch := LoadSweepArchs[i/len(loads)]
		load := loads[i%len(loads)]
		row, err := loadCell(sp, arch, load, shape, cfg, o.Cell(i))
		if err != nil {
			errs[i] = fmt.Errorf("loadsweep: %s at load %g: %w", arch, load, err)
			return
		}
		rows[i] = row
	})
	if err := firstError(errs); err != nil {
		return nil, nil, nil, err
	}
	return rows, DetectKnees(rows, shape.kneeFactor), o, nil
}

// serialServer is a FIFO single-server queue on the cell's engine — the
// model of one driver core draining packets one at a time. It is where
// load above the stage's capacity turns into waiting time.
type serialServer struct {
	eng      *sim.Engine
	queue    []serialJob
	busy     bool
	maxDepth int
	// onDepth, when set, samples the queue depth after every change.
	onDepth func(at sim.Time, depth int)
}

type serialJob struct {
	service sim.Time
	done    func()
}

// Depth returns queued jobs including the one in service.
func (s *serialServer) Depth() int {
	n := len(s.queue)
	if s.busy {
		n++
	}
	return n
}

func (s *serialServer) sample() {
	if d := s.Depth(); d > s.maxDepth {
		s.maxDepth = d
	}
	if s.onDepth != nil {
		s.onDepth(s.eng.Now(), s.Depth())
	}
}

// Submit enqueues one job; done fires when its service completes.
func (s *serialServer) Submit(service sim.Time, done func()) {
	s.queue = append(s.queue, serialJob{service: service, done: done})
	s.sample()
	if !s.busy {
		s.serveNext()
	}
}

func (s *serialServer) serveNext() {
	if len(s.queue) == 0 {
		s.busy = false
		s.sample()
		return
	}
	s.busy = true
	job := s.queue[0]
	s.queue = s.queue[1:]
	s.eng.Schedule(job.service, func() {
		job.done()
		s.serveNext()
	})
}

// loadCell runs one (arch, load) cell: shape.hosts open-loop senders into
// one receiver across the specification's fabric (the zero Fabric block
// resolves to one leaf and no spines — exactly the original single-switch
// incast, so the pinned goldens are unchanged). A positive Shards knob
// routes the cell through the sharded engine when the specification offers
// a lookahead (a zero switch latency leaves no safe window, so the
// single-engine path is forced): the fabric and the receiver driver live
// on shard 0, sender host h on shard 1+h%(shards-1), and the host→fabric
// crossing — whose latency is exactly the group lookahead — rides a
// per-host channel created in host order.
//
// The partition is a pure function of the host index, so shards=1 and
// shards=N run the identical window schedule and deliver cross-shard
// events in the identical (when, channel, seq) order: results are
// byte-identical at every shard count. (They are NOT byte-identical to the
// Shards=0 single-engine path, which samples the egress depth on the near
// side of the fabric crossing; pinned goldens run Shards=0.)
//
// When the Fabric block arms ECN, marked deliveries echo back to their
// sender with one switch latency and pace its TX driver through a
// fabric.Pacer; switch-port fault injection (Fault.PortDropProb) applies
// at every fabric hop, drawing its stream on the fabric engine only.
func loadCell(sp spec.Spec, arch string, load float64, shape loadShape, cfg LoadSweepConfig, oc *obs.Cell) (LoadRow, error) {
	d := sp.MustDerive()
	rig := newCellRig(shape.shards, shape.hosts, d.ShardLookahead(), cfg.EventBudget)
	link := d.Link

	txs, rx, err := loadEndpoints(d, arch, shape.hosts, cfg.Seed)
	if err != nil {
		return LoadRow{}, err
	}

	perHostGap, err := shape.cluster.MeanGapForLoad(load, shape.hosts, link.BitsPerSec/1e9)
	if err != nil {
		return LoadRow{}, err
	}

	// Receiver side, on the fabric engine (shard 0 when sharded). Metric
	// names are identical at every Shards value so observations are
	// comparable across the knob.
	reg := oc.Metrics()
	recv := &serialServer{eng: rig.fabEng}
	if s := reg.Series(arch + ".rx_queue_depth"); s != nil {
		recv.onDepth = func(at sim.Time, depth int) { s.Sample(at, int64(depth)) }
	}
	egress := reg.Series(arch + ".egress_depth")
	deliveredC := reg.Counter(arch + ".delivered")
	droppedC := reg.Counter(arch + ".dropped")
	ep := obs.NewEngineProbe(reg, arch+".engine")
	probes := rig.attachProbes(ep)

	// The receiver is the fabric's last endpoint; every sender's traffic
	// funnels into its downlink (the incast bottleneck on the wire side).
	rcv := shape.hosts
	topo := d.NewTopology(rig.placement(), shape.hosts+1, shape.portBuffer)
	if d.Spec.Fault.PortDropProb > 0 {
		topo.InjectFaults(fault.NewInjector(d.Spec.Fault, cfg.Seed))
	}
	if _, err := topo.ArmFailures(d.Spec.Fault.Failure, cfg.Seed); err != nil {
		return LoadRow{}, err
	}
	egPort := topo.Downlink(rcv)
	if rig.sharded() {
		// Far side of the crossing: the depth is read on the fabric shard
		// (the near-side read below would race with shard 0's dequeues).
		topo.OnFabricIngress = func(int, int) { egress.Sample(rig.fabEng.Now(), int64(egPort.Depth())) }
	} else {
		topo.OnUplinkDeliver = func(int, int) { egress.Sample(rig.fabEng.Now(), int64(egPort.Depth())) }
	}
	ecn := topo.Spec().ECNThreshold > 0

	var hist stats.Histogram
	delivered := 0
	var wireBusy sim.Time
	// Uplink tail-drops happen on the host shards; per-host tallies keep
	// the counting race-free and are summed after the run.
	hostDrops := make([]int, shape.hosts)

	for h := 0; h < shape.hosts; h++ {
		count := shareCount(cfg.Packets, shape.hosts, h)
		if count == 0 {
			continue
		}
		rig.armHost(h, ecn)
		eng := rig.hostEngine(h)
		// Per-host seeds are independent of the offered load, so the
		// packet sequence is identical along the load axis.
		gen := workload.NewOpenLoop(shape.cluster, shape.process, perHostGap,
			cfg.Seed+uint64(h)*0x9e3779b97f4a7c15)
		txSrv := &serialServer{eng: eng}
		tx := txs[h]
		src := h
		host := uint64(h)
		drops := &hostDrops[h]
		var pacer *fabric.Pacer
		if ecn {
			// A mark stalls the sender by occupying its TX driver for one
			// backoff — queued arrivals wait behind it.
			pacer = &fabric.Pacer{Backoff: topo.Spec().ECNBackoff(),
				Stall: func(dur sim.Time, done func()) { txSrv.Submit(dur, done) }}
		}

		var arm func(i int)
		arm = func(i int) {
			if i >= count {
				return
			}
			e := gen.Next()
			eng.At(e.At, func() {
				arm(i + 1)
				p := e.Packet(host<<32 | uint64(i))
				born := eng.Now()
				txSrv.Submit(tx.TX(p).Total(), func() {
					f := ethernet.Frame{ID: p.ID, Bytes: e.Size}
					ok := topo.Inject(src, rcv, f, func(fr ethernet.Frame) {
						recv.Submit(rx.RX(p).Total(), func() {
							hist.Observe(rig.fabEng.Now() - born)
							delivered++
							wireBusy += link.SerializeTime(e.Size)
						})
						if pacer != nil && fr.ECN {
							topo.EchoMark(src, pacer.OnMark)
						}
					})
					if !ok {
						*drops++
					}
				})
			})
		}
		arm(0)
	}

	if err := rig.run(); err != nil {
		return LoadRow{}, err
	}
	if probes != nil {
		ep.Merge(probes...)
	}

	fstats := topo.Stats()
	egStats := egPort.Stats()
	dropped := int(fstats.Dropped + fstats.OutageDrops + fstats.BurstDrops)
	for _, n := range hostDrops {
		dropped += n
	}
	util := 0.0
	if rig.now() > 0 {
		util = float64(wireBusy) / float64(rig.now())
	}
	deliveredC.Add(int64(delivered))
	droppedC.Add(int64(dropped))
	reg.Gauge(arch + ".link_util_pct").Set(int64(math.Round(util * 100)))
	reg.Gauge(arch + ".egress_max_depth").Set(int64(egStats.MaxDepth))
	reg.Gauge(arch + ".rx_max_depth").Set(int64(recv.maxDepth))
	if ecn {
		reg.Gauge(arch + ".ecn_marked").Set(int64(fstats.Marked))
	}

	return LoadRow{
		Arch:             arch,
		Load:             load,
		Mean:             hist.Mean(),
		P50:              hist.Percentile(50),
		P99:              hist.Percentile(99),
		P999:             hist.Percentile(99.9),
		Delivered:        delivered,
		Dropped:          dropped,
		EgressMaxDepth:   egStats.MaxDepth,
		EgressQueueDelay: egStats.AvgQueueDelay(),
		RxMaxDepth:       recv.maxDepth,
		LinkUtilization:  util,
		Hist:             &hist,
	}, nil
}

// loadEndpoints builds one TX machine per sender host and the receiver's
// RX machine for the given architecture.
func loadEndpoints(d *spec.Derived, arch string, hosts int, seed uint64) ([]driver.Machine, driver.Machine, error) {
	txs := make([]driver.Machine, hosts)
	switch arch {
	case "dNIC":
		for h := range txs {
			txs[h] = d.NewDNIC(false)
		}
		return txs, d.NewDNIC(false), nil
	case "iNIC":
		for h := range txs {
			txs[h] = d.NewINIC(false)
		}
		return txs, d.NewINIC(false), nil
	case "NetDIMM":
		for h := range txs {
			nd, err := d.NewNetDIMM(seed + 2*uint64(h) + 1)
			if err != nil {
				return nil, nil, err
			}
			txs[h] = nd
		}
		ndRX, err := d.NewNetDIMM(seed + 2*uint64(hosts) + 2)
		if err != nil {
			return nil, nil, err
		}
		return txs, ndRX, nil
	default:
		return nil, nil, fmt.Errorf("unknown architecture %q", arch)
	}
}
