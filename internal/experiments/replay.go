package experiments

import (
	"fmt"
	"io"

	"netdimm/internal/driver"
	"netdimm/internal/ethernet"
	"netdimm/internal/sim"
	"netdimm/internal/stats"
	"netdimm/internal/trace"
	"netdimm/internal/workload"
)

// ReplayResult summarises one architecture's run over a recorded trace.
type ReplayResult struct {
	Arch    string
	Packets int
	Mean    sim.Time
	P50     sim.Time
	P99     sim.Time
}

// ReplayTrace runs a recorded packet trace (from cmd/netdimm-trace, or any
// events slice) through the clos fabric under all three architectures and
// reports per-packet one-way latency statistics — the file-driven variant
// of Fig. 12(a).
func ReplayTrace(events []workload.Event, switchLatency sim.Time, seed uint64) ([]ReplayResult, error) {
	if len(events) == 0 {
		return nil, fmt.Errorf("experiments: empty trace")
	}
	fabric := ethernet.NewFabric(switchLatency)
	fabric.Switch.CutThrough = false

	ndTX, err := driver.NewNetDIMMMachine(seed + 1)
	if err != nil {
		return nil, err
	}
	ndRX, err := driver.NewNetDIMMMachine(seed + 2)
	if err != nil {
		return nil, err
	}
	dn := driver.NewDNICMachine(false)
	in := driver.NewINICMachine(false)

	hists := map[string]*stats.Histogram{
		"dNIC": {}, "iNIC": {}, "NetDIMM": {},
	}
	for i, e := range events {
		p := e.Packet(uint64(i))
		wire := fabric.WireTime(e.Size, e.Locality)
		hists["dNIC"].Observe(dn.TX(p).Total() + wire + dn.RX(p).Total())
		hists["iNIC"].Observe(in.TX(p).Total() + wire + in.RX(p).Total())
		hists["NetDIMM"].Observe(ndTX.TX(p).Total() + wire + ndRX.RX(p).Total())
	}
	var out []ReplayResult
	for _, name := range []string{"dNIC", "iNIC", "NetDIMM"} {
		h := hists[name]
		out = append(out, ReplayResult{
			Arch:    name,
			Packets: h.Count(),
			Mean:    h.Mean(),
			P50:     h.Percentile(50),
			P99:     h.Percentile(99),
		})
	}
	return out, nil
}

// ReplayTraceFile reads a trace stream and replays it.
func ReplayTraceFile(r io.Reader, switchLatency sim.Time, seed uint64) (trace.Header, []ReplayResult, error) {
	h, events, err := trace.Read(r)
	if err != nil {
		return trace.Header{}, nil, err
	}
	res, err := ReplayTrace(events, switchLatency, seed)
	return h, res, err
}
