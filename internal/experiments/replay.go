package experiments

import (
	"fmt"
	"io"

	"netdimm/internal/driver"
	"netdimm/internal/sim"
	"netdimm/internal/spec"
	"netdimm/internal/stats"
	"netdimm/internal/trace"
	"netdimm/internal/workload"
)

// ReplayResult summarises one architecture's run over a recorded trace.
type ReplayResult struct {
	Arch    string
	Packets int
	Mean    sim.Time
	P50     sim.Time
	P99     sim.Time
}

// ReplayTrace runs a recorded packet trace (from cmd/netdimm-trace, or any
// events slice) through the clos fabric under all three architectures and
// reports per-packet one-way latency statistics — the file-driven variant
// of Fig. 12(a).
func ReplayTrace(sp spec.Spec, events []workload.Event, switchLatency sim.Time, seed uint64, parallelism int) ([]ReplayResult, error) {
	if len(events) == 0 {
		return nil, fmt.Errorf("experiments: empty trace")
	}

	// Each architecture replays the whole trace on its own machines — an
	// independent cell; machines never interact across architectures.
	names := []string{"dNIC", "iNIC", "NetDIMM"}
	hists := make([]stats.Histogram, len(names))
	errs := make([]error, len(names))
	forEachCell(len(names), parallelism, func(i int) {
		d := sp.MustDerive()
		fabric := d.Fabric(switchLatency)
		fabric.Switch.CutThrough = false
		var tx, rx driver.Machine
		switch names[i] {
		case "dNIC":
			m := d.NewDNIC(false)
			tx, rx = m, m
		case "iNIC":
			m := d.NewINIC(false)
			tx, rx = m, m
		default:
			ndTX, err := d.NewNetDIMM(seed + 1)
			if err != nil {
				errs[i] = err
				return
			}
			ndRX, err := d.NewNetDIMM(seed + 2)
			if err != nil {
				errs[i] = err
				return
			}
			tx, rx = ndTX, ndRX
		}
		for j, e := range events {
			p := e.Packet(uint64(j))
			wire := fabric.WireTime(e.Size, e.Locality)
			hists[i].Observe(tx.TX(p).Total() + wire + rx.RX(p).Total())
		}
	})
	if err := firstError(errs); err != nil {
		return nil, err
	}
	out := make([]ReplayResult, len(names))
	for i, name := range names {
		h := &hists[i]
		out[i] = ReplayResult{
			Arch:    name,
			Packets: h.Count(),
			Mean:    h.Mean(),
			P50:     h.Percentile(50),
			P99:     h.Percentile(99),
		}
	}
	return out, nil
}

// ReplayTraceFile reads a trace stream and replays it.
func ReplayTraceFile(sp spec.Spec, r io.Reader, switchLatency sim.Time, seed uint64, parallelism int) (trace.Header, []ReplayResult, error) {
	h, events, err := trace.Read(r)
	if err != nil {
		return trace.Header{}, nil, err
	}
	res, err := ReplayTrace(sp, events, switchLatency, seed, parallelism)
	return h, res, err
}
