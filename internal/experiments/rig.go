package experiments

import (
	"netdimm/internal/fabric"
	"netdimm/internal/obs"
	"netdimm/internal/sim"
)

// cellRig abstracts one sweep cell's engine layout, so the load and rack
// sweeps share a single cell body instead of near-identical single-engine
// and sharded copies. A rig is either one engine, or a conservative
// ShardGroup with the whole fabric plus every receiver-side component on
// shard 0 and sender host h on shard 1+h%(shards-1); the host→fabric
// crossing (and, when ECN is armed, the fabric→host echo) are the only
// cross-shard edges, carried by per-host Channels created in host order so
// results are byte-identical at every shard count.
type cellRig struct {
	group     *sim.ShardGroup // nil on the single-engine path
	fabEng    *sim.Engine     // fabric + receiver engine (shard 0 when sharded)
	lookahead sim.Time
	shards    int

	cross []*sim.Channel // host→fabric, armed hosts only
	echo  []*sim.Channel // fabric→host, armed hosts with ECN only
}

// newCellRig builds the engine layout for a cell of `hosts` sender hosts
// (the fabric may carry more endpoints — receivers — which all live on the
// fabric engine). shards <= 0, or a zero lookahead, selects the
// single-engine path; a positive count is clamped to hosts+1 since more
// shards than components would sit idle.
func newCellRig(shards, hosts int, lookahead sim.Time, budget uint64) *cellRig {
	if shards > 0 && lookahead > 0 {
		if shards > hosts+1 {
			shards = hosts + 1
		}
		g := sim.NewShardGroup(shards, lookahead)
		g.SetWatchdog(sim.Watchdog{MaxEvents: budget})
		return &cellRig{
			group: g, fabEng: g.Engine(0), lookahead: lookahead, shards: shards,
			cross: make([]*sim.Channel, hosts),
			echo:  make([]*sim.Channel, hosts),
		}
	}
	eng := sim.NewEngine()
	eng.SetWatchdog(sim.Watchdog{MaxEvents: budget})
	return &cellRig{fabEng: eng, lookahead: lookahead, shards: 1}
}

func (r *cellRig) sharded() bool { return r.group != nil }

// hostShard is the pure partition function: host h lives on shard
// 1+h%(shards-1) so the fabric shard 0 never shares a goroutine with a
// sender (except in the one-shard group, which exercises the identical
// delivery path on a single shard).
func (r *cellRig) hostShard(h int) int {
	if r.group == nil || r.shards == 1 {
		return 0
	}
	return 1 + h%(r.shards-1)
}

// hostEngine returns the engine host h's components are built on.
func (r *cellRig) hostEngine(h int) *sim.Engine {
	if r.group == nil {
		return r.fabEng
	}
	return r.group.Engine(r.hostShard(h))
}

// armHost creates host h's cross-shard channels (host→fabric, and
// fabric→host when ecn echoes are needed). It must be called in host order
// for every armed host — channel ids are the delivery tie-break — and is a
// no-op on the single-engine path.
func (r *cellRig) armHost(h int, ecn bool) {
	if r.group == nil {
		return
	}
	r.cross[h] = r.group.NewChannel(r.hostShard(h), 0)
	if ecn {
		r.echo[h] = r.group.NewChannel(0, r.hostShard(h))
	}
}

// placement maps a fabric.Topology onto the rig: switches on the fabric
// engine, uplinks on the host engines, crossings through the per-host
// channels (which impose exactly the lookahead the switch latency
// provides) or plain schedules on the single engine.
func (r *cellRig) placement() fabric.Placement {
	if r.group == nil {
		eng := r.fabEng
		sched := func(_ int, delay sim.Time, fn func()) { eng.Schedule(delay, fn) }
		return fabric.Placement{Fabric: eng, Host: func(int) *sim.Engine { return eng }, Cross: sched, Echo: sched}
	}
	return fabric.Placement{
		Fabric: r.fabEng,
		Host:   r.hostEngine,
		Cross:  func(h int, delay sim.Time, fn func()) { r.cross[h].Send(delay, fn) },
		Echo:   func(h int, delay sim.Time, fn func()) { r.echo[h].Send(delay, fn) },
	}
}

// attachProbes arms engine instrumentation: the EngineProbe directly on a
// single engine, or one private ShardProbe per shard (registry counters
// are not safe for concurrent writers) to be folded back by finishProbes.
func (r *cellRig) attachProbes(ep *obs.EngineProbe) []*obs.ShardProbe {
	if ep == nil {
		return nil
	}
	if r.group == nil {
		ep.Attach(r.fabEng)
		return nil
	}
	probes := make([]*obs.ShardProbe, r.shards)
	for i := range probes {
		probes[i] = &obs.ShardProbe{}
		probes[i].Attach(r.group.Engine(i))
	}
	return probes
}

// run executes the cell to completion (or a tripped watchdog).
func (r *cellRig) run() error {
	if r.group == nil {
		r.fabEng.Run()
		return r.fabEng.Err()
	}
	return r.group.Run()
}

// now returns the cell's final instant: the latest fired event.
func (r *cellRig) now() sim.Time {
	if r.group == nil {
		return r.fabEng.Now()
	}
	return r.group.Now()
}

// shareCount splits `total` work items over `parts` workers: worker i gets
// the base share plus one of the remainder's leftovers.
func shareCount(total, parts, i int) int {
	count := total / parts
	if i < total%parts {
		count++
	}
	return count
}
