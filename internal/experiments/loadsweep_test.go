package experiments

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"netdimm/internal/obs"
	"netdimm/internal/sim"
	"netdimm/internal/spec"
)

// testLoadSweep runs a trimmed sweep: a short grid that still crosses the
// dNIC knee, few enough packets to stay fast.
func testLoadSweep(t *testing.T, sp spec.Spec, loads []float64) ([]LoadRow, []LoadKnee) {
	t.Helper()
	cfg := DefaultLoadSweepConfig()
	cfg.Packets = 600
	rows, knees, err := LoadSweep(sp, loads, cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	return rows, knees
}

func TestLoadSweepP99MonotoneInLoad(t *testing.T) {
	rows, _ := testLoadSweep(t, spec.TableOne(), DefaultLoadGrid)
	byArch := map[string][]LoadRow{}
	for _, r := range rows {
		byArch[r.Arch] = append(byArch[r.Arch], r)
	}
	for _, arch := range LoadSweepArchs {
		rs := byArch[arch]
		if len(rs) != len(DefaultLoadGrid) {
			t.Fatalf("%s: got %d rows, want %d", arch, len(rs), len(DefaultLoadGrid))
		}
		for i := 1; i < len(rs); i++ {
			if rs[i].Load <= rs[i-1].Load {
				t.Fatalf("%s: rows out of load order: %g after %g", arch, rs[i].Load, rs[i-1].Load)
			}
			if rs[i].P99 < rs[i-1].P99 {
				t.Errorf("%s: p99 not monotone in load: p99(%g)=%v < p99(%g)=%v",
					arch, rs[i].Load, rs[i].P99, rs[i-1].Load, rs[i-1].P99)
			}
			if rs[i].Mean < rs[i-1].Mean {
				t.Errorf("%s: mean not monotone in load: mean(%g)=%v < mean(%g)=%v",
					arch, rs[i].Load, rs[i].Mean, rs[i-1].Load, rs[i-1].Mean)
			}
		}
		for _, r := range rs {
			if r.Delivered == 0 {
				t.Errorf("%s at load %g: nothing delivered", arch, r.Load)
			}
			if r.Delivered+r.Dropped != 600 {
				t.Errorf("%s at load %g: delivered %d + dropped %d != 600 offered",
					arch, r.Load, r.Delivered, r.Dropped)
			}
			if r.P50 > r.P99 || r.P99 > r.P999 {
				t.Errorf("%s at load %g: percentiles out of order: p50=%v p99=%v p999=%v",
					arch, r.Load, r.P50, r.P99, r.P999)
			}
			if r.LinkUtilization < 0 || r.LinkUtilization > 1 {
				t.Errorf("%s at load %g: link utilisation %g outside [0,1]", arch, r.Load, r.LinkUtilization)
			}
		}
	}
}

// The headline ordering claim: the NetDIMM receiver absorbs strictly more
// offered load than the dNIC receiver before its tail departs.
func TestLoadSweepNetDIMMSaturatesAfterDNIC(t *testing.T) {
	_, knees := testLoadSweep(t, spec.TableOne(), DefaultLoadGrid)
	byArch := map[string]LoadKnee{}
	for _, k := range knees {
		byArch[k.Arch] = k
	}
	dn, ok := byArch["dNIC"]
	if !ok {
		t.Fatal("no dNIC knee")
	}
	nd, ok := byArch["NetDIMM"]
	if !ok {
		t.Fatal("no NetDIMM knee")
	}
	if !dn.Saturated {
		t.Fatalf("default grid must saturate dNIC; knee %+v", dn)
	}
	if nd.Knee <= dn.Knee {
		t.Errorf("NetDIMM knee %g not strictly above dNIC knee %g", nd.Knee, dn.Knee)
	}
	in := byArch["iNIC"]
	if in.Knee < dn.Knee || nd.Knee < in.Knee {
		t.Errorf("knee ordering violated: dNIC %g, iNIC %g, NetDIMM %g", dn.Knee, in.Knee, nd.Knee)
	}
}

func TestLoadSweepRejectsBadLoads(t *testing.T) {
	cfg := DefaultLoadSweepConfig()
	for _, loads := range [][]float64{{0}, {-0.1}, {math.NaN()}, {math.Inf(1)}, {0.1, 0}} {
		if _, _, err := LoadSweep(spec.TableOne(), loads, cfg, 1); err == nil {
			t.Errorf("loads %v: no error", loads)
		}
	}
}

func TestLoadSweepRejectsBadLoadBlock(t *testing.T) {
	sp := spec.TableOne()
	sp.Load.Cluster = "mainframe"
	if _, _, err := LoadSweep(sp, []float64{0.05}, DefaultLoadSweepConfig(), 1); err == nil ||
		!strings.Contains(err.Error(), "unknown cluster") {
		t.Errorf("bad cluster: err = %v", err)
	}
	sp = spec.TableOne()
	sp.Load.Process = "bursty"
	if _, _, err := LoadSweep(sp, []float64{0.05}, DefaultLoadSweepConfig(), 1); err == nil ||
		!strings.Contains(err.Error(), "unknown arrival process") {
		t.Errorf("bad process: err = %v", err)
	}
}

func TestLoadEndpointsUnknownArch(t *testing.T) {
	d := spec.TableOne().MustDerive()
	if _, _, err := loadEndpoints(d, "quantum", 2, 1); err == nil ||
		!strings.Contains(err.Error(), "unknown architecture") {
		t.Errorf("err = %v", err)
	}
}

func TestDetectKnees(t *testing.T) {
	us := sim.Microsecond
	rows := []LoadRow{
		// Deliberately out of load order: DetectKnees must sort per arch.
		{Arch: "dNIC", Load: 0.2, P99: 9 * us},
		{Arch: "dNIC", Load: 0.05, P99: 2 * us},
		{Arch: "dNIC", Load: 0.1, P99: 3 * us},
		{Arch: "NetDIMM", Load: 0.05, P99: 1 * us},
		{Arch: "NetDIMM", Load: 0.1, P99: 1 * us},
		{Arch: "NetDIMM", Load: 0.2, P99: 2 * us},
	}
	knees := DetectKnees(rows, 3)
	if len(knees) != 2 {
		t.Fatalf("got %d knees, want 2", len(knees))
	}
	if k := knees[0]; k.Arch != "dNIC" || k.Knee != 0.1 || !k.Saturated {
		t.Errorf("dNIC knee = %+v, want knee 0.1 saturated", k)
	}
	// iNIC has no rows and is skipped; NetDIMM never exceeds 3x baseline,
	// so it gets the explicit no-knee result rather than the grid's top.
	if k := knees[1]; k.Arch != "NetDIMM" || k.Knee != 0 || k.Saturated {
		t.Errorf("NetDIMM knee = %+v, want no-knee (0, unsaturated)", k)
	}
}

// TestDetectKneesDegenerate pins the no-knee contract on grids the
// detector used to mislabel: empty input, a single-load row (nothing to
// bracket a knee with) and a monotone curve that never crosses the bound
// must all yield an explicit no-knee result, never the last row.
func TestDetectKneesDegenerate(t *testing.T) {
	us := sim.Microsecond
	cases := []struct {
		name string
		rows []LoadRow
		want []LoadKnee
	}{
		{name: "empty", rows: nil, want: nil},
		{
			name: "single row",
			rows: []LoadRow{{Arch: "dNIC", Load: 0.4, P99: 5 * us}},
			want: []LoadKnee{{Arch: "dNIC"}},
		},
		{
			name: "monotone but never saturating",
			rows: []LoadRow{
				{Arch: "iNIC", Load: 0.05, P99: 2 * us},
				{Arch: "iNIC", Load: 0.1, P99: 3 * us},
				{Arch: "iNIC", Load: 0.2, P99: 5 * us},
			},
			want: []LoadKnee{{Arch: "iNIC"}},
		},
		{
			name: "saturating curve keeps its knee",
			rows: []LoadRow{
				{Arch: "NetDIMM", Load: 0.05, P99: 1 * us},
				{Arch: "NetDIMM", Load: 0.1, P99: 2 * us},
				{Arch: "NetDIMM", Load: 0.2, P99: 9 * us},
			},
			want: []LoadKnee{{Arch: "NetDIMM", Knee: 0.1, Saturated: true}},
		},
	}
	for _, c := range cases {
		got := DetectKnees(c.rows, 3)
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("%s: DetectKnees = %+v, want %+v", c.name, got, c.want)
		}
	}
}

func TestLoadSweepObservedMetrics(t *testing.T) {
	cfg := DefaultLoadSweepConfig()
	cfg.Packets = 120
	rows, _, o, err := LoadSweepObserved(spec.TableOne(), []float64{0.05, 0.15}, cfg, 0, obs.Spec{Metrics: true})
	if err != nil {
		t.Fatal(err)
	}
	if o == nil {
		t.Fatal("nil observer with metrics enabled")
	}
	cells := o.Cells()
	if len(cells) != len(rows) {
		t.Fatalf("got %d cells, want %d", len(cells), len(rows))
	}
	if got, want := cells[0].Label(), "loadsweep/dNIC/load=0.05"; got != want {
		t.Errorf("cell 0 label = %q, want %q", got, want)
	}
	for i, c := range cells {
		reg := c.Metrics()
		if reg == nil {
			t.Fatalf("cell %d: nil registry", i)
		}
		arch := rows[i].Arch
		if s := reg.Series(arch + ".rx_queue_depth"); s.Count() == 0 {
			t.Errorf("cell %d (%s): empty rx_queue_depth series", i, c.Label())
		}
		if got := reg.Counter(arch + ".delivered").Value(); got != int64(rows[i].Delivered) {
			t.Errorf("cell %d: delivered counter %d != row %d", i, got, rows[i].Delivered)
		}
		util := reg.Gauge(arch + ".link_util_pct").Value()
		if want := int64(math.Round(rows[i].LinkUtilization * 100)); util != want {
			t.Errorf("cell %d: link_util_pct %d != %d", i, util, want)
		}
		if got := reg.Gauge(arch + ".rx_max_depth").Value(); got != int64(rows[i].RxMaxDepth) {
			t.Errorf("cell %d: rx_max_depth gauge %d != row %d", i, got, rows[i].RxMaxDepth)
		}
	}
	// The higher-load cell must show deeper receiver queues: that is the
	// mechanism the whole sweep exists to expose.
	lowDepth := cells[0].Metrics().Gauge("dNIC.rx_max_depth").Value()
	highDepth := cells[1].Metrics().Gauge("dNIC.rx_max_depth").Value()
	if highDepth <= lowDepth {
		t.Errorf("dNIC rx_max_depth not growing with load: %d at 0.05 vs %d at 0.15", lowDepth, highDepth)
	}
}

// The open-loop generator must hold the packet sequence fixed along the
// load axis — only spacing may change — so the sweep isolates queueing.
func TestLoadSweepHoldsWorkFixedAcrossLoads(t *testing.T) {
	cfg := DefaultLoadSweepConfig()
	cfg.Packets = 200
	rows, _, err := LoadSweep(spec.TableOne(), []float64{0.02, 0.2}, cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Same arch, different loads: identical delivered counts and an
	// unloaded p50 strictly below the loaded p50.
	if rows[0].Arch != "dNIC" || rows[1].Arch != "dNIC" {
		t.Fatalf("unexpected row order: %+v", rows[:2])
	}
	if rows[0].Delivered != rows[1].Delivered {
		t.Errorf("delivered count changed with load: %d vs %d", rows[0].Delivered, rows[1].Delivered)
	}
	if rows[0].P50 >= rows[1].P50 {
		t.Errorf("queueing did not raise the loaded median: %v vs %v", rows[0].P50, rows[1].P50)
	}
}
