package ethernet

import (
	"netdimm/internal/fault"
	"netdimm/internal/sim"
)

// LossyPath is the analytic point-to-point path (two nodes through one
// switch, as in Fig. 4 / Fig. 11) with deterministic fault injection
// layered on: each transmission attempt draws its outcome from the
// injector's sim.Rand stream, so a seeded run produces the same
// drop/corrupt trace sequentially and under parallel fan-out.
type LossyPath struct {
	Fabric Fabric
	// Inj supplies the fault decisions; nil (or a zero Spec) makes every
	// attempt a loss-free delivery at exactly the fabric's wire time.
	Inj *fault.Injector
	// Obs, if non-nil, tallies attempt outcomes and wire occupancy. The
	// pointer survives value copies of the path.
	Obs *PathObs
}

// Attempt draws one transmission attempt for a frame of n bytes. It
// returns the outcome and the wire time the attempt consumed:
//
//   - Delivered: the full direct wire time; the frame is at the receiver.
//   - Dropped on the link: zero — the frame vanished, and the sender's
//     cost is its retransmit timeout, which the recovery engine pays.
//   - Dropped at the switch port (injected tail drop): one link traversal,
//     the serialisation the sender already spent before the drop point.
//   - Corrupted: the full wire time — the frame reaches the receiver,
//     fails the FCS check there and is discarded.
func (lp LossyPath) Attempt(n int) (fault.Outcome, sim.Time) {
	out, wire := lp.attempt(n)
	lp.Obs.record(out, wire)
	return out, wire
}

func (lp LossyPath) attempt(n int) (fault.Outcome, sim.Time) {
	if lp.Inj != nil {
		if lp.Inj.DropFrame() {
			return fault.Dropped, 0
		}
		if lp.Inj.PortDrop() {
			return fault.Dropped, lp.Fabric.Link.TransferTime(n)
		}
		if lp.Inj.CorruptFrame() {
			return fault.Corrupted, lp.Fabric.DirectWireTime(n)
		}
	}
	return fault.Delivered, lp.Fabric.DirectWireTime(n)
}
