package ethernet

import (
	"netdimm/internal/fault"
	"netdimm/internal/obs"
	"netdimm/internal/sim"
)

// PathObs counts per-path transmission outcomes and accumulated wire
// occupancy for the observability plane. All methods are nil-safe, so a
// LossyPath with no observer attached pays only one branch per attempt.
type PathObs struct {
	Delivered *obs.Counter
	Dropped   *obs.Counter
	Corrupted *obs.Counter
	WireBusy  *obs.Counter // total wire time consumed, in picoseconds
}

// NewPathObs registers the path counters under prefix (names
// prefix+".delivered", ".dropped", ".corrupted", ".wire_busy_ps"). A nil
// registry yields a nil observer, keeping the disabled path free.
func NewPathObs(reg *obs.Registry, prefix string) *PathObs {
	if reg == nil {
		return nil
	}
	return &PathObs{
		Delivered: reg.Counter(prefix + ".delivered"),
		Dropped:   reg.Counter(prefix + ".dropped"),
		Corrupted: reg.Counter(prefix + ".corrupted"),
		WireBusy:  reg.Counter(prefix + ".wire_busy_ps"),
	}
}

// record tallies one attempt.
func (p *PathObs) record(out fault.Outcome, wire sim.Time) {
	if p == nil {
		return
	}
	switch out {
	case fault.Delivered:
		p.Delivered.Inc()
	case fault.Dropped:
		p.Dropped.Inc()
	case fault.Corrupted:
		p.Corrupted.Inc()
	}
	p.WireBusy.Add(int64(wire))
}
