package ethernet

import (
	"testing"

	"netdimm/internal/sim"
)

func TestPortSerialises(t *testing.T) {
	eng := sim.NewEngine()
	p := NewPort(eng, Link40G(), 16)
	var arrivals []sim.Time
	for i := 0; i < 3; i++ {
		if !p.Send(Frame{ID: uint64(i), Bytes: 1514}, func(Frame) {
			arrivals = append(arrivals, eng.Now())
		}) {
			t.Fatal("send rejected")
		}
	}
	eng.Run()
	if len(arrivals) != 3 {
		t.Fatalf("arrivals = %d", len(arrivals))
	}
	ser := Link40G().SerializeTime(1514)
	for i := 1; i < len(arrivals); i++ {
		gap := arrivals[i] - arrivals[i-1]
		if gap != ser {
			t.Fatalf("frame %d gap = %v, want serialisation %v", i, gap, ser)
		}
	}
}

func TestPortFIFOOrder(t *testing.T) {
	eng := sim.NewEngine()
	p := NewPort(eng, Link40G(), 16)
	var order []uint64
	for i := 0; i < 5; i++ {
		p.Send(Frame{ID: uint64(i), Bytes: 200}, func(f Frame) { order = append(order, f.ID) })
	}
	eng.Run()
	for i, id := range order {
		if id != uint64(i) {
			t.Fatalf("order = %v", order)
		}
	}
}

func TestPortTailDrop(t *testing.T) {
	eng := sim.NewEngine()
	p := NewPort(eng, Link40G(), 2)
	accepted := 0
	for i := 0; i < 10; i++ {
		if p.Send(Frame{ID: uint64(i), Bytes: 1514}, nil) {
			accepted++
		}
	}
	if accepted != 2 {
		t.Fatalf("accepted = %d, want capacity 2", accepted)
	}
	eng.Run()
	s := p.Stats()
	if s.Dropped != 8 || s.Forwarded != 2 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestPortQueueDelayGrows(t *testing.T) {
	eng := sim.NewEngine()
	p := NewPort(eng, Link40G(), 64)
	for i := 0; i < 10; i++ {
		p.Send(Frame{ID: uint64(i), Bytes: 1514}, nil)
	}
	eng.Run()
	if p.Stats().AvgQueueDelay() <= 0 {
		t.Fatal("burst should accumulate queueing delay")
	}
	if p.Stats().MaxDepth != 10 {
		t.Fatalf("MaxDepth = %d", p.Stats().MaxDepth)
	}
}

func TestSwitchNodeForward(t *testing.T) {
	eng := sim.NewEngine()
	sw := NewSwitchNode(eng, Link40G(), 100*sim.Nanosecond, 4, 16)
	var deliveredAt sim.Time
	sw.Forward(2, Frame{ID: 1, Bytes: 64}, func(Frame) { deliveredAt = eng.Now() })
	eng.Run()
	want := 100*sim.Nanosecond + Link40G().SerializeTime(64) + Link40G().PHYLatency
	if deliveredAt != want {
		t.Fatalf("delivered at %v, want %v", deliveredAt, want)
	}
	if sw.Port(2).Stats().Forwarded != 1 {
		t.Fatal("port stats missing")
	}
}

func TestSwitchNodeBadPortPanics(t *testing.T) {
	eng := sim.NewEngine()
	sw := NewSwitchNode(eng, Link40G(), 0, 2, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("bad port accepted")
		}
	}()
	sw.Forward(7, Frame{}, nil)
}

func TestPortValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero capacity accepted")
		}
	}()
	NewPort(sim.NewEngine(), Link40G(), 0)
}

// Regression: AvgQueueDelay must be 0 (not a division artifact) before any
// frame finishes transmission, and consistent mid-run — the delay sum
// advances at the same instant as the Forwarded count, never ahead of it.
func TestAvgQueueDelayZeroBeforeFirstCompletion(t *testing.T) {
	if (PortStats{}).AvgQueueDelay() != 0 {
		t.Fatal("zero-forwarded stats should report zero delay")
	}
	eng := sim.NewEngine()
	p := NewPort(eng, Link40G(), 64)
	for i := 0; i < 4; i++ {
		p.Send(Frame{ID: uint64(i), Bytes: 1514}, nil)
	}
	// Nothing has completed at t=0: the frames are queued or on the wire.
	if s := p.Stats(); s.Forwarded != 0 || s.QueueDelaySum != 0 {
		t.Fatalf("pre-completion stats = %+v, want no forwarded and no delay sum", s)
	}
	// Step to just after the first frame's serialisation: exactly one
	// completion, and its (zero) wait is the whole sum; the three still
	// queued must not have leaked into it.
	eng.RunUntil(Link40G().SerializeTime(1514))
	if s := p.Stats(); s.Forwarded != 1 || s.QueueDelaySum != 0 {
		t.Fatalf("mid-run stats = %+v, want Forwarded=1 with the head frame's zero wait", s)
	}
	eng.Run()
	if s := p.Stats(); s.Forwarded != 4 || s.AvgQueueDelay() <= 0 {
		t.Fatalf("drained stats = %+v, want 4 forwarded with positive mean wait", s)
	}
}

// Fan-in determinism: frames arriving at the switch on the same tick from
// different ingress ports must reach the egress queue in Forward-call
// order, every run.
func TestSwitchFanInDeterministicOrder(t *testing.T) {
	run := func() []uint64 {
		eng := sim.NewEngine()
		sw := NewSwitchNode(eng, Link40G(), 100*sim.Nanosecond, 1, 64)
		var order []uint64
		// Eight ingress callbacks all fire at the same instant; each
		// forwards one frame to the shared egress port.
		for i := 0; i < 8; i++ {
			id := uint64(i)
			eng.At(500, func() {
				sw.Forward(0, Frame{ID: id, Bytes: 200}, func(f Frame) {
					order = append(order, f.ID)
				})
			})
		}
		eng.Run()
		return order
	}
	first := run()
	if len(first) != 8 {
		t.Fatalf("delivered %d frames, want 8", len(first))
	}
	for i, id := range first {
		if id != uint64(i) {
			t.Fatalf("same-tick fan-in out of call order: %v", first)
		}
	}
	for r := 0; r < 3; r++ {
		again := run()
		for i := range first {
			if again[i] != first[i] {
				t.Fatalf("run %d reordered fan-in: %v vs %v", r, again, first)
			}
		}
	}
}

// ECN: a port at or beyond its threshold marks fresh frames; already-marked
// frames pass through without recounting, and the bit is sticky.
func TestPortECNMarking(t *testing.T) {
	eng := sim.NewEngine()
	p := NewPort(eng, Link40G(), 64)
	p.SetECNThreshold(3)
	var marks, clears int
	deliver := func(f Frame) {
		if f.ECN {
			marks++
		} else {
			clears++
		}
	}
	for i := 0; i < 6; i++ {
		p.Send(Frame{ID: uint64(i), Bytes: 1514}, deliver)
	}
	eng.Run()
	// Frames 0..2 enqueue below the threshold; 3..5 see depth >= 3.
	if marks != 3 || clears != 3 {
		t.Fatalf("marks = %d, clears = %d, want 3/3", marks, clears)
	}
	if s := p.Stats(); s.Marked != 3 {
		t.Fatalf("Marked = %d, want 3", s.Marked)
	}

	// A frame already carrying the bit keeps it and is not recounted.
	eng2 := sim.NewEngine()
	q := NewPort(eng2, Link40G(), 64)
	q.SetECNThreshold(1)
	sticky := false
	q.Send(Frame{ID: 9, Bytes: 64, ECN: true}, func(f Frame) { sticky = f.ECN })
	eng2.Run()
	if !sticky {
		t.Fatal("ECN bit must survive the hop")
	}
	if s := q.Stats(); s.Marked != 0 {
		t.Fatalf("pre-marked frame recounted: Marked = %d", s.Marked)
	}
}

func TestECNThresholdValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative ECN threshold accepted")
		}
	}()
	NewPort(sim.NewEngine(), Link40G(), 4).SetECNThreshold(-1)
}

// Incast: many synchronized senders into one egress port — queueing delay
// grows with fan-in and the buffer eventually drops.
func TestIncastBehaviour(t *testing.T) {
	run := func(senders int) (avg sim.Time, drops uint64) {
		eng := sim.NewEngine()
		sw := NewSwitchNode(eng, Link40G(), 100*sim.Nanosecond, 1, 32)
		for i := 0; i < senders; i++ {
			sw.Forward(0, Frame{ID: uint64(i), Bytes: 1514}, nil)
		}
		eng.Run()
		s := sw.Port(0).Stats()
		return s.AvgQueueDelay(), s.Dropped
	}
	avg4, drops4 := run(4)
	avg16, drops16 := run(16)
	_, drops64 := run(64)
	if avg16 <= avg4 {
		t.Fatalf("queue delay should grow with fan-in: %v vs %v", avg16, avg4)
	}
	if drops4 != 0 || drops16 != 0 {
		t.Fatalf("small incast should fit the buffer: %d/%d", drops4, drops16)
	}
	if drops64 == 0 {
		t.Fatal("64-way incast should overflow a 32-frame buffer")
	}
}
