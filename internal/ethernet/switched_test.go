package ethernet

import (
	"testing"

	"netdimm/internal/sim"
)

func TestPortSerialises(t *testing.T) {
	eng := sim.NewEngine()
	p := NewPort(eng, Link40G(), 16)
	var arrivals []sim.Time
	for i := 0; i < 3; i++ {
		if !p.Send(Frame{ID: uint64(i), Bytes: 1514}, func(Frame) {
			arrivals = append(arrivals, eng.Now())
		}) {
			t.Fatal("send rejected")
		}
	}
	eng.Run()
	if len(arrivals) != 3 {
		t.Fatalf("arrivals = %d", len(arrivals))
	}
	ser := Link40G().SerializeTime(1514)
	for i := 1; i < len(arrivals); i++ {
		gap := arrivals[i] - arrivals[i-1]
		if gap != ser {
			t.Fatalf("frame %d gap = %v, want serialisation %v", i, gap, ser)
		}
	}
}

func TestPortFIFOOrder(t *testing.T) {
	eng := sim.NewEngine()
	p := NewPort(eng, Link40G(), 16)
	var order []uint64
	for i := 0; i < 5; i++ {
		p.Send(Frame{ID: uint64(i), Bytes: 200}, func(f Frame) { order = append(order, f.ID) })
	}
	eng.Run()
	for i, id := range order {
		if id != uint64(i) {
			t.Fatalf("order = %v", order)
		}
	}
}

func TestPortTailDrop(t *testing.T) {
	eng := sim.NewEngine()
	p := NewPort(eng, Link40G(), 2)
	accepted := 0
	for i := 0; i < 10; i++ {
		if p.Send(Frame{ID: uint64(i), Bytes: 1514}, nil) {
			accepted++
		}
	}
	if accepted != 2 {
		t.Fatalf("accepted = %d, want capacity 2", accepted)
	}
	eng.Run()
	s := p.Stats()
	if s.Dropped != 8 || s.Forwarded != 2 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestPortQueueDelayGrows(t *testing.T) {
	eng := sim.NewEngine()
	p := NewPort(eng, Link40G(), 64)
	for i := 0; i < 10; i++ {
		p.Send(Frame{ID: uint64(i), Bytes: 1514}, nil)
	}
	eng.Run()
	if p.Stats().AvgQueueDelay() <= 0 {
		t.Fatal("burst should accumulate queueing delay")
	}
	if p.Stats().MaxDepth != 10 {
		t.Fatalf("MaxDepth = %d", p.Stats().MaxDepth)
	}
}

func TestSwitchNodeForward(t *testing.T) {
	eng := sim.NewEngine()
	sw := NewSwitchNode(eng, Link40G(), 100*sim.Nanosecond, 4, 16)
	var deliveredAt sim.Time
	sw.Forward(2, Frame{ID: 1, Bytes: 64}, func(Frame) { deliveredAt = eng.Now() })
	eng.Run()
	want := 100*sim.Nanosecond + Link40G().SerializeTime(64) + Link40G().PHYLatency
	if deliveredAt != want {
		t.Fatalf("delivered at %v, want %v", deliveredAt, want)
	}
	if sw.Port(2).Stats().Forwarded != 1 {
		t.Fatal("port stats missing")
	}
}

func TestSwitchNodeBadPortPanics(t *testing.T) {
	eng := sim.NewEngine()
	sw := NewSwitchNode(eng, Link40G(), 0, 2, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("bad port accepted")
		}
	}()
	sw.Forward(7, Frame{}, nil)
}

func TestPortValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero capacity accepted")
		}
	}()
	NewPort(sim.NewEngine(), Link40G(), 0)
}

// Incast: many synchronized senders into one egress port — queueing delay
// grows with fan-in and the buffer eventually drops.
func TestIncastBehaviour(t *testing.T) {
	run := func(senders int) (avg sim.Time, drops uint64) {
		eng := sim.NewEngine()
		sw := NewSwitchNode(eng, Link40G(), 100*sim.Nanosecond, 1, 32)
		for i := 0; i < senders; i++ {
			sw.Forward(0, Frame{ID: uint64(i), Bytes: 1514}, nil)
		}
		eng.Run()
		s := sw.Port(0).Stats()
		return s.AvgQueueDelay(), s.Dropped
	}
	avg4, drops4 := run(4)
	avg16, drops16 := run(16)
	_, drops64 := run(64)
	if avg16 <= avg4 {
		t.Fatalf("queue delay should grow with fan-in: %v vs %v", avg16, avg4)
	}
	if drops4 != 0 || drops16 != 0 {
		t.Fatalf("small incast should fit the buffer: %d/%d", drops4, drops16)
	}
	if drops64 == 0 {
		t.Fatal("64-way incast should overflow a 32-frame buffer")
	}
}
