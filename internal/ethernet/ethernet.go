// Package ethernet models the physical network between servers: 40GbE
// links (serialisation + PHY), switches with configurable port-to-port
// latency, and the clos datacenter fabric used for the Facebook trace
// replay (paper Sec. 5.1: "We simulate the clos network topology of
// Facebook datacenter ... all the network devices in the datacenter has a
// bandwidth of 40Gbps").
package ethernet

import (
	"fmt"

	"netdimm/internal/nic"
	"netdimm/internal/sim"
)

// Link is one Ethernet link.
type Link struct {
	// BitsPerSec is the line rate (40e9 throughout the paper).
	BitsPerSec float64
	// PHYLatency is the fixed transceiver + cable latency per traversal.
	PHYLatency sim.Time
}

// Link40G returns the paper's 40GbE link with a typical short-reach PHY.
func Link40G() Link { return LinkGbps(40) }

// LinkGbps returns a link at the given line rate with the same short-reach
// PHY as Link40G — the knob a system configuration's NetworkGbps drives.
func LinkGbps(gbps float64) Link {
	return Link{BitsPerSec: gbps * 1e9, PHYLatency: 50 * sim.Nanosecond}
}

// SerializeTime returns the wire occupancy of one frame of n bytes,
// including preamble/FCS/IFG overhead.
func (l Link) SerializeTime(n int) sim.Time {
	bits := float64(n+nic.EthernetOverheadBytes) * 8
	return sim.Time(bits / l.BitsPerSec * float64(sim.Second))
}

// TransferTime returns serialisation plus PHY latency for one traversal.
func (l Link) TransferTime(n int) sim.Time { return l.SerializeTime(n) + l.PHYLatency }

// Switch is a store-and-forward or cut-through switch; Latency is its
// port-to-port latency (the paper sweeps 25/50/100/200ns in Fig. 12a).
type Switch struct {
	Latency sim.Time
	// CutThrough: if false, the switch re-serialises the full frame per
	// hop (store-and-forward); if true only the header is buffered.
	CutThrough bool
}

// HopTime returns the delay the switch adds for a frame of n bytes on a
// link l (excluding the first serialisation onto the wire, which the
// sender pays).
func (s Switch) HopTime(l Link, n int) sim.Time {
	if s.CutThrough {
		return s.Latency + l.PHYLatency
	}
	return s.Latency + l.TransferTime(n)
}

// Locality classifies where a flow's endpoints sit relative to each other;
// it determines the hop count through the clos fabric (paper Sec. 5.1:
// database traffic is inter-cluster and inter-datacenter, webserver
// inter-cluster intra-datacenter, hadoop intra-cluster).
type Locality int

const (
	// IntraRack: both endpoints under one ToR.
	IntraRack Locality = iota
	// IntraCluster: through the cluster fabric switches.
	IntraCluster
	// IntraDatacenter: across clusters through spine switches.
	IntraDatacenter
	// InterDatacenter: across datacenters (adds WAN propagation).
	InterDatacenter
)

func (lo Locality) String() string {
	switch lo {
	case IntraRack:
		return "intra-rack"
	case IntraCluster:
		return "intra-cluster"
	case IntraDatacenter:
		return "intra-datacenter"
	case InterDatacenter:
		return "inter-datacenter"
	default:
		return fmt.Sprintf("Locality(%d)", int(lo))
	}
}

// Fabric is a clos topology parameterised by its switch and link models.
type Fabric struct {
	Link   Link
	Switch Switch
	// InterDCPropagation is the extra one-way propagation for
	// inter-datacenter traffic.
	InterDCPropagation sim.Time
}

// NewFabric returns a clos fabric of 40GbE links with the given switch
// latency.
func NewFabric(switchLatency sim.Time) Fabric {
	return NewFabricWith(Link40G(), switchLatency)
}

// NewFabricWith returns a clos fabric built from the given link model —
// the constructor a derived system configuration uses.
func NewFabricWith(link Link, switchLatency sim.Time) Fabric {
	return Fabric{
		Link:               link,
		Switch:             Switch{Latency: switchLatency, CutThrough: true},
		InterDCPropagation: 5 * sim.Microsecond,
	}
}

// Hops returns the switch count for a flow of the given locality in a
// 3-tier clos: ToR (1), ToR-fabric-ToR (3), ToR-fabric-spine-fabric-ToR
// (5), plus DC-edge routers for inter-DC (7).
func (f Fabric) Hops(lo Locality) int {
	switch lo {
	case IntraRack:
		return 1
	case IntraCluster:
		return 3
	case IntraDatacenter:
		return 5
	default:
		return 7
	}
}

// WireTime returns the full physical-network one-way latency of a frame of
// n bytes for a flow of the given locality: first serialisation, then one
// HopTime per switch, plus inter-DC propagation where applicable.
func (f Fabric) WireTime(n int, lo Locality) sim.Time {
	t := f.Link.TransferTime(n)
	hops := f.Hops(lo)
	for i := 0; i < hops; i++ {
		t += f.Switch.HopTime(f.Link, n)
	}
	if lo == InterDatacenter {
		t += f.InterDCPropagation
	}
	return t
}

// DirectWireTime is the point-to-point wire latency used in the Fig. 4 and
// Fig. 11 experiments: two nodes connected through one switch.
func (f Fabric) DirectWireTime(n int) sim.Time {
	return f.Link.TransferTime(n) + f.Switch.HopTime(f.Link, n)
}
