package ethernet

import (
	"testing"

	"netdimm/internal/sim"
)

func TestSerializeTime(t *testing.T) {
	l := Link40G()
	// 1514B + 24B overhead = 1538B = 12304 bits at 40Gbps ~ 307.6ns.
	got := l.SerializeTime(1514)
	if got < 300*sim.Nanosecond || got > 315*sim.Nanosecond {
		t.Fatalf("SerializeTime(1514) = %v, want ~308ns", got)
	}
	if l.SerializeTime(64) >= l.SerializeTime(1514) {
		t.Fatal("serialisation should grow with size")
	}
}

func TestTransferTime(t *testing.T) {
	l := Link40G()
	if l.TransferTime(64) != l.SerializeTime(64)+l.PHYLatency {
		t.Fatal("TransferTime composition wrong")
	}
}

func TestSwitchModes(t *testing.T) {
	l := Link40G()
	ct := Switch{Latency: 100 * sim.Nanosecond, CutThrough: true}
	sf := Switch{Latency: 100 * sim.Nanosecond, CutThrough: false}
	if ct.HopTime(l, 1514) >= sf.HopTime(l, 1514) {
		t.Fatal("cut-through should beat store-and-forward for large frames")
	}
}

func TestHopCounts(t *testing.T) {
	f := NewFabric(100 * sim.Nanosecond)
	if f.Hops(IntraRack) != 1 || f.Hops(IntraCluster) != 3 ||
		f.Hops(IntraDatacenter) != 5 || f.Hops(InterDatacenter) != 7 {
		t.Fatal("clos hop counts wrong")
	}
}

func TestWireTimeOrdering(t *testing.T) {
	f := NewFabric(100 * sim.Nanosecond)
	n := 256
	a := f.WireTime(n, IntraRack)
	b := f.WireTime(n, IntraCluster)
	c := f.WireTime(n, IntraDatacenter)
	d := f.WireTime(n, InterDatacenter)
	if !(a < b && b < c && c < d) {
		t.Fatalf("locality ordering violated: %v %v %v %v", a, b, c, d)
	}
	// Inter-DC pays WAN propagation beyond the extra hops.
	if d-c < f.InterDCPropagation {
		t.Fatal("inter-DC should include WAN propagation")
	}
}

// Fig. 12a mechanism: lower switch latency shrinks the wire share, which
// is what amplifies NetDIMM's relative gains.
func TestSwitchLatencySensitivity(t *testing.T) {
	fast := NewFabric(25 * sim.Nanosecond)
	slow := NewFabric(200 * sim.Nanosecond)
	diff := slow.WireTime(256, IntraCluster) - fast.WireTime(256, IntraCluster)
	want := sim.Time(3) * (200 - 25) * sim.Nanosecond
	if diff != want {
		t.Fatalf("switch sweep delta = %v, want %v", diff, want)
	}
}

func TestDirectWireTime(t *testing.T) {
	f := NewFabric(100 * sim.Nanosecond)
	if f.DirectWireTime(64) != f.WireTime(64, IntraRack) {
		t.Fatal("direct wire should equal one-switch path")
	}
}

func TestLocalityString(t *testing.T) {
	if IntraCluster.String() != "intra-cluster" || Locality(9).String() == "" {
		t.Fatal("Locality.String wrong")
	}
}
