package ethernet

import (
	"testing"

	"netdimm/internal/fault"
	"netdimm/internal/sim"
)

func testFabric() Fabric {
	return NewFabricWith(LinkGbps(40), 100*sim.Nanosecond)
}

func TestLossyPathNilInjectorAlwaysDelivers(t *testing.T) {
	lp := LossyPath{Fabric: testFabric()}
	for i := 0; i < 50; i++ {
		out, wire := lp.Attempt(1514)
		if out != fault.Delivered {
			t.Fatalf("attempt %d: outcome %v, want delivered", i, out)
		}
		if wire != lp.Fabric.DirectWireTime(1514) {
			t.Fatalf("wire = %v, want the fabric's direct wire time %v", wire, lp.Fabric.DirectWireTime(1514))
		}
	}
}

func TestLossyPathZeroSpecMatchesNil(t *testing.T) {
	lp := LossyPath{Fabric: testFabric(), Inj: fault.NewInjector(fault.Spec{}, 3)}
	for i := 0; i < 50; i++ {
		if out, _ := lp.Attempt(64); out != fault.Delivered {
			t.Fatalf("zero spec produced %v", out)
		}
	}
}

func TestLossyPathOutcomeCosts(t *testing.T) {
	fab := testFabric()
	cases := []struct {
		name string
		spec fault.Spec
		want fault.Outcome
		wire sim.Time
	}{
		{"drop", fault.Spec{DropProb: 1}, fault.Dropped, 0},
		{"portDrop", fault.Spec{PortDropProb: 1}, fault.Dropped, fab.Link.TransferTime(1514)},
		{"corrupt", fault.Spec{CorruptProb: 1}, fault.Corrupted, fab.DirectWireTime(1514)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			lp := LossyPath{Fabric: fab, Inj: fault.NewInjector(tc.spec, 1)}
			out, wire := lp.Attempt(1514)
			if out != tc.want || wire != tc.wire {
				t.Errorf("Attempt = (%v, %v), want (%v, %v)", out, wire, tc.want, tc.wire)
			}
		})
	}
}

// The loss rate actually realised over many attempts must track the
// configured probability (the stream is uniform), and identical seeds must
// reproduce the identical trace.
func TestLossyPathRateAndDeterminism(t *testing.T) {
	spec := fault.Spec{DropProb: 0.2}
	a := LossyPath{Fabric: testFabric(), Inj: fault.NewInjector(spec, 11)}
	b := LossyPath{Fabric: testFabric(), Inj: fault.NewInjector(spec, 11)}
	const n = 5000
	drops := 0
	for i := 0; i < n; i++ {
		oa, _ := a.Attempt(256)
		ob, _ := b.Attempt(256)
		if oa != ob {
			t.Fatalf("attempt %d diverged between identical seeds", i)
		}
		if oa == fault.Dropped {
			drops++
		}
	}
	rate := float64(drops) / n
	if rate < 0.15 || rate > 0.25 {
		t.Errorf("realised drop rate %.3f, want ~0.2", rate)
	}
}

// An injected port drop is tail-dropped at the switch egress port and
// counted in the port statistics alongside real buffer drops.
func TestPortInjectedDrop(t *testing.T) {
	eng := sim.NewEngine()
	p := NewPort(eng, LinkGbps(40), 64)
	p.InjectFaults(fault.NewInjector(fault.Spec{PortDropProb: 1}, 5))
	delivered := 0
	if ok := p.Send(Frame{ID: 1, Bytes: 64}, func(Frame) { delivered++ }); ok {
		t.Fatal("Send accepted a frame the injector must drop")
	}
	eng.Run()
	if delivered != 0 {
		t.Fatal("injected-drop frame was delivered")
	}
	if s := p.Stats(); s.Dropped != 1 || s.Forwarded != 0 {
		t.Errorf("stats = %+v, want 1 drop, 0 forwarded", s)
	}
}

func TestSwitchNodeInjectFaults(t *testing.T) {
	eng := sim.NewEngine()
	s := NewSwitchNode(eng, LinkGbps(40), 100*sim.Nanosecond, 2, 8)
	inj := fault.NewInjector(fault.Spec{PortDropProb: 1}, 2)
	s.InjectFaults(inj)
	for port := 0; port < 2; port++ {
		s.Forward(port, Frame{ID: uint64(port), Bytes: 64}, nil)
	}
	eng.Run()
	if got := inj.Counters.PortDrops; got != 2 {
		t.Errorf("PortDrops = %d, want 2 (one per egress port)", got)
	}
}
