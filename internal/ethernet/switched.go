package ethernet

import (
	"fmt"

	"netdimm/internal/fault"
	"netdimm/internal/sim"
)

// The analytic Fabric covers the paper's experiments (uncongested paths).
// This file is the event-driven extension: output-queued switch ports with
// finite buffers, so congestion effects — queueing delay and tail drops
// under incast — are simulated rather than assumed away.

// Frame is one frame in flight through the switched fabric.
type Frame struct {
	ID    uint64
	Bytes int
	// ECN is the congestion-experienced mark. A port whose queue is at or
	// beyond its ECN threshold sets it at enqueue; the bit is sticky, so a
	// mark anywhere along a multi-hop path survives to the receiver (the
	// IP-ECN CE semantics DCTCP-style senders react to).
	ECN bool
	// Enqueued is when the frame entered the current port's queue.
	Enqueued sim.Time
}

// PortStats counts egress-port events.
type PortStats struct {
	Forwarded uint64
	Dropped   uint64
	// Marked counts frames that received a fresh ECN mark at this port
	// (frames arriving already marked are not recounted).
	Marked uint64
	// QueueDelaySum accumulates time forwarded frames spent waiting behind
	// other frames. It advances at transmission completion, the same
	// instant Forwarded does, so the AvgQueueDelay division is consistent
	// whenever it is read — not only after the queue drains.
	QueueDelaySum sim.Time
	MaxDepth      int
}

// AvgQueueDelay returns the mean queueing delay of forwarded frames, or 0
// when no frame has completed transmission yet.
func (s PortStats) AvgQueueDelay() sim.Time {
	if s.Forwarded == 0 {
		return 0
	}
	return s.QueueDelaySum / sim.Time(s.Forwarded)
}

// Port is an output-queued switch egress port: frames serialise onto the
// link one at a time; arrivals beyond the buffer are tail-dropped.
type Port struct {
	eng      *sim.Engine
	link     Link
	capacity int // frames of buffering

	queue []queuedFrame
	busy  bool
	ecnAt int // queue depth at/beyond which enqueues are ECN-marked; 0 = off
	stats PortStats
	inj   *fault.Injector
}

type queuedFrame struct {
	frame   Frame
	deliver func(Frame)
}

// NewPort returns a port over the given link with a buffer of capacity
// frames.
func NewPort(eng *sim.Engine, link Link, capacity int) *Port {
	if capacity <= 0 {
		panic(fmt.Sprintf("ethernet: port capacity %d", capacity))
	}
	return &Port{eng: eng, link: link, capacity: capacity}
}

// Stats returns a copy of the port statistics.
func (p *Port) Stats() PortStats { return p.stats }

// InjectFaults attaches a fault injector: each enqueue additionally draws
// the injected tail-drop decision (modelling congestion or a flaky port
// ASIC) on top of the real buffer-occupancy drop.
func (p *Port) InjectFaults(inj *fault.Injector) { p.inj = inj }

// SetECNThreshold arms ECN marking: a frame enqueued when the port already
// holds at least `frames` frames (including the one on the wire) leaves
// with its ECN bit set. 0 disables marking (the default).
func (p *Port) SetECNThreshold(frames int) {
	if frames < 0 {
		panic(fmt.Sprintf("ethernet: ECN threshold %d", frames))
	}
	p.ecnAt = frames
}

// Depth returns the current queue occupancy (including the frame on the
// wire).
func (p *Port) Depth() int {
	n := len(p.queue)
	if p.busy {
		n++
	}
	return n
}

// Send enqueues a frame for transmission. deliver fires when the last bit
// leaves the wire (plus PHY latency). A full buffer tail-drops the frame
// and returns false.
func (p *Port) Send(f Frame, deliver func(Frame)) bool {
	if p.Depth() >= p.capacity {
		p.stats.Dropped++
		return false
	}
	if p.inj != nil && p.inj.PortDrop() {
		p.stats.Dropped++
		return false
	}
	if p.ecnAt > 0 && p.Depth() >= p.ecnAt && !f.ECN {
		f.ECN = true
		p.stats.Marked++
	}
	f.Enqueued = p.eng.Now()
	p.queue = append(p.queue, queuedFrame{frame: f, deliver: deliver})
	if d := p.Depth(); d > p.stats.MaxDepth {
		p.stats.MaxDepth = d
	}
	if !p.busy {
		p.transmitNext()
	}
	return true
}

func (p *Port) transmitNext() {
	if len(p.queue) == 0 {
		p.busy = false
		return
	}
	p.busy = true
	qf := p.queue[0]
	p.queue = p.queue[1:]
	waited := p.eng.Now() - qf.frame.Enqueued
	wire := p.link.SerializeTime(qf.frame.Bytes)
	p.eng.Schedule(wire, func() {
		p.stats.Forwarded++
		p.stats.QueueDelaySum += waited
		if qf.deliver != nil {
			f := qf.frame
			p.eng.Schedule(p.link.PHYLatency, func() { qf.deliver(f) })
		}
		p.transmitNext()
	})
}

// SwitchNode is an event-driven switch: frames arrive, pay the switching
// latency, and queue at the destination egress port.
type SwitchNode struct {
	eng     *sim.Engine
	latency sim.Time
	ports   []*Port
}

// NewSwitchNode builds a switch with n egress ports of the given buffer
// capacity.
func NewSwitchNode(eng *sim.Engine, link Link, latency sim.Time, n, portCapacity int) *SwitchNode {
	if n <= 0 {
		panic("ethernet: switch needs ports")
	}
	s := &SwitchNode{eng: eng, latency: latency}
	for i := 0; i < n; i++ {
		s.ports = append(s.ports, NewPort(eng, link, portCapacity))
	}
	return s
}

// Port returns egress port i.
func (s *SwitchNode) Port(i int) *Port { return s.ports[i] }

// InjectFaults attaches a fault injector to every egress port.
func (s *SwitchNode) InjectFaults(inj *fault.Injector) {
	for _, p := range s.ports {
		p.InjectFaults(inj)
	}
}

// Ports returns the number of egress ports.
func (s *SwitchNode) Ports() int { return len(s.ports) }

// SetECNThreshold arms ECN marking on every egress port.
func (s *SwitchNode) SetECNThreshold(frames int) {
	for _, p := range s.ports {
		p.SetECNThreshold(frames)
	}
}

// Forward switches a frame to egress port dst; deliver fires at the far
// end of that port's link. The drop decision happens after the switching
// delay, when the frame reaches the egress buffer, and is counted in that
// port's Dropped stat — a dropped frame simply never calls deliver. (An
// earlier version also returned a best-effort bool read on the near side
// of the delay, which could disagree with the real decision; drop
// accounting now has exactly one authority, Port.Send.)
func (s *SwitchNode) Forward(dst int, f Frame, deliver func(Frame)) {
	if dst < 0 || dst >= len(s.ports) {
		panic(fmt.Sprintf("ethernet: no port %d", dst))
	}
	s.eng.Schedule(s.latency, func() {
		s.ports[dst].Send(f, deliver)
	})
}
