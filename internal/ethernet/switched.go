package ethernet

import (
	"fmt"

	"netdimm/internal/fault"
	"netdimm/internal/sim"
)

// The analytic Fabric covers the paper's experiments (uncongested paths).
// This file is the event-driven extension: output-queued switch ports with
// finite buffers, so congestion effects — queueing delay and tail drops
// under incast — are simulated rather than assumed away.

// Frame is one frame in flight through the switched fabric.
type Frame struct {
	ID    uint64
	Bytes int
	// Enqueued is when the frame entered the current port's queue.
	Enqueued sim.Time
}

// PortStats counts egress-port events.
type PortStats struct {
	Forwarded uint64
	Dropped   uint64
	// QueueDelaySum accumulates time spent waiting behind other frames.
	QueueDelaySum sim.Time
	MaxDepth      int
}

// AvgQueueDelay returns the mean queueing delay of forwarded frames.
func (s PortStats) AvgQueueDelay() sim.Time {
	if s.Forwarded == 0 {
		return 0
	}
	return s.QueueDelaySum / sim.Time(s.Forwarded)
}

// Port is an output-queued switch egress port: frames serialise onto the
// link one at a time; arrivals beyond the buffer are tail-dropped.
type Port struct {
	eng      *sim.Engine
	link     Link
	capacity int // frames of buffering

	queue []queuedFrame
	busy  bool
	stats PortStats
	inj   *fault.Injector
}

type queuedFrame struct {
	frame   Frame
	deliver func(Frame)
}

// NewPort returns a port over the given link with a buffer of capacity
// frames.
func NewPort(eng *sim.Engine, link Link, capacity int) *Port {
	if capacity <= 0 {
		panic(fmt.Sprintf("ethernet: port capacity %d", capacity))
	}
	return &Port{eng: eng, link: link, capacity: capacity}
}

// Stats returns a copy of the port statistics.
func (p *Port) Stats() PortStats { return p.stats }

// InjectFaults attaches a fault injector: each enqueue additionally draws
// the injected tail-drop decision (modelling congestion or a flaky port
// ASIC) on top of the real buffer-occupancy drop.
func (p *Port) InjectFaults(inj *fault.Injector) { p.inj = inj }

// Depth returns the current queue occupancy (including the frame on the
// wire).
func (p *Port) Depth() int {
	n := len(p.queue)
	if p.busy {
		n++
	}
	return n
}

// Send enqueues a frame for transmission. deliver fires when the last bit
// leaves the wire (plus PHY latency). A full buffer tail-drops the frame
// and returns false.
func (p *Port) Send(f Frame, deliver func(Frame)) bool {
	if p.Depth() >= p.capacity {
		p.stats.Dropped++
		return false
	}
	if p.inj != nil && p.inj.PortDrop() {
		p.stats.Dropped++
		return false
	}
	f.Enqueued = p.eng.Now()
	p.queue = append(p.queue, queuedFrame{frame: f, deliver: deliver})
	if d := p.Depth(); d > p.stats.MaxDepth {
		p.stats.MaxDepth = d
	}
	if !p.busy {
		p.transmitNext()
	}
	return true
}

func (p *Port) transmitNext() {
	if len(p.queue) == 0 {
		p.busy = false
		return
	}
	p.busy = true
	qf := p.queue[0]
	p.queue = p.queue[1:]
	p.stats.QueueDelaySum += p.eng.Now() - qf.frame.Enqueued
	wire := p.link.SerializeTime(qf.frame.Bytes)
	p.eng.Schedule(wire, func() {
		p.stats.Forwarded++
		if qf.deliver != nil {
			f := qf.frame
			p.eng.Schedule(p.link.PHYLatency, func() { qf.deliver(f) })
		}
		p.transmitNext()
	})
}

// SwitchNode is an event-driven switch: frames arrive, pay the switching
// latency, and queue at the destination egress port.
type SwitchNode struct {
	eng     *sim.Engine
	latency sim.Time
	ports   []*Port
}

// NewSwitchNode builds a switch with n egress ports of the given buffer
// capacity.
func NewSwitchNode(eng *sim.Engine, link Link, latency sim.Time, n, portCapacity int) *SwitchNode {
	if n <= 0 {
		panic("ethernet: switch needs ports")
	}
	s := &SwitchNode{eng: eng, latency: latency}
	for i := 0; i < n; i++ {
		s.ports = append(s.ports, NewPort(eng, link, portCapacity))
	}
	return s
}

// Port returns egress port i.
func (s *SwitchNode) Port(i int) *Port { return s.ports[i] }

// InjectFaults attaches a fault injector to every egress port.
func (s *SwitchNode) InjectFaults(inj *fault.Injector) {
	for _, p := range s.ports {
		p.InjectFaults(inj)
	}
}

// Forward switches a frame to egress port dst; deliver fires at the far
// end of that port's link. It reports false if the egress buffer dropped
// the frame.
func (s *SwitchNode) Forward(dst int, f Frame, deliver func(Frame)) bool {
	if dst < 0 || dst >= len(s.ports) {
		panic(fmt.Sprintf("ethernet: no port %d", dst))
	}
	ok := true
	s.eng.Schedule(s.latency, func() {
		ok = s.ports[dst].Send(f, deliver)
	})
	// The drop decision happens after the switching delay; for the
	// caller's convenience we report synchronously whether the port was
	// already full now (best-effort early signal).
	if s.ports[dst].Depth() >= s.ports[dst].capacity {
		return false
	}
	return ok
}
