package memctrl

import (
	"testing"
	"testing/quick"

	"netdimm/internal/dram"
	"netdimm/internal/sim"
)

// Same-address reads must complete in submission order: FR-FCFS prefers
// row hits but scans in queue (age) order, so it never reorders requests
// to one address.
func TestSameAddressOrderingProperty(t *testing.T) {
	f := func(fill []uint16) bool {
		eng := sim.NewEngine()
		c := New(eng, DefaultConfig(), NewRankSet(dram.DDR4_2400(), 1))
		var completions []int
		target := int64(0x4000)
		seq := 0
		for i, v := range fill {
			if i%3 == 0 {
				idx := seq
				seq++
				if c.Submit(&Request{Addr: target, Done: func(Response) {
					completions = append(completions, idx)
				}}) != nil {
					seq--
				}
			} else {
				c.Submit(&Request{Addr: int64(v) * 64})
			}
			if i%16 == 15 {
				eng.Run()
			}
		}
		eng.Run()
		for i, v := range completions {
			if v != i {
				return false
			}
		}
		return len(completions) == seq
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Bandwidth can never exceed the channel's physical limit.
func TestBandwidthCeilingProperty(t *testing.T) {
	eng := sim.NewEngine()
	tm := dram.DDR4_2400()
	c := New(eng, DefaultConfig(), NewRankSet(tm, 2))
	const n = 4000
	var last sim.Time
	for i := 0; i < n; i++ {
		c.Submit(&Request{Addr: int64(i%512) * 64, Done: func(r Response) { last = r.Completed }})
		if i%32 == 31 {
			eng.Run()
		}
	}
	eng.Run()
	bytes := float64(c.Stats().BytesTransferred)
	gbps := bytes / last.Seconds()
	if gbps > tm.BandwidthBytesPerSec*1.01 {
		t.Fatalf("delivered %.2e B/s exceeds channel limit %.2e", gbps, tm.BandwidthBytesPerSec)
	}
	// And a row-friendly stream should get reasonably close (>50%).
	if gbps < tm.BandwidthBytesPerSec*0.5 {
		t.Fatalf("delivered %.2e B/s, under half the channel limit", gbps)
	}
}

// TCMD is paid by every request.
func TestTCMDContribution(t *testing.T) {
	eng := sim.NewEngine()
	cfgA := DefaultConfig()
	cfgA.TCMD = 0
	cfgB := DefaultConfig()
	cfgB.TCMD = 50 * sim.Nanosecond

	run := func(cfg Config) sim.Time {
		e := sim.NewEngine()
		c := New(e, cfg, NewRankSet(dram.DDR4_2400(), 1))
		var lat sim.Time
		c.Submit(&Request{Addr: 0, Done: func(r Response) { lat = r.Latency() }})
		e.Run()
		return lat
	}
	_ = eng
	d := run(cfgB) - run(cfgA)
	if d != 50*sim.Nanosecond {
		t.Fatalf("TCMD delta = %v, want 50ns", d)
	}
}

// Write draining empties the write queue even with a continuous read
// stream (no write starvation).
func TestWritesEventuallyDrain(t *testing.T) {
	eng := sim.NewEngine()
	c := New(eng, DefaultConfig(), NewRankSet(dram.DDR4_2400(), 1))
	for i := 0; i < 32; i++ {
		if err := c.Submit(&Request{Addr: int64(i) * 64, Write: true}); err != nil {
			t.Fatal(err)
		}
	}
	// Interleave reads.
	for i := 0; i < 200; i++ {
		c.Submit(&Request{Addr: int64(i%64) * 64})
		if i%8 == 7 {
			eng.Run()
		}
	}
	eng.Run()
	if c.Stats().WritesDone != 32 {
		t.Fatalf("WritesDone = %d, want 32", c.Stats().WritesDone)
	}
	r, w := c.QueueDepths()
	if r != 0 || w != 0 {
		t.Fatalf("queues not drained: %d/%d", r, w)
	}
}
