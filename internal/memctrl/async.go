package memctrl

import (
	"fmt"

	"netdimm/internal/fault"
	"netdimm/internal/nvdimmp"
	"netdimm/internal/obs"
	"netdimm/internal/sim"
)

// AsyncReader is the host memory controller's recovery path for NVDIMM-P
// asynchronous reads (paper Sec. 2.2): every read issues an XRD through the
// request-ID Tracker and arms a RDY deadline. If the device's RDY signal is
// lost — injected via fault.Injector.LoseRDY, modelling a glitched RSP pin
// or a wedged device — the deadline fires, the transaction aborts, and the
// controller re-issues it with capped exponential backoff until the retry
// policy's cap. Without an injector (or with RDY loss at probability zero)
// reads behave exactly like the tracker's normal Issue/Ready/Complete
// sequence.
type AsyncReader struct {
	eng     *sim.Engine
	tracker *nvdimmp.Tracker
	// read starts one device media access for addr; done fires at the
	// instant the device stages the data and raises RDY.
	read   func(addr int64, done func())
	inj    *fault.Injector
	policy fault.RetryPolicy
	// trace, when attached via Observe, records one span per protocol
	// episode: completed XRDs, RDY timeouts and re-issue backoffs.
	trace *obs.Track
}

// NewAsyncReader builds a reader over the tracker and device read
// function. The tracker must have a timeout armed (SetTimeout) for RDY-loss
// recovery to engage; policy paces the re-issues.
func NewAsyncReader(eng *sim.Engine, tracker *nvdimmp.Tracker, read func(addr int64, done func()), inj *fault.Injector, policy fault.RetryPolicy) *AsyncReader {
	if eng == nil || tracker == nil || read == nil {
		panic("memctrl: AsyncReader needs an engine, tracker and read function")
	}
	return &AsyncReader{eng: eng, tracker: tracker, read: read, inj: inj, policy: policy}
}

// Observe attaches (or, with nil, detaches) the recovery-path span track.
func (a *AsyncReader) Observe(t *obs.Track) { a.trace = t }

// Read performs one recoverable asynchronous read. done fires exactly once:
// with the end-to-end latency (including any timeout and backoff spans) on
// success, or with an error when the ID space or the retry cap is
// exhausted.
func (a *AsyncReader) Read(addr int64, done func(lat sim.Time, err error)) {
	a.attempt(addr, 0, a.eng.Now(), done)
}

func (a *AsyncReader) attempt(addr int64, n int, start sim.Time, done func(sim.Time, error)) {
	tx, err := a.tracker.Issue(a.eng.Now(), addr)
	if err != nil {
		// ID space exhausted: back off like any other transient failure.
		a.recover(addr, n, start, done, err)
		return
	}
	id := tx.ID
	lost := a.inj != nil && a.inj.LoseRDY()
	issued := a.eng.Now()

	// current guards against the stale device callback of an aborted
	// attempt completing a later re-issue of the same request ID.
	current := true
	var timeoutEv sim.EventID
	if d := a.tracker.Timeout(); d > 0 {
		timeoutEv = a.eng.Schedule(d, func() {
			if !current {
				return
			}
			current = false
			a.tracker.Abort(id)
			a.trace.Span("rdy-timeout", issued, a.eng.Now())
			a.recover(addr, n, start, done,
				fmt.Errorf("memctrl: RDY timeout after %v for addr %#x", d, addr))
		})
	}
	a.read(addr, func() {
		if !current || lost {
			// Aborted, or the RDY pulse never reached the host: the data
			// sits staged in the device until the timeout reclaims the ID.
			return
		}
		current = false
		if timeoutEv != 0 {
			a.eng.Cancel(timeoutEv)
		}
		a.tracker.Ready(id, a.eng.Now())
		a.tracker.Complete(id)
		a.trace.Span("xrd", issued, a.eng.Now())
		done(a.eng.Now()-start, nil)
	})
}

// recover schedules the next attempt per the retry policy, or gives up.
func (a *AsyncReader) recover(addr int64, n int, start sim.Time, done func(sim.Time, error), cause error) {
	delay, ok := a.policy.NextDelay(n)
	if !ok {
		if a.inj != nil {
			a.inj.Counters.MemFailures++
		}
		done(0, fmt.Errorf("memctrl: read %#x failed after %d attempts (%v): %w",
			addr, n+1, cause, fault.ErrExhausted))
		return
	}
	if a.inj != nil {
		a.inj.Counters.MemRetries++
	}
	a.trace.Span("re-issue backoff", a.eng.Now(), a.eng.Now()+delay)
	a.eng.Schedule(delay, func() { a.attempt(addr, n+1, start, done) })
}
