package memctrl

import (
	"testing"

	"netdimm/internal/addrmap"
	"netdimm/internal/dram"
	"netdimm/internal/sim"
)

func newCtrl(t *testing.T) (*sim.Engine, *Controller, *RankSet) {
	t.Helper()
	eng := sim.NewEngine()
	rs := NewRankSet(dram.DDR4_2400(), 2)
	return eng, New(eng, DefaultConfig(), rs), rs
}

func TestSingleReadLatency(t *testing.T) {
	eng, c, _ := newCtrl(t)
	var resp Response
	err := c.Submit(&Request{Addr: 0, Done: func(r Response) { resp = r }})
	if err != nil {
		t.Fatal(err)
	}
	eng.Run()
	tm := dram.DDR4_2400()
	want := DefaultConfig().TCMD + tm.TRCD + tm.TCL + tm.TBL
	if resp.Latency() != want {
		t.Fatalf("read latency = %v, want %v", resp.Latency(), want)
	}
	if resp.Kind != dram.RowMiss {
		t.Fatalf("kind = %v, want miss", resp.Kind)
	}
}

func TestRowHitFollowUp(t *testing.T) {
	eng, c, _ := newCtrl(t)
	var lat []sim.Time
	done := func(r Response) { lat = append(lat, r.Latency()) }
	c.Submit(&Request{Addr: 0, Done: done})
	c.Submit(&Request{Addr: 64, Done: done})
	eng.Run()
	if len(lat) != 2 {
		t.Fatalf("completed %d reads", len(lat))
	}
	// The second read queues behind the first but skips the activate, so
	// its total latency stays below a full back-to-back (2x) serialisation.
	if lat[1] >= 2*lat[0] {
		t.Fatalf("second (row-hit) read latency %v not pipelined vs %v", lat[1], lat[0])
	}
}

// FR-FCFS: a row-hit request issued later should be served before an older
// row-conflict request, up to the starvation cap.
func TestFRFCFSPrefersRowHits(t *testing.T) {
	eng, c, _ := newCtrl(t)
	var order []string
	// Open row 0 first.
	c.Submit(&Request{Addr: 0, Done: func(Response) { order = append(order, "warm") }})
	eng.Run()

	conflictAddr := addrmap.SameSubarrayPageStride // same bank, other row
	c.Submit(&Request{Addr: conflictAddr, Done: func(Response) { order = append(order, "conflict") }})
	c.Submit(&Request{Addr: 64, Done: func(Response) { order = append(order, "hit") }})
	eng.Run()
	if len(order) != 3 || order[1] != "hit" || order[2] != "conflict" {
		t.Fatalf("order = %v, want hit before conflict", order)
	}
}

// Anti-starvation: a bypassed request is eventually served even under a
// steady stream of row hits.
func TestNoStarvation(t *testing.T) {
	eng := sim.NewEngine()
	cfg := DefaultConfig()
	cfg.StarvationCap = 4
	rs := NewRankSet(dram.DDR4_2400(), 1)
	c := New(eng, cfg, rs)

	c.Submit(&Request{Addr: 0})
	eng.Run()

	victimDone := sim.Time(-1)
	c.Submit(&Request{Addr: addrmap.SameSubarrayPageStride, Done: func(r Response) { victimDone = r.Completed }})
	// Feed row hits continuously; the victim must still complete.
	for i := 1; i <= 50; i++ {
		c.Submit(&Request{Addr: int64(i%60) * 64})
	}
	eng.Run()
	if victimDone < 0 {
		t.Fatal("row-conflict request starved")
	}
	s := c.Stats()
	if s.ReadsDone != 52 {
		t.Fatalf("ReadsDone = %d, want 52", s.ReadsDone)
	}
}

func TestQueueFullRejects(t *testing.T) {
	eng := sim.NewEngine()
	cfg := DefaultConfig()
	cfg.ReadQueueCap = 4
	rs := NewRankSet(dram.DDR4_2400(), 1)
	c := New(eng, cfg, rs)
	var rejected int
	for i := 0; i < 10; i++ {
		if err := c.Submit(&Request{Addr: int64(i) * 64}); err != nil {
			rejected++
		}
	}
	if rejected != 6 {
		t.Fatalf("rejected = %d, want 6", rejected)
	}
	if c.Stats().Rejected != 6 {
		t.Fatalf("stats.Rejected = %d", c.Stats().Rejected)
	}
	eng.Run()
	if c.Stats().ReadsDone != 4 {
		t.Fatalf("ReadsDone = %d", c.Stats().ReadsDone)
	}
}

// Writes are buffered and drained at the high watermark; reads keep
// priority below it.
func TestWriteDraining(t *testing.T) {
	eng := sim.NewEngine()
	cfg := DefaultConfig()
	cfg.WriteHighWatermark = 8
	cfg.WriteLowWatermark = 2
	cfg.WriteQueueCap = 32
	rs := NewRankSet(dram.DDR4_2400(), 1)
	c := New(eng, cfg, rs)

	for i := 0; i < 16; i++ {
		if err := c.Submit(&Request{Addr: int64(i) * 64, Write: true}); err != nil {
			t.Fatal(err)
		}
	}
	eng.Run()
	if c.Stats().WritesDone != 16 {
		t.Fatalf("WritesDone = %d", c.Stats().WritesDone)
	}
}

func TestReadPriorityOverWrites(t *testing.T) {
	eng, c, _ := newCtrl(t)
	var first string
	mark := func(name string) func(Response) {
		return func(Response) {
			if first == "" {
				first = name
			}
		}
	}
	// A few writes below the watermark, then a read: the read goes first.
	c.Submit(&Request{Addr: 1 << 20, Write: true, Done: mark("write")})
	c.Submit(&Request{Addr: 2 << 20, Write: true, Done: mark("write")})
	c.Submit(&Request{Addr: 0, Done: mark("read")})
	eng.Run()
	if first != "read" {
		t.Fatalf("first completion = %q, want read", first)
	}
}

func TestStatsBandwidth(t *testing.T) {
	eng, c, _ := newCtrl(t)
	const n = 1000
	for i := 0; i < n; i++ {
		c.Submit(&Request{Addr: int64(i) * 64})
		eng.Run()
	}
	s := c.Stats()
	if s.BytesTransferred != n*64 {
		t.Fatalf("BytesTransferred = %d", s.BytesTransferred)
	}
	if s.AvgReadLatency() <= 0 {
		t.Fatal("AvgReadLatency should be positive")
	}
	c.ResetStats()
	if c.Stats().ReadsDone != 0 {
		t.Fatal("ResetStats did not zero")
	}
}

// Throughput sanity: back-to-back row-hit reads approach the burst-rate
// bound of the channel and never exceed it.
func TestThroughputBound(t *testing.T) {
	eng, c, _ := newCtrl(t)
	const n = 2000
	var last sim.Time
	for i := 0; i < n; i++ {
		if err := c.Submit(&Request{Addr: int64(i%128) * 64, Done: func(r Response) { last = r.Completed }}); err != nil {
			t.Fatal(err)
		}
		if i%32 == 31 {
			eng.Run() // drain in batches so the read queue never overflows
		}
	}
	eng.Run()
	tm := dram.DDR4_2400()
	minTime := sim.Time(n) * tm.TBL // bus-bound lower limit
	if last < minTime {
		t.Fatalf("completed %d reads in %v, faster than the bus allows (%v)", n, last, minTime)
	}
	// Should be within 2x of the bound for a row-friendly stream.
	if last > 3*minTime {
		t.Fatalf("throughput too low: %v for bound %v", last, minTime)
	}
}

func TestDefaultBytes(t *testing.T) {
	eng, c, _ := newCtrl(t)
	c.Submit(&Request{Addr: 0}) // Bytes omitted -> one cacheline
	eng.Run()
	if c.Stats().BytesTransferred != addrmap.CachelineSize {
		t.Fatalf("BytesTransferred = %d, want one cacheline", c.Stats().BytesTransferred)
	}
}

func TestRankSetDecode(t *testing.T) {
	rs := NewRankSet(dram.DDR4_2400(), 2)
	rs.Access(0, 0, false, 64)
	rs.Access(0, addrmap.RankBytes, false, 64)
	if rs.Ranks[0].Stats().Reads != 1 || rs.Ranks[1].Stats().Reads != 1 {
		t.Fatalf("rank decode wrong: %d/%d reads", rs.Ranks[0].Stats().Reads, rs.Ranks[1].Stats().Reads)
	}
	s := rs.Stats()
	if s.Reads != 2 {
		t.Fatalf("aggregate reads = %d", s.Reads)
	}
}

func TestNilBackendPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("nil backend accepted")
		}
	}()
	New(sim.NewEngine(), DefaultConfig(), nil)
}

func BenchmarkControllerStream(b *testing.B) {
	eng := sim.NewEngine()
	rs := NewRankSet(dram.DDR4_2400(), 2)
	c := New(eng, DefaultConfig(), rs)
	for i := 0; i < b.N; i++ {
		c.Submit(&Request{Addr: int64(i%4096) * 64, Write: i%3 == 0})
		if i%32 == 31 {
			eng.Run()
		}
	}
	eng.Run()
}
