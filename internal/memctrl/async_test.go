package memctrl

import (
	"errors"
	"testing"

	"netdimm/internal/fault"
	"netdimm/internal/nvdimmp"
	"netdimm/internal/sim"
)

// fakeDevice models the NVDIMM-P device side: a read stages data after a
// fixed media time and then "raises RDY" by invoking the callback.
type fakeDevice struct {
	eng   *sim.Engine
	media sim.Time
	reads int
}

func (d *fakeDevice) read(addr int64, done func()) {
	d.reads++
	d.eng.Schedule(d.media, func() { done() })
}

func newAsyncRig(t *testing.T, spec fault.Spec) (*sim.Engine, *AsyncReader, *fault.Injector, *fakeDevice, *nvdimmp.Tracker) {
	t.Helper()
	eng := sim.NewEngine()
	dev := &fakeDevice{eng: eng, media: 100 * sim.Nanosecond}
	tracker := nvdimmp.NewTracker(nvdimmp.DefaultTiming(), 8)
	tracker.SetTimeout(spec.MemDeadline())
	inj := fault.NewInjector(spec, 17)
	r := NewAsyncReader(eng, tracker, dev.read, inj, spec.MemPolicy())
	return eng, r, inj, dev, tracker
}

func TestAsyncReaderFaultFree(t *testing.T) {
	eng, r, inj, dev, tracker := newAsyncRig(t, fault.Spec{})
	var lat sim.Time
	var rerr error
	calls := 0
	r.Read(0x1000, func(l sim.Time, err error) { lat, rerr, calls = l, err, calls+1 })
	eng.Run()
	if calls != 1 || rerr != nil {
		t.Fatalf("done fired %d times, err %v", calls, rerr)
	}
	if lat != dev.media {
		t.Errorf("latency = %v, want the media time %v", lat, dev.media)
	}
	if dev.reads != 1 {
		t.Errorf("device reads = %d, want 1", dev.reads)
	}
	if inj.Counters.Any() {
		t.Errorf("fault-free read counted faults: %+v", inj.Counters)
	}
	if issued, completed, _ := tracker.Stats(); issued != 1 || completed != 1 {
		t.Errorf("tracker issued/completed = %d/%d, want 1/1", issued, completed)
	}
	if tracker.Outstanding() != 0 {
		t.Errorf("transaction left outstanding")
	}
}

// A lost RDY must time out, abort the transaction, and recover by
// re-issuing; total latency includes the timeout and backoff spans.
func TestAsyncReaderRecoversLostRDY(t *testing.T) {
	spec := fault.Spec{MemTimeoutProb: 1, MemTimeoutNs: 500, MemMaxRetries: 2, RetryBaseNs: 100}
	eng, r, inj, dev, tracker := newAsyncRig(t, spec)
	// First attempt loses RDY (prob 1)... and so does every retry; with a
	// retry budget of 2 the read must fail after 3 attempts.
	var rerr error
	calls := 0
	r.Read(0x40, func(l sim.Time, err error) { rerr, calls = err, calls+1 })
	eng.Run()
	if calls != 1 {
		t.Fatalf("done fired %d times, want exactly once", calls)
	}
	if !errors.Is(rerr, fault.ErrExhausted) {
		t.Fatalf("err = %v, want ErrExhausted", rerr)
	}
	if dev.reads != 3 {
		t.Errorf("device reads = %d, want 3 (initial + 2 retries)", dev.reads)
	}
	if inj.Counters.MemTimeouts != 3 || inj.Counters.MemRetries != 2 || inj.Counters.MemFailures != 1 {
		t.Errorf("counters = %+v, want 3 timeouts, 2 retries, 1 failure", inj.Counters)
	}
	if tracker.Aborted() != 3 {
		t.Errorf("aborted = %d, want 3", tracker.Aborted())
	}
	if tracker.Outstanding() != 0 {
		t.Errorf("aborted transactions left outstanding")
	}
}

// With RDY loss at 50%, a generous retry budget must eventually deliver
// every read, and the recovered reads must cost more than the media time.
func TestAsyncReaderEventualDelivery(t *testing.T) {
	spec := fault.Spec{MemTimeoutProb: 0.5, MemTimeoutNs: 500, MemMaxRetries: 32, RetryBaseNs: 100}
	eng, r, inj, _, _ := newAsyncRig(t, spec)
	const n = 200
	ok, failed := 0, 0
	var recovered bool
	for i := 0; i < n; i++ {
		start := eng.Now()
		r.Read(int64(i)*64, func(l sim.Time, err error) {
			if err != nil {
				failed++
				return
			}
			ok++
			if l > 100*sim.Nanosecond {
				recovered = true
			}
			_ = start
		})
		eng.Run()
	}
	if failed != 0 || ok != n {
		t.Fatalf("delivered %d, failed %d, want all %d delivered", ok, failed, n)
	}
	if !recovered {
		t.Error("no read paid a visible recovery latency at 50% RDY loss")
	}
	if inj.Counters.MemTimeouts == 0 || inj.Counters.MemRetries == 0 {
		t.Errorf("counters = %+v, want nonzero timeouts and retries", inj.Counters)
	}
}

// Unlimited retries (MemMaxRetries 0) must keep recovering rather than
// exhaust — bounded here by engine time, not the policy.
func TestAsyncReaderUnlimitedRetries(t *testing.T) {
	spec := fault.Spec{MemTimeoutProb: 0.9, MemTimeoutNs: 200, RetryBaseNs: 50}
	eng, r, _, _, _ := newAsyncRig(t, spec)
	done := false
	r.Read(0, func(l sim.Time, err error) {
		if err != nil {
			t.Errorf("unlimited policy reported %v", err)
		}
		done = true
	})
	eng.Run()
	if !done {
		t.Fatal("read never completed")
	}
}

func TestAsyncReaderNilGuards(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewAsyncReader accepted a nil tracker")
		}
	}()
	NewAsyncReader(sim.NewEngine(), nil, func(int64, func()) {}, nil, fault.RetryPolicy{})
}
