// Package memctrl models a DDR memory controller: read/write queues,
// FR-FCFS scheduling with an anti-starvation age cap, posted writes with
// high/low-watermark draining, and per-channel statistics.
//
// It follows the abstraction of the controller model the paper builds on
// (Hansson et al. [37]) and is reused both for host channels and for the
// NetDIMM-local nMC (paper Sec. 5.1: "we instantiate an isolated memory
// controller that models nMC").
package memctrl

import (
	"fmt"

	"netdimm/internal/addrmap"
	"netdimm/internal/dram"
	"netdimm/internal/obs"
	"netdimm/internal/sim"
)

// Backend is the device behind a controller: a set of DRAM ranks, or — for
// the host-side view of a NetDIMM — a forwarder that relays requests to the
// nMC over the NVDIMM-P protocol.
type Backend interface {
	// Access performs one transfer starting no earlier than now and returns
	// the completion instant and the row-buffer outcome.
	Access(now sim.Time, local int64, write bool, bytes int64) (sim.Time, dram.AccessKind)
	// WouldHit reports whether an access would hit an open row right now;
	// FR-FCFS uses it to prefer row hits.
	WouldHit(local int64) bool
}

// RankSet is a Backend over multiple DRAM ranks with Fig. 9 rank decode.
type RankSet struct {
	Ranks []*dram.Rank
}

// NewRankSet builds n ranks with the given timing, sharing one channel
// data bus (bursts from different ranks serialise).
func NewRankSet(t dram.Timing, n int) *RankSet {
	rs := &RankSet{}
	bus := &dram.Bus{}
	for i := 0; i < n; i++ {
		r := dram.NewRank(t)
		r.ShareBus(bus)
		rs.Ranks = append(rs.Ranks, r)
	}
	return rs
}

func (rs *RankSet) rank(local int64) *dram.Rank {
	idx := addrmap.DecodeRank(local).Rank
	if idx >= len(rs.Ranks) {
		idx = idx % len(rs.Ranks)
	}
	return rs.Ranks[idx]
}

// Access implements Backend.
func (rs *RankSet) Access(now sim.Time, local int64, write bool, bytes int64) (sim.Time, dram.AccessKind) {
	return rs.rank(local).Access(now, local, write, bytes)
}

// WouldHit implements Backend.
func (rs *RankSet) WouldHit(local int64) bool { return rs.rank(local).WouldHit(local) }

// Stats reduces all rank statistics to one.
func (rs *RankSet) Stats() dram.Stats {
	var s dram.Stats
	for _, r := range rs.Ranks {
		rs := r.Stats()
		s.Reads += rs.Reads
		s.Writes += rs.Writes
		s.Hits += rs.Hits
		s.Misses += rs.Misses
		s.Conflicts += rs.Conflicts
		s.Activations += rs.Activations
		s.BusBusy += rs.BusBusy
	}
	return s
}

// Request is one memory transaction submitted to a controller. Addresses
// are channel-local (after system-level interleave decode).
type Request struct {
	Addr  int64
	Write bool
	Bytes int64
	// Done, if non-nil, is invoked at the completion instant with the
	// response. For writes the transaction is posted: Done reports when the
	// write retired to the device, but callers should usually not wait on
	// it.
	Done func(Response)

	submitted sim.Time
	bypassed  int
}

// Response describes a completed transaction.
type Response struct {
	Addr      int64
	Write     bool
	Submitted sim.Time
	Completed sim.Time
	Kind      dram.AccessKind
}

// Latency is the queue+device latency of the transaction.
func (r Response) Latency() sim.Time { return r.Completed - r.Submitted }

// Config parameterises a controller.
type Config struct {
	ReadQueueCap  int
	WriteQueueCap int
	// WriteHighWatermark switches the scheduler to write draining;
	// WriteLowWatermark switches it back to serving reads.
	WriteHighWatermark int
	WriteLowWatermark  int
	// StarvationCap bounds how many times FR-FCFS may bypass a request in
	// favour of younger row hits.
	StarvationCap int
	// TCMD is the fixed command-processing delay of the controller front
	// end, applied to every request (paper Sec. 5.1).
	TCMD sim.Time
}

// DefaultConfig returns controller parameters typical of a server-class MC.
func DefaultConfig() Config {
	return Config{
		ReadQueueCap:       64,
		WriteQueueCap:      64,
		WriteHighWatermark: 48,
		WriteLowWatermark:  16,
		StarvationCap:      16,
		TCMD:               5 * sim.Nanosecond,
	}
}

// Stats accumulates controller-level statistics.
type Stats struct {
	ReadsDone, WritesDone uint64
	ReadLatencySum        sim.Time
	BytesTransferred      int64
	MaxReadQueueDepth     int
	Rejected              uint64 // requests dropped because a queue was full
}

// AvgReadLatency returns the mean read latency, or 0 if no reads completed.
func (s Stats) AvgReadLatency() sim.Time {
	if s.ReadsDone == 0 {
		return 0
	}
	return s.ReadLatencySum / sim.Time(s.ReadsDone)
}

// Controller is an event-driven memory-channel scheduler.
type Controller struct {
	eng     *sim.Engine
	cfg     Config
	backend Backend

	readQ    []*Request
	writeQ   []*Request
	draining bool
	// issueAt is the earliest instant the next command may issue; it tracks
	// the backend's data-bus availability so bank preparation of the next
	// request overlaps the current burst.
	issueAt    sim.Time
	pickQueued bool

	stats Stats

	// Observability hooks (see Observe): nil when disabled, and every use
	// is a nil-safe no-op, so the scheduling path is unchanged when off.
	trk   *obs.Track
	depth *obs.Series
}

// New returns a controller driving backend on the given engine.
func New(eng *sim.Engine, cfg Config, backend Backend) *Controller {
	if backend == nil {
		panic("memctrl: nil backend")
	}
	return &Controller{eng: eng, cfg: cfg, backend: backend}
}

// Stats returns a copy of the controller statistics.
func (c *Controller) Stats() Stats { return c.stats }

// ResetStats zeroes the statistics (for measurement windows after warmup).
func (c *Controller) ResetStats() { c.stats = Stats{} }

// QueueDepths reports the current read and write queue occupancy.
func (c *Controller) QueueDepths() (reads, writes int) {
	return len(c.readQ), len(c.writeQ)
}

// Observe attaches the observability plane: trk records one span per
// completed transaction (submit to completion, named by direction and
// row-buffer outcome), depth samples read-queue occupancy at every enqueue
// and issue. Either hook may be nil; Observe(nil, nil) detaches both.
func (c *Controller) Observe(trk *obs.Track, depth *obs.Series) {
	c.trk = trk
	c.depth = depth
}

// Submit enqueues a request. It returns an error if the target queue is
// full; the request is then dropped (callers model back-pressure).
func (c *Controller) Submit(req *Request) error {
	req.submitted = c.eng.Now()
	if req.Bytes <= 0 {
		req.Bytes = addrmap.CachelineSize
	}
	if req.Write {
		if len(c.writeQ) >= c.cfg.WriteQueueCap {
			c.stats.Rejected++
			return fmt.Errorf("memctrl: write queue full (%d)", c.cfg.WriteQueueCap)
		}
		c.writeQ = append(c.writeQ, req)
	} else {
		if len(c.readQ) >= c.cfg.ReadQueueCap {
			c.stats.Rejected++
			return fmt.Errorf("memctrl: read queue full (%d)", c.cfg.ReadQueueCap)
		}
		c.readQ = append(c.readQ, req)
		if d := len(c.readQ); d > c.stats.MaxReadQueueDepth {
			c.stats.MaxReadQueueDepth = d
		}
		c.depth.Sample(req.submitted, int64(len(c.readQ)))
	}
	c.schedulePick()
	return nil
}

func (c *Controller) schedulePick() {
	if c.pickQueued {
		return
	}
	c.pickQueued = true
	at := c.issueAt
	if at < c.eng.Now() {
		at = c.eng.Now()
	}
	c.eng.At(at, c.pick)
}

// pick selects and issues one request per invocation (FR-FCFS with
// watermark-based write draining), then reschedules itself.
func (c *Controller) pick() {
	c.pickQueued = false

	// Decide which queue to serve.
	if c.draining {
		if len(c.writeQ) <= c.cfg.WriteLowWatermark {
			c.draining = false
		}
	} else if len(c.writeQ) >= c.cfg.WriteHighWatermark {
		c.draining = true
	}
	var q *[]*Request
	switch {
	case c.draining && len(c.writeQ) > 0:
		q = &c.writeQ
	case len(c.readQ) > 0:
		q = &c.readQ
	case len(c.writeQ) > 0:
		q = &c.writeQ
	default:
		return
	}

	idx := c.frfcfs(*q)
	req := (*q)[idx]
	*q = append((*q)[:idx], (*q)[idx+1:]...)

	now := c.eng.Now()
	if !req.Write {
		c.depth.Sample(now, int64(len(c.readQ)))
	}
	done, kind := c.backend.Access(now+c.cfg.TCMD, req.Addr, req.Write, req.Bytes)
	// The front end issues one command per burst slot: command processing
	// pipelines, so a row-friendly stream is bus-bound, not tCMD+tCL-bound.
	// Bank and bus constraints are enforced inside the backend.
	burst := sim.Nanosecond
	if rs, ok := c.backend.(*RankSet); ok {
		burst = rs.Ranks[0].Timing().BurstTime(req.Bytes)
	}
	c.issueAt = now + burst

	c.eng.At(done, func() {
		if req.Write {
			c.stats.WritesDone++
		} else {
			c.stats.ReadsDone++
			c.stats.ReadLatencySum += done - req.submitted
		}
		if c.trk != nil {
			dir := "rd "
			if req.Write {
				dir = "wr "
			}
			c.trk.Span(dir+kind.String(), req.submitted, done)
		}
		c.stats.BytesTransferred += req.Bytes
		if req.Done != nil {
			req.Done(Response{
				Addr:      req.Addr,
				Write:     req.Write,
				Submitted: req.submitted,
				Completed: done,
				Kind:      kind,
			})
		}
	})

	if len(c.readQ)+len(c.writeQ) > 0 {
		c.schedulePick()
	}
}

// frfcfs returns the index of the request to issue: the oldest request that
// exceeded the starvation cap if any, else the oldest row hit, else the
// oldest request. Every bypassed request's age counter increments.
func (c *Controller) frfcfs(q []*Request) int {
	for i, r := range q {
		if r.bypassed >= c.cfg.StarvationCap {
			return i
		}
	}
	hit := -1
	for i, r := range q {
		if c.backend.WouldHit(r.Addr) {
			hit = i
			break
		}
	}
	pick := 0
	if hit >= 0 {
		pick = hit
	}
	for i, r := range q {
		if i != pick {
			r.bypassed++
		}
	}
	return pick
}
