package driver

import (
	"netdimm/internal/addrmap"
	"netdimm/internal/core"
	"netdimm/internal/ethernet"
	"netdimm/internal/kalloc"
	"netdimm/internal/nic"
	"netdimm/internal/sim"
	"netdimm/internal/stats"
)

// OneWay composes the full one-way latency of sending packet p from the tx
// machine to the rx machine over the fabric's point-to-point path: driver
// TX, wire, driver RX (the structure of the paper's Fig. 4 and Fig. 11
// experiments).
func OneWay(tx, rx Machine, p nic.Packet, fabric ethernet.Fabric) stats.Breakdown {
	b := tx.TX(p)
	b.Add(stats.Wire, fabric.DirectWireTime(p.Size))
	return b.Plus(rx.RX(p))
}

// NewMachine wraps a NIC device model and a software cost set into a
// polled-driver endpoint — the constructor a derived system configuration
// uses for dNIC and iNIC endpoints.
func NewMachine(dev nic.Device, costs Costs, zeroCopy bool) *HWDriver {
	return &HWDriver{Dev: dev, Costs: costs, ZeroCopy: zeroCopy}
}

// NewDNICMachine returns the baseline discrete-PCIe-NIC configuration.
func NewDNICMachine(zeroCopy bool) *HWDriver {
	return NewMachine(nic.NewDNIC(), DefaultCosts(), zeroCopy)
}

// NewINICMachine returns the integrated-NIC configuration.
func NewINICMachine(zeroCopy bool) *HWDriver {
	return NewMachine(nic.NewINIC(), DefaultCosts(), zeroCopy)
}

// DefaultZoneBases lays out n NetDIMM regions of the given size behind
// Table 1's 16GB of host DDR (two channels, page-granule interleave) and
// returns their NET_i zone bases. Configurations other than Table 1 derive
// bases from their own addrmap.SystemMap; this is the default the
// no-config constructors below share.
func DefaultZoneBases(n int, size int64) []int64 {
	const channels = 2
	specs := make([]addrmap.NetDIMMSpec, n)
	for i := range specs {
		specs[i] = addrmap.NetDIMMSpec{Channel: i % channels, Size: size}
	}
	m, err := addrmap.NewSystemMap(channels, 16<<30, addrmap.PageSize, specs...)
	if err != nil {
		panic(err) // unreachable: the default layout is statically valid
	}
	bases := make([]int64, n)
	for i := range bases {
		r, err := m.NetDIMMRegion(i)
		if err != nil {
			panic(err)
		}
		bases[i] = r.Base
	}
	return bases
}

// NewNetDIMMMachine builds a complete NetDIMM endpoint: engine, device,
// NET_0 zone and driver, using the Table 1 configuration. The zone base
// comes from the default flex-mode address map (the NetDIMM region starts
// where the host DDR ends).
func NewNetDIMMMachine(seed uint64) (*NetDIMMDriver, error) {
	cfg := core.DefaultConfig()
	cfg.Seed = seed
	size := int64(cfg.Ranks) * addrmap.RankBytes
	return NewNetDIMMMachineWith(cfg, DefaultZoneBases(1, size)[0], DefaultCosts())
}

// NewNetDIMMMachineWith builds a NetDIMM endpoint from an explicit device
// configuration, NET_0 zone base and software cost set — the constructor a
// derived system configuration uses.
func NewNetDIMMMachineWith(cfg core.Config, zoneBase int64, costs Costs) (*NetDIMMDriver, error) {
	eng := sim.NewEngine()
	dev := core.NewDevice(eng, cfg)
	zone := kalloc.NewNetDIMMZone("NET_0", zoneBase, dev.Size())
	return NewNetDIMMDriver(eng, dev, zone, costs)
}
