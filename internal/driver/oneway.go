package driver

import (
	"netdimm/internal/core"
	"netdimm/internal/ethernet"
	"netdimm/internal/kalloc"
	"netdimm/internal/nic"
	"netdimm/internal/sim"
	"netdimm/internal/stats"
)

// OneWay composes the full one-way latency of sending packet p from the tx
// machine to the rx machine over the fabric's point-to-point path: driver
// TX, wire, driver RX (the structure of the paper's Fig. 4 and Fig. 11
// experiments).
func OneWay(tx, rx Machine, p nic.Packet, fabric ethernet.Fabric) stats.Breakdown {
	b := tx.TX(p)
	b.Add(stats.Wire, fabric.DirectWireTime(p.Size))
	return b.Plus(rx.RX(p))
}

// NewDNICMachine returns the baseline discrete-PCIe-NIC configuration.
func NewDNICMachine(zeroCopy bool) *HWDriver {
	return &HWDriver{Dev: nic.NewDNIC(), Costs: DefaultCosts(), ZeroCopy: zeroCopy}
}

// NewINICMachine returns the integrated-NIC configuration.
func NewINICMachine(zeroCopy bool) *HWDriver {
	return &HWDriver{Dev: nic.NewINIC(), Costs: DefaultCosts(), ZeroCopy: zeroCopy}
}

// NewNetDIMMMachine builds a complete NetDIMM endpoint: engine, device,
// NET_0 zone and driver. The zone base matches a 16GB-DDR system map where
// the NetDIMM region starts at 16GB.
func NewNetDIMMMachine(seed uint64) (*NetDIMMDriver, error) {
	eng := sim.NewEngine()
	cfg := core.DefaultConfig()
	cfg.Seed = seed
	dev := core.NewDevice(eng, cfg)
	zone := kalloc.NewNetDIMMZone("NET_0", 16<<30, dev.Size())
	return NewNetDIMMDriver(eng, dev, zone, DefaultCosts())
}
