package driver

import (
	"netdimm/internal/addrmap"
	"netdimm/internal/core"
	"netdimm/internal/ethernet"
	"netdimm/internal/kalloc"
	"netdimm/internal/nic"
	"netdimm/internal/obs"
	"netdimm/internal/pcie"
	"netdimm/internal/sim"
	"netdimm/internal/stats"
)

// OneWay composes the full one-way latency of sending packet p from the tx
// machine to the rx machine over the fabric's point-to-point path: driver
// TX, wire, driver RX (the structure of the paper's Fig. 4 and Fig. 11
// experiments).
func OneWay(tx, rx Machine, p nic.Packet, fabric ethernet.Fabric) stats.Breakdown {
	b := tx.TX(p)
	b.Add(stats.Wire, fabric.DirectWireTime(p.Size))
	return b.Plus(rx.RX(p))
}

// OneWayObserved is OneWay with the observability plane attached: driver
// phases become lifecycle spans on cell c's per-component tracks, PCIe
// links and NetDIMM devices publish their counters and series, and sim
// engines get event probes. A nil cell is exactly OneWay; per-component
// track sums equal the returned breakdown's components by construction.
func OneWayObserved(tx, rx Machine, p nic.Packet, fabric ethernet.Fabric, c *obs.Cell) stats.Breakdown {
	if c == nil {
		return OneWay(tx, rx, p, fabric)
	}
	rec := c.Recorder(tx.Name())
	attachObs(tx, c, rec, "tx")
	attachObs(rx, c, rec, "rx")
	b := tx.TX(p)
	wire := fabric.DirectWireTime(p.Size)
	b.Add(stats.Wire, wire)
	rec.Advance(string(stats.Wire), "wire", wire)
	return b.Plus(rx.RX(p))
}

// attachObs wires one endpoint's hooks into the cell: the shared recorder
// for driver phase spans, plus whatever the concrete machine exposes —
// PCIe link counters for a dNIC, device/rank/controller hooks and a
// kernel-event probe for a NetDIMM. side distinguishes the two endpoints
// in metric names ("tx"/"rx").
func attachObs(m Machine, c *obs.Cell, rec *obs.Recorder, side string) {
	reg := c.Metrics()
	switch d := m.(type) {
	case *HWDriver:
		d.Rec = rec
		if dn, ok := d.Dev.(nic.DNIC); ok && reg != nil {
			dn.Link.Obs = pcie.NewLinkObs(reg, d.Name()+"."+side+".pcie")
			d.Dev = dn
		}
	case *NetDIMMDriver:
		d.Rec = rec
		d.Dev.Observe(c, "NetDIMM."+side)
		obs.NewEngineProbe(reg, "NetDIMM."+side+".engine").Attach(d.Eng)
	}
}

// NewMachine wraps a NIC device model and a software cost set into a
// polled-driver endpoint — the constructor a derived system configuration
// uses for dNIC and iNIC endpoints.
func NewMachine(dev nic.Device, costs Costs, zeroCopy bool) *HWDriver {
	return &HWDriver{Dev: dev, Costs: costs, ZeroCopy: zeroCopy}
}

// NewDNICMachine returns the baseline discrete-PCIe-NIC configuration.
func NewDNICMachine(zeroCopy bool) *HWDriver {
	return NewMachine(nic.NewDNIC(), DefaultCosts(), zeroCopy)
}

// NewINICMachine returns the integrated-NIC configuration.
func NewINICMachine(zeroCopy bool) *HWDriver {
	return NewMachine(nic.NewINIC(), DefaultCosts(), zeroCopy)
}

// DefaultZoneBases lays out n NetDIMM regions of the given size behind
// Table 1's 16GB of host DDR (two channels, page-granule interleave) and
// returns their NET_i zone bases. Configurations other than Table 1 derive
// bases from their own addrmap.SystemMap; this is the default the
// no-config constructors below share.
func DefaultZoneBases(n int, size int64) []int64 {
	const channels = 2
	specs := make([]addrmap.NetDIMMSpec, n)
	for i := range specs {
		specs[i] = addrmap.NetDIMMSpec{Channel: i % channels, Size: size}
	}
	m, err := addrmap.NewSystemMap(channels, 16<<30, addrmap.PageSize, specs...)
	if err != nil {
		panic(err) // unreachable: the default layout is statically valid
	}
	bases := make([]int64, n)
	for i := range bases {
		r, err := m.NetDIMMRegion(i)
		if err != nil {
			panic(err)
		}
		bases[i] = r.Base
	}
	return bases
}

// NewNetDIMMMachine builds a complete NetDIMM endpoint: engine, device,
// NET_0 zone and driver, using the Table 1 configuration. The zone base
// comes from the default flex-mode address map (the NetDIMM region starts
// where the host DDR ends).
func NewNetDIMMMachine(seed uint64) (*NetDIMMDriver, error) {
	cfg := core.DefaultConfig()
	cfg.Seed = seed
	size := int64(cfg.Ranks) * addrmap.RankBytes
	return NewNetDIMMMachineWith(cfg, DefaultZoneBases(1, size)[0], DefaultCosts())
}

// NewNetDIMMMachineWith builds a NetDIMM endpoint from an explicit device
// configuration, NET_0 zone base and software cost set — the constructor a
// derived system configuration uses.
func NewNetDIMMMachineWith(cfg core.Config, zoneBase int64, costs Costs) (*NetDIMMDriver, error) {
	eng := sim.NewEngine()
	dev := core.NewDevice(eng, cfg)
	zone := kalloc.NewNetDIMMZone("NET_0", zoneBase, dev.Size())
	return NewNetDIMMDriver(eng, dev, zone, costs)
}
