package driver

import "netdimm/internal/cpu"

// CostsFromModel derives the software-stack cost set from the Table 1 core
// model instead of the hand-calibrated DefaultCosts. The two agree within
// a small factor (asserted by tests in internal/cpu and here); using the
// derived set is an ablation of the calibration itself: the paper's
// qualitative results must not depend on the exact constants.
func CostsFromModel() Costs { return CostsFromParams(cpu.TableOne()) }

// CostsFromParams derives the software-stack cost set from an arbitrary
// core parameter set. A system configuration whose core deviates from
// Table 1 has no hand-calibrated constants to fall back on, so its costs
// come from the first-order core model instead.
func CostsFromParams(p cpu.Params) Costs {
	c := cpu.Derive(p)
	return Costs{
		SKBAlloc:         c.SKBAlloc,
		CopyFixed:        c.CopyFixed,
		CopyBytesPerSec:  c.CopyBytesPerSec,
		PollCheck:        c.PollCheck,
		DescWrite:        c.DescWrite,
		ZcpyPin:          c.ZcpyPin,
		AllocCacheLookup: c.AllocCacheLookup,
		SlowAllocPages:   c.SlowAllocPages,
		FlushBase:        c.FlushBase,
		FlushPerLine:     c.FlushPerLine,
	}
}
