package driver

import (
	"fmt"

	"netdimm/internal/core"
	"netdimm/internal/dram"
	"netdimm/internal/kalloc"
	"netdimm/internal/nic"
	"netdimm/internal/obs"
	"netdimm/internal/sim"
	"netdimm/internal/stats"
)

// NetDIMMDriver implements the paper's Algorithm 1 over a core.Device: DMA
// buffers come from the allocCache with sub-array affinity, TX coherency is
// enforced with cache-flush instructions, RX uses descriptor invalidation,
// in-memory cloning replaces driver copies, and a polling agent watches the
// RX ring over the memory channel.
//
// The driver is event-driven where the device is stateful (DMA through the
// nMC, nCache, cloning) and analytic for pure CPU costs. Each TX/RX call
// runs the device engine to completion, so per-call results reflect the
// device's current bank and cache state.
type NetDIMMDriver struct {
	Eng   *sim.Engine
	Dev   *core.Device
	Zone  *kalloc.Zone
	Cache *kalloc.AllocCache
	Costs Costs
	// Rec, if non-nil, records every driver phase as a lifecycle span (see
	// HWDriver.Rec); nil keeps the uninstrumented path.
	Rec *obs.Recorder

	// CopyNeeded forces Alg. 1's slow path: the SKB lives outside the
	// NetDIMM zone and must be CPU-copied into a DMA buffer first (used
	// for connection-establishment packets and zone-exhaustion fallback).
	CopyNeeded bool

	txRing *nic.Ring
	rxRing *nic.Ring
	// appBuf is the steady-state application buffer page in the NetDIMM
	// zone (skb_zone == NET_i after the first packet, Sec. 4.2.2).
	appBuf int64

	stats DriverStats
}

// DriverStats counts NetDIMM driver events.
type DriverStats struct {
	TxFast, TxSlow  uint64
	RxPackets       uint64
	AllocFast       uint64
	AllocSlow       uint64
	ClonesFPM       uint64
	ClonesOther     uint64
	HeaderCacheHits uint64
	HeaderCacheMiss uint64
	// PollMisses counts polling-agent reads that found no pending packet.
	PollMisses uint64
	// TxCleaned counts TX descriptors reclaimed by the polling agent
	// (Alg. 1 line 17: "clean TX buffers after a successful transmission").
	TxCleaned uint64
	// RingFull counts transmissions stalled on a full TX ring.
	RingFull uint64
	// ZoneExhausted counts packets that fell back to reusing the app
	// buffer because the NET_i zone had no free pages — the rare event the
	// COPY_NEEDED flag also guards (paper Sec. 4.2.2).
	ZoneExhausted uint64
}

// NewNetDIMMDriver wires a driver to a device and its NET_i zone. Ring
// descriptors and the steady-state application buffer are allocated from
// the zone (paper Sec. 4.2.2: descriptor rings must live on the NetDIMM).
func NewNetDIMMDriver(eng *sim.Engine, dev *core.Device, zone *kalloc.Zone, costs Costs) (*NetDIMMDriver, error) {
	ac, err := kalloc.NewAllocCache(zone, 2)
	if err != nil {
		return nil, err
	}
	txPage, err := zone.AllocPage()
	if err != nil {
		return nil, fmt.Errorf("driver: tx ring: %w", err)
	}
	rxPage, err := zone.AllocPage()
	if err != nil {
		return nil, fmt.Errorf("driver: rx ring: %w", err)
	}
	app, err := zone.AllocPage()
	if err != nil {
		return nil, fmt.Errorf("driver: app buffer: %w", err)
	}
	return &NetDIMMDriver{
		Eng:    eng,
		Dev:    dev,
		Zone:   zone,
		Cache:  ac,
		Costs:  costs,
		txRing: nic.NewRing("tx", txPage, 256),
		rxRing: nic.NewRing("rx", rxPage, 256),
		appBuf: app,
	}, nil
}

// Name implements Machine.
func (d *NetDIMMDriver) Name() string { return "NetDIMM" }

// Stats returns a copy of the driver counters.
func (d *NetDIMMDriver) Stats() DriverStats { return d.stats }

// local converts a zone physical address to the device-local offset.
func (d *NetDIMMDriver) local(phys int64) int64 { return phys - d.Zone.Base }

// add accumulates one named phase into breakdown component c and, when a
// recorder is attached, records it as a lifecycle span (see HWDriver.add).
func (d *NetDIMMDriver) add(b stats.Breakdown, c stats.Component, phase string, t sim.Time) {
	b.Add(c, t)
	d.Rec.Advance(string(c), phase, t)
}

// TX implements Machine, following Alg. 1 lines 1–10.
func (d *NetDIMMDriver) TX(p nic.Packet) stats.Breakdown {
	b, _ := d.TXData(p, nil)
	return b
}

// TXData is TX carrying the frame's bytes: payload is the application's
// buffer contents; wire is what the nNIC fetched from local DRAM for
// transmission.
func (d *NetDIMMDriver) TXData(p nic.Packet, payload []byte) (stats.Breakdown, []byte) {
	b := stats.Breakdown{}
	bus := d.Dev.RegisterBus()

	// The polling agent cleans completed TX descriptors before queueing
	// more (Alg. 1 line 17); with the ring drained lazily, a full ring
	// stalls the sender until slots free up.
	if d.txRing.Full() {
		d.stats.RingFull++
		d.cleanTxRing()
	}

	// Line 2: txDesc[next].dma = allocCache[txSKB.data]. The lookup always
	// runs; only the slow path consumes the page (on the fast path the
	// descriptor points at the SKB data, which already lives in the zone).
	d.add(b, stats.TxCopy, "skb+allocLookup+desc", d.Costs.SKBAlloc+d.Costs.AllocCacheLookup+d.Costs.DescWrite)

	dmaBuf := d.appBuf
	if d.CopyNeeded {
		// Lines 3–6, slow path: allocate a DMA buffer, CPU-copy the SKB
		// into it, then flush the buffer to memory.
		d.stats.TxSlow++
		buf, fast, err := d.Cache.Get(kalloc.NoHint)
		if err == nil {
			dmaBuf = buf
			defer d.Cache.Release(buf)
		}
		if fast {
			d.stats.AllocFast++
		} else {
			d.stats.AllocSlow++
			d.add(b, stats.TxCopy, "slowAllocPages", d.Costs.SlowAllocPages)
		}
		d.add(b, stats.TxCopy, "cpuCopy", d.Costs.CopyTime(p.Size))
		d.add(b, stats.TxFlush, "bufFlush", d.Costs.FlushTime(p.Size))
		if payload != nil {
			// The CPU copy: payload lands in the DMA buffer.
			d.Dev.WriteData(d.local(dmaBuf), clip(payload, p.Size))
		}
	} else {
		// Line 8, fast path: the SKB already lives in the NetDIMM zone;
		// flush its cachelines so the nNIC reads fresh data.
		d.stats.TxFast++
		d.stats.AllocFast++
		d.add(b, stats.TxFlush, "bufFlush", d.Costs.FlushTime(p.Size))
		if payload != nil {
			// The application wrote straight into its NET_i buffer.
			d.Dev.WriteData(d.local(d.appBuf), clip(payload, p.Size))
		}
	}
	// Lines 9–10: set and flush size+flags — the 64-bit posted write that
	// kicks off transmission, travelling the memory channel.
	d.txRing.Push(nic.Descriptor{BufAddr: dmaBuf, Len: p.Size, Owned: true})
	d.add(b, stats.TxFlush, "descFlush", d.Costs.FlushTime(nic.DescriptorBytes))
	d.add(b, stats.IOReg, "sizeWrite", bus.WriteCost())

	// nController fetches the packet from local DRAM into the nNIC; the
	// nNIC then runs the same MAC pipeline as any full-blown NIC.
	d.add(b, stats.TxDMA, "fetch+macPipeline", nic.MACPipeline+d.measure(func(done func()) {
		if err := d.Dev.TransmitFetch(d.local(dmaBuf), p.Size, done); err != nil {
			done()
		}
	}))

	// The nNIC completed the fetch: mark the descriptor done for the
	// polling agent to reclaim lazily.
	d.txRing.MarkDone()
	if d.txRing.Len() >= d.txRing.Cap()/2 {
		d.cleanTxRing()
	}

	var wire []byte
	if payload != nil {
		wire, _ = d.Dev.ReadData(d.local(dmaBuf), p.Size)
	}
	return b, wire
}

// cleanTxRing reclaims completed TX descriptors (Alg. 1 line 17).
func (d *NetDIMMDriver) cleanTxRing() {
	for !d.txRing.Empty() {
		desc, err := d.txRing.Peek()
		if err != nil || !desc.Done {
			break
		}
		d.txRing.Pop()
		d.stats.TxCleaned++
	}
}

// clip bounds payload to the frame size.
func clip(payload []byte, size int) []byte {
	if len(payload) > size {
		return payload[:size]
	}
	return payload
}

// RX implements Machine, following Alg. 1 lines 11–19.
func (d *NetDIMMDriver) RX(p nic.Packet) stats.Breakdown {
	b, _ := d.RXData(p, nil)
	return b
}

// RXData is RX carrying the frame's bytes: payload is what the nNIC
// received from the wire; delivered is what the upper network layer gets
// after the in-memory clone — byte-identical to payload when the data
// plane is intact.
func (d *NetDIMMDriver) RXData(p nic.Packet, payload []byte) (stats.Breakdown, []byte) {
	b := stats.Breakdown{}
	bus := d.Dev.RegisterBus()
	d.stats.RxPackets++

	// The nNIC delivers the frame into an RX DMA buffer in local DRAM; the
	// first cacheline (the header) lands in nCache (paper Sec. 4.1).
	rxBuf, _, err := d.Cache.Get(kalloc.NoHint)
	if err != nil {
		rxBuf = d.appBuf
		d.stats.ZoneExhausted++
	}
	d.add(b, stats.RxDMA, "macPipeline+deliver", nic.MACPipeline+d.measure(func(done func()) {
		if err := d.Dev.ReceivePacketData(d.local(rxBuf), p.Size, payload, done); err != nil {
			done()
		}
	}))
	// The nController filled the next RX descriptor.
	d.rxRing.Push(nic.Descriptor{BufAddr: rxBuf, Len: p.Size, Done: true})

	// Lines 16–18: the polling agent notices the arrival — one RegStatus
	// read over the memory channel ("polling NetDIMM is more efficient
	// than polling a PCIe NIC").
	rf := d.Dev.Registers()
	if st, err := rf.Read(core.RegStatus); err != nil || st&0xffffffff == 0 {
		d.stats.PollMisses++
	}
	rf.AckRX()
	d.add(b, stats.IOReg, "pollStatus", bus.ReadCost())

	// Line 12: invalidate rxDesc to fetch fresh descriptor data, then
	// re-read it over the channel.
	d.add(b, stats.RxInvalidate, "descInvalidate", d.Costs.FlushTime(nic.DescriptorBytes))
	d.add(b, stats.IOReg, "descReread", bus.ReadCost())

	// Line 13: rxSKB.data = allocCache[rxDesc.dma] — sub-array affine so
	// the clone below runs in FPM.
	alloc := d.Costs.AllocCacheLookup
	skbBuf, fast, err := d.Cache.Get(rxBuf)
	if err != nil {
		skbBuf, fast = rxBuf, false
		d.stats.ZoneExhausted++
	}
	if fast {
		d.stats.AllocFast++
	} else {
		d.stats.AllocSlow++
		alloc += d.Costs.SlowAllocPages
	}
	d.add(b, stats.RxCopy, "skb+allocLookup", d.Costs.SKBAlloc+alloc)

	// Line 14: netdimmClone(rxSKB.data, rxDesc.dma, size). The CPU writes
	// dst/src/size into the NetDIMM register file (one posted line write);
	// the size write kicks the in-memory clone engine.
	d.add(b, stats.IOReg, "cloneRegs", bus.WriteCost())
	var mode dram.CloneMode
	cloneLat := d.measureVal(func(done func()) {
		rf.Write(core.RegCloneSrc, uint64(d.local(rxBuf)))
		rf.Write(core.RegCloneDst, uint64(d.local(skbBuf)))
		rf.OnCloneDone = func(m dram.CloneMode) {
			mode = m
			rf.OnCloneDone = nil
			done()
		}
		if err := rf.Write(core.RegCloneSize, uint64(p.Size)); err != nil {
			rf.OnCloneDone = nil
			done()
		}
	})
	if mode == dram.FPM {
		d.stats.ClonesFPM++
	} else {
		d.stats.ClonesOther++
	}
	d.add(b, stats.RxCopy, "clone", cloneLat)

	// Line 15: the stack processes the header — read from the DMA buffer,
	// which hits nCache (header caching).
	d.add(b, stats.RxCopy, "headerRead", d.measure(func(done func()) {
		d.Dev.HostReadLine(d.local(rxBuf), func(hit bool, lat sim.Time) {
			if hit {
				d.stats.HeaderCacheHits++
			} else {
				d.stats.HeaderCacheMiss++
			}
			done()
		})
	}))

	// The descriptor is consumed; return the slot to the ring.
	d.rxRing.Pop()

	// The upper layer's view: the cloned bytes at the SKB buffer.
	var delivered []byte
	if payload != nil {
		delivered, _ = d.Dev.ReadData(d.local(skbBuf), p.Size)
	}

	// Buffers recycle: the DMA buffer returns to the cache's zone, the SKB
	// buffer is handed to the application (freed later, off the critical
	// path).
	d.Cache.Release(rxBuf)
	if skbBuf != rxBuf {
		d.Cache.Release(skbBuf)
	}
	return b, delivered
}

// measure runs an event-driven device operation to completion on the
// driver's engine and returns its duration.
func (d *NetDIMMDriver) measure(op func(done func())) sim.Time {
	start := d.Eng.Now()
	var end sim.Time
	op(func() { end = d.Eng.Now() })
	d.Eng.Run()
	if end < start {
		end = d.Eng.Now()
	}
	return end - start
}

// measureVal is measure for operations whose callback carries a value.
func (d *NetDIMMDriver) measureVal(op func(done func())) sim.Time {
	return d.measure(op)
}
