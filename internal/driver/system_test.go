package driver

import (
	"testing"

	"netdimm/internal/stats"
)

func TestSystemValidation(t *testing.T) {
	if _, err := NewSystem(0, 1); err == nil {
		t.Fatal("zero NetDIMMs accepted")
	}
}

func TestSystemConnectionBinding(t *testing.T) {
	s, err := NewSystem(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if s.NetDIMMs() != 2 {
		t.Fatalf("NetDIMMs = %d", s.NetDIMMs())
	}
	if s.ZoneOf(42) != -1 {
		t.Fatal("unbound connection should report -1")
	}
	s.TX(42, pkt(256))
	z := s.ZoneOf(42)
	if z < 0 || z > 1 {
		t.Fatalf("zone = %d", z)
	}
	// Sticky: later packets stay on the same NetDIMM.
	s.TX(42, pkt(256))
	if s.ZoneOf(42) != z {
		t.Fatal("connection migrated zones")
	}
}

// First packet pays the COPY_NEEDED slow path; the rest ride the fast path
// (paper Sec. 4.2.2).
func TestSystemFirstPacketSlowPath(t *testing.T) {
	s, err := NewSystem(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	first := s.TX(7, pkt(1514))
	second := s.TX(7, pkt(1514))
	if s.FirstPackets() != 1 {
		t.Fatalf("FirstPackets = %d", s.FirstPackets())
	}
	if first[stats.TxCopy] <= second[stats.TxCopy] {
		t.Fatalf("first packet txCopy %v should exceed steady state %v",
			first[stats.TxCopy], second[stats.TxCopy])
	}
	d := s.Driver(0)
	if d.Stats().TxSlow != 1 || d.Stats().TxFast != 1 {
		t.Fatalf("driver stats = %+v", d.Stats())
	}
	if d.CopyNeeded {
		t.Fatal("CopyNeeded flag leaked past the first packet")
	}
}

func TestSystemSpreadsConnections(t *testing.T) {
	s, err := NewSystem(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	for conn := uint64(0); conn < 100; conn++ {
		s.TX(conn, pkt(128))
	}
	dist := s.Distribution()
	for i, n := range dist {
		if n != 25 {
			t.Fatalf("NET_%d has %d connections, want 25 (round robin): %v", i, n, dist)
		}
	}
}

func TestSystemRXRouting(t *testing.T) {
	s, err := NewSystem(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Unbound RX lands on NET_0.
	s.RX(99, pkt(256))
	if s.Driver(0).Stats().RxPackets != 1 {
		t.Fatal("unbound RX should land on NET_0")
	}
	// Bind a connection to NET_1 and receive on it.
	s.TX(0, pkt(64)) // binds to NET_0
	s.TX(1, pkt(64)) // binds to NET_1
	s.RX(1, pkt(256))
	if s.Driver(1).Stats().RxPackets != 1 {
		t.Fatal("bound RX should follow the connection's zone")
	}
}

func TestSystemZonesDoNotOverlap(t *testing.T) {
	s, err := NewSystem(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		zi := s.Driver(i).Zone
		for j := i + 1; j < 3; j++ {
			zj := s.Driver(j).Zone
			if zi.Base < zj.Base+zj.Size && zj.Base < zi.Base+zi.Size {
				t.Fatalf("zones %d and %d overlap", i, j)
			}
		}
	}
}

func TestTxRingCleaning(t *testing.T) {
	nd, err := NewNetDIMMMachine(17)
	if err != nil {
		t.Fatal(err)
	}
	// Sustained TX far beyond the ring capacity must not wedge: the
	// polling agent reclaims completed descriptors.
	for i := 0; i < 1000; i++ {
		nd.TX(pkt(256))
	}
	s := nd.Stats()
	if s.TxFast != 1000 {
		t.Fatalf("TxFast = %d", s.TxFast)
	}
	if s.TxCleaned == 0 {
		t.Fatal("no TX descriptors reclaimed")
	}
	if s.TxCleaned+uint64(256) < 1000 {
		t.Fatalf("cleaning fell behind: cleaned %d of 1000", s.TxCleaned)
	}
}

func TestRxRingBalanced(t *testing.T) {
	nd, err := NewNetDIMMMachine(18)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 600; i++ {
		nd.RX(pkt(512))
	}
	// Every RX consumed its descriptor: the ring is empty at rest.
	if nd.rxRing.Len() != 0 {
		t.Fatalf("rx ring holds %d stale descriptors", nd.rxRing.Len())
	}
}
