// Package driver models the network software stack at the event level for
// each NIC architecture: the polled baseline driver of a discrete PCIe NIC
// (dNIC, paper Sec. 2.1 steps T1–T4 / R0–R5), its zero-copy variant, the
// integrated-NIC (iNIC) driver, and the NetDIMM driver of Algorithm 1 with
// allocCache-backed DMA-buffer allocation, cache flush/invalidate
// coherency, and in-memory buffer cloning.
//
// Every path produces a stats.Breakdown with the Fig. 11 components, so
// the latency experiments can report exactly the paper's decomposition.
package driver

import (
	"netdimm/internal/nic"
	"netdimm/internal/obs"
	"netdimm/internal/sim"
	"netdimm/internal/stats"
)

// Costs holds the CPU-side software constants shared by all drivers. They
// model a bare-metal, polling driver (the paper implements bare-metal gem5
// drivers because "the overhead of Linux kernel software stack fades the
// latency improvements", Sec. 5.1).
type Costs struct {
	// SKBAlloc is socket-buffer allocation and initialisation.
	SKBAlloc sim.Time
	// CopyFixed is the fixed cost of one driver memory copy (loop setup,
	// cache misses on the first lines).
	CopyFixed sim.Time
	// CopyBytesPerSec paces the size-dependent part of driver copies.
	CopyBytesPerSec float64
	// PollCheck is one polling-loop iteration on a host-memory status
	// word (LLC hit).
	PollCheck sim.Time
	// DescWrite is the CPU cost of composing a descriptor.
	DescWrite sim.Time
	// ZcpyPin is the per-packet page pin/unpin and buffer-management
	// overhead a zero-copy driver pays instead of copying (paper Sec. 3,
	// limitation L1).
	ZcpyPin sim.Time
	// AllocCacheLookup is the NetDIMM driver's allocCache hash probe.
	AllocCacheLookup sim.Time
	// SlowAllocPages is __alloc_netdimm_pages on the allocCache miss path.
	SlowAllocPages sim.Time
	// FlushBase/FlushPerLine parameterise clwb/clflush loops (txFlush and
	// rxInvalidate in Alg. 1).
	FlushBase    sim.Time
	FlushPerLine sim.Time
}

// DefaultCosts returns constants calibrated so the Fig. 4 / Fig. 11 shapes
// hold (see DESIGN.md Sec. 5 and EXPERIMENTS.md for the calibration).
func DefaultCosts() Costs {
	return Costs{
		SKBAlloc:         120 * sim.Nanosecond,
		CopyFixed:        260 * sim.Nanosecond,
		CopyBytesPerSec:  6e9, // cold-destination memcpy through the cache
		PollCheck:        20 * sim.Nanosecond,
		DescWrite:        20 * sim.Nanosecond,
		ZcpyPin:          100 * sim.Nanosecond,
		AllocCacheLookup: 30 * sim.Nanosecond,
		SlowAllocPages:   400 * sim.Nanosecond,
		FlushBase:        30 * sim.Nanosecond,
		FlushPerLine:     5 * sim.Nanosecond,
	}
}

// CopyTime returns the modelled driver memcpy cost for n bytes.
func (c Costs) CopyTime(n int) sim.Time {
	if n <= 0 {
		return c.CopyFixed
	}
	return c.CopyFixed + sim.Time(float64(n)/c.CopyBytesPerSec*float64(sim.Second))
}

// FlushTime returns the cost of flushing or invalidating n bytes worth of
// cachelines.
func (c Costs) FlushTime(n int) sim.Time {
	lines := (n + 63) / 64
	if lines < 1 {
		lines = 1
	}
	return c.FlushBase + sim.Time(lines)*c.FlushPerLine
}

// Machine is one server endpoint: it can transmit a packet onto the wire
// and receive one from the wire, reporting the latency decomposition.
type Machine interface {
	// TX returns the breakdown of driver + NIC work from the application's
	// send call until the first bit is on the wire.
	TX(p nic.Packet) stats.Breakdown
	// RX returns the breakdown from last bit off the wire until the packet
	// is delivered to the upper network layer.
	RX(p nic.Packet) stats.Breakdown
	// Name identifies the configuration (dNIC, dNIC.zcpy, iNIC, ...).
	Name() string
}

// HWDriver is the baseline polled driver over a conventional NIC Device
// (dNIC or iNIC), optionally with zero-copy buffers.
type HWDriver struct {
	Dev      nic.Device
	Costs    Costs
	ZeroCopy bool
	// Rec, if non-nil, records every driver phase as a lifecycle span on
	// the per-component tracks of an observability cell (see obs.Recorder).
	// Nil — the default — keeps TX/RX purely analytic.
	Rec *obs.Recorder
}

// add accumulates one named phase into breakdown component c and, when a
// recorder is attached, lays the phase down as a span on the component's
// track. Track sums therefore equal breakdown components by construction.
func (d *HWDriver) add(b stats.Breakdown, c stats.Component, phase string, t sim.Time) {
	b.Add(c, t)
	d.Rec.Advance(string(c), phase, t)
}

// Name implements Machine.
func (d *HWDriver) Name() string {
	if d.ZeroCopy {
		return d.Dev.Name() + ".zcpy"
	}
	return d.Dev.Name()
}

// TX implements Machine: steps T1–T3 of Sec. 2.1 (T4's wire time belongs
// to the fabric).
func (d *HWDriver) TX(p nic.Packet) stats.Breakdown {
	b := stats.Breakdown{}
	// T1: the transmit function checks NIC state. A polled bare-metal
	// driver tracks the ring tail locally, so this is a cheap host-memory
	// check; the expensive device-register traffic is the doorbell below.
	d.add(b, stats.IOReg, "pollCheck", d.Costs.PollCheck)
	// T2: build the SKB, stage the data, write the descriptor, ring the
	// doorbell.
	if d.ZeroCopy {
		d.add(b, stats.TxCopy, "skb+pin+desc", d.Costs.SKBAlloc+d.Costs.ZcpyPin+d.Costs.DescWrite)
	} else {
		d.add(b, stats.TxCopy, "skb+copy+desc", d.Costs.SKBAlloc+d.Costs.CopyTime(p.Size)+d.Costs.DescWrite)
	}
	d.add(b, stats.IOReg, "doorbell", d.Dev.Regs().WriteCost())
	// T3: the NIC fetches the descriptor and DMAs the packet out.
	d.add(b, stats.TxDMA, "descFetch+packetRead", d.Dev.DescriptorFetch()+d.Dev.PacketRead(p.Size))
	return b
}

// RX implements Machine: steps R1–R5 of Sec. 2.1.
func (d *HWDriver) RX(p nic.Packet) stats.Breakdown {
	b := stats.Breakdown{}
	// R1–R3: descriptor fetch, packet DMA into the host, ring update.
	d.add(b, stats.RxDMA, "descFetch+packetWrite+wb", d.Dev.DescriptorFetch()+d.Dev.PacketWrite(p.Size)+d.Dev.DescriptorWriteback())
	// R4: the polling driver notices the updated descriptor in host
	// memory.
	d.add(b, stats.IOReg, "pollCheck", d.Costs.PollCheck)
	// R5: SKB creation and payload landing in the application buffer.
	if d.ZeroCopy {
		d.add(b, stats.RxCopy, "skb+pin", d.Costs.SKBAlloc+d.Costs.ZcpyPin)
	} else {
		d.add(b, stats.RxCopy, "skb+copy", d.Costs.SKBAlloc+d.Costs.CopyTime(p.Size))
	}
	return b
}

// PCIeShare returns the fraction of a one-way latency attributable to the
// PCIe interconnect for this driver (the pcie.overh series of Fig. 4).
// Only meaningful for dNIC configurations; returns 0 for on-chip devices.
func (d *HWDriver) PCIeShare(p nic.Packet, total sim.Time) float64 {
	dn, ok := d.Dev.(nic.DNIC)
	if !ok || total == 0 {
		return 0
	}
	pcieTime := d.Dev.Regs().WriteCost() + // doorbell
		2*dn.DescriptorFetch() + // amortised batched descriptor fetches
		dn.Link.DMARead(p.Size) + dn.Link.DMAWrite(p.Size) + // payload
		dn.Link.PostedWrite(nic.DescriptorBytes) // ring update
	return float64(pcieTime) / float64(total)
}
