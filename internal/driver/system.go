package driver

import (
	"fmt"

	"netdimm/internal/addrmap"
	"netdimm/internal/core"
	"netdimm/internal/kalloc"
	"netdimm/internal/nic"
	"netdimm/internal/sim"
	"netdimm/internal/stats"
)

// System is a server with one or more NetDIMMs installed (paper Sec. 4.2.1:
// "a system can have multiple NetDIMMs installed on memory channels and
// each need a different memory zone"). Connections are bound to a NET_i
// zone on their first transmission: the first packet takes Algorithm 1's
// COPY_NEEDED slow path (its SKB lives in the regular kernel zone), which
// records skb_zone = NET_i in the socket so every later packet of the
// connection allocates directly on that NetDIMM and rides the fast path
// (Sec. 4.2.2).
type System struct {
	eng   *sim.Engine
	dimms []*NetDIMMDriver
	// conns maps a connection to its NET_i index; bound on first TX.
	conns map[uint64]int
	// next drives round-robin assignment of new connections.
	next int

	firstPackets uint64
}

// NewSystem builds a server with n NetDIMMs in the Table 1 configuration.
// Zone bases come from the default flex-mode address map: NET_i regions are
// stacked behind the host DDR region.
func NewSystem(n int, seed uint64) (*System, error) {
	if n <= 0 {
		return nil, fmt.Errorf("driver: system needs at least one NetDIMM, got %d", n)
	}
	cfg := core.DefaultConfig()
	size := int64(cfg.Ranks) * addrmap.RankBytes
	return NewSystemWith(cfg, DefaultZoneBases(n, size), DefaultCosts(), seed)
}

// NewSystemWith builds a server with len(bases) NetDIMMs from an explicit
// device configuration, per-DIMM NET_i zone bases and software cost set —
// the constructor a derived system configuration uses. NetDIMM i's device
// seeds with seed+i so distinct DIMMs draw distinct replacement streams.
func NewSystemWith(cfg core.Config, bases []int64, costs Costs, seed uint64) (*System, error) {
	if len(bases) == 0 {
		return nil, fmt.Errorf("driver: system needs at least one NetDIMM zone base")
	}
	eng := sim.NewEngine()
	s := &System{eng: eng, conns: make(map[uint64]int)}
	for i, base := range bases {
		c := cfg
		c.Seed = seed + uint64(i)
		dev := core.NewDevice(eng, c)
		zone := kalloc.NewNetDIMMZone(fmt.Sprintf("NET_%d", i), base, dev.Size())
		d, err := NewNetDIMMDriver(eng, dev, zone, costs)
		if err != nil {
			return nil, fmt.Errorf("driver: NetDIMM %d: %w", i, err)
		}
		s.dimms = append(s.dimms, d)
	}
	return s, nil
}

// NetDIMMs returns the number of installed NetDIMMs.
func (s *System) NetDIMMs() int { return len(s.dimms) }

// Driver exposes NetDIMM i's driver (for inspection).
func (s *System) Driver(i int) *NetDIMMDriver { return s.dimms[i] }

// ZoneOf returns the NET_i index a connection is bound to, or -1 before
// its first transmission.
func (s *System) ZoneOf(conn uint64) int {
	if z, ok := s.conns[conn]; ok {
		return z
	}
	return -1
}

// FirstPackets counts transmissions that took the COPY_NEEDED slow path.
func (s *System) FirstPackets() uint64 { return s.firstPackets }

// bind assigns a new connection to a NetDIMM round-robin (the scheduler's
// least-loaded placement reduces to round-robin under uniform traffic).
func (s *System) bind(conn uint64) int {
	z := s.next % len(s.dimms)
	s.next++
	s.conns[conn] = z
	return z
}

// TX transmits one packet of the given connection, binding the connection
// to a zone (and paying the slow path) on its first packet.
func (s *System) TX(conn uint64, p nic.Packet) stats.Breakdown {
	z, bound := s.conns[conn]
	d := s.dimms[0]
	if bound {
		d = s.dimms[z]
		return d.TX(p)
	}
	z = s.bind(conn)
	d = s.dimms[z]
	s.firstPackets++
	// First packet: SKB was allocated in the regular kernel zone before
	// the socket learned its skb_zone.
	wasCopyNeeded := d.CopyNeeded
	d.CopyNeeded = true
	b := d.TX(p)
	d.CopyNeeded = wasCopyNeeded
	return b
}

// RX receives one packet for the given connection on its bound NetDIMM
// (unbound connections receive on NET_0: the listening socket's packets
// arrive wherever the RSS hash lands, here the first NetDIMM).
func (s *System) RX(conn uint64, p nic.Packet) stats.Breakdown {
	if z, ok := s.conns[conn]; ok {
		return s.dimms[z].RX(p)
	}
	return s.dimms[0].RX(p)
}

// Distribution returns how many connections are bound to each NET_i.
func (s *System) Distribution() []int {
	out := make([]int, len(s.dimms))
	for _, z := range s.conns {
		out[z]++
	}
	return out
}
