package driver

import (
	"bytes"
	"testing"

	"netdimm/internal/nic"
	"netdimm/internal/stats"
)

// The PCIe share of a dNIC transfer shrinks as packets grow: fixed
// transaction latencies amortise while copies and wire time scale (the
// pcie.overh trend of Fig. 4).
func TestPCIeShareDeclinesWithSize(t *testing.T) {
	d := NewDNICMachine(true) // zcpy isolates the PCIe trend from copies
	var prev float64 = 1.1
	for _, size := range []int{10, 200, 2000, 8000} {
		p := pkt(size)
		total := OneWay(d, d, p, fabric()).Total()
		share := d.PCIeShare(p, total)
		if share >= prev {
			t.Fatalf("size %d: share %.3f did not decline from %.3f", size, share, prev)
		}
		prev = share
	}
}

func TestHWDriverZcpyComponents(t *testing.T) {
	z := NewINICMachine(true)
	b := z.TX(pkt(1514)).Plus(z.RX(pkt(1514)))
	// Zero copy still pays SKB allocation and pinning.
	if b[stats.TxCopy] <= 0 || b[stats.RxCopy] <= 0 {
		t.Fatal("zcpy should retain buffer-management costs")
	}
	// But both are size independent.
	b2 := z.TX(pkt(64)).Plus(z.RX(pkt(64)))
	if b[stats.TxCopy] != b2[stats.TxCopy] || b[stats.RxCopy] != b2[stats.RxCopy] {
		t.Fatal("zcpy copy components should not scale with size")
	}
}

func TestTXDataClipsOversizedPayload(t *testing.T) {
	nd, err := NewNetDIMMMachine(51)
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte{0xEE}, 500)
	_, wire := nd.TXData(nic.Packet{Size: 100}, payload)
	if len(wire) != 100 {
		t.Fatalf("wire length = %d, want clipped to 100", len(wire))
	}
	if !bytes.Equal(wire, payload[:100]) {
		t.Fatal("clipped payload corrupted")
	}
}

func TestRXDataShortPayload(t *testing.T) {
	nd, err := NewNetDIMMMachine(52)
	if err != nil {
		t.Fatal(err)
	}
	// Payload shorter than the frame: the tail is whatever the buffer
	// held (zero here); delivery must not fail.
	_, delivered := nd.RXData(nic.Packet{Size: 128}, []byte("short"))
	if len(delivered) != 128 {
		t.Fatalf("delivered = %d bytes", len(delivered))
	}
	if string(delivered[:5]) != "short" {
		t.Fatalf("payload head corrupted: %q", delivered[:5])
	}
}

// Driver components never go negative and every HWDriver component is
// non-negative across the size range.
func TestComponentsNonNegative(t *testing.T) {
	machines := []Machine{
		NewDNICMachine(false), NewDNICMachine(true),
		NewINICMachine(false), NewINICMachine(true),
	}
	for _, m := range machines {
		for _, size := range []int{1, 64, 1514, 9000} {
			for _, b := range []stats.Breakdown{m.TX(pkt(size)), m.RX(pkt(size))} {
				for c, v := range b {
					if v < 0 {
						t.Fatalf("%s size %d: component %s negative", m.Name(), size, c)
					}
				}
			}
		}
	}
}

// The NetDIMM RX path's latency is dominated by fixed costs, not size:
// the slope from 64B to MTU is far below a memcpy's.
func TestNetDIMMRXSizeSlope(t *testing.T) {
	nd, err := NewNetDIMMMachine(53)
	if err != nil {
		t.Fatal(err)
	}
	small := nd.RX(pkt(64)).Total()
	big := nd.RX(pkt(1514)).Total()
	slope := float64(big-small) / 1450.0 // ps per byte
	memcpySlope := float64(DefaultCosts().CopyTime(1514)-DefaultCosts().CopyTime(64)) / 1450.0
	if slope >= memcpySlope {
		t.Fatalf("NetDIMM RX slope %.1f ps/B should be below memcpy slope %.1f ps/B",
			slope, memcpySlope)
	}
}
