package driver

import (
	"testing"

	"netdimm/internal/dram"
	"netdimm/internal/ethernet"
	"netdimm/internal/nic"
	"netdimm/internal/sim"
	"netdimm/internal/stats"
)

func pkt(size int) nic.Packet { return nic.Packet{Size: size} }

func fabric() ethernet.Fabric { return ethernet.NewFabric(100 * sim.Nanosecond) }

func TestCopyTimeScaling(t *testing.T) {
	c := DefaultCosts()
	small := c.CopyTime(64)
	big := c.CopyTime(8192)
	if big <= small {
		t.Fatal("copy time must grow with size")
	}
	if c.CopyTime(0) != c.CopyFixed {
		t.Fatal("zero-byte copy should cost the fixed part")
	}
}

func TestFlushTimeScaling(t *testing.T) {
	c := DefaultCosts()
	if c.FlushTime(64) >= c.FlushTime(1514) {
		t.Fatal("flush grows with line count")
	}
	if c.FlushTime(1) != c.FlushBase+c.FlushPerLine {
		t.Fatal("sub-line flush costs one line")
	}
}

func TestDNICBreakdownComponents(t *testing.T) {
	d := NewDNICMachine(false)
	b := d.TX(pkt(256))
	for _, comp := range []stats.Component{stats.IOReg, stats.TxCopy, stats.TxDMA} {
		if b[comp] <= 0 {
			t.Errorf("TX missing component %s", comp)
		}
	}
	if b[stats.TxFlush] != 0 || b[stats.RxInvalidate] != 0 {
		t.Error("dNIC must not pay NetDIMM coherency costs")
	}
	rb := d.RX(pkt(256))
	for _, comp := range []stats.Component{stats.RxDMA, stats.RxCopy} {
		if rb[comp] <= 0 {
			t.Errorf("RX missing component %s", comp)
		}
	}
}

func TestZeroCopyRemovesSizeDependence(t *testing.T) {
	d := NewDNICMachine(false)
	z := NewDNICMachine(true)
	// Zero copy: txCopy no longer scales with packet size.
	if z.TX(pkt(64))[stats.TxCopy] != z.TX(pkt(8000))[stats.TxCopy] {
		t.Fatal("zcpy txCopy should be size independent")
	}
	// And it must beat copying for large packets.
	if z.TX(pkt(8000))[stats.TxCopy] >= d.TX(pkt(8000))[stats.TxCopy] {
		t.Fatal("zcpy should beat copy for large packets")
	}
	if z.Name() != "dNIC.zcpy" || d.Name() != "dNIC" {
		t.Fatalf("names: %s / %s", d.Name(), z.Name())
	}
}

func TestINICCheaperIOReg(t *testing.T) {
	dn := NewDNICMachine(false)
	in := NewINICMachine(false)
	p := pkt(256)
	dnB := dn.TX(p).Plus(dn.RX(p))
	inB := in.TX(p).Plus(in.RX(p))
	if inB[stats.IOReg]*4 > dnB[stats.IOReg] {
		t.Fatalf("iNIC I/O reg %v should be a small fraction of dNIC %v (paper Sec. 3)",
			inB[stats.IOReg], dnB[stats.IOReg])
	}
	if inB.Total() >= dnB.Total() {
		t.Fatal("iNIC must beat dNIC")
	}
}

func TestPCIeShare(t *testing.T) {
	d := NewDNICMachine(false)
	p := pkt(64)
	total := OneWay(d, d, p, fabric()).Total()
	share := d.PCIeShare(p, total)
	if share < 0.3 || share > 0.95 {
		t.Fatalf("PCIe share = %v, want a dominant fraction", share)
	}
	// iNIC has no PCIe.
	if NewINICMachine(false).PCIeShare(p, total) != 0 {
		t.Fatal("iNIC PCIe share should be 0")
	}
}

func newND(t *testing.T) *NetDIMMDriver {
	t.Helper()
	nd, err := NewNetDIMMMachine(1)
	if err != nil {
		t.Fatal(err)
	}
	return nd
}

func TestNetDIMMTXFastPath(t *testing.T) {
	nd := newND(t)
	b := nd.TX(pkt(1514))
	if b[stats.TxFlush] <= 0 {
		t.Fatal("fast path must pay txFlush")
	}
	if b[stats.TxDMA] <= 0 {
		t.Fatal("TX must include nController fetch")
	}
	s := nd.Stats()
	if s.TxFast != 1 || s.TxSlow != 0 {
		t.Fatalf("stats = %+v, want fast path", s)
	}
	// Fast path: no CPU copy, so txCopy is small and size independent.
	if b2 := nd.TX(pkt(8000)); b2[stats.TxCopy] != b[stats.TxCopy] {
		t.Fatal("fast-path txCopy should be size independent")
	}
}

func TestNetDIMMTXSlowPath(t *testing.T) {
	nd := newND(t)
	nd.CopyNeeded = true
	b := nd.TX(pkt(1514))
	s := nd.Stats()
	if s.TxSlow != 1 {
		t.Fatal("slow path not taken")
	}
	nd2 := newND(t)
	fastB := nd2.TX(pkt(1514))
	if b[stats.TxCopy] <= fastB[stats.TxCopy] {
		t.Fatal("COPY_NEEDED path must pay the CPU copy")
	}
}

func TestNetDIMMRXUsesCloneAndHeaderCache(t *testing.T) {
	nd := newND(t)
	b := nd.RX(pkt(1514))
	s := nd.Stats()
	if s.ClonesFPM != 1 {
		t.Fatalf("clone mode stats = %+v, want one FPM clone (allocCache affinity)", s)
	}
	if s.HeaderCacheHits != 1 {
		t.Fatalf("header read missed nCache: %+v", s)
	}
	if b[stats.RxInvalidate] <= 0 {
		t.Fatal("RX must pay rxInvalidate")
	}
	// The clone replaces a CPU copy: rxCopy must be well below the dNIC's.
	dn := NewDNICMachine(false)
	if b[stats.RxCopy] >= dn.RX(pkt(1514))[stats.RxCopy] {
		t.Fatalf("NetDIMM rxCopy %v should beat dNIC %v",
			b[stats.RxCopy], dn.RX(pkt(1514))[stats.RxCopy])
	}
}

func TestNetDIMMSteadyState(t *testing.T) {
	nd := newND(t)
	// Sustained RX must not leak allocCache pages or degrade.
	var first, last sim.Time
	for i := 0; i < 200; i++ {
		tot := nd.RX(pkt(1514)).Total()
		if i == 0 {
			first = tot
		}
		last = tot
	}
	if nd.Stats().AllocSlow > 10 {
		t.Fatalf("allocCache degraded: %d slow allocations", nd.Stats().AllocSlow)
	}
	if last > 2*first {
		t.Fatalf("RX degraded from %v to %v", first, last)
	}
	if nd.Stats().ClonesFPM < 190 {
		t.Fatalf("FPM clones = %d of 200", nd.Stats().ClonesFPM)
	}
}

func TestOneWayOrdering(t *testing.T) {
	// The paper's central result ordering at every size: NetDIMM < iNIC <
	// dNIC.
	for _, size := range []int{10, 64, 256, 1024, 1514, 4000, 8000} {
		nd := newND(t)
		ndB := OneWay(nd, newND(t), pkt(size), fabric())
		inB := OneWay(NewINICMachine(false), NewINICMachine(false), pkt(size), fabric())
		dnB := OneWay(NewDNICMachine(false), NewDNICMachine(false), pkt(size), fabric())
		if !(ndB.Total() < inB.Total() && inB.Total() < dnB.Total()) {
			t.Errorf("size %d: NetDIMM %v, iNIC %v, dNIC %v — ordering violated",
				size, ndB.Total(), inB.Total(), dnB.Total())
		}
	}
}

func TestNetDIMMFlushInvalidateShare(t *testing.T) {
	// Paper Sec. 5.2: txFlush + rxInvalidate add ~9.7-15.8% of the total.
	var shares []float64
	for _, size := range []int{64, 256, 1024, 1514} {
		nd := newND(t)
		b := OneWay(nd, newND(t), pkt(size), fabric())
		share := b.Share(stats.TxFlush) + b.Share(stats.RxInvalidate)
		shares = append(shares, share)
		if share < 0.02 || share > 0.25 {
			t.Errorf("size %d: flush+invalidate share = %.1f%%, want ~10-16%%", size, share*100)
		}
	}
	_ = shares
}

func TestNetDIMMCloneModeDependsOnAffinity(t *testing.T) {
	nd := newND(t)
	_ = nd.RX(pkt(256))
	if nd.Stats().ClonesOther != 0 {
		t.Fatal("affine allocation should yield FPM clones only")
	}
	_ = dram.FPM // keep import honest if assertions change
}

// The paper's qualitative result must survive swapping the calibrated
// software costs for the ones derived from the Table 1 core model.
func TestOrderingHoldsWithModelCosts(t *testing.T) {
	costs := CostsFromModel()
	for _, size := range []int{64, 1514, 8000} {
		p := pkt(size)
		dn := &HWDriver{Dev: nic.NewDNIC(), Costs: costs}
		in := &HWDriver{Dev: nic.NewINIC(), Costs: costs}

		nd, err := NewNetDIMMMachine(9)
		if err != nil {
			t.Fatal(err)
		}
		nd.Costs = costs
		ndRX, err := NewNetDIMMMachine(10)
		if err != nil {
			t.Fatal(err)
		}
		ndRX.Costs = costs

		ndB := OneWay(nd, ndRX, p, fabric())
		inB := OneWay(in, in, p, fabric())
		dnB := OneWay(dn, dn, p, fabric())
		if !(ndB.Total() < inB.Total() && inB.Total() < dnB.Total()) {
			t.Errorf("size %d with model costs: ND %v iNIC %v dNIC %v",
				size, ndB.Total(), inB.Total(), dnB.Total())
		}
	}
}
