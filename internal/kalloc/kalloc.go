// Package kalloc models the Linux kernel physical-page allocator as the
// paper extends it: memory zones including the per-NetDIMM NET_i zones, the
// __alloc_netdimm_pages(zone, hint) API that allocates a page in the same
// bank sub-array as a hint address, and the allocCache pre-allocation hash
// table the NetDIMM driver uses to keep DMA-buffer allocation off the
// packet critical path (paper Sec. 4.2.1 and 4.2.2).
package kalloc

import (
	"fmt"

	"netdimm/internal/addrmap"
)

// NoHint requests a page with no sub-array affinity — the paper's
// __alloc_netdimm_pages(zone, -1).
const NoHint int64 = -1

// ZoneKind distinguishes ordinary kernel zones from NetDIMM zones.
type ZoneKind int

const (
	// ZoneNormal models ZONE_NORMAL: regularly mapped host pages.
	ZoneNormal ZoneKind = iota
	// ZoneNetDIMM models a NET_i zone: the local DRAM of NetDIMM i,
	// organised by (rank, bank, sub-array) for affine allocation.
	ZoneNetDIMM
)

// Zone is one contiguous physical memory zone with page-granular
// allocation.
type Zone struct {
	Name string
	Kind ZoneKind
	Base int64 // first physical address
	Size int64

	// ZoneNormal bookkeeping: bump pointer + free list.
	bump  int64
	freed []int64

	// ZoneNetDIMM bookkeeping: per-(rank,bank,sub-array) buckets. Each
	// bucket hands out its pages lazily (fresh counter) and recycles via a
	// free list.
	buckets []subBucket
	ranks   int

	// allocated is a page-granular bitmap over [Base, Base+Size): bit i
	// covers page i. One bit per 4KB page costs Size/32768 bytes — far
	// below the hash table it replaced, and allocation tracking becomes
	// two shifts and a mask instead of a map operation (the allocCache
	// prefill walks every bucket at construction, so this is on the
	// machine build path).
	allocated  []uint64
	allocCount int64
	stats      ZoneStats
}

// ZoneStats counts allocator events.
type ZoneStats struct {
	Allocs        uint64
	Frees         uint64
	HintSatisfied uint64
	HintFallback  uint64 // hint given but the sub-array was exhausted
	Failures      uint64
}

type subBucket struct {
	fresh int // next fresh page index in [0, pagesPerBucket)
	freed []int64
}

// pagesPerBucket is the number of 4KB pages per (bank, sub-array) pair:
// 128 rows x 2 half-row pages.
const pagesPerBucket = addrmap.RowsPerSubarray * 2

// NewNormalZone returns a ZONE_NORMAL-style zone over [base, base+size).
func NewNormalZone(name string, base, size int64) *Zone {
	mustPageAligned(base, size)
	return &Zone{
		Name: name, Kind: ZoneNormal, Base: base, Size: size,
		allocated: make([]uint64, pageBitmapWords(size)),
	}
}

// NewNetDIMMZone returns a NET_i zone over the NetDIMM's local memory. The
// size must be a whole number of 8GB ranks (paper Fig. 9a geometry).
func NewNetDIMMZone(name string, base, size int64) *Zone {
	mustPageAligned(base, size)
	if size%addrmap.RankBytes != 0 {
		panic(fmt.Sprintf("kalloc: NetDIMM zone size %d not a multiple of the 8GB rank", size))
	}
	ranks := int(size / addrmap.RankBytes)
	return &Zone{
		Name: name, Kind: ZoneNetDIMM, Base: base, Size: size,
		buckets:   make([]subBucket, ranks*addrmap.SubarraysPerRank),
		ranks:     ranks,
		allocated: make([]uint64, pageBitmapWords(size)),
	}
}

// pageBitmapWords sizes the allocation bitmap: one bit per page, rounded
// up to whole 64-bit words.
func pageBitmapWords(size int64) int64 {
	return (size/addrmap.PageSize + 63) / 64
}

// pageBit locates a page's bitmap word and mask. The address must lie in
// the zone and be page aligned (callers validate both).
func (z *Zone) pageBit(addr int64) (word int64, mask uint64) {
	page := (addr - z.Base) / addrmap.PageSize
	return page / 64, 1 << uint(page%64)
}

func (z *Zone) isAllocated(addr int64) bool {
	w, m := z.pageBit(addr)
	return z.allocated[w]&m != 0
}

// markAllocated sets the page's bit; AllocPageHint and the allocCache
// prefill share it so allocation accounting has one authority.
func (z *Zone) markAllocated(addr int64) {
	w, m := z.pageBit(addr)
	z.allocated[w] |= m
	z.allocCount++
	z.stats.Allocs++
}

func mustPageAligned(base, size int64) {
	if base%addrmap.PageSize != 0 || size <= 0 || size%addrmap.PageSize != 0 {
		panic(fmt.Sprintf("kalloc: zone base %#x / size %#x not page aligned", base, size))
	}
}

// Stats returns a copy of the zone statistics.
func (z *Zone) Stats() ZoneStats { return z.stats }

// Contains reports whether the physical address belongs to the zone.
func (z *Zone) Contains(phys int64) bool { return phys >= z.Base && phys < z.Base+z.Size }

// FreePages returns the number of currently unallocated pages.
func (z *Zone) FreePages() int64 {
	return z.Size/addrmap.PageSize - z.allocCount
}

// AllocPage allocates one page with no affinity requirement. It returns the
// physical address of the page.
func (z *Zone) AllocPage() (int64, error) {
	return z.AllocPageHint(NoHint)
}

// AllocPageHint implements __alloc_netdimm_pages(zone, hint): it allocates
// one page, preferring the same (rank, bank, sub-array) as the hint
// address. The API is best effort (paper Sec. 4.2.1): when the hinted
// sub-array has no free page, any free page in the zone is returned.
func (z *Zone) AllocPageHint(hint int64) (int64, error) {
	var addr int64 = -1
	switch z.Kind {
	case ZoneNormal:
		addr = z.allocNormal()
	case ZoneNetDIMM:
		if hint != NoHint {
			if !z.Contains(hint) {
				return 0, fmt.Errorf("kalloc: hint %#x outside zone %s", hint, z.Name)
			}
			key := addrmap.SubarrayOf(hint - z.Base)
			addr = z.allocFromBucket(int(key))
			if addr >= 0 {
				z.stats.HintSatisfied++
			} else {
				z.stats.HintFallback++
			}
		}
		if addr < 0 {
			addr = z.allocAnyBucket()
		}
	}
	if addr < 0 {
		z.stats.Failures++
		return 0, fmt.Errorf("kalloc: zone %s exhausted", z.Name)
	}
	z.markAllocated(addr)
	return addr, nil
}

func (z *Zone) allocNormal() int64 {
	if n := len(z.freed); n > 0 {
		a := z.freed[n-1]
		z.freed = z.freed[:n-1]
		return a
	}
	if z.bump >= z.Size {
		return -1
	}
	a := z.Base + z.bump
	z.bump += addrmap.PageSize
	return a
}

// allocFromBucket returns a free page of bucket key, or -1.
func (z *Zone) allocFromBucket(key int) int64 {
	b := &z.buckets[key]
	if n := len(b.freed); n > 0 {
		a := b.freed[n-1]
		b.freed = b.freed[:n-1]
		return a
	}
	if b.fresh >= pagesPerBucket {
		return -1
	}
	a := z.bucketPage(key, b.fresh)
	b.fresh++
	return a
}

func (z *Zone) allocAnyBucket() int64 {
	for key := range z.buckets {
		if a := z.allocFromBucket(key); a >= 0 {
			return a
		}
	}
	return -1
}

// bucketPage computes the physical address of page idx within bucket key,
// inverting the SubarrayKey layout: key = (rank*16 + bank)*512 + subarray.
func (z *Zone) bucketPage(key, idx int) int64 {
	sub := key % addrmap.SubarraysPerBank
	bank := (key / addrmap.SubarraysPerBank) % addrmap.BanksPerRank
	rank := key / addrmap.SubarraysPerRank
	loc := addrmap.Location{
		Rank:     rank,
		Bank:     bank,
		Subarray: sub,
		Row:      idx >> 1,
		Column:   int64(idx&1) << addrmap.PageShift,
	}
	return z.Base + addrmap.EncodeRank(loc)
}

// FreePage returns a page to the zone. Double frees and foreign pages are
// reported as errors.
func (z *Zone) FreePage(addr int64) error {
	if !z.Contains(addr) {
		return fmt.Errorf("kalloc: freeing %#x outside zone %s", addr, z.Name)
	}
	if addr%addrmap.PageSize != 0 {
		return fmt.Errorf("kalloc: freeing unaligned address %#x", addr)
	}
	if !z.isAllocated(addr) {
		return fmt.Errorf("kalloc: double free of %#x in zone %s", addr, z.Name)
	}
	w, m := z.pageBit(addr)
	z.allocated[w] &^= m
	z.allocCount--
	z.stats.Frees++
	switch z.Kind {
	case ZoneNormal:
		z.freed = append(z.freed, addr)
	case ZoneNetDIMM:
		key := addrmap.SubarrayOf(addr - z.Base)
		b := &z.buckets[key]
		b.freed = append(b.freed, addr)
	}
	return nil
}

// SubarrayKeyOf returns the allocCache bucket key of a physical address in
// a NetDIMM zone.
func (z *Zone) SubarrayKeyOf(phys int64) (addrmap.SubarrayKey, error) {
	if z.Kind != ZoneNetDIMM {
		return 0, fmt.Errorf("kalloc: zone %s has no sub-array structure", z.Name)
	}
	if !z.Contains(phys) {
		return 0, fmt.Errorf("kalloc: %#x outside zone %s", phys, z.Name)
	}
	return addrmap.SubarrayOf(phys - z.Base), nil
}

// Buckets returns the number of (rank, bank, sub-array) buckets — 8K per
// rank (paper Sec. 4.2.2).
func (z *Zone) Buckets() int { return len(z.buckets) }
