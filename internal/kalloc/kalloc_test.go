package kalloc

import (
	"testing"
	"testing/quick"

	"netdimm/internal/addrmap"
)

const testBase = int64(16) << 30

func netZone(t *testing.T) *Zone {
	t.Helper()
	return NewNetDIMMZone("NET_0", testBase, 16<<30)
}

func TestNormalZoneAllocFree(t *testing.T) {
	z := NewNormalZone("normal", 0, 1<<20)
	a, err := z.AllocPage()
	if err != nil {
		t.Fatal(err)
	}
	b, err := z.AllocPage()
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Fatal("double allocation")
	}
	if err := z.FreePage(a); err != nil {
		t.Fatal(err)
	}
	c, err := z.AllocPage()
	if err != nil {
		t.Fatal(err)
	}
	if c != a {
		t.Fatalf("freed page not recycled: got %#x want %#x", c, a)
	}
}

func TestNormalZoneExhaustion(t *testing.T) {
	z := NewNormalZone("tiny", 0, 3*addrmap.PageSize)
	for i := 0; i < 3; i++ {
		if _, err := z.AllocPage(); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := z.AllocPage(); err == nil {
		t.Fatal("exhausted zone allocated")
	}
	if z.Stats().Failures != 1 {
		t.Fatalf("Failures = %d", z.Stats().Failures)
	}
}

func TestFreeErrors(t *testing.T) {
	z := NewNormalZone("normal", 0, 1<<20)
	a, _ := z.AllocPage()
	if err := z.FreePage(a + 1); err == nil {
		t.Error("unaligned free accepted")
	}
	if err := z.FreePage(2 << 20); err == nil {
		t.Error("foreign free accepted")
	}
	if err := z.FreePage(a); err != nil {
		t.Error(err)
	}
	if err := z.FreePage(a); err == nil {
		t.Error("double free accepted")
	}
}

func TestNetDIMMZoneGeometry(t *testing.T) {
	z := netZone(t)
	// Two 8GB ranks -> 16K buckets (paper: 8K distinct sub-arrays per rank).
	if z.Buckets() != 2*addrmap.SubarraysPerRank {
		t.Fatalf("buckets = %d, want %d", z.Buckets(), 2*addrmap.SubarraysPerRank)
	}
	if z.FreePages() != (16<<30)/addrmap.PageSize {
		t.Fatalf("FreePages = %d", z.FreePages())
	}
}

func TestHintAllocationAffinity(t *testing.T) {
	z := netZone(t)
	first, err := z.AllocPage()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		p, err := z.AllocPageHint(first)
		if err != nil {
			t.Fatal(err)
		}
		if !addrmap.SameSubarray(first-z.Base, p-z.Base) {
			t.Fatalf("hinted page %#x not in hint's sub-array", p)
		}
	}
	if z.Stats().HintSatisfied != 50 {
		t.Fatalf("HintSatisfied = %d", z.Stats().HintSatisfied)
	}
}

func TestHintFallbackWhenSubarrayFull(t *testing.T) {
	z := netZone(t)
	first, _ := z.AllocPage()
	// Exhaust the hinted sub-array: 256 pages per bucket.
	for i := 0; i < pagesPerBucket-1; i++ {
		if _, err := z.AllocPageHint(first); err != nil {
			t.Fatal(err)
		}
	}
	// Next hinted allocation must fall back, not fail (best-effort API).
	p, err := z.AllocPageHint(first)
	if err != nil {
		t.Fatal(err)
	}
	if addrmap.SameSubarray(first-z.Base, p-z.Base) {
		t.Fatal("sub-array should be exhausted")
	}
	if z.Stats().HintFallback != 1 {
		t.Fatalf("HintFallback = %d", z.Stats().HintFallback)
	}
}

func TestHintOutsideZone(t *testing.T) {
	z := netZone(t)
	if _, err := z.AllocPageHint(42); err == nil {
		t.Fatal("foreign hint accepted")
	}
}

// Property: the allocator never hands out the same page twice while it is
// allocated, and every page lies inside the zone, page-aligned.
func TestNoDoubleAllocationProperty(t *testing.T) {
	z := netZone(t)
	seen := make(map[int64]bool)
	var handles []int64
	f := func(op uint8, pick uint8) bool {
		if op%4 != 0 || len(handles) == 0 {
			hint := NoHint
			if len(handles) > 0 && op%2 == 0 {
				hint = handles[int(pick)%len(handles)]
			}
			p, err := z.AllocPageHint(hint)
			if err != nil {
				return true // exhaustion is legal
			}
			if seen[p] || !z.Contains(p) || p%addrmap.PageSize != 0 {
				return false
			}
			seen[p] = true
			handles = append(handles, p)
		} else {
			i := int(pick) % len(handles)
			p := handles[i]
			handles = append(handles[:i], handles[i+1:]...)
			if err := z.FreePage(p); err != nil {
				return false
			}
			delete(seen, p)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}

func TestBucketPageRoundTrip(t *testing.T) {
	z := netZone(t)
	// Every bucket's first page must map back to that bucket's key.
	for key := 0; key < z.Buckets(); key += 97 {
		p := z.bucketPage(key, 0)
		got, err := z.SubarrayKeyOf(p)
		if err != nil {
			t.Fatal(err)
		}
		if int(got) != key {
			t.Fatalf("bucket %d page maps to key %d", key, got)
		}
	}
	// And distinct page indices within a bucket are distinct addresses.
	seen := make(map[int64]bool)
	for idx := 0; idx < pagesPerBucket; idx++ {
		p := z.bucketPage(5, idx)
		if seen[p] {
			t.Fatalf("bucket page %d duplicates address %#x", idx, p)
		}
		seen[p] = true
		if k, _ := z.SubarrayKeyOf(p); k != 5 {
			t.Fatalf("page %d of bucket 5 maps to key %d", idx, k)
		}
	}
}

func TestAllocCachePrefill(t *testing.T) {
	z := netZone(t)
	c, err := NewAllocCache(z, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Paper Sec. 4.2.2: two ranks -> 32K pre-allocated pages (128MB, 0.8%
	// of 16GB).
	if got := c.PinnedPages(); got != 32768 {
		t.Fatalf("PinnedPages = %d, want 32768", got)
	}
	pinnedBytes := int64(c.PinnedPages()) * addrmap.PageSize
	overheadPct := float64(pinnedBytes) / float64(16<<30) * 100
	if overheadPct < 0.7 || overheadPct > 0.9 {
		t.Fatalf("capacity overhead = %.2f%%, want ~0.8%%", overheadPct)
	}
}

func TestAllocCacheFastPath(t *testing.T) {
	z := netZone(t)
	c, _ := NewAllocCache(z, 2)
	app, _ := z.AllocPage() // an application buffer somewhere in the zone

	p, fast, err := c.Get(app)
	if err != nil {
		t.Fatal(err)
	}
	if !fast {
		t.Fatal("prefilled cache should serve the fast path")
	}
	if !addrmap.SameSubarray(app-z.Base, p-z.Base) {
		t.Fatal("fast-path page not sub-array affine")
	}
	hits, slow := c.Stats()
	if hits != 1 || slow != 0 {
		t.Fatalf("stats = %d/%d", hits, slow)
	}
}

func TestAllocCacheSlowPathAndRefill(t *testing.T) {
	z := netZone(t)
	c, _ := NewAllocCache(z, 2)
	app, _ := z.AllocPage()

	// Drain the bucket (2 pages), then hit the slow path.
	c.Get(app)
	c.Get(app)
	_, fast, err := c.Get(app)
	if err != nil {
		t.Fatal(err)
	}
	if fast {
		t.Fatal("drained bucket should use the slow path")
	}
	_, slow := c.Stats()
	if slow != 1 {
		t.Fatalf("slow = %d", slow)
	}
	// Background refill restores the fast path.
	if err := c.Refill(); err != nil {
		t.Fatal(err)
	}
	_, fast, err = c.Get(app)
	if err != nil || !fast {
		t.Fatalf("post-refill Get fast=%v err=%v", fast, err)
	}
}

func TestAllocCacheNoHint(t *testing.T) {
	z := netZone(t)
	c, _ := NewAllocCache(z, 1)
	p, fast, err := c.Get(NoHint)
	if err != nil || !fast {
		t.Fatalf("NoHint Get fast=%v err=%v", fast, err)
	}
	if !z.Contains(p) {
		t.Fatal("page outside zone")
	}
}

func TestAllocCacheRelease(t *testing.T) {
	z := netZone(t)
	c, _ := NewAllocCache(z, 1)
	p, _, _ := c.Get(NoHint)
	if err := c.Release(p); err != nil {
		t.Fatal(err)
	}
	if err := c.Release(p); err == nil {
		t.Fatal("double release accepted")
	}
}

func TestAllocCacheRequiresNetDIMMZone(t *testing.T) {
	if _, err := NewAllocCache(NewNormalZone("n", 0, 1<<20), 2); err == nil {
		t.Fatal("normal zone accepted")
	}
	if _, err := NewAllocCache(netZone(t), 0); err == nil {
		t.Fatal("zero perSubarray accepted")
	}
}

func TestZonePanicsOnBadGeometry(t *testing.T) {
	cases := []func(){
		func() { NewNormalZone("x", 1, 1<<20) },
		func() { NewNormalZone("x", 0, 100) },
		func() { NewNetDIMMZone("x", 0, 1<<20) }, // not a rank multiple
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: bad geometry accepted", i)
				}
			}()
			fn()
		}()
	}
}
