package kalloc

import "fmt"

// AllocCache is the NetDIMM driver's pre-allocation hash table (paper
// Sec. 4.2.2): it keeps PerSubarray pages from every distinct (rank, bank,
// sub-array) ready, so on-demand DMA-buffer allocation returns a
// sub-array-affine page immediately instead of walking the allocator on the
// packet critical path. The driver refills it concurrently in the
// background; in the simulation, Refill is invoked from a scheduled
// maintenance event.
type AllocCache struct {
	zone        *Zone
	perSubarray int
	// cache holds each bucket's ready pages, indexed by SubarrayKey —
	// keys are dense in [0, zone.Buckets()), so a slice replaces the
	// hash table the paper names (the affinity lookup is still O(1),
	// now without hashing). All bucket slices share one backing array
	// carved out at construction, so a prefilled cache costs two
	// allocations instead of one per bucket.
	cache [][]int64
	// cursor is where the next NoHint lookup starts its bucket scan. A
	// rotating cursor spreads no-affinity allocations across sub-arrays
	// (like the kernel's per-CPU freelist rotation) and — unlike ranging
	// over the map — is deterministic, which the parallel experiment
	// harness depends on for byte-identical results.
	cursor int

	hits, slow uint64
}

// NewAllocCache builds and pre-fills the cache with perSubarray pages per
// bucket. With the paper's defaults (2 pages x 8K sub-arrays x 2 ranks)
// this pins 32K pages = 128MB, 0.8% of a 16GB NetDIMM.
func NewAllocCache(zone *Zone, perSubarray int) (*AllocCache, error) {
	if zone.Kind != ZoneNetDIMM {
		return nil, fmt.Errorf("kalloc: allocCache requires a NetDIMM zone, got %s", zone.Name)
	}
	if perSubarray <= 0 {
		return nil, fmt.Errorf("kalloc: perSubarray must be positive, got %d", perSubarray)
	}
	c := &AllocCache{
		zone:        zone,
		perSubarray: perSubarray,
		cache:       make([][]int64, zone.Buckets()),
	}
	backing := make([]int64, zone.Buckets()*perSubarray)
	for k := range c.cache {
		c.cache[k] = backing[k*perSubarray : k*perSubarray : (k+1)*perSubarray]
	}
	if err := c.Refill(); err != nil {
		return nil, err
	}
	return c, nil
}

// PinnedPages returns the number of pages currently held by the cache.
func (c *AllocCache) PinnedPages() int {
	n := 0
	for _, pages := range c.cache {
		n += len(pages)
	}
	return n
}

// Stats returns fast-path hits and slow-path fallbacks.
func (c *AllocCache) Stats() (hits, slowPath uint64) { return c.hits, c.slow }

// Get returns a page in the same sub-array as hint (a physical address in
// the zone), or any page for NoHint. fast reports whether the page came
// from the cache (O(1) hash lookup) rather than the allocator slow path.
func (c *AllocCache) Get(hint int64) (addr int64, fast bool, err error) {
	if hint != NoHint {
		key, kerr := c.zone.SubarrayKeyOf(hint)
		if kerr != nil {
			return 0, false, kerr
		}
		if pages := c.cache[key]; len(pages) > 0 {
			addr = pages[len(pages)-1]
			c.cache[key] = pages[:len(pages)-1]
			c.hits++
			return addr, true, nil
		}
	} else {
		// No affinity requirement: serve from the next non-empty bucket in
		// key order, resuming where the previous no-hint lookup left off.
		n := c.zone.Buckets()
		for i := 0; i < n; i++ {
			key := (c.cursor + i) % n
			if pages := c.cache[key]; len(pages) > 0 {
				addr = pages[len(pages)-1]
				c.cache[key] = pages[:len(pages)-1]
				c.cursor = (key + 1) % n
				c.hits++
				return addr, true, nil
			}
		}
	}
	// Slow path: __alloc_netdimm_pages directly.
	c.slow++
	addr, err = c.zone.AllocPageHint(hint)
	return addr, false, err
}

// Refill tops every bucket back up to perSubarray pages (the background
// maintenance the driver runs off the critical path). Buckets whose
// sub-array is exhausted are skipped — Get then falls back to the
// allocator's best-effort path.
func (c *AllocCache) Refill() error {
	for key := 0; key < c.zone.Buckets(); key++ {
		pages := c.cache[key]
		for len(pages) < c.perSubarray {
			addr := c.zone.allocFromBucket(key)
			if addr < 0 {
				break
			}
			c.zone.markAllocated(addr)
			pages = append(pages, addr)
		}
		c.cache[key] = pages
	}
	return nil
}

// Release returns a previously allocated page to the zone (e.g. after the
// SKB is consumed); the page becomes available to future refills.
func (c *AllocCache) Release(addr int64) error { return c.zone.FreePage(addr) }
