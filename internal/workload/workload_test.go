package workload

import (
	"testing"

	"netdimm/internal/dram"
	"netdimm/internal/ethernet"
	"netdimm/internal/memctrl"
	"netdimm/internal/nic"
	"netdimm/internal/sim"
)

func sampleSizes(c Cluster, n int) []int {
	r := sim.NewRand(42)
	out := make([]int, n)
	for i := range out {
		out[i] = c.SampleSize(r)
	}
	return out
}

// Paper Sec. 5.1 distribution checks.
func TestDatabaseSizes(t *testing.T) {
	sizes := sampleSizes(Database, 20000)
	var sum float64
	for _, s := range sizes {
		if s < 64 || s > nic.MTU {
			t.Fatalf("size %d out of [64,1514]", s)
		}
		sum += float64(s)
	}
	mean := sum / float64(len(sizes))
	if mean < 730 || mean > 850 {
		t.Fatalf("database mean = %.0f, want ~789 (uniform 64-1514)", mean)
	}
}

func TestWebserverSizes(t *testing.T) {
	sizes := sampleSizes(Webserver, 20000)
	small := 0
	for _, s := range sizes {
		if s < 300 {
			small++
		}
	}
	frac := float64(small) / float64(len(sizes))
	if frac < 0.87 || frac > 0.93 {
		t.Fatalf("webserver <300B fraction = %.3f, want ~0.90", frac)
	}
}

func TestHadoopSizes(t *testing.T) {
	sizes := sampleSizes(Hadoop, 20000)
	tiny, mtu := 0, 0
	for _, s := range sizes {
		if s < 100 {
			tiny++
		}
		if s == nic.MTU {
			mtu++
		}
	}
	tf := float64(tiny) / float64(len(sizes))
	mf := float64(mtu) / float64(len(sizes))
	if tf < 0.38 || tf > 0.44 {
		t.Fatalf("hadoop <100B fraction = %.3f, want ~0.41", tf)
	}
	if mf < 0.49 || mf > 0.55 {
		t.Fatalf("hadoop MTU fraction = %.3f, want ~0.52", mf)
	}
}

func TestLocalityDistributions(t *testing.T) {
	r := sim.NewRand(7)
	counts := make(map[Cluster]map[ethernet.Locality]int)
	const n = 10000
	for _, c := range Clusters {
		counts[c] = map[ethernet.Locality]int{}
		for i := 0; i < n; i++ {
			counts[c][c.SampleLocality(r)]++
		}
	}
	// Database is dominated by inter-DC + intra-DC (inter-cluster) flows.
	if counts[Database][ethernet.InterDatacenter]+counts[Database][ethernet.IntraDatacenter] < n*8/10 {
		t.Fatal("database should be mostly inter-cluster/inter-DC")
	}
	// Webserver: intra-datacenter dominant.
	if counts[Webserver][ethernet.IntraDatacenter] < n*7/10 {
		t.Fatal("webserver should be mostly intra-DC")
	}
	// Hadoop: intra-cluster (incl. intra-rack) dominant.
	if counts[Hadoop][ethernet.IntraCluster]+counts[Hadoop][ethernet.IntraRack] < n*8/10 {
		t.Fatal("hadoop should be mostly intra-cluster")
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	a := NewGenerator(Database, 0, 5).Generate(100)
	b := NewGenerator(Database, 0, 5).Generate(100)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same-seed traces diverge")
		}
	}
	c := NewGenerator(Database, 0, 6).Generate(100)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestGeneratorArrivalsMonotone(t *testing.T) {
	evs := NewGenerator(Hadoop, 2*sim.Microsecond, 1).Generate(1000)
	var prev sim.Time = -1
	var sum sim.Time
	for i, e := range evs {
		if e.At < prev {
			t.Fatalf("event %d: time went backwards", i)
		}
		prev = e.At
	}
	sum = evs[len(evs)-1].At
	meanGap := float64(sum) / float64(len(evs))
	if meanGap < 1.8e6 || meanGap > 2.2e6 { // ps
		t.Fatalf("mean gap = %.0fps, want ~2us", meanGap)
	}
}

func TestEventPacket(t *testing.T) {
	e := Event{At: 100, Size: 512}
	p := e.Packet(7)
	if p.ID != 7 || p.Size != 512 || p.Born != 100 {
		t.Fatalf("Packet = %+v", p)
	}
}

func TestInjectorPressureLowersForLargerDelay(t *testing.T) {
	run := func(delay sim.Time) (issued uint64, avg sim.Time) {
		eng := sim.NewEngine()
		rs := memctrl.NewRankSet(dram.DDR4_2400(), 2)
		mc := memctrl.New(eng, memctrl.DefaultConfig(), rs)
		in := NewInjector(eng, mc, delay, 0.5, 0, 64<<20, 3)
		in.Start()
		eng.RunUntil(200 * sim.Microsecond)
		in.Stop()
		eng.Run()
		return in.Issued(), in.ReadLatency().Mean()
	}
	hiIssued, hiLat := run(10 * sim.Nanosecond) // heavy pressure
	loIssued, loLat := run(1 * sim.Microsecond) // light pressure
	if hiIssued <= loIssued {
		t.Fatalf("issued %d at high pressure vs %d at low", hiIssued, loIssued)
	}
	// Fig. 5 mechanism: more pressure, higher memory latency.
	if hiLat <= loLat {
		t.Fatalf("read latency %v under pressure should exceed %v idle", hiLat, loLat)
	}
}

func TestInjectorReadFraction(t *testing.T) {
	eng := sim.NewEngine()
	rs := memctrl.NewRankSet(dram.DDR4_2400(), 1)
	mc := memctrl.New(eng, memctrl.DefaultConfig(), rs)
	in := NewInjector(eng, mc, 50*sim.Nanosecond, 1.0, 0, 1<<20, 4)
	in.Start()
	eng.RunUntil(50 * sim.Microsecond)
	in.Stop()
	eng.Run()
	if mc.Stats().WritesDone != 0 {
		t.Fatal("read-only injector issued writes")
	}
	if in.ReadLatency().Count() == 0 {
		t.Fatal("no read latencies observed")
	}
}

func TestInjectorTinyWorkingSetClamped(t *testing.T) {
	eng := sim.NewEngine()
	rs := memctrl.NewRankSet(dram.DDR4_2400(), 1)
	mc := memctrl.New(eng, memctrl.DefaultConfig(), rs)
	in := NewInjector(eng, mc, 100*sim.Nanosecond, 0.5, 0, 1, 5)
	in.Start()
	eng.RunUntil(5 * sim.Microsecond)
	in.Stop()
	eng.Run()
	if in.Issued() == 0 {
		t.Fatal("clamped working set should still inject")
	}
}

func TestInjectorParallelism(t *testing.T) {
	run := func(par int) uint64 {
		eng := sim.NewEngine()
		rs := memctrl.NewRankSet(dram.DDR4_2400(), 1)
		mc := memctrl.New(eng, memctrl.DefaultConfig(), rs)
		in := NewInjector(eng, mc, 200*sim.Nanosecond, 0.5, 0, 1<<20, 9)
		in.Parallelism = par
		in.Start()
		eng.RunUntil(100 * sim.Microsecond)
		in.Stop()
		eng.Run()
		return in.Issued()
	}
	one := run(1)
	eight := run(8)
	if eight < 6*one {
		t.Fatalf("parallel injector issued %d vs %d single-threaded", eight, one)
	}
}

func TestInjectorRetryDoesNotDropDemand(t *testing.T) {
	eng := sim.NewEngine()
	rs := memctrl.NewRankSet(dram.DDR4_2400(), 1)
	cfg := memctrl.DefaultConfig()
	cfg.ReadQueueCap = 4
	cfg.WriteQueueCap = 4
	mc := memctrl.New(eng, cfg, rs)
	in := NewInjector(eng, mc, sim.Nanosecond, 0.5, 0, 1<<20, 10)
	in.Retry = true
	in.Start()
	eng.RunUntil(20 * sim.Microsecond)
	in.Stop()
	eng.Run()
	// With retries, rejected attempts are re-issued, not lost: issued
	// requests track the controller's actual capacity.
	if in.Issued() == 0 {
		t.Fatal("retrying injector made no progress")
	}
	done := mc.Stats().ReadsDone + mc.Stats().WritesDone
	if done < in.Issued()*9/10 {
		t.Fatalf("issued %d but completed only %d", in.Issued(), done)
	}
}
