package workload

import (
	"fmt"

	"netdimm/internal/ethernet"
	"netdimm/internal/fabric"
	"netdimm/internal/sim"
)

// This file is the cross-rack traffic mix: it maps each packet's sampled
// flow locality (the paper's per-cluster characterisation) onto a concrete
// destination host in a racked topology. IntraRack and IntraCluster flows
// stay inside the source's rack; IntraDatacenter and InterDatacenter flows
// cross the spine layer to another rack. The rack assignment is
// fabric.LeafOf's contiguous-block split, so "same rack" here is exactly
// "same leaf" in the fabric the experiment builds — the destination mix
// and the topology can never disagree about what crosses a spine.
//
// Under the published localities this gives each cluster a distinct spine
// pressure: database traffic is ~90% cross-rack, webserver ~85%, hadoop
// only ~10% — the spread the racksweep experiment sweeps racks over.

// CrossRack reports whether a flow of the given locality leaves its
// source's rack (and therefore crosses the spine layer).
func CrossRack(lo ethernet.Locality) bool {
	return lo == ethernet.IntraDatacenter || lo == ethernet.InterDatacenter
}

// SampleDest draws a uniform destination host for one packet sent by src
// with the given locality, over `hosts` hosts split into `racks` racks.
// The draw consumes exactly one value from r per call, never returns src,
// and degrades gracefully: a locality with no eligible destination (a
// one-host rack for an intra-rack flow, or a single rack for a cross-rack
// flow) falls back to a uniform draw over all other hosts.
func SampleDest(r *sim.Rand, lo ethernet.Locality, src, hosts, racks int) int {
	if hosts < 2 {
		panic(fmt.Sprintf("workload: cannot pick a destination among %d hosts", hosts))
	}
	if src < 0 || src >= hosts {
		panic(fmt.Sprintf("workload: source %d outside [0,%d)", src, hosts))
	}
	rlo, rhi := fabric.RackBounds(src, hosts, racks)
	rackSize := rhi - rlo
	if CrossRack(lo) && hosts > rackSize {
		// Uniform over hosts outside [rlo, rhi): draw an index into the
		// complement and shift it past the rack.
		k := r.Intn(hosts - rackSize)
		if k >= rlo {
			k += rackSize
		}
		return k
	}
	if rackSize > 1 {
		// Uniform inside the rack, excluding src.
		k := rlo + r.Intn(rackSize-1)
		if k >= src {
			k++
		}
		return k
	}
	// No rack-mate exists: any other host.
	k := r.Intn(hosts - 1)
	if k >= src {
		k++
	}
	return k
}
