package workload

import (
	"netdimm/internal/addrmap"
	"netdimm/internal/memctrl"
	"netdimm/internal/sim"
	"netdimm/internal/stats"
)

// Injector issues memory requests into a controller at a fixed
// inter-request delay — the Intel Memory Latency Checker methodology of
// the paper's Fig. 5 ("We use MLC to inject dummy memory requests to the
// memory subsystem at different rates. We set the ratio of memory read to
// write requests to 1.").
//
// It doubles as the co-running-application generator of Fig. 12(b) with a
// different read fraction and working set.
type Injector struct {
	Eng *sim.Engine
	MC  *memctrl.Controller
	// Delay between injected requests (the Fig. 5 X axis). Zero means
	// back-to-back maximum pressure.
	Delay sim.Time
	// ReadFraction in [0,1]; MLC uses 0.5 (1:1 R/W).
	ReadFraction float64
	// Base and WorkingSet bound the address range touched.
	Base       int64
	WorkingSet int64
	// Retry makes the injector behave like a stalled CPU thread: a request
	// rejected by a full controller queue is retried until accepted (the
	// MLC tool's load threads block on outstanding requests; they do not
	// drop them).
	Retry bool
	// Parallelism is the number of independent load threads (MLC spawns
	// one per core); each runs its own issue loop at Delay.
	Parallelism int

	rng     *sim.Rand
	stopped bool
	lat     stats.Histogram
	issued  uint64
	dropped uint64
}

// NewInjector returns a seeded injector over [base, base+workingSet).
func NewInjector(eng *sim.Engine, mc *memctrl.Controller, delay sim.Time, readFrac float64, base, workingSet int64, seed uint64) *Injector {
	if workingSet < addrmap.CachelineSize {
		workingSet = addrmap.CachelineSize
	}
	return &Injector{
		Eng: eng, MC: mc, Delay: delay, ReadFraction: readFrac,
		Base: base, WorkingSet: workingSet, rng: sim.NewRand(seed),
	}
}

// Start begins injecting; requests continue until Stop.
func (in *Injector) Start() {
	in.stopped = false
	threads := in.Parallelism
	if threads < 1 {
		threads = 1
	}
	for i := 0; i < threads; i++ {
		in.tick()
	}
}

// Stop halts injection after the current scheduling round.
func (in *Injector) Stop() { in.stopped = true }

// Issued returns the number of requests issued.
func (in *Injector) Issued() uint64 { return in.issued }

// Dropped returns requests rejected by a full controller queue (the
// back-pressure signal at maximum pressure).
func (in *Injector) Dropped() uint64 { return in.dropped }

// ReadLatency exposes the read-latency histogram.
func (in *Injector) ReadLatency() *stats.Histogram { return &in.lat }

func (in *Injector) tick() {
	if in.stopped {
		return
	}
	lines := in.WorkingSet / addrmap.CachelineSize
	addr := in.Base + in.rng.Int63n(lines)*addrmap.CachelineSize
	write := in.rng.Float64() >= in.ReadFraction
	req := &memctrl.Request{Addr: addr, Write: write, Bytes: addrmap.CachelineSize}
	if !write {
		req.Done = func(r memctrl.Response) { in.lat.Observe(r.Latency()) }
	}
	gap := in.Delay
	if gap <= 0 {
		gap = sim.Nanosecond // max pressure: one request per ns of CPU issue
	}
	if err := in.MC.Submit(req); err != nil {
		in.dropped++
		if in.Retry {
			// Stall: re-attempt this request instead of generating a new
			// one, like a blocked load/store in the MLC thread.
			in.Eng.Schedule(gap, func() { in.retry(req) })
			return
		}
	} else {
		in.issued++
	}
	in.Eng.Schedule(gap, in.tick)
}

func (in *Injector) retry(req *memctrl.Request) {
	if in.stopped {
		return
	}
	gap := in.Delay
	if gap <= 0 {
		gap = sim.Nanosecond
	}
	if err := in.MC.Submit(req); err != nil {
		in.dropped++
		in.Eng.Schedule(gap, func() { in.retry(req) })
		return
	}
	in.issued++
	in.Eng.Schedule(gap, in.tick)
}
