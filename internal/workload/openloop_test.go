package workload

import (
	"math"
	"strings"
	"testing"

	"netdimm/internal/nic"
	"netdimm/internal/sim"
)

func TestParseClusterAndProcess(t *testing.T) {
	for name, want := range map[string]Cluster{
		"": Database, "database": Database, "webserver": Webserver, "hadoop": Hadoop,
	} {
		got, err := ParseCluster(name)
		if err != nil || got != want {
			t.Errorf("ParseCluster(%q) = %v, %v; want %v", name, got, err, want)
		}
	}
	if _, err := ParseCluster("mainframe"); err == nil || !strings.Contains(err.Error(), "unknown cluster") {
		t.Errorf("ParseCluster(mainframe) err = %v", err)
	}
	for name, want := range map[string]ArrivalProcess{
		"": Poisson, "poisson": Poisson, "fixed": FixedRate,
	} {
		got, err := ParseProcess(name)
		if err != nil || got != want {
			t.Errorf("ParseProcess(%q) = %v, %v; want %v", name, got, err, want)
		}
	}
	if _, err := ParseProcess("bursty"); err == nil || !strings.Contains(err.Error(), "unknown arrival process") {
		t.Errorf("ParseProcess(bursty) err = %v", err)
	}
	if got := ArrivalProcess(99).String(); got != "ArrivalProcess(99)" {
		t.Errorf("stray process String() = %q", got)
	}
}

// The analytic mean must agree with the sampling distribution it summarises.
func TestMeanSizeMatchesSampler(t *testing.T) {
	for _, c := range Clusters {
		r := sim.NewRand(7)
		const n = 200000
		var sum float64
		for i := 0; i < n; i++ {
			sum += float64(c.SampleSize(r))
		}
		got, want := sum/n, c.MeanSize()
		if rel := math.Abs(got-want) / want; rel > 0.01 {
			t.Errorf("%v: sampled mean %.1f vs analytic %.1f (rel err %.3f)", c, got, want, rel)
		}
	}
}

func TestMeanGapForLoad(t *testing.T) {
	// One source at full load on 40GbE: the gap must equal the wire time of
	// a mean-sized frame.
	gap, err := Database.MeanGapForLoad(1, 1, 40)
	if err != nil {
		t.Fatal(err)
	}
	bits := (Database.MeanSize() + nic.EthernetOverheadBytes) * 8
	want := sim.Time(math.Round(bits / 40 * float64(sim.Second) / 1e9))
	if gap != want {
		t.Errorf("gap = %v, want %v", gap, want)
	}
	// Halving the load doubles the gap; doubling the sources doubles the
	// per-source gap.
	half, _ := Database.MeanGapForLoad(0.5, 1, 40)
	if got, want := float64(half)/float64(gap), 2.0; math.Abs(got-want) > 0.01 {
		t.Errorf("gap(0.5)/gap(1) = %g, want ~2", got)
	}
	two, _ := Database.MeanGapForLoad(1, 2, 40)
	if got, want := float64(two)/float64(gap), 2.0; math.Abs(got-want) > 0.01 {
		t.Errorf("gap(2 sources)/gap(1) = %g, want ~2", got)
	}

	for _, tc := range []struct {
		load    float64
		sources int
		gbps    float64
	}{
		{0, 1, 40}, {-0.5, 1, 40}, {math.NaN(), 1, 40}, {math.Inf(1), 1, 40},
		{0.5, 0, 40}, {0.5, -3, 40}, {0.5, 1, 0}, {0.5, 1, -10},
	} {
		if _, err := Database.MeanGapForLoad(tc.load, tc.sources, tc.gbps); err == nil {
			t.Errorf("MeanGapForLoad(%g, %d, %g): no error", tc.load, tc.sources, tc.gbps)
		}
	}
}

// The contract the load sweep leans on: same seed, different mean gap →
// identical packet sequence, scaled spacing.
func TestOpenLoopSameSeedHoldsWorkFixed(t *testing.T) {
	slow := NewOpenLoop(Hadoop, Poisson, 4000, 42)
	fast := NewOpenLoop(Hadoop, Poisson, 1000, 42)
	prevS, prevF := sim.Time(0), sim.Time(0)
	for i := 0; i < 5000; i++ {
		es, ef := slow.Next(), fast.Next()
		if es.Size != ef.Size || es.Locality != ef.Locality {
			t.Fatalf("packet %d diverged: slow {%d %v} vs fast {%d %v}",
				i, es.Size, es.Locality, ef.Size, ef.Locality)
		}
		if es.At <= prevS || ef.At <= prevF {
			t.Fatalf("packet %d: arrival times not strictly increasing", i)
		}
		prevS, prevF = es.At, ef.At
	}
	// Mean spacing tracks MeanGap (same exponential draws, scaled).
	if ratio := float64(prevS) / float64(prevF); math.Abs(ratio-4) > 0.05 {
		t.Errorf("makespan ratio %g, want ~4 (MeanGap ratio)", ratio)
	}
}

func TestOpenLoopFixedRate(t *testing.T) {
	g := NewOpenLoop(Database, FixedRate, 250, 1)
	for i := 1; i <= 100; i++ {
		if e := g.Next(); e.At != sim.Time(i*250) {
			t.Fatalf("arrival %d at %v, want %v", i, e.At, sim.Time(i*250))
		}
	}
}

func TestOpenLoopRejectsBadGap(t *testing.T) {
	for _, gap := range []sim.Time{0, -5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewOpenLoop(gap=%v) did not panic", gap)
				}
			}()
			NewOpenLoop(Database, Poisson, gap, 1)
		}()
	}
}

func TestLoadSpecValidate(t *testing.T) {
	if err := (LoadSpec{}).Validate(); err != nil {
		t.Errorf("zero LoadSpec: %v", err)
	}
	good := LoadSpec{Hosts: 16, Cluster: "hadoop", Process: "fixed", PortBuffer: 32, KneeFactor: 5, Shards: 4}
	if err := good.Validate(); err != nil {
		t.Errorf("good LoadSpec: %v", err)
	}
	for _, tc := range []struct {
		name string
		l    LoadSpec
	}{
		{"negative hosts", LoadSpec{Hosts: -1}},
		{"negative buffer", LoadSpec{PortBuffer: -8}},
		{"negative knee", LoadSpec{KneeFactor: -2}},
		{"NaN knee", LoadSpec{KneeFactor: math.NaN()}},
		{"Inf knee", LoadSpec{KneeFactor: math.Inf(1)}},
		{"sub-1 knee", LoadSpec{KneeFactor: 0.5}},
		{"bad cluster", LoadSpec{Cluster: "mainframe"}},
		{"bad process", LoadSpec{Process: "bursty"}},
		{"negative shards", LoadSpec{Shards: -1}},
	} {
		if err := tc.l.Validate(); err == nil {
			t.Errorf("%s: no error", tc.name)
		}
	}
}
