// Package workload generates the traffic the experiments replay: synthetic
// Facebook-cluster traces matching the published packet-size and locality
// distributions (paper Sec. 5.1, citing Roy et al. [60]), an Intel-MLC-style
// memory-pressure injector (Fig. 5), and a co-running-application memory
// traffic generator (Fig. 12b).
//
// The real Facebook traces require a data-sharing agreement and are not
// redistributable, so the generators here are the documented substitution:
// deterministic, seeded samplers of the distributions the paper itself
// reports (database: uniform 64-1514B, inter-cluster/inter-DC; webserver:
// ~90% < 300B, intra-DC; hadoop: ~41% < 100B and ~52% = 1514B,
// intra-cluster).
package workload

import (
	"fmt"

	"netdimm/internal/ethernet"
	"netdimm/internal/nic"
	"netdimm/internal/sim"
)

// Cluster identifies one of the three production cluster types.
type Cluster int

const (
	// Database: packet sizes uniformly distributed between 64B and 1514B;
	// traffic mostly inter-cluster and inter-datacenter.
	Database Cluster = iota
	// Webserver: ~90% of packets smaller than 300B; traffic inter-cluster
	// but intra-datacenter.
	Webserver
	// Hadoop: ~41% of packets under 100B, ~52% at the 1514B MTU; traffic
	// intra-cluster.
	Hadoop
)

// Clusters lists all cluster types in presentation order.
var Clusters = []Cluster{Database, Webserver, Hadoop}

func (c Cluster) String() string {
	switch c {
	case Database:
		return "database"
	case Webserver:
		return "webserver"
	case Hadoop:
		return "hadoop"
	default:
		return fmt.Sprintf("Cluster(%d)", int(c))
	}
}

// SampleSize draws one packet size from the cluster's distribution.
func (c Cluster) SampleSize(r *sim.Rand) int {
	switch c {
	case Database:
		return r.Range(64, nic.MTU)
	case Webserver:
		if r.Float64() < 0.90 {
			return r.Range(64, 299)
		}
		return r.Range(300, nic.MTU)
	case Hadoop:
		x := r.Float64()
		switch {
		case x < 0.41:
			return r.Range(64, 99)
		case x < 0.41+0.52:
			return nic.MTU
		default:
			return r.Range(100, nic.MTU-1)
		}
	default:
		panic(fmt.Sprintf("workload: unknown cluster %d", int(c)))
	}
}

// SampleLocality draws the flow locality for one packet, following the
// paper's characterisation of each cluster's traffic pattern.
func (c Cluster) SampleLocality(r *sim.Rand) ethernet.Locality {
	x := r.Float64()
	switch c {
	case Database:
		// Mostly inter-cluster and inter-datacenter.
		switch {
		case x < 0.45:
			return ethernet.InterDatacenter
		case x < 0.90:
			return ethernet.IntraDatacenter
		default:
			return ethernet.IntraCluster
		}
	case Webserver:
		// Mostly inter-cluster but intra-datacenter.
		switch {
		case x < 0.80:
			return ethernet.IntraDatacenter
		case x < 0.95:
			return ethernet.IntraCluster
		default:
			return ethernet.InterDatacenter
		}
	case Hadoop:
		// Intra-cluster.
		switch {
		case x < 0.70:
			return ethernet.IntraCluster
		case x < 0.90:
			return ethernet.IntraRack
		default:
			return ethernet.IntraDatacenter
		}
	default:
		panic(fmt.Sprintf("workload: unknown cluster %d", int(c)))
	}
}

// Event is one packet arrival in a generated trace.
type Event struct {
	At       sim.Time
	Size     int
	Locality ethernet.Locality
}

// Packet converts the event to a nic.Packet.
func (e Event) Packet(id uint64) nic.Packet {
	return nic.Packet{ID: id, Size: e.Size, Born: e.At}
}

// Generator produces a deterministic packet stream for one cluster.
type Generator struct {
	Cluster Cluster
	// MeanGap is the mean exponential inter-arrival time.
	MeanGap sim.Time
	rng     *sim.Rand
	now     sim.Time
}

// NewGenerator returns a seeded generator. meanGap <= 0 defaults to the
// inter-arrival of a moderately loaded 40GbE port (~1.5us between packets).
func NewGenerator(c Cluster, meanGap sim.Time, seed uint64) *Generator {
	if meanGap <= 0 {
		meanGap = 1500 * sim.Nanosecond
	}
	return &Generator{Cluster: c, MeanGap: meanGap, rng: sim.NewRand(seed)}
}

// Next returns the next arrival.
func (g *Generator) Next() Event {
	g.now += g.rng.Exp(g.MeanGap)
	return Event{
		At:       g.now,
		Size:     g.Cluster.SampleSize(g.rng),
		Locality: g.Cluster.SampleLocality(g.rng),
	}
}

// Generate produces n arrivals.
func (g *Generator) Generate(n int) []Event {
	out := make([]Event, n)
	for i := range out {
		out[i] = g.Next()
	}
	return out
}
