package workload

import (
	"fmt"
	"math"

	"netdimm/internal/nic"
	"netdimm/internal/sim"
)

// This file is the open-loop side of the workload plane: arrival processes
// whose timing does not react to the system under test. The closed-loop
// Generator above replays unloaded traces (Fig. 12a); OpenLoop drives the
// rack-scale load sweep, where the interesting quantity is how queueing
// delay grows as the offered rate approaches a bottleneck's capacity — so
// arrivals must keep coming whether or not the receiver has caught up
// (the methodology of latency-vs-offered-load evaluations such as Alian et
// al.'s kernel-bypass gem5 study).

// ArrivalProcess selects how the open-loop generator spaces arrivals.
type ArrivalProcess int

const (
	// Poisson draws exponential inter-arrival gaps (memoryless traffic,
	// the default).
	Poisson ArrivalProcess = iota
	// FixedRate spaces arrivals at exactly the mean gap (a pacer or
	// hardware packet generator).
	FixedRate
)

func (p ArrivalProcess) String() string {
	switch p {
	case Poisson:
		return "poisson"
	case FixedRate:
		return "fixed"
	default:
		return fmt.Sprintf("ArrivalProcess(%d)", int(p))
	}
}

// ParseProcess resolves an arrival-process name; the empty string selects
// Poisson.
func ParseProcess(s string) (ArrivalProcess, error) {
	switch s {
	case "", "poisson":
		return Poisson, nil
	case "fixed":
		return FixedRate, nil
	default:
		return 0, fmt.Errorf("workload: unknown arrival process %q (want poisson or fixed)", s)
	}
}

// ParseCluster resolves a cluster name; the empty string selects Database.
func ParseCluster(s string) (Cluster, error) {
	switch s {
	case "", "database":
		return Database, nil
	case "webserver":
		return Webserver, nil
	case "hadoop":
		return Hadoop, nil
	default:
		return 0, fmt.Errorf("workload: unknown cluster %q (want database, webserver or hadoop)", s)
	}
}

// MeanSize returns the analytic expected packet size of the cluster's
// distribution in bytes. The load sweep uses it to convert an offered-load
// fraction into a mean inter-arrival gap without sampling.
func (c Cluster) MeanSize() float64 {
	mid := func(lo, hi int) float64 { return float64(lo+hi) / 2 }
	switch c {
	case Database:
		return mid(64, nic.MTU)
	case Webserver:
		return 0.90*mid(64, 299) + 0.10*mid(300, nic.MTU)
	case Hadoop:
		return 0.41*mid(64, 99) + 0.52*float64(nic.MTU) + 0.07*mid(100, nic.MTU-1)
	default:
		panic(fmt.Sprintf("workload: unknown cluster %d", int(c)))
	}
}

// MeanGapForLoad returns the per-source mean inter-arrival gap that makes
// `sources` identical open-loop generators of this cluster offer the given
// fraction of a line rate (in Gbps), counting the per-frame Ethernet
// overhead the wire pays. load is relative to one link: 1.0 saturates the
// receiver's link with the aggregate of all sources.
func (c Cluster) MeanGapForLoad(load float64, sources int, lineGbps float64) (sim.Time, error) {
	if load <= 0 || math.IsNaN(load) || math.IsInf(load, 0) {
		return 0, fmt.Errorf("workload: offered load must be positive and finite, got %g", load)
	}
	if sources < 1 {
		return 0, fmt.Errorf("workload: need at least one source, got %d", sources)
	}
	if lineGbps <= 0 {
		return 0, fmt.Errorf("workload: line rate must be positive, got %gGbps", lineGbps)
	}
	bits := (c.MeanSize() + nic.EthernetOverheadBytes) * 8
	aggGapSec := bits / (load * lineGbps * 1e9)
	return sim.Time(math.Round(aggGapSec * float64(sources) * float64(sim.Second))), nil
}

// OpenLoop is a seeded open-loop arrival generator for one traffic source:
// packet sizes and localities follow the cluster's published distribution,
// and arrival instants follow the configured process at MeanGap.
//
// Sizes and gaps come from two independent streams forked from one seed,
// so two generators with the same seed but different MeanGap emit the SAME
// packet sequence at different spacings. The load sweep leans on this:
// along one architecture's load axis only queueing changes, never the
// work, which keeps the latency curve monotone in offered load instead of
// noisy in the size draw.
type OpenLoop struct {
	Cluster Cluster
	Process ArrivalProcess
	// MeanGap is the mean inter-arrival time of this source.
	MeanGap sim.Time

	sizes *sim.Rand
	gaps  *sim.Rand
	now   sim.Time
}

// NewOpenLoop returns a seeded open-loop generator. meanGap must be
// positive.
func NewOpenLoop(c Cluster, proc ArrivalProcess, meanGap sim.Time, seed uint64) *OpenLoop {
	if meanGap <= 0 {
		panic(fmt.Sprintf("workload: open-loop mean gap %v", meanGap))
	}
	r := sim.NewRand(seed)
	return &OpenLoop{
		Cluster: c, Process: proc, MeanGap: meanGap,
		sizes: r.Fork(), gaps: r.Fork(),
	}
}

// Next returns the next arrival; times are strictly increasing.
func (g *OpenLoop) Next() Event {
	var gap sim.Time
	if g.Process == FixedRate {
		gap = g.MeanGap
	} else {
		gap = g.gaps.Exp(g.MeanGap)
	}
	if gap < 1 {
		gap = 1 // keep arrival instants strictly increasing
	}
	g.now += gap
	return Event{
		At:       g.now,
		Size:     g.Cluster.SampleSize(g.sizes),
		Locality: g.Cluster.SampleLocality(g.sizes),
	}
}

// LoadSpec is the load-generation block of a system specification: how the
// rack-scale load sweep shapes its traffic and its fabric buffers. The
// zero value is valid and means "use the sweep defaults" (8 hosts,
// database cluster, Poisson arrivals, 64-frame port buffers, knee factor
// 3). It is JSON-addressable from scenario files like the fault block.
type LoadSpec struct {
	// Hosts is the number of sender hosts fanning in to the one receiver
	// (the incast knob). 0 means the default of 8.
	Hosts int
	// Cluster names the traffic distribution: "database" (default),
	// "webserver" or "hadoop".
	Cluster string
	// Process names the arrival process: "poisson" (default) or "fixed".
	Process string
	// PortBuffer is the per-egress-port buffer in frames; arrivals beyond
	// it are tail-dropped. 0 means the default of 64.
	PortBuffer int
	// KneeFactor defines saturation: the knee is the highest offered load
	// whose p99 stays within KneeFactor x the lowest swept load's p99.
	// 0 means the default of 3.
	KneeFactor float64
	// Shards partitions each cell's event engine across this many
	// conservative shards (sender hosts spread over shards 1..N-1, the
	// switch egress and receiver on shard 0, synchronized on the switch
	// latency lookahead). 0 keeps the single-engine path; 1 runs the
	// sharded machinery on one shard (useful to isolate its overhead;
	// results are identical to any other shard count).
	Shards int
}

// Validate checks the block; the zero value always passes.
func (l LoadSpec) Validate() error {
	if l.Hosts < 0 {
		return fmt.Errorf("load: Hosts must not be negative, got %d", l.Hosts)
	}
	if l.PortBuffer < 0 {
		return fmt.Errorf("load: PortBuffer must not be negative, got %d", l.PortBuffer)
	}
	if l.Shards < 0 {
		return fmt.Errorf("load: Shards must not be negative, got %d", l.Shards)
	}
	if l.KneeFactor < 0 || math.IsNaN(l.KneeFactor) || math.IsInf(l.KneeFactor, 0) {
		return fmt.Errorf("load: KneeFactor must be finite and not negative, got %g", l.KneeFactor)
	}
	if l.KneeFactor > 0 && l.KneeFactor < 1 {
		return fmt.Errorf("load: KneeFactor below 1 would mark the baseline itself saturated, got %g", l.KneeFactor)
	}
	if _, err := ParseCluster(l.Cluster); err != nil {
		return fmt.Errorf("load: %w", err)
	}
	if _, err := ParseProcess(l.Process); err != nil {
		return fmt.Errorf("load: %w", err)
	}
	return nil
}
