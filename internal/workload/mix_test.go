package workload

import (
	"testing"

	"netdimm/internal/ethernet"
	"netdimm/internal/fabric"
	"netdimm/internal/sim"
)

func TestSampleDestRespectsLocality(t *testing.T) {
	r := sim.NewRand(1)
	const hosts, racks = 16, 4
	for src := 0; src < hosts; src++ {
		for i := 0; i < 200; i++ {
			in := SampleDest(r, ethernet.IntraRack, src, hosts, racks)
			if in == src {
				t.Fatalf("intra-rack dest == src %d", src)
			}
			if fabric.LeafOf(in, hosts, racks) != fabric.LeafOf(src, hosts, racks) {
				t.Fatalf("intra-rack dest %d left rack of %d", in, src)
			}
			out := SampleDest(r, ethernet.InterDatacenter, src, hosts, racks)
			if fabric.LeafOf(out, hosts, racks) == fabric.LeafOf(src, hosts, racks) {
				t.Fatalf("cross-rack dest %d stayed in rack of %d", out, src)
			}
		}
	}
}

func TestSampleDestCoversAllCandidates(t *testing.T) {
	r := sim.NewRand(2)
	const hosts, racks = 8, 2
	seen := make(map[int]bool)
	for i := 0; i < 2000; i++ {
		seen[SampleDest(r, ethernet.IntraCluster, 0, hosts, racks)] = true
		seen[SampleDest(r, ethernet.IntraDatacenter, 0, hosts, racks)] = true
	}
	// Host 0's rack is [0,4): intra reaches 1..3, cross reaches 4..7.
	for d := 1; d < hosts; d++ {
		if !seen[d] {
			t.Fatalf("destination %d never drawn", d)
		}
	}
	if seen[0] {
		t.Fatal("src drawn as its own destination")
	}
}

func TestSampleDestFallbacks(t *testing.T) {
	r := sim.NewRand(3)
	// Single rack: a cross-rack flow has nowhere to go — uniform other host.
	for i := 0; i < 50; i++ {
		d := SampleDest(r, ethernet.InterDatacenter, 1, 4, 1)
		if d == 1 || d < 0 || d >= 4 {
			t.Fatalf("single-rack fallback drew %d", d)
		}
	}
	// One-host racks: an intra-rack flow must leave anyway.
	for i := 0; i < 50; i++ {
		d := SampleDest(r, ethernet.IntraRack, 2, 4, 4)
		if d == 2 || d < 0 || d >= 4 {
			t.Fatalf("one-host-rack fallback drew %d", d)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("hosts=1 accepted")
		}
	}()
	SampleDest(r, ethernet.IntraRack, 0, 1, 1)
}

// The documented cross-rack shares: database ~90%, webserver ~85%,
// hadoop ~10% (loose bounds — these are distribution properties, not
// golden values).
func TestClusterCrossRackShares(t *testing.T) {
	shares := map[Cluster][2]float64{
		Database:  {0.80, 1.00},
		Webserver: {0.75, 0.95},
		Hadoop:    {0.02, 0.25},
	}
	for c, bounds := range shares {
		r := sim.NewRand(7)
		cross := 0
		const n = 5000
		for i := 0; i < n; i++ {
			if CrossRack(c.SampleLocality(r)) {
				cross++
			}
		}
		got := float64(cross) / n
		if got < bounds[0] || got > bounds[1] {
			t.Fatalf("%v cross-rack share %.3f outside [%.2f, %.2f]", c, got, bounds[0], bounds[1])
		}
	}
}
