package fabric

import (
	"fmt"

	"netdimm/internal/ethernet"
	"netdimm/internal/fault"
	"netdimm/internal/sim"
)

// Placement maps the topology's components onto event engines. The whole
// switching fabric (every leaf and spine port) lives on one engine; each
// host's NIC uplink port lives on that host's engine. Cross carries the
// single host→fabric crossing and Echo the fabric→host ECN echo; both
// must impose at least the fabric's switch latency, which in a sharded
// cell is exactly the conservative lookahead.
type Placement struct {
	// Fabric is the engine every switch port is built on.
	Fabric *sim.Engine
	// Host returns host h's engine (where its uplink port is built).
	Host func(h int) *sim.Engine
	// Cross schedules fn on the fabric engine, delay after host h's
	// current instant.
	Cross func(h int, delay sim.Time, fn func())
	// Echo schedules fn on host h's engine, delay after the fabric
	// engine's current instant. Only used when ECN is armed; may be nil
	// otherwise.
	Echo func(h int, delay sim.Time, fn func())
}

// SingleEngine places everything on one engine: crossings become plain
// schedules, which makes the degenerate one-leaf topology event-for-event
// identical to the pre-fabric single-switch incast.
func SingleEngine(eng *sim.Engine) Placement {
	sched := func(_ int, delay sim.Time, fn func()) { eng.Schedule(delay, fn) }
	return Placement{
		Fabric: eng,
		Host:   func(int) *sim.Engine { return eng },
		Cross:  sched,
		Echo:   sched,
	}
}

// Topology is a built fabric: hosts' uplink ports, the leaf switches (one
// block of hosts each) and the spine switches joining them. Frames enter
// through Inject and every hop — uplink, leaf egress, spine egress —
// is a finite output queue that serialises, tail-drops and (when armed)
// ECN-marks.
//
// Port layout: leaf l's ports [0, spines) face the spines (one uplink
// each) and ports [spines, spines+hostsOn(l)) face its hosts (one
// downlink each); spine s has one port per leaf. Routing is hop-by-hop:
// same-leaf traffic turns around at the leaf, cross-leaf traffic takes
// leaf → ECMP-chosen spine → destination leaf.
type Topology struct {
	spec    Spec // resolved
	link    ethernet.Link
	latency sim.Time
	hosts   int
	place   Placement

	uplinks []*ethernet.Port
	leaves  []*ethernet.SwitchNode
	spines  []*ethernet.SwitchNode

	// Failure plane, armed by ArmFailures; all nil/empty when no schedule
	// is armed so the default path is untouched. health and burst live on
	// the fabric engine; the link-outage state is per host and only ever
	// touched from that host's engine (linkOut flips by scheduled events
	// there, linkDrops/linkFlips increments in Inject), so a sharded cell
	// never crosses shards through it.
	health    *Health
	burst     *fault.GilbertElliott
	linkOut   []bool
	linkDrops []uint64
	linkFlips []uint64

	// OnUplinkDeliver, when set, runs on host src's engine the moment its
	// uplink delivers a frame toward the fabric (before the switch-latency
	// crossing). OnFabricIngress runs on the fabric engine just after the
	// crossing, before the frame enqueues at its first switch port. The
	// load sweep uses one or the other to sample queue depths on the side
	// of the crossing its engine layout can reach race-free.
	OnUplinkDeliver func(src, dst int)
	OnFabricIngress func(src, dst int)
}

// New builds the topology described by s (resolved with its defaults)
// over the given link and per-hop switch latency, for `hosts` hosts with
// `portBuffer` frames of buffering at every port. ECN marking, when
// armed, applies to the switch ports only — the host uplink NIC queue
// does not mark, mirroring switch-based ECN deployments.
func New(p Placement, link ethernet.Link, latency sim.Time, s Spec, hosts, portBuffer int) *Topology {
	if hosts < 1 {
		panic(fmt.Sprintf("fabric: topology needs hosts, got %d", hosts))
	}
	if p.Fabric == nil || p.Host == nil || p.Cross == nil {
		panic("fabric: placement needs Fabric, Host and Cross")
	}
	s = s.Resolved()
	t := &Topology{spec: s, link: link, latency: latency, hosts: hosts, place: p}

	t.uplinks = make([]*ethernet.Port, hosts)
	for h := 0; h < hosts; h++ {
		t.uplinks[h] = ethernet.NewPort(p.Host(h), link, portBuffer)
	}
	t.leaves = make([]*ethernet.SwitchNode, s.Leaves)
	for l := range t.leaves {
		lo, hi := t.leafHostBounds(l)
		t.leaves[l] = ethernet.NewSwitchNode(p.Fabric, link, latency, s.Spines+(hi-lo), portBuffer)
		if s.ECNThreshold > 0 {
			t.leaves[l].SetECNThreshold(s.ECNThreshold)
		}
	}
	if s.Spines > 0 {
		t.spines = make([]*ethernet.SwitchNode, s.Spines)
		for sp := range t.spines {
			t.spines[sp] = ethernet.NewSwitchNode(p.Fabric, link, latency, s.Leaves, portBuffer)
			if s.ECNThreshold > 0 {
				t.spines[sp].SetECNThreshold(s.ECNThreshold)
			}
		}
	}
	return t
}

// Spec returns the resolved fabric block the topology was built from.
func (t *Topology) Spec() Spec { return t.spec }

// Hosts returns the host count.
func (t *Topology) Hosts() int { return t.hosts }

// Leaves returns the leaf count.
func (t *Topology) Leaves() int { return len(t.leaves) }

// Spines returns the spine count.
func (t *Topology) Spines() int { return len(t.spines) }

// LeafOf returns host h's leaf.
func (t *Topology) LeafOf(h int) int { return LeafOf(h, t.hosts, len(t.leaves)) }

// leafHostBounds returns the half-open host range [lo, hi) attached to
// leaf l.
func (t *Topology) leafHostBounds(l int) (lo, hi int) {
	per := (t.hosts + len(t.leaves) - 1) / len(t.leaves)
	lo = l * per
	hi = lo + per
	if hi > t.hosts {
		hi = t.hosts
	}
	if lo > hi {
		lo = hi // trailing leaves of an uneven split carry no hosts
	}
	return lo, hi
}

// downIdx returns the leaf-l port index of the downlink toward host h.
func (t *Topology) downIdx(l, h int) int {
	lo, _ := t.leafHostBounds(l)
	return t.spec.Spines + (h - lo)
}

// Uplink returns host h's NIC uplink port.
func (t *Topology) Uplink(h int) *ethernet.Port { return t.uplinks[h] }

// Downlink returns the leaf egress port facing host h — the last queue a
// frame crosses before delivery (the incast hot spot).
func (t *Topology) Downlink(h int) *ethernet.Port {
	l := t.LeafOf(h)
	return t.leaves[l].Port(t.downIdx(l, h))
}

// SpineFor returns the spine the (src, dst) flow currently routes over:
// the ECMP hash's pick, unless a failure schedule is armed and that
// spine's path is down — then the hash re-rolls over the surviving
// uplinks (failover), or the degraded single path when none survive. It
// panics on a spineless fabric (no cross-leaf path exists to choose).
func (t *Topology) SpineFor(src, dst int) int {
	if len(t.spines) == 0 {
		panic("fabric: no spines to hash over")
	}
	h := FlowHash(uint64(src), uint64(dst), t.spec.Seed)
	primary := int(h % uint64(len(t.spines)))
	if t.health == nil {
		return primary
	}
	s, _, _ := t.health.spineFor(t.LeafOf(src), primary, h)
	return s
}

// routeSpine is SpineFor with failover accounting — the per-frame routing
// decision, called on the fabric engine only.
func (t *Topology) routeSpine(sl, src, dst int) int {
	h := FlowHash(uint64(src), uint64(dst), t.spec.Seed)
	primary := int(h % uint64(len(t.spines)))
	if t.health == nil {
		return primary
	}
	return t.health.route(sl, primary, h, t.place.Fabric.Now())
}

// CrossesSpine reports whether src→dst traffic leaves its leaf.
func (t *Topology) CrossesSpine(src, dst int) bool {
	return t.LeafOf(src) != t.LeafOf(dst)
}

// Inject sends a frame from host src's uplink toward host dst; delivered
// fires on the fabric engine when the frame leaves dst's downlink port
// (its ECN bit reflecting any congested queue along the way). Inject
// returns false if src's own uplink buffer tail-dropped the frame; drops
// deeper in the fabric are counted in the per-port stats and simply never
// deliver.
func (t *Topology) Inject(src, dst int, f ethernet.Frame, delivered func(ethernet.Frame)) bool {
	if dst < 0 || dst >= t.hosts {
		panic(fmt.Sprintf("fabric: no host %d", dst))
	}
	if t.linkOut != nil && t.linkOut[src] {
		// The sender's uplink cable is down: the frame is lost at the NIC,
		// reported like a tail drop (the sender's ARQ timer is what
		// discovers it either way).
		t.linkDrops[src]++
		return false
	}
	return t.uplinks[src].Send(f, func(fr ethernet.Frame) {
		if t.OnUplinkDeliver != nil {
			t.OnUplinkDeliver(src, dst)
		}
		// The uplink's far end is the source leaf's ingress: one switch
		// latency away, and on the fabric engine (the cross-shard crossing
		// in a sharded cell).
		t.place.Cross(src, t.latency, func() {
			if t.OnFabricIngress != nil {
				t.OnFabricIngress(src, dst)
			}
			t.fromLeaf(src, dst, fr, delivered)
		})
	})
}

// fromLeaf routes a frame that has just arrived (switch latency already
// paid) at src's leaf. Same-leaf traffic enqueues straight at the
// destination downlink; cross-leaf traffic queues at the leaf's spine
// uplink, pays the spine's latency into its leaf-facing port, then the
// destination leaf's latency into the final downlink.
func (t *Topology) fromLeaf(src, dst int, f ethernet.Frame, delivered func(ethernet.Frame)) {
	sl, dl := t.LeafOf(src), t.LeafOf(dst)
	if t.burst != nil && t.burst.Lose() {
		return // Gilbert–Elliott ingress loss; the process keeps the tally
	}
	if t.health != nil && !t.health.LeafUp(sl) {
		t.health.stats.OutageDrops++
		return
	}
	if sl == dl {
		t.leaves[sl].Port(t.downIdx(sl, dst)).Send(f, delivered)
		return
	}
	sp := t.routeSpine(sl, src, dst)
	if t.health != nil && !t.health.TrunkUp(sl, sp) {
		// Dead cable out of the leaf: only degraded-mode frames land here
		// (failover never picks a dead trunk), and they drop at once.
		t.health.stats.OutageDrops++
		return
	}
	t.leaves[sl].Port(sp).Send(f, func(fr ethernet.Frame) {
		// The frame has crossed the leaf→spine wire; a spine that is — or
		// went, mid-flight — down eats it here. Recovering those frames is
		// exactly what the sender's retransmit timer exists for.
		if t.health != nil && !t.health.SpineUp(sp) {
			t.health.stats.OutageDrops++
			return
		}
		t.spines[sp].Forward(dl, fr, func(fr2 ethernet.Frame) {
			if t.health != nil && (!t.health.LeafUp(dl) || !t.health.TrunkUp(dl, sp)) {
				t.health.stats.OutageDrops++
				return
			}
			t.leaves[dl].Forward(t.downIdx(dl, dst), fr2, delivered)
		})
	})
}

// EchoMark schedules fn on host src's engine one switch latency after the
// fabric engine's current instant — the simplified return path of an ECN
// echo (a lossless control message, not subject to the data-path queues).
func (t *Topology) EchoMark(src int, fn func()) {
	if t.place.Echo == nil {
		panic("fabric: placement has no Echo path")
	}
	t.place.Echo(src, t.latency, fn)
}

// InjectFaults attaches the injector to every switch port — drops now
// apply at every hop, not only the final egress. The host uplinks are
// left clean: the injector draws from one rng stream and must only be
// consumed from the fabric engine to stay deterministic under sharding.
func (t *Topology) InjectFaults(inj *fault.Injector) {
	for _, l := range t.leaves {
		l.InjectFaults(inj)
	}
	for _, s := range t.spines {
		s.InjectFaults(inj)
	}
}

// ArmFailures arms a failure schedule on the topology: every outage
// window becomes a pair of scheduled events flipping the element's down
// depth at the window bounds (spine/leaf/trunk flips on the fabric
// engine, link flips on the owning host's engine), and an enabled Burst
// becomes a Gilbert–Elliott process consulted once per fabric-ingress
// frame. The returned Health view is what ECMP consults from then on; it
// is nil for a schedule with no spine/leaf/trunk outages (link outages
// are sender-local state and arm no fabric view), and the topology is
// entirely untouched by a zero schedule. An outage naming an element
// outside this topology is an error.
//
// seed is the cell seed; the burst stream is derived from it and the
// schedule's own Seed the way injector streams are.
func (t *Topology) ArmFailures(sched fault.Schedule, seed uint64) (*Health, error) {
	if err := sched.Validate(); err != nil {
		return nil, err
	}
	for i, o := range sched.Outages {
		var ok bool
		switch o.Kind {
		case fault.OutageLink:
			ok = o.Index < t.hosts
		case fault.OutageSpine:
			ok = o.Index < len(t.spines)
		case fault.OutageLeaf:
			ok = o.Index < len(t.leaves)
		case fault.OutageTrunk:
			ok = o.Leaf < len(t.leaves) && o.Index < len(t.spines)
		}
		if !ok {
			return nil, fmt.Errorf("fabric: Outages[%d] (%v) names no element of this %d-leaf/%d-spine/%d-host topology",
				i, o, len(t.leaves), len(t.spines), t.hosts)
		}
	}
	for _, o := range sched.Outages {
		// Link outages are sender-local state; only fabric-element outages
		// need the health view ECMP consults.
		if o.Kind != fault.OutageLink && t.health == nil {
			t.health = newHealth(len(t.leaves), len(t.spines))
		}
	}
	for _, o := range sched.Outages {
		o := o
		start, end := o.Window()
		switch o.Kind {
		case fault.OutageLink:
			if t.linkOut == nil {
				t.linkOut = make([]bool, t.hosts)
				t.linkDrops = make([]uint64, t.hosts)
				t.linkFlips = make([]uint64, t.hosts)
			}
			eng := t.place.Host(o.Index)
			eng.At(start, func() { t.linkOut[o.Index] = true; t.linkFlips[o.Index]++ })
			eng.At(end, func() { t.linkOut[o.Index] = false; t.linkFlips[o.Index]++ })
		case fault.OutageSpine:
			t.place.Fabric.At(start, func() { t.health.shiftSpine(o.Index, 1) })
			t.place.Fabric.At(end, func() { t.health.shiftSpine(o.Index, -1) })
		case fault.OutageLeaf:
			t.place.Fabric.At(start, func() { t.health.shiftLeaf(o.Index, 1) })
			t.place.Fabric.At(end, func() { t.health.shiftLeaf(o.Index, -1) })
		case fault.OutageTrunk:
			t.place.Fabric.At(start, func() { t.health.shiftTrunk(o.Leaf, o.Index, 1) })
			t.place.Fabric.At(end, func() { t.health.shiftTrunk(o.Leaf, o.Index, -1) })
		}
	}
	if sched.Burst.Enabled() {
		t.burst = fault.NewGilbertElliott(sched.Burst, seed^(sched.Seed*0x9e3779b97f4a7c15))
	}
	return t.health, nil
}

// Health returns the armed failure-state view, or nil when ArmFailures
// scheduled no outages.
func (t *Topology) Health() *Health { return t.health }

// PerSpineForwarded returns each spine's total forwarded-frame count in
// spine order — the per-spine view of an ECMP failover: an outage shifts
// counts off the down spine onto the survivors.
func (t *Topology) PerSpineForwarded() []uint64 {
	out := make([]uint64, len(t.spines))
	for i, sp := range t.spines {
		for p := 0; p < sp.Ports(); p++ {
			out[i] += sp.Port(p).Stats().Forwarded
		}
	}
	return out
}

// Stats aggregates the per-port counters of every switch hop.
type Stats struct {
	// Forwarded, Dropped and Marked sum over every leaf and spine port.
	Forwarded uint64
	Dropped   uint64
	Marked    uint64
	// LeafMaxDepth and SpineMaxDepth are the high-water marks across the
	// respective layer's ports.
	LeafMaxDepth  int
	SpineMaxDepth int
	// Failure-plane tallies, all zero unless ArmFailures armed a
	// schedule. OutageDrops counts frames eaten by a down spine, leaf or
	// trunk; BurstDrops frames lost to the Gilbert–Elliott ingress
	// process; LinkDrops frames refused by a downed host uplink;
	// Rerouted frames steered off their ECMP-primary spine; Degraded
	// frames forced onto the single-path fallback; Transitions the outage
	// state flips applied across every layer.
	OutageDrops uint64
	BurstDrops  uint64
	LinkDrops   uint64
	Rerouted    uint64
	Degraded    uint64
	Transitions uint64
}

// Stats sums the switch-port statistics across the fabric. Host uplink
// ports are excluded (they belong to the sender model, not the fabric);
// read them per host via Uplink.
func (t *Topology) Stats() Stats {
	var out Stats
	for _, l := range t.leaves {
		for i := 0; i < l.Ports(); i++ {
			s := l.Port(i).Stats()
			out.Forwarded += s.Forwarded
			out.Dropped += s.Dropped
			out.Marked += s.Marked
			if s.MaxDepth > out.LeafMaxDepth {
				out.LeafMaxDepth = s.MaxDepth
			}
		}
	}
	for _, sp := range t.spines {
		for i := 0; i < sp.Ports(); i++ {
			s := sp.Port(i).Stats()
			out.Forwarded += s.Forwarded
			out.Dropped += s.Dropped
			out.Marked += s.Marked
			if s.MaxDepth > out.SpineMaxDepth {
				out.SpineMaxDepth = s.MaxDepth
			}
		}
	}
	if t.health != nil {
		hs := t.health.Stats()
		out.OutageDrops = hs.OutageDrops
		out.Rerouted = hs.Rerouted
		out.Degraded = hs.Degraded
		out.Transitions = hs.Transitions
	}
	if t.burst != nil {
		out.BurstDrops = t.burst.Losses
	}
	for h, n := range t.linkDrops {
		out.LinkDrops += n
		out.Transitions += t.linkFlips[h]
	}
	return out
}
