package fabric

import (
	"strings"
	"testing"

	"netdimm/internal/ethernet"
	"netdimm/internal/fault"
	"netdimm/internal/sim"
)

// failRig builds a 2-leaf/2-spine clos with 8 hosts on one engine.
func failRig(t *testing.T) (*sim.Engine, *Topology) {
	t.Helper()
	eng := sim.NewEngine()
	topo := New(SingleEngine(eng), ethernet.Link40G(), 100*sim.Nanosecond,
		Spec{Leaves: 2, Spines: 2}, 8, 32)
	return eng, topo
}

func spineWindow(spine, startNs, endNs int) fault.Schedule {
	return fault.Schedule{Outages: []fault.Outage{
		{Kind: fault.OutageSpine, Index: spine, StartNs: startNs, EndNs: endNs},
	}}
}

// A spine outage covering the whole run: every cross-leaf flow whose ECMP
// primary is the down spine re-hashes onto the survivor and still
// delivers; the dead spine forwards nothing.
func TestSpineOutageFailsOver(t *testing.T) {
	// Baseline first: which spines does the un-failed fabric use?
	eng0, topo0 := failRig(t)
	for src := 0; src < 4; src++ {
		for dst := 4; dst < 8; dst++ {
			topo0.Inject(src, dst, ethernet.Frame{ID: uint64(src*8 + dst), Bytes: 256}, func(ethernet.Frame) {})
		}
	}
	eng0.Run()
	base := topo0.PerSpineForwarded()
	if base[0] == 0 || base[1] == 0 {
		t.Fatalf("baseline ECMP uses only one spine (%v); the failover test needs both", base)
	}

	eng, topo := failRig(t)
	if _, err := topo.ArmFailures(spineWindow(0, 0, 1_000_000), 1); err != nil {
		t.Fatal(err)
	}
	delivered := 0
	for src := 0; src < 4; src++ {
		for dst := 4; dst < 8; dst++ {
			topo.Inject(src, dst, ethernet.Frame{ID: uint64(src*8 + dst), Bytes: 256}, func(ethernet.Frame) { delivered++ })
		}
	}
	eng.Run()
	if delivered != 16 {
		t.Fatalf("delivered %d of 16 cross-leaf frames during failover", delivered)
	}
	per := topo.PerSpineForwarded()
	if per[0] != 0 {
		t.Errorf("down spine forwarded %d frames", per[0])
	}
	if per[1] != base[0]+base[1] {
		t.Errorf("survivor forwarded %d, want all %d", per[1], base[0]+base[1])
	}
	s := topo.Stats()
	if s.Rerouted != base[0] {
		t.Errorf("Rerouted = %d, want the %d baseline spine-0 frames", s.Rerouted, base[0])
	}
	if s.OutageDrops != 0 {
		t.Errorf("OutageDrops = %d during pure failover, want 0", s.OutageDrops)
	}
	if s.Transitions != 2 {
		t.Errorf("Transitions = %d, want 2 (the window's down and up flips both ran)", s.Transitions)
	}
	hv := topo.Health()
	if hv == nil {
		t.Fatal("armed topology has no health view")
	}
	if hs := hv.Stats(); hs.FirstReroute < 0 {
		t.Error("FirstReroute unset after rerouting")
	}
}

// A frame already past its routing decision when the spine goes down is
// eaten at the spine, not rerouted — the in-flight loss the ARQ recovers.
func TestSpineOutageEatsInFlightFrame(t *testing.T) {
	link := ethernet.Link40G()
	hop := link.SerializeTime(256) + link.PHYLatency
	lat := 100 * sim.Nanosecond
	eng := sim.NewEngine()
	topo := New(SingleEngine(eng), link, lat, Spec{Leaves: 2, Spines: 2}, 8, 32)

	// Find a (src, dst) pair routed via spine 0.
	src, dst := -1, -1
	for s := 0; s < 4 && src < 0; s++ {
		for d := 4; d < 8; d++ {
			if topo.SpineFor(s, d) == 0 {
				src, dst = s, d
				break
			}
		}
	}
	if src < 0 {
		t.Fatal("no flow hashes onto spine 0")
	}

	// The frame reaches its leaf (and is routed) at hop+lat; it reaches the
	// spine one more lat+hop later. Open the window in between.
	routed := hop + lat
	startNs := int((routed + lat/2) / sim.Nanosecond)
	if _, err := topo.ArmFailures(spineWindow(0, startNs, startNs+1_000_000), 1); err != nil {
		t.Fatal(err)
	}
	delivered := false
	topo.Inject(src, dst, ethernet.Frame{ID: 1, Bytes: 256}, func(ethernet.Frame) { delivered = true })
	eng.Run()
	if delivered {
		t.Fatal("in-flight frame survived the spine going down under it")
	}
	s := topo.Stats()
	if s.OutageDrops != 1 {
		t.Errorf("OutageDrops = %d, want 1", s.OutageDrops)
	}
	if s.Rerouted != 0 {
		t.Errorf("Rerouted = %d, want 0 — the frame was routed before the window opened", s.Rerouted)
	}
}

// Both trunks out of leaf 0 down: the leaf has no healthy uplink, routing
// enters degraded mode, and cross-leaf frames drop (to be retried by the
// ARQ above) while same-leaf traffic is untouched.
func TestAllTrunksDownDegrades(t *testing.T) {
	eng, topo := failRig(t)
	sched := fault.Schedule{Outages: []fault.Outage{
		{Kind: fault.OutageTrunk, Leaf: 0, Index: 0, StartNs: 0, EndNs: 1_000_000},
		{Kind: fault.OutageTrunk, Leaf: 0, Index: 1, StartNs: 0, EndNs: 1_000_000},
	}}
	if _, err := topo.ArmFailures(sched, 1); err != nil {
		t.Fatal(err)
	}
	cross, local := 0, 0
	topo.Inject(0, 7, ethernet.Frame{ID: 1, Bytes: 256}, func(ethernet.Frame) { cross++ })
	topo.Inject(0, 1, ethernet.Frame{ID: 2, Bytes: 256}, func(ethernet.Frame) { local++ })
	eng.Run()
	if cross != 0 {
		t.Error("cross-leaf frame delivered through a leaf with no uplinks")
	}
	if local != 1 {
		t.Error("same-leaf frame must not be affected by trunk outages")
	}
	s := topo.Stats()
	if s.Degraded != 1 {
		t.Errorf("Degraded = %d, want 1", s.Degraded)
	}
	if s.OutageDrops != 1 {
		t.Errorf("OutageDrops = %d, want 1 (the degraded frame died at the dead trunk)", s.OutageDrops)
	}
}

// Overlapping windows compose by depth: a spine covered by two down
// windows is up again only after both have ended.
func TestOverlappingOutageWindows(t *testing.T) {
	eng, topo := failRig(t)
	sched := fault.Schedule{Outages: []fault.Outage{
		{Kind: fault.OutageSpine, Index: 0, StartNs: 100, EndNs: 300},
		{Kind: fault.OutageSpine, Index: 0, StartNs: 200, EndNs: 500},
	}}
	hv, err := topo.ArmFailures(sched, 1)
	if err != nil {
		t.Fatal(err)
	}
	type sample struct {
		atNs int
		up   bool
	}
	var got []sample
	for _, atNs := range []int{50, 150, 250, 350, 450, 550} {
		atNs := atNs
		eng.At(sim.Time(atNs)*sim.Nanosecond, func() {
			got = append(got, sample{atNs, hv.SpineUp(0)})
		})
	}
	eng.Run()
	want := map[int]bool{50: true, 150: false, 250: false, 350: false, 450: false, 550: true}
	for _, s := range got {
		if s.up != want[s.atNs] {
			t.Errorf("SpineUp(0) at %dns = %v, want %v", s.atNs, s.up, want[s.atNs])
		}
	}
	if tr := topo.Stats().Transitions; tr != 4 {
		t.Errorf("Transitions = %d, want 4 (two windows, two flips each)", tr)
	}
}

// A link outage is sender-local: Inject refuses the frame while the
// window is open and works again after it closes.
func TestLinkOutageRefusesInject(t *testing.T) {
	eng, topo := failRig(t)
	sched := fault.Schedule{Outages: []fault.Outage{
		{Kind: fault.OutageLink, Index: 0, StartNs: 100, EndNs: 200},
	}}
	if _, err := topo.ArmFailures(sched, 1); err != nil {
		t.Fatal(err)
	}
	results := map[string]bool{}
	delivered := 0
	try := func(label string, atNs int) {
		eng.At(sim.Time(atNs)*sim.Nanosecond, func() {
			results[label] = topo.Inject(0, 1, ethernet.Frame{ID: uint64(atNs), Bytes: 64},
				func(ethernet.Frame) { delivered++ })
		})
	}
	try("before", 50)
	try("during", 150)
	try("after", 250)
	eng.Run()
	if !results["before"] || !results["after"] || results["during"] {
		t.Errorf("Inject accepted = %v, want refusal only during the window", results)
	}
	if delivered != 2 {
		t.Errorf("delivered %d frames, want 2", delivered)
	}
	s := topo.Stats()
	if s.LinkDrops != 1 {
		t.Errorf("LinkDrops = %d, want 1", s.LinkDrops)
	}
	if s.Transitions != 2 {
		t.Errorf("Transitions = %d, want 2 (link down + up)", s.Transitions)
	}
	// Other hosts' uplinks are untouched; a link-only schedule arms no
	// health view.
	if topo.Health() != nil {
		t.Error("link-only schedule must not create a fabric health view")
	}
}

// Stats aggregation under an outage: queue high-water marks keep being
// tracked on the surviving path while the failure tallies accumulate.
func TestStatsAggregationUnderOutage(t *testing.T) {
	eng, topo := failRig(t)
	if _, err := topo.ArmFailures(spineWindow(0, 0, 10_000_000), 1); err != nil {
		t.Fatal(err)
	}
	// An incast burst, all cross-leaf: every frame funnels over spine 1.
	delivered := 0
	for i := 0; i < 12; i++ {
		src := i % 4
		topo.Inject(src, 7, ethernet.Frame{ID: uint64(i), Bytes: 1514}, func(ethernet.Frame) { delivered++ })
	}
	eng.Run()
	s := topo.Stats()
	if delivered == 0 {
		t.Fatal("nothing delivered over the surviving spine")
	}
	if s.SpineMaxDepth == 0 {
		t.Error("surviving spine's high-water mark not tracked under failover")
	}
	if s.LeafMaxDepth == 0 {
		t.Error("leaf high-water mark not tracked under failover")
	}
	if s.Rerouted == 0 {
		t.Error("no reroutes recorded for a half-capacity fabric")
	}
	if s.Forwarded == 0 {
		t.Error("Forwarded not aggregated")
	}
}

func TestArmFailuresValidates(t *testing.T) {
	_, topo := failRig(t)
	cases := []fault.Outage{
		{Kind: fault.OutageSpine, Index: 2, StartNs: 0, EndNs: 10},          // 2 spines: 0,1
		{Kind: fault.OutageLeaf, Index: 5, StartNs: 0, EndNs: 10},           // 2 leaves
		{Kind: fault.OutageLink, Index: 8, StartNs: 0, EndNs: 10},           // 8 hosts: 0..7
		{Kind: fault.OutageTrunk, Leaf: 2, Index: 0, StartNs: 0, EndNs: 10}, // no leaf 2
		{Kind: fault.OutageTrunk, Leaf: 0, Index: 2, StartNs: 0, EndNs: 10}, // no spine 2
	}
	for _, o := range cases {
		_, err := topo.ArmFailures(fault.Schedule{Outages: []fault.Outage{o}}, 1)
		if err == nil || !strings.Contains(err.Error(), "names no element") {
			t.Errorf("ArmFailures(%+v) = %v, want element-range error", o, err)
		}
	}
	// Invalid schedules are rejected before any shape check.
	if _, err := topo.ArmFailures(fault.Schedule{Outages: []fault.Outage{{Kind: "bogus", EndNs: 1}}}, 1); err == nil {
		t.Error("invalid schedule accepted")
	}
	// The zero schedule is a no-op.
	hv, err := topo.ArmFailures(fault.Schedule{}, 1)
	if err != nil || hv != nil {
		t.Errorf("zero schedule: (%v, %v), want (nil, nil)", hv, err)
	}
	if topo.Health() != nil {
		t.Error("zero schedule must leave the topology unarmed")
	}
}

// The burst process drops fabric-ingress frames and keeps its tally in
// Stats; a disabled Burst block arms nothing.
func TestBurstLossAtIngress(t *testing.T) {
	eng, topo := failRig(t)
	sched := fault.Schedule{Burst: fault.Burst{GoodLossProb: 1}} // lose everything
	if _, err := topo.ArmFailures(sched, 1); err != nil {
		t.Fatal(err)
	}
	delivered := 0
	for i := 0; i < 5; i++ {
		topo.Inject(0, 7, ethernet.Frame{ID: uint64(i), Bytes: 64}, func(ethernet.Frame) { delivered++ })
	}
	eng.Run()
	if delivered != 0 {
		t.Fatalf("%d frames survived a certain-loss burst process", delivered)
	}
	if s := topo.Stats(); s.BurstDrops != 5 {
		t.Errorf("BurstDrops = %d, want 5", s.BurstDrops)
	}
}
