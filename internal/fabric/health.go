package fabric

import (
	"netdimm/internal/sim"
)

// Health is the fabric's failure-state view: which spines, leaves and
// leaf↔spine trunks are currently up. The topology's ECMP consults it at
// every routing decision, so a flow hashed onto a down spine re-hashes
// over the surviving ones (failover) and a leaf that has lost every
// uplink falls back to a single fixed path whose frames drop until
// recovery (degraded mode — the ARQ above keeps retrying through it).
//
// All state lives on the fabric engine: outage windows flip the down
// counters as ordinary scheduled events there, and every read happens
// while routing, also there — no cross-shard access exists, which is what
// keeps failovers byte-identical at any shard count. Elements track a
// down *depth*, not a flag, so overlapping outage windows compose: an
// element is up again only when every covering window has ended.
type Health struct {
	spineDown []int   // down-window depth per spine
	leafDown  []int   // down-window depth per leaf
	trunkDown [][]int // [leaf][spine] down-window depth
	up        [][]int // per-leaf list of spines with a healthy path, rebuilt on flips

	stats HealthStats
}

// HealthStats are the failure plane's fabric-side tallies.
type HealthStats struct {
	// Transitions counts spine/leaf/trunk state flips applied (down and
	// up both count; link flips are tallied by the topology per host).
	Transitions uint64
	// OutageDrops counts frames eaten by a down element: dropped at a
	// down source/destination leaf, a dead trunk, or a spine that was (or
	// went) down when the frame reached it — in-flight frames included.
	OutageDrops uint64
	// Rerouted counts frames steered off their ECMP-primary spine by
	// failover.
	Rerouted uint64
	// Degraded counts frames forced onto the single-path fallback because
	// their leaf had no healthy uplink at all.
	Degraded uint64
	// FirstReroute is the instant of the first failover routing decision,
	// or -1 if none happened — the fabric half of time-to-reroute.
	FirstReroute sim.Time
}

func newHealth(leaves, spines int) *Health {
	h := &Health{
		spineDown: make([]int, spines),
		leafDown:  make([]int, leaves),
		trunkDown: make([][]int, leaves),
		up:        make([][]int, leaves),
	}
	for l := range h.trunkDown {
		h.trunkDown[l] = make([]int, spines)
	}
	h.stats.FirstReroute = -1
	h.rebuild()
	return h
}

// Stats returns the current tallies.
func (h *Health) Stats() HealthStats { return h.stats }

// SpineUp reports whether spine s is up.
func (h *Health) SpineUp(s int) bool { return h.spineDown[s] == 0 }

// LeafUp reports whether leaf l is up.
func (h *Health) LeafUp(l int) bool { return h.leafDown[l] == 0 }

// TrunkUp reports whether the leaf-l ↔ spine-s cable is up.
func (h *Health) TrunkUp(l, s int) bool { return h.trunkDown[l][s] == 0 }

// pathUp reports whether leaf l can currently reach spine s.
func (h *Health) pathUp(l, s int) bool { return h.SpineUp(s) && h.TrunkUp(l, s) }

// shiftSpine, shiftLeaf and shiftTrunk move an element's down depth by
// ±1; the per-leaf healthy-spine lists are rebuilt on every flip (the
// fabric is small — leaves×spines entries — and flips are rare).
func (h *Health) shiftSpine(s, by int) { h.spineDown[s] += by; h.flipped() }
func (h *Health) shiftLeaf(l, by int)  { h.leafDown[l] += by; h.flipped() }
func (h *Health) shiftTrunk(l, s, by int) {
	h.trunkDown[l][s] += by
	h.flipped()
}

func (h *Health) flipped() {
	h.stats.Transitions++
	h.rebuild()
}

func (h *Health) rebuild() {
	for l := range h.up {
		ups := h.up[l][:0]
		for s := range h.spineDown {
			if h.pathUp(l, s) {
				ups = append(ups, s)
			}
		}
		h.up[l] = ups
	}
}

// spineFor picks the spine for a flow out of leaf l whose ECMP hash named
// `primary`: the primary when its path is healthy, a deterministic
// re-hash over leaf l's surviving uplinks otherwise, and the fixed
// degraded path (spine 0) when no uplink survives. The flow returns to
// its primary the moment that path recovers, since the selection is a
// pure function of (hash, health state).
func (h *Health) spineFor(l, primary int, hash uint64) (s int, failover, degraded bool) {
	if h.pathUp(l, primary) {
		return primary, false, false
	}
	ups := h.up[l]
	if len(ups) == 0 {
		return 0, false, true
	}
	return ups[hash%uint64(len(ups))], true, false
}

// route is spineFor plus accounting, called once per routed frame on the
// fabric engine.
func (h *Health) route(l, primary int, hash uint64, now sim.Time) int {
	s, failover, degraded := h.spineFor(l, primary, hash)
	if failover {
		h.stats.Rerouted++
		if h.stats.FirstReroute < 0 {
			h.stats.FirstReroute = now
		}
	}
	if degraded {
		h.stats.Degraded++
	}
	return s
}
