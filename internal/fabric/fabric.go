// Package fabric is the topology plane: it lifts the network out of the
// experiment layer into one reusable structure — hosts attached through
// NIC uplink ports to a leaf/spine clos of event-driven SwitchNodes, with
// an output queue at every hop, deterministic seeded ECMP flow hashing
// over the spine layer, and an ECN congestion signal (threshold marking at
// every switch queue plus a per-sender backoff pacer).
//
// The single-switch incast the load sweep started from is the degenerate
// configuration: one leaf, no spines. Everything larger — cross-rack
// mixes, collectives, new architectures — builds the same Topology with a
// bigger Spec instead of re-hardcoding switches per experiment.
//
// Determinism: the only randomness is the ECMP flow hash, a pure function
// of (src, dst, seed) — no rng stream is consumed per packet — so results
// are byte-identical at any parallelism or shard count. For sharded cells
// the Placement indirection keeps every switch on one "fabric" engine and
// routes the single host→fabric crossing (and the fabric→host ECN echo)
// through conservative channels.
package fabric

import (
	"fmt"

	"netdimm/internal/sim"
)

// DefaultECNThreshold is the marking threshold (in frames) the racksweep
// experiment arms when a specification enables ECN without choosing one.
// It is a small fraction of the default 64-frame port buffer, in the
// DCTCP spirit of marking well before tail drop.
const DefaultECNThreshold = 8

// DefaultECNBackoff is the sender stall applied per echoed mark when the
// specification leaves ECNBackoffNs zero: roughly one MTU serialisation at
// 10G — long enough to drain a marked queue, short enough not to idle the
// sender.
const DefaultECNBackoff = 1200 * sim.Nanosecond

// Spec is the fabric block of a system specification: the clos shape and
// the ECN congestion-signal knobs. The zero value is valid and selects the
// degenerate single-switch fabric (one leaf, no spines, ECN off) — the
// exact network the load sweep always built, so a zero block changes no
// pinned output. It is JSON-addressable from scenario files like the
// fault and load blocks.
type Spec struct {
	// Leaves is the number of leaf (rack) switches; hosts are assigned to
	// leaves in contiguous blocks. 0 means 1.
	Leaves int
	// Spines is the number of spine switches interconnecting the leaves.
	// 0 picks the default: no spines for a single leaf, 2 (the minimum
	// that gives ECMP a choice) for a multi-leaf fabric.
	Spines int
	// ECNThreshold arms ECN marking on every switch port: a frame enqueued
	// at depth >= ECNThreshold leaves with its ECN bit set. 0 disables
	// marking.
	ECNThreshold int
	// ECNBackoffNs is the sender-side stall per echoed mark, in
	// nanoseconds. 0 with marking enabled selects DefaultECNBackoff.
	ECNBackoffNs int
	// Seed perturbs the ECMP flow hash, re-rolling which spine each
	// (src, dst) flow pins to without touching any other stream.
	Seed uint64
}

// Validate checks the block; the zero value always passes.
func (s Spec) Validate() error {
	if s.Leaves < 0 {
		return fmt.Errorf("fabric: Leaves must not be negative, got %d", s.Leaves)
	}
	if s.Spines < 0 {
		return fmt.Errorf("fabric: Spines must not be negative, got %d", s.Spines)
	}
	if s.ECNThreshold < 0 {
		return fmt.Errorf("fabric: ECNThreshold must not be negative, got %d", s.ECNThreshold)
	}
	if s.ECNBackoffNs < 0 {
		return fmt.Errorf("fabric: ECNBackoffNs must not be negative, got %d", s.ECNBackoffNs)
	}
	return nil
}

// Resolved applies the defaults: at least one leaf, a spine pair for any
// multi-leaf fabric, and the default backoff once marking is enabled.
func (s Spec) Resolved() Spec {
	if s.Leaves < 1 {
		s.Leaves = 1
	}
	if s.Leaves > 1 && s.Spines < 1 {
		s.Spines = 2
	}
	if s.ECNThreshold > 0 && s.ECNBackoffNs == 0 {
		s.ECNBackoffNs = int(DefaultECNBackoff / sim.Nanosecond)
	}
	return s
}

// ECNBackoff returns the resolved sender stall per mark.
func (s Spec) ECNBackoff() sim.Time {
	return sim.Time(s.Resolved().ECNBackoffNs) * sim.Nanosecond
}

// LeafOf returns the leaf (rack) of host h under the block assignment the
// Topology uses: hosts split into ceil(hosts/leaves) contiguous blocks.
// The workload plane's cross-rack destination sampler uses the same
// function, so "intra-rack" there is "same leaf" here by construction.
func LeafOf(h, hosts, leaves int) int {
	if leaves <= 1 {
		return 0
	}
	per := (hosts + leaves - 1) / leaves
	return h / per
}

// RackBounds returns the half-open host range [lo, hi) of host h's rack
// under the same block assignment as LeafOf.
func RackBounds(h, hosts, leaves int) (lo, hi int) {
	if leaves <= 1 {
		return 0, hosts
	}
	per := (hosts + leaves - 1) / leaves
	lo = (h / per) * per
	hi = lo + per
	if hi > hosts {
		hi = hosts
	}
	return lo, hi
}

// FlowHash is the deterministic ECMP hash: a splitmix64 finalizer over the
// (src, dst) pair perturbed by the seed. It is stable across runs, shard
// counts and architectures — the same flow always pins the same spine.
func FlowHash(src, dst, seed uint64) uint64 {
	h := src<<32 ^ dst ^ seed*0x9e3779b97f4a7c15
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// Pacer is the sender-side ECN response: each echoed mark requests one
// backoff stall on the sender's TX path, with at most one stall
// outstanding (a burst of marks inside one stall collapses into it, the
// way a DCTCP window cut absorbs a whole marked RTT). Stall is wired by
// the experiment to occupy the sender's serial TX stage for d and then
// call done; a nil Pacer or nil Stall ignores marks.
type Pacer struct {
	// Backoff is the stall length per mark.
	Backoff sim.Time
	// Stall occupies the sender for d, then must call done exactly once.
	Stall func(d sim.Time, done func())

	// Marks counts echoed marks seen, including collapsed ones.
	Marks uint64
	// Stalls counts backoff stalls actually issued.
	Stalls uint64

	pending bool
}

// OnMark reacts to one echoed congestion mark.
func (p *Pacer) OnMark() {
	if p == nil || p.Stall == nil || p.Backoff <= 0 {
		return
	}
	p.Marks++
	if p.pending {
		return
	}
	p.pending = true
	p.Stalls++
	p.Stall(p.Backoff, func() { p.pending = false })
}
