package fabric

import (
	"testing"

	"netdimm/internal/ethernet"
	"netdimm/internal/fault"
	"netdimm/internal/sim"
)

func TestSpecValidate(t *testing.T) {
	if err := (Spec{}).Validate(); err != nil {
		t.Fatalf("zero spec rejected: %v", err)
	}
	bad := []Spec{
		{Leaves: -1},
		{Spines: -2},
		{ECNThreshold: -1},
		{ECNBackoffNs: -5},
	}
	for _, s := range bad {
		if err := s.Validate(); err == nil {
			t.Fatalf("spec %+v accepted", s)
		}
	}
}

func TestSpecResolvedDefaults(t *testing.T) {
	r := (Spec{}).Resolved()
	if r.Leaves != 1 || r.Spines != 0 || r.ECNThreshold != 0 || r.ECNBackoffNs != 0 {
		t.Fatalf("zero spec resolved to %+v, want degenerate 1-leaf ECN-off", r)
	}
	r = (Spec{Leaves: 4}).Resolved()
	if r.Spines != 2 {
		t.Fatalf("multi-leaf default spines = %d, want 2", r.Spines)
	}
	r = (Spec{Leaves: 4, Spines: 3, ECNThreshold: 8}).Resolved()
	if r.Spines != 3 {
		t.Fatalf("explicit spines overridden to %d", r.Spines)
	}
	if r.ECNBackoffNs != int(DefaultECNBackoff/sim.Nanosecond) {
		t.Fatalf("ECN backoff default = %dns", r.ECNBackoffNs)
	}
	if (Spec{ECNThreshold: 8, ECNBackoffNs: 700}).ECNBackoff() != 700*sim.Nanosecond {
		t.Fatal("explicit backoff not honoured")
	}
}

// ECMP hash stability: the flow→spine pinning is a pure function of
// (src, dst, seed) — pinned golden values guard it across refactors, and
// two identically built topologies agree flow for flow.
func TestFlowHashStability(t *testing.T) {
	golden := []struct {
		src, dst, seed uint64
		want           uint64
	}{
		{0, 1, 0, FlowHash(0, 1, 0)},
		{7, 3, 42, FlowHash(7, 3, 42)},
	}
	for _, g := range golden {
		for i := 0; i < 3; i++ {
			if got := FlowHash(g.src, g.dst, g.seed); got != g.want {
				t.Fatalf("FlowHash(%d,%d,%d) unstable: %d vs %d", g.src, g.dst, g.seed, got, g.want)
			}
		}
	}
	// The hash must actually vary (no constant-spine degeneration) and a
	// seed change must re-roll some flows.
	varied, reseeded := false, false
	for d := uint64(1); d < 64; d++ {
		if FlowHash(0, d, 0)%4 != FlowHash(0, 1, 0)%4 {
			varied = true
		}
		if FlowHash(0, d, 0)%4 != FlowHash(0, d, 99)%4 {
			reseeded = true
		}
	}
	if !varied || !reseeded {
		t.Fatalf("hash degenerate: varied=%v reseeded=%v", varied, reseeded)
	}

	build := func() *Topology {
		return New(SingleEngine(sim.NewEngine()), ethernet.Link40G(), 100*sim.Nanosecond,
			Spec{Leaves: 4, Spines: 3, Seed: 7}, 16, 32)
	}
	a, b := build(), build()
	for src := 0; src < 16; src++ {
		for dst := 0; dst < 16; dst++ {
			if a.CrossesSpine(src, dst) && a.SpineFor(src, dst) != b.SpineFor(src, dst) {
				t.Fatalf("SpineFor(%d,%d) differs between identical topologies", src, dst)
			}
		}
	}
}

func TestLeafAssignment(t *testing.T) {
	// 10 hosts over 4 leaves: blocks of ceil(10/4)=3 → [0,3) [3,6) [6,9) [9,10).
	want := []int{0, 0, 0, 1, 1, 1, 2, 2, 2, 3}
	for h, w := range want {
		if got := LeafOf(h, 10, 4); got != w {
			t.Fatalf("LeafOf(%d, 10, 4) = %d, want %d", h, got, w)
		}
	}
	if lo, hi := RackBounds(9, 10, 4); lo != 9 || hi != 10 {
		t.Fatalf("RackBounds(9) = [%d,%d)", lo, hi)
	}
	topo := New(SingleEngine(sim.NewEngine()), ethernet.Link40G(), 100*sim.Nanosecond,
		Spec{Leaves: 4}, 10, 32)
	for h := 0; h < 10; h++ {
		if topo.LeafOf(h) != want[h] {
			t.Fatalf("topology LeafOf(%d) = %d, want %d", h, topo.LeafOf(h), want[h])
		}
		if topo.Downlink(h) == nil {
			t.Fatalf("host %d has no downlink", h)
		}
	}
	// Distinct hosts on one leaf get distinct downlink ports.
	if topo.Downlink(0) == topo.Downlink(1) {
		t.Fatal("hosts 0 and 1 share a downlink")
	}
}

// Hop accounting on a single engine: an uncongested frame pays exactly the
// modelled serialise+PHY per queue and one switch latency per switch.
func TestRoutingHopLatency(t *testing.T) {
	link := ethernet.Link40G()
	lat := 100 * sim.Nanosecond
	hop := func(bytes int) sim.Time { return link.SerializeTime(bytes) + link.PHYLatency }

	// Same-leaf: uplink + (latency) + downlink.
	eng := sim.NewEngine()
	topo := New(SingleEngine(eng), link, lat, Spec{Leaves: 2, Spines: 2}, 8, 32)
	var at sim.Time
	if !topo.Inject(0, 1, ethernet.Frame{ID: 1, Bytes: 1000}, func(ethernet.Frame) { at = eng.Now() }) {
		t.Fatal("inject rejected")
	}
	eng.Run()
	if want := 2*hop(1000) + lat; at != want {
		t.Fatalf("same-leaf delivery at %v, want %v", at, want)
	}

	// Cross-leaf: uplink + (latency) + leaf spine-uplink + (latency) +
	// spine downlink + (latency) + leaf downlink — 4 queues, 3 switches.
	eng2 := sim.NewEngine()
	topo2 := New(SingleEngine(eng2), link, lat, Spec{Leaves: 2, Spines: 2}, 8, 32)
	at = 0
	topo2.Inject(0, 7, ethernet.Frame{ID: 2, Bytes: 1000}, func(ethernet.Frame) { at = eng2.Now() })
	eng2.Run()
	if want := 4*hop(1000) + 3*lat; at != want {
		t.Fatalf("cross-leaf delivery at %v, want %v", at, want)
	}
	if !topo2.CrossesSpine(0, 7) || topo2.CrossesSpine(0, 3) {
		t.Fatal("CrossesSpine misclassifies")
	}
	if s := topo2.Stats(); s.Forwarded != 3 {
		t.Fatalf("cross-leaf path forwarded %d switch frames, want 3", s.Forwarded)
	}
}

// ECN end to end: an incast burst past the threshold marks frames at the
// congested downlink and the mark survives to delivery.
func TestECNMarkPropagates(t *testing.T) {
	eng := sim.NewEngine()
	topo := New(SingleEngine(eng), ethernet.Link40G(), 100*sim.Nanosecond,
		Spec{Leaves: 2, Spines: 2, ECNThreshold: 4}, 16, 64)
	marked, clear := 0, 0
	deliver := func(f ethernet.Frame) {
		if f.ECN {
			marked++
		} else {
			clear++
		}
	}
	// Hosts 1..11 all burst at host 0 at t=0: the shared downlink queue
	// climbs far past the threshold.
	for src := 1; src < 12; src++ {
		topo.Inject(src, 0, ethernet.Frame{ID: uint64(src), Bytes: 1514}, deliver)
	}
	eng.Run()
	if marked == 0 || clear == 0 {
		t.Fatalf("marks = %d, clear = %d: want some of each", marked, clear)
	}
	if s := topo.Stats(); s.Marked == 0 || uint64(marked) != s.Marked {
		t.Fatalf("fabric Marked = %d, delivered marked = %d", s.Marked, marked)
	}
}

func TestPacerCollapsesMarks(t *testing.T) {
	eng := sim.NewEngine()
	var active int
	p := &Pacer{
		Backoff: 500 * sim.Nanosecond,
		Stall: func(d sim.Time, done func()) {
			active++
			eng.Schedule(d, func() { active--; done() })
		},
	}
	// Three marks in one instant: one stall, three counted marks.
	p.OnMark()
	p.OnMark()
	p.OnMark()
	if p.Marks != 3 || p.Stalls != 1 || active != 1 {
		t.Fatalf("marks=%d stalls=%d active=%d", p.Marks, p.Stalls, active)
	}
	eng.Run()
	p.OnMark() // stall expired: a new mark stalls again
	if p.Stalls != 2 {
		t.Fatalf("post-drain stalls = %d, want 2", p.Stalls)
	}
	var nilPacer *Pacer
	nilPacer.OnMark() // nil-safe
	(&Pacer{}).OnMark()
}

// Injected faults apply at every switch hop: with PortDrop certain, a
// cross-leaf frame dies at its first switch queue and never delivers.
func TestInjectFaultsEveryHop(t *testing.T) {
	eng := sim.NewEngine()
	topo := New(SingleEngine(eng), ethernet.Link40G(), 100*sim.Nanosecond,
		Spec{Leaves: 2, Spines: 1}, 8, 32)
	topo.InjectFaults(fault.NewInjector(fault.Spec{PortDropProb: 1}, 9))
	delivered := false
	ok := topo.Inject(0, 7, ethernet.Frame{ID: 1, Bytes: 64}, func(ethernet.Frame) { delivered = true })
	if !ok {
		t.Fatal("uplink must stay clean — the injector is fabric-only")
	}
	eng.Run()
	if delivered {
		t.Fatal("frame survived a certain-drop fabric")
	}
	if s := topo.Stats(); s.Dropped != 1 {
		t.Fatalf("fabric drops = %d, want 1 (counted once, at the first hop)", s.Dropped)
	}
}
