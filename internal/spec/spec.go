// Package spec is the configuration plane: it maps one validated system
// specification (the paper's Table 1, or any scenario derived from it) to
// the parameter sets of every substrate package — software costs, NetDIMM
// device config, memory-controller config, DRAM timing, PCIe link,
// Ethernet fabric and the flex-mode address map with its NET_i zone bases.
//
// The root netdimm package's Config converts to Spec one-to-one; the
// internal experiment runners consume the derived form, so every model
// constant in an experiment flows from one validated specification instead
// of per-package defaults.
package spec

import (
	"fmt"

	"netdimm/internal/addrmap"
	"netdimm/internal/collective"
	"netdimm/internal/core"
	"netdimm/internal/cpu"
	"netdimm/internal/dram"
	"netdimm/internal/driver"
	"netdimm/internal/ethernet"
	"netdimm/internal/fabric"
	"netdimm/internal/fault"
	"netdimm/internal/memctrl"
	"netdimm/internal/nic"
	"netdimm/internal/obs"
	"netdimm/internal/pcie"
	"netdimm/internal/sim"
	"netdimm/internal/workload"
)

// FaultSpec is the fault-injection block of a specification. It aliases
// fault.Spec so the root Config, this package and the fault plane share one
// underlying type and Spec↔Config struct conversion stays direct.
type FaultSpec = fault.Spec

// ObsSpec is the observability block of a specification; it aliases
// obs.Spec for the same direct-conversion reason as FaultSpec.
type ObsSpec = obs.Spec

// LoadSpec is the load-generation block of a specification; it aliases
// workload.LoadSpec for the same direct-conversion reason as FaultSpec.
type LoadSpec = workload.LoadSpec

// FabricSpec is the network-topology block of a specification; it aliases
// fabric.Spec for the same direct-conversion reason as FaultSpec.
type FabricSpec = fabric.Spec

// CollectiveSpec is the collective-communication block of a specification;
// it aliases collective.Spec for the same direct-conversion reason as
// FaultSpec.
type CollectiveSpec = collective.Spec

// Spec is the full simulated-system specification. Its fields mirror the
// root netdimm.Config exactly (same names, types and order), so the two
// structs convert directly.
type Spec struct {
	Cores         int
	CoreGHz       float64
	SuperscalarW  int
	ROBEntries    int
	IQEntries     int
	LQEntries     int
	SQEntries     int
	L1ISizeKB     int
	L1DSizeKB     int
	L2SizeMB      int
	L1ILatCycles  int
	L1DLatCycles  int
	L2LatCycles   int
	DRAM          string
	DRAMSizeGB    int
	MemChannels   int
	NetworkGbps   int
	SwitchLatNs   int
	NetDIMMs      int
	PCIe          string
	NetDIMMSizeGB int
	// Fault configures deterministic fault injection; the zero value
	// disables every fault and leaves all experiments bit-identical to a
	// fault-free run.
	Fault FaultSpec
	// Obs selects observability collection (span tracing, metrics); the
	// zero value disables instrumentation entirely and keeps every hot
	// path allocation-free.
	Obs ObsSpec
	// Load shapes the rack-scale load sweep's traffic (incast fan-in,
	// cluster distribution, arrival process, port buffering); the zero
	// value selects the sweep defaults and affects no other experiment.
	Load LoadSpec
	// Fabric shapes the switched network topology (leaf/spine clos shape,
	// ECMP seed, ECN congestion signal); the zero value is the degenerate
	// single-switch fabric every pre-fabric experiment built, changing no
	// output.
	Fabric FabricSpec
	// Collective shapes the collective-communication sweep (operation,
	// rank count, payload and chunk sizes); the zero value selects the
	// sweep defaults and affects no other experiment.
	Collective CollectiveSpec
}

// TableOne returns the paper's Table 1 specification.
func TableOne() Spec {
	return Spec{
		Cores:         8,
		CoreGHz:       3.4,
		SuperscalarW:  3,
		ROBEntries:    40,
		IQEntries:     32,
		LQEntries:     16,
		SQEntries:     16,
		L1ISizeKB:     32,
		L1DSizeKB:     64,
		L2SizeMB:      2,
		L1ILatCycles:  1,
		L1DLatCycles:  2,
		L2LatCycles:   12,
		DRAM:          "DDR4-2400",
		DRAMSizeGB:    16,
		MemChannels:   2,
		NetworkGbps:   40,
		SwitchLatNs:   100,
		NetDIMMs:      1,
		PCIe:          "x8 PCIe Gen4",
		NetDIMMSizeGB: 16,
	}
}

func powerOfTwo(n int) bool { return n > 0 && n&(n-1) == 0 }

// Validate checks the specification for internal consistency and returns
// an actionable error for the first violation found.
func (s Spec) Validate() error {
	switch {
	case s.Cores < 1:
		return fmt.Errorf("spec: Cores must be at least 1, got %d", s.Cores)
	case s.CoreGHz <= 0:
		return fmt.Errorf("spec: CoreGHz must be positive, got %g", s.CoreGHz)
	case s.SuperscalarW < 1:
		return fmt.Errorf("spec: SuperscalarW must be at least 1, got %d", s.SuperscalarW)
	case s.ROBEntries < 1 || s.IQEntries < 1 || s.LQEntries < 1 || s.SQEntries < 1:
		return fmt.Errorf("spec: ROB/IQ/LQ/SQ entries must all be at least 1, got %d/%d/%d/%d",
			s.ROBEntries, s.IQEntries, s.LQEntries, s.SQEntries)
	case !powerOfTwo(s.L1ISizeKB) || !powerOfTwo(s.L1DSizeKB):
		return fmt.Errorf("spec: L1 cache sizes must be powers of two (KB), got L1I=%dKB L1D=%dKB",
			s.L1ISizeKB, s.L1DSizeKB)
	case !powerOfTwo(s.L2SizeMB):
		return fmt.Errorf("spec: L2 size must be a power of two (MB), got %dMB", s.L2SizeMB)
	case s.L1ILatCycles < 1 || s.L1DLatCycles < 1 || s.L2LatCycles < 1:
		return fmt.Errorf("spec: cache latencies must be at least 1 cycle, got L1I=%d L1D=%d L2=%d",
			s.L1ILatCycles, s.L1DLatCycles, s.L2LatCycles)
	case !powerOfTwo(s.DRAMSizeGB):
		return fmt.Errorf("spec: DRAMSizeGB must be a power of two for channel interleaving, got %d", s.DRAMSizeGB)
	case s.MemChannels < 1:
		return fmt.Errorf("spec: MemChannels must be at least 1, got %d", s.MemChannels)
	case s.NetworkGbps < 1:
		return fmt.Errorf("spec: NetworkGbps must be at least 1, got %d", s.NetworkGbps)
	case s.SwitchLatNs < 0:
		return fmt.Errorf("spec: SwitchLatNs must not be negative, got %d", s.SwitchLatNs)
	case s.NetDIMMs < 1:
		return fmt.Errorf("spec: NetDIMMs must be at least 1, got %d", s.NetDIMMs)
	case s.NetDIMMs > 2*s.MemChannels:
		return fmt.Errorf("spec: %d NetDIMMs exceed the address map: %d channels offer %d DIMM slots (two per channel)",
			s.NetDIMMs, s.MemChannels, 2*s.MemChannels)
	case s.NetDIMMSizeGB < 8 || s.NetDIMMSizeGB%8 != 0:
		return fmt.Errorf("spec: NetDIMMSizeGB must be a positive multiple of the 8GB rank size, got %d", s.NetDIMMSizeGB)
	}
	if _, err := dram.ParseTiming(s.DRAM); err != nil {
		return fmt.Errorf("spec: DRAM: %w", err)
	}
	if _, err := pcie.ParseLink(s.PCIe); err != nil {
		return fmt.Errorf("spec: PCIe: %w", err)
	}
	if err := s.Fault.Validate(); err != nil {
		return fmt.Errorf("spec: %w", err)
	}
	if err := s.Load.Validate(); err != nil {
		return fmt.Errorf("spec: %w", err)
	}
	if err := s.Fabric.Validate(); err != nil {
		return fmt.Errorf("spec: %w", err)
	}
	if err := s.Collective.Validate(); err != nil {
		return fmt.Errorf("spec: %w", err)
	}
	return nil
}

// Derived is a Spec resolved into every per-package parameter set. It is
// read-only after Derive and safe to share across parallel experiment
// cells; the machine constructors below build fresh mutable state per call.
type Derived struct {
	Spec Spec

	// Costs is the driver software cost set. A Table 1 core uses the
	// hand-calibrated driver.DefaultCosts; any other core derives its
	// costs from the first-order cpu model.
	Costs driver.Costs
	// Core is the NetDIMM device configuration with the base seed;
	// endpoint constructors override Seed per machine.
	Core core.Config
	// MC is the host/NetDIMM memory-controller configuration.
	MC memctrl.Config
	// HostTiming is the timing of the host DDR channels (and of the
	// NetDIMM's local modules, which share the channel's technology).
	HostTiming dram.Timing
	// PCIe is the dNIC attachment link.
	PCIe pcie.Link
	// Link is the Ethernet link model of every fabric built from this
	// specification.
	Link ethernet.Link
	// SwitchLatency is the default switch port-to-port latency.
	SwitchLatency sim.Time
	// Map is the flex-mode physical address map: the DDR region
	// interleaved over MemChannels, then one NET_i region per NetDIMM.
	Map *addrmap.SystemMap
}

// Derive validates the specification and resolves it into the parameter
// sets of every substrate package.
func (s Spec) Derive() (*Derived, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	timing, err := dram.ParseTiming(s.DRAM)
	if err != nil {
		return nil, err
	}
	link, err := pcie.ParseLink(s.PCIe)
	if err != nil {
		return nil, err
	}

	ndBytes := int64(s.NetDIMMSizeGB) << 30
	ndSpecs := make([]addrmap.NetDIMMSpec, s.NetDIMMs)
	for i := range ndSpecs {
		ndSpecs[i] = addrmap.NetDIMMSpec{Channel: i % s.MemChannels, Size: ndBytes}
	}
	m, err := addrmap.NewSystemMap(s.MemChannels, int64(s.DRAMSizeGB)<<30, addrmap.PageSize, ndSpecs...)
	if err != nil {
		return nil, fmt.Errorf("spec: address map: %w", err)
	}

	coreCfg := core.DefaultConfig()
	coreCfg.Ranks = int(ndBytes / addrmap.RankBytes)
	coreCfg.LocalTiming = timing

	return &Derived{
		Spec:          s,
		Costs:         s.costs(),
		Core:          coreCfg,
		MC:            memctrl.DefaultConfig(),
		HostTiming:    timing,
		PCIe:          link,
		Link:          ethernet.LinkGbps(float64(s.NetworkGbps)),
		SwitchLatency: sim.Time(s.SwitchLatNs) * sim.Nanosecond,
		Map:           m,
	}, nil
}

// MustDerive is Derive for specifications already validated at an entry
// point (the experiment runners); it panics on an invalid Spec.
func (s Spec) MustDerive() *Derived {
	d, err := s.Derive()
	if err != nil {
		panic(err)
	}
	return d
}

// costs selects the software cost set: the calibrated constants anchor the
// Table 1 core exactly (so default-spec figures are bit-identical to the
// calibrated baseline); a deviating core falls back to the cpu model.
func (s Spec) costs() driver.Costs {
	p := cpu.TableOne()
	p.FreqGHz = s.CoreGHz
	p.IssueWidth = s.SuperscalarW
	p.ROBEntries = s.ROBEntries
	p.L1DLat = s.L1DLatCycles
	p.L2Lat = s.L2LatCycles
	if p == cpu.TableOne() {
		return driver.DefaultCosts()
	}
	return driver.CostsFromParams(p)
}

// ZoneBase returns the physical base address of NetDIMM i's NET_i zone.
func (d *Derived) ZoneBase(i int) int64 {
	r, err := d.Map.NetDIMMRegion(i)
	if err != nil {
		panic(err) // unreachable: Derive sized the map to Spec.NetDIMMs
	}
	return r.Base
}

// ZoneBases returns every NET_i zone base in NetDIMM order.
func (d *Derived) ZoneBases() []int64 {
	bases := make([]int64, d.Spec.NetDIMMs)
	for i := range bases {
		bases[i] = d.ZoneBase(i)
	}
	return bases
}

// ShardLookahead returns the conservative lookahead for sharding one
// cell's event engine: the minimum link latency separating any two
// communicating shards. In the load-sweep partition (each sender host a
// shard, the switch egress plus receiver a shard) every cross-shard hop
// crosses the switch, so the port-to-port switch latency is that minimum —
// no host can affect the receiver shard sooner, which is exactly the
// window width conservative synchronization needs. A zero return means
// the specification offers no lookahead (SwitchLatNs=0) and sharding must
// fall back to the single-engine path.
func (d *Derived) ShardLookahead() sim.Time {
	return d.SwitchLatency
}

// Fabric builds an analytic clos fabric over the derived link with the
// given switch latency (use d.SwitchLatency for the specification's own
// value).
func (d *Derived) Fabric(switchLatency sim.Time) ethernet.Fabric {
	return ethernet.NewFabricWith(d.Link, switchLatency)
}

// NewTopology builds the event-driven switched topology of the Fabric
// block — hosts' uplink ports, leaf and spine switches with per-hop
// output queues — over the derived link and switch latency, placed onto
// engines by p.
func (d *Derived) NewTopology(p fabric.Placement, hosts, portBuffer int) *fabric.Topology {
	return fabric.New(p, d.Link, d.SwitchLatency, d.Spec.Fabric, hosts, portBuffer)
}

// NewDNIC builds a discrete-NIC endpoint on the derived PCIe link.
func (d *Derived) NewDNIC(zeroCopy bool) *driver.HWDriver {
	return driver.NewMachine(nic.NewDNICWith(d.PCIe), d.Costs, zeroCopy)
}

// NewINIC builds an integrated-NIC endpoint.
func (d *Derived) NewINIC(zeroCopy bool) *driver.HWDriver {
	return driver.NewMachine(nic.NewINIC(), d.Costs, zeroCopy)
}

// NewNetDIMM builds a NetDIMM endpoint on NET_0 with the given device seed.
func (d *Derived) NewNetDIMM(seed uint64) (*driver.NetDIMMDriver, error) {
	cfg := d.Core
	cfg.Seed = seed
	return driver.NewNetDIMMMachineWith(cfg, d.ZoneBase(0), d.Costs)
}

// NewSystem builds a server carrying all Spec.NetDIMMs NetDIMMs with their
// NET_i zones placed by the derived address map.
func (d *Derived) NewSystem(seed uint64) (*driver.System, error) {
	return driver.NewSystemWith(d.Core, d.ZoneBases(), d.Costs, seed)
}
