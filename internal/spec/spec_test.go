package spec

import (
	"reflect"
	"strings"
	"testing"

	"netdimm/internal/addrmap"
	"netdimm/internal/core"
	"netdimm/internal/cpu"
	"netdimm/internal/dram"
	"netdimm/internal/driver"
	"netdimm/internal/ethernet"
	"netdimm/internal/memctrl"
	"netdimm/internal/pcie"
)

// The Table 1 spec must derive exactly the parameter sets the substrate
// packages ship as defaults — this is what keeps every default-config
// figure bit-identical to the calibrated baseline.
func TestTableOneDerivesDefaults(t *testing.T) {
	d, err := TableOne().Derive()
	if err != nil {
		t.Fatal(err)
	}
	if got, want := d.Costs, driver.DefaultCosts(); got != want {
		t.Errorf("Costs = %+v, want DefaultCosts %+v", got, want)
	}
	if got, want := d.Core, core.DefaultConfig(); !reflect.DeepEqual(got, want) {
		t.Errorf("Core = %+v, want core.DefaultConfig %+v", got, want)
	}
	if got, want := d.MC, memctrl.DefaultConfig(); !reflect.DeepEqual(got, want) {
		t.Errorf("MC = %+v, want memctrl.DefaultConfig %+v", got, want)
	}
	if got, want := d.HostTiming, dram.DDR4_2400(); !reflect.DeepEqual(got, want) {
		t.Errorf("HostTiming = %+v, want DDR4-2400 %+v", got, want)
	}
	if got, want := d.PCIe, pcie.NewLink(pcie.Gen4, 8); got != want {
		t.Errorf("PCIe = %+v, want x8 Gen4 %+v", got, want)
	}
	if got, want := d.Link, ethernet.Link40G(); got != want {
		t.Errorf("Link = %+v, want 40GbE %+v", got, want)
	}
	// NET_0 sits right above the 16GB host DDR region — the base the
	// pre-derivation code hard-coded as 16<<30.
	if got := d.ZoneBase(0); got != 16<<30 {
		t.Errorf("ZoneBase(0) = %d, want %d", got, int64(16)<<30)
	}
}

func TestDeriveDDR5(t *testing.T) {
	s := TableOne()
	s.DRAM = "DDR5-4800"
	d, err := s.Derive()
	if err != nil {
		t.Fatal(err)
	}
	want := dram.DDR5_4800()
	if !reflect.DeepEqual(d.HostTiming, want) {
		t.Errorf("HostTiming = %+v, want DDR5-4800", d.HostTiming)
	}
	// The NetDIMM's local modules share the channel technology.
	if !reflect.DeepEqual(d.Core.LocalTiming, want) {
		t.Errorf("Core.LocalTiming = %+v, want DDR5-4800", d.Core.LocalTiming)
	}
}

func TestDerivePCIeGen3(t *testing.T) {
	s := TableOne()
	s.PCIe = "x16 PCIe Gen3"
	d, err := s.Derive()
	if err != nil {
		t.Fatal(err)
	}
	if got, want := d.PCIe, pcie.NewLink(pcie.Gen3, 16); got != want {
		t.Errorf("PCIe = %+v, want x16 Gen3 %+v", got, want)
	}
}

func TestDeriveNonTableOneCosts(t *testing.T) {
	s := TableOne()
	s.CoreGHz = 2.0
	d, err := s.Derive()
	if err != nil {
		t.Fatal(err)
	}
	if d.Costs == driver.DefaultCosts() {
		t.Fatal("a slower core must not reuse the calibrated Table 1 costs")
	}
	// Lowering the clock inflates the modelled pure-CPU driver stages
	// relative to the same model at the Table 1 clock.
	model34 := driver.CostsFromParams(cpu.TableOne())
	if d.Costs.AllocCacheLookup <= model34.AllocCacheLookup {
		t.Errorf("2GHz AllocCacheLookup %v not above modelled 3.4GHz %v",
			d.Costs.AllocCacheLookup, model34.AllocCacheLookup)
	}
}

func TestDeriveMultiNetDIMMZoneBases(t *testing.T) {
	s := TableOne()
	s.NetDIMMs = 4
	s.MemChannels = 4
	d, err := s.Derive()
	if err != nil {
		t.Fatal(err)
	}
	bases := d.ZoneBases()
	if len(bases) != 4 {
		t.Fatalf("bases = %d", len(bases))
	}
	ddr := int64(s.DRAMSizeGB) << 30
	size := int64(s.NetDIMMSizeGB) << 30
	for i, b := range bases {
		if want := ddr + int64(i)*size; b != want {
			t.Errorf("base[%d] = %d, want %d", i, b, want)
		}
	}
}

func TestDeriveLinkRate(t *testing.T) {
	s := TableOne()
	s.NetworkGbps = 100
	d, err := s.Derive()
	if err != nil {
		t.Fatal(err)
	}
	if d.Link.BitsPerSec != 100e9 {
		t.Errorf("BitsPerSec = %g, want 100e9", d.Link.BitsPerSec)
	}
}

func TestShardLookahead(t *testing.T) {
	s := TableOne()
	d, err := s.Derive()
	if err != nil {
		t.Fatal(err)
	}
	if got := d.ShardLookahead(); got != d.SwitchLatency {
		t.Errorf("ShardLookahead = %v, want the switch latency %v", got, d.SwitchLatency)
	}
	s.SwitchLatNs = 0
	d, err = s.Derive()
	if err != nil {
		t.Fatal(err)
	}
	if got := d.ShardLookahead(); got != 0 {
		t.Errorf("ShardLookahead with SwitchLatNs=0 = %v, want 0 (no safe window)", got)
	}
}

func TestValidateErrors(t *testing.T) {
	mut := func(f func(*Spec)) Spec {
		s := TableOne()
		f(&s)
		return s
	}
	cases := []struct {
		name string
		s    Spec
		frag string
	}{
		{"cores", mut(func(s *Spec) { s.Cores = 0 }), "Cores"},
		{"freq", mut(func(s *Spec) { s.CoreGHz = -1 }), "CoreGHz"},
		{"superscalar", mut(func(s *Spec) { s.SuperscalarW = 0 }), "SuperscalarW"},
		{"rob", mut(func(s *Spec) { s.ROBEntries = 0 }), "ROB"},
		{"l1size", mut(func(s *Spec) { s.L1DSizeKB = 48 }), "powers of two"},
		{"l2size", mut(func(s *Spec) { s.L2SizeMB = 3 }), "L2"},
		{"cachelat", mut(func(s *Spec) { s.L1DLatCycles = 0 }), "cache latencies"},
		{"dramsize", mut(func(s *Spec) { s.DRAMSizeGB = 12 }), "DRAMSizeGB"},
		{"channels", mut(func(s *Spec) { s.MemChannels = 0 }), "MemChannels"},
		{"network", mut(func(s *Spec) { s.NetworkGbps = 0 }), "NetworkGbps"},
		{"switch", mut(func(s *Spec) { s.SwitchLatNs = -1 }), "SwitchLatNs"},
		{"netdimms", mut(func(s *Spec) { s.NetDIMMs = 0 }), "NetDIMMs"},
		{"slots", mut(func(s *Spec) { s.NetDIMMs = 5 }), "DIMM slots"},
		{"ndsize", mut(func(s *Spec) { s.NetDIMMSizeGB = 12 }), "rank size"},
		{"dram", mut(func(s *Spec) { s.DRAM = "DDR3-1600" }), "DDR4-2400"},
		{"pcie", mut(func(s *Spec) { s.PCIe = "x8 AGP" }), "cannot parse"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := c.s.Validate()
			if err == nil {
				t.Fatal("invalid spec accepted")
			}
			if !strings.Contains(err.Error(), c.frag) {
				t.Errorf("error %q does not mention %q", err, c.frag)
			}
			if _, err := c.s.Derive(); err == nil {
				t.Error("Derive accepted an invalid spec")
			}
		})
	}
}

func TestMustDerivePanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustDerive did not panic")
		}
	}()
	s := TableOne()
	s.Cores = 0
	s.MustDerive()
}

func TestDeriveRanksScaleWithCapacity(t *testing.T) {
	s := TableOne()
	d := s.MustDerive()
	if got := d.Core.Ranks; got != 2 {
		t.Fatalf("16GB NetDIMM ranks = %d, want 2", got)
	}
	s.NetDIMMSizeGB = 32
	if got := s.MustDerive().Core.Ranks; got != 4 {
		t.Fatalf("32GB NetDIMM ranks = %d, want 4", got)
	}
	if addrmap.RankBytes != 8<<30 {
		t.Fatalf("RankBytes = %d, want 8GB", int64(addrmap.RankBytes))
	}
}
