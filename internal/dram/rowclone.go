package dram

import (
	"fmt"

	"netdimm/internal/addrmap"
	"netdimm/internal/sim"
)

// CloneMode is the in-memory buffer-cloning mode selected by the source and
// destination locations (paper Sec. 4.1, Fig. 8).
type CloneMode int

const (
	// FPM — fast parallel mode: source and destination share a bank
	// sub-array; the clone is two back-to-back row activations.
	FPM CloneMode = iota
	// PSM — pipeline serial mode: same DRAM device (rank), different banks;
	// cachelines are pipelined over the internal bus of the DRAM chips.
	PSM
	// GCM — general cloning mode: everything else; the NetDIMM buffer
	// device reads the source and writes it back, like a DMA engine close
	// to the memory chips.
	GCM
)

func (m CloneMode) String() string {
	switch m {
	case FPM:
		return "FPM"
	case PSM:
		return "PSM"
	case GCM:
		return "GCM"
	default:
		return fmt.Sprintf("CloneMode(%d)", int(m))
	}
}

// CloneTiming parameterises the cost of one 4KB page clone per mode. The
// defaults follow Seshadri et al.'s RowClone measurements as cited by the
// paper: FPM reduces a 4KB copy to ~90ns; PSM is ~490ns; GCM degenerates to
// a pipelined read+write through the buffer device.
type CloneTiming struct {
	FPMPerPage sim.Time
	PSMPerPage sim.Time
	// GCMFixed is the engine setup cost; the data movement itself streams
	// the source out of and back into DRAM over the half-duplex local bus,
	// so it pays for 2x the bytes at channel bandwidth.
	GCMFixed sim.Time
}

// DefaultCloneTiming returns the paper-calibrated clone costs.
func DefaultCloneTiming() CloneTiming {
	return CloneTiming{
		FPMPerPage: 90 * sim.Nanosecond,
		PSMPerPage: 490 * sim.Nanosecond,
		GCMFixed:   100 * sim.Nanosecond,
	}
}

// CloneModeFor selects the cloning mode for a pair of DIMM-local addresses
// (paper Fig. 8): FPM within a sub-array, PSM within a rank, GCM otherwise.
func CloneModeFor(src, dst int64) CloneMode {
	switch {
	case addrmap.SameSubarray(src, dst):
		return FPM
	case addrmap.SameRank(src, dst):
		return PSM
	default:
		return GCM
	}
}

// CloneEngine performs in-memory buffer clones on a DIMM and accounts for
// their bank-state side effects.
type CloneEngine struct {
	timing CloneTiming
	dram   Timing
	ranks  []*Rank
}

// NewCloneEngine returns an engine cloning over the given ranks.
func NewCloneEngine(ct CloneTiming, dt Timing, ranks []*Rank) *CloneEngine {
	return &CloneEngine{timing: ct, dram: dt, ranks: ranks}
}

// pages returns the number of 4KB pages covered, minimum one: RowClone
// operates at row granularity, so even a 64B clone costs one page operation.
func pages(bytes int64) sim.Time {
	p := (bytes + addrmap.PageSize - 1) / addrmap.PageSize
	if p < 1 {
		p = 1
	}
	return sim.Time(p)
}

// Clone copies bytes from src to dst (both DIMM-local addresses) starting
// no earlier than now, returning the completion instant and the mode used.
func (e *CloneEngine) Clone(now sim.Time, src, dst int64, bytes int64) (done sim.Time, mode CloneMode) {
	mode = CloneModeFor(src, dst)
	n := pages(bytes)
	switch mode {
	case FPM:
		done = now + n*e.timing.FPMPerPage
		e.rankOf(src).stats.CloneFPM++
		// The two back-to-back activations leave the destination row open.
		e.touchRow(dst, done)
	case PSM:
		done = now + n*e.timing.PSMPerPage
		e.rankOf(src).stats.ClonePSM++
		e.touchRow(src, done)
		e.touchRow(dst, done)
	default: // GCM
		// GCM moves whole pages like the other modes (cloning is
		// row-granular): read out + write back over the half-duplex bus.
		move := e.dram.StreamTime(2 * int64(pages(bytes)) * addrmap.PageSize)
		done = now + e.timing.GCMFixed + move
		e.rankOf(src).stats.CloneGCM++
		e.touchRow(src, done)
		e.touchRow(dst, done)
	}
	return done, mode
}

// Latency returns the cost of a clone without performing it (for planners
// and analytical callers).
func (e *CloneEngine) Latency(src, dst int64, bytes int64) sim.Time {
	switch CloneModeFor(src, dst) {
	case FPM:
		return pages(bytes) * e.timing.FPMPerPage
	case PSM:
		return pages(bytes) * e.timing.PSMPerPage
	default:
		return e.timing.GCMFixed + e.dram.StreamTime(2*int64(pages(bytes))*addrmap.PageSize)
	}
}

func (e *CloneEngine) rankOf(local int64) *Rank {
	idx := addrmap.DecodeRank(local).Rank
	if idx >= len(e.ranks) {
		idx = len(e.ranks) - 1
	}
	return e.ranks[idx]
}

// touchRow marks the row open and its bank busy until done, so subsequent
// controller accesses observe the clone's bank-state footprint.
func (e *CloneEngine) touchRow(local int64, done sim.Time) {
	r := e.rankOf(local)
	l := addrmap.DecodeRank(local)
	b := &r.banks[l.Bank]
	b.openRow = l.GlobalRow()
	if b.readyAt < done {
		b.readyAt = done
	}
	if b.lastAct < done-r.timing.TRAS {
		b.lastAct = done - r.timing.TRAS
	}
}
