package dram

import (
	"testing"
	"testing/quick"

	"netdimm/internal/addrmap"
	"netdimm/internal/sim"
)

func TestTimingDerived(t *testing.T) {
	d4 := DDR4_2400()
	if d4.TRC() != d4.TRAS+d4.TRP {
		t.Fatal("TRC != TRAS+TRP")
	}
	if d4.BurstTime(1) != d4.TBL {
		t.Fatal("sub-cacheline burst should cost one burst")
	}
	if d4.BurstTime(64) != d4.TBL || d4.BurstTime(65) != 2*d4.TBL {
		t.Fatal("burst rounding wrong")
	}
	if d4.BurstTime(0) != d4.TBL {
		t.Fatal("zero-byte burst should still cost one burst slot")
	}
}

func TestStreamTime(t *testing.T) {
	d4 := DDR4_2400()
	// 12.8GB/s: 4KB should take ~320ns.
	got := d4.StreamTime(4096)
	if got < 300*sim.Nanosecond || got > 340*sim.Nanosecond {
		t.Fatalf("StreamTime(4KB) = %v, want ~320ns", got)
	}
	if d4.StreamTime(0) != 0 || d4.StreamTime(-5) != 0 {
		t.Fatal("non-positive stream should be free")
	}
	// DDR5 should be about twice as fast (paper Sec. 5.2).
	d5 := DDR5_4800()
	ratio := float64(d4.StreamTime(1<<20)) / float64(d5.StreamTime(1<<20))
	if ratio < 1.9 || ratio > 2.1 {
		t.Fatalf("DDR5/DDR4 bandwidth ratio = %v, want ~2", ratio)
	}
}

func TestAccessClassification(t *testing.T) {
	r := NewRank(DDR4_2400())
	addr := int64(0x1234 * addrmap.CachelineSize)

	_, kind := r.Access(0, addr, false, 64)
	if kind != RowMiss {
		t.Fatalf("first access = %v, want miss", kind)
	}
	_, kind = r.Access(r.bus.freeAt, addr+64, false, 64)
	if kind != RowHit {
		t.Fatalf("same-row access = %v, want hit", kind)
	}
	// Same bank, different row: conflict. Rows within the same bank and
	// sub-array are 128KB apart.
	_, kind = r.Access(r.bus.freeAt, addr+addrmap.SameSubarrayPageStride, false, 64)
	if kind != RowConflict {
		t.Fatalf("other-row access = %v, want conflict", kind)
	}
}

func TestAccessLatencies(t *testing.T) {
	tm := DDR4_2400()
	r := NewRank(tm)
	addr := int64(0)

	done, _ := r.Access(0, addr, false, 64)
	wantMiss := tm.TRCD + tm.TCL + tm.TBL
	if done != wantMiss {
		t.Fatalf("row miss latency = %v, want %v", done, wantMiss)
	}

	start := done
	done2, kind := r.Access(start, addr+64, false, 64)
	if kind != RowHit {
		t.Fatal("expected hit")
	}
	if done2 != start+tm.TCL+tm.TBL {
		t.Fatalf("row hit latency = %v, want %v", done2-start, tm.TCL+tm.TBL)
	}
}

// tRC invariant: two activations of the same bank are at least tRC apart.
func TestActivationSpacing(t *testing.T) {
	tm := DDR4_2400()
	r := NewRank(tm)
	a := int64(0)
	b := a + addrmap.SameSubarrayPageStride // same bank, different row

	r.Access(0, a, false, 64)
	firstAct := r.banks[addrmap.DecodeRank(a).Bank].lastAct
	r.Access(0, b, false, 64) // conflict: precharge + activate
	secondAct := r.banks[addrmap.DecodeRank(b).Bank].lastAct
	if secondAct-firstAct < tm.TRC() {
		t.Fatalf("activations %v apart, want >= tRC %v", secondAct-firstAct, tm.TRC())
	}
}

// Property: the data bus never carries two bursts at once — completion
// times of consecutive accesses are strictly increasing by at least the
// burst time.
func TestBusSerialisationProperty(t *testing.T) {
	tm := DDR4_2400()
	f := func(addrs []uint32) bool {
		r := NewRank(tm)
		var prevDone sim.Time = -1
		for _, a := range addrs {
			local := int64(a) &^ (addrmap.CachelineSize - 1)
			done, _ := r.Access(0, local, a%2 == 0, 64)
			if prevDone >= 0 && done < prevDone+tm.TBL {
				return false
			}
			prevDone = done
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestWritesPipelineAtBusRate(t *testing.T) {
	tm := DDR4_2400()
	r := NewRank(tm)
	// Same-row writes (one packet's cachelines) issued back to back must
	// pipeline at tCCD/bus rate, not serialise on write recovery.
	var first, last sim.Time
	for i := int64(0); i < 24; i++ {
		done, _ := r.Access(0, i*64, true, 64)
		if i == 0 {
			first = done
		}
		last = done
	}
	span := last - first
	if span > 24*2*tm.TBL {
		t.Fatalf("24 writes span %v, want ~24*tBL = %v", span, 24*tm.TBL)
	}
}

func TestPrechargeAll(t *testing.T) {
	r := NewRank(DDR4_2400())
	r.Access(0, 0, false, 64)
	if r.OpenRow(0) == -1 {
		t.Fatal("row should be open after access")
	}
	r.PrechargeAll(1000)
	for i := 0; i < addrmap.BanksPerRank; i++ {
		if r.OpenRow(i) != -1 {
			t.Fatalf("bank %d still open after PrechargeAll", i)
		}
	}
	_, kind := r.Access(r.banks[0].readyAt, 0, false, 64)
	if kind != RowMiss {
		t.Fatalf("post-precharge access = %v, want miss", kind)
	}
}

func TestWouldHit(t *testing.T) {
	r := NewRank(DDR4_2400())
	if r.WouldHit(0) {
		t.Fatal("empty rank should not hit")
	}
	r.Access(0, 0, false, 64)
	if !r.WouldHit(64) {
		t.Fatal("same row should hit")
	}
	if r.WouldHit(addrmap.SameSubarrayPageStride) {
		t.Fatal("different row should not hit")
	}
}

func TestStatsAccounting(t *testing.T) {
	r := NewRank(DDR4_2400())
	r.Access(0, 0, false, 64)
	r.Access(0, 64, false, 64)
	r.Access(0, 0, true, 64)
	s := r.Stats()
	if s.Reads != 2 || s.Writes != 1 {
		t.Fatalf("reads/writes = %d/%d", s.Reads, s.Writes)
	}
	if s.Hits != 2 || s.Misses != 1 {
		t.Fatalf("hits/misses = %d/%d", s.Hits, s.Misses)
	}
	if s.Activations != 1 {
		t.Fatalf("activations = %d", s.Activations)
	}
}

func TestCloneModeSelection(t *testing.T) {
	base := int64(0)
	sameSub := base + addrmap.SameSubarrayPageStride
	otherBank := base + addrmap.PageSize*2 // different bank at page interleave
	otherRank := base + addrmap.RankBytes

	if m := CloneModeFor(base, sameSub); m != FPM {
		t.Fatalf("same sub-array mode = %v, want FPM", m)
	}
	if m := CloneModeFor(base, otherBank); m != PSM {
		t.Fatalf("same rank mode = %v, want PSM (bank %d vs %d)",
			m, addrmap.DecodeRank(base).Bank, addrmap.DecodeRank(otherBank).Bank)
	}
	if m := CloneModeFor(base, otherRank); m != GCM {
		t.Fatalf("cross-rank mode = %v, want GCM", m)
	}
}

// Paper Fig. 8 ordering: FPM is the fastest mode and GCM the slowest.
func TestCloneLatencyOrdering(t *testing.T) {
	tm := DDR4_2400()
	ranks := []*Rank{NewRank(tm), NewRank(tm)}
	e := NewCloneEngine(DefaultCloneTiming(), tm, ranks)

	src := int64(0)
	fpm := e.Latency(src, src+addrmap.SameSubarrayPageStride, 4096)
	psm := e.Latency(src, src+2*addrmap.PageSize, 4096)
	gcm := e.Latency(src, src+addrmap.RankBytes, 4096)
	if !(fpm < psm && psm < gcm) {
		t.Fatalf("latency ordering violated: FPM %v, PSM %v, GCM %v", fpm, psm, gcm)
	}
}

func TestCloneRowGranularity(t *testing.T) {
	tm := DDR4_2400()
	e := NewCloneEngine(DefaultCloneTiming(), tm, []*Rank{NewRank(tm)})
	src, dst := int64(0), addrmap.SameSubarrayPageStride
	// A 64B clone costs the same as a 4KB clone: RowClone works on rows.
	if e.Latency(src, dst, 64) != e.Latency(src, dst, 4096) {
		t.Fatal("sub-page clone should cost one page operation")
	}
	if e.Latency(src, dst, 4097) != 2*e.Latency(src, dst, 4096) {
		t.Fatal("4097B clone should cost two page operations")
	}
}

func TestCloneSideEffects(t *testing.T) {
	tm := DDR4_2400()
	rank := NewRank(tm)
	e := NewCloneEngine(DefaultCloneTiming(), tm, []*Rank{rank})
	src, dst := int64(0), addrmap.SameSubarrayPageStride

	done, mode := e.Clone(0, src, dst, 1514)
	if mode != FPM {
		t.Fatalf("mode = %v", mode)
	}
	if done != 90*sim.Nanosecond {
		t.Fatalf("FPM 1514B clone = %v, want 90ns", done)
	}
	// The destination row should now be open (activation side effect).
	if !rank.WouldHit(dst) {
		t.Fatal("clone should leave destination row open")
	}
	if rank.Stats().CloneFPM != 1 {
		t.Fatal("FPM clone not counted")
	}
}

func TestCloneGCMStreams(t *testing.T) {
	tm := DDR4_2400()
	ranks := []*Rank{NewRank(tm), NewRank(tm)}
	e := NewCloneEngine(DefaultCloneTiming(), tm, ranks)
	done, mode := e.Clone(0, 0, addrmap.RankBytes, 4096)
	if mode != GCM {
		t.Fatalf("mode = %v", mode)
	}
	want := DefaultCloneTiming().GCMFixed + tm.StreamTime(2*4096)
	if done != want {
		t.Fatalf("GCM clone = %v, want %v", done, want)
	}
}

func BenchmarkRankAccess(b *testing.B) {
	r := NewRank(DDR4_2400())
	var now sim.Time
	for i := 0; i < b.N; i++ {
		now, _ = r.Access(now, int64(i%1024)*64, i%4 == 0, 64)
	}
}
