// Package dram models DDR DRAM rank timing at bank-state granularity, plus
// the RowClone in-memory copy engine used by NetDIMM (paper Sec. 4.1,
// Fig. 8).
//
// The model tracks, per bank: the open row, the earliest instant the next
// command may issue, and the last activation time (to honour tRC = tRAS +
// tRP). The shared per-rank data bus serialises bursts. This is the same
// abstraction level as the controller model the paper built on (Hansson et
// al. [37]): accesses see row hits, row misses and row conflicts with the
// corresponding tCL / tRCD+tCL / tRP+tRCD+tCL latencies.
package dram

import (
	"fmt"
	"strings"

	"netdimm/internal/addrmap"
	"netdimm/internal/obs"
	"netdimm/internal/sim"
)

// Timing holds the DDR timing parameters the model uses. All values are
// durations.
type Timing struct {
	Name string

	TCK  sim.Time // clock period
	TCL  sim.Time // CAS latency (read command to first data)
	TRCD sim.Time // activate to read/write
	TRP  sim.Time // precharge period
	TRAS sim.Time // activate to precharge
	TBL  sim.Time // burst transfer time for one 64B cacheline
	TWR  sim.Time // write recovery (last data to precharge)

	// BandwidthBytesPerSec is the peak channel bandwidth, used by
	// streaming-transfer helpers.
	BandwidthBytesPerSec float64
}

// TRC is the minimum activate-to-activate delay for one bank.
func (t Timing) TRC() sim.Time { return t.TRAS + t.TRP }

// BurstTime returns the data-bus occupancy for a transfer of n bytes,
// rounded up to whole cachelines.
func (t Timing) BurstTime(bytes int64) sim.Time {
	lines := (bytes + addrmap.CachelineSize - 1) / addrmap.CachelineSize
	if lines < 1 {
		lines = 1
	}
	return sim.Time(lines) * t.TBL
}

// StreamTime returns the time to stream n bytes at peak channel bandwidth,
// the right model for long pipelined transfers (DMA bursts).
func (t Timing) StreamTime(bytes int64) sim.Time {
	if bytes <= 0 {
		return 0
	}
	return sim.Time(float64(bytes) / t.BandwidthBytesPerSec * float64(sim.Second))
}

// DDR4_2400 returns the DDR4-2400 parameter set used for the host channels
// in the paper's Table 1 (CL-RCD-RP 17, tRAS 32 cycles at 1200MHz I/O clock;
// 12.8GB/s nominal per channel, Sec. 3).
func DDR4_2400() Timing {
	tck := sim.Time(833) // ps (1.2GHz command clock)
	return Timing{
		Name:                 "DDR4-2400",
		TCK:                  tck,
		TCL:                  17 * tck,
		TRCD:                 17 * tck,
		TRP:                  17 * tck,
		TRAS:                 39 * tck,
		TBL:                  6 * tck, // 64B burst slot at the sustained 12.8GB/s the paper quotes (Sec. 3)
		TWR:                  18 * tck,
		BandwidthBytesPerSec: 12.8e9,
	}
}

// DDR5_4800 returns a DDR5 parameter set for NetDIMM channels: the paper
// notes a DDR5 channel has roughly twice the DDR4 bandwidth (Sec. 5.2) with
// similar absolute core timing.
func DDR5_4800() Timing {
	tck := sim.Time(417) // ps (2.4GHz command clock)
	return Timing{
		Name:                 "DDR5-4800",
		TCK:                  tck,
		TCL:                  40 * tck,
		TRCD:                 39 * tck,
		TRP:                  39 * tck,
		TRAS:                 76 * tck,
		TBL:                  6 * tck, // 64B burst slot at 2x DDR4 sustained bandwidth (25.6GB/s)
		TWR:                  36 * tck,
		BandwidthBytesPerSec: 25.6e9,
	}
}

// ParseTiming resolves a DRAM name from a system configuration (Table 1's
// "DDR4-2400" string) to its timing set. Matching is case-insensitive and
// accepts the bare generation ("DDR5") as an alias for its only speed grade.
func ParseTiming(name string) (Timing, error) {
	switch strings.ToUpper(strings.TrimSpace(name)) {
	case "DDR4-2400", "DDR4":
		return DDR4_2400(), nil
	case "DDR5-4800", "DDR5":
		return DDR5_4800(), nil
	default:
		return Timing{}, fmt.Errorf("dram: unknown DRAM %q (known: DDR4-2400, DDR5-4800)", name)
	}
}

// AccessKind classifies how an access found its bank.
type AccessKind int

const (
	// RowHit: the target row was already open.
	RowHit AccessKind = iota
	// RowMiss: the bank was precharged; an activate was needed.
	RowMiss
	// RowConflict: another row was open; precharge + activate were needed.
	RowConflict
)

func (k AccessKind) String() string {
	switch k {
	case RowHit:
		return "hit"
	case RowMiss:
		return "miss"
	case RowConflict:
		return "conflict"
	default:
		return fmt.Sprintf("AccessKind(%d)", int(k))
	}
}

// Stats accumulates access statistics for a rank.
type Stats struct {
	Reads, Writes                uint64
	Hits, Misses, Conflicts      uint64
	Activations                  uint64
	BusBusy                      sim.Time // total data-bus occupancy
	CloneFPM, ClonePSM, CloneGCM uint64
}

type bank struct {
	openRow int // global row index, -1 if precharged
	readyAt sim.Time
	lastAct sim.Time
}

// Bus models the channel data bus; ranks sharing a channel share one Bus,
// so their bursts serialise against each other.
type Bus struct {
	freeAt sim.Time
}

// Rank is one DRAM rank: 16 banks behind the channel data bus, decoded
// with the Fig. 9 address layout.
type Rank struct {
	timing Timing
	banks  [addrmap.BanksPerRank]bank
	bus    *Bus
	stats  Stats
	// occ, when attached via Observe, samples bank occupancy per access.
	occ *obs.Series
}

// NewRank returns a rank with all banks precharged and a private bus (use
// ShareBus to co-locate ranks on one channel).
func NewRank(t Timing) *Rank {
	r := &Rank{timing: t, bus: &Bus{}}
	for i := range r.banks {
		r.banks[i].openRow = -1
		r.banks[i].lastAct = -sim.MaxTime / 2
	}
	return r
}

// ShareBus places the rank on the given channel bus.
func (r *Rank) ShareBus(b *Bus) { r.bus = b }

// Observe attaches a bank-occupancy series: every access samples how many
// of the rank's banks are still busy (preparing or bursting) at the
// access's arrival instant. A nil series detaches the sampler.
func (r *Rank) Observe(s *obs.Series) { r.occ = s }

// Stats returns a copy of the accumulated statistics.
func (r *Rank) Stats() Stats { return r.stats }

// Timing returns the rank's timing parameters.
func (r *Rank) Timing() Timing { return r.timing }

// OpenRow reports the open row of a bank, or -1.
func (r *Rank) OpenRow(bankIdx int) int { return r.banks[bankIdx].openRow }

// WouldHit reports whether an access to the rank-local address would be a
// row hit right now; FR-FCFS scheduling in the memory controller uses this.
func (r *Rank) WouldHit(local int64) bool {
	l := addrmap.DecodeRank(local)
	return r.banks[l.Bank].openRow == l.GlobalRow()
}

// Access performs one read or write of up to a row's worth of bytes at the
// rank-local address, starting no earlier than now. It returns the instant
// the data transfer completes and the access classification.
func (r *Rank) Access(now sim.Time, local int64, write bool, bytes int64) (done sim.Time, kind AccessKind) {
	if r.occ != nil {
		var busy int64
		for i := range r.banks {
			if r.banks[i].readyAt > now {
				busy++
			}
		}
		r.occ.Sample(now, busy)
	}
	l := addrmap.DecodeRank(local)
	b := &r.banks[l.Bank]
	t := r.timing
	row := l.GlobalRow()

	start := now
	if b.readyAt > start {
		start = b.readyAt
	}

	switch {
	case b.openRow == row:
		kind = RowHit
		r.stats.Hits++
	case b.openRow == -1:
		kind = RowMiss
		r.stats.Misses++
		// Activate; honour tRC from the previous activation.
		actAt := start
		if min := b.lastAct + t.TRC(); actAt < min {
			actAt = min
		}
		b.lastAct = actAt
		r.stats.Activations++
		start = actAt + t.TRCD
	default:
		kind = RowConflict
		r.stats.Conflicts++
		// Precharge may not occur before tRAS after the activation.
		preAt := start
		if min := b.lastAct + t.TRAS; preAt < min {
			preAt = min
		}
		actAt := preAt + t.TRP
		if min := b.lastAct + t.TRC(); actAt < min {
			actAt = min
		}
		b.lastAct = actAt
		r.stats.Activations++
		start = actAt + t.TRCD
	}
	b.openRow = row

	// Column access: data appears tCL after the column command and the
	// burst occupies the shared data bus.
	dataAt := start + t.TCL
	if dataAt < r.bus.freeAt {
		dataAt = r.bus.freeAt
	}
	burst := t.BurstTime(bytes)
	done = dataAt + burst
	r.bus.freeAt = done
	r.stats.BusBusy += burst

	// Column-to-column spacing (tCCD) equals the burst time, so same-row
	// accesses pipeline at bus rate; write recovery (tWR) gates precharge,
	// not further column commands, and precharge timing is charged on the
	// conflict path via tRAS.
	if write {
		r.stats.Writes++
	} else {
		r.stats.Reads++
	}
	b.readyAt = start + t.TBL
	return done, kind
}

// PrechargeAll closes every bank (e.g. on refresh boundaries in coarse
// models).
func (r *Rank) PrechargeAll(now sim.Time) {
	for i := range r.banks {
		b := &r.banks[i]
		if b.openRow != -1 {
			b.openRow = -1
			if b.readyAt < now+r.timing.TRP {
				b.readyAt = now + r.timing.TRP
			}
		}
	}
}
