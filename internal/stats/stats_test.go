package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"netdimm/internal/sim"
)

func TestBreakdownTotalAndShare(t *testing.T) {
	b := Breakdown{}
	b.Add(TxCopy, 100*sim.Nanosecond)
	b.Add(Wire, 300*sim.Nanosecond)
	b.Add(TxCopy, 100*sim.Nanosecond)
	if b.Total() != 500*sim.Nanosecond {
		t.Fatalf("Total = %v", b.Total())
	}
	if s := b.Share(TxCopy); s != 0.4 {
		t.Fatalf("Share(TxCopy) = %v", s)
	}
	if s := b.Share(RxDMA); s != 0 {
		t.Fatalf("Share(missing) = %v", s)
	}
	if (Breakdown{}).Share(Wire) != 0 {
		t.Fatal("empty breakdown share should be 0")
	}
}

func TestBreakdownPlusScale(t *testing.T) {
	a := Breakdown{TxCopy: 100, Wire: 200}
	b := Breakdown{Wire: 100, RxDMA: 50}
	c := a.Plus(b)
	if c[TxCopy] != 100 || c[Wire] != 300 || c[RxDMA] != 50 {
		t.Fatalf("Plus = %v", c)
	}
	// Plus must not mutate operands.
	if a[Wire] != 200 || b[Wire] != 100 {
		t.Fatal("Plus mutated an operand")
	}
	s := c.Scale(2)
	if s[Wire] != 150 {
		t.Fatalf("Scale = %v", s)
	}
	if len(c.Scale(0)) != 0 {
		t.Fatal("Scale(0) should be empty")
	}
}

func TestBreakdownString(t *testing.T) {
	b := Breakdown{Wire: 300 * sim.Nanosecond, TxFlush: 80 * sim.Nanosecond}
	s := b.String()
	if !strings.Contains(s, "wire=") || !strings.Contains(s, "txFlush=") || !strings.Contains(s, "total=") {
		t.Fatalf("String = %q", s)
	}
}

func TestHistogramPercentiles(t *testing.T) {
	h := &Histogram{}
	for i := 1; i <= 100; i++ {
		h.Observe(sim.Time(i))
	}
	if h.Count() != 100 {
		t.Fatal("count wrong")
	}
	if h.Mean() != 50 { // (1+...+100)/100 = 50.5 -> integer division 50
		t.Fatalf("Mean = %v", h.Mean())
	}
	if p := h.Percentile(50); p < 49 || p > 51 {
		t.Fatalf("P50 = %v", p)
	}
	if p := h.Percentile(99); p < 98 || p > 100 {
		t.Fatalf("P99 = %v", p)
	}
	if h.Min() != 1 || h.Max() != 100 {
		t.Fatalf("min/max = %v/%v", h.Min(), h.Max())
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := &Histogram{}
	if h.Mean() != 0 || h.Percentile(50) != 0 || h.Count() != 0 {
		t.Fatal("empty histogram should report zeros")
	}
}

// Property: merging sharded histograms is equivalent to observing every
// sample in one histogram — same count, sum, and every percentile.
func TestHistogramMergeEquivalence(t *testing.T) {
	f := func(raw []uint16, cut1, cut2 uint8) bool {
		whole := &Histogram{}
		shards := [3]*Histogram{{}, {}, {}}
		for i, v := range raw {
			whole.Observe(sim.Time(v))
			shards[(i+int(cut1)+int(cut2))%3].Observe(sim.Time(v))
		}
		merged := &Histogram{}
		for _, s := range shards {
			merged.Merge(s)
		}
		if merged.Count() != whole.Count() || merged.Mean() != whole.Mean() {
			return false
		}
		for _, p := range []float64{0, 25, 50, 90, 99, 100} {
			if merged.Percentile(p) != whole.Percentile(p) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramMergeEdgeCases(t *testing.T) {
	h := &Histogram{}
	h.Observe(10)
	h.Merge(nil) // nil source is a no-op
	var empty Histogram
	h.Merge(&empty) // empty source is a no-op
	if h.Count() != 1 || h.Mean() != 10 {
		t.Fatalf("merge of nil/empty changed histogram: count=%d mean=%v", h.Count(), h.Mean())
	}
	// Merging after a percentile query (sorted state) must re-sort.
	o := &Histogram{}
	o.Observe(1)
	_ = h.Percentile(50)
	h.Merge(o)
	if h.Percentile(0) != 1 || h.Percentile(100) != 10 || h.Count() != 2 {
		t.Fatalf("merge after sort: min=%v max=%v count=%d",
			h.Percentile(0), h.Percentile(100), h.Count())
	}
}

// Property: percentiles are monotone in p and bounded by min/max.
func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(raw []uint16, a, b uint8) bool {
		if len(raw) == 0 {
			return true
		}
		h := &Histogram{}
		for _, v := range raw {
			h.Observe(sim.Time(v))
		}
		pa, pb := float64(a%101), float64(b%101)
		if pa > pb {
			pa, pb = pb, pa
		}
		va, vb := h.Percentile(pa), h.Percentile(pb)
		return va <= vb && va >= h.Min() && vb <= h.Max()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestReduction(t *testing.T) {
	if r := Reduction(200, 100); r != 0.5 {
		t.Fatalf("Reduction = %v", r)
	}
	if r := Reduction(100, 150); r != -0.5 {
		t.Fatalf("negative Reduction = %v", r)
	}
	if Reduction(0, 5) != 0 {
		t.Fatal("zero-old Reduction should be 0")
	}
}

func TestBreakdownStringEmpty(t *testing.T) {
	// Regression: an all-zero breakdown used to render with a leading
	// space (" total=0") because the total was appended unconditionally
	// with its separator.
	for name, b := range map[string]Breakdown{
		"empty":      {},
		"nil":        nil,
		"zero-comps": {Wire: 0, TxCopy: 0},
	} {
		if got := b.String(); got != "total=0ps" {
			t.Errorf("%s breakdown String = %q, want %q", name, got, "total=0ps")
		}
	}
	// Non-empty stays exactly as before the fix.
	b := Breakdown{TxCopy: 40, Wire: 300}
	if got, want := b.String(), "txCopy=40ps wire=300ps total=340ps"; got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
}

// Property: NaN never reaches the float-to-int rank conversion (whose
// result is platform-defined); infinities clamp like out-of-range p.
func TestPercentileNonFinite(t *testing.T) {
	h := &Histogram{}
	if h.Percentile(math.NaN()) != 0 {
		t.Error("empty histogram, NaN p: want 0")
	}
	f := func(raw []uint16) bool {
		h := &Histogram{}
		for _, v := range raw {
			h.Observe(sim.Time(v))
		}
		if h.Percentile(math.NaN()) != 0 {
			return false
		}
		return h.Percentile(math.Inf(-1)) == h.Min() && h.Percentile(math.Inf(1)) == h.Max()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: Scale truncates per component, so the scaled total undershoots
// the exact quotient by at most one unit per nonzero component (and never
// overshoots).
func TestScaleTruncationBound(t *testing.T) {
	f := func(txCopy, wire, rxDMA uint16, nRaw uint8) bool {
		n := int64(nRaw%30) + 1
		b := Breakdown{TxCopy: sim.Time(txCopy), Wire: sim.Time(wire), RxDMA: sim.Time(rxDMA)}
		got := b.Scale(n).Total()
		exact := b.Total() / sim.Time(n)
		return got <= exact && exact-got <= sim.Time(len(b))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestTableRendering(t *testing.T) {
	tb := &Table{Header: []string{"size", "latency"}}
	tb.AddRow("64", "1.13us")
	tb.AddRow("1514", "2.00us")
	s := tb.String()
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table lines = %d:\n%s", len(lines), s)
	}
	if !strings.HasPrefix(lines[0], "size") || !strings.Contains(lines[1], "---") {
		t.Fatalf("table header wrong:\n%s", s)
	}
}

func TestTableRaggedRows(t *testing.T) {
	// Regression: a row wider than the header used to panic String() with
	// an index out of range, because column widths were sized to the
	// header only.
	tb := &Table{Header: []string{"arch", "p99"}}
	tb.AddRow("dNIC", "9.1us", "saturated") // wider than header
	tb.AddRow("iNIC")                       // narrower than header
	tb.AddRow("NetDIMM", "2.6us")
	s := tb.String()
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("table lines = %d:\n%s", len(lines), s)
	}
	if !strings.Contains(lines[2], "saturated") {
		t.Errorf("wide row lost its extra cell:\n%s", s)
	}
	// The extra column must be padded like any other so the table stays
	// rectangular in the separator line.
	if got, want := len(lines[1]), len("NetDIMM")+2+len("9.1us")+2+len("saturated"); got != want {
		t.Errorf("separator width %d, want %d:\n%s", got, want, s)
	}
	// A headerless table with rows must still render.
	empty := &Table{}
	empty.AddRow("a", "bb")
	if out := empty.String(); !strings.Contains(out, "bb") {
		t.Errorf("headerless table String = %q", out)
	}
}

func TestTableMarkdown(t *testing.T) {
	tb := &Table{Header: []string{"a", "b"}}
	tb.AddRow("1", "x|y")
	tb.AddRow("2") // ragged short row pads out
	got := tb.Markdown()
	want := "| a | b |\n| --- | --- |\n| 1 | x\\|y |\n| 2 |  |\n"
	if got != want {
		t.Fatalf("Markdown:\ngot  %q\nwant %q", got, want)
	}
}

// TestTableMarkdownEscapesNewlines pins the cell-escaping contract: a cell
// holding newlines (any flavour) must render as one markdown table row —
// a raw newline would end the row mid-cell and corrupt every row after it.
func TestTableMarkdownEscapesNewlines(t *testing.T) {
	tb := &Table{Header: []string{"scenario", "verdict"}}
	tb.AddRow("multi\nline", "crlf\r\nhere")
	tb.AddRow("bare\rcr", "mix|ed\npipe")
	got := tb.Markdown()
	want := "| scenario | verdict |\n| --- | --- |\n" +
		"| multi<br>line | crlf<br>here |\n" +
		"| bare<br>cr | mix\\|ed<br>pipe |\n"
	if got != want {
		t.Fatalf("Markdown:\ngot  %q\nwant %q", got, want)
	}
	// Structural check: every rendered line has the same column count.
	for i, line := range strings.Split(strings.TrimSuffix(got, "\n"), "\n") {
		if n := strings.Count(line, "|") - strings.Count(line, `\|`); n != 3 {
			t.Errorf("line %d has %d unescaped pipes, want 3: %q", i, n, line)
		}
	}
}
