package stats

import (
	"strings"
	"testing"
	"testing/quick"

	"netdimm/internal/sim"
)

func TestBreakdownTotalAndShare(t *testing.T) {
	b := Breakdown{}
	b.Add(TxCopy, 100*sim.Nanosecond)
	b.Add(Wire, 300*sim.Nanosecond)
	b.Add(TxCopy, 100*sim.Nanosecond)
	if b.Total() != 500*sim.Nanosecond {
		t.Fatalf("Total = %v", b.Total())
	}
	if s := b.Share(TxCopy); s != 0.4 {
		t.Fatalf("Share(TxCopy) = %v", s)
	}
	if s := b.Share(RxDMA); s != 0 {
		t.Fatalf("Share(missing) = %v", s)
	}
	if (Breakdown{}).Share(Wire) != 0 {
		t.Fatal("empty breakdown share should be 0")
	}
}

func TestBreakdownPlusScale(t *testing.T) {
	a := Breakdown{TxCopy: 100, Wire: 200}
	b := Breakdown{Wire: 100, RxDMA: 50}
	c := a.Plus(b)
	if c[TxCopy] != 100 || c[Wire] != 300 || c[RxDMA] != 50 {
		t.Fatalf("Plus = %v", c)
	}
	// Plus must not mutate operands.
	if a[Wire] != 200 || b[Wire] != 100 {
		t.Fatal("Plus mutated an operand")
	}
	s := c.Scale(2)
	if s[Wire] != 150 {
		t.Fatalf("Scale = %v", s)
	}
	if len(c.Scale(0)) != 0 {
		t.Fatal("Scale(0) should be empty")
	}
}

func TestBreakdownString(t *testing.T) {
	b := Breakdown{Wire: 300 * sim.Nanosecond, TxFlush: 80 * sim.Nanosecond}
	s := b.String()
	if !strings.Contains(s, "wire=") || !strings.Contains(s, "txFlush=") || !strings.Contains(s, "total=") {
		t.Fatalf("String = %q", s)
	}
}

func TestHistogramPercentiles(t *testing.T) {
	h := &Histogram{}
	for i := 1; i <= 100; i++ {
		h.Observe(sim.Time(i))
	}
	if h.Count() != 100 {
		t.Fatal("count wrong")
	}
	if h.Mean() != 50 { // (1+...+100)/100 = 50.5 -> integer division 50
		t.Fatalf("Mean = %v", h.Mean())
	}
	if p := h.Percentile(50); p < 49 || p > 51 {
		t.Fatalf("P50 = %v", p)
	}
	if p := h.Percentile(99); p < 98 || p > 100 {
		t.Fatalf("P99 = %v", p)
	}
	if h.Min() != 1 || h.Max() != 100 {
		t.Fatalf("min/max = %v/%v", h.Min(), h.Max())
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := &Histogram{}
	if h.Mean() != 0 || h.Percentile(50) != 0 || h.Count() != 0 {
		t.Fatal("empty histogram should report zeros")
	}
}

// Property: merging sharded histograms is equivalent to observing every
// sample in one histogram — same count, sum, and every percentile.
func TestHistogramMergeEquivalence(t *testing.T) {
	f := func(raw []uint16, cut1, cut2 uint8) bool {
		whole := &Histogram{}
		shards := [3]*Histogram{{}, {}, {}}
		for i, v := range raw {
			whole.Observe(sim.Time(v))
			shards[(i+int(cut1)+int(cut2))%3].Observe(sim.Time(v))
		}
		merged := &Histogram{}
		for _, s := range shards {
			merged.Merge(s)
		}
		if merged.Count() != whole.Count() || merged.Mean() != whole.Mean() {
			return false
		}
		for _, p := range []float64{0, 25, 50, 90, 99, 100} {
			if merged.Percentile(p) != whole.Percentile(p) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramMergeEdgeCases(t *testing.T) {
	h := &Histogram{}
	h.Observe(10)
	h.Merge(nil) // nil source is a no-op
	var empty Histogram
	h.Merge(&empty) // empty source is a no-op
	if h.Count() != 1 || h.Mean() != 10 {
		t.Fatalf("merge of nil/empty changed histogram: count=%d mean=%v", h.Count(), h.Mean())
	}
	// Merging after a percentile query (sorted state) must re-sort.
	o := &Histogram{}
	o.Observe(1)
	_ = h.Percentile(50)
	h.Merge(o)
	if h.Percentile(0) != 1 || h.Percentile(100) != 10 || h.Count() != 2 {
		t.Fatalf("merge after sort: min=%v max=%v count=%d",
			h.Percentile(0), h.Percentile(100), h.Count())
	}
}

// Property: percentiles are monotone in p and bounded by min/max.
func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(raw []uint16, a, b uint8) bool {
		if len(raw) == 0 {
			return true
		}
		h := &Histogram{}
		for _, v := range raw {
			h.Observe(sim.Time(v))
		}
		pa, pb := float64(a%101), float64(b%101)
		if pa > pb {
			pa, pb = pb, pa
		}
		va, vb := h.Percentile(pa), h.Percentile(pb)
		return va <= vb && va >= h.Min() && vb <= h.Max()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestReduction(t *testing.T) {
	if r := Reduction(200, 100); r != 0.5 {
		t.Fatalf("Reduction = %v", r)
	}
	if r := Reduction(100, 150); r != -0.5 {
		t.Fatalf("negative Reduction = %v", r)
	}
	if Reduction(0, 5) != 0 {
		t.Fatal("zero-old Reduction should be 0")
	}
}

func TestTableRendering(t *testing.T) {
	tb := &Table{Header: []string{"size", "latency"}}
	tb.AddRow("64", "1.13us")
	tb.AddRow("1514", "2.00us")
	s := tb.String()
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table lines = %d:\n%s", len(lines), s)
	}
	if !strings.HasPrefix(lines[0], "size") || !strings.Contains(lines[1], "---") {
		t.Fatalf("table header wrong:\n%s", s)
	}
}
