package stats

import (
	"strings"
)

// CSV renders a header and rows as an RFC-4180-ish CSV string: fields
// containing commas, quotes or newlines are quoted, quotes doubled. The
// experiment CLIs use it to emit plot-ready series for every figure.
func CSV(header []string, rows [][]string) string {
	var sb strings.Builder
	writeRecord(&sb, header)
	for _, r := range rows {
		writeRecord(&sb, r)
	}
	return sb.String()
}

func writeRecord(sb *strings.Builder, fields []string) {
	for i, f := range fields {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(csvEscape(f))
	}
	sb.WriteByte('\n')
}

func csvEscape(f string) string {
	if !strings.ContainsAny(f, ",\"\n\r") {
		return f
	}
	return `"` + strings.ReplaceAll(f, `"`, `""`) + `"`
}

// CSVTable renders a Table as CSV.
func (t *Table) CSV() string { return CSV(t.Header, t.Rows) }
