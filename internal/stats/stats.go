// Package stats provides the measurement types the experiments report:
// per-packet latency breakdowns matching the paper's Fig. 11 components,
// histograms with percentiles, and small rendering helpers for the CLI and
// EXPERIMENTS.md tables.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"netdimm/internal/sim"
)

// Component is one slice of the one-way network latency (paper Fig. 11).
type Component string

// The breakdown components of Fig. 11. txCopy/rxCopy are driver memory
// copies and allocation; txDMA/rxDMA are NIC-side data movement; wire is
// the physical layer; IOReg is CPU<->NIC register access; txFlush and
// rxInvalidate are the NetDIMM driver's cache-coherency operations.
const (
	TxCopy       Component = "txCopy"
	RxCopy       Component = "rxCopy"
	TxDMA        Component = "txDMA"
	RxDMA        Component = "rxDMA"
	Wire         Component = "wire"
	IOReg        Component = "I/O reg acc"
	TxFlush      Component = "txFlush"
	RxInvalidate Component = "rxInvalidate"
)

// Components lists every component in presentation order.
var Components = []Component{TxCopy, RxCopy, TxDMA, RxDMA, Wire, IOReg, TxFlush, RxInvalidate}

// Breakdown is a per-packet latency decomposition.
type Breakdown map[Component]sim.Time

// Add accumulates d into component c.
func (b Breakdown) Add(c Component, d sim.Time) { b[c] += d }

// Total returns the summed latency.
func (b Breakdown) Total() sim.Time {
	var t sim.Time
	for _, v := range b {
		t += v
	}
	return t
}

// Share returns component c's fraction of the total, in [0,1].
func (b Breakdown) Share(c Component) float64 {
	t := b.Total()
	if t == 0 {
		return 0
	}
	return float64(b[c]) / float64(t)
}

// Plus returns the component-wise sum of two breakdowns.
func (b Breakdown) Plus(o Breakdown) Breakdown {
	out := Breakdown{}
	for c, v := range b {
		out[c] += v
	}
	for c, v := range o {
		out[c] += v
	}
	return out
}

// Scale returns the breakdown divided by n (for averaging). Each component
// divides independently with truncation, so Scale(n).Total() can undershoot
// Total()/n by up to one unit per nonzero component.
func (b Breakdown) Scale(n int64) Breakdown {
	out := Breakdown{}
	if n == 0 {
		return out
	}
	for c, v := range b {
		out[c] = v / sim.Time(n)
	}
	return out
}

// String renders the breakdown compactly in presentation order.
func (b Breakdown) String() string {
	var sb strings.Builder
	for _, c := range Components {
		v, ok := b[c]
		if !ok || v == 0 {
			continue
		}
		if sb.Len() > 0 {
			sb.WriteString(" ")
		}
		fmt.Fprintf(&sb, "%s=%v", c, v)
	}
	if sb.Len() > 0 {
		sb.WriteString(" ")
	}
	fmt.Fprintf(&sb, "total=%v", b.Total())
	return sb.String()
}

// Histogram collects latency samples for percentile reporting.
type Histogram struct {
	samples []sim.Time
	sorted  bool
	sum     sim.Time
}

// Observe records one sample.
func (h *Histogram) Observe(v sim.Time) {
	h.samples = append(h.samples, v)
	h.sum += v
	h.sorted = false
}

// Merge folds every sample of o into h (o is unchanged). Percentiles over
// the merged histogram equal percentiles over the union of the two sample
// sets — the property sweep runners rely on when aggregating per-cell
// histograms.
func (h *Histogram) Merge(o *Histogram) {
	if o == nil || len(o.samples) == 0 {
		return
	}
	h.samples = append(h.samples, o.samples...)
	h.sum += o.sum
	h.sorted = false
}

// Count returns the number of samples.
func (h *Histogram) Count() int { return len(h.samples) }

// Mean returns the average sample, or 0 when empty.
func (h *Histogram) Mean() sim.Time {
	if len(h.samples) == 0 {
		return 0
	}
	return h.sum / sim.Time(len(h.samples))
}

// Percentile returns the p-th percentile (0 < p <= 100) by
// nearest-rank, or 0 when empty. Out-of-range p clamps to the extremes
// (p <= 0 returns the minimum, p >= 100 the maximum, -Inf/+Inf included);
// NaN p returns 0 rather than leaving the rank to the platform-defined
// float-to-int conversion.
func (h *Histogram) Percentile(p float64) sim.Time {
	if len(h.samples) == 0 || math.IsNaN(p) {
		return 0
	}
	if !h.sorted {
		sort.Slice(h.samples, func(i, j int) bool { return h.samples[i] < h.samples[j] })
		h.sorted = true
	}
	if p <= 0 {
		return h.samples[0]
	}
	if p >= 100 {
		return h.samples[len(h.samples)-1]
	}
	rank := int(p/100*float64(len(h.samples))+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(h.samples) {
		rank = len(h.samples) - 1
	}
	return h.samples[rank]
}

// Min returns the smallest sample.
func (h *Histogram) Min() sim.Time { return h.Percentile(0) }

// Max returns the largest sample.
func (h *Histogram) Max() sim.Time { return h.Percentile(100) }

// Reduction returns the relative improvement of new over old as a
// fraction: (old-new)/old. Positive means new is faster.
func Reduction(old, new sim.Time) float64 {
	if old == 0 {
		return 0
	}
	return float64(old-new) / float64(old)
}

// Table is a simple fixed-column text table for experiment output.
type Table struct {
	Header []string
	Rows   [][]string
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table with aligned columns. Ragged rows are fine:
// widths cover the widest row, and rows shorter or longer than the header
// render without padding surprises.
func (t *Table) String() string {
	cols := len(t.Header)
	for _, row := range t.Rows {
		if len(row) > cols {
			cols = len(row)
		}
	}
	widths := make([]int, cols)
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteString("\n")
	}
	writeRow(t.Header)
	for i, w := range widths {
		if i > 0 {
			sb.WriteString("  ")
		}
		sb.WriteString(strings.Repeat("-", w))
	}
	sb.WriteString("\n")
	for _, row := range t.Rows {
		writeRow(row)
	}
	return sb.String()
}

// markdownCellEscaper rewrites the characters that break a markdown
// table's structure: pipes would open a new column and raw newlines would
// end the row mid-cell, so pipes are backslash-escaped and line breaks
// become <br> (the only in-cell line break GitHub-flavored markdown
// renders).
var markdownCellEscaper = strings.NewReplacer(
	"|", `\|`,
	"\r\n", "<br>",
	"\n", "<br>",
	"\r", "<br>",
)

// Markdown renders the table as a GitHub-flavored markdown table. Pipe and
// newline characters in cells are escaped (a scenario name containing
// either would otherwise corrupt every row after it), and ragged rows are
// padded (or truncated rows simply end early) against the widest row,
// mirroring String's tolerance.
func (t *Table) Markdown() string {
	cols := len(t.Header)
	for _, row := range t.Rows {
		if len(row) > cols {
			cols = len(row)
		}
	}
	var sb strings.Builder
	writeRow := func(cells []string) {
		sb.WriteString("|")
		for i := 0; i < cols; i++ {
			c := ""
			if i < len(cells) {
				c = markdownCellEscaper.Replace(cells[i])
			}
			sb.WriteString(" " + c + " |")
		}
		sb.WriteString("\n")
	}
	writeRow(t.Header)
	sb.WriteString("|")
	for i := 0; i < cols; i++ {
		sb.WriteString(" --- |")
	}
	sb.WriteString("\n")
	for _, row := range t.Rows {
		writeRow(row)
	}
	return sb.String()
}
