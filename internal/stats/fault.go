package stats

import (
	"fmt"
	"strings"
)

// FaultCounters tallies injected faults and the recovery work they caused
// over one run. The fault injector increments the injection counters; the
// recovery engines (NIC retransmitter, NVDIMM-P async reader) increment the
// recovery ones, so a row of experiment output can report both sides of
// every fault.
type FaultCounters struct {
	// FramesDropped counts frames lost on a link traversal.
	FramesDropped uint64
	// FramesCorrupted counts frames discarded by the receiver's FCS check.
	FramesCorrupted uint64
	// PortDrops counts injected switch-port tail drops.
	PortDrops uint64
	// Retransmits counts NIC retransmission attempts.
	Retransmits uint64
	// DeliveryFailures counts frames abandoned after the retry cap.
	DeliveryFailures uint64
	// MemTimeouts counts NVDIMM-P transactions whose RDY was lost.
	MemTimeouts uint64
	// MemRetries counts memory transactions re-issued after a timeout.
	MemRetries uint64
	// MemFailures counts memory transactions abandoned after the retry cap.
	MemFailures uint64
}

// Merge accumulates o into c.
func (c *FaultCounters) Merge(o FaultCounters) {
	c.FramesDropped += o.FramesDropped
	c.FramesCorrupted += o.FramesCorrupted
	c.PortDrops += o.PortDrops
	c.Retransmits += o.Retransmits
	c.DeliveryFailures += o.DeliveryFailures
	c.MemTimeouts += o.MemTimeouts
	c.MemRetries += o.MemRetries
	c.MemFailures += o.MemFailures
}

// Injected returns the total number of injected faults.
func (c FaultCounters) Injected() uint64 {
	return c.FramesDropped + c.FramesCorrupted + c.PortDrops + c.MemTimeouts
}

// Any reports whether any counter is nonzero.
func (c FaultCounters) Any() bool { return c != FaultCounters{} }

// String renders the nonzero counters compactly.
func (c FaultCounters) String() string {
	if !c.Any() {
		return "no faults"
	}
	var parts []string
	add := func(name string, v uint64) {
		if v > 0 {
			parts = append(parts, fmt.Sprintf("%s=%d", name, v))
		}
	}
	add("dropped", c.FramesDropped)
	add("corrupted", c.FramesCorrupted)
	add("portDrops", c.PortDrops)
	add("retransmits", c.Retransmits)
	add("deliveryFailures", c.DeliveryFailures)
	add("memTimeouts", c.MemTimeouts)
	add("memRetries", c.MemRetries)
	add("memFailures", c.MemFailures)
	return strings.Join(parts, " ")
}
