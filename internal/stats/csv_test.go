package stats

import (
	"strings"
	"testing"
)

func TestCSVBasic(t *testing.T) {
	got := CSV([]string{"a", "b"}, [][]string{{"1", "2"}, {"3", "4"}})
	want := "a,b\n1,2\n3,4\n"
	if got != want {
		t.Fatalf("CSV = %q", got)
	}
}

func TestCSVEscaping(t *testing.T) {
	got := CSV([]string{"x"}, [][]string{
		{`plain`},
		{`has,comma`},
		{`has"quote`},
		{"has\nnewline"},
	})
	lines := strings.SplitN(got, "\n", 3)
	if lines[1] != "plain" {
		t.Fatalf("plain field quoted: %q", lines[1])
	}
	if !strings.Contains(got, `"has,comma"`) {
		t.Fatal("comma field not quoted")
	}
	if !strings.Contains(got, `"has""quote"`) {
		t.Fatal("quote not doubled")
	}
	if !strings.Contains(got, "\"has\nnewline\"") {
		t.Fatal("newline field not quoted")
	}
}

func TestTableCSV(t *testing.T) {
	tb := &Table{Header: []string{"size", "ns"}}
	tb.AddRow("64", "1370")
	if got := tb.CSV(); got != "size,ns\n64,1370\n" {
		t.Fatalf("Table.CSV = %q", got)
	}
}
