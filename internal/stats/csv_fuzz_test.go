package stats

import (
	"encoding/csv"
	"strings"
	"testing"
)

// FuzzCSV checks the escaping against the standard library's reader: any
// two-field record we emit must parse back to the original values. Two
// fields per record keep an all-empty record from reading as a skipped
// blank line, and encoding/csv normalises \r\n inside quoted fields to \n,
// so the expectation does the same.
func FuzzCSV(f *testing.F) {
	f.Add("plain", "value")
	f.Add("comma,inside", `quote"inside`)
	f.Add("new\nline", "carriage\rreturn")
	f.Add("crlf\r\npair", "")
	f.Add(`""`, "trailing\r")
	f.Fuzz(func(t *testing.T, a, b string) {
		out := CSV([]string{"c1", "c2"}, [][]string{{a, b}})
		r := csv.NewReader(strings.NewReader(out))
		r.FieldsPerRecord = 2
		records, err := r.ReadAll()
		if err != nil {
			t.Fatalf("emitted CSV unparsable: %v\ninput: %q %q\noutput: %q", err, a, b, out)
		}
		if len(records) != 2 {
			t.Fatalf("got %d records, want header + 1 row\noutput: %q", len(records), out)
		}
		norm := func(s string) string { return strings.ReplaceAll(s, "\r\n", "\n") }
		if records[1][0] != norm(a) || records[1][1] != norm(b) {
			t.Fatalf("roundtrip mismatch: wrote (%q, %q), read (%q, %q)",
				a, b, records[1][0], records[1][1])
		}
	})
}
