package campaign

import (
	"strings"
	"testing"
	"time"
)

// testSchemas is a minimal family registry for grid validation tests.
func testSchemas() map[string]Schema {
	return map[string]Schema{
		"fig11":     {Header: []string{"a", "b"}, MinRows: 1},
		"failsweep": {Header: []string{"a", "b"}, MinRows: 1},
	}
}

func TestReadGridRejectsUnknownFields(t *testing.T) {
	_, err := ReadGrid(strings.NewReader(`{"Experiments":[{"Experiment":"fig11","Pakets":5}]}`))
	if err == nil || !strings.Contains(err.Error(), "Pakets") {
		t.Fatalf("want unknown-field error naming Pakets, got %v", err)
	}
}

func TestGridValidate(t *testing.T) {
	cases := []struct {
		name string
		grid Grid
		want string // substring of the error, "" = valid
	}{
		{"empty", Grid{}, "no experiments"},
		{"minimal ok", Grid{Experiments: []Experiment{{Experiment: "fig11"}}}, ""},
		{"unknown family", Grid{Experiments: []Experiment{{Experiment: "fig99"}}}, `unknown experiment family "fig99"`},
		{"missing family", Grid{Experiments: []Experiment{{}}}, "missing Experiment family"},
		{"negative repeats", Grid{Repeats: -1, Experiments: []Experiment{{Experiment: "fig11"}}}, "Repeats -1"},
		{"negative parallelism", Grid{Parallelism: -2, Experiments: []Experiment{{Experiment: "fig11"}}}, "Parallelism -2"},
		{"negative packets", Grid{Experiments: []Experiment{{Experiment: "fig11", Packets: -5}}}, "non-negative"},
		{"bad size", Grid{Experiments: []Experiment{{Experiment: "fig11", Sizes: []int{0}}}}, "packet size 0"},
		{"bad rate", Grid{Experiments: []Experiment{{Experiment: "fig11", Rates: []float64{-0.1}}}}, "rate -0.1"},
		{"bad rack", Grid{Experiments: []Experiment{{Experiment: "fig11", Racks: []int{0}}}}, "rack count 0"},
		{"bad outage", Grid{Experiments: []Experiment{{Experiment: "failsweep", Outages: []string{"5parsecs"}}}}, `bad outage duration "5parsecs"`},
		{"zero outage ok", Grid{Experiments: []Experiment{{Experiment: "failsweep", Outages: []string{"0", "20us"}}}}, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.grid.Validate(testSchemas())
			if tc.want == "" {
				if err != nil {
					t.Fatalf("want valid, got %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("want error containing %q, got %v", tc.want, err)
			}
		})
	}
}

func TestValidateUnknownFamilyListsKnown(t *testing.T) {
	g := Grid{Experiments: []Experiment{{Experiment: "nope"}}}
	err := g.Validate(testSchemas())
	if err == nil || !strings.Contains(err.Error(), "failsweep, fig11") {
		t.Fatalf("want sorted family list in error, got %v", err)
	}
}

func TestPlanSeedsAndNames(t *testing.T) {
	g := Grid{
		Seed:    100,
		Repeats: 2,
		Experiments: []Experiment{
			{Experiment: "fig11"},
			{Experiment: "failsweep", Scenario: "scenarios/clos-2x4.json", Outages: []string{"0", "20us"}},
			{Experiment: "fig11", Seed: 7, Repeats: 1},
		},
	}
	cells, err := g.Plan()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 5 {
		t.Fatalf("want 5 cells (2+2+1), got %d", len(cells))
	}
	// Seed contract: base + 1000*rowIndex + repeat (row Seed overrides base).
	wantSeeds := []uint64{100, 101, 1100, 1101, 2007}
	wantNames := []string{
		"fig11-table1-r0", "fig11-table1-r1",
		"failsweep-clos-2x4-r0", "failsweep-clos-2x4-r1",
		"fig11-table1-x2-r0", // row 2 collides with row 0's stem
	}
	for i, c := range cells {
		if c.Seed != wantSeeds[i] {
			t.Errorf("cell %d seed = %d, want %d", i, c.Seed, wantSeeds[i])
		}
		if c.Name != wantNames[i] {
			t.Errorf("cell %d name = %q, want %q", i, c.Name, wantNames[i])
		}
		if c.Index != i {
			t.Errorf("cell %d Index = %d", i, c.Index)
		}
	}
	if cells[2].Outages[1] != 20*time.Microsecond {
		t.Errorf("outage parse: got %v, want 20µs", cells[2].Outages[1])
	}
}

func TestPlanDefaults(t *testing.T) {
	g := Grid{Experiments: []Experiment{{Experiment: "fig11"}}}
	cells, err := g.Plan()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 1 {
		t.Fatalf("want 1 cell, got %d", len(cells))
	}
	if cells[0].Seed != 3 {
		t.Errorf("default base seed: got %d, want 3 (the CLI default)", cells[0].Seed)
	}
}

func TestScenarioSlug(t *testing.T) {
	cases := map[string]string{
		"":                         "table1",
		"ddr5":                     "ddr5",
		"scenarios/clos-2x4.json":  "clos-2x4",
		"My Scenario.json":         "my-scenario",
		"UPPER_case-ok.json":       "upper_case-ok",
		"scenarios/weird..name.js": "weird--name",
	}
	for in, want := range cases {
		if got := scenarioSlug(in); got != want {
			t.Errorf("scenarioSlug(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestValidateCSV(t *testing.T) {
	schema := Schema{Header: []string{"a", "b"}, MinRows: 2}
	ok := "a,b\n1,2\n3,4\n"
	if n, err := ValidateCSV(ok, schema, 0); err != nil || n != 2 {
		t.Fatalf("valid doc: rows=%d err=%v", n, err)
	}
	if _, err := ValidateCSV(ok, schema, 3); err == nil || !strings.Contains(err.Error(), "exactly 3") {
		t.Fatalf("want exact-row mismatch, got %v", err)
	}
	if _, err := ValidateCSV("", schema, 0); err == nil || !strings.Contains(err.Error(), "empty CSV") {
		t.Fatalf("want empty-CSV error, got %v", err)
	}
	if _, err := ValidateCSV("a,c\n1,2\n3,4\n", schema, 0); err == nil || !strings.Contains(err.Error(), `column 1 is "c"`) {
		t.Fatalf("want header mismatch, got %v", err)
	}
	if _, err := ValidateCSV("a,b\n1,2\n", schema, 0); err == nil || !strings.Contains(err.Error(), "at least 2") {
		t.Fatalf("want min-rows error, got %v", err)
	}
	if _, err := ValidateCSV("a,b\n1,2,3\n", schema, 0); err == nil {
		t.Fatal("want ragged-row error, got nil")
	}
}
