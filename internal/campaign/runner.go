package campaign

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"netdimm/internal/experiments"
	"netdimm/internal/stats"
)

// Result is what an Executor returns for one cell: the cell's CSV
// document, the exact data-row count the binding expects the CSV to have
// (0 when only the schema lower bound applies), the optional metrics
// registry CSV, and the SHA-256 of the cell's resolved configuration.
type Result struct {
	CSV        string
	WantRows   int
	MetricsCSV string
	TraceJSON  string
	ConfigHash string
}

// Executor runs one planned cell to completion. Executors must be safe
// for concurrent calls on distinct cells — the runner fans cells out
// exactly like an experiment sweep fans out its grid points.
type Executor func(Cell) (Result, error)

// Runner executes a campaign grid to completion. Zero-value fields pick
// sensible defaults; Grid, Schemas and Exec are required.
type Runner struct {
	// Grid is the validated campaign to run.
	Grid Grid
	// OutRoot is the directory the timestamped campaign directory is
	// created under (default "campaigns").
	OutRoot string
	// Stamp overrides the directory timestamp (default: UTC now as
	// 20060102T150405Z). On collision a -2, -3, ... suffix is appended,
	// so two campaigns in one second never overwrite each other.
	Stamp string
	// Schemas is the per-family CSV contract registry.
	Schemas map[string]Schema
	// Exec runs one cell.
	Exec Executor
	// GitRevision is recorded in the manifest ("" omits it).
	GitRevision string
	// GridPath, when set, is recorded in the manifest along with the grid
	// file's SHA-256.
	GridPath string
	// Log mirrors the run log (e.g. to os.Stderr); nil discards it. The
	// run.log file in the output directory is always written.
	Log io.Writer
}

// RunReport is what Run returns on top of the on-disk artifacts.
type RunReport struct {
	// Dir is the created campaign directory.
	Dir string
	// Manifest is the written manifest.
	Manifest Manifest
	// Summary is the grouped per-family summary (also written as
	// summary.txt).
	Summary string
	// Failed counts cells that errored or failed CSV validation.
	Failed int
}

// Run plans the grid, executes every cell, validates every CSV, writes
// the output directory and returns the report. Cell failures do not stop
// the campaign: every cell runs, failures are recorded in the manifest and
// summary, and Run returns an error naming the first failure so callers
// exit non-zero.
func (r *Runner) Run() (*RunReport, error) {
	cells, err := r.Grid.Plan()
	if err != nil {
		return nil, err
	}
	dir, stamp, err := r.makeDir()
	if err != nil {
		return nil, err
	}
	if err := os.MkdirAll(filepath.Join(dir, "csv"), 0o755); err != nil {
		return nil, fmt.Errorf("campaign: %w", err)
	}
	logFile, err := os.Create(filepath.Join(dir, "run.log"))
	if err != nil {
		return nil, fmt.Errorf("campaign: %w", err)
	}
	defer logFile.Close()
	log := &runLog{file: logFile, mirror: r.Log}

	name := r.Grid.Name
	if name == "" {
		name = "campaign"
	}
	host := CurrentHost()
	log.printf("campaign %s: %d cells, parallelism %d, %s/%s, %s, git %s",
		name, len(cells), r.Grid.Parallelism, host.GOOS, host.GOARCH, host.GoVersion, orDash(r.GitRevision))

	results := make([]Result, len(cells))
	errs := make([]error, len(cells))
	rows := make([]int, len(cells))
	walls := make([]float64, len(cells))
	experiments.ForEachCell(len(cells), r.Grid.Parallelism, func(i int) {
		c := cells[i]
		t0 := time.Now()
		res, err := r.Exec(c)
		if err == nil {
			schema, ok := r.Schemas[c.Experiment]
			if !ok {
				err = fmt.Errorf("no schema registered for family %q", c.Experiment)
			} else {
				rows[i], err = ValidateCSV(res.CSV, schema, res.WantRows)
			}
		}
		results[i], errs[i] = res, err
		walls[i] = float64(time.Since(t0).Nanoseconds()) / 1e6
		if err != nil {
			log.printf("cell %s: FAILED after %.1fms: %v", c.Name, walls[i], err)
		} else {
			log.printf("cell %s: ok (%d rows, %.1fms)", c.Name, rows[i], walls[i])
		}
	})

	man := Manifest{
		Campaign:    name,
		Stamp:       stamp,
		CreatedUTC:  time.Now().UTC().Format(time.RFC3339),
		Host:        host,
		GitRevision: r.GitRevision,
		GridPath:    r.GridPath,
		Parallelism: r.Grid.Parallelism,
	}
	if r.GridPath != "" {
		man.GridSHA256 = fileSHA256(r.GridPath)
	}
	failed := 0
	for i, c := range cells {
		rec := CellRecord{
			Name:       c.Name,
			Experiment: c.Experiment,
			Scenario:   c.Scenario,
			Repeat:     c.Repeat,
			Seed:       c.Seed,
			Packets:    c.Packets,
			ConfigHash: results[i].ConfigHash,
			Rows:       rows[i],
			WallMs:     walls[i],
			Status:     "ok",
		}
		if errs[i] != nil {
			rec.Status = errs[i].Error()
			failed++
			man.Cells = append(man.Cells, rec)
			continue
		}
		rec.CSV = filepath.Join("csv", c.Name+".csv")
		if err := os.WriteFile(filepath.Join(dir, rec.CSV), []byte(results[i].CSV), 0o644); err != nil {
			return nil, fmt.Errorf("campaign: %w", err)
		}
		if results[i].MetricsCSV != "" {
			rec.MetricsCSV = filepath.Join("metrics", c.Name+".csv")
			if err := os.MkdirAll(filepath.Join(dir, "metrics"), 0o755); err != nil {
				return nil, fmt.Errorf("campaign: %w", err)
			}
			if err := os.WriteFile(filepath.Join(dir, rec.MetricsCSV), []byte(results[i].MetricsCSV), 0o644); err != nil {
				return nil, fmt.Errorf("campaign: %w", err)
			}
		}
		if results[i].TraceJSON != "" {
			rec.Trace = filepath.Join("trace", c.Name+".json")
			if err := os.MkdirAll(filepath.Join(dir, "trace"), 0o755); err != nil {
				return nil, fmt.Errorf("campaign: %w", err)
			}
			if err := os.WriteFile(filepath.Join(dir, rec.Trace), []byte(results[i].TraceJSON), 0o644); err != nil {
				return nil, fmt.Errorf("campaign: %w", err)
			}
		}
		man.Cells = append(man.Cells, rec)
	}

	summary := summarize(name, man.Cells)
	if err := os.WriteFile(filepath.Join(dir, "summary.txt"), []byte(summary), 0o644); err != nil {
		return nil, fmt.Errorf("campaign: %w", err)
	}
	if err := writeJSON(filepath.Join(dir, "manifest.json"), man); err != nil {
		return nil, err
	}
	log.printf("campaign %s: %d/%d cells ok, outputs in %s", name, len(cells)-failed, len(cells), dir)

	rep := &RunReport{Dir: dir, Manifest: man, Summary: summary, Failed: failed}
	if failed > 0 {
		return rep, fmt.Errorf("campaign: %d of %d cells failed (first: %s: %v)",
			failed, len(cells), firstFailure(cells, errs), firstErr(errs))
	}
	return rep, nil
}

// makeDir creates the unique timestamped campaign directory.
func (r *Runner) makeDir() (dir, stamp string, err error) {
	root := r.OutRoot
	if root == "" {
		root = "campaigns"
	}
	stamp = r.Stamp
	if stamp == "" {
		stamp = time.Now().UTC().Format("20060102T150405Z")
	}
	if err := os.MkdirAll(root, 0o755); err != nil {
		return "", "", fmt.Errorf("campaign: %w", err)
	}
	try := stamp
	for n := 2; ; n++ {
		err := os.Mkdir(filepath.Join(root, try), 0o755)
		if err == nil {
			return filepath.Join(root, try), try, nil
		}
		if !os.IsExist(err) {
			return "", "", fmt.Errorf("campaign: %w", err)
		}
		try = fmt.Sprintf("%s-%d", stamp, n)
	}
}

// summarize renders the grouped cross-experiment summary: one table per
// experiment family, cells in plan order.
func summarize(name string, cells []CellRecord) string {
	var sb strings.Builder
	var families []string
	seen := map[string]bool{}
	for _, c := range cells {
		if !seen[c.Experiment] {
			seen[c.Experiment] = true
			families = append(families, c.Experiment)
		}
	}
	fmt.Fprintf(&sb, "Campaign %s — %d cells\n", name, len(cells))
	for _, fam := range families {
		t := &stats.Table{Header: []string{"cell", "scenario", "repeat", "seed", "rows", "wall_ms", "status"}}
		for _, c := range cells {
			if c.Experiment != fam {
				continue
			}
			scenario := c.Scenario
			if scenario == "" {
				scenario = "table1"
			}
			t.AddRow(c.Name, scenario, fmt.Sprint(c.Repeat), fmt.Sprint(c.Seed),
				fmt.Sprint(c.Rows), fmt.Sprintf("%.1f", c.WallMs), c.Status)
		}
		fmt.Fprintf(&sb, "\n%s\n%s", fam, t.String())
	}
	return sb.String()
}

// runLog serializes log lines to the run.log file and an optional mirror.
type runLog struct {
	mu     sync.Mutex
	file   io.Writer
	mirror io.Writer
}

func (l *runLog) printf(format string, args ...any) {
	l.mu.Lock()
	defer l.mu.Unlock()
	line := fmt.Sprintf("%s %s\n", time.Now().UTC().Format("15:04:05.000"), fmt.Sprintf(format, args...))
	io.WriteString(l.file, line)
	if l.mirror != nil {
		io.WriteString(l.mirror, line)
	}
}

func writeJSON(path string, v any) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("campaign: %w", err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		f.Close()
		return fmt.Errorf("campaign: %s: %w", path, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("campaign: %w", err)
	}
	return nil
}

func firstErr(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

func firstFailure(cells []Cell, errs []error) string {
	for i, err := range errs {
		if err != nil {
			return cells[i].Name
		}
	}
	return ""
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}
