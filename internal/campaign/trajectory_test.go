package campaign

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func entry(label string, ns float64, allocs int64) BenchEntry {
	return BenchEntry{
		Label:  label,
		Engine: []EngineBench{{Name: "EngineSchedule", NsPerOp: ns, AllocsPerOp: allocs}},
	}
}

func TestTrajectoryVerdicts(t *testing.T) {
	traj := NewTrajectory([]BenchEntry{
		entry("seed", 15.0, 0),
		entry("pr6", 14.0, 0), // improvement -> new best
		entry("pr7", 15.2, 0), // +8.6% vs best 14.0 -> ok (within 10%)
		entry("pr9", 16.0, 0), // +14.3% vs best 14.0 -> regression
	})
	wants := []string{"baseline", "ok", "ok", "regression"}
	if len(traj.Engine) != 4 {
		t.Fatalf("rows: %d", len(traj.Engine))
	}
	for i, w := range wants {
		if !strings.HasPrefix(traj.Engine[i].Verdict, w) {
			t.Errorf("row %d (%s): verdict %q, want prefix %q", i, traj.Engine[i].PR, traj.Engine[i].Verdict, w)
		}
	}
	if traj.Engine[3].BestPR != "pr6" {
		t.Errorf("best attribution: %q, want pr6", traj.Engine[3].BestPR)
	}
	regs := traj.Regressions()
	if len(regs) != 1 || !strings.Contains(regs[0], "pr9") {
		t.Fatalf("regressions: %v", regs)
	}
}

// A historical regression must not fail the gate when the final entry
// recovered: only the last entry's verdicts count.
func TestTrajectoryGateJudgesOnlyFinalEntry(t *testing.T) {
	traj := NewTrajectory([]BenchEntry{
		entry("seed", 10.0, 0),
		entry("pr7", 20.0, 0), // historical regression
		entry("pr9", 10.5, 0), // recovered
	})
	if regs := traj.Regressions(); len(regs) != 0 {
		t.Fatalf("gate should pass after recovery, got %v", regs)
	}
}

func TestTrajectoryAllocRegression(t *testing.T) {
	traj := NewTrajectory([]BenchEntry{
		entry("seed", 10.0, 0),
		entry("pr9", 10.0, 1), // any alloc increase is a regression
	})
	regs := traj.Regressions()
	if len(regs) != 1 || !strings.Contains(regs[0], "allocs/op 1 vs best 0") {
		t.Fatalf("alloc regression: %v", regs)
	}
}

// A benchmark that first appears mid-history (FabricForward landed in PR 5)
// is a baseline there, not a regression against nothing.
func TestTrajectoryNewBenchmarkIsBaseline(t *testing.T) {
	e1 := entry("seed", 10.0, 0)
	e2 := entry("pr9", 10.1, 0)
	e2.Engine = append(e2.Engine, EngineBench{Name: "FabricForward", NsPerOp: 1300, AllocsPerOp: 20})
	traj := NewTrajectory([]BenchEntry{e1, e2})
	var fabric *EngineRow
	for i := range traj.Engine {
		if traj.Engine[i].Bench == "FabricForward" {
			fabric = &traj.Engine[i]
		}
	}
	if fabric == nil || fabric.Verdict != "baseline" {
		t.Fatalf("new benchmark verdict: %+v", fabric)
	}
	if regs := traj.Regressions(); len(regs) != 0 {
		t.Fatalf("baseline must not gate: %v", regs)
	}
}

// TestTrajectoryTieGatesAgainstEarlier pins the tie rule: when two
// entries share the best ns/op, the earlier one keeps best-in-history, so
// the final verdict and its BestPR attribution are deterministic.
func TestTrajectoryTieGatesAgainstEarlier(t *testing.T) {
	traj := NewTrajectory([]BenchEntry{
		entry("seed", 14.0, 0),
		entry("pr6", 14.0, 0), // ties the seed: seed stays best
		entry("pr9", 16.0, 0), // +14.3% vs best -> regression
	})
	if len(traj.Engine) != 3 {
		t.Fatalf("rows: %d", len(traj.Engine))
	}
	if got := traj.Engine[1].BestPR; got != "seed" {
		t.Errorf("tied entry compared against %q, want the earlier %q", got, "seed")
	}
	if got := traj.Engine[2].BestPR; got != "seed" {
		t.Errorf("final entry gated against %q, want the earlier tied %q", got, "seed")
	}
	if regs := traj.Regressions(); len(regs) != 1 || !strings.Contains(regs[0], "(seed)") {
		t.Fatalf("regression must cite the earlier tied best: %v", regs)
	}
}

// TestLoadBenchHistoryCanonicalOrder pins the ordering fix: a lexical glob
// hands over BENCH_pr10 before BENCH_pr2, and before the canonical sort
// that flipped which entry held best-in-history — and with it the verdict.
func TestLoadBenchHistoryCanonicalOrder(t *testing.T) {
	dir := t.TempDir()
	write := func(name, body string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	mk := func(name string, ns string) string {
		return write(name, `{"engine":[{"name":"EngineSchedule","ns_per_op":`+ns+`,"allocs_per_op":0,"bytes_per_op":0}]}`)
	}
	// Lexical order: BENCH_pr10 < BENCH_pr2 < BENCH_seed < current.
	paths := []string{
		mk("BENCH_pr10.json", "12.0"),
		mk("BENCH_pr2.json", "10.0"),
		mk("BENCH_seed.json", "15.0"),
		write("current.json", `{"engine":[{"name":"EngineSchedule","ns_per_op":12.5,"allocs_per_op":0,"bytes_per_op":0}]}`),
	}
	entries, err := LoadBenchHistory(paths)
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, e := range entries {
		got = append(got, e.Label)
	}
	want := []string{"seed", "pr2", "pr10", "current"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("canonical order %v, want %v", got, want)
	}
	// The verdict must be identical for any input permutation.
	traj := NewTrajectory(entries)
	final := traj.Engine[len(traj.Engine)-1]
	if final.PR != "current" || final.BestPR != "pr2" || !strings.HasPrefix(final.Verdict, "regression") {
		t.Fatalf("final row %+v, want regression vs pr2", final)
	}
	for _, perm := range [][]string{
		{paths[3], paths[0], paths[1], paths[2]},
		{paths[2], paths[1], paths[0], paths[3]},
	} {
		e2, err := LoadBenchHistory(perm)
		if err != nil {
			t.Fatal(err)
		}
		t2 := NewTrajectory(e2)
		f2 := t2.Engine[len(t2.Engine)-1]
		if f2 != final {
			t.Fatalf("verdict flipped with input order: %+v vs %+v", f2, final)
		}
	}
}

func TestTrajectoryDeterminismFailureGates(t *testing.T) {
	bad := false
	e := entry("pr9", 10.0, 0)
	e.DeterminismOK = &bad
	traj := NewTrajectory([]BenchEntry{entry("seed", 10.0, 0), e})
	regs := traj.Regressions()
	if len(regs) != 1 || !strings.Contains(regs[0], "determinism") {
		t.Fatalf("determinism gate: %v", regs)
	}
}

func TestTrajectoryRenderers(t *testing.T) {
	e := entry("seed", 15.0, 0)
	e.Sweeps = []SweepBench{{Name: "fig12a", Cells: 16, SequentialMs: 100, ParallelMs: 50, Speedup: 2}}
	traj := NewTrajectory([]BenchEntry{e, entry("pr9", 20.0, 0)})
	csv := traj.CSV()
	for _, want := range []string{"kind,pr,git_revision,name", "engine,seed,,EngineSchedule,15.00",
		"sweep,seed,,fig12a", "regression"} {
		if !strings.Contains(csv, want) {
			t.Errorf("CSV missing %q:\n%s", want, csv)
		}
	}
	md := traj.Markdown()
	for _, want := range []string{"# Perf trajectory", "## Engine hot path", "## Sweep wall time",
		"## Regressions", "| pr |", "EngineSchedule"} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q:\n%s", want, md)
		}
	}
}

// LoadBenchFile must accept historical reports without the
// git_revision/generated_utc stamps and reject non-bench JSON.
func TestLoadBenchFile(t *testing.T) {
	dir := t.TempDir()
	old := filepath.Join(dir, "BENCH_pr7.json")
	doc := `{"host":{"goos":"linux","num_cpu":1},"sweeps":[],"engine":[{"name":"EngineSchedule","ns_per_op":17.7,"allocs_per_op":0,"bytes_per_op":0}],"sharded_loadsweep":[],"determinism_ok":true}`
	if err := os.WriteFile(old, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	e, err := LoadBenchFile(old)
	if err != nil {
		t.Fatalf("historical file without stamps: %v", err)
	}
	if e.Label != "pr7" || e.GitRevision != "" || e.GeneratedUTC != "" {
		t.Fatalf("entry: label=%q rev=%q utc=%q", e.Label, e.GitRevision, e.GeneratedUTC)
	}
	if e.DeterminismOK == nil || !*e.DeterminismOK {
		t.Fatalf("determinism_ok not parsed: %v", e.DeterminismOK)
	}

	empty := filepath.Join(dir, "notbench.json")
	if err := os.WriteFile(empty, []byte(`{"foo":1}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadBenchFile(empty); err == nil || !strings.Contains(err.Error(), "no engine benchmarks") {
		t.Fatalf("want no-engine error, got %v", err)
	}
	if _, err := LoadBenchFile(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("want error for missing file")
	}
}

func TestBenchLabel(t *testing.T) {
	cases := map[string]string{
		"BENCH_seed.json":      "seed",
		"/repo/BENCH_pr7.json": "pr7",
		"/tmp/bench.json":      "bench",
		"BENCH_.json":          "bench",
	}
	for in, want := range cases {
		if got := benchLabel(in); got != want {
			t.Errorf("benchLabel(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestCheckedInHistoryLoads pins that the repository's own BENCH files stay
// loadable by the trajectory tooling.
func TestCheckedInHistoryLoads(t *testing.T) {
	paths, err := filepath.Glob("../../BENCH_*.json")
	if err != nil || len(paths) == 0 {
		t.Skipf("no checked-in BENCH files: %v", err)
	}
	entries, err := LoadBenchHistory(paths)
	if err != nil {
		t.Fatal(err)
	}
	traj := NewTrajectory(entries)
	if len(traj.Engine) == 0 {
		t.Fatal("no engine rows from checked-in history")
	}
}
