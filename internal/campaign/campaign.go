// Package campaign is the reproducible experiment-campaign harness: it
// turns a declarative grid — experiments × scenarios × repeats — into one
// validated, versioned output directory, and tracks the repository's
// performance trajectory across the checked-in BENCH_*.json history.
//
// A campaign grid is a JSON document (see Grid) naming which experiment
// families to run, under which scenarios, how many independent repeats of
// each, and how wide to fan the cells out. Plan expands the grid into a
// deterministic cell list with one derived seed per cell; Runner executes
// the cells through an injected Executor (the root netdimm package binds
// each family to its Run*WithConfig facade), validates every produced CSV
// against the family's schema and expected row count, and writes a
// timestamped directory:
//
//	campaigns/<stamp>/
//	  manifest.json   host, go version, git revision, per-cell seed+config hash
//	  run.log         wall-clock execution log
//	  summary.txt     grouped per-family summary tables
//	  csv/<cell>.csv  one validated CSV per cell
//	  metrics/...     per-cell metrics-registry CSVs (cells with Metrics on)
//	  trace/...       per-cell Chrome trace-event JSON (cells with Trace on)
//
// Determinism contract: re-running the same grid with the same seeds
// yields byte-identical csv/ and metrics/ contents at any parallelism (the
// manifest and log record wall times and may differ). CI pins this by
// running the default grid twice and diffing the directories.
//
// trajectory.go is the second half of the harness: it loads the
// BENCH_seed.json → BENCH_pr<N>.json history (tolerating files that
// predate the git-revision/timestamp stamps), renders the engine ns/op,
// allocs/op and per-sweep wall-time trajectory as CSV and markdown, and
// computes regression verdicts against the best entry in history — the
// gate the bench-compare CI job enforces.
package campaign

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"
)

// Experiment is one row of a campaign grid: an experiment family plus the
// axes it sweeps. Zero-valued axes select the family's own defaults, so a
// minimal row is just {"Experiment": "fig11"}.
type Experiment struct {
	// Experiment names the family: one of the keys of the schema registry
	// passed to Validate (fig4, fig11, fig12a, ablation, faultsweep,
	// loadsweep, racksweep, failsweep in the root binding).
	Experiment string
	// Scenario selects the simulated system: a named preset or a JSON
	// config file path, exactly as the -scenario CLI flag ("" = table1).
	Scenario string
	// Repeats overrides the grid-level repeat count for this row (0 =
	// inherit).
	Repeats int
	// Seed overrides the grid-level base seed for this row (0 = inherit).
	Seed uint64
	// Packets is the per-cell packet budget for trace/sweep families
	// (0 = the family default).
	Packets int
	// Sizes is the packet-size axis of fig4/fig11 (nil = paper sizes).
	Sizes []int
	// SwitchNs overrides the switch port-to-port latency in nanoseconds
	// for fig4/fig11 (0 = 100ns, the CLI default).
	SwitchNs int
	// Rates is the loss-rate axis of faultsweep or the offered-load axis
	// of loadsweep/racksweep (nil = family default grid).
	Rates []float64
	// Racks is the leaf-count axis of racksweep (nil = {2,4,8}).
	Racks []int
	// Outages is the spine-outage axis of failsweep in Go duration syntax
	// ("0" allowed; nil = the family default grid).
	Outages []string
	// Hosts overrides Load.Hosts for the sweep families (0 = scenario).
	Hosts int
	// Shards overrides Load.Shards (0 = scenario; results are identical
	// at any shard count).
	Shards int
	// Ranks is the rank-count axis of collsweep (nil = {4,...,128}).
	Ranks []int
	// Ops is the operation axis of collsweep: any of "allreduce",
	// "broadcast", "reducescatter" (nil = all three).
	Ops []string
	// Payload overrides Collective.PayloadBytes for collsweep (0 =
	// scenario, whose zero means 64KiB).
	Payload int
	// Metrics arms the metrics registry for the row's cells; the registry
	// CSV is written next to the cell's result CSV.
	Metrics bool
	// Trace arms per-packet lifecycle tracing for the row's cells (observed
	// families only); the Chrome trace-event JSON is written under trace/.
	Trace bool
}

// Grid is a declarative experiment campaign: the JSON document the
// `campaign` subcommand loads via -grid.
type Grid struct {
	// Name labels the campaign in the manifest and summary (default
	// "campaign").
	Name string
	// Seed is the base seed every cell seed derives from (default 3, the
	// CLI default).
	Seed uint64
	// Repeats is the default independent-repeat count per experiment row
	// (default 1).
	Repeats int
	// Parallelism fans cells over worker goroutines: 0 = all cores, 1 =
	// sequential, N = at most N. Cell results are identical either way.
	Parallelism int
	// Experiments lists the grid rows; at least one is required.
	Experiments []Experiment
}

// Schema describes the CSV contract of one experiment family: the exact
// header and a lower bound on data rows. The runner validates every cell's
// CSV against its family schema before declaring the campaign successful.
type Schema struct {
	Header  []string
	MinRows int
}

// ReadGrid decodes a campaign grid from JSON. Unknown fields are rejected
// so a typo'd axis fails loudly instead of silently selecting a default.
func ReadGrid(r io.Reader) (Grid, error) {
	var g Grid
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&g); err != nil {
		return Grid{}, fmt.Errorf("campaign: grid: %w", err)
	}
	return g, nil
}

// LoadGrid reads a grid file. The grid is not yet validated — callers
// follow with Validate against their schema registry.
func LoadGrid(path string) (Grid, error) {
	f, err := os.Open(path)
	if err != nil {
		return Grid{}, fmt.Errorf("campaign: grid: %w", err)
	}
	defer f.Close()
	g, err := ReadGrid(f)
	if err != nil {
		return Grid{}, fmt.Errorf("campaign: grid %s: %w", path, err)
	}
	return g, nil
}

// Validate checks the grid against a family registry, returning an
// actionable error naming the offending row. It mirrors the spec-plane
// convention: every reported problem says what was wrong and what would
// be accepted.
func (g Grid) Validate(known map[string]Schema) error {
	if len(g.Experiments) == 0 {
		return fmt.Errorf("campaign: grid has no experiments")
	}
	if g.Repeats < 0 {
		return fmt.Errorf("campaign: Repeats %d is negative", g.Repeats)
	}
	if g.Parallelism < 0 {
		return fmt.Errorf("campaign: Parallelism %d is negative (0 = all cores)", g.Parallelism)
	}
	for i, e := range g.Experiments {
		at := func(format string, args ...any) error {
			return fmt.Errorf("campaign: experiments[%d] (%s): %s", i, e.Experiment, fmt.Sprintf(format, args...))
		}
		if e.Experiment == "" {
			return fmt.Errorf("campaign: experiments[%d]: missing Experiment family (known: %s)", i, familyList(known))
		}
		if _, ok := known[e.Experiment]; !ok {
			return fmt.Errorf("campaign: experiments[%d]: unknown experiment family %q (known: %s)", i, e.Experiment, familyList(known))
		}
		if e.Repeats < 0 || e.Packets < 0 || e.Hosts < 0 || e.Shards < 0 || e.SwitchNs < 0 {
			return at("Repeats/Packets/Hosts/Shards/SwitchNs must be non-negative")
		}
		for _, s := range e.Sizes {
			if s <= 0 {
				return at("packet size %d must be positive", s)
			}
		}
		for _, r := range e.Rates {
			if r < 0 || math.IsNaN(r) || math.IsInf(r, 0) {
				return at("rate %g must be a finite non-negative fraction of line rate", r)
			}
		}
		for _, r := range e.Racks {
			if r < 1 {
				return at("rack count %d must be at least 1", r)
			}
		}
		for _, o := range e.Outages {
			if _, err := parseOutage(o); err != nil {
				return at("bad outage duration %q: %v (use Go duration syntax, e.g. \"20us\", or \"0\")", o, err)
			}
		}
		if e.Payload < 0 {
			return at("Payload %d must be non-negative", e.Payload)
		}
		for _, r := range e.Ranks {
			if r < 2 {
				return at("rank count %d must be at least 2", r)
			}
		}
		for _, op := range e.Ops {
			switch op {
			case "allreduce", "broadcast", "reducescatter":
			default:
				return at("unknown collective op %q (want allreduce, broadcast or reducescatter)", op)
			}
		}
	}
	return nil
}

// familyList renders the registry keys sorted for error messages.
func familyList(known map[string]Schema) string {
	names := make([]string, 0, len(known))
	for name := range known {
		names = append(names, name)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}

// parseOutage accepts Go duration syntax plus a bare "0".
func parseOutage(s string) (time.Duration, error) {
	if strings.TrimSpace(s) == "0" {
		return 0, nil
	}
	return time.ParseDuration(strings.TrimSpace(s))
}

// Cell is one planned unit of campaign work: a fully resolved
// (experiment, scenario, repeat) instance with its derived seed. Cells are
// pure values, so the runner can fan them out and the manifest can record
// them verbatim.
type Cell struct {
	// Index is the cell's position in plan order.
	Index int
	// Name is the cell's file stem: <experiment>-<scenario-slug>-r<repeat>.
	Name string
	// Experiment and Scenario resolve exactly as in the grid row.
	Experiment string
	Scenario   string
	// Repeat numbers the independent repeat, from 0.
	Repeat int
	// Seed is the cell's derived seed: base + 1000*rowIndex + repeat,
	// where base is the row's Seed override or the grid Seed. The formula
	// is part of the reproducibility contract (golden-pinned), so two
	// plans of the same grid always agree.
	Seed uint64
	// The remaining fields copy the grid row's axes verbatim, with
	// Outages parsed to concrete durations.
	Packets  int
	Sizes    []int
	SwitchNs int
	Rates    []float64
	Racks    []int
	Outages  []time.Duration
	Hosts    int
	Shards   int
	Ranks    []int
	Ops      []string
	Payload  int
	Metrics  bool
	Trace    bool
}

// Plan expands the grid into its deterministic cell list. The grid must
// have passed Validate; a malformed outage still returns an error rather
// than panicking.
func (g Grid) Plan() ([]Cell, error) {
	var cells []Cell
	used := map[string]bool{}
	baseSeed := g.Seed
	if baseSeed == 0 {
		baseSeed = 3
	}
	repeats := g.Repeats
	if repeats <= 0 {
		repeats = 1
	}
	for ri, e := range g.Experiments {
		reps := repeats
		if e.Repeats > 0 {
			reps = e.Repeats
		}
		base := baseSeed
		if e.Seed != 0 {
			base = e.Seed
		}
		var outages []time.Duration
		for _, o := range e.Outages {
			d, err := parseOutage(o)
			if err != nil {
				return nil, fmt.Errorf("campaign: experiments[%d] (%s): bad outage %q: %w", ri, e.Experiment, o, err)
			}
			outages = append(outages, d)
		}
		for r := 0; r < reps; r++ {
			// Two grid rows with the same family and scenario would
			// produce colliding file stems; suffix the later row's cells
			// with its row index so csv/ never silently overwrites.
			name := fmt.Sprintf("%s-%s-r%d", e.Experiment, scenarioSlug(e.Scenario), r)
			if used[name] {
				name = fmt.Sprintf("%s-%s-x%d-r%d", e.Experiment, scenarioSlug(e.Scenario), ri, r)
			}
			used[name] = true
			c := Cell{
				Index:      len(cells),
				Name:       name,
				Experiment: e.Experiment,
				Scenario:   e.Scenario,
				Repeat:     r,
				Seed:       base + uint64(1000*ri+r),
				Packets:    e.Packets,
				Sizes:      e.Sizes,
				SwitchNs:   e.SwitchNs,
				Rates:      e.Rates,
				Racks:      e.Racks,
				Outages:    outages,
				Hosts:      e.Hosts,
				Shards:     e.Shards,
				Ranks:      e.Ranks,
				Ops:        e.Ops,
				Payload:    e.Payload,
				Metrics:    e.Metrics,
				Trace:      e.Trace,
			}
			cells = append(cells, c)
		}
	}
	return cells, nil
}

// scenarioSlug turns a scenario argument into a filename-safe stem:
// "scenarios/clos-2x4.json" becomes "clos-2x4", "" becomes "table1".
func scenarioSlug(s string) string {
	if s == "" {
		return "table1"
	}
	s = filepath.Base(s)
	s = strings.TrimSuffix(s, filepath.Ext(s))
	var sb strings.Builder
	for _, r := range strings.ToLower(s) {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '-', r == '_':
			sb.WriteRune(r)
		default:
			sb.WriteByte('-')
		}
	}
	if sb.Len() == 0 {
		return "scenario"
	}
	return sb.String()
}
