package campaign

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// fakeExec returns a deterministic two-row CSV derived from the cell's
// seed, so runner tests can assert content without running simulations.
func fakeExec(c Cell) (Result, error) {
	doc := fmt.Sprintf("a,b\n%d,%s\n%d,%s\n", c.Seed, c.Name, c.Seed+1, c.Experiment)
	res := Result{CSV: doc, WantRows: 2, ConfigHash: SHA256Hex([]byte(c.Scenario))}
	if c.Metrics {
		res.MetricsCSV = "cell,kind,metric,value,max,points\nx,counter,m,1,,\n"
	}
	return res, nil
}

func testGrid() Grid {
	return Grid{
		Name:    "unit",
		Repeats: 2,
		Experiments: []Experiment{
			{Experiment: "fig11"},
			{Experiment: "failsweep", Metrics: true},
		},
	}
}

func TestRunnerHappyPath(t *testing.T) {
	root := t.TempDir()
	r := &Runner{
		Grid:    testGrid(),
		OutRoot: root,
		Stamp:   "20260101T000000Z",
		Schemas: testSchemas(),
		Exec:    fakeExec,
	}
	rep, err := r.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.Failed != 0 {
		t.Fatalf("Failed = %d, want 0", rep.Failed)
	}
	if rep.Dir != filepath.Join(root, "20260101T000000Z") {
		t.Fatalf("Dir = %q", rep.Dir)
	}
	for _, f := range []string{"manifest.json", "run.log", "summary.txt",
		"csv/fig11-table1-r0.csv", "csv/fig11-table1-r1.csv",
		"csv/failsweep-table1-r0.csv", "metrics/failsweep-table1-r0.csv"} {
		if _, err := os.Stat(filepath.Join(rep.Dir, f)); err != nil {
			t.Errorf("missing artifact %s: %v", f, err)
		}
	}
	var man Manifest
	data, err := os.ReadFile(filepath.Join(rep.Dir, "manifest.json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &man); err != nil {
		t.Fatalf("manifest.json: %v", err)
	}
	if man.Campaign != "unit" || len(man.Cells) != 4 {
		t.Fatalf("manifest: campaign=%q cells=%d", man.Campaign, len(man.Cells))
	}
	for _, c := range man.Cells {
		if c.Status != "ok" || c.Rows != 2 || c.ConfigHash == "" {
			t.Errorf("cell %s: status=%q rows=%d hash=%q", c.Name, c.Status, c.Rows, c.ConfigHash)
		}
	}
	if man.Host.GoVersion == "" || man.Host.NumCPU < 1 {
		t.Errorf("manifest host block not populated: %+v", man.Host)
	}
	if !strings.Contains(rep.Summary, "fig11") || !strings.Contains(rep.Summary, "failsweep") {
		t.Errorf("summary missing family groups:\n%s", rep.Summary)
	}
}

// TestRunnerDeterministicCSVs is the harness-level half of the campaign
// determinism contract: same grid, same seeds, any parallelism — the csv/
// and metrics/ trees are byte-identical.
func TestRunnerDeterministicCSVs(t *testing.T) {
	run := func(parallelism int, stamp string) string {
		g := testGrid()
		g.Parallelism = parallelism
		r := &Runner{Grid: g, OutRoot: t.TempDir(), Stamp: stamp, Schemas: testSchemas(), Exec: fakeExec}
		rep, err := r.Run()
		if err != nil {
			t.Fatalf("Run(parallelism=%d): %v", parallelism, err)
		}
		return rep.Dir
	}
	a, b := run(1, "s1"), run(4, "s2")
	for _, sub := range []string{"csv", "metrics"} {
		ents, err := os.ReadDir(filepath.Join(a, sub))
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range ents {
			da, err := os.ReadFile(filepath.Join(a, sub, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			db, err := os.ReadFile(filepath.Join(b, sub, e.Name()))
			if err != nil {
				t.Fatalf("parallel run missing %s/%s: %v", sub, e.Name(), err)
			}
			if string(da) != string(db) {
				t.Errorf("%s/%s differs between sequential and parallel runs", sub, e.Name())
			}
		}
	}
}

func TestRunnerRecordsFailures(t *testing.T) {
	g := testGrid()
	exec := func(c Cell) (Result, error) {
		if c.Experiment == "failsweep" && c.Repeat == 1 {
			return Result{}, fmt.Errorf("boom")
		}
		return fakeExec(c)
	}
	r := &Runner{Grid: g, OutRoot: t.TempDir(), Stamp: "s", Schemas: testSchemas(), Exec: exec}
	rep, err := r.Run()
	if err == nil || !strings.Contains(err.Error(), "1 of 4 cells failed") {
		t.Fatalf("want campaign failure error, got %v", err)
	}
	if rep == nil || rep.Failed != 1 {
		t.Fatalf("report: %+v", rep)
	}
	var bad *CellRecord
	for i := range rep.Manifest.Cells {
		if rep.Manifest.Cells[i].Status != "ok" {
			bad = &rep.Manifest.Cells[i]
		}
	}
	if bad == nil || !strings.Contains(bad.Status, "boom") || bad.CSV != "" {
		t.Fatalf("failed cell record: %+v", bad)
	}
	// The three healthy cells still produced CSVs.
	ents, err := os.ReadDir(filepath.Join(rep.Dir, "csv"))
	if err != nil || len(ents) != 3 {
		t.Fatalf("csv dir after partial failure: %d entries, err %v", len(ents), err)
	}
}

func TestRunnerValidatesAgainstSchema(t *testing.T) {
	exec := func(c Cell) (Result, error) {
		return Result{CSV: "wrong,header\n1,2\n"}, nil
	}
	g := Grid{Experiments: []Experiment{{Experiment: "fig11"}}}
	r := &Runner{Grid: g, OutRoot: t.TempDir(), Stamp: "s", Schemas: testSchemas(), Exec: exec}
	rep, err := r.Run()
	if err == nil || !strings.Contains(err.Error(), "header") {
		t.Fatalf("want header validation failure, got %v", err)
	}
	if rep.Failed != 1 {
		t.Fatalf("Failed = %d", rep.Failed)
	}
}

func TestRunnerStampCollision(t *testing.T) {
	root := t.TempDir()
	mk := func() string {
		r := &Runner{Grid: Grid{Experiments: []Experiment{{Experiment: "fig11"}}},
			OutRoot: root, Stamp: "same", Schemas: testSchemas(), Exec: fakeExec}
		rep, err := r.Run()
		if err != nil {
			t.Fatal(err)
		}
		return rep.Dir
	}
	a, b := mk(), mk()
	if a == b {
		t.Fatalf("second campaign reused directory %s", a)
	}
	if filepath.Base(b) != "same-2" {
		t.Fatalf("collision suffix: got %s, want same-2", filepath.Base(b))
	}
}

func TestRunnerGridFingerprint(t *testing.T) {
	dir := t.TempDir()
	gridFile := filepath.Join(dir, "g.json")
	content := []byte(`{"Experiments":[{"Experiment":"fig11"}]}`)
	if err := os.WriteFile(gridFile, content, 0o644); err != nil {
		t.Fatal(err)
	}
	r := &Runner{Grid: Grid{Experiments: []Experiment{{Experiment: "fig11"}}},
		OutRoot: t.TempDir(), Stamp: "s", Schemas: testSchemas(), Exec: fakeExec, GridPath: gridFile}
	rep, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Manifest.GridSHA256 != SHA256Hex(content) {
		t.Fatalf("grid fingerprint mismatch: %s", rep.Manifest.GridSHA256)
	}
}
