package campaign

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// ValidateCSV checks one cell's CSV document against its family schema:
// the header must match exactly, every record must have the header's field
// count, at least schema.MinRows data rows must be present (1 when the
// schema leaves it zero), and when the executor computed an exact expected
// row count (wantRows > 0) the document must match it. It returns the data
// row count so the manifest can record it.
func ValidateCSV(doc string, schema Schema, wantRows int) (int, error) {
	r := csv.NewReader(strings.NewReader(doc))
	r.FieldsPerRecord = len(schema.Header)
	header, err := r.Read()
	if err == io.EOF {
		return 0, fmt.Errorf("empty CSV (expected header %s)", strings.Join(schema.Header, ","))
	}
	if err != nil {
		return 0, fmt.Errorf("bad CSV header: %w", err)
	}
	for i, h := range schema.Header {
		if header[i] != h {
			return 0, fmt.Errorf("CSV header column %d is %q, want %q (full header: %s)",
				i, header[i], h, strings.Join(schema.Header, ","))
		}
	}
	rows := 0
	for {
		_, err := r.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return rows, fmt.Errorf("bad CSV row %d: %w", rows+1, err)
		}
		rows++
	}
	min := schema.MinRows
	if min <= 0 {
		min = 1
	}
	if rows < min {
		return rows, fmt.Errorf("CSV has %d data rows, want at least %d", rows, min)
	}
	if wantRows > 0 && rows != wantRows {
		return rows, fmt.Errorf("CSV has %d data rows, want exactly %d", rows, wantRows)
	}
	return rows, nil
}
