package campaign

import (
	"crypto/sha256"
	"encoding/hex"
	"os"
	"os/exec"
	"runtime"
	"strings"
)

// Host identifies the machine a campaign or bench report ran on. The JSON
// field names match the BENCH_*.json host block so the two artifact
// families stay cross-readable.
type Host struct {
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	GoVersion  string `json:"go_version"`
}

// CurrentHost captures the running process's host identity.
func CurrentHost() Host {
	return Host{
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		GoVersion:  runtime.Version(),
	}
}

// GitRevision returns the short revision of the repository containing dir,
// or "" when git or the repository is unavailable — artifacts produced
// outside a checkout simply omit the stamp, and readers tolerate that.
func GitRevision(dir string) string {
	cmd := exec.Command("git", "rev-parse", "--short", "HEAD")
	cmd.Dir = dir
	out, err := cmd.Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}

// SHA256Hex returns the lowercase hex SHA-256 of data; the manifest uses
// it to fingerprint the grid file and every cell's resolved configuration.
func SHA256Hex(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// fileSHA256 fingerprints a file on disk ("" when unreadable).
func fileSHA256(path string) string {
	data, err := os.ReadFile(path)
	if err != nil {
		return ""
	}
	return SHA256Hex(data)
}

// CellRecord is one cell's manifest entry: everything needed to reproduce
// the cell (seed, scenario, config hash) plus what it produced.
type CellRecord struct {
	Name       string  `json:"name"`
	Experiment string  `json:"experiment"`
	Scenario   string  `json:"scenario"`
	Repeat     int     `json:"repeat"`
	Seed       uint64  `json:"seed"`
	Packets    int     `json:"packets,omitempty"`
	ConfigHash string  `json:"config_sha256,omitempty"`
	CSV        string  `json:"csv,omitempty"`
	Rows       int     `json:"rows"`
	MetricsCSV string  `json:"metrics_csv,omitempty"`
	Trace      string  `json:"trace,omitempty"`
	WallMs     float64 `json:"wall_ms"`
	Status     string  `json:"status"`
}

// Manifest is the campaign's machine-readable record, written as
// manifest.json in the output directory. Everything that shapes results
// (host, toolchain, revision, grid fingerprint, per-cell seeds and config
// hashes) is captured; wall times are recorded but explicitly outside the
// determinism contract.
type Manifest struct {
	Campaign    string       `json:"campaign"`
	Stamp       string       `json:"stamp"`
	CreatedUTC  string       `json:"created_utc"`
	Host        Host         `json:"host"`
	GitRevision string       `json:"git_revision,omitempty"`
	GridPath    string       `json:"grid_path,omitempty"`
	GridSHA256  string       `json:"grid_sha256,omitempty"`
	Parallelism int          `json:"parallelism"`
	Cells       []CellRecord `json:"cells"`
}
