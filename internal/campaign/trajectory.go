package campaign

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"netdimm/internal/stats"
)

// NsRegressionFactor is the engine-latency tolerance of the trajectory
// gate: an entry regresses when its ns/op exceeds the best-in-history
// value by more than 10%. Allocations have zero tolerance — any increase
// over the best-in-history allocs/op is a regression.
const NsRegressionFactor = 1.10

// EngineBench mirrors one engine hot-path measurement of a BENCH_*.json
// report.
type EngineBench struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// SweepBench mirrors one sweep wall-time measurement of a BENCH_*.json
// report.
type SweepBench struct {
	Name         string  `json:"name"`
	Cells        int     `json:"cells"`
	SequentialMs float64 `json:"sequential_ms"`
	ParallelMs   float64 `json:"parallel_ms"`
	Speedup      float64 `json:"speedup"`
}

// BenchEntry is one point of the perf history: a parsed BENCH_*.json
// report plus the label derived from its filename (BENCH_pr7.json ->
// "pr7"). GitRevision and GeneratedUTC stamp reports from PR 9 on;
// earlier files predate the stamps and load with both fields empty.
type BenchEntry struct {
	Label        string        `json:"-"`
	Path         string        `json:"-"`
	GitRevision  string        `json:"git_revision"`
	GeneratedUTC string        `json:"generated_utc"`
	Host         Host          `json:"host"`
	Sweeps       []SweepBench  `json:"sweeps"`
	Engine       []EngineBench `json:"engine"`
	// DeterminismOK is a pointer so a historical file without the field
	// is distinguishable from an explicit false.
	DeterminismOK *bool `json:"determinism_ok"`
}

// LoadBenchFile parses one BENCH_*.json report. Unknown fields (e.g. the
// sharded_loadsweep block) are ignored, and missing stamps are tolerated.
func LoadBenchFile(path string) (BenchEntry, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return BenchEntry{}, fmt.Errorf("campaign: bench history: %w", err)
	}
	var e BenchEntry
	if err := json.Unmarshal(data, &e); err != nil {
		return BenchEntry{}, fmt.Errorf("campaign: bench history %s: %w", path, err)
	}
	if len(e.Engine) == 0 {
		return BenchEntry{}, fmt.Errorf("campaign: bench history %s: no engine benchmarks (is this a bench report?)", path)
	}
	e.Label = benchLabel(path)
	e.Path = path
	return e, nil
}

// LoadBenchHistory parses a list of bench reports and puts them in
// canonical trajectory order: the seed report first, pr<N> reports by PR
// number, anything else after in input order; the last entry is the one
// the gate judges. Callers may therefore pass paths in any order — in
// particular a lexical glob, where BENCH_pr10 sorts before BENCH_pr2 —
// without flipping which entry holds best-in-history and with it the
// final verdict.
func LoadBenchHistory(paths []string) ([]BenchEntry, error) {
	var entries []BenchEntry
	for _, p := range paths {
		e, err := LoadBenchFile(p)
		if err != nil {
			return nil, err
		}
		entries = append(entries, e)
	}
	sort.SliceStable(entries, func(i, j int) bool {
		ci, ni := benchRank(entries[i].Label)
		cj, nj := benchRank(entries[j].Label)
		if ci != cj {
			return ci < cj
		}
		return ni < nj
	})
	return entries, nil
}

// benchRank classifies a report label for canonical history ordering:
// class 0 is the seed, class 1 a pr<N> label ordered by N, class 2
// everything else (e.g. "current"), which keeps its input position via the
// stable sort.
func benchRank(label string) (class, n int) {
	if label == "seed" {
		return 0, 0
	}
	if rest := strings.TrimPrefix(label, "pr"); rest != label {
		if v, err := strconv.Atoi(rest); err == nil {
			return 1, v
		}
	}
	return 2, 0
}

// benchLabel derives the trajectory label from a report filename:
// "BENCH_pr7.json" -> "pr7", "BENCH_seed.json" -> "seed",
// "/tmp/bench.json" -> "bench".
func benchLabel(path string) string {
	base := filepath.Base(path)
	base = strings.TrimSuffix(base, filepath.Ext(base))
	base = strings.TrimPrefix(base, "BENCH_")
	if base == "" {
		return "bench"
	}
	return base
}

// EngineRow is one (entry, benchmark) point of the trajectory with its
// verdict against the best earlier entry.
type EngineRow struct {
	PR          string
	GitRevision string
	Bench       string
	NsPerOp     float64
	AllocsPerOp int64
	BytesPerOp  int64
	// BestNsPerOp / BestAllocs / BestPR describe the best strictly
	// earlier entry that measured this benchmark; BestPR is "" for the
	// first appearance (verdict "baseline").
	BestNsPerOp float64
	BestAllocs  int64
	BestPR      string
	// VsBestPct is (NsPerOp/BestNsPerOp - 1) * 100.
	VsBestPct float64
	// Verdict is "baseline", "ok", or a regression description.
	Verdict string
}

// SweepRow is one (entry, sweep) wall-time point of the trajectory.
type SweepRow struct {
	PR           string
	Sweep        string
	Cells        int
	SequentialMs float64
	ParallelMs   float64
	Speedup      float64
}

// TrajectoryReport is the rendered perf history: engine hot-path rows and
// sweep wall-time rows across every PR, with regression verdicts.
type TrajectoryReport struct {
	Engine []EngineRow
	Sweeps []SweepRow
	// Final is the label of the last (judged) entry.
	Final string
	// DeterminismFailed reports a final entry whose bench-time
	// determinism check failed.
	DeterminismFailed bool
}

// NewTrajectory computes the trajectory over entries in history order.
// Each entry's verdict compares it against the best strictly earlier entry
// per benchmark, so the report shows where every regression (or win)
// landed, not just the endpoint.
func NewTrajectory(entries []BenchEntry) TrajectoryReport {
	var rep TrajectoryReport
	bestNs := map[string]float64{}
	bestNsPR := map[string]string{}
	bestAllocs := map[string]int64{}
	bestAllocsPR := map[string]string{}
	for _, e := range entries {
		for _, b := range e.Engine {
			row := EngineRow{
				PR:          e.Label,
				GitRevision: e.GitRevision,
				Bench:       b.Name,
				NsPerOp:     b.NsPerOp,
				AllocsPerOp: b.AllocsPerOp,
				BytesPerOp:  b.BytesPerOp,
			}
			if ns, ok := bestNs[b.Name]; !ok {
				row.Verdict = "baseline"
			} else {
				row.BestNsPerOp = ns
				row.BestAllocs = bestAllocs[b.Name]
				row.BestPR = bestNsPR[b.Name]
				row.VsBestPct = (b.NsPerOp/ns - 1) * 100
				var problems []string
				if b.NsPerOp > ns*NsRegressionFactor {
					problems = append(problems, fmt.Sprintf("ns/op +%.1f%% vs best %.2f (%s)", row.VsBestPct, ns, bestNsPR[b.Name]))
				}
				if b.AllocsPerOp > bestAllocs[b.Name] {
					problems = append(problems, fmt.Sprintf("allocs/op %d vs best %d (%s)", b.AllocsPerOp, bestAllocs[b.Name], bestAllocsPR[b.Name]))
				}
				if len(problems) == 0 {
					row.Verdict = "ok"
				} else {
					row.Verdict = "regression: " + strings.Join(problems, "; ")
				}
			}
			rep.Engine = append(rep.Engine, row)
			// Strictly-less: when two entries tie on the best ns/op (or
			// allocs/op) the earlier one keeps the title, so the gate's
			// reference — and the BestPR attribution in the report — is
			// deterministic under the canonical history order.
			if ns, ok := bestNs[b.Name]; !ok || b.NsPerOp < ns {
				bestNs[b.Name] = b.NsPerOp
				bestNsPR[b.Name] = e.Label
			}
			if al, ok := bestAllocs[b.Name]; !ok || b.AllocsPerOp < al {
				bestAllocs[b.Name] = b.AllocsPerOp
				bestAllocsPR[b.Name] = e.Label
			}
		}
		for _, s := range e.Sweeps {
			rep.Sweeps = append(rep.Sweeps, SweepRow{
				PR: e.Label, Sweep: s.Name, Cells: s.Cells,
				SequentialMs: s.SequentialMs, ParallelMs: s.ParallelMs, Speedup: s.Speedup,
			})
		}
	}
	if n := len(entries); n > 0 {
		last := entries[n-1]
		rep.Final = last.Label
		rep.DeterminismFailed = last.DeterminismOK != nil && !*last.DeterminismOK
	}
	return rep
}

// Regressions lists the gate-relevant failures: every regression verdict
// of the final entry, plus a failed bench-time determinism check. An empty
// slice means the gate passes.
func (t TrajectoryReport) Regressions() []string {
	var out []string
	for _, r := range t.Engine {
		if r.PR == t.Final && strings.HasPrefix(r.Verdict, "regression") {
			out = append(out, fmt.Sprintf("%s (%s): %s", r.Bench, r.PR, r.Verdict))
		}
	}
	if t.DeterminismFailed {
		out = append(out, fmt.Sprintf("bench-time determinism check failed in %s", t.Final))
	}
	return out
}

// CSV renders the full trajectory as one flat CSV: engine rows carry the
// ns/allocs/bytes and verdict columns, sweep rows the wall-time columns.
func (t TrajectoryReport) CSV() string {
	header := []string{"kind", "pr", "git_revision", "name",
		"ns_per_op", "allocs_per_op", "bytes_per_op", "vs_best_pct", "verdict",
		"cells", "sequential_ms", "parallel_ms", "speedup"}
	var rows [][]string
	for _, r := range t.Engine {
		vsBest := ""
		if r.BestPR != "" {
			vsBest = fmt.Sprintf("%+.1f", r.VsBestPct)
		}
		rows = append(rows, []string{"engine", r.PR, r.GitRevision, r.Bench,
			fmt.Sprintf("%.2f", r.NsPerOp), fmt.Sprint(r.AllocsPerOp), fmt.Sprint(r.BytesPerOp),
			vsBest, r.Verdict, "", "", "", ""})
	}
	for _, s := range t.Sweeps {
		rows = append(rows, []string{"sweep", s.PR, "", s.Sweep, "", "", "", "", "",
			fmt.Sprint(s.Cells), fmt.Sprintf("%.1f", s.SequentialMs),
			fmt.Sprintf("%.1f", s.ParallelMs), fmt.Sprintf("%.2f", s.Speedup)})
	}
	return stats.CSV(header, rows)
}

// Markdown renders the trajectory as a two-table markdown report.
func (t TrajectoryReport) Markdown() string {
	var sb strings.Builder
	sb.WriteString("# Perf trajectory\n\n## Engine hot path\n\n")
	eng := &stats.Table{Header: []string{"pr", "rev", "bench", "ns/op", "allocs/op", "bytes/op", "vs best", "verdict"}}
	for _, r := range t.Engine {
		vsBest := "-"
		if r.BestPR != "" {
			vsBest = fmt.Sprintf("%+.1f%%", r.VsBestPct)
		}
		eng.AddRow(r.PR, orDash(r.GitRevision), r.Bench, fmt.Sprintf("%.2f", r.NsPerOp),
			fmt.Sprint(r.AllocsPerOp), fmt.Sprint(r.BytesPerOp), vsBest, r.Verdict)
	}
	sb.WriteString(eng.Markdown())
	sb.WriteString("\n## Sweep wall time\n\n")
	sw := &stats.Table{Header: []string{"pr", "sweep", "cells", "sequential_ms", "parallel_ms", "speedup"}}
	for _, s := range t.Sweeps {
		sw.AddRow(s.PR, s.Sweep, fmt.Sprint(s.Cells), fmt.Sprintf("%.1f", s.SequentialMs),
			fmt.Sprintf("%.1f", s.ParallelMs), fmt.Sprintf("%.2fx", s.Speedup))
	}
	sb.WriteString(sw.Markdown())
	if regs := t.Regressions(); len(regs) > 0 {
		sb.WriteString("\n## Regressions\n\n")
		for _, r := range regs {
			fmt.Fprintf(&sb, "- %s\n", r)
		}
	}
	return sb.String()
}
