// Package netfunc implements the two network functions the paper uses to
// bracket the packet-processing spectrum (Sec. 5.1): L3 Forwarding (L3F),
// which makes a forwarding decision from the packet header alone, and Deep
// Packet Inspection (DPI), which scans the entire payload. Both are real
// implementations — a longest-prefix-match table and an Aho-Corasick
// multi-pattern matcher — plus the memory-footprint model the interference
// experiments need (how many cachelines of a packet each function touches).
package netfunc

import (
	"fmt"

	"netdimm/internal/nic"
	"netdimm/internal/sim"
)

// Kind selects a network function.
type Kind int

const (
	// L3F forwards on header information only.
	L3F Kind = iota
	// DPI processes the entire header and payload.
	DPI
)

func (k Kind) String() string {
	switch k {
	case L3F:
		return "L3F"
	case DPI:
		return "DPI"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// LinesTouched returns how many cachelines of the packet the CPU must
// fetch: one (the header, served by nCache on a NetDIMM) for L3F, the full
// packet for DPI. This is the quantity that drives the Fig. 12(b) memory
// interference difference.
func (k Kind) LinesTouched(p nic.Packet) int {
	if k == L3F {
		return 1
	}
	return p.Cachelines()
}

// CPUCost models the per-packet compute time: a table lookup for L3F, a
// per-byte scan for DPI.
func (k Kind) CPUCost(p nic.Packet) sim.Time {
	if k == L3F {
		return 40 * sim.Nanosecond
	}
	return 60*sim.Nanosecond + sim.Time(p.Size)*sim.Nanosecond/4 // ~4B/ns scan
}

// IPv4 is a host-order IPv4 address.
type IPv4 uint32

// String renders dotted quad.
func (a IPv4) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(a>>24), byte(a>>16), byte(a>>8), byte(a))
}

// Route is one forwarding entry: a prefix and its next hop.
type Route struct {
	Prefix IPv4
	Bits   int // prefix length 0..32
	// NextHop is the egress port / next-hop identifier.
	NextHop int
}

// Table is a longest-prefix-match forwarding table implemented as a binary
// trie — the data structure behind the L3F function.
type Table struct {
	root   *trieNode
	routes int
}

type trieNode struct {
	children [2]*trieNode
	route    *Route
}

// NewTable returns an empty table.
func NewTable() *Table { return &Table{root: &trieNode{}} }

// Len returns the number of installed routes.
func (t *Table) Len() int { return t.routes }

// Insert adds or replaces a route. Invalid prefix lengths are rejected.
func (t *Table) Insert(r Route) error {
	if r.Bits < 0 || r.Bits > 32 {
		return fmt.Errorf("netfunc: prefix length %d out of range", r.Bits)
	}
	n := t.root
	for i := 0; i < r.Bits; i++ {
		bit := (r.Prefix >> (31 - i)) & 1
		if n.children[bit] == nil {
			n.children[bit] = &trieNode{}
		}
		n = n.children[bit]
	}
	if n.route == nil {
		t.routes++
	}
	rr := r
	n.route = &rr
	return nil
}

// Lookup returns the longest-prefix-match route for dst, or false if no
// route covers it.
func (t *Table) Lookup(dst IPv4) (Route, bool) {
	n := t.root
	var best *Route
	if n.route != nil {
		best = n.route
	}
	for i := 0; i < 32 && n != nil; i++ {
		bit := (dst >> (31 - i)) & 1
		n = n.children[bit]
		if n != nil && n.route != nil {
			best = n.route
		}
	}
	if best == nil {
		return Route{}, false
	}
	return *best, true
}

// Forward parses the destination address out of a packet header (bytes
// 30..34 of an Ethernet+IPv4 frame, network order) and looks it up. It
// returns the next hop, or an error for frames too short to carry IPv4.
func (t *Table) Forward(header []byte) (int, error) {
	const dstOff = 30 // 14B Ethernet + 16B into IPv4 header
	if len(header) < dstOff+4 {
		return 0, fmt.Errorf("netfunc: header too short (%dB) for IPv4", len(header))
	}
	dst := IPv4(header[dstOff])<<24 | IPv4(header[dstOff+1])<<16 |
		IPv4(header[dstOff+2])<<8 | IPv4(header[dstOff+3])
	r, ok := t.Lookup(dst)
	if !ok {
		return 0, fmt.Errorf("netfunc: no route to %v", dst)
	}
	return r.NextHop, nil
}
