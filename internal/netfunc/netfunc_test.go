package netfunc

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"netdimm/internal/nic"
)

func TestKindFootprint(t *testing.T) {
	p := nic.Packet{Size: 1514}
	if L3F.LinesTouched(p) != 1 {
		t.Fatal("L3F should touch only the header line")
	}
	if DPI.LinesTouched(p) != 24 {
		t.Fatal("DPI should touch every cacheline")
	}
	if DPI.CPUCost(p) <= L3F.CPUCost(p) {
		t.Fatal("DPI must cost more CPU than L3F")
	}
	if L3F.String() != "L3F" || DPI.String() != "DPI" {
		t.Fatal("names wrong")
	}
}

func ip(a, b, c, d byte) IPv4 {
	return IPv4(a)<<24 | IPv4(b)<<16 | IPv4(c)<<8 | IPv4(d)
}

func TestLPMBasics(t *testing.T) {
	tb := NewTable()
	tb.Insert(Route{Prefix: ip(10, 0, 0, 0), Bits: 8, NextHop: 1})
	tb.Insert(Route{Prefix: ip(10, 1, 0, 0), Bits: 16, NextHop: 2})
	tb.Insert(Route{Prefix: ip(10, 1, 2, 0), Bits: 24, NextHop: 3})
	if tb.Len() != 3 {
		t.Fatalf("Len = %d", tb.Len())
	}

	cases := []struct {
		dst  IPv4
		want int
	}{
		{ip(10, 9, 9, 9), 1},
		{ip(10, 1, 9, 9), 2},
		{ip(10, 1, 2, 3), 3},
	}
	for _, c := range cases {
		r, ok := tb.Lookup(c.dst)
		if !ok || r.NextHop != c.want {
			t.Errorf("Lookup(%v) = %v/%v, want hop %d", c.dst, r, ok, c.want)
		}
	}
	if _, ok := tb.Lookup(ip(192, 168, 0, 1)); ok {
		t.Fatal("uncovered address matched")
	}
}

func TestLPMDefaultRoute(t *testing.T) {
	tb := NewTable()
	tb.Insert(Route{Bits: 0, NextHop: 99}) // 0.0.0.0/0
	r, ok := tb.Lookup(ip(8, 8, 8, 8))
	if !ok || r.NextHop != 99 {
		t.Fatal("default route not matched")
	}
}

func TestLPMReplaceAndErrors(t *testing.T) {
	tb := NewTable()
	tb.Insert(Route{Prefix: ip(10, 0, 0, 0), Bits: 8, NextHop: 1})
	tb.Insert(Route{Prefix: ip(10, 0, 0, 0), Bits: 8, NextHop: 5})
	if tb.Len() != 1 {
		t.Fatal("replacement should not grow the table")
	}
	if r, _ := tb.Lookup(ip(10, 0, 0, 1)); r.NextHop != 5 {
		t.Fatal("replacement not applied")
	}
	if err := tb.Insert(Route{Bits: 33}); err == nil {
		t.Fatal("invalid prefix length accepted")
	}
}

// Property: the longest matching prefix always wins over shorter ones.
func TestLPMLongestWinsProperty(t *testing.T) {
	tb := NewTable()
	tb.Insert(Route{Prefix: 0, Bits: 0, NextHop: 0})
	tb.Insert(Route{Prefix: ip(172, 16, 0, 0), Bits: 12, NextHop: 12})
	tb.Insert(Route{Prefix: ip(172, 16, 5, 0), Bits: 24, NextHop: 24})
	f := func(raw uint32) bool {
		dst := IPv4(raw)
		r, ok := tb.Lookup(dst)
		if !ok {
			return false // default route always matches
		}
		in12 := dst>>20 == ip(172, 16, 0, 0)>>20
		in24 := dst>>8 == ip(172, 16, 5, 0)>>8
		switch {
		case in24:
			return r.NextHop == 24
		case in12:
			return r.NextHop == 12
		default:
			return r.NextHop == 0
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func frameTo(dst IPv4, payload string) []byte {
	f := make([]byte, 34+len(payload))
	f[30], f[31], f[32], f[33] = byte(dst>>24), byte(dst>>16), byte(dst>>8), byte(dst)
	copy(f[34:], payload)
	return f
}

func TestForwardParsesHeader(t *testing.T) {
	tb := NewTable()
	tb.Insert(Route{Prefix: ip(10, 0, 0, 0), Bits: 8, NextHop: 7})
	hop, err := tb.Forward(frameTo(ip(10, 1, 2, 3), ""))
	if err != nil || hop != 7 {
		t.Fatalf("Forward = %d, %v", hop, err)
	}
	if _, err := tb.Forward([]byte{1, 2, 3}); err == nil {
		t.Fatal("short frame accepted")
	}
	if _, err := tb.Forward(frameTo(ip(1, 1, 1, 1), "")); err == nil {
		t.Fatal("unroutable frame accepted")
	}
}

func TestMatcherFindsAllOccurrences(t *testing.T) {
	m, err := NewMatcher("he", "she", "his", "hers")
	if err != nil {
		t.Fatal(err)
	}
	got := m.Scan([]byte("ushers"))
	// Expected matches: "she"@4, "he"@4, "hers"@6.
	if len(got) != 3 {
		t.Fatalf("matches = %v, want 3", got)
	}
	want := map[Match]bool{
		{Pattern: 1, End: 4}: true, // she
		{Pattern: 0, End: 4}: true, // he
		{Pattern: 3, End: 6}: true, // hers
	}
	for _, g := range got {
		if !want[g] {
			t.Fatalf("unexpected match %v", g)
		}
	}
}

func TestMatcherOverlapsAndRepeats(t *testing.T) {
	m, _ := NewMatcher("aa")
	got := m.Scan([]byte("aaaa"))
	if len(got) != 3 {
		t.Fatalf("overlapping matches = %d, want 3", len(got))
	}
}

func TestMatcherContains(t *testing.T) {
	m, _ := NewMatcher("attack", "exploit")
	if !m.Contains([]byte("a harmless exploit string")) {
		t.Fatal("Contains missed a pattern")
	}
	if m.Contains([]byte("clean traffic")) {
		t.Fatal("false positive")
	}
	if len(m.Patterns()) != 2 {
		t.Fatal("Patterns wrong")
	}
}

func TestMatcherEmptyPatternRejected(t *testing.T) {
	if _, err := NewMatcher("ok", ""); err == nil {
		t.Fatal("empty pattern accepted")
	}
}

// Property: Scan agrees with strings.Count-based ground truth for single
// patterns (counting overlaps via manual sliding window).
func TestMatcherAgainstNaiveProperty(t *testing.T) {
	f := func(text []byte, pat uint8) bool {
		patterns := []string{"ab", "ba", "aab"}
		p := patterns[int(pat)%len(patterns)]
		m, err := NewMatcher(p)
		if err != nil {
			return false
		}
		got := len(m.Scan(text))
		want := 0
		for i := 0; i+len(p) <= len(text); i++ {
			if bytes.Equal(text[i:i+len(p)], []byte(p)) {
				want++
			}
		}
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestInspectorVerdicts(t *testing.T) {
	tb := NewTable()
	tb.Insert(Route{Prefix: ip(10, 0, 0, 0), Bits: 8, NextHop: 3})
	m, _ := NewMatcher("malware")
	in := &Inspector{Matcher: m, Table: tb}

	d, err := in.Inspect(frameTo(ip(10, 0, 0, 1), "regular payload"))
	if err != nil || d.Verdict != Forwarded || d.NextHop != 3 {
		t.Fatalf("clean packet: %+v, %v", d, err)
	}
	d, err = in.Inspect(frameTo(ip(10, 0, 0, 1), "contains malware here"))
	if err != nil || d.Verdict != Dropped || len(d.Matches) == 0 {
		t.Fatalf("dirty packet: %+v, %v", d, err)
	}
	if _, err := in.Inspect([]byte("x")); err == nil {
		t.Fatal("short frame accepted")
	}
}

func TestMatcherLongPayload(t *testing.T) {
	m, _ := NewMatcher("needle")
	payload := strings.Repeat("hay", 5000) + "needle" + strings.Repeat("hay", 100)
	got := m.Scan([]byte(payload))
	if len(got) != 1 {
		t.Fatalf("matches = %d", len(got))
	}
}

func BenchmarkMatcherScanMTU(b *testing.B) {
	m, _ := NewMatcher("attack", "exploit", "malware", "rootkit")
	payload := bytes.Repeat([]byte("benign traffic payload "), 66)[:1514]
	b.SetBytes(int64(len(payload)))
	for i := 0; i < b.N; i++ {
		m.Scan(payload)
	}
}

func BenchmarkLPMLookup(b *testing.B) {
	tb := NewTable()
	for i := 0; i < 1000; i++ {
		tb.Insert(Route{Prefix: IPv4(i) << 12, Bits: 20, NextHop: i})
	}
	for i := 0; i < b.N; i++ {
		tb.Lookup(IPv4(i))
	}
}
