package netfunc

import "fmt"

// Matcher is an Aho-Corasick multi-pattern matcher — the scanning engine
// of the DPI network function. It finds every occurrence of every pattern
// in a payload in a single pass.
type Matcher struct {
	// trie as flat arrays: next[state][byte], fail[state], and the pattern
	// indices accepted at each state.
	next   [][256]int32
	fail   []int32
	output [][]int32
	pats   []string
	built  bool
}

// NewMatcher compiles the patterns. Empty patterns are rejected.
func NewMatcher(patterns ...string) (*Matcher, error) {
	m := &Matcher{pats: patterns}
	m.addState() // root
	for i, p := range patterns {
		if p == "" {
			return nil, fmt.Errorf("netfunc: pattern %d is empty", i)
		}
		s := int32(0)
		for j := 0; j < len(p); j++ {
			b := p[j]
			if m.next[s][b] == 0 {
				m.next[s][b] = m.addState()
			}
			s = m.next[s][b]
		}
		m.output[s] = append(m.output[s], int32(i))
	}
	m.buildFailLinks()
	m.built = true
	return m, nil
}

func (m *Matcher) addState() int32 {
	m.next = append(m.next, [256]int32{})
	m.fail = append(m.fail, 0)
	m.output = append(m.output, nil)
	return int32(len(m.next) - 1)
}

// buildFailLinks runs the standard BFS construction, converting the goto
// function into a full DFA (next[s][b] is always defined).
func (m *Matcher) buildFailLinks() {
	queue := make([]int32, 0, len(m.next))
	for b := 0; b < 256; b++ {
		if s := m.next[0][b]; s != 0 {
			m.fail[s] = 0
			queue = append(queue, s)
		}
	}
	for len(queue) > 0 {
		s := queue[0]
		queue = queue[1:]
		for b := 0; b < 256; b++ {
			t := m.next[s][b]
			if t == 0 {
				m.next[s][b] = m.next[m.fail[s]][b]
				continue
			}
			m.fail[t] = m.next[m.fail[s]][b]
			m.output[t] = append(m.output[t], m.output[m.fail[t]]...)
			queue = append(queue, t)
		}
	}
}

// Match is one pattern occurrence: pattern index and the end offset in the
// scanned payload.
type Match struct {
	Pattern int
	End     int
}

// Scan returns every pattern occurrence in payload.
func (m *Matcher) Scan(payload []byte) []Match {
	var out []Match
	s := int32(0)
	for i, b := range payload {
		s = m.next[s][b]
		for _, p := range m.output[s] {
			out = append(out, Match{Pattern: int(p), End: i + 1})
		}
	}
	return out
}

// Contains reports whether any pattern occurs in payload (early exit).
func (m *Matcher) Contains(payload []byte) bool {
	s := int32(0)
	for _, b := range payload {
		s = m.next[s][b]
		if len(m.output[s]) > 0 {
			return true
		}
	}
	return false
}

// Patterns returns the compiled pattern list.
func (m *Matcher) Patterns() []string { return m.pats }

// Inspector is the DPI network function: scan the payload; packets with a
// banned pattern are dropped, others forwarded via the L3F table.
type Inspector struct {
	Matcher *Matcher
	Table   *Table
}

// Verdict is a DPI decision.
type Verdict int

const (
	// Forwarded to the next hop in NextHop.
	Forwarded Verdict = iota
	// Dropped because the payload matched a banned pattern.
	Dropped
)

// Decision is the outcome of inspecting one packet.
type Decision struct {
	Verdict Verdict
	NextHop int
	Matches []Match
}

// Inspect scans the frame (header + payload) and makes the decision.
func (in *Inspector) Inspect(frame []byte) (Decision, error) {
	matches := in.Matcher.Scan(frame)
	if len(matches) > 0 {
		return Decision{Verdict: Dropped, Matches: matches}, nil
	}
	hop, err := in.Table.Forward(frame)
	if err != nil {
		return Decision{}, err
	}
	return Decision{Verdict: Forwarded, NextHop: hop}, nil
}
