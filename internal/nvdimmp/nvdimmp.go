// Package nvdimmp models the DDR5 asynchronous memory transaction protocol
// for NVDIMM-P-class devices (paper Sec. 2.2, Fig. 3b): reads issue an XRD
// command carrying a request ID, the device raises RDY on the response pins
// when the data is staged, the host memory controller issues SEND, and the
// data (tagged with the ID) appears on the DQ bus. Completion is therefore
// asynchronous and may be out of order — which is what lets a NetDIMM with
// non-deterministic local-DRAM access time share a channel with ordinary
// DDR5 DIMMs.
package nvdimmp

import (
	"fmt"

	"netdimm/internal/sim"
)

// Timing holds the protocol's fixed per-transaction costs beyond the
// device's media access time.
type Timing struct {
	// XRD is the command-bus time to transmit the extended read command
	// (full address + request ID takes more command-bus slots than a DDR
	// CAS).
	XRD sim.Time
	// RDYToSend is the host MC reaction time from sensing RDY on the RSP
	// pins to driving the SEND command.
	RDYToSend sim.Time
	// SendToData is the fixed delay from SEND to the first data beat.
	SendToData sim.Time
	// Burst is the data-bus occupancy of one 64B transfer (with the
	// appended request ID metadata).
	Burst sim.Time
	// XWR is the command+data time for an asynchronous (posted) write.
	XWR sim.Time
}

// DefaultTiming returns DDR5-plausible protocol constants: the protocol
// adds a few tens of nanoseconds on top of the media access.
func DefaultTiming() Timing {
	return Timing{
		XRD:        5 * sim.Nanosecond,
		RDYToSend:  10 * sim.Nanosecond,
		SendToData: 10 * sim.Nanosecond,
		Burst:      4 * sim.Nanosecond,
		XWR:        8 * sim.Nanosecond,
	}
}

// ReadOverhead is the protocol-added latency of one asynchronous read: the
// XRD command plus RDY→SEND→data handshake, excluding the media time.
func (t Timing) ReadOverhead() sim.Time {
	return t.XRD + t.RDYToSend + t.SendToData + t.Burst
}

// WriteOverhead is the protocol-added latency of one asynchronous write.
func (t Timing) WriteOverhead() sim.Time { return t.XWR }

// RequestID tags an in-flight asynchronous transaction.
type RequestID uint16

// Transaction is one tracked asynchronous read.
type Transaction struct {
	ID      RequestID
	Addr    int64
	Issued  sim.Time
	ReadyAt sim.Time // when RDY was raised; valid only once ready
	// Deadline is the instant the host MC gives up waiting for RDY
	// (Issued + the tracker's timeout); MaxTime when no timeout is set.
	Deadline sim.Time
	ready    bool
}

// Tracker manages request IDs and out-of-order completion for one channel,
// mirroring the host MC's view of outstanding NVDIMM-P transactions.
type Tracker struct {
	timing  Timing
	pending map[RequestID]*Transaction
	nextID  RequestID
	maxIDs  int
	// timeout is how long the MC waits for RDY before a transaction is
	// eligible for Abort; 0 means transactions never expire.
	timeout sim.Time

	issued    uint64
	completed uint64
	aborted   uint64
	ooo       uint64 // completions that overtook an older transaction

	// probe, when set, observes the outstanding-transaction count at the
	// instants the tracker learns the time (Issue and Ready).
	probe func(now sim.Time, outstanding int)
}

// NewTracker returns a tracker allowing up to maxOutstanding concurrent
// transactions (the protocol's ID space bound).
func NewTracker(t Timing, maxOutstanding int) *Tracker {
	if maxOutstanding <= 0 {
		panic("nvdimmp: maxOutstanding must be positive")
	}
	return &Tracker{
		timing:  t,
		pending: make(map[RequestID]*Transaction),
		maxIDs:  maxOutstanding,
	}
}

// Timing returns the tracker's protocol constants.
func (tr *Tracker) Timing() Timing { return tr.timing }

// SetTimeout arms a RDY deadline: transactions issued afterwards expire
// `d` after issue (see Expired / Abort). A zero d disarms the deadline.
func (tr *Tracker) SetTimeout(d sim.Time) { tr.timeout = d }

// Timeout returns the armed RDY deadline (0 when disarmed).
func (tr *Tracker) Timeout() sim.Time { return tr.timeout }

// Outstanding reports the number of in-flight transactions.
func (tr *Tracker) Outstanding() int { return len(tr.pending) }

// SetProbe attaches (or, with nil, detaches) an outstanding-count
// observer. The protocol's Complete and Abort paths carry no timestamp, so
// the probe fires on Issue and Ready — the instants the host MC knows the
// time — which brackets every change an exported series needs.
func (tr *Tracker) SetProbe(p func(now sim.Time, outstanding int)) { tr.probe = p }

// Issue allocates a request ID for a read of addr at time now. It returns
// an error when the ID space is exhausted (the MC must stall).
func (tr *Tracker) Issue(now sim.Time, addr int64) (*Transaction, error) {
	if len(tr.pending) >= tr.maxIDs {
		return nil, fmt.Errorf("nvdimmp: all %d request IDs in flight", tr.maxIDs)
	}
	for {
		if _, used := tr.pending[tr.nextID]; !used {
			break
		}
		tr.nextID++
	}
	tx := &Transaction{ID: tr.nextID, Addr: addr, Issued: now, Deadline: sim.MaxTime}
	if tr.timeout > 0 {
		tx.Deadline = now + tr.timeout
	}
	tr.nextID++
	tr.pending[tx.ID] = tx
	tr.issued++
	if tr.probe != nil {
		tr.probe(now, len(tr.pending))
	}
	return tx, nil
}

// Expired reports whether the transaction is still pending, has not raised
// RDY, and has passed its deadline at time now.
func (tr *Tracker) Expired(id RequestID, now sim.Time) bool {
	tx, ok := tr.pending[id]
	return ok && !tx.ready && now >= tx.Deadline
}

// Abort retires a transaction whose RDY never arrived (or arrived too late
// for the MC to act on), freeing its request ID for re-issue. It is the
// timeout path's counterpart to Complete.
func (tr *Tracker) Abort(id RequestID) (*Transaction, error) {
	tx, ok := tr.pending[id]
	if !ok {
		return nil, fmt.Errorf("nvdimmp: aborting unknown request %d", id)
	}
	delete(tr.pending, id)
	tr.aborted++
	return tx, nil
}

// Aborted reports how many transactions were retired via Abort.
func (tr *Tracker) Aborted() uint64 { return tr.aborted }

// Ready records the device raising RDY for the transaction at time now.
func (tr *Tracker) Ready(id RequestID, now sim.Time) error {
	tx, ok := tr.pending[id]
	if !ok {
		return fmt.Errorf("nvdimmp: RDY for unknown request %d", id)
	}
	if tx.ready {
		return fmt.Errorf("nvdimmp: duplicate RDY for request %d", id)
	}
	tx.ReadyAt = now
	tx.ready = true
	if tr.probe != nil {
		tr.probe(now, len(tr.pending))
	}
	return nil
}

// Complete retires the transaction (SEND issued, data received), freeing
// its ID. It returns the transaction and whether it completed out of order
// with respect to issue order.
func (tr *Tracker) Complete(id RequestID) (*Transaction, error) {
	tx, ok := tr.pending[id]
	if !ok {
		return nil, fmt.Errorf("nvdimmp: completing unknown request %d", id)
	}
	if !tx.ready {
		return nil, fmt.Errorf("nvdimmp: SEND before RDY for request %d", id)
	}
	overtook := false
	for _, other := range tr.pending {
		if other.ID != id && other.Issued < tx.Issued {
			overtook = true
			break
		}
	}
	if overtook {
		tr.ooo++
	}
	delete(tr.pending, id)
	tr.completed++
	return tx, nil
}

// Stats reports counters: issued, completed and out-of-order completions.
func (tr *Tracker) Stats() (issued, completed, outOfOrder uint64) {
	return tr.issued, tr.completed, tr.ooo
}

// ReadLatency composes the full asynchronous read latency for a media
// access of the given duration: protocol overhead + media time.
func (t Timing) ReadLatency(media sim.Time) sim.Time {
	return t.ReadOverhead() + media
}
