package nvdimmp

import (
	"testing"

	"netdimm/internal/sim"
)

func TestTrackerTimeoutStampsDeadline(t *testing.T) {
	tr := NewTracker(DefaultTiming(), 4)
	tx, err := tr.Issue(100, 0)
	if err != nil {
		t.Fatal(err)
	}
	if tx.Deadline != sim.MaxTime {
		t.Errorf("no-timeout deadline = %v, want MaxTime", tx.Deadline)
	}
	tr.Ready(tx.ID, 150)
	tr.Complete(tx.ID)

	tr.SetTimeout(500)
	if tr.Timeout() != 500 {
		t.Fatalf("Timeout() = %v", tr.Timeout())
	}
	tx2, err := tr.Issue(1000, 64)
	if err != nil {
		t.Fatal(err)
	}
	if tx2.Deadline != 1500 {
		t.Errorf("deadline = %v, want issue+timeout = 1500", tx2.Deadline)
	}
}

func TestTrackerExpired(t *testing.T) {
	tr := NewTracker(DefaultTiming(), 4)
	tr.SetTimeout(500)
	tx, _ := tr.Issue(0, 0)
	if tr.Expired(tx.ID, 499) {
		t.Error("expired before the deadline")
	}
	if !tr.Expired(tx.ID, 500) {
		t.Error("not expired at the deadline")
	}
	// RDY arriving clears eligibility even past the deadline.
	tr.Ready(tx.ID, 400)
	if tr.Expired(tx.ID, 600) {
		t.Error("a ready transaction must not be expired")
	}
	tr.Complete(tx.ID)
	if tr.Expired(tx.ID, 600) {
		t.Error("a completed transaction must not be expired")
	}
}

func TestTrackerAbortFreesID(t *testing.T) {
	tr := NewTracker(DefaultTiming(), 1)
	tr.SetTimeout(500)
	tx, err := tr.Issue(0, 0x40)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Issue(10, 0x80); err == nil {
		t.Fatal("ID space of 1 allowed a second issue")
	}
	got, err := tr.Abort(tx.ID)
	if err != nil || got.Addr != 0x40 {
		t.Fatalf("Abort = %+v, %v", got, err)
	}
	if tr.Aborted() != 1 {
		t.Errorf("Aborted() = %d, want 1", tr.Aborted())
	}
	if tr.Outstanding() != 0 {
		t.Errorf("Outstanding() = %d after abort", tr.Outstanding())
	}
	// The freed ID is reusable.
	if _, err := tr.Issue(20, 0xc0); err != nil {
		t.Fatalf("re-issue after abort: %v", err)
	}
	// Aborting twice (or an unknown ID) errors.
	if _, err := tr.Abort(99); err == nil {
		t.Error("Abort(unknown) = nil error")
	}
}

func TestAbortedNotCountedCompleted(t *testing.T) {
	tr := NewTracker(DefaultTiming(), 4)
	tr.SetTimeout(100)
	tx, _ := tr.Issue(0, 0)
	tr.Abort(tx.ID)
	issued, completed, _ := tr.Stats()
	if issued != 1 || completed != 0 {
		t.Errorf("issued/completed = %d/%d, want 1/0", issued, completed)
	}
	// Completing an aborted transaction must fail — its ID is retired.
	if _, err := tr.Complete(tx.ID); err == nil {
		t.Error("Complete(aborted) = nil error")
	}
}
