package nvdimmp

import (
	"testing"
	"testing/quick"

	"netdimm/internal/sim"
)

func TestOverheads(t *testing.T) {
	tm := DefaultTiming()
	if tm.ReadOverhead() != tm.XRD+tm.RDYToSend+tm.SendToData+tm.Burst {
		t.Fatal("ReadOverhead composition wrong")
	}
	if tm.WriteOverhead() != tm.XWR {
		t.Fatal("WriteOverhead wrong")
	}
	if tm.ReadLatency(50*sim.Nanosecond) != tm.ReadOverhead()+50*sim.Nanosecond {
		t.Fatal("ReadLatency composition wrong")
	}
	// Protocol overhead should be tens of ns, small next to PCIe round
	// trips — that is the design point.
	if tm.ReadOverhead() > 100*sim.Nanosecond {
		t.Fatalf("ReadOverhead = %v, implausibly large", tm.ReadOverhead())
	}
}

func TestIssueReadyComplete(t *testing.T) {
	tr := NewTracker(DefaultTiming(), 8)
	tx, err := tr.Issue(100, 0x1000)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Outstanding() != 1 {
		t.Fatalf("Outstanding = %d", tr.Outstanding())
	}
	if err := tr.Ready(tx.ID, 150); err != nil {
		t.Fatal(err)
	}
	got, err := tr.Complete(tx.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.Addr != 0x1000 || got.Issued != 100 || got.ReadyAt != 150 {
		t.Fatalf("transaction = %+v", got)
	}
	if tr.Outstanding() != 0 {
		t.Fatal("transaction not retired")
	}
}

func TestProtocolErrors(t *testing.T) {
	tr := NewTracker(DefaultTiming(), 2)
	tx, _ := tr.Issue(0, 0)
	if err := tr.Ready(99, 10); err == nil {
		t.Error("RDY for unknown ID accepted")
	}
	if _, err := tr.Complete(tx.ID); err == nil {
		t.Error("SEND before RDY accepted")
	}
	tr.Ready(tx.ID, 10)
	if err := tr.Ready(tx.ID, 20); err == nil {
		t.Error("duplicate RDY accepted")
	}
	tr.Complete(tx.ID)
	if _, err := tr.Complete(tx.ID); err == nil {
		t.Error("double completion accepted")
	}
}

func TestIDExhaustion(t *testing.T) {
	tr := NewTracker(DefaultTiming(), 3)
	for i := 0; i < 3; i++ {
		if _, err := tr.Issue(sim.Time(i), int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := tr.Issue(10, 10); err == nil {
		t.Fatal("ID exhaustion not detected")
	}
}

func TestOutOfOrderCompletion(t *testing.T) {
	tr := NewTracker(DefaultTiming(), 8)
	a, _ := tr.Issue(0, 0)
	b, _ := tr.Issue(10, 64)
	tr.Ready(a.ID, 100)
	tr.Ready(b.ID, 50)
	// Complete the younger first: out of order.
	if _, err := tr.Complete(b.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Complete(a.ID); err != nil {
		t.Fatal(err)
	}
	issued, completed, ooo := tr.Stats()
	if issued != 2 || completed != 2 {
		t.Fatalf("stats = %d/%d", issued, completed)
	}
	if ooo != 1 {
		t.Fatalf("out-of-order count = %d, want 1", ooo)
	}
}

func TestIDReuseAfterRetire(t *testing.T) {
	tr := NewTracker(DefaultTiming(), 1)
	for i := 0; i < 100; i++ {
		tx, err := tr.Issue(sim.Time(i), int64(i))
		if err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}
		tr.Ready(tx.ID, sim.Time(i))
		tr.Complete(tx.ID)
	}
	_, completed, _ := tr.Stats()
	if completed != 100 {
		t.Fatalf("completed = %d", completed)
	}
}

// Property: the tracker never exceeds its ID budget and every successfully
// issued transaction can be retired exactly once.
func TestTrackerInvariantProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		tr := NewTracker(DefaultTiming(), 4)
		var open []RequestID
		now := sim.Time(0)
		for _, op := range ops {
			now += sim.Time(op)
			if op%2 == 0 {
				if tx, err := tr.Issue(now, int64(op)); err == nil {
					tr.Ready(tx.ID, now)
					open = append(open, tx.ID)
				}
			} else if len(open) > 0 {
				pick := int(op) % len(open)
				id := open[pick]
				open = append(open[:pick], open[pick+1:]...)
				if _, err := tr.Complete(id); err != nil {
					return false
				}
			}
			if tr.Outstanding() > 4 {
				return false
			}
		}
		return tr.Outstanding() == len(open)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestZeroBudgetPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero budget accepted")
		}
	}()
	NewTracker(DefaultTiming(), 0)
}
