// Package nic provides the machinery common to every NIC model in the
// simulator: packets, TX/RX descriptor rings, MMIO register buses with
// attachment-dependent access cost, and a DMA engine that can emit
// per-cacheline transfer traces (used for the paper's Fig. 7).
//
// The two baseline NIC architectures the paper compares against — the
// discrete PCIe NIC (dNIC) and the CPU-integrated NIC (iNIC) — are defined
// here; the NetDIMM device lives in internal/core.
package nic

import (
	"fmt"

	"netdimm/internal/addrmap"
	"netdimm/internal/sim"
)

// EthernetOverheadBytes is the per-frame overhead on the wire: preamble +
// SFD (8) + FCS (4) + minimum IFG (12).
const EthernetOverheadBytes = 24

// MTU is the maximum transmission unit used throughout the paper (1514B
// frames: 1500B payload + 14B Ethernet header).
const MTU = 1514

// Packet is one network packet traversing the simulation.
type Packet struct {
	ID   uint64
	Size int // frame bytes excluding preamble/FCS/IFG
	Born sim.Time
	// Hops is the number of switches the packet traverses (set by the
	// fabric model / trace generator).
	Hops int
	// Payload-processing hint for network functions: true if the consumer
	// needs only the header (e.g. L3 forwarding).
	HeaderOnly bool
}

// Cachelines returns the number of 64B cachelines the packet occupies in
// memory — 1 to 24 for MTU-sized frames (paper Sec. 4.1).
func (p Packet) Cachelines() int {
	n := (p.Size + int(addrmap.CachelineSize) - 1) / int(addrmap.CachelineSize)
	if n < 1 {
		n = 1
	}
	return n
}

// Descriptor is one TX or RX ring entry: a DMA buffer pointer plus length
// and status flags packed in 16 bytes (two 64-bit words, matching Alg. 1's
// "total size is 64 bits" kick-off write for size+flags).
type Descriptor struct {
	BufAddr int64
	Len     int
	Owned   bool // true: owned by hardware, false: owned by software
	Done    bool // hardware finished processing
}

// DescriptorBytes is the in-memory size of one descriptor.
const DescriptorBytes = 16

// Ring is a circular descriptor ring shared between driver and NIC.
type Ring struct {
	Name  string
	Base  int64 // physical address of slot 0
	slots []Descriptor
	head  int // producer index
	tail  int // consumer index
	count int
}

// NewRing allocates a ring of n descriptors backed at physical address
// base.
func NewRing(name string, base int64, n int) *Ring {
	if n <= 0 {
		panic("nic: ring size must be positive")
	}
	return &Ring{Name: name, Base: base, slots: make([]Descriptor, n)}
}

// Cap returns the ring capacity.
func (r *Ring) Cap() int { return len(r.slots) }

// Len returns the number of occupied slots.
func (r *Ring) Len() int { return r.count }

// Full reports whether no slot is free.
func (r *Ring) Full() bool { return r.count == len(r.slots) }

// Empty reports whether no slot is occupied.
func (r *Ring) Empty() bool { return r.count == 0 }

// SlotAddr returns the physical address of slot i.
func (r *Ring) SlotAddr(i int) int64 {
	return r.Base + int64(i%len(r.slots))*DescriptorBytes
}

// HeadAddr returns the physical address of the current producer slot.
func (r *Ring) HeadAddr() int64 { return r.SlotAddr(r.head) }

// TailAddr returns the physical address of the current consumer slot.
func (r *Ring) TailAddr() int64 { return r.SlotAddr(r.tail) }

// Push enqueues a descriptor at the producer index.
func (r *Ring) Push(d Descriptor) error {
	if r.Full() {
		return fmt.Errorf("nic: ring %s full (%d)", r.Name, len(r.slots))
	}
	r.slots[r.head] = d
	r.head = (r.head + 1) % len(r.slots)
	r.count++
	return nil
}

// Peek returns the descriptor at the consumer index without removing it.
func (r *Ring) Peek() (Descriptor, error) {
	if r.Empty() {
		return Descriptor{}, fmt.Errorf("nic: ring %s empty", r.Name)
	}
	return r.slots[r.tail], nil
}

// Pop dequeues the descriptor at the consumer index.
func (r *Ring) Pop() (Descriptor, error) {
	d, err := r.Peek()
	if err != nil {
		return Descriptor{}, err
	}
	r.tail = (r.tail + 1) % len(r.slots)
	r.count--
	return d, nil
}

// MarkDone flags the consumer-side descriptor as completed by hardware
// (without consuming it); the polling driver observes Done and pops.
func (r *Ring) MarkDone() error {
	if r.Empty() {
		return fmt.Errorf("nic: ring %s empty", r.Name)
	}
	r.slots[r.tail].Done = true
	return nil
}
