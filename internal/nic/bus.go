package nic

import (
	"netdimm/internal/nvdimmp"
	"netdimm/internal/pcie"
	"netdimm/internal/sim"
)

// RegisterBus abstracts where a NIC's configuration/doorbell registers
// live. The cost of touching them is the paper's "I/O reg acc" latency
// component (Fig. 11), and it differs radically by attachment: a PCIe NIC
// pays a full non-posted round trip to read a register; an integrated NIC
// pays an on-chip access; a NetDIMM pays a memory-channel access.
type RegisterBus interface {
	// ReadCost is the latency of reading one device register.
	ReadCost() sim.Time
	// WriteCost is the latency until a (posted) register write is visible
	// at the device.
	WriteCost() sim.Time
	// Name identifies the attachment for reports.
	Name() string
}

// PCIeBus: registers behind a PCIe link (dNIC).
type PCIeBus struct{ Link pcie.Link }

// UCWriteStall is the CPU-visible cost of retiring an uncacheable MMIO
// doorbell write beyond the wire time: strongly-ordered UC stores drain the
// store buffer and stall the pipeline.
const UCWriteStall = 150 * sim.Nanosecond

// ReadCost implements RegisterBus: a 4B non-posted read round trip.
func (b PCIeBus) ReadCost() sim.Time { return b.Link.ReadRoundTrip(4) }

// WriteCost implements RegisterBus: an 8B posted write plus the UC-store
// pipeline stall.
func (b PCIeBus) WriteCost() sim.Time { return b.Link.PostedWrite(8) + UCWriteStall }

// Name implements RegisterBus.
func (b PCIeBus) Name() string { return b.Link.String() }

// OnChipBus: registers on the processor die (iNIC). Costs are a handful of
// core cycles plus on-chip interconnect.
type OnChipBus struct {
	Read  sim.Time
	Write sim.Time
}

// DefaultOnChipBus returns iNIC register costs: tens of cycles at 3.4GHz.
func DefaultOnChipBus() OnChipBus {
	return OnChipBus{Read: 20 * sim.Nanosecond, Write: 10 * sim.Nanosecond}
}

// ReadCost implements RegisterBus.
func (b OnChipBus) ReadCost() sim.Time { return b.Read }

// WriteCost implements RegisterBus.
func (b OnChipBus) WriteCost() sim.Time { return b.Write }

// Name implements RegisterBus.
func (b OnChipBus) Name() string { return "on-chip" }

// MemChannelBus: registers reached over a DDR5 memory channel with the
// NVDIMM-P asynchronous protocol (NetDIMM). "Polling NetDIMM is more
// efficient than polling a PCIe NIC as accessing I/O registers on a
// NetDIMM is much faster" (paper Sec. 4.2.2).
type MemChannelBus struct {
	Protocol nvdimmp.Timing
	// Media is the device-side latency to produce the register value (the
	// nController answers from its own SRAM, not DRAM).
	Media sim.Time
}

// DefaultMemChannelBus returns NetDIMM register costs.
func DefaultMemChannelBus() MemChannelBus {
	return MemChannelBus{Protocol: nvdimmp.DefaultTiming(), Media: 15 * sim.Nanosecond}
}

// ReadCost implements RegisterBus: an asynchronous XRD/RDY/SEND read.
func (b MemChannelBus) ReadCost() sim.Time { return b.Protocol.ReadLatency(b.Media) }

// WriteCost implements RegisterBus: an asynchronous posted write.
func (b MemChannelBus) WriteCost() sim.Time { return b.Protocol.WriteOverhead() + b.Media }

// Name implements RegisterBus.
func (b MemChannelBus) Name() string { return "memory-channel" }
