package nic

import (
	"fmt"

	"netdimm/internal/fault"
	"netdimm/internal/obs"
	"netdimm/internal/sim"
	"netdimm/internal/stats"
)

// Retransmitter is the NIC-side ARQ engine of the fault plane: it detects
// lost frames (no acknowledgement before the retransmit timer) and
// corrupted frames (the receiver's FCS check discards them, which the
// sender again learns of by timeout), then retransmits with capped
// exponential backoff up to the policy's retry cap. All three NIC
// architectures share it — link-level recovery sits below the dNIC / iNIC /
// NetDIMM distinction.
type Retransmitter struct {
	Eng    *sim.Engine
	Policy fault.RetryPolicy
	// Counters, if non-nil, receives the retransmit/failure tallies
	// (usually the owning injector's counter block).
	Counters *stats.FaultCounters
	// Trace, if non-nil, records one span per transmission attempt and
	// per backoff wait, so a fault-sweep trace shows exactly where a
	// packet's latency went.
	Trace *obs.Track
}

// Send delivers one frame through try, retrying on faults. try draws
// attempt number n (0-based) and returns its outcome plus the wire time the
// attempt consumed. done fires exactly once: at the delivery instant on
// success, or — when the retry cap is exhausted — at the instant the sender
// gives up, with an error wrapping fault.ErrExhausted. attempts counts
// transmissions including the final one.
func (rt *Retransmitter) Send(try func(attempt int) (fault.Outcome, sim.Time), done func(attempts int, err error)) {
	rt.attempt(0, try, done)
}

func (rt *Retransmitter) attempt(n int, try func(int) (fault.Outcome, sim.Time), done func(int, error)) {
	now := rt.Eng.Now()
	outcome, wire := try(n)
	if outcome == fault.Delivered {
		rt.Trace.Span("xmit", now, now+wire)
		rt.Eng.Schedule(wire, func() { done(n+1, nil) })
		return
	}
	if rt.Trace != nil {
		rt.Trace.Span("xmit ("+outcome.String()+")", now, now+wire)
	}
	// The frame was lost or discarded. A corrupted frame consumed its full
	// wire time before the receiver dropped it; either way the sender only
	// learns of the loss when its retransmit timer (the backoff delay)
	// expires.
	delay, ok := rt.Policy.NextDelay(n)
	if !ok {
		if rt.Counters != nil {
			rt.Counters.DeliveryFailures++
		}
		giveUp := rt.Policy.Backoff.Delay(n)
		rt.Trace.Span("give-up timeout", now+wire, now+wire+giveUp)
		rt.Eng.Schedule(wire+giveUp, func() {
			done(n+1, fmt.Errorf("nic: frame %s after %d attempts: %w", outcome, n+1, fault.ErrExhausted))
		})
		return
	}
	if rt.Counters != nil {
		rt.Counters.Retransmits++
	}
	rt.Trace.Span("backoff", now+wire, now+wire+delay)
	rt.Eng.Schedule(wire+delay, func() { rt.attempt(n+1, try, done) })
}
