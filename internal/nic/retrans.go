package nic

import (
	"fmt"

	"netdimm/internal/fault"
	"netdimm/internal/obs"
	"netdimm/internal/sim"
	"netdimm/internal/stats"
)

// Retransmitter is the NIC-side ARQ engine of the fault plane: it detects
// lost frames (no acknowledgement before the retransmit timer) and
// corrupted frames (the receiver's FCS check discards them, which the
// sender again learns of by timeout), then retransmits with capped
// exponential backoff up to the policy's retry cap. All three NIC
// architectures share it — link-level recovery sits below the dNIC / iNIC /
// NetDIMM distinction.
type Retransmitter struct {
	Eng    *sim.Engine
	Policy fault.RetryPolicy
	// Counters, if non-nil, receives the retransmit/failure tallies
	// (usually the owning injector's counter block).
	Counters *stats.FaultCounters
	// Trace, if non-nil, records one span per transmission attempt and
	// per backoff wait, so a fault-sweep trace shows exactly where a
	// packet's latency went.
	Trace *obs.Track
}

// Send delivers one frame through try, retrying on faults. try draws
// attempt number n (0-based) and returns its outcome plus the wire time the
// attempt consumed. done fires exactly once: at the delivery instant on
// success, or — when the retry cap is exhausted — at the instant the sender
// gives up, with an error wrapping fault.ErrExhausted. attempts counts
// transmissions including the final one.
func (rt *Retransmitter) Send(try func(attempt int) (fault.Outcome, sim.Time), done func(attempts int, err error)) {
	rt.attempt(0, try, done)
}

func (rt *Retransmitter) attempt(n int, try func(int) (fault.Outcome, sim.Time), done func(int, error)) {
	now := rt.Eng.Now()
	outcome, wire := try(n)
	if outcome == fault.Delivered {
		rt.Trace.Span("xmit", now, now+wire)
		rt.Eng.Schedule(wire, func() { done(n+1, nil) })
		return
	}
	if rt.Trace != nil {
		rt.Trace.Span("xmit ("+outcome.String()+")", now, now+wire)
	}
	// The frame was lost or discarded. A corrupted frame consumed its full
	// wire time before the receiver dropped it; either way the sender only
	// learns of the loss when its retransmit timer (the backoff delay)
	// expires.
	delay, ok := rt.Policy.NextDelay(n)
	if !ok {
		if rt.Counters != nil {
			rt.Counters.DeliveryFailures++
		}
		giveUp := rt.Policy.Backoff.Delay(n)
		rt.Trace.Span("give-up timeout", now+wire, now+wire+giveUp)
		rt.Eng.Schedule(wire+giveUp, func() {
			done(n+1, fmt.Errorf("nic: frame %s after %d attempts: %w", outcome, n+1, fault.ErrExhausted))
		})
		return
	}
	if rt.Counters != nil {
		rt.Counters.Retransmits++
	}
	rt.Trace.Span("backoff", now+wire, now+wire+delay)
	rt.Eng.Schedule(wire+delay, func() { rt.attempt(n+1, try, done) })
}

// SendAsync delivers one frame through a path whose outcome the sender
// cannot observe synchronously — a multi-hop fabric where the frame may
// die at any queue or down element along the way. xmit transmits attempt
// n (0-based) and must invoke ack exactly once if and when that attempt's
// frame is acknowledged end to end; if no ack arrives before the policy's
// backoff delay for that attempt, the frame is presumed lost and
// retransmitted. The first ack wins: late acks — a slow frame overtaken
// by its own retransmission — are absorbed silently, and any ack after
// the retry cap gave up is likewise ignored. done fires exactly once,
// with attempts counting transmissions including the final one, and an
// error wrapping fault.ErrExhausted when the cap ran out.
//
// A retransmit timer that is shorter than the path's loaded round trip is
// safe (the duplicate delivers and is ignored) but wasteful; size the
// policy's base above the expected RTT.
func (rt *Retransmitter) SendAsync(xmit func(attempt int, ack func()), done func(attempts int, err error)) {
	finished := false
	var attempt func(n int)
	attempt = func(n int) {
		sent := rt.Eng.Now()
		var timer sim.EventID
		armed := false
		xmit(n, func() {
			if finished {
				return // a duplicate or post-give-up ack
			}
			finished = true
			if armed {
				rt.Eng.Cancel(timer)
			}
			rt.Trace.Span("xmit", sent, rt.Eng.Now())
			done(n+1, nil)
		})
		if finished {
			return // acked synchronously (a zero-latency test path)
		}
		delay, ok := rt.Policy.NextDelay(n)
		if !ok {
			// Out of retries: wait out the last timer, then give up.
			timer = rt.Eng.Schedule(rt.Policy.Backoff.Delay(n), func() {
				if finished {
					return // an earlier attempt's ack landed in the meantime
				}
				finished = true
				if rt.Counters != nil {
					rt.Counters.DeliveryFailures++
				}
				rt.Trace.Span("give-up timeout", sent, rt.Eng.Now())
				done(n+1, fmt.Errorf("nic: no ack after %d attempts: %w", n+1, fault.ErrExhausted))
			})
			armed = true
			return
		}
		timer = rt.Eng.Schedule(delay, func() {
			if finished {
				return // an earlier attempt's ack landed in the meantime
			}
			if rt.Counters != nil {
				rt.Counters.Retransmits++
			}
			rt.Trace.Span("timeout", sent, rt.Eng.Now())
			attempt(n + 1)
		})
		armed = true
	}
	attempt(0)
}
