package nic

import (
	"netdimm/internal/addrmap"
	"netdimm/internal/pcie"
	"netdimm/internal/sim"
)

// TraceEntry is one cacheline-granular memory request issued by a DMA
// engine, as observed at the memory controller (paper Fig. 7 plots exactly
// this: relative address vs relative arrival time).
type TraceEntry struct {
	Addr  int64
	At    sim.Time
	Write bool
}

// TraceTransfer generates the per-cacheline request trace for a DMA of
// bytes starting at addr, paced at bytesPerSec, beginning at start. Each
// packet arrival generates one such burst — 24 cachelines for a 1514B
// frame, arriving within ~150ns at 40GbE rates (paper Sec. 4.1).
func TraceTransfer(start sim.Time, addr, bytes int64, write bool, bytesPerSec float64) []TraceEntry {
	if bytes <= 0 {
		return nil
	}
	lines := (bytes + addrmap.CachelineSize - 1) / addrmap.CachelineSize
	out := make([]TraceEntry, 0, lines)
	perLine := sim.Time(float64(addrmap.CachelineSize) / bytesPerSec * float64(sim.Second))
	for i := int64(0); i < lines; i++ {
		out = append(out, TraceEntry{
			Addr:  addr + i*addrmap.CachelineSize,
			At:    start + sim.Time(i)*perLine,
			Write: write,
		})
	}
	return out
}

// Device is the hardware-cost model of one NIC architecture, consumed by
// the driver models: how expensive are descriptor and packet movements
// between the NIC and the place packets live (host memory, LLC, or NetDIMM
// local DRAM).
type Device interface {
	// Regs is the register attachment (I/O reg acc component).
	Regs() RegisterBus
	// DescriptorFetch is the NIC-side cost of reading one descriptor.
	DescriptorFetch() sim.Time
	// DescriptorWriteback is the NIC-side cost of updating ring state.
	DescriptorWriteback() sim.Time
	// PacketRead is the cost for the NIC to pull a TX packet of n bytes
	// out of its buffer location (txDMA).
	PacketRead(n int) sim.Time
	// PacketWrite is the cost for the NIC to push an RX packet of n bytes
	// into its buffer location (rxDMA).
	PacketWrite(n int) sim.Time
	// Name identifies the architecture ("dNIC", "iNIC", "NetDIMM").
	Name() string
}

// MACPipeline is the internal MAC/packet-processing pipeline latency every
// full-blown NIC pays per direction — identical for dNIC, iNIC and the
// nNIC inside a NetDIMM, since all three integrate the same class of
// Ethernet controller.
const MACPipeline = 200 * sim.Nanosecond

// DescriptorBatch is how many descriptors a NIC prefetches per ring read;
// the fetch round trip amortises across the batch.
const DescriptorBatch = 8

// DNIC is the conventional discrete PCIe NIC (paper Fig. 1 left): every
// descriptor batch fetch is a PCIe round trip and packet data crosses the
// link.
type DNIC struct {
	Link pcie.Link
	// HostMemLatency is the host-side memory/LLC access underneath a DMA
	// (the PCIe transaction terminates in the memory system).
	HostMemLatency sim.Time
}

// NewDNIC returns the Table 1 dNIC: x8 PCIe Gen4.
func NewDNIC() DNIC { return NewDNICWith(pcie.NewLink(pcie.Gen4, 8)) }

// NewDNICWith returns a dNIC attached over the given PCIe link — the
// constructor a derived system configuration uses.
func NewDNICWith(link pcie.Link) DNIC {
	return DNIC{Link: link, HostMemLatency: 50 * sim.Nanosecond}
}

// Regs implements Device.
func (d DNIC) Regs() RegisterBus { return PCIeBus{Link: d.Link} }

// DescriptorFetch implements Device: a non-posted batched read, amortised
// per descriptor.
func (d DNIC) DescriptorFetch() sim.Time {
	batch := d.Link.ReadRoundTrip(DescriptorBytes*DescriptorBatch) + d.HostMemLatency
	return batch / DescriptorBatch
}

// DescriptorWriteback implements Device: a posted descriptor update.
func (d DNIC) DescriptorWriteback() sim.Time { return d.Link.PostedWrite(DescriptorBytes) }

// PacketRead implements Device: DMA read across PCIe plus the MAC pipeline.
func (d DNIC) PacketRead(n int) sim.Time {
	return d.Link.DMARead(n) + d.HostMemLatency + MACPipeline
}

// PacketWrite implements Device: DMA write across PCIe (lands in LLC with
// DDIO, so no DRAM trip on top) plus the MAC pipeline.
func (d DNIC) PacketWrite(n int) sim.Time { return d.Link.DMAWrite(n) + MACPipeline }

// Name implements Device.
func (d DNIC) Name() string { return "dNIC" }

// INIC is a NIC integrated into the processor die (paper Fig. 1 middle):
// register and descriptor accesses are on-chip; packet data moves through
// the LLC.
type INIC struct {
	Bus OnChipBus
	// LLCLatency is the on-chip access to a descriptor or buffer line.
	LLCLatency sim.Time
	// LLCBandwidth paces packet-data movement through the cache.
	LLCBandwidth float64
}

// NewINIC returns the iNIC cost model.
func NewINIC() INIC {
	return INIC{
		Bus:          DefaultOnChipBus(),
		LLCLatency:   40 * sim.Nanosecond, // LLC + on-chip interconnect
		LLCBandwidth: 50e9,                // on-chip fill bandwidth
	}
}

// Regs implements Device.
func (i INIC) Regs() RegisterBus { return i.Bus }

// DescriptorFetch implements Device.
func (i INIC) DescriptorFetch() sim.Time { return i.LLCLatency }

// DescriptorWriteback implements Device.
func (i INIC) DescriptorWriteback() sim.Time { return i.LLCLatency }

// PacketRead implements Device: through the LLC plus the MAC pipeline.
func (i INIC) PacketRead(n int) sim.Time { return i.LLCLatency + i.stream(n) + MACPipeline }

// PacketWrite implements Device: through the LLC plus the MAC pipeline.
func (i INIC) PacketWrite(n int) sim.Time { return i.LLCLatency + i.stream(n) + MACPipeline }

func (i INIC) stream(n int) sim.Time {
	if n <= 0 {
		return 0
	}
	return sim.Time(float64(n) / i.LLCBandwidth * float64(sim.Second))
}

// Name implements Device.
func (i INIC) Name() string { return "iNIC" }
