package nic

import (
	"errors"
	"testing"

	"netdimm/internal/fault"
	"netdimm/internal/sim"
	"netdimm/internal/stats"
)

func retransRig() (*sim.Engine, *Retransmitter, *stats.FaultCounters) {
	eng := sim.NewEngine()
	var c stats.FaultCounters
	rt := &Retransmitter{
		Eng:      eng,
		Policy:   fault.RetryPolicy{Backoff: fault.Backoff{Base: 100 * sim.Nanosecond, Cap: 400 * sim.Nanosecond}, MaxRetries: 3},
		Counters: &c,
	}
	return eng, rt, &c
}

func TestRetransmitterFirstAttemptDelivers(t *testing.T) {
	eng, rt, c := retransRig()
	const wire = 250 * sim.Nanosecond
	var at sim.Time
	attempts := 0
	rt.Send(
		func(int) (fault.Outcome, sim.Time) { return fault.Delivered, wire },
		func(n int, err error) {
			if err != nil {
				t.Errorf("err = %v", err)
			}
			attempts, at = n, eng.Now()
		})
	eng.Run()
	if attempts != 1 {
		t.Fatalf("attempts = %d, want 1", attempts)
	}
	if at != wire {
		t.Errorf("delivered at %v, want the wire time %v", at, wire)
	}
	if c.Retransmits != 0 || c.DeliveryFailures != 0 {
		t.Errorf("counters = %+v for a clean delivery", *c)
	}
}

// Losses before a success: the delivery instant accumulates each failed
// attempt's wire time plus its backoff delay.
func TestRetransmitterRecovers(t *testing.T) {
	eng, rt, c := retransRig()
	const wire = 50 * sim.Nanosecond
	outcomes := []fault.Outcome{fault.Dropped, fault.Corrupted, fault.Delivered}
	var at sim.Time
	attempts := 0
	rt.Send(
		func(n int) (fault.Outcome, sim.Time) {
			if outcomes[n] == fault.Dropped {
				return fault.Dropped, 0 // a vanished frame costs no wire time
			}
			return outcomes[n], wire
		},
		func(n int, err error) {
			if err != nil {
				t.Errorf("err = %v", err)
			}
			attempts, at = n, eng.Now()
		})
	eng.Run()
	if attempts != 3 {
		t.Fatalf("attempts = %d, want 3", attempts)
	}
	// drop: 0 wire + 100ns backoff; corrupt: 50ns wire + 200ns backoff;
	// delivery: 50ns wire.
	want := 100*sim.Nanosecond + wire + 200*sim.Nanosecond + wire
	if at != want {
		t.Errorf("delivered at %v, want %v", at, want)
	}
	if c.Retransmits != 2 {
		t.Errorf("Retransmits = %d, want 2", c.Retransmits)
	}
}

func TestRetransmitterExhausts(t *testing.T) {
	eng, rt, c := retransRig()
	var rerr error
	attempts := 0
	rt.Send(
		func(int) (fault.Outcome, sim.Time) { return fault.Dropped, 0 },
		func(n int, err error) { attempts, rerr = n, err })
	eng.Run()
	if attempts != 4 {
		t.Fatalf("attempts = %d, want 4 (initial + MaxRetries=3)", attempts)
	}
	if !errors.Is(rerr, fault.ErrExhausted) {
		t.Fatalf("err = %v, want ErrExhausted", rerr)
	}
	if c.Retransmits != 3 || c.DeliveryFailures != 1 {
		t.Errorf("counters = %+v, want 3 retransmits, 1 failure", *c)
	}
}
