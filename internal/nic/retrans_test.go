package nic

import (
	"errors"
	"testing"

	"netdimm/internal/fault"
	"netdimm/internal/sim"
	"netdimm/internal/stats"
)

func retransRig() (*sim.Engine, *Retransmitter, *stats.FaultCounters) {
	eng := sim.NewEngine()
	var c stats.FaultCounters
	rt := &Retransmitter{
		Eng:      eng,
		Policy:   fault.RetryPolicy{Backoff: fault.Backoff{Base: 100 * sim.Nanosecond, Cap: 400 * sim.Nanosecond}, MaxRetries: 3},
		Counters: &c,
	}
	return eng, rt, &c
}

func TestRetransmitterFirstAttemptDelivers(t *testing.T) {
	eng, rt, c := retransRig()
	const wire = 250 * sim.Nanosecond
	var at sim.Time
	attempts := 0
	rt.Send(
		func(int) (fault.Outcome, sim.Time) { return fault.Delivered, wire },
		func(n int, err error) {
			if err != nil {
				t.Errorf("err = %v", err)
			}
			attempts, at = n, eng.Now()
		})
	eng.Run()
	if attempts != 1 {
		t.Fatalf("attempts = %d, want 1", attempts)
	}
	if at != wire {
		t.Errorf("delivered at %v, want the wire time %v", at, wire)
	}
	if c.Retransmits != 0 || c.DeliveryFailures != 0 {
		t.Errorf("counters = %+v for a clean delivery", *c)
	}
}

// Losses before a success: the delivery instant accumulates each failed
// attempt's wire time plus its backoff delay.
func TestRetransmitterRecovers(t *testing.T) {
	eng, rt, c := retransRig()
	const wire = 50 * sim.Nanosecond
	outcomes := []fault.Outcome{fault.Dropped, fault.Corrupted, fault.Delivered}
	var at sim.Time
	attempts := 0
	rt.Send(
		func(n int) (fault.Outcome, sim.Time) {
			if outcomes[n] == fault.Dropped {
				return fault.Dropped, 0 // a vanished frame costs no wire time
			}
			return outcomes[n], wire
		},
		func(n int, err error) {
			if err != nil {
				t.Errorf("err = %v", err)
			}
			attempts, at = n, eng.Now()
		})
	eng.Run()
	if attempts != 3 {
		t.Fatalf("attempts = %d, want 3", attempts)
	}
	// drop: 0 wire + 100ns backoff; corrupt: 50ns wire + 200ns backoff;
	// delivery: 50ns wire.
	want := 100*sim.Nanosecond + wire + 200*sim.Nanosecond + wire
	if at != want {
		t.Errorf("delivered at %v, want %v", at, want)
	}
	if c.Retransmits != 2 {
		t.Errorf("Retransmits = %d, want 2", c.Retransmits)
	}
}

func TestRetransmitterExhausts(t *testing.T) {
	eng, rt, c := retransRig()
	var rerr error
	attempts := 0
	rt.Send(
		func(int) (fault.Outcome, sim.Time) { return fault.Dropped, 0 },
		func(n int, err error) { attempts, rerr = n, err })
	eng.Run()
	if attempts != 4 {
		t.Fatalf("attempts = %d, want 4 (initial + MaxRetries=3)", attempts)
	}
	if !errors.Is(rerr, fault.ErrExhausted) {
		t.Fatalf("err = %v, want ErrExhausted", rerr)
	}
	if c.Retransmits != 3 || c.DeliveryFailures != 1 {
		t.Errorf("counters = %+v, want 3 retransmits, 1 failure", *c)
	}
}

func TestSendAsyncFirstAttemptAcks(t *testing.T) {
	eng, rt, c := retransRig()
	const rtt = 60 * sim.Nanosecond
	attempts, done := 0, sim.Time(-1)
	rt.SendAsync(
		func(n int, ack func()) { eng.Schedule(rtt, ack) },
		func(n int, err error) {
			if err != nil {
				t.Errorf("err = %v", err)
			}
			attempts, done = n, eng.Now()
		})
	eng.Run()
	if attempts != 1 || done != rtt {
		t.Fatalf("attempts = %d at %v, want 1 at %v", attempts, done, rtt)
	}
	if c.Retransmits != 0 {
		t.Errorf("Retransmits = %d for a clean ack", c.Retransmits)
	}
}

// A lost first attempt: no ack arrives, the timer fires after the backoff
// delay, and the second attempt's ack completes the send.
func TestSendAsyncRecoversAfterLoss(t *testing.T) {
	eng, rt, c := retransRig()
	const rtt = 60 * sim.Nanosecond
	attempts, done := 0, sim.Time(-1)
	rt.SendAsync(
		func(n int, ack func()) {
			if n == 0 {
				return // frame eaten: no ack will come
			}
			eng.Schedule(rtt, ack)
		},
		func(n int, err error) {
			if err != nil {
				t.Errorf("err = %v", err)
			}
			attempts, done = n, eng.Now()
		})
	eng.Run()
	if attempts != 2 {
		t.Fatalf("attempts = %d, want 2", attempts)
	}
	if want := 100*sim.Nanosecond + rtt; done != want {
		t.Errorf("delivered at %v, want timer + rtt = %v", done, want)
	}
	if c.Retransmits != 1 {
		t.Errorf("Retransmits = %d, want 1", c.Retransmits)
	}
}

// A slow frame overtaken by its own retransmission: attempt 0's ack lands
// after the timer already launched attempt 1. The late ack must win once
// (cancelling nothing it shouldn't), attempt 1's ack must be absorbed as a
// duplicate, and — critically — attempt 1's still-pending timer must not
// fire a third transmission.
func TestSendAsyncLateAckStopsPendingTimer(t *testing.T) {
	eng, rt, c := retransRig()
	transmissions := 0
	doneCalls, attempts := 0, 0
	rt.SendAsync(
		func(n int, ack func()) {
			transmissions++
			if n == 0 {
				eng.Schedule(150*sim.Nanosecond, ack) // lands after the 100ns timer
				return
			}
			eng.Schedule(60*sim.Nanosecond, ack) // the duplicate, landing later still
		},
		func(n int, err error) {
			if err != nil {
				t.Errorf("err = %v", err)
			}
			doneCalls++
			attempts = n
		})
	eng.Run()
	if doneCalls != 1 {
		t.Fatalf("done fired %d times, want exactly once", doneCalls)
	}
	if attempts != 1 {
		t.Errorf("attempts = %d, want 1 (the late first-attempt ack won)", attempts)
	}
	if transmissions != 2 {
		t.Errorf("transmissions = %d, want 2 — a pending timer fired after the ack", transmissions)
	}
	if c.Retransmits != 1 {
		t.Errorf("Retransmits = %d, want 1", c.Retransmits)
	}
}

func TestSendAsyncExhausts(t *testing.T) {
	eng, rt, c := retransRig()
	var rerr error
	attempts, transmissions := 0, 0
	rt.SendAsync(
		func(n int, ack func()) { transmissions++ }, // never acked
		func(n int, err error) { attempts, rerr = n, err })
	eng.Run()
	if attempts != 4 || transmissions != 4 {
		t.Fatalf("attempts = %d, transmissions = %d, want 4 each (initial + MaxRetries=3)", attempts, transmissions)
	}
	if !errors.Is(rerr, fault.ErrExhausted) {
		t.Fatalf("err = %v, want ErrExhausted", rerr)
	}
	if c.Retransmits != 3 || c.DeliveryFailures != 1 {
		t.Errorf("counters = %+v, want 3 retransmits, 1 failure", *c)
	}
	// The give-up instant waits out the final attempt's timer.
	if now := eng.Now(); now != 100*sim.Nanosecond+200*sim.Nanosecond+400*sim.Nanosecond+400*sim.Nanosecond {
		t.Errorf("gave up at %v, want the summed backoff schedule", now)
	}
}

// An ack that arrives after the give-up fired must be ignored, not
// resurrect the send.
func TestSendAsyncAckAfterGiveUpIgnored(t *testing.T) {
	eng, rt, _ := retransRig()
	doneCalls := 0
	var lastErr error
	rt.SendAsync(
		func(n int, ack func()) {
			if n == 3 {
				// The final attempt's ack lands well after its give-up timer.
				eng.Schedule(sim.Millisecond, ack)
			}
		},
		func(n int, err error) { doneCalls++; lastErr = err })
	eng.Run()
	if doneCalls != 1 {
		t.Fatalf("done fired %d times, want exactly once", doneCalls)
	}
	if !errors.Is(lastErr, fault.ErrExhausted) {
		t.Errorf("err = %v, want ErrExhausted (the post-give-up ack must not win)", lastErr)
	}
}

// A synchronous ack — zero-latency test paths call ack inside xmit.
func TestSendAsyncSynchronousAck(t *testing.T) {
	eng, rt, c := retransRig()
	attempts := 0
	rt.SendAsync(
		func(n int, ack func()) { ack() },
		func(n int, err error) {
			if err != nil {
				t.Errorf("err = %v", err)
			}
			attempts = n
		})
	eng.Run()
	if attempts != 1 {
		t.Fatalf("attempts = %d, want 1", attempts)
	}
	if c.Retransmits != 0 {
		t.Errorf("Retransmits = %d, want 0", c.Retransmits)
	}
}
