package nic

import (
	"testing"
	"testing/quick"

	"netdimm/internal/sim"
)

func TestPacketCachelines(t *testing.T) {
	cases := []struct{ size, want int }{
		{1, 1}, {10, 1}, {64, 1}, {65, 2}, {1514, 24}, {0, 1},
	}
	for _, c := range cases {
		if got := (Packet{Size: c.size}).Cachelines(); got != c.want {
			t.Errorf("Cachelines(%d) = %d, want %d", c.size, got, c.want)
		}
	}
}

func TestRingFIFO(t *testing.T) {
	r := NewRing("tx", 0x1000, 4)
	for i := 0; i < 4; i++ {
		if err := r.Push(Descriptor{BufAddr: int64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if !r.Full() {
		t.Fatal("ring should be full")
	}
	if err := r.Push(Descriptor{}); err == nil {
		t.Fatal("push to full ring accepted")
	}
	for i := 0; i < 4; i++ {
		d, err := r.Pop()
		if err != nil {
			t.Fatal(err)
		}
		if d.BufAddr != int64(i) {
			t.Fatalf("pop %d: got buf %d", i, d.BufAddr)
		}
	}
	if !r.Empty() {
		t.Fatal("ring should be empty")
	}
	if _, err := r.Pop(); err == nil {
		t.Fatal("pop from empty ring accepted")
	}
}

func TestRingWrapAround(t *testing.T) {
	r := NewRing("rx", 0, 3)
	for round := 0; round < 10; round++ {
		if err := r.Push(Descriptor{BufAddr: int64(round)}); err != nil {
			t.Fatal(err)
		}
		d, err := r.Pop()
		if err != nil || d.BufAddr != int64(round) {
			t.Fatalf("round %d: %v %v", round, d, err)
		}
	}
}

func TestRingSlotAddr(t *testing.T) {
	r := NewRing("tx", 0x1000, 8)
	if r.SlotAddr(0) != 0x1000 || r.SlotAddr(1) != 0x1000+DescriptorBytes {
		t.Fatal("slot addresses wrong")
	}
	if r.SlotAddr(8) != r.SlotAddr(0) {
		t.Fatal("slot address should wrap")
	}
}

func TestRingMarkDone(t *testing.T) {
	r := NewRing("rx", 0, 2)
	if err := r.MarkDone(); err == nil {
		t.Fatal("MarkDone on empty ring accepted")
	}
	r.Push(Descriptor{})
	if err := r.MarkDone(); err != nil {
		t.Fatal(err)
	}
	d, _ := r.Peek()
	if !d.Done {
		t.Fatal("descriptor not marked done")
	}
}

// Property: count always equals pushes-pops and never exceeds capacity.
func TestRingInvariantProperty(t *testing.T) {
	f := func(ops []bool) bool {
		r := NewRing("p", 0, 5)
		pushed, popped := 0, 0
		for _, push := range ops {
			if push {
				if err := r.Push(Descriptor{}); err == nil {
					pushed++
				}
			} else {
				if _, err := r.Pop(); err == nil {
					popped++
				}
			}
			if r.Len() != pushed-popped || r.Len() > r.Cap() || r.Len() < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestZeroRingPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero ring accepted")
		}
	}()
	NewRing("bad", 0, 0)
}

func TestTraceTransferShape(t *testing.T) {
	// A 1514B packet at 40Gbps: 24 cachelines in a short burst.
	tr := TraceTransfer(0, 0x1000, 1514, true, 40e9/8)
	if len(tr) != 24 {
		t.Fatalf("trace entries = %d, want 24", len(tr))
	}
	for i, e := range tr {
		if e.Addr != 0x1000+int64(i)*64 {
			t.Fatalf("entry %d addr = %#x", i, e.Addr)
		}
		if !e.Write {
			t.Fatal("RX trace must be writes")
		}
	}
	// Paper Fig. 7: the burst spans on the order of 150ns.
	span := tr[len(tr)-1].At - tr[0].At
	if span < 100*sim.Nanosecond || span > 400*sim.Nanosecond {
		t.Fatalf("burst span = %v, want ~150-300ns", span)
	}
	if TraceTransfer(0, 0, 0, true, 1e9) != nil {
		t.Fatal("empty transfer should produce no trace")
	}
}

func TestBusCostOrdering(t *testing.T) {
	d := NewDNIC()
	i := NewINIC()
	m := DefaultMemChannelBus()
	// The central claim of Fig. 11: I/O register access cost ordering is
	// PCIe >> memory channel > on-chip.
	if !(d.Regs().ReadCost() > 5*m.ReadCost()) {
		t.Fatalf("PCIe reg read %v should dwarf memory-channel read %v",
			d.Regs().ReadCost(), m.ReadCost())
	}
	if !(m.ReadCost() > i.Regs().ReadCost()) {
		t.Fatalf("memory-channel read %v should exceed on-chip read %v",
			m.ReadCost(), i.Regs().ReadCost())
	}
	// Reads cost more than posted writes on every bus.
	for _, b := range []RegisterBus{d.Regs(), i.Regs(), m} {
		if b.ReadCost() < b.WriteCost() {
			t.Errorf("%s: read %v < write %v", b.Name(), b.ReadCost(), b.WriteCost())
		}
	}
}

func TestDeviceCostOrdering(t *testing.T) {
	d, i := NewDNIC(), NewINIC()
	// Descriptor fetches: an amortised PCIe batch read still costs more
	// than an on-chip access.
	if d.DescriptorFetch() <= i.DescriptorFetch() {
		t.Fatalf("dNIC descriptor fetch %v should exceed iNIC %v",
			d.DescriptorFetch(), i.DescriptorFetch())
	}
	// Packet movement for an MTU frame: crossing PCIe costs more than
	// moving through the LLC.
	if d.PacketRead(MTU) <= i.PacketRead(MTU) {
		t.Fatal("dNIC packet read should cost more than iNIC")
	}
	if d.Name() != "dNIC" || i.Name() != "iNIC" {
		t.Fatal("names wrong")
	}
}

func TestDMACostMonotonic(t *testing.T) {
	d, i := NewDNIC(), NewINIC()
	for _, dev := range []Device{d, i} {
		if dev.PacketRead(64) > dev.PacketRead(1514) {
			t.Errorf("%s: PacketRead not monotonic", dev.Name())
		}
		if dev.PacketWrite(64) > dev.PacketWrite(1514) {
			t.Errorf("%s: PacketWrite not monotonic", dev.Name())
		}
	}
}
