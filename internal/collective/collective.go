// Package collective is the collective-communication workload plane: the
// many-to-many, synchronized-burst traffic of distributed-ML training that
// the paper's point-to-point and incast experiments never exercise. It
// implements the three canonical operations — Ring AllReduce (a
// reduce-scatter ring followed by an allgather ring), O(log N) binomial-tree
// Broadcast, and Reduce-Scatter (the ring's first phase alone) — as pure
// per-rank step schedules (Plan) plus an event-driven per-rank state
// machine (Exec) that executes a plan over any transport the caller
// provides. The experiments package binds the transport to fabric.Topology
// with per-rank TX/RX driver queues; tests bind it to an instant in-memory
// transport to check the data plane against a sequential reference.
package collective

import "fmt"

// Op identifies one collective operation.
type Op int

const (
	// AllReduce leaves every rank holding the element-wise sum of all
	// ranks' vectors (ring algorithm: reduce-scatter then allgather,
	// 2(N-1) steps, each rank moving 2(N-1)/N of the payload).
	AllReduce Op = iota
	// Broadcast copies rank 0's vector to every rank (binomial tree,
	// ceil(log2 N) rounds).
	Broadcast
	// ReduceScatter leaves rank r holding the fully-reduced chunk
	// (r+1) mod N (the ring's first phase alone, N-1 steps).
	ReduceScatter
)

// Ops lists the operations in presentation order.
var Ops = []Op{AllReduce, Broadcast, ReduceScatter}

func (o Op) String() string {
	switch o {
	case AllReduce:
		return "allreduce"
	case Broadcast:
		return "broadcast"
	case ReduceScatter:
		return "reducescatter"
	default:
		return fmt.Sprintf("Op(%d)", int(o))
	}
}

// ParseOp resolves an operation name; the empty string selects AllReduce.
func ParseOp(s string) (Op, error) {
	switch s {
	case "", "allreduce":
		return AllReduce, nil
	case "broadcast":
		return Broadcast, nil
	case "reducescatter":
		return ReduceScatter, nil
	default:
		return 0, fmt.Errorf("collective: unknown op %q (want allreduce, broadcast or reducescatter)", s)
	}
}

// DefaultPayloadBytes is the per-rank payload when the spec leaves it
// unset: 64KiB, a mid-sized gradient bucket.
const DefaultPayloadBytes = 64 << 10

// MaxRanks bounds the rank count a specification may pin; the sweep's own
// grid tops out at 128, but scenarios may push further.
const MaxRanks = 1024

// Spec is the collective block of a system specification: which operation
// the collective sweep runs, over how many ranks, moving how much data in
// what chunks. The zero value is valid and means "use the sweep defaults"
// (all three ops, the 4–128 rank grid, 64KiB payload, MTU-sized chunks).
// It is JSON-addressable from scenario files like the fault block.
type Spec struct {
	// Op pins the operation axis to one op: "allreduce", "broadcast" or
	// "reducescatter". "" sweeps all three.
	Op string
	// Ranks pins the rank-count axis to one value (each rank is one host
	// of the fabric). 0 sweeps the default 4–128 grid.
	Ranks int
	// PayloadBytes is each rank's vector size in bytes. 0 means 64KiB.
	PayloadBytes int
	// ChunkBytes caps one wire frame's payload; a step's message is
	// fragmented into ceil(bytes/ChunkBytes) frames. 0 means the MTU.
	ChunkBytes int
}

// Validate checks the block; the zero value always passes.
func (s Spec) Validate() error {
	if _, err := ParseOp(s.Op); err != nil {
		return err
	}
	if s.Ranks != 0 && (s.Ranks < 2 || s.Ranks > MaxRanks) {
		return fmt.Errorf("collective: Ranks must be 0 (sweep the default grid) or between 2 and %d, got %d", MaxRanks, s.Ranks)
	}
	if s.PayloadBytes < 0 {
		return fmt.Errorf("collective: PayloadBytes must not be negative, got %d", s.PayloadBytes)
	}
	if s.ChunkBytes < 0 {
		return fmt.Errorf("collective: ChunkBytes must not be negative, got %d", s.ChunkBytes)
	}
	return nil
}
