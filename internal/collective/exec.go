package collective

import (
	"fmt"

	"netdimm/internal/sim"
)

// SendFn is the transport one Exec runs over: deliver `bytes` bytes from
// rank src to rank dst, then call deliver exactly once *on rank dst's
// engine*. step is the receiver's schedule index the message satisfies
// (metadata for tracing; the executor re-derives it on delivery). The
// experiments package implements SendFn with chunked frames through
// fabric.Topology and per-rank TX/RX driver queues; tests implement it
// with an immediate callback.
type SendFn func(src, dst, step, bytes int, deliver func())

// Exec executes one Plan's per-rank state machines event-driven over an
// injected transport. Each rank's machine lives on that rank's engine:
// Launch(r) must be called there, the transport must invoke deliver
// closures there, and all of rank r's state transitions then happen
// single-threaded on that engine — under a sharded engine group the
// cross-shard channel crossings are what sequence sender writes against
// receiver reads, so the data plane needs no locks.
type Exec struct {
	plan Plan
	data [][]int64
	send SendFn
	now  func(rank int) sim.Time

	// All of the state below is sliced per rank, and rank r's slot is
	// only ever touched from rank r's engine — a shared scalar here would
	// be a data race across shards.
	next     []int             // per-rank index of the current step
	waiting  []bool            // rank is parked on next[r]'s receive
	early    []map[int][]int64 // step -> payload that arrived before its turn
	ends     [][]sim.Time      // per-rank per-step completion instants
	finished []bool            // rank completed its whole schedule
}

// NewExec builds an executor for plan over data (one vector per rank, all
// the same length; mutated in place). now reports a rank's engine clock.
func NewExec(plan Plan, data [][]int64, send SendFn, now func(rank int) sim.Time) *Exec {
	if len(data) != plan.Ranks {
		panic(fmt.Sprintf("collective: plan has %d ranks, data %d", plan.Ranks, len(data)))
	}
	e := &Exec{
		plan: plan, data: data, send: send, now: now,
		next:     make([]int, plan.Ranks),
		waiting:  make([]bool, plan.Ranks),
		early:    make([]map[int][]int64, plan.Ranks),
		ends:     make([][]sim.Time, plan.Ranks),
		finished: make([]bool, plan.Ranks),
	}
	for r := range e.ends {
		e.ends[r] = make([]sim.Time, 0, len(plan.Steps[r]))
	}
	return e
}

// Launch starts rank r's machine; call it on rank r's engine at the
// operation's start instant.
func (e *Exec) Launch(r int) { e.run(r) }

// run advances rank r as far as its dependencies allow: submit the
// current step's send, then either consume an already-arrived receive and
// continue, or park until the transport delivers it.
func (e *Exec) run(r int) {
	steps := e.plan.Steps[r]
	for e.next[r] < len(steps) {
		i := e.next[r]
		st := steps[i]
		if st.SendTo >= 0 {
			e.submit(r, st)
		}
		if st.RecvFrom < 0 {
			e.finish(r)
			continue
		}
		if pay, ok := e.early[r][i]; ok {
			delete(e.early[r], i)
			e.apply(r, st, pay)
			e.finish(r)
			continue
		}
		e.waiting[r] = true
		return
	}
	e.finished[r] = true
}

// submit snapshots the outgoing chunk and hands it to the transport. The
// copy pins the payload at send time; the ring schedules never write a
// chunk after sending it, but the copy keeps that invariant local instead
// of load-bearing across packages.
func (e *Exec) submit(r int, st Step) {
	var pay []int64
	if st.SendChunk >= 0 {
		lo, hi := ChunkBounds(len(e.data[r]), e.plan.Ranks, st.SendChunk)
		pay = append([]int64(nil), e.data[r][lo:hi]...)
	} else {
		pay = append([]int64(nil), e.data[r]...)
	}
	dst, rstep := st.SendTo, st.RecvStep
	e.send(r, dst, rstep, 8*len(pay), func() { e.deliver(dst, rstep, pay) })
}

// deliver lands a message at rank r's machine (on rank r's engine): apply
// it if r is parked on exactly this step, otherwise buffer it. The ring
// and tree transports are FIFO per (src,dst) pair so early arrivals can
// only happen with an out-of-order transport, but buffering keeps the
// executor correct — and deterministic — under any SendFn.
func (e *Exec) deliver(r, step int, pay []int64) {
	if e.waiting[r] && e.next[r] == step {
		e.waiting[r] = false
		e.apply(r, e.plan.Steps[r][step], pay)
		e.finish(r)
		e.run(r)
		return
	}
	if e.early[r] == nil {
		e.early[r] = make(map[int][]int64)
	}
	e.early[r][step] = pay
}

// apply folds a received payload into rank r's vector.
func (e *Exec) apply(r int, st Step, pay []int64) {
	lo, hi := 0, len(e.data[r])
	if st.RecvChunk >= 0 {
		lo, hi = ChunkBounds(len(e.data[r]), e.plan.Ranks, st.RecvChunk)
	}
	if hi-lo != len(pay) {
		panic(fmt.Sprintf("collective: rank %d step payload %d elements, want %d", r, len(pay), hi-lo))
	}
	if st.Reduce {
		for i, x := range pay {
			e.data[r][lo+i] += x
		}
	} else {
		copy(e.data[r][lo:hi], pay)
	}
}

// finish stamps the current step's completion instant and moves on.
func (e *Exec) finish(r int) {
	e.ends[r] = append(e.ends[r], e.now(r))
	e.next[r]++
}

// DoneRanks reports how many ranks have completed their whole schedule; a
// finished run has DoneRanks() == Plan.Ranks, anything less means the
// transport lost a message and the collective stalled. Like the other
// accessors below, call it only after the engines have drained.
func (e *Exec) DoneRanks() int {
	n := 0
	for _, f := range e.finished {
		if f {
			n++
		}
	}
	return n
}

// Progress reports the slowest rank's completed-step count and which rank
// it is — the diagnostic for a stalled run.
func (e *Exec) Progress() (rank, steps int) {
	rank, steps = 0, len(e.ends[0])
	for r := 1; r < e.plan.Ranks; r++ {
		if len(e.ends[r]) < steps {
			rank, steps = r, len(e.ends[r])
		}
	}
	return rank, steps
}

// Completion returns the operation's completion instant: the latest step
// completion across all ranks (zero for an empty or stalled-at-start run).
func (e *Exec) Completion() sim.Time {
	var max sim.Time
	for _, ends := range e.ends {
		if n := len(ends); n > 0 && ends[n-1] > max {
			max = ends[n-1]
		}
	}
	return max
}

// StepSkew returns the worst per-step straggler spread: for every step
// index, the gap between the first and last rank (among ranks whose
// schedule has that step) to complete it, maximised over steps. In a
// well-balanced ring this stays near one chunk's service time; a straggler
// rank or a congested link widens it.
func (e *Exec) StepSkew() sim.Time {
	var worst sim.Time
	for s := 0; ; s++ {
		var lo, hi sim.Time
		seen := false
		for r := range e.ends {
			if s >= len(e.ends[r]) {
				continue
			}
			t := e.ends[r][s]
			if !seen || t < lo {
				lo = t
			}
			if !seen || t > hi {
				hi = t
			}
			seen = true
		}
		if !seen {
			return worst
		}
		if hi-lo > worst {
			worst = hi - lo
		}
	}
}

// StepEnds returns rank r's per-step completion instants (in step order);
// the experiments layer turns them into per-rank trace spans.
func (e *Exec) StepEnds(r int) []sim.Time { return e.ends[r] }
