package collective

import "fmt"

// Step is one entry of a rank's schedule. A rank executes its steps
// strictly in order: the step's send (if any) is submitted as soon as the
// step begins, and the step completes when its receive (if any) has been
// applied — immediately after the submit for send-only steps. In the ring
// algorithms this ordering IS the data dependency: the chunk a rank sends
// at step s+1 is exactly the chunk it received (and reduced) at step s.
type Step struct {
	// SendTo is the destination rank of this step's message, -1 when the
	// step sends nothing.
	SendTo int
	// SendChunk is the chunk index the message carries; -1 means the
	// whole vector (tree broadcast).
	SendChunk int
	// RecvStep is the index in SendTo's schedule that this message
	// satisfies (the transport delivers it against that slot).
	RecvStep int
	// RecvFrom is the rank this step waits on, -1 when the step receives
	// nothing.
	RecvFrom int
	// RecvChunk is the chunk index the awaited message carries; -1 means
	// the whole vector.
	RecvChunk int
	// Reduce selects how the received chunk is applied: element-wise sum
	// into the local vector (true) or overwrite (false).
	Reduce bool
}

// Plan is a fully-expanded collective schedule: for every rank, the
// ordered steps it executes. Plans are pure data — NewPlan involves no
// simulation state — so tests can check the dependency graph directly and
// the executor stays a small interpreter.
type Plan struct {
	Op    Op
	Ranks int
	// Steps[r] is rank r's schedule.
	Steps [][]Step
}

// NewPlan expands op over n ranks. n must be at least 2.
func NewPlan(op Op, n int) Plan {
	if n < 2 {
		panic(fmt.Sprintf("collective: plan needs at least 2 ranks, got %d", n))
	}
	p := Plan{Op: op, Ranks: n, Steps: make([][]Step, n)}
	switch op {
	case AllReduce:
		for r := 0; r < n; r++ {
			p.Steps[r] = append(ringReduceScatter(r, n), ringAllGather(r, n)...)
		}
	case ReduceScatter:
		for r := 0; r < n; r++ {
			p.Steps[r] = ringReduceScatter(r, n)
		}
	case Broadcast:
		for r := 0; r < n; r++ {
			p.Steps[r] = binomialBroadcast(r, n)
		}
	default:
		panic(fmt.Sprintf("collective: unknown op %d", int(op)))
	}
	return p
}

// MaxSteps returns the longest rank schedule (every rank's length for the
// ring ops; the root's fan-out length for broadcast).
func (p Plan) MaxSteps() int {
	max := 0
	for _, s := range p.Steps {
		if len(s) > max {
			max = len(s)
		}
	}
	return max
}

// ringReduceScatter is rank r's half of the reduce-scatter ring over n
// ranks: at step s it sends chunk (r-s) mod n to its successor and reduces
// chunk (r-s-1) mod n arriving from its predecessor. After the n-1 steps,
// rank r holds the fully-reduced chunk (r+1) mod n.
func ringReduceScatter(r, n int) []Step {
	steps := make([]Step, n-1)
	for s := 0; s < n-1; s++ {
		steps[s] = Step{
			SendTo:    (r + 1) % n,
			SendChunk: mod(r-s, n),
			RecvStep:  s,
			RecvFrom:  mod(r-1, n),
			RecvChunk: mod(r-s-1, n),
			Reduce:    true,
		}
	}
	return steps
}

// ringAllGather is the second half of ring allreduce: at step s rank r
// forwards the reduced chunk (r+1-s) mod n — its own result for s=0, the
// chunk it received one step earlier after that — and stores chunk
// (r-s) mod n from its predecessor. RecvStep offsets by the reduce-scatter
// phase's length because the two phases concatenate into one schedule.
func ringAllGather(r, n int) []Step {
	steps := make([]Step, n-1)
	for s := 0; s < n-1; s++ {
		steps[s] = Step{
			SendTo:    (r + 1) % n,
			SendChunk: mod(r+1-s, n),
			RecvStep:  (n - 1) + s,
			RecvFrom:  mod(r-1, n),
			RecvChunk: mod(r-s, n),
			Reduce:    false,
		}
	}
	return steps
}

// binomialBroadcast is rank r's schedule in a binomial tree rooted at 0:
// in round s, every rank below 2^s sends the whole vector to rank r+2^s.
// A non-root rank therefore receives exactly once — in round
// floor(log2 r), from r-2^floor(log2 r) — and then forwards through the
// remaining rounds, so the tree completes in ceil(log2 n) rounds with no
// global barrier: each subtree races ahead as soon as its root has data.
func binomialBroadcast(r, n int) []Step {
	var steps []Step
	first := 0 // first round this rank may send in
	if r > 0 {
		j := bitLen(r) - 1 // the round r's parent reaches it
		steps = append(steps, Step{
			SendTo: -1, SendChunk: -1, RecvStep: -1,
			RecvFrom: r - 1<<j, RecvChunk: -1, Reduce: false,
		})
		first = j + 1
	}
	for s := first; r+1<<s < n; s++ {
		steps = append(steps, Step{
			SendTo: r + 1<<s, SendChunk: -1,
			// The child's receive is always its step 0.
			RecvStep: 0,
			RecvFrom: -1, RecvChunk: -1,
		})
	}
	return steps
}

// ChunkBounds returns the half-open element range [lo, hi) of chunk c when
// a vector of elems elements is split into `chunks` near-equal chunks
// (the leading elems mod chunks chunks get one extra element).
func ChunkBounds(elems, chunks, c int) (lo, hi int) {
	base := elems / chunks
	extra := elems % chunks
	if c < extra {
		lo = c * (base + 1)
		return lo, lo + base + 1
	}
	lo = extra*(base+1) + (c-extra)*base
	return lo, lo + base
}

// Verify checks an executed collective's data plane against the
// sequential reference: `before` is every rank's input vector, `after`
// every rank's vector once the op completed. For AllReduce every element
// of every rank must equal the element-wise sum; for Broadcast every rank
// must equal rank 0's input; for ReduceScatter only rank r's owned chunk
// (r+1) mod n is specified and checked.
func Verify(op Op, before, after [][]int64) error {
	n := len(before)
	if n < 2 || len(after) != n {
		return fmt.Errorf("collective: verify needs matching rank sets, got %d before / %d after", n, len(after))
	}
	elems := len(before[0])
	sum := make([]int64, elems)
	for _, v := range before {
		for i, x := range v {
			sum[i] += x
		}
	}
	checkRange := func(r, lo, hi int, want []int64) error {
		for i := lo; i < hi; i++ {
			if after[r][i] != want[i] {
				return fmt.Errorf("collective: %v rank %d element %d = %d, want %d", op, r, i, after[r][i], want[i])
			}
		}
		return nil
	}
	for r := 0; r < n; r++ {
		if len(after[r]) != elems {
			return fmt.Errorf("collective: verify rank %d has %d elements, want %d", r, len(after[r]), elems)
		}
		switch op {
		case AllReduce:
			if err := checkRange(r, 0, elems, sum); err != nil {
				return err
			}
		case Broadcast:
			if err := checkRange(r, 0, elems, before[0]); err != nil {
				return err
			}
		case ReduceScatter:
			lo, hi := ChunkBounds(elems, n, (r+1)%n)
			if err := checkRange(r, lo, hi, sum); err != nil {
				return err
			}
		default:
			return fmt.Errorf("collective: unknown op %d", int(op))
		}
	}
	return nil
}

func mod(a, n int) int { return ((a % n) + n) % n }

// bitLen returns the number of bits needed to represent x (x > 0).
func bitLen(x int) int {
	n := 0
	for x > 0 {
		x >>= 1
		n++
	}
	return n
}
