package collective

import (
	"fmt"
	"testing"

	"netdimm/internal/sim"
)

func TestOpStringParseRoundTrip(t *testing.T) {
	for _, op := range Ops {
		got, err := ParseOp(op.String())
		if err != nil || got != op {
			t.Fatalf("ParseOp(%q) = %v, %v, want %v", op.String(), got, err, op)
		}
	}
	if op, err := ParseOp(""); err != nil || op != AllReduce {
		t.Fatalf("ParseOp(\"\") = %v, %v, want AllReduce", op, err)
	}
	if _, err := ParseOp("alltoall"); err == nil {
		t.Fatal("ParseOp(alltoall) succeeded, want error")
	}
}

func TestSpecValidate(t *testing.T) {
	cases := []struct {
		name string
		spec Spec
		ok   bool
	}{
		{"zero", Spec{}, true},
		{"pinned", Spec{Op: "broadcast", Ranks: 16, PayloadBytes: 4096, ChunkBytes: 512}, true},
		{"bad op", Spec{Op: "gather"}, false},
		{"one rank", Spec{Ranks: 1}, false},
		{"too many ranks", Spec{Ranks: MaxRanks + 1}, false},
		{"negative payload", Spec{PayloadBytes: -1}, false},
		{"negative chunk", Spec{ChunkBytes: -1}, false},
	}
	for _, c := range cases {
		if err := c.spec.Validate(); (err == nil) != c.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", c.name, err, c.ok)
		}
	}
}

// TestPlanStructure cross-checks every send against the receiver's
// schedule: the RecvStep pointer must land on a step that expects exactly
// this message, and every receiving step must be fed by exactly one send.
func TestPlanStructure(t *testing.T) {
	for _, op := range Ops {
		for _, n := range []int{2, 3, 4, 5, 8, 13, 16, 31} {
			p := NewPlan(op, n)
			if p.Ranks != n || len(p.Steps) != n {
				t.Fatalf("%v/%d: plan has %d rank schedules", op, n, len(p.Steps))
			}
			feeds := make([]map[int]int, n) // receiver -> step -> feeding sends
			for r := range feeds {
				feeds[r] = make(map[int]int)
			}
			for r, steps := range p.Steps {
				for i, st := range steps {
					if st.SendTo < 0 {
						continue
					}
					if st.SendTo == r || st.SendTo >= n {
						t.Fatalf("%v/%d: rank %d step %d sends to %d", op, n, r, i, st.SendTo)
					}
					peer := p.Steps[st.SendTo][st.RecvStep]
					if peer.RecvFrom != r || peer.RecvChunk != st.SendChunk {
						t.Fatalf("%v/%d: rank %d step %d send (chunk %d) lands on rank %d step %d expecting from=%d chunk=%d",
							op, n, r, i, st.SendChunk, st.SendTo, st.RecvStep, peer.RecvFrom, peer.RecvChunk)
					}
					feeds[st.SendTo][st.RecvStep]++
				}
			}
			for r, steps := range p.Steps {
				for i, st := range steps {
					want := 0
					if st.RecvFrom >= 0 {
						want = 1
					}
					if feeds[r][i] != want {
						t.Fatalf("%v/%d: rank %d step %d fed by %d sends, want %d", op, n, r, i, feeds[r][i], want)
					}
				}
			}
			wantSteps := map[Op]int{AllReduce: 2 * (n - 1), ReduceScatter: n - 1}
			if w, ok := wantSteps[op]; ok {
				for r, steps := range p.Steps {
					if len(steps) != w {
						t.Fatalf("%v/%d: rank %d has %d steps, want %d", op, n, r, len(steps), w)
					}
				}
			}
		}
	}
}

func TestChunkBoundsPartition(t *testing.T) {
	for _, elems := range []int{0, 1, 7, 8, 100, 129} {
		for _, chunks := range []int{1, 2, 3, 8, 16} {
			next := 0
			for c := 0; c < chunks; c++ {
				lo, hi := ChunkBounds(elems, chunks, c)
				if lo != next || hi < lo {
					t.Fatalf("elems=%d chunks=%d: chunk %d = [%d,%d), want lo=%d", elems, chunks, c, lo, hi, next)
				}
				next = hi
			}
			if next != elems {
				t.Fatalf("elems=%d chunks=%d: partition covers %d elements", elems, chunks, next)
			}
		}
	}
}

// randomVectors draws one vector per rank with values large enough that a
// wrong reduction cannot collide by accident.
func randomVectors(rng *sim.Rand, ranks, elems int) [][]int64 {
	data := make([][]int64, ranks)
	for r := range data {
		data[r] = make([]int64, elems)
		for i := range data[r] {
			data[r][i] = rng.Int63n(1 << 40)
		}
	}
	return data
}

func cloneVectors(v [][]int64) [][]int64 {
	out := make([][]int64, len(v))
	for i := range v {
		out[i] = append([]int64(nil), v[i]...)
	}
	return out
}

// TestExecMatchesReference is the data-plane property test: for random
// rank counts and payload sizes, every op executed over an instant
// in-order transport must reproduce the sequential reference.
func TestExecMatchesReference(t *testing.T) {
	rng := sim.NewRand(7)
	for trial := 0; trial < 40; trial++ {
		ranks := 2 + rng.Intn(16)
		elems := 1 + rng.Intn(200)
		for _, op := range Ops {
			before := randomVectors(rng, ranks, elems)
			data := cloneVectors(before)
			var clock sim.Time
			e := NewExec(NewPlan(op, ranks), data,
				func(src, dst, step, bytes int, deliver func()) { deliver() },
				func(rank int) sim.Time { clock++; return clock })
			for r := 0; r < ranks; r++ {
				e.Launch(r)
			}
			if e.DoneRanks() != ranks {
				rank, steps := e.Progress()
				t.Fatalf("%v/%d ranks: only %d done; rank %d stuck after %d steps", op, ranks, e.DoneRanks(), rank, steps)
			}
			if err := Verify(op, before, data); err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			if e.Completion() == 0 {
				t.Fatalf("%v/%d: completion not recorded", op, ranks)
			}
		}
	}
}

// TestExecOutOfOrderDelivery drains pending deliveries LIFO, so messages
// systematically overtake each other; the early-arrival buffer must absorb
// the reordering without corrupting the data plane.
func TestExecOutOfOrderDelivery(t *testing.T) {
	rng := sim.NewRand(11)
	for _, op := range Ops {
		for _, ranks := range []int{2, 3, 5, 8} {
			before := randomVectors(rng, ranks, 37)
			data := cloneVectors(before)
			var pending []func()
			var clock sim.Time
			e := NewExec(NewPlan(op, ranks), data,
				func(src, dst, step, bytes int, deliver func()) { pending = append(pending, deliver) },
				func(rank int) sim.Time { clock++; return clock })
			for r := 0; r < ranks; r++ {
				e.Launch(r)
			}
			for len(pending) > 0 {
				d := pending[len(pending)-1]
				pending = pending[:len(pending)-1]
				d()
			}
			if e.DoneRanks() != ranks {
				t.Fatalf("%v/%d: %d ranks done", op, ranks, e.DoneRanks())
			}
			if err := Verify(op, before, data); err != nil {
				t.Fatalf("%v/%d: %v", op, ranks, err)
			}
		}
	}
}

func TestVerifyDetectsCorruption(t *testing.T) {
	rng := sim.NewRand(3)
	for _, op := range Ops {
		before := randomVectors(rng, 4, 16)
		data := cloneVectors(before)
		e := NewExec(NewPlan(op, 4), data,
			func(src, dst, step, bytes int, deliver func()) { deliver() },
			func(rank int) sim.Time { return 0 })
		for r := 0; r < 4; r++ {
			e.Launch(r)
		}
		if err := Verify(op, before, data); err != nil {
			t.Fatalf("%v: clean run rejected: %v", op, err)
		}
		// Corrupt an element every op's contract covers: for
		// reduce-scatter that is rank r's owned chunk (r+1) mod n.
		lo, _ := ChunkBounds(16, 4, 2)
		data[1][lo]++
		if err := Verify(op, before, data); err == nil {
			t.Fatalf("%v: corruption not detected", op)
		}
	}
}

func TestStepSkewAndEnds(t *testing.T) {
	// A two-rank allreduce over a transport that delays rank 1's clock
	// must report the induced skew.
	before := randomVectors(sim.NewRand(5), 2, 8)
	data := cloneVectors(before)
	clocks := []sim.Time{0, 0}
	e := NewExec(NewPlan(AllReduce, 2), data,
		func(src, dst, step, bytes int, deliver func()) { deliver() },
		func(rank int) sim.Time {
			clocks[rank] += sim.Time(1 + rank*9)
			return clocks[rank]
		})
	e.Launch(0)
	e.Launch(1)
	if e.DoneRanks() != 2 {
		t.Fatalf("done ranks = %d", e.DoneRanks())
	}
	if got := len(e.StepEnds(0)); got != 2 {
		t.Fatalf("rank 0 recorded %d step ends, want 2", got)
	}
	if e.StepSkew() == 0 {
		t.Fatal("skewed clocks reported zero step skew")
	}
	if e.Completion() != clocks[1] {
		t.Fatalf("completion %d, want slow rank's clock %d", e.Completion(), clocks[1])
	}
}

func TestNewPlanPanicsBelowTwoRanks(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewPlan(AllReduce, 1) did not panic")
		}
	}()
	NewPlan(AllReduce, 1)
}

func ExampleVerify() {
	before := [][]int64{{1, 2}, {10, 20}}
	data := cloneVectors(before)
	e := NewExec(NewPlan(AllReduce, 2), data,
		func(src, dst, step, bytes int, deliver func()) { deliver() },
		func(rank int) sim.Time { return 0 })
	e.Launch(0)
	e.Launch(1)
	fmt.Println(Verify(AllReduce, before, data), data[0], data[1])
	// Output: <nil> [11 22] [11 22]
}
