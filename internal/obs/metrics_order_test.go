package obs

import (
	"strings"
	"testing"
)

// The metrics table sorts rows by metric name (kind breaking ties) within
// each cell, so rendered output does not depend on the order
// instrumentation points happened to register — the property the campaign
// harness's byte-identical metrics CSVs rely on.
func TestMetricsRowsSortedWithinCell(t *testing.T) {
	o := New(Spec{Metrics: true}, "c0", "c1")
	// Register deliberately out of name order, mixing kinds.
	r0 := o.Cell(0).Metrics()
	r0.Series("zeta.q").Sample(1, 1)
	r0.Counter("alpha.bytes").Add(1)
	r0.Gauge("mid.depth").Set(2)
	r1 := o.Cell(1).Metrics()
	r1.Counter("beta.bytes").Add(3)
	r1.Counter("alpha.bytes").Add(4)

	csv := o.MetricsCSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	want := []string{
		"cell,kind,metric,value,max,points",
		"c0,counter,alpha.bytes,1,,",
		"c0,gauge,mid.depth,2,,",
		"c0,series,zeta.q,1,1,1",
		"c1,counter,alpha.bytes,4,,",
		"c1,counter,beta.bytes,3,,",
	}
	if len(lines) != len(want) {
		t.Fatalf("got %d lines, want %d:\n%s", len(lines), len(want), csv)
	}
	for i, w := range want {
		if lines[i] != w {
			t.Errorf("line %d = %q, want %q", i, lines[i], w)
		}
	}
}

// Same-name metrics of different kinds order by kind (counter < gauge <
// series, alphabetically) — a total order, so ties cannot reshuffle.
func TestMetricsKindTiebreak(t *testing.T) {
	o := New(Spec{Metrics: true}, "c")
	reg := o.Cell(0).Metrics()
	reg.Series("dup").Sample(1, 1)
	reg.Gauge("dup").Set(2)
	reg.Counter("dup").Add(3)
	csv := o.MetricsCSV()
	ci := strings.Index(csv, "counter")
	gi := strings.Index(csv, "gauge")
	si := strings.Index(csv, "series")
	if !(ci < gi && gi < si) {
		t.Fatalf("kind tiebreak order wrong:\n%s", csv)
	}
}
