// Package obs is the observability plane: zero-overhead-when-disabled
// instrumentation threaded through the simulator's model layers.
//
// Three kinds of data are collected. Engine probes (probe.go) count kernel
// activity through the sim.Probe interface. Span tracks record per-packet
// lifecycle intervals — driver allocation, copies, flushes, memory-channel
// transactions, DMA, wire time, fault-plane retransmits — which trace.go
// exports as Chrome trace-event JSON loadable in ui.perfetto.dev. The
// metrics registry (registry.go) holds named counters, gauges and
// time-series samplers (memctrl queue depth, DRAM bank occupancy, PCIe
// link activity, NVDIMM-P outstanding transactions) rendered by
// metrics.go.
//
// The plane follows one convention throughout: every accessor is nil-safe,
// and disabled instrumentation is represented by nil. A nil *Cell hands
// out nil Tracks, Recorders and Registries; recording on any of them is a
// no-op. Model code therefore carries at most a nil pointer field and one
// predictable branch per hook when observation is off, and no hook ever
// allocates in that state.
//
// Determinism is part of the contract: collectors never read the wall
// clock, never perturb event ordering, and iterate everything in creation
// order, so an instrumented run produces byte-identical exports for
// identical seeds regardless of experiment-level parallelism (each sweep
// cell owns a private Cell, merged in cell-index order).
package obs

import "netdimm/internal/sim"

// Spec selects which instrumentation a run collects. It is the
// JSON-addressable knob a scenario or Config carries; the zero value
// disables everything.
type Spec struct {
	// Trace enables span collection for Chrome trace-event export.
	Trace bool
	// Metrics enables the counter/gauge/series registry.
	Metrics bool
}

// Enabled reports whether any instrumentation is requested.
func (s Spec) Enabled() bool { return s.Trace || s.Metrics }

// Observer owns the instrumentation of one experiment run: one Cell per
// sweep cell, pre-created before the fan-out so parallel cells never
// contend or allocate shared state.
type Observer struct {
	spec  Spec
	cells []*Cell
}

// New returns an Observer with one Cell per label. A disabled spec still
// yields a valid Observer whose cells collect nothing.
func New(spec Spec, labels ...string) *Observer {
	o := &Observer{spec: spec}
	for _, l := range labels {
		o.cells = append(o.cells, &Cell{label: l, spec: spec})
	}
	return o
}

// Spec returns the observer's configuration (zero when o is nil).
func (o *Observer) Spec() Spec {
	if o == nil {
		return Spec{}
	}
	return o.spec
}

// Cell returns cell i, or nil when o is nil or i is out of range — the nil
// Cell then disables every downstream hook.
func (o *Observer) Cell(i int) *Cell {
	if o == nil || i < 0 || i >= len(o.cells) {
		return nil
	}
	return o.cells[i]
}

// Cells returns the cells in creation (cell-index) order.
func (o *Observer) Cells() []*Cell {
	if o == nil {
		return nil
	}
	return o.cells
}

// Cell is the instrumentation sink of one sweep cell. Cells are not safe
// for concurrent use; the parallel experiment runner gives each cell to
// exactly one worker, matching the one-engine-per-cell contract.
type Cell struct {
	label  string
	spec   Spec
	tracks []*Track
	byName map[string]*Track
	reg    *Registry
}

// Label returns the cell's display label (its Perfetto process name).
func (c *Cell) Label() string {
	if c == nil {
		return ""
	}
	return c.label
}

// Track returns the named span track, creating it on first use. It
// returns nil — a universal no-op — when c is nil or tracing is off.
func (c *Cell) Track(name string) *Track {
	if c == nil || !c.spec.Trace {
		return nil
	}
	if t, ok := c.byName[name]; ok {
		return t
	}
	if c.byName == nil {
		c.byName = make(map[string]*Track)
	}
	t := &Track{name: name}
	c.byName[name] = t
	c.tracks = append(c.tracks, t)
	return t
}

// Tracks returns the cell's tracks in creation order.
func (c *Cell) Tracks() []*Track {
	if c == nil {
		return nil
	}
	return c.tracks
}

// Metrics returns the cell's registry, or nil when c is nil or metrics
// are off.
func (c *Cell) Metrics() *Registry {
	if c == nil || !c.spec.Metrics {
		return nil
	}
	if c.reg == nil {
		c.reg = &Registry{}
	}
	return c.reg
}

// Span is one recorded [Start, End) interval on a track.
type Span struct {
	Name  string
	Start sim.Time
	End   sim.Time
}

// Duration returns the span's length.
func (s Span) Duration() sim.Time { return s.End - s.Start }

// Track is one row of the exported trace: all spans of one component, in
// recording order.
type Track struct {
	name  string
	spans []Span
}

// Name returns the track's display name (its Perfetto thread name).
func (t *Track) Name() string {
	if t == nil {
		return ""
	}
	return t.name
}

// Span records one interval; a nil Track or an inverted interval drops it.
func (t *Track) Span(name string, start, end sim.Time) {
	if t == nil || end < start {
		return
	}
	t.spans = append(t.spans, Span{Name: name, Start: start, End: end})
}

// Spans returns the recorded spans in recording order.
func (t *Track) Spans() []Span {
	if t == nil {
		return nil
	}
	return t.spans
}

// Sum returns the summed duration of every span on the track.
func (t *Track) Sum() sim.Time {
	var total sim.Time
	if t != nil {
		for _, s := range t.spans {
			total += s.End - s.Start
		}
	}
	return total
}

// Recorder lays spans end to end on a virtual per-packet timeline. The
// analytic driver paths account costs as durations, not instants; the
// recorder gives each phase a concrete [cursor, cursor+d) interval, so the
// spans on a component's track sum exactly to that component's breakdown
// entry — the invariant that lets an exported fig11 trace reconstruct the
// paper's Fig. 11 decomposition.
type Recorder struct {
	cell   *Cell
	prefix string
	cursor sim.Time
}

// Recorder returns a span recorder whose tracks are named
// prefix+"/"+component, or nil (a no-op recorder) when tracing is off.
func (c *Cell) Recorder(prefix string) *Recorder {
	if c == nil || !c.spec.Trace {
		return nil
	}
	return &Recorder{cell: c, prefix: prefix}
}

// Advance lays the next span — phase name of the given component, lasting
// d — starting where the previous span ended, then moves the cursor.
// Non-positive durations are dropped without moving the cursor.
func (r *Recorder) Advance(component, name string, d sim.Time) {
	if r == nil || d <= 0 {
		return
	}
	r.cell.Track(r.prefix+"/"+component).Span(name, r.cursor, r.cursor+d)
	r.cursor += d
}

// SetPrefix renames the tracks subsequent Advance calls target (e.g.
// switching from the tx side to the rx side of a one-way measurement).
func (r *Recorder) SetPrefix(p string) {
	if r != nil {
		r.prefix = p
	}
}

// Now returns the virtual-timeline cursor.
func (r *Recorder) Now() sim.Time {
	if r == nil {
		return 0
	}
	return r.cursor
}
