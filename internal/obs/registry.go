package obs

import "netdimm/internal/sim"

// Counter is a monotonically growing named tally. The nil Counter absorbs
// updates silently, so model code can hold one unconditionally.
type Counter struct {
	name string
	v    int64
}

// Name returns the counter's registry name.
func (c *Counter) Name() string {
	if c == nil {
		return ""
	}
	return c.name
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add accumulates n.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v += n
	}
}

// Value returns the tally (0 for the nil Counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Gauge is a named last-value metric.
type Gauge struct {
	name string
	v    int64
}

// Name returns the gauge's registry name.
func (g *Gauge) Name() string {
	if g == nil {
		return ""
	}
	return g.name
}

// Set records the current value.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v = v
	}
}

// Value returns the last recorded value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v
}

// Sample is one (instant, value) point of a Series.
type Sample struct {
	At sim.Time
	V  int64
}

// Series is a time-series sampler for stepwise metrics: memory-controller
// queue depth, DRAM bank occupancy, NVDIMM-P outstanding transactions.
// Points are run-length compressed — a sample equal to the last recorded
// value is dropped, and a re-sample at the same instant overwrites —
// which keeps the series exactly the step function the metric traced.
type Series struct {
	name    string
	samples []Sample
}

// Name returns the series' registry name.
func (s *Series) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Sample records the metric's value at the given instant.
func (s *Series) Sample(at sim.Time, v int64) {
	if s == nil {
		return
	}
	if n := len(s.samples); n > 0 {
		if s.samples[n-1].V == v {
			return
		}
		if s.samples[n-1].At == at {
			s.samples[n-1].V = v
			return
		}
	}
	s.samples = append(s.samples, Sample{At: at, V: v})
}

// Samples returns the recorded points in time order.
func (s *Series) Samples() []Sample {
	if s == nil {
		return nil
	}
	return s.samples
}

// Count returns the number of recorded points.
func (s *Series) Count() int {
	if s == nil {
		return 0
	}
	return len(s.samples)
}

// Last returns the most recent value (0 when empty).
func (s *Series) Last() int64 {
	if s == nil || len(s.samples) == 0 {
		return 0
	}
	return s.samples[len(s.samples)-1].V
}

// Max returns the largest recorded value (0 when empty).
func (s *Series) Max() int64 {
	var m int64
	if s != nil {
		for _, p := range s.samples {
			if p.V > m {
				m = p.V
			}
		}
	}
	return m
}

// Registry holds one cell's named metrics. Each kind is get-or-create by
// name, and rendering iterates in first-creation order, so identical
// instruction streams produce identical output. The nil Registry hands out
// nil metrics, keeping every downstream hook a no-op.
type Registry struct {
	counters []*Counter
	gauges   []*Gauge
	series   []*Series
	cmap     map[string]*Counter
	gmap     map[string]*Gauge
	smap     map[string]*Series
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	if c, ok := r.cmap[name]; ok {
		return c
	}
	if r.cmap == nil {
		r.cmap = make(map[string]*Counter)
	}
	c := &Counter{name: name}
	r.cmap[name] = c
	r.counters = append(r.counters, c)
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	if g, ok := r.gmap[name]; ok {
		return g
	}
	if r.gmap == nil {
		r.gmap = make(map[string]*Gauge)
	}
	g := &Gauge{name: name}
	r.gmap[name] = g
	r.gauges = append(r.gauges, g)
	return g
}

// Series returns the named series, creating it on first use.
func (r *Registry) Series(name string) *Series {
	if r == nil {
		return nil
	}
	if s, ok := r.smap[name]; ok {
		return s
	}
	if r.smap == nil {
		r.smap = make(map[string]*Series)
	}
	s := &Series{name: name}
	r.smap[name] = s
	r.series = append(r.series, s)
	return s
}

// Counters returns the counters in creation order.
func (r *Registry) Counters() []*Counter {
	if r == nil {
		return nil
	}
	return r.counters
}

// Gauges returns the gauges in creation order.
func (r *Registry) Gauges() []*Gauge {
	if r == nil {
		return nil
	}
	return r.gauges
}

// AllSeries returns the series in creation order.
func (r *Registry) AllSeries() []*Series {
	if r == nil {
		return nil
	}
	return r.series
}
