package obs

import "netdimm/internal/sim"

// EngineProbe implements sim.Probe over registry counters: every schedule,
// fire and cancel on the instrumented engine bumps a named tally. It is the
// event-level view the kernel-side hooks exist for — cheap enough to leave
// attached for a whole run, detailed enough to compare event volumes across
// cells and configurations.
type EngineProbe struct {
	scheduled *Counter
	fired     *Counter
	cancelled *Counter
}

// NewEngineProbe builds a probe over reg with metric names
// prefix+".scheduled" / ".fired" / ".cancelled". It returns nil — which
// Attach treats as "leave the engine unprobed" — when reg is nil, so the
// call chain composes with a disabled registry.
func NewEngineProbe(reg *Registry, prefix string) *EngineProbe {
	if reg == nil {
		return nil
	}
	return &EngineProbe{
		scheduled: reg.Counter(prefix + ".scheduled"),
		fired:     reg.Counter(prefix + ".fired"),
		cancelled: reg.Counter(prefix + ".cancelled"),
	}
}

// Attach arms eng with the probe. The nil check lives here because a nil
// *EngineProbe stored into the sim.Probe interface would be non-nil and
// the engine would invoke it — the classic typed-nil trap.
func (p *EngineProbe) Attach(eng *sim.Engine) {
	if p != nil {
		eng.SetProbe(p)
	}
}

// OnSchedule implements sim.Probe.
func (p *EngineProbe) OnSchedule(sim.Time) { p.scheduled.Inc() }

// OnFire implements sim.Probe.
func (p *EngineProbe) OnFire(sim.Time) { p.fired.Inc() }

// OnCancel implements sim.Probe.
func (p *EngineProbe) OnCancel(sim.Time) { p.cancelled.Inc() }
