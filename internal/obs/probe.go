package obs

import "netdimm/internal/sim"

// EngineProbe implements sim.Probe over registry counters: every schedule,
// fire and cancel on the instrumented engine bumps a named tally. It is the
// event-level view the kernel-side hooks exist for — cheap enough to leave
// attached for a whole run, detailed enough to compare event volumes across
// cells and configurations.
type EngineProbe struct {
	scheduled *Counter
	fired     *Counter
	cancelled *Counter
}

// NewEngineProbe builds a probe over reg with metric names
// prefix+".scheduled" / ".fired" / ".cancelled". It returns nil — which
// Attach treats as "leave the engine unprobed" — when reg is nil, so the
// call chain composes with a disabled registry.
func NewEngineProbe(reg *Registry, prefix string) *EngineProbe {
	if reg == nil {
		return nil
	}
	return &EngineProbe{
		scheduled: reg.Counter(prefix + ".scheduled"),
		fired:     reg.Counter(prefix + ".fired"),
		cancelled: reg.Counter(prefix + ".cancelled"),
	}
}

// Attach arms eng with the probe. The nil check lives here because a nil
// *EngineProbe stored into the sim.Probe interface would be non-nil and
// the engine would invoke it — the classic typed-nil trap.
func (p *EngineProbe) Attach(eng *sim.Engine) {
	if p != nil {
		eng.SetProbe(p)
	}
}

// OnSchedule implements sim.Probe.
func (p *EngineProbe) OnSchedule(sim.Time) { p.scheduled.Inc() }

// OnFire implements sim.Probe.
func (p *EngineProbe) OnFire(sim.Time) { p.fired.Inc() }

// OnCancel implements sim.Probe.
func (p *EngineProbe) OnCancel(sim.Time) { p.cancelled.Inc() }

// Merge folds per-shard tallies into the probe's registry counters. A
// sharded cell cannot attach one EngineProbe to every shard — registry
// counters are not safe for concurrent writers — so each shard carries a
// private ShardProbe and the group merges them here after the run. Because
// the EngineProbe (and therefore the metric names, in creation order) is
// built before the run, the rendered registry is identical between the
// single-engine and sharded paths apart from the counted volumes, and
// those sum shard-count-invariantly. Merging into a nil probe (disabled
// registry) is a no-op.
func (p *EngineProbe) Merge(shards ...*ShardProbe) {
	if p == nil {
		return
	}
	for _, s := range shards {
		if s == nil {
			continue
		}
		p.scheduled.Add(s.Scheduled)
		p.fired.Add(s.Fired)
		p.cancelled.Add(s.Cancelled)
	}
}

// ShardProbe implements sim.Probe with plain local counters: the
// goroutine-confined accumulator one engine shard carries during a
// sharded run, folded into the shared registry by EngineProbe.Merge once
// the run completes. Plain increments preserve the engine hot path: no
// atomics, no contention, no allocation.
type ShardProbe struct {
	Scheduled int64
	Fired     int64
	Cancelled int64
}

// Attach arms eng with the probe (nil-safe like EngineProbe.Attach).
func (p *ShardProbe) Attach(eng *sim.Engine) {
	if p != nil {
		eng.SetProbe(p)
	}
}

// OnSchedule implements sim.Probe.
func (p *ShardProbe) OnSchedule(sim.Time) { p.Scheduled++ }

// OnFire implements sim.Probe.
func (p *ShardProbe) OnFire(sim.Time) { p.Fired++ }

// OnCancel implements sim.Probe.
func (p *ShardProbe) OnCancel(sim.Time) { p.Cancelled++ }
