package obs

import (
	"fmt"

	"netdimm/internal/stats"
)

// metricsTable flattens every cell's registry into one table: counters and
// gauges report their value, series report last/max/points. Rows follow
// cell-index then creation order, so output is deterministic and identical
// across parallelism levels.
func (o *Observer) metricsTable() *stats.Table {
	t := &stats.Table{Header: []string{"cell", "kind", "metric", "value", "max", "points"}}
	for _, c := range o.Cells() {
		reg := c.Metrics()
		for _, m := range reg.Counters() {
			t.AddRow(c.Label(), "counter", m.Name(), fmt.Sprintf("%d", m.Value()), "", "")
		}
		for _, m := range reg.Gauges() {
			t.AddRow(c.Label(), "gauge", m.Name(), fmt.Sprintf("%d", m.Value()), "", "")
		}
		for _, m := range reg.AllSeries() {
			t.AddRow(c.Label(), "series", m.Name(),
				fmt.Sprintf("%d", m.Last()), fmt.Sprintf("%d", m.Max()), fmt.Sprintf("%d", m.Count()))
		}
	}
	return t
}

// MetricsTable renders the registry contents of every cell as an aligned
// text table.
func (o *Observer) MetricsTable() string { return o.metricsTable().String() }

// MetricsCSV renders the same rows as CSV.
func (o *Observer) MetricsCSV() string { return o.metricsTable().CSV() }

// HasMetrics reports whether any cell registered at least one metric.
func (o *Observer) HasMetrics() bool {
	for _, c := range o.Cells() {
		reg := c.Metrics()
		if len(reg.Counters())+len(reg.Gauges())+len(reg.AllSeries()) > 0 {
			return true
		}
	}
	return false
}
