package obs

import (
	"fmt"
	"sort"

	"netdimm/internal/stats"
)

// metricsTable flattens every cell's registry into one table: counters and
// gauges report their value, series report last/max/points. Rows follow
// cell-index order, then sort by metric name (kind breaks ties) within a
// cell — a stable contract that does not depend on registration order, so
// two runs of the same experiment render byte-identical CSVs even when
// instrumentation points register in different interleavings.
func (o *Observer) metricsTable() *stats.Table {
	t := &stats.Table{Header: []string{"cell", "kind", "metric", "value", "max", "points"}}
	for _, c := range o.Cells() {
		reg := c.Metrics()
		var rows [][]string
		for _, m := range reg.Counters() {
			rows = append(rows, []string{c.Label(), "counter", m.Name(), fmt.Sprintf("%d", m.Value()), "", ""})
		}
		for _, m := range reg.Gauges() {
			rows = append(rows, []string{c.Label(), "gauge", m.Name(), fmt.Sprintf("%d", m.Value()), "", ""})
		}
		for _, m := range reg.AllSeries() {
			rows = append(rows, []string{c.Label(), "series", m.Name(),
				fmt.Sprintf("%d", m.Last()), fmt.Sprintf("%d", m.Max()), fmt.Sprintf("%d", m.Count())})
		}
		sort.Slice(rows, func(i, j int) bool {
			if rows[i][2] != rows[j][2] {
				return rows[i][2] < rows[j][2]
			}
			return rows[i][1] < rows[j][1]
		})
		t.Rows = append(t.Rows, rows...)
	}
	return t
}

// MetricsTable renders the registry contents of every cell as an aligned
// text table.
func (o *Observer) MetricsTable() string { return o.metricsTable().String() }

// MetricsCSV renders the same rows as CSV.
func (o *Observer) MetricsCSV() string { return o.metricsTable().CSV() }

// HasMetrics reports whether any cell registered at least one metric.
func (o *Observer) HasMetrics() bool {
	for _, c := range o.Cells() {
		reg := c.Metrics()
		if len(reg.Counters())+len(reg.Gauges())+len(reg.AllSeries()) > 0 {
			return true
		}
	}
	return false
}
