package obs

import (
	"encoding/json"
	"strings"
	"testing"

	"netdimm/internal/sim"
)

// Every hook must be a no-op on the nil values a disabled plane hands out.
func TestNilSafety(t *testing.T) {
	var o *Observer
	if o.Spec().Enabled() {
		t.Fatal("nil observer reports enabled")
	}
	c := o.Cell(0)
	if c != nil {
		t.Fatal("nil observer handed out a cell")
	}
	c.Track("x").Span("s", 0, 1)
	c.Recorder("p").Advance("comp", "phase", 5)
	c.Metrics().Counter("n").Inc()
	c.Metrics().Gauge("g").Set(3)
	c.Metrics().Series("s").Sample(1, 2)
	NewEngineProbe(c.Metrics(), "eng").Attach(sim.NewEngine())
	if got := c.Metrics().Counter("n").Value(); got != 0 {
		t.Fatalf("nil counter holds %d", got)
	}
}

// A disabled spec must also disable cells that do exist.
func TestDisabledSpec(t *testing.T) {
	o := New(Spec{}, "cell0")
	c := o.Cell(0)
	if c.Track("x") != nil {
		t.Fatal("tracing off but Track returned a collector")
	}
	if c.Recorder("p") != nil {
		t.Fatal("tracing off but Recorder returned a collector")
	}
	if c.Metrics() != nil {
		t.Fatal("metrics off but Metrics returned a registry")
	}
}

// The recorder's core invariant: spans on a component's track sum to
// exactly the durations fed through Advance.
func TestRecorderSumsMatch(t *testing.T) {
	o := New(Spec{Trace: true}, "cell")
	c := o.Cell(0)
	r := c.Recorder("dNIC")
	r.Advance("txCopy", "skb", 100)
	r.Advance("txCopy", "copy", 250)
	r.Advance("wire", "wire", 500)
	r.SetPrefix("dNIC") // same side; prefix switch is a no-op here
	r.Advance("rxCopy", "deliver", 70)
	r.Advance("txCopy", "zero", 0) // dropped, cursor unchanged

	if got := c.Track("dNIC/txCopy").Sum(); got != 350 {
		t.Fatalf("txCopy track sums to %d, want 350", got)
	}
	if got := c.Track("dNIC/wire").Sum(); got != 500 {
		t.Fatalf("wire track sums to %d, want 500", got)
	}
	if r.Now() != 920 {
		t.Fatalf("cursor at %d, want 920", r.Now())
	}
	// Spans must tile the timeline: each starts where the previous ended.
	var all []Span
	for _, tr := range c.Tracks() {
		all = append(all, tr.Spans()...)
	}
	var cursor sim.Time
	for i, s := range all {
		if s.Start != cursor {
			t.Fatalf("span %d starts at %d, want %d", i, s.Start, cursor)
		}
		cursor = s.End
	}
}

func TestRegistryOrderAndDedup(t *testing.T) {
	o := New(Spec{Metrics: true}, "cell")
	reg := o.Cell(0).Metrics()
	reg.Counter("b").Add(2)
	reg.Counter("a").Inc()
	if same := reg.Counter("b"); same.Value() != 2 {
		t.Fatalf("counter b not shared: %d", same.Value())
	}
	names := []string{}
	for _, c := range reg.Counters() {
		names = append(names, c.Name())
	}
	if len(names) != 2 || names[0] != "b" || names[1] != "a" {
		t.Fatalf("counter order %v, want [b a]", names)
	}

	s := reg.Series("depth")
	s.Sample(10, 1)
	s.Sample(20, 1) // run-length compressed away
	s.Sample(30, 2)
	s.Sample(30, 3) // same instant overwrites
	if s.Count() != 2 || s.Last() != 3 || s.Max() != 3 {
		t.Fatalf("series = %+v, want 2 points ending at 3", s.Samples())
	}
}

func TestEngineProbeCountsKernelActivity(t *testing.T) {
	o := New(Spec{Metrics: true}, "cell")
	reg := o.Cell(0).Metrics()
	eng := sim.NewEngine()
	NewEngineProbe(reg, "engine").Attach(eng)

	id := eng.Schedule(5, func() {})
	eng.Schedule(1, func() {})
	eng.Cancel(id)
	eng.Run()

	if got := reg.Counter("engine.scheduled").Value(); got != 2 {
		t.Fatalf("scheduled = %d, want 2", got)
	}
	if got := reg.Counter("engine.fired").Value(); got != 1 {
		t.Fatalf("fired = %d, want 1", got)
	}
	if got := reg.Counter("engine.cancelled").Value(); got != 1 {
		t.Fatalf("cancelled = %d, want 1", got)
	}
}

// A sharded cell accumulates per-shard tallies locally and merges them
// into the registry afterwards; the merged totals must match what one
// EngineProbe attached to a single engine would have counted.
func TestShardProbeMergeMatchesEngineProbe(t *testing.T) {
	o := New(Spec{Metrics: true}, "cell")
	reg := o.Cell(0).Metrics()
	ep := NewEngineProbe(reg, "engine")

	run := func(eng *sim.Engine) {
		id := eng.Schedule(5, func() {})
		eng.Schedule(1, func() {})
		eng.Cancel(id)
		eng.Run()
	}
	probes := make([]*ShardProbe, 3)
	for i := range probes {
		probes[i] = &ShardProbe{}
		eng := sim.NewEngine()
		probes[i].Attach(eng)
		run(eng)
	}
	ep.Merge(probes...)

	if got := reg.Counter("engine.scheduled").Value(); got != 6 {
		t.Fatalf("merged scheduled = %d, want 6", got)
	}
	if got := reg.Counter("engine.fired").Value(); got != 3 {
		t.Fatalf("merged fired = %d, want 3", got)
	}
	if got := reg.Counter("engine.cancelled").Value(); got != 3 {
		t.Fatalf("merged cancelled = %d, want 3", got)
	}
}

// Merge must compose with the disabled plane: a nil probe (nil registry)
// swallows the merge, and nil shard entries are skipped.
func TestShardProbeMergeNilSafety(t *testing.T) {
	var nilProbe *EngineProbe
	nilProbe.Merge(&ShardProbe{Fired: 1}) // must not panic

	o := New(Spec{Metrics: true}, "cell")
	reg := o.Cell(0).Metrics()
	ep := NewEngineProbe(reg, "engine")
	ep.Merge(nil, &ShardProbe{Scheduled: 2, Fired: 1}, nil)
	if got := reg.Counter("engine.scheduled").Value(); got != 2 {
		t.Fatalf("scheduled = %d, want 2", got)
	}

	var nilShard *ShardProbe
	nilShard.Attach(sim.NewEngine()) // nil-safe like EngineProbe.Attach
}

// The exported trace must be valid JSON in Chrome trace-event shape, with
// exact picosecond-resolution timestamps.
func TestWriteTraceJSON(t *testing.T) {
	o := New(Spec{Trace: true, Metrics: true}, "size=64", "size=256")
	c := o.Cell(0)
	c.Track("NetDIMM/txCopy").Span("skb \"alloc\"", 0, 1_234_567)
	c.Track("NetDIMM/wire").Span("wire", 1_234_567, 2_000_000)
	c.Metrics().Series("nmc.readq").Sample(10_000, 3)
	o.Cell(1).Track("dNIC/txCopy").Span("copy", 0, 42)

	var sb strings.Builder
	if err := o.WriteTrace(&sb); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Pid  int     `json:"pid"`
			Tid  int     `json:"tid"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v\n%s", err, sb.String())
	}
	if doc.DisplayTimeUnit != "ns" {
		t.Fatalf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	var spans, meta, counters int
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "X":
			spans++
		case "M":
			meta++
		case "C":
			counters++
		}
	}
	// 2 process_name + 3 thread_name metadata, 3 spans, 1 counter sample.
	if meta != 5 || spans != 3 || counters != 1 {
		t.Fatalf("got %d meta, %d spans, %d counters; want 5/3/1", meta, spans, counters)
	}
	if !strings.Contains(sb.String(), `"ts":1.234567`) {
		t.Fatalf("expected exact microsecond timestamp 1.234567 in:\n%s", sb.String())
	}
}

func TestPsToMicros(t *testing.T) {
	cases := map[int64]string{
		0:             "0.000000",
		1:             "0.000001",
		999_999:       "0.999999",
		1_000_000:     "1.000000",
		1_234_567:     "1.234567",
		-42:           "-0.000042",
		3_000_000_001: "3000.000001",
	}
	for ps, want := range cases {
		if got := psToMicros(ps); got != want {
			t.Errorf("psToMicros(%d) = %q, want %q", ps, got, want)
		}
	}
}

func TestMetricsRendering(t *testing.T) {
	o := New(Spec{Metrics: true}, "cellA")
	reg := o.Cell(0).Metrics()
	reg.Counter("pcie.bytes").Add(4096)
	reg.Gauge("ring.depth").Set(7)
	reg.Series("nmc.readq").Sample(5, 2)
	if !o.HasMetrics() {
		t.Fatal("HasMetrics false with three metrics registered")
	}
	table := o.MetricsTable()
	for _, want := range []string{"pcie.bytes", "4096", "ring.depth", "nmc.readq"} {
		if !strings.Contains(table, want) {
			t.Fatalf("metrics table missing %q:\n%s", want, table)
		}
	}
	csv := o.MetricsCSV()
	if !strings.Contains(csv, "cellA,counter,pcie.bytes,4096,,") {
		t.Fatalf("metrics CSV missing counter row:\n%s", csv)
	}
}
