package obs

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// WriteTrace exports the observer's spans and metric series as Chrome
// trace-event JSON (the format ui.perfetto.dev and chrome://tracing load
// directly). Each cell becomes one process (pid = cell index, process name
// = cell label); each span track becomes one named thread; each series
// becomes a counter track. Output is fully deterministic: cells, tracks,
// spans and samples are walked in creation order and timestamps are
// rendered exactly — microseconds with six decimal digits, one digit per
// picosecond — so no float formatting can perturb a byte.
func (o *Observer) WriteTrace(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(`{"displayTimeUnit":"ns","traceEvents":[`); err != nil {
		return err
	}
	first := true
	sep := func() {
		if first {
			first = false
			return
		}
		bw.WriteByte(',')
	}
	for pid, c := range o.Cells() {
		sep()
		fmt.Fprintf(bw, `{"name":"process_name","ph":"M","pid":%d,"tid":0,"args":{"name":%s}}`,
			pid, jsonString(c.Label()))
		for tid, t := range c.Tracks() {
			sep()
			fmt.Fprintf(bw, `{"name":"thread_name","ph":"M","pid":%d,"tid":%d,"args":{"name":%s}}`,
				pid, tid+1, jsonString(t.Name()))
			for _, s := range t.Spans() {
				sep()
				fmt.Fprintf(bw, `{"name":%s,"cat":"span","ph":"X","pid":%d,"tid":%d,"ts":%s,"dur":%s}`,
					jsonString(s.Name), pid, tid+1, psToMicros(int64(s.Start)), psToMicros(int64(s.End-s.Start)))
			}
		}
		for _, s := range c.Metrics().AllSeries() {
			for _, p := range s.Samples() {
				sep()
				fmt.Fprintf(bw, `{"name":%s,"ph":"C","pid":%d,"ts":%s,"args":{"value":%d}}`,
					jsonString(s.Name()), pid, psToMicros(int64(p.At)), p.V)
			}
		}
	}
	if _, err := bw.WriteString("]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}

// psToMicros renders a picosecond count as an exact decimal microsecond
// value (a valid JSON number): 1_234_567ps -> "1.234567".
func psToMicros(ps int64) string {
	neg := ""
	if ps < 0 {
		neg, ps = "-", -ps
	}
	return fmt.Sprintf("%s%d.%06d", neg, ps/1_000_000, ps%1_000_000)
}

// jsonString quotes s as a JSON string literal. Track and metric names are
// code-controlled, so only the mandatory escapes are handled.
func jsonString(s string) string {
	var sb strings.Builder
	sb.WriteByte('"')
	for _, r := range s {
		switch {
		case r == '"':
			sb.WriteString(`\"`)
		case r == '\\':
			sb.WriteString(`\\`)
		case r < 0x20:
			fmt.Fprintf(&sb, `\u%04x`, r)
		default:
			sb.WriteRune(r)
		}
	}
	sb.WriteByte('"')
	return sb.String()
}
