package netdimm

// Test-only seams: the public API intentionally does not expose the trace
// writer (cmd/netdimm-trace owns file creation), but API tests need to
// produce a valid stream.

import (
	"io"

	"netdimm/internal/trace"
	"netdimm/internal/workload"
)

func writeTraceForTest(w io.Writer, c ClusterName, seed uint64, n int) error {
	gen := workload.NewGenerator(c.internal(), 0, seed)
	events := gen.Generate(n)
	return trace.Write(w, trace.Header{
		Cluster: c.internal(),
		Seed:    seed,
		Count:   uint32(n),
	}, events)
}
