package main

import (
	"flag"
	"fmt"
	"os"

	"netdimm"
	"netdimm/internal/campaign"
)

var (
	gridPath  = flag.String("grid", "", "campaign grid JSON file (campaign; see scenarios/campaign-default.json)")
	outRoot   = flag.String("outdir", "campaigns", "directory campaign output directories are created under")
	gateFlag  = flag.Bool("gate", false, "trajectory: exit non-zero when the newest bench report regresses vs best-in-history")
	reportOut = flag.String("report", "", "trajectory: also write the markdown report to this file")
)

// runCampaign drives the campaign harness: load + validate the grid, run
// every cell through the experiment facade, leave a timestamped output
// directory behind and print the grouped summary. The -parallel flag, when
// set, overrides the grid's parallelism; -n, -seed etc. do not leak into
// cells — the grid file is the single source of cell parameters, so a
// campaign is reproducible from the file alone.
func runCampaign(netdimm.Config) error {
	if *gridPath == "" {
		return fmt.Errorf("campaign: -grid FILE is required (try scenarios/campaign-default.json)")
	}
	grid, err := netdimm.LoadCampaignGrid(*gridPath)
	if err != nil {
		return err
	}
	if *parallel != 0 {
		grid.Parallelism = *parallel
	}
	rep, err := netdimm.RunCampaign(grid, *gridPath, *outRoot, os.Stderr)
	if rep != nil {
		fmt.Print(rep.Summary)
	}
	return err
}

// runTrajectory renders the perf history across bench reports:
//
//	netdimm-sim trajectory [-csv] [-gate] [-report FILE] BENCH_seed.json ... BENCH_prN.json
//
// Reports are given oldest first; the newest is the one -gate judges. The
// default output is the markdown report; -csv emits the flat CSV instead.
func runTrajectory(netdimm.Config) error {
	paths := subArgs
	if len(paths) < 1 {
		return fmt.Errorf("trajectory: usage: netdimm-sim trajectory [-csv] [-gate] [-report FILE] BENCH.json...")
	}
	entries, err := campaign.LoadBenchHistory(paths)
	if err != nil {
		return err
	}
	traj := campaign.NewTrajectory(entries)
	if *asCSV {
		fmt.Print(traj.CSV())
	} else {
		fmt.Print(traj.Markdown())
	}
	if *reportOut != "" {
		if err := os.WriteFile(*reportOut, []byte(traj.Markdown()), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "netdimm-sim: wrote trajectory report to %s\n", *reportOut)
	}
	if *gateFlag {
		if regs := traj.Regressions(); len(regs) > 0 {
			for _, r := range regs {
				fmt.Fprintf(os.Stderr, "trajectory gate: %s\n", r)
			}
			return fmt.Errorf("trajectory: %d regression(s) in %s vs best-in-history", len(regs), traj.Final)
		}
		fmt.Fprintf(os.Stderr, "trajectory gate: %s ok vs best-in-history\n", traj.Final)
	}
	return nil
}
