package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"netdimm"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// plannedCell is the golden-pinned slice of a planned cell: the identity
// and seed, not the axes (those live in the grid file itself).
type plannedCell struct {
	Name       string `json:"name"`
	Experiment string `json:"experiment"`
	Scenario   string `json:"scenario,omitempty"`
	Repeat     int    `json:"repeat"`
	Seed       uint64 `json:"seed"`
}

// TestCampaignDefaultPlanGolden pins the plan of the checked-in default
// grid: cell list and derived seeds. The seed-derivation formula is part of
// the reproducibility contract — a change here invalidates every published
// campaign manifest, so it must be deliberate (regenerate with -update).
func TestCampaignDefaultPlanGolden(t *testing.T) {
	grid, err := netdimm.LoadCampaignGrid(filepath.Join("..", "..", "scenarios", "campaign-default.json"))
	if err != nil {
		t.Fatal(err)
	}
	cells, err := grid.Plan()
	if err != nil {
		t.Fatal(err)
	}
	var plan []plannedCell
	for _, c := range cells {
		plan = append(plan, plannedCell{
			Name: c.Name, Experiment: c.Experiment, Scenario: c.Scenario,
			Repeat: c.Repeat, Seed: c.Seed,
		})
	}
	got, err := json.MarshalIndent(plan, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	golden := filepath.Join("testdata", "golden", "campaign-default-plan.json")
	if *updateGolden {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("default campaign plan drifted from golden %s (regenerate with -update if deliberate)\ngot:\n%s\nwant:\n%s",
			golden, got, want)
	}
}
