// Command netdimm-sim runs the paper's experiments and prints their
// tables/series.
//
// Usage:
//
//	netdimm-sim [flags] <experiment>
//
// Experiments: table1, fig4, fig5, fig7, fig11, fig12a, fig12b, headline,
// all.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"netdimm"
)

var (
	packets   = flag.Int("n", 1000, "packets per trace-replay cell (fig12a, headline)")
	switchLat = flag.Duration("switch", 100*time.Nanosecond, "switch port-to-port latency (fig4, fig11)")
	seed      = flag.Uint64("seed", 3, "trace generator seed")
	asCSV     = flag.Bool("csv", false, "emit plot-ready CSV instead of tables (fig4, fig5, fig7, fig11, fig12a, fig12b)")
	parallel  = flag.Int("parallel", 0, "worker goroutines per sweep: 0 = all cores, 1 = sequential, N = at most N")
)

// csvOut prints one CSV record.
func csvOut(fields ...string) {
	for i, f := range fields {
		if i > 0 {
			fmt.Print(",")
		}
		fmt.Print(f)
	}
	fmt.Println()
}

func main() {
	flag.Usage = usage
	flag.Parse()
	if flag.NArg() < 1 || flag.NArg() > 2 {
		usage()
		os.Exit(2)
	}
	exp := flag.Arg(0)
	if err := run(exp); err != nil {
		fmt.Fprintf(os.Stderr, "netdimm-sim: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage: netdimm-sim [flags] <experiment>

experiments:
  table1   system configuration (paper Table 1)
  fig4     one-way latency of dNIC/dNIC.zcpy/iNIC/iNIC.zcpy + PCIe share
  fig5     iperf bandwidth under MLC memory pressure
  fig7     NIC DMA access locality (six 1514B receptions)
  fig11    one-way latency breakdown: dNIC / iNIC / NetDIMM
  fig12a   cluster trace replay across switch latencies
  fig12b   co-running app memory latency under DPI and L3F
  bandwidth sustained 40GbE line-rate check (Sec. 5.2)
  ablation  design-choice ablations (nPrefetcher, nCache, FPM, allocCache)
  mixed     DDR + NetDIMM coexistence on one channel (NVDIMM-P async, Sec. 2.2)
  replay F  replay a netdimm-trace file under all three architectures
  headline the abstract's summary numbers
  bench    machine-readable benchmark report (JSON; see -benchn)
  all      everything above

flags:
`)
	flag.PrintDefaults()
}

func run(exp string) error {
	switch exp {
	case "table1":
		fmt.Print(netdimm.DefaultConfig().Table())
	case "fig4":
		runFig4()
	case "fig5":
		runFig5()
	case "fig7":
		runFig7()
	case "fig11":
		return runFig11()
	case "fig12a":
		return runFig12a()
	case "fig12b":
		runFig12b()
	case "headline":
		return runHeadline()
	case "bench":
		return runBench()
	case "bandwidth":
		return runBandwidth()
	case "ablation":
		return runAblation()
	case "mixed":
		return runMixed()
	case "replay":
		if flag.NArg() != 2 {
			return fmt.Errorf("replay: usage: netdimm-sim replay FILE")
		}
		return runReplay(flag.Arg(1))
	case "all":
		fmt.Print(netdimm.DefaultConfig().Table())
		fmt.Println()
		runFig4()
		fmt.Println()
		runFig5()
		fmt.Println()
		runFig7()
		fmt.Println()
		if err := runFig11(); err != nil {
			return err
		}
		fmt.Println()
		if err := runFig12a(); err != nil {
			return err
		}
		fmt.Println()
		runFig12b()
		fmt.Println()
		if err := runBandwidth(); err != nil {
			return err
		}
		fmt.Println()
		if err := runAblation(); err != nil {
			return err
		}
		fmt.Println()
		return runHeadline()
	default:
		return fmt.Errorf("unknown experiment %q", exp)
	}
	return nil
}

func runFig4() {
	if *asCSV {
		csvOut("size", "dnic_ns", "dnic_zcpy_ns", "inic_ns", "inic_zcpy_ns", "pcie_share", "pcie_share_zcpy")
		for _, r := range netdimm.RunFig4(nil, *switchLat, *parallel) {
			csvOut(fmt.Sprint(r.Size),
				fmt.Sprint(r.DNIC.Nanoseconds()), fmt.Sprint(r.DNICZcpy.Nanoseconds()),
				fmt.Sprint(r.INIC.Nanoseconds()), fmt.Sprint(r.INICZcpy.Nanoseconds()),
				fmt.Sprintf("%.4f", r.PCIeShare), fmt.Sprintf("%.4f", r.PCIeShareZcpy))
		}
		return
	}
	fmt.Printf("Fig. 4 — one-way latency, baseline NICs (switch %v)\n", *switchLat)
	fmt.Printf("%6s  %10s  %10s  %10s  %10s  %10s  %10s\n",
		"size", "dNIC", "dNIC.zcpy", "iNIC", "iNIC.zcpy", "pcie.overh", "pcie.zcpy")
	for _, r := range netdimm.RunFig4(nil, *switchLat, *parallel) {
		fmt.Printf("%6d  %10v  %10v  %10v  %10v  %9.1f%%  %9.1f%%\n",
			r.Size, r.DNIC, r.DNICZcpy, r.INIC, r.INICZcpy,
			r.PCIeShare*100, r.PCIeShareZcpy*100)
	}
}

func runFig5() {
	if *asCSV {
		csvOut("inject_delay_ns", "gbps", "mem_read_ns")
		for _, r := range netdimm.RunFig5(nil, *parallel) {
			csvOut(fmt.Sprint(r.InjectDelay.Nanoseconds()),
				fmt.Sprintf("%.2f", r.BandwidthGbps), fmt.Sprintf("%.1f", r.MemReadNs))
		}
		return
	}
	fmt.Println("Fig. 5 — iperf bandwidth vs MLC memory pressure")
	fmt.Printf("%14s  %10s  %12s\n", "inject delay", "Gbps", "mem read ns")
	for _, r := range netdimm.RunFig5(nil, *parallel) {
		delay := r.InjectDelay.String()
		if r.InjectDelay >= time.Second {
			delay = "none"
		}
		fmt.Printf("%14s  %10.1f  %12.0f\n", delay, r.BandwidthGbps, r.MemReadNs)
	}
}

func runFig7() {
	if *asCSV {
		csvOut("rel_cacheline", "rel_time_ns", "burst")
		for _, p := range netdimm.RunFig7() {
			csvOut(fmt.Sprint(p.RelCacheline), fmt.Sprint(p.RelTime.Nanoseconds()), fmt.Sprint(p.Burst))
		}
		return
	}
	fmt.Println("Fig. 7 — DMA request trace, six 1514B receptions (rel line, rel ns, burst)")
	pts := netdimm.RunFig7()
	for i, p := range pts {
		fmt.Printf("%4d %8.1f %d", p.RelCacheline, float64(p.RelTime.Nanoseconds()), p.Burst)
		if (i+1)%4 == 0 {
			fmt.Println()
		} else {
			fmt.Print("   |   ")
		}
	}
	fmt.Println()
}

func runFig11() error {
	rows, err := netdimm.RunFig11(nil, *switchLat, *parallel)
	if err != nil {
		return err
	}
	if *asCSV {
		csvOut("size", "arch", "txCopy_ns", "rxCopy_ns", "txDMA_ns", "rxDMA_ns",
			"wire_ns", "ioReg_ns", "txFlush_ns", "rxInvalidate_ns", "total_ns")
		emit := func(size int, arch string, b netdimm.LatencyBreakdown) {
			csvOut(fmt.Sprint(size), arch,
				fmt.Sprint(b.TxCopy.Nanoseconds()), fmt.Sprint(b.RxCopy.Nanoseconds()),
				fmt.Sprint(b.TxDMA.Nanoseconds()), fmt.Sprint(b.RxDMA.Nanoseconds()),
				fmt.Sprint(b.Wire.Nanoseconds()), fmt.Sprint(b.IOReg.Nanoseconds()),
				fmt.Sprint(b.TxFlush.Nanoseconds()), fmt.Sprint(b.RxInvalidate.Nanoseconds()),
				fmt.Sprint(b.Total.Nanoseconds()))
		}
		for _, r := range rows {
			emit(r.Size, "dNIC", r.DNIC)
			emit(r.Size, "iNIC", r.INIC)
			emit(r.Size, "NetDIMM", r.NetDIMM)
		}
		return nil
	}
	fmt.Printf("Fig. 11 — one-way latency breakdown (switch %v)\n", *switchLat)
	for _, r := range rows {
		fmt.Printf("size %dB:\n", r.Size)
		fmt.Printf("  dNIC    %v\n", r.DNIC)
		fmt.Printf("  iNIC    %v\n", r.INIC)
		fmt.Printf("  NetDIMM %v\n", r.NetDIMM)
		fmt.Printf("  reduction: %.1f%% vs dNIC, %.1f%% vs iNIC\n",
			r.ReductionVsDNIC*100, r.ReductionVsINIC*100)
	}
	return nil
}

func runFig12a() error {
	rows, err := netdimm.RunFig12a(*packets, *seed, *parallel)
	if err != nil {
		return err
	}
	if *asCSV {
		csvOut("cluster", "switch_ns", "dnic_mean_ns", "inic_mean_ns", "netdimm_mean_ns", "norm_dnic", "norm_inic")
		for _, r := range rows {
			csvOut(string(r.Cluster), fmt.Sprint(r.SwitchLatency.Nanoseconds()),
				fmt.Sprint(r.DNICMean.Nanoseconds()), fmt.Sprint(r.INICMean.Nanoseconds()),
				fmt.Sprint(r.NetDIMMMean.Nanoseconds()),
				fmt.Sprintf("%.4f", r.NormVsDNIC), fmt.Sprintf("%.4f", r.NormVsINIC))
		}
		return nil
	}
	fmt.Printf("Fig. 12a — normalized per-packet latency, %d packets/cell\n", *packets)
	fmt.Printf("%-10s  %8s  %10s  %10s  %12s  %12s\n",
		"cluster", "switch", "dNIC mean", "ND mean", "norm(dNIC)", "norm(iNIC)")
	for _, r := range rows {
		fmt.Printf("%-10s  %8v  %10v  %10v  %12.3f  %12.3f\n",
			r.Cluster, r.SwitchLatency, r.DNICMean, r.NetDIMMMean, r.NormVsDNIC, r.NormVsINIC)
	}
	return nil
}

func runFig12b() {
	if *asCSV {
		csvOut("cluster", "nf", "inic_ns", "netdimm_ns", "norm")
		for _, r := range netdimm.RunFig12b(*parallel) {
			csvOut(string(r.Cluster), string(r.Function),
				fmt.Sprintf("%.2f", r.INICNs), fmt.Sprintf("%.2f", r.NetDIMMNs),
				fmt.Sprintf("%.4f", r.Norm))
		}
		return
	}
	fmt.Println("Fig. 12b — co-running app memory latency (normalized to iNIC)")
	fmt.Printf("%-10s  %-4s  %10s  %10s  %8s\n", "cluster", "nf", "iNIC ns", "ND ns", "norm")
	for _, r := range netdimm.RunFig12b(*parallel) {
		fmt.Printf("%-10s  %-4s  %10.1f  %10.1f  %8.3f\n",
			r.Cluster, r.Function, r.INICNs, r.NetDIMMNs, r.Norm)
	}
}

func runBandwidth() error {
	rows, err := netdimm.RunBandwidth(*packets, *parallel)
	if err != nil {
		return err
	}
	fmt.Println("Bandwidth — sustained 40GbE line-rate check (Sec. 5.2)")
	fmt.Printf("%-8s  %8s  %9s  %11s  %9s  %s\n",
		"arch", "offered", "achieved", "per-pkt RX", "headroom", "sustained")
	for _, r := range rows {
		head := "-"
		if r.ChannelHeadroom > 0 {
			head = fmt.Sprintf("%.0f%%", r.ChannelHeadroom*100)
		}
		fmt.Printf("%-8s  %7.1fG  %8.1fG  %11v  %9s  %v\n",
			r.Arch, r.OfferedGbps, r.AchievedGbps, r.PerPacketRx, head, r.Sustained)
	}
	return nil
}

func runAblation() error {
	rep, err := netdimm.RunAblations(*parallel)
	if err != nil {
		return err
	}
	fmt.Println("Ablations — what each NetDIMM design choice contributes")
	fmt.Println("\nnPrefetcher degree vs payload-read behaviour:")
	for _, r := range rep.Prefetch {
		fmt.Printf("  degree %d: nCache hit rate %5.1f%%, mean read %v\n",
			r.Degree, r.HitRate*100, r.MeanReadLat)
	}
	fmt.Println("\nBuffer copy strategy (one MTU packet):")
	for _, r := range rep.Clone {
		fmt.Printf("  %-38s %v\n", r.Strategy, r.PerClone)
	}
	fmt.Println("\nDMA-buffer allocation strategy:")
	for _, r := range rep.Alloc {
		fmt.Printf("  %-38s %8v critical-path, FPM rate %5.1f%%\n",
			r.Strategy, r.PerAlloc, r.FPMRate*100)
	}
	fmt.Println("\nHeader caching (L3F-style access):")
	for _, r := range rep.HeaderCache {
		fmt.Printf("  %-28s header read %v, hit rate %5.1f%%\n",
			r.Strategy, r.HeaderRead, r.HitRate*100)
	}
	return nil
}

func runMixed() error {
	r, err := netdimm.RunMixedChannel(*packets, *seed)
	if err != nil {
		return err
	}
	fmt.Println("Mixed channel — DDR + NetDIMM on one DDR5 channel (Sec. 2.2)")
	fmt.Printf("  DDR reads:      %5d  mean %v\n", r.DDRReads, r.DDRMean)
	fmt.Printf("  NetDIMM reads:  %5d  mean %v (asynchronous, non-deterministic)\n",
		r.NetDIMMReads, r.NetDIMMMean)
	fmt.Printf("  out-of-order completions: %d, max outstanding request IDs: %d\n",
		r.OutOfOrder, r.MaxOutstandingIDs)
	return nil
}

func runReplay(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	cluster, rows, err := netdimm.ReplayTraceFile(f, *switchLat, *seed, *parallel)
	if err != nil {
		return err
	}
	fmt.Printf("Replay of %s (%s trace)\n", path, cluster)
	fmt.Printf("%-8s  %8s  %10s  %10s  %10s\n", "arch", "packets", "mean", "p50", "p99")
	for _, r := range rows {
		fmt.Printf("%-8s  %8d  %10v  %10v  %10v\n", r.Arch, r.Packets, r.Mean, r.P50, r.P99)
	}
	return nil
}

func runHeadline() error {
	h, err := netdimm.RunHeadline(*packets, *parallel)
	if err != nil {
		return err
	}
	fmt.Println("Headline numbers (paper values in parentheses)")
	fmt.Printf("  avg one-way latency reduction vs dNIC: %.1f%% (49.9%%)\n", h.AvgReductionVsDNIC*100)
	fmt.Printf("  avg one-way latency reduction vs iNIC: %.1f%% (25.9%%)\n", h.AvgReductionVsINIC*100)
	var keys []time.Duration
	for k := range h.TraceReductionBySwitch {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	paper := map[time.Duration]string{
		25 * time.Nanosecond:  "40.6%",
		50 * time.Nanosecond:  "36.0%",
		100 * time.Nanosecond: "33.1%",
		200 * time.Nanosecond: "25.3%",
	}
	for _, k := range keys {
		fmt.Printf("  trace replay reduction @%v switch: %.1f%% (%s)\n",
			k, h.TraceReductionBySwitch[k]*100, paper[k])
	}
	fmt.Printf("  DPI worst-case app-latency increase vs iNIC: +%.1f%% (+15.4%%)\n", h.DPIWorst*100)
	fmt.Printf("  L3F best-case app-latency reduction vs iNIC: -%.1f%% (-30.9%%)\n", h.L3FBest*100)
	return nil
}
