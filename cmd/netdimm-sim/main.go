// Command netdimm-sim runs the paper's experiments and prints their
// tables/series.
//
// Usage:
//
//	netdimm-sim [flags] <experiment>
//
// Experiments: table1, fig4, fig5, fig7, fig11, fig12a, fig12b, faultsweep,
// loadsweep, racksweep, failsweep, collsweep, headline, all. The -scenario
// flag selects the simulated system: a named preset (table1, ddr5,
// pcie-gen3, multi-netdimm-4, lossy-1pct) or a JSON config file.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"netdimm"
)

var (
	packets    = flag.Int("n", 1000, "packets per trace-replay cell (fig12a, headline)")
	switchLat  = flag.Duration("switch", 100*time.Nanosecond, "switch port-to-port latency (fig4, fig11)")
	seed       = flag.Uint64("seed", 3, "trace generator seed")
	asCSV      = flag.Bool("csv", false, "emit plot-ready CSV instead of tables (fig4, fig5, fig7, fig11, fig12a, fig12b)")
	parallel   = flag.Int("parallel", 0, "worker goroutines per sweep: 0 = all cores, 1 = sequential, N = at most N")
	scenario   = flag.String("scenario", "", "system to simulate: a preset name or a JSON config file (default table1)")
	lossRates  = flag.String("loss", "", "comma-separated frame-loss rates for faultsweep (default 0,0.001,0.01,0.05,0.1,0.2)")
	loadRates  = flag.String("rate", "", "comma-separated offered loads (fractions of line rate) for loadsweep (default a grid bracketing each knee)")
	hosts      = flag.Int("hosts", 0, "sender hosts for loadsweep (0 = scenario value or 8) and racksweep (0 = scenario value or 256)")
	shards     = flag.Int("shards", 0, "engine shards per loadsweep/racksweep cell: hosts spread over shards, results identical at any count (0 = scenario value or single-engine)")
	rackList   = flag.String("racks", "", "comma-separated rack (leaf) counts for racksweep (default 2,4,8; a scenario Fabric.Leaves pins one)")
	outageList = flag.String("outage", "", "comma-separated spine-outage durations for failsweep, Go duration syntax (default 0,5µs,20µs,60µs; 0 is the baseline)")
	cluster    = flag.String("cluster", "", "traffic distribution for loadsweep: database, webserver or hadoop (default scenario value or database)")
	traceOut   = flag.String("trace", "", "write a Chrome trace-event JSON file of the run (fig11, faultsweep, mixed); open in ui.perfetto.dev")
	metrics    = flag.Bool("metrics", false, "collect and print the metrics registry after the experiment output (fig11, faultsweep, mixed)")
	rankList   = flag.String("ranks", "", "comma-separated rank counts for collsweep (default 4,8,16,32,64,128; a scenario Collective.Ranks pins one)")
	opsList    = flag.String("ops", "", "comma-separated collective ops for collsweep: allreduce, broadcast, reducescatter (default all three; a scenario Collective.Op pins one)")
	payload    = flag.Int("payload", 0, "per-rank vector bytes for collsweep (0 = scenario value or 64KiB)")
)

// flagWasSet reports whether the named flag was given explicitly on the
// command line (flag.Visit walks only the flags that were set).
func flagWasSet(name string) bool {
	set := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}

// explicitPackets returns the -n value only when the flag was given
// explicitly, and 0 otherwise. The -n default of 1000 suits single-switch
// cells; the clos-scale sweeps split it across hundreds of hosts, so from 0
// each sweep applies its own per-cell default instead.
func explicitPackets() int {
	if flagWasSet("n") {
		return *packets
	}
	return 0
}

// obsConfig arms cfg.Obs from the -trace / -metrics flags; with neither
// flag set the configuration is returned unchanged and runs stay
// uninstrumented (byte-identical to the pinned goldens).
func obsConfig(cfg netdimm.Config) netdimm.Config {
	cfg.Obs.Trace = cfg.Obs.Trace || *traceOut != ""
	cfg.Obs.Metrics = cfg.Obs.Metrics || *metrics
	return cfg
}

// emitObservation writes the -trace file and prints the metrics registry
// (as CSV under -csv) for an observed run; a nil observation only writes
// the empty-but-valid trace file when one was requested.
func emitObservation(ob *netdimm.Observation) error {
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			return err
		}
		if err := ob.WriteTrace(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "netdimm-sim: wrote trace to %s (open in ui.perfetto.dev)\n", *traceOut)
	}
	if *metrics && ob.HasMetrics() {
		fmt.Println()
		if *asCSV {
			fmt.Print(ob.MetricsCSV())
		} else {
			fmt.Println("Metrics registry")
			fmt.Print(ob.MetricsTable())
		}
	}
	return nil
}

// printFaultTails prints the per-architecture cross-rate latency tails of
// a fault sweep. It is part of the -metrics rendering so the default
// faultsweep output stays byte-identical.
func printFaultTails(tails []netdimm.FaultTailResult) {
	if !*metrics || len(tails) == 0 {
		return
	}
	fmt.Println("\nLatency tails across all loss rates")
	fmt.Printf("%-8s  %8s  %10s  %10s  %10s\n", "arch", "samples", "mean", "p50", "p99")
	for _, t := range tails {
		fmt.Printf("%-8s  %8d  %10v  %10v  %10v\n", t.Arch, t.Count, t.Mean, t.P50, t.P99)
	}
}

// command is one experiment the CLI can run. Every runner receives the
// scenario configuration; `all` replays the inAll commands in order.
type command struct {
	name  string
	help  string
	inAll bool
	run   func(cfg netdimm.Config) error
}

// commands is the single dispatch table: usage, dispatch and `all` iterate
// over it, so an experiment is declared exactly once.
var commands = []command{
	{"table1", "system configuration (paper Table 1, or the scenario's)", true, runTable},
	{"fig4", "one-way latency of dNIC/dNIC.zcpy/iNIC/iNIC.zcpy + PCIe share", true, runFig4},
	{"fig5", "iperf bandwidth under MLC memory pressure", true, runFig5},
	{"fig7", "NIC DMA access locality (six 1514B receptions)", true, runFig7},
	{"fig11", "one-way latency breakdown: dNIC / iNIC / NetDIMM", true, runFig11},
	{"fig12a", "cluster trace replay across switch latencies", true, runFig12a},
	{"fig12b", "co-running app memory latency under DPI and L3F", true, runFig12b},
	{"bandwidth", "sustained line-rate check (Sec. 5.2)", true, runBandwidth},
	{"ablation", "design-choice ablations (nPrefetcher, nCache, FPM, allocCache)", true, runAblation},
	{"mixed", "DDR + NetDIMM coexistence on one channel (NVDIMM-P async, Sec. 2.2)", false, runMixed},
	{"replay", "replay a netdimm-trace file under all three architectures", false, runReplayArg},
	{"faultsweep", "one-way latency vs injected frame loss, with retransmit recovery", false, runFaultSweep},
	{"loadsweep", "rack-scale incast: latency vs offered load, with saturation knees", false, runLoadSweep},
	{"racksweep", "leaf/spine clos: latency vs load across rack counts, ECN on/off", false, runRackSweep},
	{"failsweep", "scheduled spine outage: ECMP failover, ARQ recovery time, tail inflation", false, runFailSweep},
	{"collsweep", "collective completion: Ring AllReduce / tree Broadcast / Reduce-Scatter vs rank count", false, runCollSweep},
	{"headline", "the abstract's summary numbers", true, runHeadline},
	{"bench", "machine-readable benchmark report (JSON; see -benchn)", false, func(netdimm.Config) error { return runBench() }},
	{"campaign", "run a grid of experiments from -grid FILE into a timestamped output dir", false, runCampaign},
	{"trajectory", "perf history across BENCH_*.json reports, with -gate regression check", false, runTrajectory},
}

// csvOut prints one CSV record.
func csvOut(fields ...string) {
	for i, f := range fields {
		if i > 0 {
			fmt.Print(",")
		}
		fmt.Print(f)
	}
	fmt.Println()
}

// subArgs holds the positional arguments that follow a subcommand verb
// (the bench report paths of `trajectory`), after its flags are parsed.
var subArgs []string

func main() {
	flag.Usage = usage
	flag.Parse()
	if flag.NArg() < 1 {
		usage()
		os.Exit(2)
	}
	exp := flag.Arg(0)
	rest := flag.Args()[1:]
	switch exp {
	case "campaign", "trajectory":
		// These verbs take flags after the verb (`campaign -grid FILE`), so
		// re-parse the remainder; what is left over is the verb's own
		// positional arguments.
		flag.CommandLine.Parse(rest)
		subArgs = flag.Args()
	default:
		if len(rest) > 1 {
			usage()
			os.Exit(2)
		}
	}
	cfg, err := netdimm.LoadScenario(*scenario)
	if err == nil {
		err = run(cfg, exp)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "netdimm-sim: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, "usage: netdimm-sim [flags] <experiment>\n\nexperiments:\n")
	for _, c := range commands {
		fmt.Fprintf(os.Stderr, "  %-9s %s\n", c.name, c.help)
	}
	fmt.Fprintf(os.Stderr, "  %-9s %s\n", "all", "every experiment above that needs no extra argument")
	fmt.Fprintf(os.Stderr, "\nscenarios (for -scenario; or pass a JSON config file):\n  %v\n\nflags:\n",
		netdimm.Scenarios())
	flag.PrintDefaults()
}

func run(cfg netdimm.Config, exp string) error {
	if exp == "all" {
		first := true
		for _, c := range commands {
			if !c.inAll {
				continue
			}
			if !first {
				fmt.Println()
			}
			first = false
			if err := c.run(cfg); err != nil {
				return err
			}
		}
		return nil
	}
	for _, c := range commands {
		if c.name == exp {
			return c.run(cfg)
		}
	}
	return fmt.Errorf("unknown experiment %q", exp)
}

func runTable(cfg netdimm.Config) error {
	fmt.Print(cfg.Table())
	return nil
}

func runFig4(cfg netdimm.Config) error {
	rows, err := netdimm.RunFig4WithConfig(cfg, nil, *switchLat, *parallel)
	if err != nil {
		return err
	}
	if *asCSV {
		csvOut("size", "dnic_ns", "dnic_zcpy_ns", "inic_ns", "inic_zcpy_ns", "pcie_share", "pcie_share_zcpy")
		for _, r := range rows {
			csvOut(fmt.Sprint(r.Size),
				fmt.Sprint(r.DNIC.Nanoseconds()), fmt.Sprint(r.DNICZcpy.Nanoseconds()),
				fmt.Sprint(r.INIC.Nanoseconds()), fmt.Sprint(r.INICZcpy.Nanoseconds()),
				fmt.Sprintf("%.4f", r.PCIeShare), fmt.Sprintf("%.4f", r.PCIeShareZcpy))
		}
		return nil
	}
	fmt.Printf("Fig. 4 — one-way latency, baseline NICs (switch %v)\n", *switchLat)
	fmt.Printf("%6s  %10s  %10s  %10s  %10s  %10s  %10s\n",
		"size", "dNIC", "dNIC.zcpy", "iNIC", "iNIC.zcpy", "pcie.overh", "pcie.zcpy")
	for _, r := range rows {
		fmt.Printf("%6d  %10v  %10v  %10v  %10v  %9.1f%%  %9.1f%%\n",
			r.Size, r.DNIC, r.DNICZcpy, r.INIC, r.INICZcpy,
			r.PCIeShare*100, r.PCIeShareZcpy*100)
	}
	return nil
}

func runFig5(cfg netdimm.Config) error {
	rows, err := netdimm.RunFig5WithConfig(cfg, nil, *parallel)
	if err != nil {
		return err
	}
	if *asCSV {
		csvOut("inject_delay_ns", "gbps", "mem_read_ns")
		for _, r := range rows {
			csvOut(fmt.Sprint(r.InjectDelay.Nanoseconds()),
				fmt.Sprintf("%.2f", r.BandwidthGbps), fmt.Sprintf("%.1f", r.MemReadNs))
		}
		return nil
	}
	fmt.Println("Fig. 5 — iperf bandwidth vs MLC memory pressure")
	fmt.Printf("%14s  %10s  %12s\n", "inject delay", "Gbps", "mem read ns")
	for _, r := range rows {
		delay := r.InjectDelay.String()
		if r.InjectDelay >= time.Second {
			delay = "none"
		}
		fmt.Printf("%14s  %10.1f  %12.0f\n", delay, r.BandwidthGbps, r.MemReadNs)
	}
	return nil
}

func runFig7(cfg netdimm.Config) error {
	pts, err := netdimm.RunFig7WithConfig(cfg)
	if err != nil {
		return err
	}
	if *asCSV {
		csvOut("rel_cacheline", "rel_time_ns", "burst")
		for _, p := range pts {
			csvOut(fmt.Sprint(p.RelCacheline), fmt.Sprint(p.RelTime.Nanoseconds()), fmt.Sprint(p.Burst))
		}
		return nil
	}
	fmt.Println("Fig. 7 — DMA request trace, six 1514B receptions (rel line, rel ns, burst)")
	for i, p := range pts {
		fmt.Printf("%4d %8.1f %d", p.RelCacheline, float64(p.RelTime.Nanoseconds()), p.Burst)
		if (i+1)%4 == 0 {
			fmt.Println()
		} else {
			fmt.Print("   |   ")
		}
	}
	fmt.Println()
	return nil
}

func runFig11(cfg netdimm.Config) error {
	rows, ob, err := netdimm.RunFig11Observed(obsConfig(cfg), nil, *switchLat, *parallel)
	if err != nil {
		return err
	}
	defer emitObservation(ob)
	if *asCSV {
		csvOut("size", "arch", "txCopy_ns", "rxCopy_ns", "txDMA_ns", "rxDMA_ns",
			"wire_ns", "ioReg_ns", "txFlush_ns", "rxInvalidate_ns", "total_ns")
		emit := func(size int, arch string, b netdimm.LatencyBreakdown) {
			csvOut(fmt.Sprint(size), arch,
				fmt.Sprint(b.TxCopy.Nanoseconds()), fmt.Sprint(b.RxCopy.Nanoseconds()),
				fmt.Sprint(b.TxDMA.Nanoseconds()), fmt.Sprint(b.RxDMA.Nanoseconds()),
				fmt.Sprint(b.Wire.Nanoseconds()), fmt.Sprint(b.IOReg.Nanoseconds()),
				fmt.Sprint(b.TxFlush.Nanoseconds()), fmt.Sprint(b.RxInvalidate.Nanoseconds()),
				fmt.Sprint(b.Total.Nanoseconds()))
		}
		for _, r := range rows {
			emit(r.Size, "dNIC", r.DNIC)
			emit(r.Size, "iNIC", r.INIC)
			emit(r.Size, "NetDIMM", r.NetDIMM)
		}
		return nil
	}
	fmt.Printf("Fig. 11 — one-way latency breakdown (switch %v)\n", *switchLat)
	for _, r := range rows {
		fmt.Printf("size %dB:\n", r.Size)
		fmt.Printf("  dNIC    %v\n", r.DNIC)
		fmt.Printf("  iNIC    %v\n", r.INIC)
		fmt.Printf("  NetDIMM %v\n", r.NetDIMM)
		fmt.Printf("  reduction: %.1f%% vs dNIC, %.1f%% vs iNIC\n",
			r.ReductionVsDNIC*100, r.ReductionVsINIC*100)
	}
	return nil
}

func runFig12a(cfg netdimm.Config) error {
	rows, err := netdimm.RunFig12aWithConfig(cfg, *packets, *seed, *parallel)
	if err != nil {
		return err
	}
	if *asCSV {
		csvOut("cluster", "switch_ns", "dnic_mean_ns", "inic_mean_ns", "netdimm_mean_ns", "norm_dnic", "norm_inic")
		for _, r := range rows {
			csvOut(string(r.Cluster), fmt.Sprint(r.SwitchLatency.Nanoseconds()),
				fmt.Sprint(r.DNICMean.Nanoseconds()), fmt.Sprint(r.INICMean.Nanoseconds()),
				fmt.Sprint(r.NetDIMMMean.Nanoseconds()),
				fmt.Sprintf("%.4f", r.NormVsDNIC), fmt.Sprintf("%.4f", r.NormVsINIC))
		}
		return nil
	}
	fmt.Printf("Fig. 12a — normalized per-packet latency, %d packets/cell\n", *packets)
	fmt.Printf("%-10s  %8s  %10s  %10s  %12s  %12s\n",
		"cluster", "switch", "dNIC mean", "ND mean", "norm(dNIC)", "norm(iNIC)")
	for _, r := range rows {
		fmt.Printf("%-10s  %8v  %10v  %10v  %12.3f  %12.3f\n",
			r.Cluster, r.SwitchLatency, r.DNICMean, r.NetDIMMMean, r.NormVsDNIC, r.NormVsINIC)
	}
	return nil
}

func runFig12b(cfg netdimm.Config) error {
	rows, err := netdimm.RunFig12bWithConfig(cfg, *parallel)
	if err != nil {
		return err
	}
	if *asCSV {
		csvOut("cluster", "nf", "inic_ns", "netdimm_ns", "norm")
		for _, r := range rows {
			csvOut(string(r.Cluster), string(r.Function),
				fmt.Sprintf("%.2f", r.INICNs), fmt.Sprintf("%.2f", r.NetDIMMNs),
				fmt.Sprintf("%.4f", r.Norm))
		}
		return nil
	}
	fmt.Println("Fig. 12b — co-running app memory latency (normalized to iNIC)")
	fmt.Printf("%-10s  %-4s  %10s  %10s  %8s\n", "cluster", "nf", "iNIC ns", "ND ns", "norm")
	for _, r := range rows {
		fmt.Printf("%-10s  %-4s  %10.1f  %10.1f  %8.3f\n",
			r.Cluster, r.Function, r.INICNs, r.NetDIMMNs, r.Norm)
	}
	return nil
}

func runBandwidth(cfg netdimm.Config) error {
	rows, err := netdimm.RunBandwidthWithConfig(cfg, *packets, *parallel)
	if err != nil {
		return err
	}
	fmt.Printf("Bandwidth — sustained %dGbE line-rate check (Sec. 5.2)\n", cfg.NetworkGbps)
	fmt.Printf("%-8s  %8s  %9s  %11s  %9s  %s\n",
		"arch", "offered", "achieved", "per-pkt RX", "headroom", "sustained")
	for _, r := range rows {
		head := "-"
		if r.ChannelHeadroom > 0 {
			head = fmt.Sprintf("%.0f%%", r.ChannelHeadroom*100)
		}
		fmt.Printf("%-8s  %7.1fG  %8.1fG  %11v  %9s  %v\n",
			r.Arch, r.OfferedGbps, r.AchievedGbps, r.PerPacketRx, head, r.Sustained)
	}
	return nil
}

func runAblation(cfg netdimm.Config) error {
	rep, err := netdimm.RunAblationsWithConfig(cfg, *parallel)
	if err != nil {
		return err
	}
	fmt.Println("Ablations — what each NetDIMM design choice contributes")
	fmt.Println("\nnPrefetcher degree vs payload-read behaviour:")
	for _, r := range rep.Prefetch {
		fmt.Printf("  degree %d: nCache hit rate %5.1f%%, mean read %v\n",
			r.Degree, r.HitRate*100, r.MeanReadLat)
	}
	fmt.Println("\nBuffer copy strategy (one MTU packet):")
	for _, r := range rep.Clone {
		fmt.Printf("  %-38s %v\n", r.Strategy, r.PerClone)
	}
	fmt.Println("\nDMA-buffer allocation strategy:")
	for _, r := range rep.Alloc {
		fmt.Printf("  %-38s %8v critical-path, FPM rate %5.1f%%\n",
			r.Strategy, r.PerAlloc, r.FPMRate*100)
	}
	fmt.Println("\nHeader caching (L3F-style access):")
	for _, r := range rep.HeaderCache {
		fmt.Printf("  %-28s header read %v, hit rate %5.1f%%\n",
			r.Strategy, r.HeaderRead, r.HitRate*100)
	}
	return nil
}

func runMixed(cfg netdimm.Config) error {
	r, ob, err := netdimm.RunMixedChannelObserved(obsConfig(cfg), *packets, *seed)
	if err != nil {
		return err
	}
	defer emitObservation(ob)
	fmt.Println("Mixed channel — DDR + NetDIMM on one DDR5 channel (Sec. 2.2)")
	fmt.Printf("  DDR reads:      %5d  mean %v\n", r.DDRReads, r.DDRMean)
	fmt.Printf("  NetDIMM reads:  %5d  mean %v (asynchronous, non-deterministic)\n",
		r.NetDIMMReads, r.NetDIMMMean)
	fmt.Printf("  out-of-order completions: %d, max outstanding request IDs: %d\n",
		r.OutOfOrder, r.MaxOutstandingIDs)
	return nil
}

func runReplayArg(cfg netdimm.Config) error {
	if flag.NArg() != 2 {
		return fmt.Errorf("replay: usage: netdimm-sim replay FILE")
	}
	path := flag.Arg(1)
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	cluster, rows, err := netdimm.ReplayTraceFileWithConfig(cfg, f, *switchLat, *seed, *parallel)
	if err != nil {
		return err
	}
	fmt.Printf("Replay of %s (%s trace)\n", path, cluster)
	fmt.Printf("%-8s  %8s  %10s  %10s  %10s\n", "arch", "packets", "mean", "p50", "p99")
	for _, r := range rows {
		fmt.Printf("%-8s  %8d  %10v  %10v  %10v\n", r.Arch, r.Packets, r.Mean, r.P50, r.P99)
	}
	return nil
}

// parseLossRates parses the -loss flag; an empty flag selects the
// experiment's default sweep.
func parseLossRates(s string) ([]float64, error) {
	if s == "" {
		return nil, nil
	}
	var rates []float64
	for _, part := range strings.Split(s, ",") {
		r, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, fmt.Errorf("faultsweep: bad loss rate %q: %v", part, err)
		}
		rates = append(rates, r)
	}
	return rates, nil
}

func runFaultSweep(cfg netdimm.Config) error {
	rates, err := parseLossRates(*lossRates)
	if err != nil {
		return err
	}
	rows, tails, ob, err := netdimm.RunFaultSweepObserved(obsConfig(cfg), rates, *packets, *seed, *parallel)
	if err != nil {
		return err
	}
	defer emitObservation(ob)
	defer printFaultTails(tails)
	if *asCSV {
		csvOut("arch", "loss_rate", "mean_ns", "p50_ns", "p99_ns",
			"delivered", "failed", "retransmits", "frames_dropped", "frames_corrupted", "mem_retries")
		for _, r := range rows {
			csvOut(r.Arch, fmt.Sprintf("%g", r.LossRate),
				fmt.Sprint(r.Mean.Nanoseconds()), fmt.Sprint(r.P50.Nanoseconds()), fmt.Sprint(r.P99.Nanoseconds()),
				fmt.Sprint(r.Delivered), fmt.Sprint(r.Failed),
				fmt.Sprint(r.Counters.Retransmits), fmt.Sprint(r.Counters.FramesDropped),
				fmt.Sprint(r.Counters.FramesCorrupted), fmt.Sprint(r.Counters.MemRetries))
		}
		return nil
	}
	fmt.Println("Fault sweep — one-way latency vs injected frame loss (with recovery)")
	fmt.Printf("%-8s  %8s  %10s  %10s  %10s  %9s  %6s  %7s\n",
		"arch", "loss", "mean", "p50", "p99", "delivered", "failed", "retrans")
	for _, r := range rows {
		fmt.Printf("%-8s  %8g  %10v  %10v  %10v  %9d  %6d  %7d\n",
			r.Arch, r.LossRate, r.Mean, r.P50, r.P99, r.Delivered, r.Failed, r.Counters.Retransmits)
	}
	return nil
}

// parseLoadRates parses the -rate flag; an empty flag selects the
// experiment's default grid.
func parseLoadRates(s string) ([]float64, error) {
	if s == "" {
		return nil, nil
	}
	var rates []float64
	for _, part := range strings.Split(s, ",") {
		r, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, fmt.Errorf("loadsweep: bad offered load %q: %v", part, err)
		}
		rates = append(rates, r)
	}
	return rates, nil
}

func runLoadSweep(cfg netdimm.Config) error {
	rates, err := parseLoadRates(*loadRates)
	if err != nil {
		return err
	}
	if *hosts != 0 {
		cfg.Load.Hosts = *hosts
	}
	if *cluster != "" {
		cfg.Load.Cluster = *cluster
	}
	if *shards != 0 {
		cfg.Load.Shards = *shards
	}
	rows, knees, ob, err := netdimm.RunLoadSweepObserved(obsConfig(cfg), rates, *packets, *seed, *parallel)
	if err != nil {
		return err
	}
	defer emitObservation(ob)
	if *asCSV {
		csvOut("arch", "offered_load", "mean_ns", "p50_ns", "p99_ns", "p999_ns",
			"delivered", "dropped", "egress_max_depth", "egress_queue_delay_ns", "rx_max_depth", "link_util")
		for _, r := range rows {
			csvOut(r.Arch, fmt.Sprintf("%g", r.OfferedLoad),
				fmt.Sprint(r.Mean.Nanoseconds()), fmt.Sprint(r.P50.Nanoseconds()),
				fmt.Sprint(r.P99.Nanoseconds()), fmt.Sprint(r.P999.Nanoseconds()),
				fmt.Sprint(r.Delivered), fmt.Sprint(r.Dropped),
				fmt.Sprint(r.EgressMaxDepth), fmt.Sprint(r.EgressQueueDelay.Nanoseconds()),
				fmt.Sprint(r.RxMaxDepth), fmt.Sprintf("%.4f", r.LinkUtilization))
		}
		return nil
	}
	fmt.Println("Load sweep — rack-scale incast: end-to-end latency vs offered load")
	fmt.Printf("%-8s  %7s  %10s  %10s  %10s  %10s  %9s  %7s  %8s\n",
		"arch", "load", "mean", "p50", "p99", "p99.9", "delivered", "dropped", "rx depth")
	for _, r := range rows {
		fmt.Printf("%-8s  %7g  %10v  %10v  %10v  %10v  %9d  %7d  %8d\n",
			r.Arch, r.OfferedLoad, r.Mean, r.P50, r.P99, r.P999, r.Delivered, r.Dropped, r.RxMaxDepth)
	}
	fmt.Println("\nSaturation knees (highest load with p99 within the knee factor of baseline)")
	for _, k := range knees {
		if !k.Saturated {
			fmt.Printf("  %-8s no knee: curve never saturated within the swept grid\n", k.Arch)
			continue
		}
		fmt.Printf("  %-8s saturates beyond %g of line rate\n", k.Arch, k.Knee)
	}
	return nil
}

// parseRacks parses the -racks flag; an empty flag selects the default
// grid (or the scenario's pinned leaf count).
func parseRacks(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var racks []int
	for _, part := range strings.Split(s, ",") {
		r, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("racksweep: bad rack count %q: %v", part, err)
		}
		racks = append(racks, r)
	}
	return racks, nil
}

func runRackSweep(cfg netdimm.Config) error {
	rates, err := parseLoadRates(*loadRates)
	if err != nil {
		return err
	}
	racks, err := parseRacks(*rackList)
	if err != nil {
		return err
	}
	if *hosts != 0 {
		cfg.Load.Hosts = *hosts
	}
	if *cluster != "" {
		cfg.Load.Cluster = *cluster
	}
	if *shards != 0 {
		cfg.Load.Shards = *shards
	}
	rows, knees, ob, err := netdimm.RunRackSweepObserved(obsConfig(cfg), racks, rates, explicitPackets(), *seed, *parallel)
	if err != nil {
		return err
	}
	defer emitObservation(ob)
	ecnStr := func(on bool) string {
		if on {
			return "on"
		}
		return "off"
	}
	if *asCSV {
		csvOut("arch", "racks", "ecn", "offered_load", "mean_ns", "p50_ns", "p99_ns", "p999_ns",
			"delivered", "dropped", "marked", "cross_rack",
			"leaf_max_depth", "spine_max_depth", "rx_max_depth", "link_util")
		for _, r := range rows {
			csvOut(r.Arch, fmt.Sprint(r.Racks), ecnStr(r.ECN), fmt.Sprintf("%g", r.OfferedLoad),
				fmt.Sprint(r.Mean.Nanoseconds()), fmt.Sprint(r.P50.Nanoseconds()),
				fmt.Sprint(r.P99.Nanoseconds()), fmt.Sprint(r.P999.Nanoseconds()),
				fmt.Sprint(r.Delivered), fmt.Sprint(r.Dropped),
				fmt.Sprint(r.Marked), fmt.Sprint(r.CrossRack),
				fmt.Sprint(r.LeafMaxDepth), fmt.Sprint(r.SpineMaxDepth),
				fmt.Sprint(r.RxMaxDepth), fmt.Sprintf("%.4f", r.LinkUtilization))
		}
		return nil
	}
	fmt.Println("Rack sweep — leaf/spine clos: end-to-end latency vs per-host load")
	fmt.Printf("%-8s  %5s  %4s  %6s  %10s  %10s  %10s  %9s  %7s  %7s  %6s\n",
		"arch", "racks", "ecn", "load", "mean", "p99", "p99.9", "delivered", "dropped", "marked", "xrack")
	for _, r := range rows {
		fmt.Printf("%-8s  %5d  %4s  %6g  %10v  %10v  %10v  %9d  %7d  %7d  %6d\n",
			r.Arch, r.Racks, ecnStr(r.ECN), r.OfferedLoad, r.Mean, r.P99, r.P999,
			r.Delivered, r.Dropped, r.Marked, r.CrossRack)
	}
	fmt.Println("\nSaturation knees per (arch, racks, ECN) curve")
	for _, k := range knees {
		if !k.Saturated {
			fmt.Printf("  %-8s racks=%d ecn=%-3s no knee: curve never saturated within the swept grid\n",
				k.Arch, k.Racks, ecnStr(k.ECN))
			continue
		}
		fmt.Printf("  %-8s racks=%d ecn=%-3s saturates beyond %g of line rate\n",
			k.Arch, k.Racks, ecnStr(k.ECN), k.Knee)
	}
	return nil
}

// parseOutages parses the -outage flag; an empty flag selects the default
// duration grid. "0" is accepted alongside full duration syntax.
func parseOutages(s string) ([]time.Duration, error) {
	if s == "" {
		return nil, nil
	}
	var outs []time.Duration
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "0" {
			outs = append(outs, 0)
			continue
		}
		d, err := time.ParseDuration(part)
		if err != nil {
			return nil, fmt.Errorf("failsweep: bad outage duration %q: %v", part, err)
		}
		outs = append(outs, d)
	}
	return outs, nil
}

func runFailSweep(cfg netdimm.Config) error {
	outages, err := parseOutages(*outageList)
	if err != nil {
		return err
	}
	if *hosts != 0 {
		cfg.Load.Hosts = *hosts
	}
	if *cluster != "" {
		cfg.Load.Cluster = *cluster
	}
	if *shards != 0 {
		cfg.Load.Shards = *shards
	}
	rows, ob, err := netdimm.RunFailSweepObserved(obsConfig(cfg), outages, explicitPackets(), *seed, *parallel)
	if err != nil {
		return err
	}
	defer emitObservation(ob)
	if *asCSV {
		csvOut("arch", "outage_ns", "delivered", "failed", "dropped",
			"outage_drops", "burst_drops", "rerouted", "retransmits", "recovered",
			"reroute_ns", "mean_recovery_ns", "during_offered", "during_delivered",
			"p99_before_ns", "p99_during_ns", "p99_after_ns", "p999_after_ns", "tail_inflation")
		for _, r := range rows {
			csvOut(r.Arch, fmt.Sprint(r.Outage.Nanoseconds()),
				fmt.Sprint(r.Delivered), fmt.Sprint(r.Failed), fmt.Sprint(r.Dropped),
				fmt.Sprint(r.OutageDrops), fmt.Sprint(r.BurstDrops),
				fmt.Sprint(r.Rerouted), fmt.Sprint(r.Retransmits), fmt.Sprint(r.Recovered),
				fmt.Sprint(r.TimeToReroute.Nanoseconds()), fmt.Sprint(r.MeanRecovery.Nanoseconds()),
				fmt.Sprint(r.DuringOffered), fmt.Sprint(r.DuringDelivered),
				fmt.Sprint(r.P99Before.Nanoseconds()), fmt.Sprint(r.P99During.Nanoseconds()),
				fmt.Sprint(r.P99After.Nanoseconds()), fmt.Sprint(r.P999After.Nanoseconds()),
				fmt.Sprintf("%.3f", r.TailInflation))
		}
		return nil
	}
	fmt.Println("Failure sweep — scheduled spine outage: failover, recovery, tail inflation")
	fmt.Printf("%-8s  %7s  %9s  %7s  %8s  %8s  %7s  %9s  %10s  %10s  %10s  %9s\n",
		"arch", "outage", "delivered", "dropped", "rerouted", "retrans", "recov", "reroute", "mean recov", "p99 before", "p99 after", "inflation")
	for _, r := range rows {
		reroute := "-"
		if r.TimeToReroute >= 0 {
			reroute = r.TimeToReroute.String()
		}
		inflation := "-"
		if r.TailInflation > 0 {
			inflation = fmt.Sprintf("%.2fx", r.TailInflation)
		}
		fmt.Printf("%-8s  %7v  %9d  %7d  %8d  %8d  %7d  %9s  %10v  %10v  %10v  %9s\n",
			r.Arch, r.Outage, r.Delivered, r.Dropped, r.Rerouted, r.Retransmits, r.Recovered,
			reroute, r.MeanRecovery, r.P99Before, r.P99After, inflation)
	}
	return nil
}

// parseRanks parses the -ranks flag; an empty flag selects the default
// grid (or the scenario's pinned Collective.Ranks).
func parseRanks(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var ranks []int
	for _, part := range strings.Split(s, ",") {
		r, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("collsweep: bad rank count %q: %v", part, err)
		}
		ranks = append(ranks, r)
	}
	return ranks, nil
}

// parseOps parses the -ops flag; an empty flag selects all operations (or
// the scenario's pinned Collective.Op).
func parseOps(s string) []string {
	if s == "" {
		return nil
	}
	var ops []string
	for _, part := range strings.Split(s, ",") {
		ops = append(ops, strings.TrimSpace(part))
	}
	return ops
}

func runCollSweep(cfg netdimm.Config) error {
	ranks, err := parseRanks(*rankList)
	if err != nil {
		return err
	}
	if *payload != 0 {
		cfg.Collective.PayloadBytes = *payload
	}
	if *shards != 0 {
		cfg.Load.Shards = *shards
	}
	rows, ob, err := netdimm.RunCollSweepObserved(obsConfig(cfg), ranks, parseOps(*opsList), *seed, *parallel)
	if err != nil {
		return err
	}
	defer emitObservation(ob)
	if *asCSV {
		csvOut("arch", "op", "ranks", "payload_bytes", "steps",
			"completion_ns", "step_skew_ns", "bytes_on_wire", "frames", "delivered",
			"dropped", "marked", "link_util")
		for _, r := range rows {
			csvOut(r.Arch, r.Op, fmt.Sprint(r.Ranks),
				fmt.Sprint(r.PayloadBytes), fmt.Sprint(r.Steps),
				fmt.Sprint(r.Completion.Nanoseconds()), fmt.Sprint(r.StepSkew.Nanoseconds()),
				fmt.Sprint(r.BytesOnWire), fmt.Sprint(r.Frames), fmt.Sprint(r.Delivered),
				fmt.Sprint(r.Dropped), fmt.Sprint(r.Marked),
				fmt.Sprintf("%.4f", r.LinkUtilization))
		}
		return nil
	}
	fmt.Println("Collective sweep — completion time vs rank count (every cell verified against a sequential reference)")
	fmt.Printf("%-8s  %-13s  %5s  %5s  %12s  %11s  %10s  %7s  %6s\n",
		"arch", "op", "ranks", "steps", "completion", "step skew", "wire bytes", "marked", "util")
	for _, r := range rows {
		fmt.Printf("%-8s  %-13s  %5d  %5d  %12v  %11v  %10d  %7d  %5.1f%%\n",
			r.Arch, r.Op, r.Ranks, r.Steps, r.Completion, r.StepSkew,
			r.BytesOnWire, r.Marked, r.LinkUtilization*100)
	}
	return nil
}

func runHeadline(cfg netdimm.Config) error {
	h, err := netdimm.RunHeadlineWithConfig(cfg, *packets, *parallel)
	if err != nil {
		return err
	}
	fmt.Println("Headline numbers (paper values in parentheses)")
	fmt.Printf("  avg one-way latency reduction vs dNIC: %.1f%% (49.9%%)\n", h.AvgReductionVsDNIC*100)
	fmt.Printf("  avg one-way latency reduction vs iNIC: %.1f%% (25.9%%)\n", h.AvgReductionVsINIC*100)
	var keys []time.Duration
	for k := range h.TraceReductionBySwitch {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	paper := map[time.Duration]string{
		25 * time.Nanosecond:  "40.6%",
		50 * time.Nanosecond:  "36.0%",
		100 * time.Nanosecond: "33.1%",
		200 * time.Nanosecond: "25.3%",
	}
	for _, k := range keys {
		fmt.Printf("  trace replay reduction @%v switch: %.1f%% (%s)\n",
			k, h.TraceReductionBySwitch[k]*100, paper[k])
	}
	fmt.Printf("  DPI worst-case app-latency increase vs iNIC: +%.1f%% (+15.4%%)\n", h.DPIWorst*100)
	fmt.Printf("  L3F best-case app-latency reduction vs iNIC: -%.1f%% (-30.9%%)\n", h.L3FBest*100)
	return nil
}
