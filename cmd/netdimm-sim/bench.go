package main

import (
	"encoding/json"
	"fmt"
	"os"
	"reflect"
	"runtime"
	"testing"
	"time"

	"netdimm"
	"netdimm/internal/campaign"
	"netdimm/internal/ethernet"
	"netdimm/internal/fabric"
	"netdimm/internal/sim"
	"netdimm/internal/spec"
)

// benchReport is the JSON document emitted by `netdimm-sim bench`. It is the
// format of BENCH_seed.json at the repository root; regenerate with
//
//	go run ./cmd/netdimm-sim -n 400 bench > BENCH_seed.json
type benchReport struct {
	// GitRevision and GeneratedUTC stamp the report with its provenance so
	// the perf-trajectory tooling can place it in history. Reports produced
	// before the stamps existed load fine with both fields absent.
	GitRevision  string `json:"git_revision,omitempty"`
	GeneratedUTC string `json:"generated_utc,omitempty"`
	// Host identifies the machine the numbers were taken on. Speedups are
	// meaningless without NumCPU: a 1-core host cannot show parallel gain.
	Host struct {
		GOOS       string `json:"goos"`
		GOARCH     string `json:"goarch"`
		NumCPU     int    `json:"num_cpu"`
		GOMAXPROCS int    `json:"gomaxprocs"`
		GoVersion  string `json:"go_version"`
	} `json:"host"`
	// Sweeps compares sequential (parallelism=1) against all-cores
	// (parallelism=0) wall-clock for the widest fan-out experiments.
	Sweeps []sweepBench `json:"sweeps"`
	// Engine reports the sim kernel hot path, measured with
	// testing.Benchmark so ns/op and allocs/op match `go test -bench`.
	Engine []engineBench `json:"engine"`
	// Sharded compares one large-host loadsweep cell run on a conservative
	// ShardGroup at shards=1/2/4; Speedup is wall-clock relative to
	// shards=1. On a 1-core host the entries are informational only (the
	// shards contend for the core), but they are always emitted so a
	// multi-core runner's report is comparable.
	Sharded []shardBench `json:"sharded_loadsweep"`
	// DeterminismOK records that parallel and sequential runs produced
	// deep-equal results during this report (the full guard lives in
	// internal/experiments/determinism_test.go).
	DeterminismOK bool `json:"determinism_ok"`
}

type sweepBench struct {
	Name         string  `json:"name"`
	Cells        int     `json:"cells"`
	SequentialMs float64 `json:"sequential_ms"`
	ParallelMs   float64 `json:"parallel_ms"`
	Speedup      float64 `json:"speedup"`
}

type engineBench struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

type shardBench struct {
	Name    string  `json:"name"`
	Shards  int     `json:"shards"`
	WallMs  float64 `json:"wall_ms"`
	Speedup float64 `json:"speedup_vs_shards1"`
}

func runBench() error {
	var rep benchReport
	rep.GitRevision = campaign.GitRevision(".")
	rep.GeneratedUTC = time.Now().UTC().Format(time.RFC3339)
	rep.Host.GOOS = runtime.GOOS
	rep.Host.GOARCH = runtime.GOARCH
	rep.Host.NumCPU = runtime.NumCPU()
	rep.Host.GOMAXPROCS = runtime.GOMAXPROCS(0)
	rep.Host.GoVersion = runtime.Version()
	rep.DeterminismOK = true

	n := *packets
	fmt.Fprintf(os.Stderr, "bench: fig12a (%d packets/cell) ...\n", n)
	var seqRows, parRows []netdimm.Fig12aResult
	sb, err := timeSweep("fig12a", 16, func(parallelism int) error {
		rows, err := netdimm.RunFig12a(n, *seed, parallelism)
		if parallelism == 1 {
			seqRows = rows
		} else {
			parRows = rows
		}
		return err
	})
	if err != nil {
		return err
	}
	if !reflect.DeepEqual(seqRows, parRows) {
		rep.DeterminismOK = false
	}
	rep.Sweeps = append(rep.Sweeps, sb)

	fmt.Fprintf(os.Stderr, "bench: ablations ...\n")
	var seqRep, parRep netdimm.AblationReport
	sb, err = timeSweep("ablation", 7, func(parallelism int) error {
		r, err := netdimm.RunAblations(parallelism)
		if parallelism == 1 {
			seqRep = r
		} else {
			parRep = r
		}
		return err
	})
	if err != nil {
		return err
	}
	if !reflect.DeepEqual(seqRep, parRep) {
		rep.DeterminismOK = false
	}
	rep.Sweeps = append(rep.Sweeps, sb)

	fmt.Fprintf(os.Stderr, "bench: racksweep (256 hosts over a 2-leaf clos, %d packets/cell) ...\n", n)
	var seqRack, parRack []netdimm.RackSweepResult
	sb, err = timeSweep("racksweep_256h", 6, func(parallelism int) error {
		rows, _, err := netdimm.RunRackSweep([]int{2}, []float64{0.2}, n, *seed, parallelism)
		if parallelism == 1 {
			seqRack = rows
		} else {
			parRack = rows
		}
		return err
	})
	if err != nil {
		return err
	}
	if !reflect.DeepEqual(seqRack, parRack) {
		rep.DeterminismOK = false
	}
	rep.Sweeps = append(rep.Sweeps, sb)

	fmt.Fprintf(os.Stderr, "bench: sim engine hot path ...\n")
	rep.Engine = append(rep.Engine,
		engineResult("EngineSchedule", benchEngineSchedule),
		engineResult("EngineCancel", benchEngineCancel),
		engineResult("FabricForward", benchFabricForward),
	)

	fmt.Fprintf(os.Stderr, "bench: sharded loadsweep cell (%d packets, 32 hosts) ...\n", n)
	sharded, identical, err := benchSharded(n)
	if err != nil {
		return err
	}
	if !identical {
		rep.DeterminismOK = false
	}
	rep.Sharded = sharded

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// timeSweep runs body sequentially and with all cores, reporting wall-clock
// for each. The sequential run goes first so the parallel run cannot win by
// warmed caches alone.
func timeSweep(name string, cells int, body func(parallelism int) error) (sweepBench, error) {
	b := sweepBench{Name: name, Cells: cells}
	t0 := time.Now()
	if err := body(1); err != nil {
		return b, err
	}
	b.SequentialMs = ms(time.Since(t0))
	t0 = time.Now()
	if err := body(0); err != nil {
		return b, err
	}
	b.ParallelMs = ms(time.Since(t0))
	if b.ParallelMs > 0 {
		b.Speedup = b.SequentialMs / b.ParallelMs
	}
	return b, nil
}

func ms(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }

func engineResult(name string, fn func(b *testing.B)) engineBench {
	r := testing.Benchmark(fn)
	return engineBench{
		Name:        name,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
}

// benchSharded times the same large-host loadsweep (32 senders, one load
// point, all three architectures run back to back with no cross-cell
// parallelism) at shards=1, 2 and 4, and verifies along the way that the
// three runs returned deep-equal results — the bench-time echo of
// TestLoadSweepShardedDeterminism.
func benchSharded(packets int) ([]shardBench, bool, error) {
	cfg := netdimm.DefaultConfig()
	cfg.Load.Hosts = 32
	loads := []float64{0.14}
	var out []shardBench
	var ref []netdimm.LoadSweepResult
	var base float64
	identical := true
	for _, s := range []int{1, 2, 4} {
		c := cfg
		c.Load.Shards = s
		t0 := time.Now()
		rows, _, err := netdimm.RunLoadSweepWithConfig(c, loads, packets, *seed, 1)
		if err != nil {
			return nil, false, err
		}
		b := shardBench{Name: "loadsweep_cell", Shards: s, WallMs: ms(time.Since(t0))}
		if s == 1 {
			ref = rows
			base = b.WallMs
		} else if !reflect.DeepEqual(rows, ref) {
			identical = false
		}
		if b.WallMs > 0 {
			b.Speedup = base / b.WallMs
		}
		out = append(out, b)
	}
	return out, identical, nil
}

func benchNop() {}

// benchEngineSchedule mirrors BenchmarkEngineSchedule in internal/sim: one
// At+fire round trip per op against a warm arena.
func benchEngineSchedule(b *testing.B) {
	e := sim.NewEngine()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.At(sim.Time(i), benchNop)
		e.RunUntil(sim.Time(i))
	}
}

// benchFabricForward measures one cross-rack traversal of the leaf/spine
// clos per op: uplink, source leaf, ECMP-picked spine and destination leaf
// (three switch hops), with the engine drained each round so the queues
// stay warm but empty.
func benchFabricForward(b *testing.B) {
	sp := spec.TableOne()
	sp.Fabric.Leaves = 2
	sp.Fabric.Spines = 2
	d := sp.MustDerive()
	eng := sim.NewEngine()
	topo := d.NewTopology(fabric.SingleEngine(eng), 8, 64)
	src, dst := 0, 5 // host 5 sits in the other leaf: the full 3-hop path
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		delivered := false
		topo.Inject(src, dst, ethernet.Frame{ID: uint64(i), Bytes: 1500},
			func(ethernet.Frame) { delivered = true })
		eng.Run()
		if !delivered {
			b.Fatal("frame not delivered")
		}
	}
}

// benchEngineCancel mirrors BenchmarkEngineCancel: one schedule→cancel→reap
// cycle per op so dead events do not accumulate in the heap.
func benchEngineCancel(b *testing.B) {
	e := sim.NewEngine()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := e.Schedule(10, benchNop)
		e.Cancel(id)
		e.Run()
	}
}
