// Command netdimm-trace generates and inspects synthetic cluster traces
// (the substitution for the Facebook production traces of paper Sec. 5.1).
//
// Usage:
//
//	netdimm-trace gen  -cluster webserver -n 10000 -seed 1 -o web.ndtr
//	netdimm-trace info web.ndtr
package main

import (
	"flag"
	"fmt"
	"os"

	"netdimm/internal/ethernet"
	"netdimm/internal/sim"
	"netdimm/internal/trace"
	"netdimm/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "gen":
		err = genCmd(os.Args[2:])
	case "info":
		err = infoCmd(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "netdimm-trace: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  netdimm-trace gen  [-cluster database|webserver|hadoop] [-n N] [-seed S] [-gap dur] -o FILE
  netdimm-trace info FILE`)
}

func clusterByName(name string) (workload.Cluster, error) {
	for _, c := range workload.Clusters {
		if c.String() == name {
			return c, nil
		}
	}
	return 0, fmt.Errorf("unknown cluster %q", name)
}

func genCmd(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	clusterName := fs.String("cluster", "database", "cluster type")
	n := fs.Int("n", 10000, "number of packets")
	seed := fs.Uint64("seed", 1, "generator seed")
	gap := fs.Duration("gap", 0, "mean inter-arrival (0 = default)")
	out := fs.String("o", "", "output file (required)")
	fs.Parse(args)
	if *out == "" {
		return fmt.Errorf("gen: -o is required")
	}
	cluster, err := clusterByName(*clusterName)
	if err != nil {
		return err
	}
	gen := workload.NewGenerator(cluster, sim.Time(gap.Nanoseconds())*sim.Nanosecond, *seed)
	events := gen.Generate(*n)

	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	h := trace.Header{Cluster: cluster, Seed: *seed, Count: uint32(len(events))}
	if err := trace.Write(f, h, events); err != nil {
		return err
	}
	fmt.Printf("wrote %d %s events to %s\n", len(events), cluster, *out)
	return nil
}

func infoCmd(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("info: exactly one file expected")
	}
	f, err := os.Open(args[0])
	if err != nil {
		return err
	}
	defer f.Close()
	h, events, err := trace.Read(f)
	if err != nil {
		return err
	}
	fmt.Printf("cluster: %s   seed: %d   events: %d\n", h.Cluster, h.Seed, h.Count)
	if len(events) == 0 {
		return nil
	}
	var bytes int64
	sizeHist := map[string]int{}
	locHist := map[ethernet.Locality]int{}
	for _, e := range events {
		bytes += int64(e.Size)
		switch {
		case e.Size < 100:
			sizeHist["<100B"]++
		case e.Size < 300:
			sizeHist["100-299B"]++
		case e.Size < 1514:
			sizeHist["300-1513B"]++
		default:
			sizeHist["1514B"]++
		}
		locHist[e.Locality]++
	}
	span := events[len(events)-1].At
	fmt.Printf("span: %v   mean size: %dB\n", span, bytes/int64(len(events)))
	for _, bucket := range []string{"<100B", "100-299B", "300-1513B", "1514B"} {
		fmt.Printf("  size %-10s %6.1f%%\n", bucket, 100*float64(sizeHist[bucket])/float64(len(events)))
	}
	for loc, n := range locHist {
		fmt.Printf("  locality %-18s %6.1f%%\n", loc, 100*float64(n)/float64(len(events)))
	}
	return nil
}
