package netdimm

import (
	"math"
	"strings"
	"testing"
)

func TestRunLoadSweep(t *testing.T) {
	loads := []float64{0.05, 0.15}
	rows, knees, err := RunLoadSweep(loads, 150, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("got %d rows, want 3 archs x 2 loads", len(rows))
	}
	for _, r := range rows {
		if r.Delivered+r.Dropped != 150 {
			t.Errorf("%s at load %g: delivered %d + dropped %d != 150 offered",
				r.Arch, r.OfferedLoad, r.Delivered, r.Dropped)
		}
		if r.P50 <= 0 || r.P50 > r.P99 || r.P99 > r.P999 {
			t.Errorf("%s at load %g: implausible percentiles p50=%v p99=%v p99.9=%v",
				r.Arch, r.OfferedLoad, r.P50, r.P99, r.P999)
		}
		if r.LinkUtilization <= 0 || r.LinkUtilization > 1 {
			t.Errorf("%s at load %g: link utilisation %g", r.Arch, r.OfferedLoad, r.LinkUtilization)
		}
	}
	if len(knees) != 3 {
		t.Fatalf("got %d knees, want 3", len(knees))
	}
}

func TestRunLoadSweepScenarioConfig(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Load = LoadConfig{Hosts: 4, Cluster: "hadoop", Process: "fixed"}
	rows, _, err := RunLoadSweepWithConfig(cfg, []float64{0.1}, 100, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
}

func TestRunLoadSweepRejectsInvalidInput(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Load.Cluster = "mainframe"
	if _, _, err := RunLoadSweepWithConfig(cfg, []float64{0.1}, 10, 0, 1); err == nil {
		t.Fatal("unknown cluster accepted")
	}
	cfg = DefaultConfig()
	cfg.Cores = 0
	if _, _, err := RunLoadSweepWithConfig(cfg, []float64{0.1}, 10, 0, 1); err == nil {
		t.Fatal("invalid base config accepted")
	}
	if _, _, err := RunLoadSweep([]float64{math.NaN()}, 10, 0, 1); err == nil {
		t.Fatal("NaN load accepted")
	}
}

func TestRunLoadSweepObserved(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Obs.Metrics = true
	rows, _, o, err := RunLoadSweepObserved(cfg, []float64{0.1}, 80, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if o == nil {
		t.Fatal("nil observation with metrics enabled")
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	if csv := o.MetricsCSV(); !strings.Contains(csv, "rx_max_depth") {
		t.Errorf("metrics CSV missing rx_max_depth:\n%s", csv)
	}
}

func TestTableShowsLoadRowOnlyWhenSet(t *testing.T) {
	if strings.Contains(DefaultConfig().Table(), "Load sweep") {
		t.Error("default Table() mentions the load sweep")
	}
	cfg := DefaultConfig()
	cfg.Load.Hosts = 16
	if !strings.Contains(cfg.Table(), "16 hosts incast, database/poisson traffic") {
		t.Errorf("Table() missing or wrong load row:\n%s", cfg.Table())
	}
}
