package netdimm

import (
	"time"

	"netdimm/internal/experiments"
)

// LoadSweepResult is one (architecture, offered load) cell of the
// rack-scale load sweep: end-to-end latency statistics over delivered
// packets, plus the cell's congestion tallies.
type LoadSweepResult struct {
	Arch string
	// OfferedLoad is the injected fraction of the receiver's line rate,
	// aggregated over every sender host.
	OfferedLoad float64
	Mean        time.Duration
	P50         time.Duration
	P99         time.Duration
	P999        time.Duration
	// Delivered counts packets that completed end to end; Dropped counts
	// frames tail-dropped by a full uplink or egress buffer.
	Delivered int
	Dropped   int
	// EgressMaxDepth and EgressQueueDelay describe the shared switch
	// egress port toward the receiver (the wire-side incast bottleneck).
	EgressMaxDepth   int
	EgressQueueDelay time.Duration
	// RxMaxDepth is the high-water mark of the receiver driver's queue
	// (the architecture-dependent bottleneck).
	RxMaxDepth int
	// LinkUtilization is delivered wire occupancy over the cell's
	// makespan, in [0,1].
	LinkUtilization float64
}

// LoadKneeResult is one architecture's detected saturation point: the
// highest swept load whose p99 stayed within the configured knee factor of
// the lowest swept load's p99. Saturated is false when the grid never
// reached the knee; such a curve (including a single-load grid, which
// cannot bracket a knee) reports the explicit no-knee result Knee 0.
type LoadKneeResult struct {
	Arch      string
	Knee      float64
	Saturated bool
}

// RunLoadSweep runs the rack-scale open-loop load sweep on the default
// configuration: for each architecture (dNIC, iNIC, NetDIMM) and each
// offered load, eight sender hosts inject cluster-distributed traffic that
// fans in to one receiver through an output-queued switch, and the
// end-to-end latency distribution (mean/p50/p99/p999) is measured over
// every delivered packet. loads are fractions of the line rate (nil uses a
// default grid bracketing every architecture's knee); packets is the total
// arrival count per cell (0 = 2000).
func RunLoadSweep(loads []float64, packets int, seed uint64, parallelism int) ([]LoadSweepResult, []LoadKneeResult, error) {
	return RunLoadSweepWithConfig(DefaultConfig(), loads, packets, seed, parallelism)
}

// RunLoadSweepWithConfig is RunLoadSweep on the system described by cfg.
// The traffic shape — sender host count (incast), cluster distribution,
// Poisson or fixed arrivals, egress buffering, knee factor — comes from
// cfg.Load; a zero Load block selects the sweep defaults. A configuration
// that cannot drain (for example a pathological buffer setting) is
// terminated by the per-cell event-budget watchdog and reported as an
// error rather than hanging.
func RunLoadSweepWithConfig(cfg Config, loads []float64, packets int, seed uint64, parallelism int) (_ []LoadSweepResult, _ []LoadKneeResult, err error) {
	rows, knees, _, err := RunLoadSweepObserved(cfg, loads, packets, seed, parallelism)
	return rows, knees, err
}

// RunLoadSweepObserved is RunLoadSweepWithConfig with the observability
// plane armed per cfg.Obs: with metrics on, each (arch, load) cell
// publishes its receiver queue-depth series, egress depth, delivery/drop
// counters, link utilisation and engine probes. A zero cfg.Obs returns a
// nil Observation and output identical to RunLoadSweepWithConfig.
func RunLoadSweepObserved(cfg Config, loads []float64, packets int, seed uint64, parallelism int) (_ []LoadSweepResult, _ []LoadKneeResult, _ *Observation, err error) {
	defer guard(&err)
	if err := cfg.Validate(); err != nil {
		return nil, nil, nil, err
	}
	lcfg := experiments.DefaultLoadSweepConfig()
	lcfg.Packets = packets
	lcfg.Seed = seed
	rows, knees, o, err := experiments.LoadSweepObserved(cfg.spec(), loads, lcfg, parallelism, cfg.Obs)
	if err != nil {
		return nil, nil, nil, err
	}
	out := make([]LoadSweepResult, len(rows))
	for i, r := range rows {
		out[i] = LoadSweepResult{
			Arch:             r.Arch,
			OfferedLoad:      r.Load,
			Mean:             toDuration(r.Mean),
			P50:              toDuration(r.P50),
			P99:              toDuration(r.P99),
			P999:             toDuration(r.P999),
			Delivered:        r.Delivered,
			Dropped:          r.Dropped,
			EgressMaxDepth:   r.EgressMaxDepth,
			EgressQueueDelay: toDuration(r.EgressQueueDelay),
			RxMaxDepth:       r.RxMaxDepth,
			LinkUtilization:  r.LinkUtilization,
		}
	}
	kout := make([]LoadKneeResult, len(knees))
	for i, k := range knees {
		kout[i] = LoadKneeResult{Arch: k.Arch, Knee: k.Knee, Saturated: k.Saturated}
	}
	return out, kout, newObservation(o), nil
}
