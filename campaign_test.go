package netdimm

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"netdimm/internal/campaign"
)

// tinyGrid exercises a fast cross-section of the executor bindings: one
// breakdown family, one trace-replay family and one fault family.
func tinyGrid() campaign.Grid {
	return campaign.Grid{
		Name: "tiny",
		Seed: 3,
		Experiments: []campaign.Experiment{
			{Experiment: "fig4", Sizes: []int{64, 1514}},
			{Experiment: "fig11", Sizes: []int{64}, Metrics: true},
			{Experiment: "faultsweep", Packets: 40, Rates: []float64{0, 0.01}, Trace: true},
		},
	}
}

func TestRunCampaignEndToEnd(t *testing.T) {
	grid := tinyGrid()
	rep, err := RunCampaign(grid, "", t.TempDir(), nil)
	if err != nil {
		t.Fatalf("RunCampaign: %v", err)
	}
	if rep.Failed != 0 || len(rep.Manifest.Cells) != 3 {
		t.Fatalf("report: failed=%d cells=%d", rep.Failed, len(rep.Manifest.Cells))
	}
	// Every cell validated with the exact expected row count.
	wantRows := map[string]int{
		"fig4-table1-r0":       2, // two sizes
		"fig11-table1-r0":      3, // one size x three architectures
		"faultsweep-table1-r0": 6, // two rates x three architectures
	}
	for _, c := range rep.Manifest.Cells {
		if c.Status != "ok" {
			t.Errorf("cell %s: %s", c.Name, c.Status)
		}
		if want := wantRows[c.Name]; c.Rows != want {
			t.Errorf("cell %s rows = %d, want %d", c.Name, c.Rows, want)
		}
		if c.ConfigHash == "" {
			t.Errorf("cell %s missing config hash", c.Name)
		}
		data, err := os.ReadFile(filepath.Join(rep.Dir, c.CSV))
		if err != nil {
			t.Errorf("cell %s CSV: %v", c.Name, err)
			continue
		}
		if _, err := campaign.ValidateCSV(string(data), CampaignSchemas()[c.Experiment], c.Rows); err != nil {
			t.Errorf("cell %s on-disk CSV fails validation: %v", c.Name, err)
		}
	}
	// The metrics-armed fig11 cell produced a registry CSV; the others did not.
	for _, c := range rep.Manifest.Cells {
		hasMetrics := c.MetricsCSV != ""
		if want := c.Experiment == "fig11"; hasMetrics != want {
			t.Errorf("cell %s metrics_csv=%q, want present=%v", c.Name, c.MetricsCSV, want)
		}
	}
	// The trace-armed faultsweep cell wrote non-empty trace-event JSON.
	for _, c := range rep.Manifest.Cells {
		hasTrace := c.Trace != ""
		if want := c.Experiment == "faultsweep"; hasTrace != want {
			t.Errorf("cell %s trace=%q, want present=%v", c.Name, c.Trace, want)
			continue
		}
		if !hasTrace {
			continue
		}
		data, err := os.ReadFile(filepath.Join(rep.Dir, c.Trace))
		if err != nil {
			t.Errorf("cell %s trace: %v", c.Name, err)
			continue
		}
		var doc struct {
			TraceEvents []json.RawMessage `json:"traceEvents"`
		}
		if err := json.Unmarshal(data, &doc); err != nil {
			t.Errorf("cell %s trace is not valid JSON: %v", c.Name, err)
		} else if len(doc.TraceEvents) == 0 {
			t.Errorf("cell %s trace has no events", c.Name)
		}
	}
	var man campaign.Manifest
	data, err := os.ReadFile(filepath.Join(rep.Dir, "manifest.json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &man); err != nil {
		t.Fatal(err)
	}
	if man.Campaign != "tiny" || man.CreatedUTC == "" || man.Host.GoVersion == "" {
		t.Fatalf("manifest: %+v", man)
	}
}

// TestRunCampaignDeterministic is the acceptance criterion: re-running the
// same grid with the same seeds yields byte-identical csv/ and metrics/
// trees, at different parallelism levels.
func TestRunCampaignDeterministic(t *testing.T) {
	run := func(parallelism int) string {
		g := tinyGrid()
		g.Parallelism = parallelism
		rep, err := RunCampaign(g, "", t.TempDir(), nil)
		if err != nil {
			t.Fatal(err)
		}
		return rep.Dir
	}
	a, b := run(1), run(2)
	for _, sub := range []string{"csv", "metrics", "trace"} {
		ents, err := os.ReadDir(filepath.Join(a, sub))
		if err != nil {
			t.Fatal(err)
		}
		if len(ents) == 0 {
			t.Fatalf("no files under %s", sub)
		}
		for _, e := range ents {
			da, err := os.ReadFile(filepath.Join(a, sub, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			db, err := os.ReadFile(filepath.Join(b, sub, e.Name()))
			if err != nil {
				t.Fatalf("second run missing %s/%s: %v", sub, e.Name(), err)
			}
			if string(da) != string(db) {
				t.Errorf("%s/%s not byte-identical across runs", sub, e.Name())
			}
		}
	}
}

func TestRunCampaignRejectsInvalidGrid(t *testing.T) {
	_, err := RunCampaign(campaign.Grid{}, "", t.TempDir(), nil)
	if err == nil || !strings.Contains(err.Error(), "no experiments") {
		t.Fatalf("want validation error, got %v", err)
	}
}

func TestLoadCampaignGridDefault(t *testing.T) {
	g, err := LoadCampaignGrid("scenarios/campaign-default.json")
	if err != nil {
		t.Fatal(err)
	}
	if g.Name != "campaign-default" || len(g.Experiments) != 9 {
		t.Fatalf("default grid: name=%q rows=%d", g.Name, len(g.Experiments))
	}
	// Every registered family appears exactly once.
	seen := map[string]int{}
	for _, e := range g.Experiments {
		seen[e.Experiment]++
	}
	for fam := range CampaignSchemas() {
		if seen[fam] != 1 {
			t.Errorf("family %s appears %d times in the default grid, want 1", fam, seen[fam])
		}
	}
}
