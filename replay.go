package netdimm

import (
	"io"
	"time"

	"netdimm/internal/experiments"
)

// ReplayResult summarises one architecture over a replayed trace file.
type ReplayResult struct {
	Arch    string
	Packets int
	Mean    time.Duration
	P50     time.Duration
	P99     time.Duration
}

// ReplayTraceFile replays a trace written by cmd/netdimm-trace through the
// clos fabric under all three architectures. parallelism follows the
// convention of RunFig4 (each architecture is one cell).
func ReplayTraceFile(r io.Reader, switchLatency time.Duration, seed uint64, parallelism int) (cluster string, results []ReplayResult, err error) {
	return ReplayTraceFileWithConfig(DefaultConfig(), r, switchLatency, seed, parallelism)
}

// ReplayTraceFileWithConfig is ReplayTraceFile on the system described by
// cfg.
func ReplayTraceFileWithConfig(cfg Config, r io.Reader, switchLatency time.Duration, seed uint64, parallelism int) (cluster string, results []ReplayResult, err error) {
	if err := cfg.Validate(); err != nil {
		return "", nil, err
	}
	h, rows, err := experiments.ReplayTraceFile(cfg.spec(), r, simT(switchLatency), seed, parallelism)
	if err != nil {
		return "", nil, err
	}
	for _, row := range rows {
		results = append(results, ReplayResult{
			Arch:    row.Arch,
			Packets: row.Packets,
			Mean:    toDuration(row.Mean),
			P50:     toDuration(row.P50),
			P99:     toDuration(row.P99),
		})
	}
	return h.Cluster.String(), results, nil
}

// MixedChannelResult reports the DDR5 mixed-channel demonstration: DDR and
// NetDIMM transactions sharing one channel via the asynchronous protocol.
type MixedChannelResult struct {
	DDRReads          int
	NetDIMMReads      int
	DDRMean           time.Duration
	NetDIMMMean       time.Duration
	OutOfOrder        uint64
	MaxOutstandingIDs int
}

// RunMixedChannel demonstrates that a NetDIMM's non-deterministic local
// accesses coexist with deterministic DDR accesses on one channel (paper
// Sec. 2.2/4.1).
func RunMixedChannel(n int, seed uint64) (MixedChannelResult, error) {
	return RunMixedChannelWithConfig(DefaultConfig(), n, seed)
}

// RunMixedChannelWithConfig is RunMixedChannel on the system described by
// cfg.
func RunMixedChannelWithConfig(cfg Config, n int, seed uint64) (_ MixedChannelResult, err error) {
	defer guard(&err)
	if err := cfg.Validate(); err != nil {
		return MixedChannelResult{}, err
	}
	r, err := experiments.MixedChannel(cfg.spec(), n, seed)
	if err != nil {
		return MixedChannelResult{}, err
	}
	return MixedChannelResult{
		DDRReads:          r.DDRReads,
		NetDIMMReads:      r.NetDIMMReads,
		DDRMean:           toDuration(r.DDRMeanLatency),
		NetDIMMMean:       toDuration(r.NetDIMMMean),
		OutOfOrder:        r.OutOfOrder,
		MaxOutstandingIDs: r.MaxOutstandingIDs,
	}, nil
}
