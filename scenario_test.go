package netdimm

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"
)

func TestLoadScenarioPresets(t *testing.T) {
	for _, name := range Scenarios() {
		cfg, err := LoadScenario(name)
		if err != nil {
			t.Fatalf("LoadScenario(%q): %v", name, err)
		}
		if err := cfg.Validate(); err != nil {
			t.Errorf("preset %q does not validate: %v", name, err)
		}
	}
	// The empty name and "table1" are both the paper's Table 1 system.
	def, err := LoadScenario("")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(def, DefaultConfig()) {
		t.Error(`LoadScenario("") != DefaultConfig()`)
	}
}

func TestLoadScenarioUnknownNameError(t *testing.T) {
	_, err := LoadScenario("ddr6")
	if err == nil {
		t.Fatal("unknown scenario accepted")
	}
	for _, frag := range append(Scenarios(), "ddr6", ".json") {
		if !strings.Contains(err.Error(), frag) {
			t.Errorf("error %q does not mention %q", err, frag)
		}
	}
}

func TestScenarioJSONRoundTrip(t *testing.T) {
	want := DefaultConfig()
	want.DRAM = "DDR5-4800"
	want.NetworkGbps = 100
	want.SwitchLatNs = 250
	blob, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ReadScenario(strings.NewReader(string(blob)))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
}

func TestScenarioPartialJSONFillsDefaults(t *testing.T) {
	// A scenario file only states what differs from Table 1.
	got, err := ReadScenario(strings.NewReader(`{"DRAM": "DDR5-4800"}`))
	if err != nil {
		t.Fatal(err)
	}
	want := DefaultConfig()
	want.DRAM = "DDR5-4800"
	if !reflect.DeepEqual(got, want) {
		t.Errorf("partial scenario = %+v, want defaults + DDR5", got)
	}
}

func TestScenarioRejectsUnknownField(t *testing.T) {
	_, err := ReadScenario(strings.NewReader(`{"DARM": "DDR5-4800"}`))
	if err == nil {
		t.Fatal("unknown field accepted")
	}
}

func TestScenarioRejectsInvalidConfig(t *testing.T) {
	_, err := ReadScenario(strings.NewReader(`{"Cores": 0}`))
	if err == nil {
		t.Fatal("invalid config accepted")
	}
	if !strings.Contains(err.Error(), "Cores") {
		t.Errorf("error %q does not name the offending field", err)
	}
}

func TestLoadScenarioFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "gen3.json")
	if err := os.WriteFile(path, []byte(`{"PCIe": "x8 PCIe Gen3"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg, err := LoadScenario(path)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.PCIe != "x8 PCIe Gen3" {
		t.Errorf("PCIe = %q", cfg.PCIe)
	}
	if cfg.Cores != DefaultConfig().Cores {
		t.Errorf("unset fields not defaulted: Cores = %d", cfg.Cores)
	}
}

func TestValidateActionableErrors(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DRAM = "DDR3-1600"
	err := cfg.Validate()
	if err == nil {
		t.Fatal("DDR3 accepted")
	}
	// The message should tell the user what IS supported.
	if !strings.Contains(err.Error(), "DDR4-2400") || !strings.Contains(err.Error(), "DDR5") {
		t.Errorf("error %q does not list supported technologies", err)
	}

	cfg = DefaultConfig()
	cfg.NetDIMMs = 9
	if err := cfg.Validate(); err == nil {
		t.Fatal("9 NetDIMMs on 4 channels accepted")
	}
}

// The headline claim must survive the technology scenarios: NetDIMM below
// iNIC below dNIC at every packet size, not just under Table 1 DDR4/Gen4.
func TestScenarioFig11Ordering(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, name := range []string{"ddr5", "pcie-gen3"} {
		t.Run(name, func(t *testing.T) {
			cfg, err := LoadScenario(name)
			if err != nil {
				t.Fatal(err)
			}
			rows, err := RunFig11WithConfig(cfg, []int{64, 1500}, 100*time.Nanosecond, 0)
			if err != nil {
				t.Fatal(err)
			}
			if len(rows) == 0 {
				t.Fatal("no rows")
			}
			for _, r := range rows {
				if !(r.NetDIMM.Total < r.INIC.Total && r.INIC.Total < r.DNIC.Total) {
					t.Errorf("size %d: want NetDIMM < iNIC < dNIC, got %v %v %v",
						r.Size, r.NetDIMM.Total, r.INIC.Total, r.DNIC.Total)
				}
			}
		})
	}
}

// Every scenario file shipped in scenarios/ must load and validate — they
// are the documented -scenario entry points. Campaign grids (campaign-*.json)
// live in the same directory but are -grid documents, validated through the
// campaign loader instead.
func TestCommittedScenarioFiles(t *testing.T) {
	paths, err := filepath.Glob("scenarios/*.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no committed scenario files found")
	}
	for _, path := range paths {
		if strings.HasPrefix(filepath.Base(path), "campaign-") {
			if _, err := LoadCampaignGrid(path); err != nil {
				t.Errorf("%s: %v", path, err)
			}
			continue
		}
		if _, err := LoadScenario(path); err != nil {
			t.Errorf("%s: %v", path, err)
		}
	}
}

// The clos scenario pins the fabric shape: a rack sweep driven by it must
// run exactly one rack count (4 leaves) with the file's ECN tuning on its
// marking cells.
func TestClosScenarioDrivesRackSweep(t *testing.T) {
	cfg, err := LoadScenario(filepath.Join("scenarios", "clos-2x4.json"))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Fabric.Leaves != 4 || cfg.Fabric.Spines != 2 {
		t.Fatalf("fabric block = %+v, want 4 leaves x 2 spines", cfg.Fabric)
	}
	if cfg.Load.Hosts != 32 {
		t.Fatalf("Load.Hosts = %d, want 32", cfg.Load.Hosts)
	}
	rows, knees, err := RunRackSweepWithConfig(cfg, nil, []float64{0.1}, 320, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 { // 3 archs x 1 pinned rack count x ECN off/on
		t.Fatalf("got %d rows, want 6", len(rows))
	}
	for _, r := range rows {
		if r.Racks != 4 {
			t.Errorf("%s: racks = %d, want pinned 4", r.Arch, r.Racks)
		}
	}
	if len(knees) != 6 {
		t.Errorf("got %d knees, want 6", len(knees))
	}
}
