package netdimm

import (
	"time"

	"netdimm/internal/experiments"
)

// BandwidthResult reports the Sec. 5.2 sustained-throughput check for one
// architecture.
type BandwidthResult struct {
	Arch            string
	OfferedGbps     float64
	AchievedGbps    float64
	PerPacketRx     time.Duration
	ChannelHeadroom float64
	Sustained       bool
}

// RunBandwidth streams MTU frames at 40GbE line rate through each
// architecture and reports whether it sustains the offered rate (paper
// Sec. 5.2: all three do; the NetDIMM's single local channel has ample
// headroom). parallelism follows the convention of RunFig4.
func RunBandwidth(packets int, parallelism int) ([]BandwidthResult, error) {
	return RunBandwidthWithConfig(DefaultConfig(), packets, parallelism)
}

// RunBandwidthWithConfig is RunBandwidth on the system described by cfg
// (its link rate and local-channel bandwidth).
func RunBandwidthWithConfig(cfg Config, packets int, parallelism int) (_ []BandwidthResult, err error) {
	defer guard(&err)
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rows, err := experiments.Bandwidth(cfg.spec(), packets, parallelism)
	if err != nil {
		return nil, err
	}
	out := make([]BandwidthResult, len(rows))
	for i, r := range rows {
		out[i] = BandwidthResult{
			Arch:            r.Arch,
			OfferedGbps:     r.OfferedGbps,
			AchievedGbps:    r.AchievedGbps,
			PerPacketRx:     toDuration(r.PerPacketRx),
			ChannelHeadroom: r.ChannelHeadroom,
			Sustained:       r.Sustained(),
		}
	}
	return out, nil
}

// AblationReport bundles the design-choice ablation studies: what each
// NetDIMM mechanism contributes (Sec. 4's design decisions).
type AblationReport struct {
	Prefetch    []PrefetchAblation
	Clone       []CloneAblation
	Alloc       []AllocAblation
	HeaderCache []HeaderCacheAblation
}

// PrefetchAblation is payload-read behaviour at one nPrefetcher degree.
type PrefetchAblation struct {
	Degree      int
	HitRate     float64
	MeanReadLat time.Duration
}

// CloneAblation compares buffer-copy strategies for one MTU packet.
type CloneAblation struct {
	Strategy string
	PerClone time.Duration
}

// AllocAblation compares DMA-buffer allocation strategies.
type AllocAblation struct {
	Strategy string
	PerAlloc time.Duration
	FPMRate  float64
}

// HeaderCacheAblation compares header-read latency with/without nCache.
type HeaderCacheAblation struct {
	Strategy   string
	HeaderRead time.Duration
	HitRate    float64
}

// RunAblations runs all four ablation studies. parallelism follows the
// convention of RunFig4; the clone and alloc studies are inherently
// sequential and ignore it.
func RunAblations(parallelism int) (AblationReport, error) {
	return RunAblationsWithConfig(DefaultConfig(), parallelism)
}

// RunAblationsWithConfig is RunAblations on the system described by cfg.
func RunAblationsWithConfig(cfg Config, parallelism int) (_ AblationReport, err error) {
	defer guard(&err)
	var rep AblationReport
	if err := cfg.Validate(); err != nil {
		return rep, err
	}
	sp := cfg.spec()
	for _, r := range experiments.PrefetchAblation(sp, nil, 0, parallelism) {
		rep.Prefetch = append(rep.Prefetch, PrefetchAblation{
			Degree: r.Degree, HitRate: r.HitRate, MeanReadLat: toDuration(r.MeanReadLat),
		})
	}
	for _, r := range experiments.CloneAblation(sp) {
		rep.Clone = append(rep.Clone, CloneAblation{Strategy: r.Strategy, PerClone: toDuration(r.PerClone)})
	}
	allocRows, err := experiments.AllocAblation(sp, 0)
	if err != nil {
		return rep, err
	}
	for _, r := range allocRows {
		rep.Alloc = append(rep.Alloc, AllocAblation{
			Strategy: r.Strategy, PerAlloc: toDuration(r.PerAlloc), FPMRate: r.FPMRate,
		})
	}
	for _, r := range experiments.HeaderCacheAblation(sp, 0, parallelism) {
		rep.HeaderCache = append(rep.HeaderCache, HeaderCacheAblation{
			Strategy: r.Strategy, HeaderRead: toDuration(r.HeaderRead), HitRate: r.HitRate,
		})
	}
	return rep, nil
}
