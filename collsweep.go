package netdimm

import (
	"time"

	"netdimm/internal/experiments"
)

// CollSweepResult is one (architecture, operation, rank count) cell of the
// collective-communication sweep: the makespan of one Ring AllReduce, tree
// Broadcast or Reduce-Scatter over the fabric, with per-step skew and the
// cell's wire tallies.
type CollSweepResult struct {
	Arch string
	// Op is the collective operation: "allreduce", "broadcast" or
	// "reducescatter".
	Op string
	// Ranks is the number of participating hosts.
	Ranks int
	// PayloadBytes is each rank's full vector size in bytes.
	PayloadBytes int
	// Steps is the schedule depth (2(N-1) for the ring allreduce, N-1 for
	// the reduce-scatter ring, ceil(log2 N) rounds for the tree broadcast).
	Steps int
	// Completion is the time the slowest rank finished its schedule.
	Completion time.Duration
	// StepSkew is the worst finish-time spread across ranks at any single
	// schedule step — the synchronization cost the collective pays per step.
	StepSkew time.Duration
	// BytesOnWire counts delivered frame bytes including Ethernet overhead.
	BytesOnWire int64
	// Frames and Delivered count injected and delivered fabric frames;
	// Dropped counts tail drops (any drop stalls the dependency graph and
	// turns into a diagnostic error, so successful rows report 0); Marked
	// counts freshly ECN-marked frames.
	Frames    int
	Delivered int
	Dropped   int
	Marked    int
	// LinkUtilization is delivered wire occupancy averaged over every
	// rank's link and the collective's makespan, in [0,1].
	LinkUtilization float64
}

// RunCollSweep runs the collective sweep on the default configuration: for
// each architecture, operation and rank count, the ranks run the collective
// as an event-driven dependency graph over the fabric and the makespan,
// per-step skew and wire tallies are measured. Every cell also verifies the
// result vectors against a sequential reference reduction. ranks is the
// rank-count axis (nil = {4, 8, 16, 32, 64, 128}), ops selects operations
// (nil = all three).
func RunCollSweep(ranks []int, ops []string, seed uint64, parallelism int) ([]CollSweepResult, error) {
	return RunCollSweepWithConfig(DefaultConfig(), ranks, ops, seed, parallelism)
}

// RunCollSweepWithConfig is RunCollSweep on the system described by cfg.
// The collective shape — operation, rank count, payload and chunk bytes —
// comes from cfg.Collective when the axis arguments are nil/zero; port
// buffering and sharding come from cfg.Load. A cell that drops a frame
// deadlocks its dependency graph and is reported as a diagnostic error
// naming the stuck rank.
func RunCollSweepWithConfig(cfg Config, ranks []int, ops []string, seed uint64, parallelism int) (_ []CollSweepResult, err error) {
	rows, _, err := RunCollSweepObserved(cfg, ranks, ops, seed, parallelism)
	return rows, err
}

// RunCollSweepObserved is RunCollSweepWithConfig with the observability
// plane armed per cfg.Obs: with metrics on, each cell publishes delivery
// and mark counters, completion/skew/utilization gauges and engine probes;
// with tracing on, each cell carries one track per rank with a span per
// schedule step. A zero cfg.Obs returns a nil Observation and output
// identical to RunCollSweepWithConfig.
func RunCollSweepObserved(cfg Config, ranks []int, ops []string, seed uint64, parallelism int) (_ []CollSweepResult, _ *Observation, err error) {
	defer guard(&err)
	if err := cfg.Validate(); err != nil {
		return nil, nil, err
	}
	ccfg := experiments.DefaultCollSweepConfig()
	ccfg.Seed = seed
	rows, o, err := experiments.CollSweepObserved(cfg.spec(), ranks, ops, ccfg, parallelism, cfg.Obs)
	if err != nil {
		return nil, nil, err
	}
	out := make([]CollSweepResult, len(rows))
	for i, r := range rows {
		out[i] = CollSweepResult{
			Arch:            r.Arch,
			Op:              r.Op,
			Ranks:           r.Ranks,
			PayloadBytes:    r.PayloadBytes,
			Steps:           r.Steps,
			Completion:      toDuration(r.Completion),
			StepSkew:        toDuration(r.StepSkew),
			BytesOnWire:     r.BytesOnWire,
			Frames:          r.Frames,
			Delivered:       r.Delivered,
			Dropped:         r.Dropped,
			Marked:          r.Marked,
			LinkUtilization: r.LinkUtilization,
		}
	}
	return out, newObservation(o), nil
}
